//! Table-driven concrete-interpreter tests covering *every* instruction
//! class of both models (the classes are the decoders' dispatch arms,
//! mirrored by `islaris_asm::grammar`). Each case pins one or two
//! hand-computed architectural effects — register results, NZCV, memory
//! bytes, and the next PC — so the concrete semantics the differential
//! oracle replays against are themselves anchored to the ISA manuals,
//! not just to agreement with the symbolic executor.
//!
//! A meta-test asserts the tables are *complete*: every class name in
//! the grammar appears at least once.

use std::collections::BTreeSet;

use islaris_asm::{classify, ARM_CLASSES, RISCV_CLASSES};
use islaris_bv::Bv;
use islaris_models::{arm, riscv};
use islaris_sail::{CVal, Completion, Interp, MapMem, SailState};

struct ClassCase {
    name: &'static str,
    /// The grammar class the opcode must classify as (checked).
    class: &'static str,
    opcode: u32,
    setup: fn(&mut SailState, &mut MapMem),
    check: fn(&SailState, &mut MapMem, Completion),
}

fn x(st: &SailState, i: usize) -> Bv {
    st.arrays["X"][i]
}

fn rv(st: &SailState, i: usize) -> Bv {
    st.arrays["x"][i]
}

fn set_x(st: &mut SailState, i: usize, v: u64) {
    st.arrays.get_mut("X").expect("X")[i] = Bv::new(64, u128::from(v));
}

fn set_rv(st: &mut SailState, i: usize, v: u64) {
    st.arrays.get_mut("x").expect("x")[i] = Bv::new(64, u128::from(v));
}

fn reg(st: &SailState, name: &str) -> Bv {
    st.regs[name]
}

fn set_reg(st: &mut SailState, name: &str, width: u32, v: u64) {
    st.regs.insert(name.into(), Bv::new(width, u128::from(v)));
}

fn b64(v: u64) -> Bv {
    Bv::new(64, u128::from(v))
}

fn nzcv(st: &SailState) -> (u64, u64, u64, u64) {
    (
        reg(st, "PSTATE.N").to_u64(),
        reg(st, "PSTATE.Z").to_u64(),
        reg(st, "PSTATE.C").to_u64(),
        reg(st, "PSTATE.V").to_u64(),
    )
}

/// Canonical Arm state: EL2 with SP_EL2 selected, PC at 0x1000.
fn arm_state() -> SailState {
    let mut st = SailState::zeroed(arm());
    set_reg(&mut st, "PSTATE.EL", 2, 2);
    set_reg(&mut st, "PSTATE.SP", 1, 1);
    set_reg(&mut st, "_PC", 64, 0x1000);
    st
}

fn rv_state() -> SailState {
    let mut st = SailState::zeroed(riscv());
    set_reg(&mut st, "PC", 64, 0x1000);
    st
}

const ARM_CASES: &[ClassCase] = &[
    ClassCase {
        name: "nop advances the PC and nothing else",
        class: "nop",
        opcode: 0xD503_201F,
        setup: |_, _| {},
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(reg(st, "_PC"), b64(0x1004));
        },
    },
    ClassCase {
        name: "eret to EL1h restores PSTATE and branches to ELR_EL2",
        class: "eret",
        opcode: 0xD69F_03E0,
        // SPSR_EL2 = EL1h (EL=01 at bits 3:2, SP=1 at bit 0); the
        // AArch64 return needs HCR_EL2.RW (bit 31).
        setup: |st, _| {
            set_reg(st, "SPSR_EL2", 64, 0x5);
            set_reg(st, "HCR_EL2", 64, 1 << 31);
            set_reg(st, "ELR_EL2", 64, 0x9000);
        },
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(reg(st, "_PC"), b64(0x9000));
            assert_eq!(reg(st, "PSTATE.EL"), Bv::new(2, 0b01));
            assert_eq!(reg(st, "PSTATE.SP"), Bv::new(1, 0b1));
        },
    },
    ClassCase {
        name: "rbit reverses the 64 bits of Xn",
        class: "rbit",
        opcode: 0xDAC0_0020, // rbit x0, x1
        setup: |st, _| set_x(st, 1, 1),
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(x(st, 0), b64(0x8000_0000_0000_0000));
            assert_eq!(reg(st, "_PC"), b64(0x1004));
        },
    },
    ClassCase {
        name: "hvc takes a synchronous exception to the EL2 vector",
        class: "hvc",
        opcode: 0xD400_0002, // hvc #0
        setup: |st, _| set_reg(st, "VBAR_EL2", 64, 0x2000),
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            // Same-EL-with-SP_ELx vector: VBAR_EL2 + 0x200.
            assert_eq!(reg(st, "_PC"), b64(0x2200));
            assert_eq!(reg(st, "ELR_EL2"), b64(0x1004));
            // ESR.EC = HVC, IL = 1, ISS = imm16 = 0.
            assert_eq!(reg(st, "ESR_EL2"), b64(0x5A00_0000));
            // SPSR captures EL=10, SP=1.
            assert_eq!(reg(st, "SPSR_EL2"), b64(0x9));
            assert_eq!(reg(st, "PSTATE.I"), Bv::new(1, 1));
        },
    },
    ClassCase {
        name: "msr writes Xt into the named system register",
        class: "msr_mrs",
        opcode: 0xD51C_C000, // msr vbar_el2, x0
        setup: |st, _| set_x(st, 0, 0xCAFE),
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(reg(st, "VBAR_EL2"), b64(0xCAFE));
            assert_eq!(reg(st, "_PC"), b64(0x1004));
        },
    },
    ClassCase {
        name: "mrs reads the named system register into Xt",
        class: "msr_mrs",
        opcode: 0xD53C_4023, // mrs x3, elr_el2
        setup: |st, _| set_reg(st, "ELR_EL2", 64, 0x77),
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(x(st, 3), b64(0x77));
        },
    },
    ClassCase {
        name: "add sp, sp, #0x40 uses the banked SP_EL2 (Fig. 3)",
        class: "addsub_imm",
        opcode: 0x9101_03FF,
        setup: |st, _| set_reg(st, "SP_EL2", 64, 0x8_0000),
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(reg(st, "SP_EL2"), b64(0x8_0040));
            assert_eq!(reg(st, "_PC"), b64(0x1004));
        },
    },
    ClassCase {
        name: "subs x0, x1, #1 sets carry when no borrow",
        class: "addsub_imm",
        opcode: 0xF100_0420,
        setup: |st, _| set_x(st, 1, 5),
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(x(st, 0), b64(4));
            assert_eq!(nzcv(st), (0, 0, 1, 0));
        },
    },
    ClassCase {
        name: "movz with a shifted halfword",
        class: "movewide",
        opcode: 0xD2B7_DDE0, // movz x0, #0xbeef, lsl #16
        setup: |_, _| {},
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(x(st, 0), b64(0xBEEF_0000));
        },
    },
    ClassCase {
        name: "movk replaces only its halfword",
        class: "movewide",
        opcode: 0xF282_4681, // movk x1, #0x1234
        setup: |st, _| set_x(st, 1, 0xDEAD_0000_FFFF_5678),
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(x(st, 1), b64(0xDEAD_0000_FFFF_1234));
        },
    },
    ClassCase {
        name: "ubfm as lsr #4",
        class: "ubfm",
        opcode: 0xD344_FC20, // lsr x0, x1, #4
        setup: |st, _| set_x(st, 1, 0xF00F),
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(x(st, 0), b64(0xF00));
        },
    },
    ClassCase {
        name: "ubfm as lsl #8",
        class: "ubfm",
        opcode: 0xD378_DC20, // lsl x0, x1, #8
        setup: |st, _| set_x(st, 1, 0xAB),
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(x(st, 0), b64(0xAB00));
        },
    },
    ClassCase {
        name: "cmp x2, x3 with x2 < x3 clears carry, sets N",
        class: "addsub_shiftreg",
        opcode: 0xEB03_005F,
        setup: |st, _| {
            set_x(st, 2, 3);
            set_x(st, 3, 5);
        },
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(nzcv(st), (1, 0, 0, 0));
            // d = 31 discards the result (XZR).
            assert_eq!(x(st, 0), b64(0));
        },
    },
    ClassCase {
        name: "add x0, x1, x2 (register form)",
        class: "addsub_shiftreg",
        opcode: 0x8B02_0020,
        setup: |st, _| {
            set_x(st, 1, 10);
            set_x(st, 2, 32);
        },
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(x(st, 0), b64(42));
        },
    },
    ClassCase {
        name: "mov x0, x1 is orr with xzr",
        class: "logical_shiftreg",
        opcode: 0xAA01_03E0,
        setup: |st, _| set_x(st, 1, 0x1234),
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(x(st, 0), b64(0x1234));
        },
    },
    ClassCase {
        name: "and x3, x1, x2",
        class: "logical_shiftreg",
        opcode: 0x8A02_0023,
        setup: |st, _| {
            set_x(st, 1, 0xFF0F);
            set_x(st, 2, 0x0FF0);
        },
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(x(st, 3), b64(0x0F00));
        },
    },
    ClassCase {
        name: "str x0, [x1] stores 8 little-endian bytes",
        class: "load_store_uimm",
        opcode: 0xF900_0020,
        setup: |st, _| {
            set_x(st, 0, 0xDEAD_BEEF);
            set_x(st, 1, 0x8000);
        },
        check: |st, mem, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(
                islaris_sail::SailMem::read(mem, 0x8000, 8),
                b64(0xDEAD_BEEF)
            );
            assert_eq!(reg(st, "_PC"), b64(0x1004));
        },
    },
    ClassCase {
        name: "ldr x2, [x1, #8] scales the unsigned offset",
        class: "load_store_uimm",
        opcode: 0xF940_0422,
        setup: |st, mem| {
            set_x(st, 1, 0x8000);
            islaris_sail::SailMem::write(mem, 0x8008, 8, b64(0x77));
        },
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(x(st, 2), b64(0x77));
        },
    },
    ClassCase {
        name: "ldrb w4, [x1, x3] zero-extends the byte",
        class: "load_store_regoff",
        opcode: 0x3863_6824,
        setup: |st, mem| {
            set_x(st, 1, 0x8000);
            set_x(st, 3, 2);
            islaris_sail::SailMem::write(mem, 0x8002, 1, Bv::new(8, 0xAB));
        },
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(x(st, 4), b64(0xAB));
        },
    },
    ClassCase {
        name: "strb w4, [x0, x3] stores the low byte",
        class: "load_store_regoff",
        opcode: 0x3823_6804,
        setup: |st, _| {
            set_x(st, 0, 0x9000);
            set_x(st, 3, 2);
            set_x(st, 4, 0x1CD);
        },
        check: |_, mem, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(
                islaris_sail::SailMem::read(mem, 0x9002, 1),
                Bv::new(8, 0xCD)
            );
        },
    },
    ClassCase {
        name: "cbz taken when Xt is zero",
        class: "cbz",
        opcode: 0xB400_0040, // cbz x0, #8
        setup: |_, _| {},
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(reg(st, "_PC"), b64(0x1008));
        },
    },
    ClassCase {
        name: "cbz falls through when Xt is nonzero",
        class: "cbz",
        opcode: 0xB400_0040,
        setup: |st, _| set_x(st, 0, 1),
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(reg(st, "_PC"), b64(0x1004));
        },
    },
    ClassCase {
        name: "b.ne taken when Z is clear",
        class: "bcond",
        opcode: 0x5400_0081, // b.ne #16
        setup: |_, _| {},
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(reg(st, "_PC"), b64(0x1010));
        },
    },
    ClassCase {
        name: "b.ne falls through when Z is set",
        class: "bcond",
        opcode: 0x5400_0081,
        setup: |st, _| set_reg(st, "PSTATE.Z", 1, 1),
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(reg(st, "_PC"), b64(0x1004));
        },
    },
    ClassCase {
        name: "b with a negative offset",
        class: "b_bl",
        opcode: 0x17FF_FFFF, // b #-4
        setup: |_, _| {},
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(reg(st, "_PC"), b64(0xFFC));
        },
    },
    ClassCase {
        name: "bl links x30 before branching",
        class: "b_bl",
        opcode: 0x9400_0002, // bl #8
        setup: |_, _| {},
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(x(st, 30), b64(0x1004));
            assert_eq!(reg(st, "_PC"), b64(0x1008));
        },
    },
    ClassCase {
        name: "ret branches to x30",
        class: "br_blr_ret",
        opcode: 0xD65F_03C0,
        setup: |st, _| set_x(st, 30, 0x4000),
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(reg(st, "_PC"), b64(0x4000));
        },
    },
    ClassCase {
        name: "blr x5 links then branches",
        class: "br_blr_ret",
        opcode: 0xD63F_00A0,
        setup: |st, _| set_x(st, 5, 0x6000),
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(x(st, 30), b64(0x1004));
            assert_eq!(reg(st, "_PC"), b64(0x6000));
        },
    },
    ClassCase {
        name: "undefined encodings exit without touching the PC",
        class: "unallocated",
        opcode: 0x0000_0000,
        setup: |_, _| {},
        check: |st, _, c| {
            assert_eq!(c, Completion::Exited);
            assert_eq!(reg(st, "_PC"), b64(0x1000));
        },
    },
];

const RISCV_CASES: &[ClassCase] = &[
    ClassCase {
        name: "lui loads the sign-extended upper immediate",
        class: "lui",
        opcode: 0x0000_10B7, // lui x1, 0x1
        setup: |_, _| {},
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(rv(st, 1), b64(0x1000));
            assert_eq!(reg(st, "PC"), b64(0x1004));
        },
    },
    ClassCase {
        name: "auipc adds the upper immediate to the PC",
        class: "auipc",
        opcode: 0x0000_1097, // auipc x1, 0x1
        setup: |_, _| {},
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(rv(st, 1), b64(0x2000));
        },
    },
    ClassCase {
        name: "jal links rd and jumps",
        class: "jal",
        opcode: 0x0080_00EF, // jal x1, +8
        setup: |_, _| {},
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(rv(st, 1), b64(0x1004));
            assert_eq!(reg(st, "PC"), b64(0x1008));
        },
    },
    ClassCase {
        name: "jalr clears bit 0 of the target; x0 stays hardwired",
        class: "jalr",
        opcode: 0x0000_8067, // ret = jalr x0, 0(x1)
        setup: |st, _| set_rv(st, 1, 0x4001),
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(reg(st, "PC"), b64(0x4000));
            assert_eq!(rv(st, 0), b64(0));
        },
    },
    ClassCase {
        name: "beq taken on equal registers",
        class: "branch",
        opcode: 0x0020_8463, // beq x1, x2, +8
        setup: |st, _| {
            set_rv(st, 1, 5);
            set_rv(st, 2, 5);
        },
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(reg(st, "PC"), b64(0x1008));
        },
    },
    ClassCase {
        name: "beq falls through on unequal registers",
        class: "branch",
        opcode: 0x0020_8463,
        setup: |st, _| {
            set_rv(st, 1, 5);
            set_rv(st, 2, 6);
        },
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(reg(st, "PC"), b64(0x1004));
        },
    },
    ClassCase {
        name: "lb sign-extends the loaded byte",
        class: "load",
        opcode: 0x0001_0083, // lb x1, 0(x2)
        setup: |st, mem| {
            set_rv(st, 2, 0x8000);
            islaris_sail::SailMem::write(mem, 0x8000, 1, Bv::new(8, 0x80));
        },
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(rv(st, 1), b64(0xFFFF_FFFF_FFFF_FF80));
        },
    },
    ClassCase {
        name: "ld reads 8 bytes with an immediate offset",
        class: "load",
        opcode: 0x0081_3183, // ld x3, 8(x2)
        setup: |st, mem| {
            set_rv(st, 2, 0x8000);
            islaris_sail::SailMem::write(mem, 0x8008, 8, b64(0x1122));
        },
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(rv(st, 3), b64(0x1122));
        },
    },
    ClassCase {
        name: "sb stores only the low byte",
        class: "store",
        opcode: 0x0011_0023, // sb x1, 0(x2)
        setup: |st, _| {
            set_rv(st, 1, 0x1FF);
            set_rv(st, 2, 0x8000);
        },
        check: |_, mem, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(
                islaris_sail::SailMem::read(mem, 0x8000, 1),
                Bv::new(8, 0xFF)
            );
        },
    },
    ClassCase {
        name: "sd stores the full doubleword at base+imm",
        class: "store",
        opcode: 0x0011_3423, // sd x1, 8(x2)
        setup: |st, _| {
            set_rv(st, 1, 0xAABB_CCDD);
            set_rv(st, 2, 0x8000);
        },
        check: |_, mem, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(
                islaris_sail::SailMem::read(mem, 0x8008, 8),
                b64(0xAABB_CCDD)
            );
        },
    },
    ClassCase {
        name: "addi from the zero register",
        class: "op_imm",
        opcode: 0x0010_0093, // addi x1, x0, 1
        setup: |_, _| {},
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(rv(st, 1), b64(1));
        },
    },
    ClassCase {
        name: "srai shifts in sign bits",
        class: "op_imm",
        opcode: 0x4041_5093, // srai x1, x2, 4
        setup: |st, _| set_rv(st, 2, 0x8000_0000_0000_0000),
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(rv(st, 1), b64(0xF800_0000_0000_0000));
        },
    },
    ClassCase {
        name: "add register-register",
        class: "op",
        opcode: 0x0031_00B3, // add x1, x2, x3
        setup: |st, _| {
            set_rv(st, 2, 5);
            set_rv(st, 3, 7);
        },
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(rv(st, 1), b64(12));
        },
    },
    ClassCase {
        name: "sub wraps below zero",
        class: "op",
        opcode: 0x4031_00B3, // sub x1, x2, x3
        setup: |st, _| {
            set_rv(st, 2, 5);
            set_rv(st, 3, 7);
        },
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(rv(st, 1), b64(0xFFFF_FFFF_FFFF_FFFE));
        },
    },
    ClassCase {
        name: "addiw truncates to 32 bits before sign-extending",
        class: "op_imm_32",
        opcode: 0x0011_009B, // addiw x1, x2, 1
        setup: |st, _| set_rv(st, 2, 0xFFFF_FFFF),
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(rv(st, 1), b64(0));
        },
    },
    ClassCase {
        name: "addw sign-extends the 32-bit overflow",
        class: "op_32",
        opcode: 0x0031_00BB, // addw x1, x2, x3
        setup: |st, _| {
            set_rv(st, 2, 0x7FFF_FFFF);
            set_rv(st, 3, 1);
        },
        check: |st, _, c| {
            assert_eq!(c, Completion::Done);
            assert_eq!(rv(st, 1), b64(0xFFFF_FFFF_8000_0000));
        },
    },
    ClassCase {
        name: "undefined encodings exit without touching the PC",
        class: "unallocated",
        opcode: 0x0000_0000,
        setup: |_, _| {},
        check: |st, _, c| {
            assert_eq!(c, Completion::Exited);
            assert_eq!(reg(st, "PC"), b64(0x1000));
        },
    },
];

fn run_table(
    cases: &[ClassCase],
    classes: &'static [islaris_asm::EncodingClass],
    interp: &Interp<'_>,
    mk_state: fn() -> SailState,
) {
    for case in cases {
        assert_eq!(
            classify(classes, case.opcode),
            case.class,
            "{}: opcode {:#010x} classifies wrong",
            case.name,
            case.opcode
        );
        let mut st = mk_state();
        let mut mem = MapMem::default();
        (case.setup)(&mut st, &mut mem);
        let (_, completion) = interp
            .call(
                "decode",
                &[CVal::Bits(Bv::new(32, u128::from(case.opcode)))],
                &mut st,
                &mut mem,
            )
            .unwrap_or_else(|e| panic!("{}: {e}", case.name));
        (case.check)(&st, &mut mem, completion);
    }
}

#[test]
fn arm_classes_have_hand_computed_effects() {
    let interp = Interp::new(arm()).expect("consts");
    run_table(ARM_CASES, ARM_CLASSES, &interp, arm_state);
}

#[test]
fn riscv_classes_have_hand_computed_effects() {
    let interp = Interp::new(riscv()).expect("consts");
    run_table(RISCV_CASES, RISCV_CLASSES, &interp, rv_state);
}

#[test]
fn tables_cover_every_grammar_class() {
    for (cases, classes, what) in [
        (ARM_CASES, ARM_CLASSES, "arm"),
        (RISCV_CASES, RISCV_CLASSES, "riscv"),
    ] {
        let covered: BTreeSet<&str> = cases.iter().map(|c| c.class).collect();
        for class in classes {
            assert!(
                covered.contains(class.name),
                "{what}: no interpreter test for instruction class `{}`",
                class.name
            );
        }
    }
}
