//! The ISA models: Armv8-A and RISC-V fragments written in mini-Sail.
//!
//! The paper verifies against the authoritative Sail models (Armv8.5-A:
//! 113k lines auto-derived from the Arm-internal ASL; RISC-V: the official
//! 14k-line model). This crate holds the hand-written *fragments* used by
//! this reproduction — see DESIGN.md for the substitution argument: the
//! fragments keep the structural sources of complexity Isla must prune
//! (banked stack pointers, 128-bit flag arithmetic, alignment/fault paths,
//! configuration checks in exception return) at reduced scale.
//!
//! # Examples
//!
//! ```
//! use islaris_bv::Bv;
//! use islaris_models::{arm, ARM};
//! use islaris_sail::{CVal, Interp, MapMem, SailState};
//!
//! // Execute the paper's add sp, sp, #0x40 (opcode 0x910103ff) concretely.
//! let cm = arm();
//! let interp = Interp::new(cm)?;
//! let mut st = SailState::zeroed(cm);
//! st.regs.insert("PSTATE.EL".into(), Bv::new(2, 2));
//! st.regs.insert("PSTATE.SP".into(), Bv::new(1, 1));
//! st.regs.insert("SP_EL2".into(), Bv::new(64, 0x8_0000));
//! st.regs.insert("_PC".into(), Bv::new(64, 0x1000));
//! interp.call(ARM.entry, &[CVal::Bits(Bv::new(32, 0x910103ff))], &mut st,
//!             &mut MapMem::default())?;
//! assert_eq!(st.regs["SP_EL2"], Bv::new(64, 0x8_0040));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::sync::OnceLock;

use islaris_sail::{check_model, parse_model, CheckedModel};

/// Mini-Sail source of the Armv8-A fragment.
pub const ARM_SAIL: &str = include_str!("../sail/arm.sail");

/// Mini-Sail source of the RV64I fragment.
pub const RISCV_SAIL: &str = include_str!("../sail/riscv.sail");

/// Architecture description: everything outside the model that the rest
/// of the pipeline needs (the paper notes the PC name is the one
/// model-specific element of the operational semantics).
#[derive(Debug, Clone, Copy)]
pub struct Arch {
    /// Architecture name.
    pub name: &'static str,
    /// The model's decode entry point.
    pub entry: &'static str,
    /// Name of the program-counter register.
    pub pc: &'static str,
    /// Register arrays and the trace-name prefix of their elements
    /// (Arm `X[i]` appears in traces as `R{i}`, matching Isla).
    pub arrays: &'static [(&'static str, &'static str)],
}

/// The Armv8-A architecture description.
pub const ARM: Arch = Arch {
    name: "armv8-a",
    entry: "decode",
    pc: "_PC",
    arrays: &[("X", "R")],
};

/// The RISC-V architecture description.
pub const RISCV: Arch = Arch {
    name: "rv64i",
    entry: "decode",
    pc: "PC",
    arrays: &[("x", "x")],
};

impl Arch {
    /// Trace register name of a register-array element (`X[3]` → `R3`).
    #[must_use]
    pub fn array_reg_name(&self, array: &str, index: usize) -> Option<String> {
        self.arrays
            .iter()
            .find(|(a, _)| *a == array)
            .map(|(_, prefix)| format!("{prefix}{index}"))
    }

    /// The checked model for this architecture.
    #[must_use]
    pub fn model(&self) -> &'static CheckedModel {
        match self.name {
            "armv8-a" => arm(),
            "rv64i" => riscv(),
            other => panic!("unknown architecture {other}"),
        }
    }
}

fn load(src: &str, what: &str) -> CheckedModel {
    let model =
        parse_model(src).unwrap_or_else(|e| panic!("bundled {what} model fails to parse: {e}"));
    check_model(&model).unwrap_or_else(|e| panic!("bundled {what} model fails to check: {e}"))
}

/// The checked Armv8-A fragment (parsed and checked once, then cached).
pub fn arm() -> &'static CheckedModel {
    static MODEL: OnceLock<CheckedModel> = OnceLock::new();
    MODEL.get_or_init(|| load(ARM_SAIL, "Armv8-A"))
}

/// The checked RV64I fragment.
pub fn riscv() -> &'static CheckedModel {
    static MODEL: OnceLock<CheckedModel> = OnceLock::new();
    MODEL.get_or_init(|| load(RISCV_SAIL, "RISC-V"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use islaris_bv::Bv;
    use islaris_sail::{CVal, Completion, Interp, MapMem, SailState};

    fn arm_state() -> SailState {
        let mut st = SailState::zeroed(arm());
        st.regs.insert("PSTATE.EL".into(), Bv::new(2, 2));
        st.regs.insert("PSTATE.SP".into(), Bv::new(1, 1));
        st.regs.insert("_PC".into(), Bv::new(64, 0x1000));
        st
    }

    fn run_arm(st: &mut SailState, mem: &mut MapMem, opcode: u32) -> Completion {
        let interp = Interp::new(arm()).expect("consts");
        let (_, c) = interp
            .call(
                "decode",
                &[CVal::Bits(Bv::new(32, u128::from(opcode)))],
                st,
                mem,
            )
            .expect("executes");
        c
    }

    fn run_rv(st: &mut SailState, mem: &mut MapMem, opcode: u32) -> Completion {
        let interp = Interp::new(riscv()).expect("consts");
        let (_, c) = interp
            .call(
                "decode",
                &[CVal::Bits(Bv::new(32, u128::from(opcode)))],
                st,
                mem,
            )
            .expect("executes");
        c
    }

    #[test]
    fn models_parse_and_check() {
        assert!(arm().model.num_definitions() > 50);
        assert!(riscv().model.num_definitions() > 10);
    }

    #[test]
    fn arm_add_sp_sp_64() {
        // Fig. 3's opcode: add sp, sp, #0x40 = 0x910103ff.
        let mut st = arm_state();
        st.regs.insert("SP_EL2".into(), Bv::new(64, 0x8_0000));
        run_arm(&mut st, &mut MapMem::default(), 0x910103ff);
        assert_eq!(st.regs["SP_EL2"], Bv::new(64, 0x8_0040));
        assert_eq!(st.regs["_PC"], Bv::new(64, 0x1004));
    }

    #[test]
    fn arm_banked_sp_selection() {
        // The same opcode at EL1 uses SP_EL1; with SP=0, SP_EL0.
        let mut st = arm_state();
        st.regs.insert("PSTATE.EL".into(), Bv::new(2, 1));
        st.regs.insert("SP_EL1".into(), Bv::new(64, 0x100));
        run_arm(&mut st, &mut MapMem::default(), 0x910103ff);
        assert_eq!(st.regs["SP_EL1"], Bv::new(64, 0x140));

        let mut st = arm_state();
        st.regs.insert("PSTATE.SP".into(), Bv::new(1, 0));
        st.regs.insert("SP_EL0".into(), Bv::new(64, 0x200));
        run_arm(&mut st, &mut MapMem::default(), 0x910103ff);
        assert_eq!(st.regs["SP_EL0"], Bv::new(64, 0x240));
    }

    #[test]
    fn arm_subs_sets_flags() {
        // cmp x2, x3 = subs xzr, x2, x3 = 0xEB03005F.
        let mut st = arm_state();
        st.arrays.get_mut("X").expect("X")[2] = Bv::new(64, 5);
        st.arrays.get_mut("X").expect("X")[3] = Bv::new(64, 5);
        run_arm(&mut st, &mut MapMem::default(), 0xEB03005F);
        assert_eq!(st.regs["PSTATE.Z"], Bv::new(1, 1));
        assert_eq!(st.regs["PSTATE.C"], Bv::new(1, 1), "no borrow on equal");
        assert_eq!(st.regs["PSTATE.N"], Bv::new(1, 0));
    }

    #[test]
    fn arm_movz_movk_compose() {
        // movz x0, #0xa000, lsl 16 : sf=1 opc=10 100101 hw=01 imm16 Rd=0.
        let movz = 0xD2A00000u32 | (0xa000 << 5);
        let mut st = arm_state();
        run_arm(&mut st, &mut MapMem::default(), movz);
        assert_eq!(st.arrays["X"][0], Bv::new(64, 0xa000_0000));
        // movk x0, #0x1234 (hw=00) keeps the high part.
        let movk = 0xF2800000u32 | (0x1234 << 5);
        st.regs.insert("_PC".into(), Bv::new(64, 0x1000));
        run_arm(&mut st, &mut MapMem::default(), movk);
        assert_eq!(st.arrays["X"][0], Bv::new(64, 0xa000_1234));
    }

    #[test]
    fn arm_ldrb_strb_register_offset() {
        // ldrb w4, [x1, x3]: size=00 V=0 opc=01 Rm=3 option=011 S=0 Rn=1 Rt=4
        let ldrb = 0x38636824u32;
        // strb w4, [x0, x3]
        let strb = 0x38236804u32;
        let mut st = arm_state();
        st.arrays.get_mut("X").expect("X")[1] = Bv::new(64, 0x2000);
        st.arrays.get_mut("X").expect("X")[0] = Bv::new(64, 0x3000);
        st.arrays.get_mut("X").expect("X")[3] = Bv::new(64, 2);
        let mut mem = MapMem::default();
        mem.bytes.insert(0x2002, 0xcd);
        run_arm(&mut st, &mut mem, ldrb);
        assert_eq!(st.arrays["X"][4], Bv::new(64, 0xcd));
        run_arm(&mut st, &mut mem, strb);
        assert_eq!(mem.bytes.get(&0x3002), Some(&0xcd));
    }

    #[test]
    fn arm_unaligned_str_faults_when_enforced() {
        // str x0, [x1] with SCTLR_EL2.A = 1 and x1 misaligned.
        let str64 = 0xF9000020u32; // str x0, [x1, #0]
        let mut st = arm_state();
        st.regs.insert("SCTLR_EL2".into(), Bv::new(64, 0b10));
        st.regs.insert("VBAR_EL2".into(), Bv::new(64, 0xA0000));
        st.arrays.get_mut("X").expect("X")[1] = Bv::new(64, 0x2001);
        let c = run_arm(&mut st, &mut MapMem::default(), str64);
        assert_eq!(c, Completion::Exited, "fault path exits the instruction");
        // Vector base + 0x200 (current EL, SP_ELx).
        assert_eq!(st.regs["_PC"], Bv::new(64, 0xA0200));
        assert_eq!(st.regs["FAR_EL2"], Bv::new(64, 0x2001));
        assert_eq!(st.regs["ESR_EL2"], Bv::new(64, 0x96000021));
        assert_eq!(st.regs["ELR_EL2"], Bv::new(64, 0x1000));
        // Interrupts masked, SP_EL2 selected.
        assert_eq!(st.regs["PSTATE.I"], Bv::new(1, 1));
        assert_eq!(st.regs["PSTATE.SP"], Bv::new(1, 1));
    }

    #[test]
    fn arm_hvc_eret_roundtrip() {
        // At EL1: hvc #0 enters EL2 at VBAR_EL2 + 0x400; eret comes back.
        let mut st = arm_state();
        st.regs.insert("PSTATE.EL".into(), Bv::new(2, 1));
        st.regs.insert("PSTATE.SP".into(), Bv::new(1, 0));
        st.regs.insert("VBAR_EL2".into(), Bv::new(64, 0xA0000));
        st.regs.insert("HCR_EL2".into(), Bv::new(64, 0x8000_0000));
        let mut mem = MapMem::default();
        run_arm(&mut st, &mut mem, 0xD4000002); // hvc #0
        assert_eq!(st.regs["PSTATE.EL"], Bv::new(2, 2));
        assert_eq!(st.regs["_PC"], Bv::new(64, 0xA0400));
        assert_eq!(st.regs["ELR_EL2"], Bv::new(64, 0x1004));
        assert_eq!(st.regs["ESR_EL2"], Bv::new(64, 0x5A000000));
        // eret restores EL1 and the saved PC.
        run_arm(&mut st, &mut mem, 0xD69F03E0);
        assert_eq!(st.regs["PSTATE.EL"], Bv::new(2, 1));
        assert_eq!(st.regs["_PC"], Bv::new(64, 0x1004));
    }

    #[test]
    fn arm_eret_blocked_without_aarch64_config() {
        // With HCR_EL2.RW = 0 the return to EL1 is outside the fragment.
        let mut st = arm_state();
        st.regs.insert("SPSR_EL2".into(), Bv::new(64, 0x3c4)); // EL1, DAIF set
        st.regs.insert("ELR_EL2".into(), Bv::new(64, 0x90000));
        st.regs.insert("HCR_EL2".into(), Bv::new(64, 0));
        let c = run_arm(&mut st, &mut MapMem::default(), 0xD69F03E0);
        assert_eq!(c, Completion::Exited);
    }

    #[test]
    fn arm_mrs_msr_roundtrip() {
        // msr vbar_el2, x0 ; mrs x1, vbar_el2
        // VBAR_EL2 key: o0=1 op1=100 CRn=1100 CRm=0000 op2=000.
        let key: u32 = 0b110011000000000;
        let msr = 0xD5100000u32 | (key << 5);
        let mrs = 0xD5300000u32 | (key << 5) | 1;
        let mut st = arm_state();
        st.arrays.get_mut("X").expect("X")[0] = Bv::new(64, 0xA0000);
        let mut mem = MapMem::default();
        run_arm(&mut st, &mut mem, msr);
        assert_eq!(st.regs["VBAR_EL2"], Bv::new(64, 0xA0000));
        run_arm(&mut st, &mut mem, mrs);
        assert_eq!(st.arrays["X"][1], Bv::new(64, 0xA0000));
    }

    #[test]
    fn arm_rbit_reverses() {
        // rbit x0, x1 = 0xDAC00020.
        let mut st = arm_state();
        st.arrays.get_mut("X").expect("X")[1] = Bv::new(64, 1);
        run_arm(&mut st, &mut MapMem::default(), 0xDAC00020);
        assert_eq!(st.arrays["X"][0], Bv::new(64, 1u128 << 63));
    }

    #[test]
    fn arm_conditional_branch() {
        // b.ne #-16 with Z=0 branches back; with Z=1 falls through.
        // cond NE = 0001; imm19 = -4 (words).
        let imm19 = (-4i32 as u32) & 0x7ffff;
        let bne = 0x54000001u32 | (imm19 << 5);
        for (z, pc) in [(0u128, 0x0ff0u128), (1, 0x1004)] {
            let mut st = arm_state();
            st.regs.insert("PSTATE.Z".into(), Bv::new(1, z));
            run_arm(&mut st, &mut MapMem::default(), bne);
            assert_eq!(st.regs["_PC"], Bv::new(64, pc));
        }
    }

    #[test]
    fn arm_ubfm_lsr_lsl_aliases() {
        // lsr x0, x1, #1 = UBFM x0, x1, #1, #63.
        let lsr = 0xD3410000u32 | (1 << 16) | (63 << 10) | (1 << 5);
        let mut st = arm_state();
        st.arrays.get_mut("X").expect("X")[1] = Bv::new(64, 0x80);
        run_arm(&mut st, &mut MapMem::default(), lsr & !0x3f0000 | (1 << 16));
        assert_eq!(st.arrays["X"][0], Bv::new(64, 0x40));
        // lsl x0, x1, #4 = UBFM x0, x1, #60, #59.
        let lsl = 0xD3400000u32 | (60 << 16) | (59 << 10) | (1 << 5);
        let mut st = arm_state();
        st.arrays.get_mut("X").expect("X")[1] = Bv::new(64, 0xf);
        run_arm(&mut st, &mut MapMem::default(), lsl);
        assert_eq!(st.arrays["X"][0], Bv::new(64, 0xf0));
    }

    #[test]
    fn riscv_addi_and_x0() {
        // addi rd, rs1, imm
        let addi = |rd: u32, rs1: u32, imm: i32| -> u32 {
            ((imm as u32 & 0xfff) << 20) | (rs1 << 15) | (rd << 7) | 0b0010011
        };
        let mut st = SailState::zeroed(riscv());
        st.regs.insert("PC".into(), Bv::new(64, 0x1000));
        run_rv(&mut st, &mut MapMem::default(), addi(1, 0, 42));
        assert_eq!(st.arrays["x"][1], Bv::new(64, 42));
        // Writes to x0 are discarded.
        let mut st = SailState::zeroed(riscv());
        st.regs.insert("PC".into(), Bv::new(64, 0x1000));
        run_rv(&mut st, &mut MapMem::default(), addi(0, 0, 42));
        assert_eq!(st.arrays["x"][0], Bv::zero(64));
        // Negative immediates sign-extend.
        let mut st = SailState::zeroed(riscv());
        st.regs.insert("PC".into(), Bv::new(64, 0x1000));
        run_rv(&mut st, &mut MapMem::default(), addi(2, 0, -1));
        assert_eq!(st.arrays["x"][2], Bv::ones(64));
    }

    #[test]
    fn riscv_lb_sb_roundtrip() {
        // lb x3, 0(x1) ; sb x3, 0(x2)
        let lb = (1u32 << 15) | (3 << 7) | 0b0000011;
        let sb = (3u32 << 20) | (2 << 15) | 0b0100011;
        let mut st = SailState::zeroed(riscv());
        st.regs.insert("PC".into(), Bv::new(64, 0x1000));
        st.arrays.get_mut("x").expect("x")[1] = Bv::new(64, 0x2000);
        st.arrays.get_mut("x").expect("x")[2] = Bv::new(64, 0x3000);
        let mut mem = MapMem::default();
        mem.bytes.insert(0x2000, 0x80);
        run_rv(&mut st, &mut mem, lb);
        // lb sign-extends.
        assert_eq!(st.arrays["x"][3], Bv::new(64, 0xffff_ffff_ffff_ff80));
        run_rv(&mut st, &mut mem, sb);
        assert_eq!(mem.bytes.get(&0x3000), Some(&0x80));
    }

    #[test]
    fn riscv_branches_and_jumps() {
        // beq x1, x2, +8 (taken: both zero).
        let beq = |rs1: u32, rs2: u32, imm: i32| -> u32 {
            let imm = imm as u32;
            ((imm >> 12 & 1) << 31)
                | ((imm >> 5 & 0x3f) << 25)
                | (rs2 << 20)
                | (rs1 << 15)
                | ((imm >> 1 & 0xf) << 8)
                | ((imm >> 11 & 1) << 7)
                | 0b1100011
        };
        let mut st = SailState::zeroed(riscv());
        st.regs.insert("PC".into(), Bv::new(64, 0x1000));
        run_rv(&mut st, &mut MapMem::default(), beq(1, 2, 8));
        assert_eq!(st.regs["PC"], Bv::new(64, 0x1008), "x1 == x2 == 0: taken");
        // jalr x0, 0(x5) = jump via x5.
        let jalr = (5u32 << 15) | 0b1100111;
        let mut st = SailState::zeroed(riscv());
        st.regs.insert("PC".into(), Bv::new(64, 0x1000));
        st.arrays.get_mut("x").expect("x")[5] = Bv::new(64, 0x4000);
        run_rv(&mut st, &mut MapMem::default(), jalr);
        assert_eq!(st.regs["PC"], Bv::new(64, 0x4000));
    }

    #[test]
    fn riscv_lui_auipc() {
        // lui x1, 0xA0 → x1 = 0xA0000.
        let lui = (0xA0u32 << 12) | (1 << 7) | 0b0110111;
        let mut st = SailState::zeroed(riscv());
        st.regs.insert("PC".into(), Bv::new(64, 0x1000));
        run_rv(&mut st, &mut MapMem::default(), lui);
        assert_eq!(st.arrays["x"][1], Bv::new(64, 0xA0000));
        // auipc x2, 1 → x2 = PC + 0x1000.
        let auipc = (1u32 << 12) | (2 << 7) | 0b0010111;
        run_rv(&mut st, &mut MapMem::default(), auipc);
        assert_eq!(st.arrays["x"][2], Bv::new(64, 0x1004 + 0x1000));
    }

    #[test]
    fn arch_array_naming() {
        assert_eq!(ARM.array_reg_name("X", 3), Some("R3".into()));
        assert_eq!(RISCV.array_reg_name("x", 10), Some("x10".into()));
        assert_eq!(ARM.array_reg_name("nope", 0), None);
    }
}
