//! In-tree property-testing kit.
//!
//! The workspace is built and tested with **zero network access**, so the
//! usual `proptest`/`rand`/`criterion` stack is unavailable. This crate
//! replaces the slice of it we actually use:
//!
//! * [`Rng`] — a deterministic SplitMix64 PRNG (the `splitmix64` finaliser
//!   of Steele et al., also used to seed xorshift generators);
//! * [`forall`] — a minimal property-test runner: `cases` inputs are drawn
//!   from a generator and the property must hold for each. On failure the
//!   *case seed* is reported; re-running with `ISLARIS_PT_SEED=<seed>`
//!   replays exactly that input, which is our substitute for structural
//!   shrinking (each case is independently seeded, so one u64 pins the
//!   whole input).
//!
//! Environment knobs:
//!
//! * `ISLARIS_PT_CASES` — override the case count of every `forall` call
//!   (e.g. `ISLARIS_PT_CASES=10000` for a soak run);
//! * `ISLARIS_PT_SEED` — run only the failing case seed reported by a
//!   previous failure.

/// A deterministic SplitMix64 PRNG.
///
/// Passes BigCrush as a 64-bit mixer; plenty for test-input generation.
/// `Clone` + `Copy` so generators can cheaply fork sub-streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rng(pub u64);

impl Rng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 128-bit value (two draws).
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Next `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next `u8`.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// Next `bool`.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform value in `[lo, hi]` (inclusive; `lo <= hi`).
    ///
    /// Uses the widening-multiply trick; the modulo bias is < 2⁻³² for the
    /// range sizes test generators use.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        debug_assert!(lo <= hi);
        let span = u64::from(hi - lo) + 1;
        lo + ((u64::from(self.next_u32()) * span) >> 32) as u32
    }

    /// Uniform `usize` in `[0, n)` (`n > 0`); for indexing.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Picks one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// A random byte vector with length in `[min_len, max_len]`.
    pub fn bytes(&mut self, min_len: usize, max_len: usize) -> Vec<u8> {
        let len = min_len + self.index(max_len - min_len + 1);
        (0..len).map(|_| self.next_u8()).collect()
    }
}

/// Outcome of one property evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestResult {
    /// The property held.
    Pass,
    /// The input was rejected (does not count against the case budget
    /// beyond a global retry cap) — the `prop_assume!` analogue.
    Discard,
    /// The property failed, with an explanation.
    Fail(String),
}

/// `assert_eq!` for properties: returns [`TestResult::Fail`] with both
/// sides printed instead of panicking, so the runner can report the seed.
#[macro_export]
macro_rules! prop_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return $crate::TestResult::Fail(format!(
                concat!(
                    "{:?} != {:?} (",
                    stringify!($a),
                    " vs ",
                    stringify!($b),
                    ")"
                ),
                a, b
            ));
        }
    }};
    ($a:expr, $b:expr, $ctx:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return $crate::TestResult::Fail(format!(
                concat!(
                    "{:?} != {:?} (",
                    stringify!($a),
                    " vs ",
                    stringify!($b),
                    ") | {}"
                ),
                a, b, $ctx
            ));
        }
    }};
}

/// Boolean property assertion; fails with the stringified condition.
#[macro_export]
macro_rules! prop_true {
    ($cond:expr $(,)?) => {{
        if !$cond {
            return $crate::TestResult::Fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            );
        }
    }};
    ($cond:expr, $ctx:expr $(,)?) => {{
        if !$cond {
            return $crate::TestResult::Fail(format!(
                concat!("assertion failed: ", stringify!($cond), " | {}"),
                $ctx
            ));
        }
    }};
}

/// Rejects the current input (the `prop_assume!` analogue).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {{
        if !$cond {
            return $crate::TestResult::Discard;
        }
    }};
}

/// Default per-property case count (matches proptest's default).
pub const DEFAULT_CASES: u32 = 256;

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Derives the seed of case `i` for a named property. Seeds are decoupled
/// from the case index by mixing, so neighbouring cases are uncorrelated,
/// and they depend on the property name so sibling properties in one test
/// binary do not see identical input streams.
fn case_seed(name: &str, i: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    Rng(h ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

/// Runs `prop` on `cases` generated inputs.
///
/// Each case draws its input from a fresh [`Rng`] seeded by a per-case
/// seed. Failures and generator/property panics report that seed;
/// rerunning the test with `ISLARIS_PT_SEED=<seed>` replays only the
/// failing input.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) when the property fails, when
/// too many inputs are discarded, or when the property itself panics.
pub fn forall<T: std::fmt::Debug>(
    name: &str,
    cases: u32,
    gen: impl Fn(&mut Rng) -> T,
    prop: impl Fn(&T) -> TestResult + std::panic::RefUnwindSafe,
) where
    T: std::panic::RefUnwindSafe,
{
    let cases = env_u64("ISLARIS_PT_CASES").map_or(cases, |n| n.max(1) as u32);
    if let Some(seed) = env_u64("ISLARIS_PT_SEED") {
        let input = gen(&mut Rng::new(seed));
        match prop(&input) {
            TestResult::Pass => return,
            TestResult::Discard => panic!("{name}: seed {seed} generates a discarded input"),
            TestResult::Fail(why) => {
                panic!("{name}: replayed failure under ISLARIS_PT_SEED={seed}: {why}\ninput: {input:?}")
            }
        }
    }
    let mut ran: u32 = 0;
    let mut discarded: u64 = 0;
    let max_discard = u64::from(cases) * 16 + 256;
    let mut i: u64 = 0;
    while ran < cases {
        let seed = case_seed(name, i);
        i += 1;
        let input = gen(&mut Rng::new(seed));
        let verdict = std::panic::catch_unwind(|| prop(&input));
        match verdict {
            Ok(TestResult::Pass) => ran += 1,
            Ok(TestResult::Discard) => {
                discarded += 1;
                assert!(
                    discarded <= max_discard,
                    "{name}: gave up after {discarded} discarded inputs ({ran}/{cases} ran)"
                );
            }
            Ok(TestResult::Fail(why)) => {
                panic!(
                    "{name}: case {ran} failed: {why}\ninput: {input:?}\n\
                     rerun just this input with ISLARIS_PT_SEED={seed}"
                )
            }
            Err(payload) => {
                let why = payload
                    .downcast_ref::<&str>()
                    .map(ToString::to_string)
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic".into());
                panic!(
                    "{name}: case {ran} panicked: {why}\ninput: {input:?}\n\
                     rerun just this input with ISLARIS_PT_SEED={seed}"
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 0 from the splitmix64 reference
        // implementation (Vigna).
        let mut r = Rng::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn determinism_same_seed_same_stream() {
        let (mut a, mut b) = (Rng::new(42), Rng::new(42));
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let v = r.range_u32(3, 17);
            assert!((3..=17).contains(&v));
        }
        for _ in 0..1000 {
            assert_eq!(r.range_u32(5, 5), 5);
        }
    }

    #[test]
    fn forall_passes_trivial_property() {
        forall("trivial", 64, |r| r.next_u32(), |_| TestResult::Pass);
    }

    #[test]
    #[should_panic(expected = "ISLARIS_PT_SEED=")]
    fn forall_reports_seed_on_failure() {
        forall(
            "always-fails",
            16,
            |r| r.next_u32(),
            |_| TestResult::Fail("nope".into()),
        );
    }

    #[test]
    #[should_panic(expected = "gave up")]
    fn forall_gives_up_on_exhausted_discards() {
        forall(
            "all-discarded",
            16,
            |r| r.next_u32(),
            |_| TestResult::Discard,
        );
    }

    #[test]
    fn prop_macros_work() {
        fn check(x: u32) -> TestResult {
            prop_assume!(x != 3);
            prop_true!(x != 3);
            prop_eq!(x, x);
            TestResult::Pass
        }
        assert_eq!(check(3), TestResult::Discard);
        assert_eq!(check(4), TestResult::Pass);
    }
}
