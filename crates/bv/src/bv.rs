//! The [`Bv`] type and its operations.

use std::fmt;

/// Maximum supported bitvector width, in bits.
pub const MAX_WIDTH: u32 = 128;

/// Error raised when constructing or combining bitvectors with an invalid
/// or mismatched width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WidthError {
    /// The offending width.
    pub width: u32,
}

impl fmt::Display for WidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid bitvector width {}", self.width)
    }
}

impl std::error::Error for WidthError {}

/// A fixed-width bitvector of 1 to 128 bits.
///
/// Bits above the width are always kept zero (a maintained invariant), so
/// equality and hashing are structural. All arithmetic is modular in the
/// width, matching SMT-LIB `QF_BV`.
///
/// Operations taking two bitvectors panic if the widths differ; callers
/// (the SMT layer, the mini-Sail checker) enforce width agreement
/// statically, so a mismatch here is a bug, not an input error.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bv {
    width: u32,
    bits: u128,
}

impl Bv {
    /// Creates a bitvector of `width` bits holding `bits` truncated to the
    /// width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    #[must_use]
    pub fn new(width: u32, bits: u128) -> Self {
        assert!(
            width >= 1 && width <= MAX_WIDTH,
            "bitvector width {width} out of range 1..=128"
        );
        Bv {
            width,
            bits: bits & mask(width),
        }
    }

    /// Fallible constructor: like [`Bv::new`] but returns an error instead
    /// of panicking on an invalid width.
    ///
    /// # Errors
    ///
    /// Returns [`WidthError`] if `width` is zero or exceeds [`MAX_WIDTH`].
    pub fn try_new(width: u32, bits: u128) -> Result<Self, WidthError> {
        if width >= 1 && width <= MAX_WIDTH {
            Ok(Bv {
                width,
                bits: bits & mask(width),
            })
        } else {
            Err(WidthError { width })
        }
    }

    /// The all-zero bitvector of `width` bits.
    #[must_use]
    pub fn zero(width: u32) -> Self {
        Bv::new(width, 0)
    }

    /// The all-one bitvector of `width` bits.
    #[must_use]
    pub fn ones(width: u32) -> Self {
        Bv::new(width, u128::MAX)
    }

    /// A single-bit bitvector: `#b1` if `b`, else `#b0`.
    #[must_use]
    pub fn bit(b: bool) -> Self {
        Bv::new(1, u128::from(b))
    }

    /// Builds a bitvector from a little-endian byte slice (lowest byte
    /// first), `bytes.len() * 8` bits wide.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is empty or longer than 16.
    #[must_use]
    pub fn from_le_bytes(bytes: &[u8]) -> Self {
        assert!(
            !bytes.is_empty() && bytes.len() <= 16,
            "1..=16 bytes required"
        );
        let mut bits = 0u128;
        for (i, b) in bytes.iter().enumerate() {
            bits |= u128::from(*b) << (8 * i);
        }
        Bv::new(bytes.len() as u32 * 8, bits)
    }

    /// Little-endian byte encoding `enc(b)` from the paper's memory model.
    ///
    /// # Panics
    ///
    /// Panics if the width is not a multiple of 8.
    #[must_use]
    pub fn to_le_bytes(&self) -> Vec<u8> {
        assert!(
            self.width % 8 == 0,
            "width {} is not byte-sized",
            self.width
        );
        (0..self.width / 8)
            .map(|i| (self.bits >> (8 * i)) as u8)
            .collect()
    }

    /// The width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The number of bytes in the little-endian encoding (`|b|` in the
    /// paper), i.e. `width / 8` for byte-sized vectors.
    ///
    /// # Panics
    ///
    /// Panics if the width is not a multiple of 8.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        assert!(
            self.width % 8 == 0,
            "width {} is not byte-sized",
            self.width
        );
        (self.width / 8) as usize
    }

    /// The raw bits, zero-extended to `u128`.
    #[must_use]
    pub fn to_u128(&self) -> u128 {
        self.bits
    }

    /// The value as `u64`.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in 64 bits.
    #[must_use]
    pub fn to_u64(&self) -> u64 {
        assert!(
            self.bits <= u128::from(u64::MAX),
            "bitvector value exceeds u64"
        );
        self.bits as u64
    }

    /// The value interpreted as a two's-complement signed integer.
    #[must_use]
    pub fn to_i128(&self) -> i128 {
        let sign = self.bits >> (self.width - 1) & 1;
        if sign == 1 {
            (self.bits | !mask(self.width)) as i128
        } else {
            self.bits as i128
        }
    }

    /// True iff every bit is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.bits == 0
    }

    /// Bit `i` (0 = least significant) as a boolean.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    #[must_use]
    pub fn get_bit(&self, i: u32) -> bool {
        assert!(
            i < self.width,
            "bit index {i} out of range for width {}",
            self.width
        );
        (self.bits >> i) & 1 == 1
    }

    // ----- arithmetic (modular in the width) -----

    /// `bvadd`: modular addition.
    #[must_use]
    pub fn add(&self, rhs: &Bv) -> Bv {
        self.binop(rhs, u128::wrapping_add)
    }

    /// `bvsub`: modular subtraction.
    #[must_use]
    pub fn sub(&self, rhs: &Bv) -> Bv {
        self.binop(rhs, u128::wrapping_sub)
    }

    /// `bvmul`: modular multiplication.
    #[must_use]
    pub fn mul(&self, rhs: &Bv) -> Bv {
        self.binop(rhs, u128::wrapping_mul)
    }

    /// `bvneg`: two's-complement negation.
    #[must_use]
    pub fn neg(&self) -> Bv {
        Bv::new(self.width, self.bits.wrapping_neg())
    }

    /// `bvudiv`: unsigned division; division by zero yields all-ones
    /// (SMT-LIB convention).
    #[must_use]
    pub fn udiv(&self, rhs: &Bv) -> Bv {
        self.check_width(rhs);
        if rhs.bits == 0 {
            Bv::ones(self.width)
        } else {
            Bv::new(self.width, self.bits / rhs.bits)
        }
    }

    /// `bvurem`: unsigned remainder; remainder by zero yields the dividend
    /// (SMT-LIB convention).
    #[must_use]
    pub fn urem(&self, rhs: &Bv) -> Bv {
        self.check_width(rhs);
        if rhs.bits == 0 {
            *self
        } else {
            Bv::new(self.width, self.bits % rhs.bits)
        }
    }

    // ----- bitwise -----

    /// `bvand`.
    #[must_use]
    pub fn and(&self, rhs: &Bv) -> Bv {
        self.binop(rhs, |a, b| a & b)
    }

    /// `bvor`.
    #[must_use]
    pub fn or(&self, rhs: &Bv) -> Bv {
        self.binop(rhs, |a, b| a | b)
    }

    /// `bvxor`.
    #[must_use]
    pub fn xor(&self, rhs: &Bv) -> Bv {
        self.binop(rhs, |a, b| a ^ b)
    }

    /// `bvnot`: bitwise complement.
    #[must_use]
    pub fn not(&self) -> Bv {
        Bv::new(self.width, !self.bits)
    }

    // ----- shifts (SMT-LIB: shift amount is a bitvector of equal width;
    //        oversized amounts flush to the fill value) -----

    /// `bvshl`: logical left shift.
    #[must_use]
    pub fn shl(&self, amount: &Bv) -> Bv {
        self.check_width(amount);
        if amount.bits >= u128::from(self.width) {
            Bv::zero(self.width)
        } else {
            Bv::new(self.width, self.bits << amount.bits)
        }
    }

    /// `bvlshr`: logical right shift.
    #[must_use]
    pub fn lshr(&self, amount: &Bv) -> Bv {
        self.check_width(amount);
        if amount.bits >= u128::from(self.width) {
            Bv::zero(self.width)
        } else {
            Bv::new(self.width, self.bits >> amount.bits)
        }
    }

    /// `bvashr`: arithmetic right shift (sign fill).
    #[must_use]
    pub fn ashr(&self, amount: &Bv) -> Bv {
        self.check_width(amount);
        let sign = self.get_bit(self.width - 1);
        if amount.bits >= u128::from(self.width) {
            return if sign {
                Bv::ones(self.width)
            } else {
                Bv::zero(self.width)
            };
        }
        let n = amount.bits as u32;
        let shifted = self.bits >> n;
        let filled = if sign {
            shifted | (mask(self.width) << (self.width - n))
        } else {
            shifted
        };
        Bv::new(self.width, filled)
    }

    // ----- structure -----

    /// `((_ extract hi lo) x)`: bits `hi..=lo`, `hi - lo + 1` bits wide.
    ///
    /// # Panics
    ///
    /// Panics unless `lo <= hi < width`.
    #[must_use]
    pub fn extract(&self, hi: u32, lo: u32) -> Bv {
        assert!(
            lo <= hi && hi < self.width,
            "extract [{hi}:{lo}] out of range for width {}",
            self.width
        );
        Bv::new(hi - lo + 1, self.bits >> lo)
    }

    /// `concat`: `self` becomes the *high* bits, `low` the low bits —
    /// matching SMT-LIB `(concat self low)` and Sail's `@`.
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds [`MAX_WIDTH`].
    #[must_use]
    pub fn concat(&self, low: &Bv) -> Bv {
        let width = self.width + low.width;
        assert!(
            width <= MAX_WIDTH,
            "concat width {width} exceeds {MAX_WIDTH}"
        );
        Bv::new(width, (self.bits << low.width) | low.bits)
    }

    /// `((_ zero_extend n) x)`: widen by `n` zero bits.
    ///
    /// # Panics
    ///
    /// Panics if the resulting width exceeds [`MAX_WIDTH`].
    #[must_use]
    pub fn zero_extend(&self, extra: u32) -> Bv {
        Bv::new(self.width + extra, self.bits)
    }

    /// `((_ sign_extend n) x)`: widen by `n` copies of the sign bit.
    ///
    /// # Panics
    ///
    /// Panics if the resulting width exceeds [`MAX_WIDTH`].
    #[must_use]
    pub fn sign_extend(&self, extra: u32) -> Bv {
        let width = self.width + extra;
        assert!(
            width <= MAX_WIDTH,
            "sign_extend width {width} exceeds {MAX_WIDTH}"
        );
        if self.get_bit(self.width - 1) {
            Bv::new(width, self.bits | (mask(width) & !mask(self.width)))
        } else {
            Bv::new(width, self.bits)
        }
    }

    /// Truncates or zero-extends to exactly `width` bits.
    #[must_use]
    pub fn resize_zero(&self, width: u32) -> Bv {
        if width <= self.width {
            self.extract(width - 1, 0)
        } else {
            self.zero_extend(width - self.width)
        }
    }

    /// Reverses the bit order (Arm `rbit`).
    #[must_use]
    pub fn reverse_bits(&self) -> Bv {
        let mut out = 0u128;
        for i in 0..self.width {
            if (self.bits >> i) & 1 == 1 {
                out |= 1 << (self.width - 1 - i);
            }
        }
        Bv::new(self.width, out)
    }

    /// Replicates the vector `n` times (Sail `replicate_bits`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or the result exceeds [`MAX_WIDTH`].
    #[must_use]
    pub fn replicate(&self, n: u32) -> Bv {
        assert!(n >= 1, "replicate count must be at least 1");
        let mut out = *self;
        for _ in 1..n {
            out = out.concat(self);
        }
        out
    }

    // ----- comparisons -----

    /// `bvult`: unsigned less-than.
    #[must_use]
    pub fn ult(&self, rhs: &Bv) -> bool {
        self.check_width(rhs);
        self.bits < rhs.bits
    }

    /// `bvule`: unsigned less-or-equal.
    #[must_use]
    pub fn ule(&self, rhs: &Bv) -> bool {
        self.check_width(rhs);
        self.bits <= rhs.bits
    }

    /// `bvslt`: signed less-than.
    #[must_use]
    pub fn slt(&self, rhs: &Bv) -> bool {
        self.check_width(rhs);
        self.to_i128() < rhs.to_i128()
    }

    /// `bvsle`: signed less-or-equal.
    #[must_use]
    pub fn sle(&self, rhs: &Bv) -> bool {
        self.check_width(rhs);
        self.to_i128() <= rhs.to_i128()
    }

    fn binop(&self, rhs: &Bv, f: impl FnOnce(u128, u128) -> u128) -> Bv {
        self.check_width(rhs);
        Bv::new(self.width, f(self.bits, rhs.bits))
    }

    fn check_width(&self, rhs: &Bv) {
        assert_eq!(
            self.width, rhs.width,
            "bitvector width mismatch: {} vs {}",
            self.width, rhs.width
        );
    }
}

fn mask(width: u32) -> u128 {
    if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

impl fmt::Display for Bv {
    /// Renders in SMT-LIB concrete syntax: `#x…` when the width is a
    /// multiple of 4, `#b…` otherwise — the format Isla traces use.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width % 4 == 0 {
            write!(
                f,
                "#x{:0width$x}",
                self.bits,
                width = (self.width / 4) as usize
            )
        } else {
            write!(f, "#b{:0width$b}", self.bits, width = self.width as usize)
        }
    }
}

impl fmt::Debug for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bv({}'{self})", self.width)
    }
}

impl fmt::LowerHex for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.bits, f)
    }
}

impl fmt::UpperHex for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.bits, f)
    }
}

impl fmt::Binary for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.bits, f)
    }
}

impl fmt::Octal for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.bits, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_truncates_to_width() {
        assert_eq!(Bv::new(8, 0x1ff).to_u128(), 0xff);
        assert_eq!(Bv::new(1, 3).to_u128(), 1);
        assert_eq!(Bv::new(128, u128::MAX).to_u128(), u128::MAX);
    }

    #[test]
    fn try_new_rejects_bad_widths() {
        assert_eq!(Bv::try_new(0, 0), Err(WidthError { width: 0 }));
        assert_eq!(Bv::try_new(129, 0), Err(WidthError { width: 129 }));
        assert!(Bv::try_new(64, 7).is_ok());
    }

    #[test]
    #[should_panic(expected = "width 0")]
    fn new_panics_on_zero_width() {
        let _ = Bv::new(0, 0);
    }

    #[test]
    fn modular_arithmetic_wraps() {
        let x = Bv::new(8, 0xff);
        assert_eq!(x.add(&Bv::new(8, 1)), Bv::zero(8));
        assert_eq!(Bv::zero(8).sub(&Bv::new(8, 1)), Bv::ones(8));
        assert_eq!(Bv::new(8, 16).mul(&Bv::new(8, 16)), Bv::zero(8));
        assert_eq!(Bv::new(8, 1).neg(), Bv::ones(8));
    }

    #[test]
    fn division_by_zero_follows_smtlib() {
        let x = Bv::new(16, 1234);
        assert_eq!(x.udiv(&Bv::zero(16)), Bv::ones(16));
        assert_eq!(x.urem(&Bv::zero(16)), x);
        assert_eq!(Bv::new(16, 7).udiv(&Bv::new(16, 2)), Bv::new(16, 3));
        assert_eq!(Bv::new(16, 7).urem(&Bv::new(16, 2)), Bv::new(16, 1));
    }

    #[test]
    fn shifts_handle_oversized_amounts() {
        let x = Bv::new(8, 0b1000_0001);
        assert_eq!(x.shl(&Bv::new(8, 9)), Bv::zero(8));
        assert_eq!(x.lshr(&Bv::new(8, 200)), Bv::zero(8));
        assert_eq!(x.ashr(&Bv::new(8, 200)), Bv::ones(8));
        assert_eq!(Bv::new(8, 1).ashr(&Bv::new(8, 200)), Bv::zero(8));
        assert_eq!(x.shl(&Bv::new(8, 1)), Bv::new(8, 0b0000_0010));
        assert_eq!(x.lshr(&Bv::new(8, 1)), Bv::new(8, 0b0100_0000));
        assert_eq!(x.ashr(&Bv::new(8, 1)), Bv::new(8, 0b1100_0000));
    }

    #[test]
    fn extract_and_concat_roundtrip() {
        let x = Bv::new(32, 0xdead_beef);
        let hi = x.extract(31, 16);
        let lo = x.extract(15, 0);
        assert_eq!(hi, Bv::new(16, 0xdead));
        assert_eq!(lo, Bv::new(16, 0xbeef));
        assert_eq!(hi.concat(&lo), x);
    }

    #[test]
    fn extensions() {
        let x = Bv::new(8, 0x80);
        assert_eq!(x.zero_extend(8), Bv::new(16, 0x0080));
        assert_eq!(x.sign_extend(8), Bv::new(16, 0xff80));
        assert_eq!(Bv::new(8, 0x7f).sign_extend(8), Bv::new(16, 0x007f));
        assert_eq!(x.resize_zero(4), Bv::new(4, 0));
        assert_eq!(x.resize_zero(12), Bv::new(12, 0x080));
    }

    #[test]
    fn signed_interpretation() {
        assert_eq!(Bv::new(8, 0xff).to_i128(), -1);
        assert_eq!(Bv::new(8, 0x80).to_i128(), -128);
        assert_eq!(Bv::new(8, 0x7f).to_i128(), 127);
        assert_eq!(Bv::new(128, u128::MAX).to_i128(), -1);
    }

    #[test]
    fn comparisons() {
        let a = Bv::new(8, 0x01);
        let b = Bv::new(8, 0xff);
        assert!(a.ult(&b));
        assert!(a.ule(&a));
        assert!(b.slt(&a)); // 0xff is -1 signed
        assert!(b.sle(&b));
    }

    #[test]
    fn le_bytes_roundtrip() {
        let x = Bv::new(32, 0x1234_5678);
        assert_eq!(x.to_le_bytes(), vec![0x78, 0x56, 0x34, 0x12]);
        assert_eq!(Bv::from_le_bytes(&x.to_le_bytes()), x);
        assert_eq!(x.byte_len(), 4);
    }

    #[test]
    fn reverse_bits_matches_rbit() {
        assert_eq!(
            Bv::new(8, 0b0000_0001).reverse_bits(),
            Bv::new(8, 0b1000_0000)
        );
        assert_eq!(Bv::new(4, 0b0011).reverse_bits(), Bv::new(4, 0b1100));
        let x = Bv::new(64, 0x0123_4567_89ab_cdef);
        assert_eq!(x.reverse_bits().reverse_bits(), x);
    }

    #[test]
    fn replicate_repeats_pattern() {
        assert_eq!(Bv::new(2, 0b10).replicate(3), Bv::new(6, 0b101010));
        assert_eq!(Bv::new(8, 0xab).replicate(1), Bv::new(8, 0xab));
    }

    #[test]
    fn display_uses_smtlib_syntax() {
        assert_eq!(Bv::new(64, 0x40).to_string(), "#x0000000000000040");
        assert_eq!(Bv::new(2, 0b10).to_string(), "#b10");
        assert_eq!(Bv::new(1, 1).to_string(), "#b1");
        assert_eq!(Bv::new(12, 0xabc).to_string(), "#xabc");
    }

    #[test]
    fn get_bit_indexes_from_lsb() {
        let x = Bv::new(8, 0b0010_0000);
        assert!(x.get_bit(5));
        assert!(!x.get_bit(0));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_widths_panic() {
        let _ = Bv::new(8, 1).add(&Bv::new(16, 1));
    }
}
