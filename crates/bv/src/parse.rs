//! Parsing bitvector literals in SMT-LIB concrete syntax (`#x…`, `#b…`),
//! the format used throughout Isla traces.

use std::fmt;
use std::str::FromStr;

use crate::bv::{Bv, MAX_WIDTH};

/// Error parsing a bitvector literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBvError {
    /// The literal did not start with `#x` or `#b`.
    MissingPrefix,
    /// The digits were empty or contained an invalid character.
    InvalidDigits,
    /// The implied width was zero or above [`MAX_WIDTH`].
    WidthOutOfRange(u32),
}

impl fmt::Display for ParseBvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBvError::MissingPrefix => write!(f, "expected `#x` or `#b` prefix"),
            ParseBvError::InvalidDigits => write!(f, "invalid or empty digit sequence"),
            ParseBvError::WidthOutOfRange(w) => {
                write!(f, "literal width {w} out of range 1..={MAX_WIDTH}")
            }
        }
    }
}

impl std::error::Error for ParseBvError {}

impl FromStr for Bv {
    type Err = ParseBvError;

    /// Parses `#x1f2e…` (4 bits per digit) or `#b0101…` (1 bit per digit).
    ///
    /// ```
    /// use islaris_bv::Bv;
    /// let b: Bv = "#x0000000000000040".parse()?;
    /// assert_eq!(b, Bv::new(64, 0x40));
    /// # Ok::<(), islaris_bv::ParseBvError>(())
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (digits, bits_per_digit, radix) = if let Some(rest) = s.strip_prefix("#x") {
            (rest, 4u32, 16u32)
        } else if let Some(rest) = s.strip_prefix("#b") {
            (rest, 1u32, 2u32)
        } else {
            return Err(ParseBvError::MissingPrefix);
        };
        if digits.is_empty() {
            return Err(ParseBvError::InvalidDigits);
        }
        let width = digits.len() as u32 * bits_per_digit;
        if width == 0 || width > MAX_WIDTH {
            return Err(ParseBvError::WidthOutOfRange(width));
        }
        let value = u128::from_str_radix(digits, radix).map_err(|_| ParseBvError::InvalidDigits)?;
        Ok(Bv::new(width, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_hex_literals() {
        assert_eq!("#x40".parse::<Bv>().unwrap(), Bv::new(8, 0x40));
        assert_eq!(
            "#xfffffffffffffff0".parse::<Bv>().unwrap(),
            Bv::new(64, 0xffff_ffff_ffff_fff0)
        );
    }

    #[test]
    fn parses_binary_literals() {
        assert_eq!("#b10".parse::<Bv>().unwrap(), Bv::new(2, 0b10));
        assert_eq!("#b1".parse::<Bv>().unwrap(), Bv::new(1, 1));
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!("40".parse::<Bv>(), Err(ParseBvError::MissingPrefix));
        assert_eq!("#x".parse::<Bv>(), Err(ParseBvError::InvalidDigits));
        assert_eq!("#xzz".parse::<Bv>(), Err(ParseBvError::InvalidDigits));
        assert!(matches!(
            "#x0123456789abcdef0123456789abcdef0".parse::<Bv>(),
            Err(ParseBvError::WidthOutOfRange(_))
        ));
    }

    #[test]
    fn display_parse_roundtrip() {
        for bv in [
            Bv::new(64, 0xdead_beef),
            Bv::new(3, 0b101),
            Bv::new(1, 0),
            Bv::new(128, u128::MAX),
        ] {
            assert_eq!(bv.to_string().parse::<Bv>().unwrap(), bv);
        }
    }
}
