//! Fixed-width bitvectors for ISA semantics.
//!
//! Every value flowing through the Islaris pipeline — register contents,
//! memory bytes, immediate operands, SMT constants — is a [`Bv`]: a
//! bitvector of an explicit width between 1 and 128 bits. The 128-bit
//! ceiling matches the widest arithmetic the Armv8-A model performs
//! (`AddWithCarry` zero-extends its 64-bit operands to 128 bits, exactly
//! like the Sail excerpt in Fig. 2 of the paper).
//!
//! Semantics follow SMT-LIB `QF_BV`: arithmetic is modular in the width,
//! oversized shifts yield zero / sign fill, and division by zero follows
//! the SMT-LIB convention (`bvudiv x 0 = all-ones`, `bvurem x 0 = x`).
//!
//! # Examples
//!
//! ```
//! use islaris_bv::Bv;
//!
//! let sp = Bv::new(64, 0x8_0000);
//! let bumped = sp.add(&Bv::new(64, 64));
//! assert_eq!(bumped, Bv::new(64, 0x8_0040));
//! assert_eq!(bumped.to_string(), "#x0000000000080040");
//! ```

mod bv;
mod parse;

pub use bv::{Bv, WidthError, MAX_WIDTH};
pub use parse::ParseBvError;
