//! Property tests: `Bv` operations agree with `u128`/`i128` reference
//! semantics under masking. Runs on the in-tree `islaris-testkit` runner
//! (256 cases per property, as under proptest); failures report a seed
//! replayable via `ISLARIS_PT_SEED`.

use islaris_bv::Bv;
use islaris_testkit::{forall, prop_assume, prop_eq, Rng, TestResult, DEFAULT_CASES};

fn mask(width: u32) -> u128 {
    if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

/// The proptest strategy `(1..=128, any::<u128>(), any::<u128>())`.
fn bv_and_width(r: &mut Rng) -> (u32, u128, u128) {
    (r.range_u32(1, 128), r.next_u128(), r.next_u128())
}

#[test]
fn add_matches_reference() {
    forall(
        "add_matches_reference",
        DEFAULT_CASES,
        bv_and_width,
        |&(w, a, b)| {
            let got = Bv::new(w, a).add(&Bv::new(w, b));
            prop_eq!(got.to_u128(), a.wrapping_add(b) & mask(w));
            TestResult::Pass
        },
    );
}

#[test]
fn sub_matches_reference() {
    forall(
        "sub_matches_reference",
        DEFAULT_CASES,
        bv_and_width,
        |&(w, a, b)| {
            let got = Bv::new(w, a).sub(&Bv::new(w, b));
            prop_eq!(
                got.to_u128(),
                (a & mask(w)).wrapping_sub(b & mask(w)) & mask(w)
            );
            TestResult::Pass
        },
    );
}

#[test]
fn mul_matches_reference() {
    forall(
        "mul_matches_reference",
        DEFAULT_CASES,
        bv_and_width,
        |&(w, a, b)| {
            let got = Bv::new(w, a).mul(&Bv::new(w, b));
            prop_eq!(
                got.to_u128(),
                (a & mask(w)).wrapping_mul(b & mask(w)) & mask(w)
            );
            TestResult::Pass
        },
    );
}

#[test]
fn bitwise_match_reference() {
    forall(
        "bitwise_match_reference",
        DEFAULT_CASES,
        bv_and_width,
        |&(w, a, b)| {
            let (x, y) = (Bv::new(w, a), Bv::new(w, b));
            prop_eq!(x.and(&y).to_u128(), a & b & mask(w));
            prop_eq!(x.or(&y).to_u128(), (a | b) & mask(w));
            prop_eq!(x.xor(&y).to_u128(), (a ^ b) & mask(w));
            prop_eq!(x.not().to_u128(), !a & mask(w));
            TestResult::Pass
        },
    );
}

#[test]
fn shifts_match_reference() {
    forall(
        "shifts_match_reference",
        DEFAULT_CASES,
        |r| {
            let (w, a, _) = bv_and_width(r);
            (w, a, r.range_u32(0, 159))
        },
        |&(w, a, amt)| {
            let x = Bv::new(w, a);
            let amount = Bv::new(w, u128::from(amt) & mask(w));
            let amt_eff = amount.to_u128();
            let expect_shl = if amt_eff >= u128::from(w) {
                0
            } else {
                (a & mask(w)) << amt_eff & mask(w)
            };
            prop_eq!(x.shl(&amount).to_u128(), expect_shl);
            let expect_lshr = if amt_eff >= u128::from(w) {
                0
            } else {
                (a & mask(w)) >> amt_eff
            };
            prop_eq!(x.lshr(&amount).to_u128(), expect_lshr);
            // ashr: compare against i128 reference
            let signed = x.to_i128();
            let expect_ashr = if amt_eff >= u128::from(w) {
                if signed < 0 {
                    mask(w)
                } else {
                    0
                }
            } else {
                ((signed >> amt_eff) as u128) & mask(w)
            };
            prop_eq!(x.ashr(&amount).to_u128(), expect_ashr);
            TestResult::Pass
        },
    );
}

#[test]
fn extract_concat_roundtrip() {
    forall(
        "extract_concat_roundtrip",
        DEFAULT_CASES,
        |r| {
            let (w, a, _) = bv_and_width(r);
            (w, a, r.range_u32(0, 126))
        },
        |&(w, a, cut)| {
            prop_assume!(w >= 2);
            let cut = cut % (w - 1); // split point strictly inside
            let x = Bv::new(w, a);
            let hi = x.extract(w - 1, cut + 1);
            let lo = x.extract(cut, 0);
            prop_eq!(hi.concat(&lo), x);
            TestResult::Pass
        },
    );
}

#[test]
fn sign_extend_preserves_signed_value() {
    forall(
        "sign_extend_preserves_signed_value",
        DEFAULT_CASES,
        |r| {
            let (w, a, _) = bv_and_width(r);
            (w, a, r.range_u32(0, 63))
        },
        |&(w, a, extra)| {
            prop_assume!(w + extra <= 128);
            let x = Bv::new(w, a);
            prop_eq!(x.sign_extend(extra).to_i128(), x.to_i128());
            prop_eq!(x.zero_extend(extra).to_u128(), x.to_u128());
            TestResult::Pass
        },
    );
}

#[test]
fn comparisons_match_reference() {
    forall(
        "comparisons_match_reference",
        DEFAULT_CASES,
        bv_and_width,
        |&(w, a, b)| {
            let (x, y) = (Bv::new(w, a), Bv::new(w, b));
            prop_eq!(x.ult(&y), x.to_u128() < y.to_u128());
            prop_eq!(x.ule(&y), x.to_u128() <= y.to_u128());
            prop_eq!(x.slt(&y), x.to_i128() < y.to_i128());
            prop_eq!(x.sle(&y), x.to_i128() <= y.to_i128());
            TestResult::Pass
        },
    );
}

#[test]
fn neg_is_sub_from_zero() {
    forall(
        "neg_is_sub_from_zero",
        DEFAULT_CASES,
        bv_and_width,
        |&(w, a, _)| {
            let x = Bv::new(w, a);
            prop_eq!(x.neg(), Bv::zero(w).sub(&x));
            TestResult::Pass
        },
    );
}

#[test]
fn display_parse_roundtrip() {
    forall(
        "display_parse_roundtrip",
        DEFAULT_CASES,
        bv_and_width,
        |&(w, a, _)| {
            let x = Bv::new(w, a);
            prop_eq!(x.to_string().parse::<Bv>().unwrap(), x);
            TestResult::Pass
        },
    );
}

#[test]
fn le_bytes_roundtrip() {
    forall(
        "le_bytes_roundtrip",
        DEFAULT_CASES,
        |r| r.bytes(1, 16),
        |bytes| {
            let x = Bv::from_le_bytes(bytes);
            prop_eq!(&x.to_le_bytes(), bytes);
            TestResult::Pass
        },
    );
}

#[test]
fn reverse_bits_involutive() {
    forall(
        "reverse_bits_involutive",
        DEFAULT_CASES,
        bv_and_width,
        |&(w, a, _)| {
            let x = Bv::new(w, a);
            prop_eq!(x.reverse_bits().reverse_bits(), x);
            TestResult::Pass
        },
    );
}
