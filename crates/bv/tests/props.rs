//! Property tests: `Bv` operations agree with `u128`/`i128` reference
//! semantics under masking.

use islaris_bv::Bv;
use proptest::prelude::*;

fn mask(width: u32) -> u128 {
    if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

fn bv_and_width() -> impl Strategy<Value = (u32, u128, u128)> {
    (1u32..=128).prop_flat_map(|w| (Just(w), any::<u128>(), any::<u128>()))
}

proptest! {
    #[test]
    fn add_matches_reference((w, a, b) in bv_and_width()) {
        let got = Bv::new(w, a).add(&Bv::new(w, b));
        prop_assert_eq!(got.to_u128(), a.wrapping_add(b) & mask(w));
    }

    #[test]
    fn sub_matches_reference((w, a, b) in bv_and_width()) {
        let got = Bv::new(w, a).sub(&Bv::new(w, b));
        prop_assert_eq!(got.to_u128(), (a & mask(w)).wrapping_sub(b & mask(w)) & mask(w));
    }

    #[test]
    fn mul_matches_reference((w, a, b) in bv_and_width()) {
        let got = Bv::new(w, a).mul(&Bv::new(w, b));
        prop_assert_eq!(got.to_u128(), (a & mask(w)).wrapping_mul(b & mask(w)) & mask(w));
    }

    #[test]
    fn bitwise_match_reference((w, a, b) in bv_and_width()) {
        let (x, y) = (Bv::new(w, a), Bv::new(w, b));
        prop_assert_eq!(x.and(&y).to_u128(), a & b & mask(w));
        prop_assert_eq!(x.or(&y).to_u128(), (a | b) & mask(w));
        prop_assert_eq!(x.xor(&y).to_u128(), (a ^ b) & mask(w));
        prop_assert_eq!(x.not().to_u128(), !a & mask(w));
    }

    #[test]
    fn shifts_match_reference((w, a, _b) in bv_and_width(), amt in 0u32..160) {
        let x = Bv::new(w, a);
        let amount = Bv::new(w, u128::from(amt) & mask(w));
        let amt_eff = amount.to_u128();
        let expect_shl = if amt_eff >= u128::from(w) { 0 } else { (a & mask(w)) << amt_eff & mask(w) };
        prop_assert_eq!(x.shl(&amount).to_u128(), expect_shl);
        let expect_lshr = if amt_eff >= u128::from(w) { 0 } else { (a & mask(w)) >> amt_eff };
        prop_assert_eq!(x.lshr(&amount).to_u128(), expect_lshr);
        // ashr: compare against i128 reference
        let signed = x.to_i128();
        let expect_ashr = if amt_eff >= u128::from(w) {
            if signed < 0 { mask(w) } else { 0 }
        } else {
            ((signed >> amt_eff) as u128) & mask(w)
        };
        prop_assert_eq!(x.ashr(&amount).to_u128(), expect_ashr);
    }

    #[test]
    fn extract_concat_roundtrip((w, a, _b) in bv_and_width(), cut in 0u32..127) {
        prop_assume!(w >= 2);
        let cut = cut % (w - 1); // split point strictly inside
        let x = Bv::new(w, a);
        let hi = x.extract(w - 1, cut + 1);
        let lo = x.extract(cut, 0);
        prop_assert_eq!(hi.concat(&lo), x);
    }

    #[test]
    fn sign_extend_preserves_signed_value((w, a, _b) in bv_and_width(), extra in 0u32..64) {
        prop_assume!(w + extra <= 128);
        let x = Bv::new(w, a);
        prop_assert_eq!(x.sign_extend(extra).to_i128(), x.to_i128());
        prop_assert_eq!(x.zero_extend(extra).to_u128(), x.to_u128());
    }

    #[test]
    fn comparisons_match_reference((w, a, b) in bv_and_width()) {
        let (x, y) = (Bv::new(w, a), Bv::new(w, b));
        prop_assert_eq!(x.ult(&y), x.to_u128() < y.to_u128());
        prop_assert_eq!(x.ule(&y), x.to_u128() <= y.to_u128());
        prop_assert_eq!(x.slt(&y), x.to_i128() < y.to_i128());
        prop_assert_eq!(x.sle(&y), x.to_i128() <= y.to_i128());
    }

    #[test]
    fn neg_is_sub_from_zero((w, a, _b) in bv_and_width()) {
        let x = Bv::new(w, a);
        prop_assert_eq!(x.neg(), Bv::zero(w).sub(&x));
    }

    #[test]
    fn display_parse_roundtrip((w, a, _b) in bv_and_width()) {
        let x = Bv::new(w, a);
        prop_assert_eq!(x.to_string().parse::<Bv>().unwrap(), x);
    }

    #[test]
    fn le_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 1..=16)) {
        let x = Bv::from_le_bytes(&bytes);
        prop_assert_eq!(x.to_le_bytes(), bytes);
    }

    #[test]
    fn reverse_bits_involutive((w, a, _b) in bv_and_width()) {
        let x = Bv::new(w, a);
        prop_assert_eq!(x.reverse_bits().reverse_bits(), x);
    }
}
