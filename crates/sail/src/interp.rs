//! Concrete interpreter for checked mini-Sail models.
//!
//! This is the "direct semantics" side of translation validation (§5 of
//! the paper): executing the model itself, one instruction at a time,
//! against a register/memory state — the analogue of running the
//! Sail-generated Coq definitions.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

use islaris_bv::Bv;
use islaris_obs::SailMetrics;

use crate::ast::{Binop, Expr, LValue, Pattern, Stmt, Ty, Unop};
use crate::check::CheckedModel;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CVal {
    /// A bitvector.
    Bits(Bv),
    /// A boolean.
    Bool(bool),
    /// A mathematical integer.
    Int(i128),
    /// `()`.
    Unit,
}

impl CVal {
    /// Extracts a bitvector.
    ///
    /// # Panics
    ///
    /// Panics on other variants (unreachable for checked models).
    #[must_use]
    pub fn bits(self) -> Bv {
        match self {
            CVal::Bits(b) => b,
            other => panic!("expected bits, found {other:?}"),
        }
    }

    /// Extracts a boolean.
    ///
    /// # Panics
    ///
    /// Panics on other variants (unreachable for checked models).
    #[must_use]
    pub fn boolean(self) -> bool {
        match self {
            CVal::Bool(b) => b,
            other => panic!("expected bool, found {other:?}"),
        }
    }

    /// Extracts an integer.
    ///
    /// # Panics
    ///
    /// Panics on other variants (unreachable for checked models).
    #[must_use]
    pub fn int(self) -> i128 {
        match self {
            CVal::Int(i) => i,
            other => panic!("expected int, found {other:?}"),
        }
    }
}

/// Register state of a mini-Sail model run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SailState {
    /// Plain (and field) registers.
    pub regs: BTreeMap<String, Bv>,
    /// Register arrays (`X[i]`).
    pub arrays: BTreeMap<String, Vec<Bv>>,
}

impl SailState {
    /// Empty state.
    #[must_use]
    pub fn new() -> Self {
        SailState::default()
    }

    /// Initialises every declared register of `cm` to zero.
    #[must_use]
    pub fn zeroed(cm: &CheckedModel) -> Self {
        let mut s = SailState::new();
        for r in &cm.model.registers {
            let w = match r.ty {
                Ty::Bits(w) => w,
                _ => continue,
            };
            match r.array_len {
                None => {
                    s.regs.insert(r.name.clone(), Bv::zero(w));
                }
                Some(len) => {
                    s.arrays
                        .insert(r.name.clone(), vec![Bv::zero(w); len as usize]);
                }
            }
        }
        s
    }
}

/// Memory interface for the interpreter.
pub trait SailMem {
    /// Reads `n` bytes little-endian.
    fn read(&mut self, addr: u64, n: u32) -> Bv;
    /// Writes `n` bytes little-endian.
    fn write(&mut self, addr: u64, n: u32, value: Bv);
}

/// A flat `BTreeMap` memory, suitable for tests and translation validation.
#[derive(Debug, Clone, Default)]
pub struct MapMem {
    /// Byte contents.
    pub bytes: BTreeMap<u64, u8>,
}

impl SailMem for MapMem {
    fn read(&mut self, addr: u64, n: u32) -> Bv {
        let bs: Vec<u8> = (0..n)
            .map(|i| self.bytes.get(&(addr + u64::from(i))).copied().unwrap_or(0))
            .collect();
        Bv::from_le_bytes(&bs)
    }

    fn write(&mut self, addr: u64, n: u32, value: Bv) {
        for (i, b) in value.to_le_bytes().iter().take(n as usize).enumerate() {
            self.bytes.insert(addr + i as u64, *b);
        }
    }
}

/// A runtime error (out-of-range register index, missing register, call
/// depth). Checked models cannot produce sort errors, but indices are
/// data-dependent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError {
    /// Description.
    pub message: String,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interpreter error: {}", self.message)
    }
}

impl std::error::Error for InterpError {}

fn rt_err<T>(msg: impl Into<String>) -> Result<T, InterpError> {
    Err(InterpError {
        message: msg.into(),
    })
}

/// How a call completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// Normal return.
    Done,
    /// `exit()` was executed: the instruction terminated early (e.g.
    /// exception entry taken).
    Exited,
}

enum Flow {
    Val(CVal),
    Exit,
}

/// One register assignment executed during a [`Interp::replay`] run, in
/// program order: a plain register (`index: None`) or an array slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegWrite {
    /// Declared register (or register array) name.
    pub name: String,
    /// Array index for `X[i] = ...` writes.
    pub index: Option<usize>,
    /// The value written.
    pub value: Bv,
}

/// The outcome of a [`Interp::replay`] run: the call's value and
/// completion, plus the journal of every register write in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    /// Return value of the entry function.
    pub value: CVal,
    /// Whether the run returned normally or `exit()`ed.
    pub completion: Completion,
    /// Every register assignment, in execution order.
    pub writes: Vec<RegWrite>,
}

const MAX_CALL_DEPTH: u32 = 64;

/// The interpreter for a checked model.
pub struct Interp<'m> {
    cm: &'m CheckedModel,
    consts: HashMap<String, CVal>,
    // Deterministic effort counters (Cells: `call` takes `&self`). These
    // count work, not wall time, so they are byte-identical across runs.
    steps: Cell<u64>,
    calls: Cell<u64>,
    // Replay support: an absolute step ceiling and a write journal, both
    // inert outside `replay` so plain `call`s pay only a Cell read.
    step_limit: Cell<Option<u64>>,
    journaling: Cell<bool>,
    journal: RefCell<Vec<RegWrite>>,
}

impl<'m> Interp<'m> {
    /// Creates an interpreter, evaluating global constants.
    ///
    /// # Errors
    ///
    /// Fails if a constant initialiser fails to evaluate.
    pub fn new(cm: &'m CheckedModel) -> Result<Self, InterpError> {
        let mut interp = Interp {
            cm,
            consts: HashMap::new(),
            steps: Cell::new(0),
            calls: Cell::new(0),
            step_limit: Cell::new(None),
            journaling: Cell::new(false),
            journal: RefCell::new(Vec::new()),
        };
        // Constants may refer to earlier constants.
        for c in &cm.model.consts {
            let mut frame = Frame {
                locals: HashMap::new(),
                state: &mut SailState::new(),
                mem: &mut MapMem::default(),
                depth: 0,
            };
            let v = match interp.eval(&c.init, &mut frame)? {
                Flow::Val(v) => v,
                Flow::Exit => return rt_err("exit() in constant initialiser"),
            };
            interp.consts.insert(c.name.clone(), v);
        }
        Ok(interp)
    }

    /// Evaluation-effort counters accumulated so far: `steps` counts
    /// expression evaluations, `calls` counts function invocations
    /// (top-level and user-to-user; builtins are counted as steps only).
    #[must_use]
    pub fn metrics(&self) -> SailMetrics {
        SailMetrics {
            steps: self.steps.get(),
            calls: self.calls.get(),
        }
    }

    /// Resets the effort counters to zero.
    pub fn reset_metrics(&self) {
        self.steps.set(0);
        self.calls.set(0);
    }

    /// Calls a model function with the given arguments.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError`] on runtime errors (bad register index,
    /// unknown register in state, call depth exceeded).
    pub fn call(
        &self,
        name: &str,
        args: &[CVal],
        state: &mut SailState,
        mem: &mut dyn SailMem,
    ) -> Result<(CVal, Completion), InterpError> {
        let Some(f) = self.cm.model.function(name) else {
            return rt_err(format!("unknown function `{name}`"));
        };
        if f.params.len() != args.len() {
            return rt_err(format!("arity mismatch calling `{name}`"));
        }
        self.calls.set(self.calls.get() + 1);
        let locals: HashMap<String, CVal> = f
            .params
            .iter()
            .zip(args)
            .map(|((p, _), v)| (p.clone(), *v))
            .collect();
        let mut frame = Frame {
            locals,
            state,
            mem,
            depth: 0,
        };
        match self.eval(&f.body, &mut frame)? {
            Flow::Val(v) => Ok((v, Completion::Done)),
            Flow::Exit => Ok((CVal::Unit, Completion::Exited)),
        }
    }

    /// Calls a model function like [`Interp::call`], but bounded to
    /// `step_budget` expression evaluations and journalling every
    /// register write in execution order. This is the differential-oracle
    /// entry point: the budget makes a replay of an adversarial or buggy
    /// model terminate deterministically, and the journal is what gets
    /// compared event-by-event against a symbolic trace's `write-reg`s.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError`] on runtime errors, including a `step
    /// budget exceeded` error when the bound is hit.
    pub fn replay(
        &self,
        name: &str,
        args: &[CVal],
        state: &mut SailState,
        mem: &mut dyn SailMem,
        step_budget: u64,
    ) -> Result<Replay, InterpError> {
        self.step_limit
            .set(Some(self.steps.get().saturating_add(step_budget)));
        self.journaling.set(true);
        self.journal.borrow_mut().clear();
        let res = self.call(name, args, state, mem);
        self.step_limit.set(None);
        self.journaling.set(false);
        let writes = std::mem::take(&mut *self.journal.borrow_mut());
        let (value, completion) = res?;
        Ok(Replay {
            value,
            completion,
            writes,
        })
    }

    fn eval(&self, e: &Expr, fr: &mut Frame<'_, '_>) -> Result<Flow, InterpError> {
        self.steps.set(self.steps.get() + 1);
        if let Some(limit) = self.step_limit.get() {
            if self.steps.get() > limit {
                return rt_err("step budget exceeded");
            }
        }
        macro_rules! val {
            ($e:expr) => {
                match self.eval($e, fr)? {
                    Flow::Val(v) => v,
                    Flow::Exit => return Ok(Flow::Exit),
                }
            };
        }
        Ok(Flow::Val(match e {
            Expr::LitBits(b) => CVal::Bits(*b),
            Expr::LitBool(b) => CVal::Bool(*b),
            Expr::LitInt(n) => CVal::Int(*n),
            Expr::Unit => CVal::Unit,
            Expr::Var(name) => match fr.locals.get(name) {
                Some(v) => *v,
                None => return rt_err(format!("unbound local `{name}`")),
            },
            Expr::Global(name) => {
                if let Some(v) = self.consts.get(name) {
                    *v
                } else if let Some(b) = fr.state.regs.get(name) {
                    CVal::Bits(*b)
                } else {
                    return rt_err(format!("register `{name}` not in state"));
                }
            }
            Expr::RegIdx(name, idx) => {
                let i = val!(idx).int();
                let Some(arr) = fr.state.arrays.get(name) else {
                    return rt_err(format!("register array `{name}` not in state"));
                };
                let Some(v) = usize::try_from(i).ok().and_then(|i| arr.get(i)) else {
                    return rt_err(format!("register index {i} out of range for `{name}`"));
                };
                CVal::Bits(*v)
            }
            Expr::Slice(base, hi, lo) => CVal::Bits(val!(base).bits().extract(*hi, *lo)),
            Expr::Unop(op, a) => {
                let v = val!(a);
                match op {
                    Unop::Not => CVal::Bool(!v.boolean()),
                    Unop::BitNot => CVal::Bits(v.bits().not()),
                    Unop::Neg => CVal::Int(-v.int()),
                }
            }
            Expr::Binop(op, a, b) => {
                // Short-circuit booleans first.
                match op {
                    Binop::BoolAnd => {
                        let va = val!(a).boolean();
                        return Ok(Flow::Val(CVal::Bool(va && val!(b).boolean())));
                    }
                    Binop::BoolOr => {
                        let va = val!(a).boolean();
                        return Ok(Flow::Val(CVal::Bool(va || val!(b).boolean())));
                    }
                    _ => {}
                }
                let va = val!(a);
                let vb = val!(b);
                eval_binop(*op, va, vb)?
            }
            Expr::Call(name, args) => return self.eval_call(name, args, fr),
            Expr::If(c, t, f) => {
                if val!(c).boolean() {
                    return self.eval(t, fr);
                }
                return self.eval(f, fr);
            }
            Expr::Match(s, arms) => {
                let v = val!(s);
                for (pat, body) in arms {
                    let hit = match (pat, v) {
                        (Pattern::Wildcard, _) => true,
                        (Pattern::Bits(pb), CVal::Bits(vb)) => *pb == vb,
                        (Pattern::Int(pi), CVal::Int(vi)) => *pi == vi,
                        _ => false,
                    };
                    if hit {
                        return self.eval(body, fr);
                    }
                }
                unreachable!("checked match ends with wildcard");
            }
            Expr::Block(stmts, value) => {
                let saved: Vec<(String, Option<CVal>)> = Vec::new();
                let _ = saved;
                let mut shadowed: Vec<(String, Option<CVal>)> = Vec::new();
                for stmt in stmts {
                    match stmt {
                        Stmt::Let(name, _ty, init) => {
                            let v = val!(init);
                            shadowed.push((name.clone(), fr.locals.insert(name.clone(), v)));
                        }
                        Stmt::Assign(lv, rhs) => {
                            let v = val!(rhs);
                            match lv {
                                LValue::Reg(name) => {
                                    fr.state.regs.insert(name.clone(), v.bits());
                                    if self.journaling.get() {
                                        self.journal.borrow_mut().push(RegWrite {
                                            name: name.clone(),
                                            index: None,
                                            value: v.bits(),
                                        });
                                    }
                                }
                                LValue::RegIdx(name, idx) => {
                                    let i = val!(idx).int();
                                    let Some(arr) = fr.state.arrays.get_mut(name) else {
                                        return rt_err(format!("array `{name}` not in state"));
                                    };
                                    let Some(slot) =
                                        usize::try_from(i).ok().and_then(|i| arr.get_mut(i))
                                    else {
                                        return rt_err(format!(
                                            "register index {i} out of range for `{name}`"
                                        ));
                                    };
                                    *slot = v.bits();
                                    if self.journaling.get() {
                                        self.journal.borrow_mut().push(RegWrite {
                                            name: name.clone(),
                                            index: usize::try_from(i).ok(),
                                            value: v.bits(),
                                        });
                                    }
                                }
                            }
                        }
                        Stmt::Expr(e) => {
                            let _ = val!(e);
                        }
                    }
                }
                let result = match value {
                    None => CVal::Unit,
                    Some(v) => val!(v),
                };
                for (name, old) in shadowed.into_iter().rev() {
                    match old {
                        Some(v) => {
                            fr.locals.insert(name, v);
                        }
                        None => {
                            fr.locals.remove(&name);
                        }
                    }
                }
                result
            }
        }))
    }

    fn eval_call(
        &self,
        name: &str,
        args: &[Expr],
        fr: &mut Frame<'_, '_>,
    ) -> Result<Flow, InterpError> {
        macro_rules! val {
            ($e:expr) => {
                match self.eval($e, fr)? {
                    Flow::Val(v) => v,
                    Flow::Exit => return Ok(Flow::Exit),
                }
            };
        }
        match name {
            "exit" => return Ok(Flow::Exit),
            "ZeroExtend" => {
                let v = val!(&args[0]).bits();
                let Expr::LitInt(n) = args[1] else {
                    unreachable!("checked")
                };
                return Ok(Flow::Val(CVal::Bits(v.zero_extend(n as u32 - v.width()))));
            }
            "SignExtend" => {
                let v = val!(&args[0]).bits();
                let Expr::LitInt(n) = args[1] else {
                    unreachable!("checked")
                };
                return Ok(Flow::Val(CVal::Bits(v.sign_extend(n as u32 - v.width()))));
            }
            "UInt" => {
                let v = val!(&args[0]).bits();
                return Ok(Flow::Val(CVal::Int(v.to_u128() as i128)));
            }
            "SInt" => {
                let v = val!(&args[0]).bits();
                return Ok(Flow::Val(CVal::Int(v.to_i128())));
            }
            "to_bits" => {
                let Expr::LitInt(n) = args[0] else {
                    unreachable!("checked")
                };
                let v = val!(&args[1]).int();
                return Ok(Flow::Val(CVal::Bits(Bv::new(n as u32, v as u128))));
            }
            "read_mem" => {
                let addr = val!(&args[0]).bits();
                let Expr::LitInt(n) = args[1] else {
                    unreachable!("checked")
                };
                let v = fr.mem.read(addr.to_u64(), n as u32);
                return Ok(Flow::Val(CVal::Bits(v)));
            }
            "write_mem" => {
                let addr = val!(&args[0]).bits();
                let Expr::LitInt(n) = args[1] else {
                    unreachable!("checked")
                };
                let v = val!(&args[2]).bits();
                fr.mem.write(addr.to_u64(), n as u32, v);
                return Ok(Flow::Val(CVal::Unit));
            }
            "reverse_bits" => {
                let v = val!(&args[0]).bits();
                return Ok(Flow::Val(CVal::Bits(v.reverse_bits())));
            }
            "undefined_bits" => {
                let Expr::LitInt(n) = args[0] else {
                    unreachable!("checked")
                };
                // Concrete semantics: an arbitrary value; we pick zero.
                return Ok(Flow::Val(CVal::Bits(Bv::zero(n as u32))));
            }
            _ => {}
        }
        // User function.
        if fr.depth >= MAX_CALL_DEPTH {
            return rt_err(format!("call depth exceeded calling `{name}`"));
        }
        self.calls.set(self.calls.get() + 1);
        let Some(f) = self.cm.model.function(name) else {
            return rt_err(format!("unknown function `{name}`"));
        };
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(val!(a));
        }
        let locals: HashMap<String, CVal> = f
            .params
            .iter()
            .zip(vals)
            .map(|((p, _), v)| (p.clone(), v))
            .collect();
        let mut inner = Frame {
            locals,
            state: fr.state,
            mem: fr.mem,
            depth: fr.depth + 1,
        };
        self.eval(&f.body, &mut inner)
    }
}

struct Frame<'s, 'mm> {
    locals: HashMap<String, CVal>,
    state: &'s mut SailState,
    mem: &'mm mut dyn SailMem,
    depth: u32,
}

fn eval_binop(op: Binop, a: CVal, b: CVal) -> Result<CVal, InterpError> {
    use Binop::*;
    Ok(match (op, a, b) {
        (Add, CVal::Bits(x), CVal::Bits(y)) => CVal::Bits(x.add(&y)),
        (Sub, CVal::Bits(x), CVal::Bits(y)) => CVal::Bits(x.sub(&y)),
        (Mul, CVal::Bits(x), CVal::Bits(y)) => CVal::Bits(x.mul(&y)),
        (Add, CVal::Int(x), CVal::Int(y)) => CVal::Int(x + y),
        (Sub, CVal::Int(x), CVal::Int(y)) => CVal::Int(x - y),
        (Mul, CVal::Int(x), CVal::Int(y)) => CVal::Int(x * y),
        (BitAnd, CVal::Bits(x), CVal::Bits(y)) => CVal::Bits(x.and(&y)),
        (BitOr, CVal::Bits(x), CVal::Bits(y)) => CVal::Bits(x.or(&y)),
        (BitXor, CVal::Bits(x), CVal::Bits(y)) => CVal::Bits(x.xor(&y)),
        (Shl, CVal::Bits(x), CVal::Bits(y)) => CVal::Bits(x.shl(&y)),
        (Shr, CVal::Bits(x), CVal::Bits(y)) => CVal::Bits(x.lshr(&y)),
        (AShr, CVal::Bits(x), CVal::Bits(y)) => CVal::Bits(x.ashr(&y)),
        (Shl, CVal::Bits(x), CVal::Int(n)) => CVal::Bits(x.shl(&amount(x, n))),
        (Shr, CVal::Bits(x), CVal::Int(n)) => CVal::Bits(x.lshr(&amount(x, n))),
        (AShr, CVal::Bits(x), CVal::Int(n)) => CVal::Bits(x.ashr(&amount(x, n))),
        (Concat, CVal::Bits(x), CVal::Bits(y)) => CVal::Bits(x.concat(&y)),
        (Eq, x, y) => CVal::Bool(x == y),
        (Ne, x, y) => CVal::Bool(x != y),
        (Lt, CVal::Bits(x), CVal::Bits(y)) => CVal::Bool(x.ult(&y)),
        (Le, CVal::Bits(x), CVal::Bits(y)) => CVal::Bool(x.ule(&y)),
        (Lt, CVal::Int(x), CVal::Int(y)) => CVal::Bool(x < y),
        (Le, CVal::Int(x), CVal::Int(y)) => CVal::Bool(x <= y),
        (SLt, CVal::Bits(x), CVal::Bits(y)) => CVal::Bool(x.slt(&y)),
        (SLe, CVal::Bits(x), CVal::Bits(y)) => CVal::Bool(x.sle(&y)),
        (op, a, b) => {
            return rt_err(format!(
                "ill-typed binop {op:?} on {a:?}, {b:?} (checker bug)"
            ))
        }
    })
}

fn amount(x: Bv, n: i128) -> Bv {
    Bv::new(x.width(), n.clamp(0, 255) as u128)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_model;
    use crate::parser::parse_model;

    fn setup(src: &str) -> CheckedModel {
        check_model(&parse_model(src).expect("parses")).expect("checks")
    }

    #[test]
    fn add_sp_model_executes() {
        let cm = setup(
            "register SP_EL2 : bits(64)
             register _PC : bits(64)
             function add_sp(imm : bits(64)) -> unit = {
               SP_EL2 = SP_EL2 + imm;
               _PC = _PC + 0x0000000000000004;
             }",
        );
        let interp = Interp::new(&cm).expect("consts");
        let mut st = SailState::zeroed(&cm);
        st.regs.insert("SP_EL2".into(), Bv::new(64, 0x8_0000));
        st.regs.insert("_PC".into(), Bv::new(64, 0x1000));
        let mut mem = MapMem::default();
        let (v, c) = interp
            .call("add_sp", &[CVal::Bits(Bv::new(64, 64))], &mut st, &mut mem)
            .expect("runs");
        assert_eq!(v, CVal::Unit);
        assert_eq!(c, Completion::Done);
        assert_eq!(st.regs["SP_EL2"], Bv::new(64, 0x8_0040));
        assert_eq!(st.regs["_PC"], Bv::new(64, 0x1004));
    }

    #[test]
    fn register_arrays_read_and_write() {
        let cm = setup(
            "register X : vector(31, bits(64))
             function mov(d : int, s : int) -> unit = { X[d] = X[s]; }",
        );
        let interp = Interp::new(&cm).expect("consts");
        let mut st = SailState::zeroed(&cm);
        st.arrays.get_mut("X").expect("X")[3] = Bv::new(64, 42);
        let mut mem = MapMem::default();
        interp
            .call("mov", &[CVal::Int(5), CVal::Int(3)], &mut st, &mut mem)
            .expect("runs");
        assert_eq!(st.arrays["X"][5], Bv::new(64, 42));
    }

    #[test]
    fn out_of_range_index_is_runtime_error() {
        let cm = setup(
            "register X : vector(31, bits(64))
             function get(n : int) -> bits(64) = X[n]",
        );
        let interp = Interp::new(&cm).expect("consts");
        let mut st = SailState::zeroed(&cm);
        let mut mem = MapMem::default();
        let err = interp
            .call("get", &[CVal::Int(31)], &mut st, &mut mem)
            .expect_err("fails");
        assert!(err.message.contains("out of range"), "{err}");
    }

    #[test]
    fn exit_terminates_early() {
        let cm = setup(
            "register R : bits(8)
             function f(fault : bool) -> unit = {
               if fault then { R = 0xff; exit(); };
               R = 0x01;
             }",
        );
        let interp = Interp::new(&cm).expect("consts");
        let mut mem = MapMem::default();
        let mut st = SailState::zeroed(&cm);
        let (_, c) = interp
            .call("f", &[CVal::Bool(true)], &mut st, &mut mem)
            .expect("runs");
        assert_eq!(c, Completion::Exited);
        assert_eq!(st.regs["R"], Bv::new(8, 0xff), "writes before exit persist");
        let (_, c) = interp
            .call("f", &[CVal::Bool(false)], &mut st, &mut mem)
            .expect("runs");
        assert_eq!(c, Completion::Done);
        assert_eq!(st.regs["R"], Bv::new(8, 0x01));
    }

    #[test]
    fn memory_builtins_work() {
        let cm = setup(
            "function copy_byte(s : bits(64), d : bits(64)) -> unit = {
               let b : bits(8) = read_mem(s, 1);
               write_mem(d, 1, b);
             }",
        );
        let interp = Interp::new(&cm).expect("consts");
        let mut st = SailState::new();
        let mut mem = MapMem::default();
        mem.bytes.insert(0x100, 0xab);
        interp
            .call(
                "copy_byte",
                &[
                    CVal::Bits(Bv::new(64, 0x100)),
                    CVal::Bits(Bv::new(64, 0x200)),
                ],
                &mut st,
                &mut mem,
            )
            .expect("runs");
        assert_eq!(mem.bytes.get(&0x200), Some(&0xab));
    }

    #[test]
    fn constants_are_available() {
        let cm = setup(
            "let MAGIC : bits(64) = 0x0000000000000040
             register R : bits(64)
             function f() -> unit = { R = MAGIC; }",
        );
        let interp = Interp::new(&cm).expect("consts");
        let mut st = SailState::zeroed(&cm);
        let mut mem = MapMem::default();
        interp.call("f", &[], &mut st, &mut mem).expect("runs");
        assert_eq!(st.regs["R"], Bv::new(64, 0x40));
    }

    #[test]
    fn match_and_builtins_compose() {
        let cm = setup(
            "function widen(shift : bits(2), imm : bits(12)) -> bits(64) =
               match shift {
                 0b00 => ZeroExtend(imm, 64),
                 0b01 => ZeroExtend(imm, 64) << 12,
                 _ => 0x0000000000000000
               }",
        );
        let interp = Interp::new(&cm).expect("consts");
        let mut st = SailState::new();
        let mut mem = MapMem::default();
        let (v, _) = interp
            .call(
                "widen",
                &[CVal::Bits(Bv::new(2, 1)), CVal::Bits(Bv::new(12, 0xabc))],
                &mut st,
                &mut mem,
            )
            .expect("runs");
        assert_eq!(v, CVal::Bits(Bv::new(64, 0xabc000)));
    }

    #[test]
    fn metrics_count_steps_and_calls_deterministically() {
        let cm = setup(
            "register R : bits(64)
             function helper(x : bits(64)) -> bits(64) = x + 0x0000000000000001
             function f() -> unit = { R = helper(helper(R)); }",
        );
        let interp = Interp::new(&cm).expect("consts");
        let mut st = SailState::zeroed(&cm);
        let mut mem = MapMem::default();
        assert_eq!(interp.metrics(), SailMetrics::default());
        interp.call("f", &[], &mut st, &mut mem).expect("runs");
        let first = interp.metrics();
        // f + 2× helper.
        assert_eq!(first.calls, 3);
        assert!(first.steps > 0, "eval steps recorded");
        // A second identical run adds exactly the same effort.
        interp.call("f", &[], &mut st, &mut mem).expect("runs");
        let second = interp.metrics();
        assert_eq!(second.calls, 2 * first.calls);
        assert_eq!(second.steps, 2 * first.steps);
        interp.reset_metrics();
        assert_eq!(interp.metrics(), SailMetrics::default());
    }

    #[test]
    fn replay_journals_writes_in_execution_order() {
        let cm = setup(
            "register SP : bits(64)
             register X : vector(4, bits(64))
             function f() -> unit = {
               SP = 0x0000000000000010;
               X[2] = SP;
               SP = 0x0000000000000020;
             }",
        );
        let interp = Interp::new(&cm).expect("consts");
        let mut st = SailState::zeroed(&cm);
        let mut mem = MapMem::default();
        let r = interp
            .replay("f", &[], &mut st, &mut mem, 10_000)
            .expect("runs");
        assert_eq!(r.completion, Completion::Done);
        assert_eq!(
            r.writes,
            vec![
                RegWrite {
                    name: "SP".into(),
                    index: None,
                    value: Bv::new(64, 0x10),
                },
                RegWrite {
                    name: "X".into(),
                    index: Some(2),
                    value: Bv::new(64, 0x10),
                },
                RegWrite {
                    name: "SP".into(),
                    index: None,
                    value: Bv::new(64, 0x20),
                },
            ]
        );
        // Journalling is replay-only: a plain call records nothing and a
        // later replay starts from an empty journal.
        interp.call("f", &[], &mut st, &mut mem).expect("runs");
        let r2 = interp
            .replay("f", &[], &mut st, &mut mem, 10_000)
            .expect("runs");
        assert_eq!(r2.writes.len(), 3);
    }

    #[test]
    fn replay_step_budget_bounds_divergent_models() {
        // Infinite mutual recursion would also trip MAX_CALL_DEPTH; use a
        // budget small enough to hit first.
        let cm = setup(
            "register R : bits(64)
             function f() -> unit = { R = R + 0x0000000000000001; f(); }",
        );
        let interp = Interp::new(&cm).expect("consts");
        let mut st = SailState::zeroed(&cm);
        let mut mem = MapMem::default();
        let err = interp
            .replay("f", &[], &mut st, &mut mem, 50)
            .expect_err("budget trips");
        assert!(err.message.contains("step budget exceeded"), "{err}");
        // The ceiling is cleared afterwards: the same call now runs until
        // the recursion bound, not the stale step ceiling.
        let err = interp.call("f", &[], &mut st, &mut mem).expect_err("depth");
        assert!(err.message.contains("depth"), "{err}");
    }

    #[test]
    fn recursion_is_bounded() {
        let cm = setup("function f() -> unit = f()");
        let interp = Interp::new(&cm).expect("consts");
        let mut st = SailState::new();
        let mut mem = MapMem::default();
        let err = interp.call("f", &[], &mut st, &mut mem).expect_err("fails");
        assert!(err.message.contains("depth"), "{err}");
    }
}
