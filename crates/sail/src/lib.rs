//! Mini-Sail: a small ISA definition language in the style of Sail.
//!
//! The Islaris paper builds on the full Sail models of Armv8-A (113k lines)
//! and RISC-V (14k lines). This crate provides the language those models'
//! *fragments* are written in for this reproduction (`islaris-models`):
//! a lexer, parser, static checker with name resolution, and a concrete
//! interpreter. The symbolic executor over the same AST lives in
//! `islaris-isla`.
//!
//! # Examples
//!
//! ```
//! use islaris_bv::Bv;
//! use islaris_sail::{check_model, parse_model, CVal, Interp, MapMem, SailState};
//!
//! let model = parse_model(
//!     "register _PC : bits(64)
//!      function bump() -> unit = { _PC = _PC + 0x0000000000000004; }",
//! )?;
//! let cm = check_model(&model)?;
//! let interp = Interp::new(&cm)?;
//! let mut st = SailState::zeroed(&cm);
//! interp.call("bump", &[], &mut st, &mut MapMem::default())?;
//! assert_eq!(st.regs["_PC"], Bv::new(64, 4));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
pub mod check;
pub mod interp;
pub mod lexer;
pub mod parser;

pub use ast::{
    Binop, ConstDecl, Expr, Function, LValue, Model, Pattern, RegisterDecl, Stmt, Ty, Unop,
};
pub use check::{check_model, CheckError, CheckedModel, Globals, BUILTINS};
pub use interp::{
    CVal, Completion, Interp, InterpError, MapMem, RegWrite, Replay, SailMem, SailState,
};
pub use lexer::{lex, LexError, Tok, Token};
pub use parser::{parse_expr, parse_model, SailParseError};
