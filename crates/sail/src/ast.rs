//! Abstract syntax of mini-Sail.
//!
//! Mini-Sail is a deliberately small ISA definition language in the style
//! of Sail: first-order functions over bitvectors with register and memory
//! effects, used to write the Armv8-A and RISC-V model fragments in
//! `islaris-models`. Compared to full Sail it has no polymorphic bitvector
//! widths, no loops (Isla unrolls/specialises those anyway), and immutable
//! locals; it keeps Sail's decode-dispatch structure, register arrays,
//! field registers, literal-pattern `match`, and early instruction
//! termination (`exit()`) for exception entry.

use islaris_bv::Bv;

/// Types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// `bits(N)`.
    Bits(u32),
    /// `bool`.
    Bool,
    /// Mathematical integer (register indices, `UInt` results). Must be
    /// concrete during symbolic execution.
    Int,
    /// `unit`.
    Unit,
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ty::Bits(n) => write!(f, "bits({n})"),
            Ty::Bool => write!(f, "bool"),
            Ty::Int => write!(f, "int"),
            Ty::Unit => write!(f, "unit"),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unop {
    /// Boolean `!`.
    Not,
    /// Bitwise `~`.
    BitNot,
    /// Integer negation `-`.
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Binop {
    /// `+` (bits of equal width, or int).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `&` bitwise (or `&&` on bool — normalised to [`Binop::BoolAnd`]).
    BitAnd,
    /// `|` bitwise.
    BitOr,
    /// `^` bitwise.
    BitXor,
    /// `<<` logical shift left (shift amount: int literal or bits).
    Shl,
    /// `>>` logical shift right.
    Shr,
    /// `>>_a` arithmetic shift right.
    AShr,
    /// `@` concatenation (left operand = high bits).
    Concat,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<` unsigned on bits, ordinary on int.
    Lt,
    /// `<=`.
    Le,
    /// `<_s` signed.
    SLt,
    /// `<=_s` signed.
    SLe,
    /// `&&`.
    BoolAnd,
    /// `||`.
    BoolOr,
}

/// Patterns of a `match` arm: literals or the wildcard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    /// A bitvector literal.
    Bits(Bv),
    /// An integer literal.
    Int(i128),
    /// `_`.
    Wildcard,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Bitvector literal (`0x…`, `0b…`).
    LitBits(Bv),
    /// `true` / `false`.
    LitBool(bool),
    /// Decimal integer literal.
    LitInt(i128),
    /// `()`.
    Unit,
    /// A local variable or parameter.
    Var(String),
    /// A whole register (or register field, e.g. `PSTATE.EL`), or a
    /// global constant.
    Global(String),
    /// `X[e]` — register array element.
    RegIdx(String, Box<Expr>),
    /// `e[hi .. lo]` — bit slice with literal indices.
    Slice(Box<Expr>, u32, u32),
    /// Unary operation.
    Unop(Unop, Box<Expr>),
    /// Binary operation.
    Binop(Binop, Box<Expr>, Box<Expr>),
    /// Function or builtin call.
    Call(String, Vec<Expr>),
    /// `if c then e₁ else e₂`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `match e { pat => e, … }`.
    Match(Box<Expr>, Vec<(Pattern, Expr)>),
    /// `{ stmt; …; e? }` — value is the final expression, or `()`.
    Block(Vec<Stmt>, Option<Box<Expr>>),
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A register (or field register).
    Reg(String),
    /// A register array element `X[e]`.
    RegIdx(String, Box<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let x : ty = e;` — immutable local binding.
    Let(String, Ty, Expr),
    /// `reg = e;` / `X[e] = e;`.
    Assign(LValue, Expr),
    /// An expression in statement position (calls, `if` without value).
    Expr(Expr),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Name.
    pub name: String,
    /// Parameters with types.
    pub params: Vec<(String, Ty)>,
    /// Return type.
    pub ret: Ty,
    /// Body.
    pub body: Expr,
}

/// A register declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterDecl {
    /// Name, possibly with a field dot (`PSTATE.EL`).
    pub name: String,
    /// Element type.
    pub ty: Ty,
    /// `Some(len)` for `vector(len, bits(w))` register arrays.
    pub array_len: Option<u32>,
}

/// A global constant (`let NAME : ty = e` at top level; the initialiser
/// must be a literal expression).
#[derive(Debug, Clone, PartialEq)]
pub struct ConstDecl {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Ty,
    /// Initialiser.
    pub init: Expr,
}

/// A complete mini-Sail model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Model {
    /// Register declarations.
    pub registers: Vec<RegisterDecl>,
    /// Global constants.
    pub consts: Vec<ConstDecl>,
    /// Function definitions.
    pub functions: Vec<Function>,
}

impl Model {
    /// Looks up a function by name.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a register declaration by name.
    #[must_use]
    pub fn register(&self, name: &str) -> Option<&RegisterDecl> {
        self.registers.iter().find(|r| r.name == name)
    }

    /// Looks up a global constant by name.
    #[must_use]
    pub fn constant(&self, name: &str) -> Option<&ConstDecl> {
        self.consts.iter().find(|c| c.name == name)
    }

    /// Total number of non-whitespace source lines is not tracked here;
    /// this counts definitions as a crude size metric.
    #[must_use]
    pub fn num_definitions(&self) -> usize {
        self.registers.len() + self.consts.len() + self.functions.len()
    }
}
