//! Recursive-descent / precedence-climbing parser for mini-Sail.

use std::fmt;

use crate::ast::{
    Binop, ConstDecl, Expr, Function, LValue, Model, Pattern, RegisterDecl, Stmt, Ty, Unop,
};
use crate::lexer::{lex, LexError, Tok, Token};

/// A parse error with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SailParseError {
    /// 1-based source line (0 if end of input).
    pub line: u32,
    /// Description.
    pub message: String,
}

impl fmt::Display for SailParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SailParseError {}

impl From<LexError> for SailParseError {
    fn from(e: LexError) -> Self {
        SailParseError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Parses a complete mini-Sail model.
pub fn parse_model(src: &str) -> Result<Model, SailParseError> {
    let tokens = lex(src)?;
    let mut p = P {
        toks: &tokens,
        pos: 0,
    };
    let mut model = Model::default();
    while !p.at_end() {
        match p.peek_ident() {
            Some("register") => model.registers.push(p.register()?),
            Some("let") => model.consts.push(p.const_decl()?),
            Some("function") => model.functions.push(p.function()?),
            _ => return p.fail("expected `register`, `let`, or `function`"),
        }
    }
    Ok(model)
}

/// Parses a single expression (used by tests and the REPL-style tools).
pub fn parse_expr(src: &str) -> Result<Expr, SailParseError> {
    let tokens = lex(src)?;
    let mut p = P {
        toks: &tokens,
        pos: 0,
    };
    let e = p.expr()?;
    if !p.at_end() {
        return p.fail("trailing tokens after expression");
    }
    Ok(e)
}

struct P<'a> {
    toks: &'a [Token],
    pos: usize,
}

const KEYWORDS: &[&str] = &[
    "register", "function", "let", "if", "then", "else", "match", "true", "false", "bits", "bool",
    "int", "unit", "vector",
];

impl P<'_> {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(0, |t| t.line)
    }

    fn fail<T>(&self, msg: impl Into<String>) -> Result<T, SailParseError> {
        let found = self
            .toks
            .get(self.pos)
            .map_or("end of input".to_owned(), |t| format!("`{}`", t.kind));
        Err(SailParseError {
            line: self.line(),
            message: format!("{} (found {found})", msg.into()),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn peek_ident(&self) -> Option<&str> {
        match self.peek() {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), SailParseError> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            self.fail(format!("expected `{tok}`"))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SailParseError> {
        if self.peek_ident() == Some(kw) {
            self.pos += 1;
            Ok(())
        } else {
            self.fail(format!("expected `{kw}`"))
        }
    }

    fn ident(&mut self) -> Result<String, SailParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) if !KEYWORDS.contains(&s.as_str()) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => self.fail("expected identifier"),
        }
    }

    fn int_lit(&mut self) -> Result<i128, SailParseError> {
        match self.peek() {
            Some(Tok::Int(n)) => {
                let n = *n;
                self.pos += 1;
                Ok(n)
            }
            _ => self.fail("expected integer literal"),
        }
    }

    fn ty(&mut self) -> Result<Ty, SailParseError> {
        match self.peek_ident() {
            Some("bits") => {
                self.pos += 1;
                self.expect(&Tok::LParen)?;
                let n = self.int_lit()?;
                self.expect(&Tok::RParen)?;
                if !(1..=128).contains(&n) {
                    return self.fail("bits width must be in 1..=128");
                }
                Ok(Ty::Bits(n as u32))
            }
            Some("bool") => {
                self.pos += 1;
                Ok(Ty::Bool)
            }
            Some("int") => {
                self.pos += 1;
                Ok(Ty::Int)
            }
            Some("unit") => {
                self.pos += 1;
                Ok(Ty::Unit)
            }
            _ => self.fail("expected a type"),
        }
    }

    fn register(&mut self) -> Result<RegisterDecl, SailParseError> {
        self.expect_kw("register")?;
        let name = self.ident()?;
        self.expect(&Tok::Colon)?;
        if self.peek_ident() == Some("vector") {
            self.pos += 1;
            self.expect(&Tok::LParen)?;
            let len = self.int_lit()?;
            self.expect(&Tok::Comma)?;
            let ty = self.ty()?;
            self.expect(&Tok::RParen)?;
            if len <= 0 {
                return self.fail("vector length must be positive");
            }
            Ok(RegisterDecl {
                name,
                ty,
                array_len: Some(len as u32),
            })
        } else {
            let ty = self.ty()?;
            Ok(RegisterDecl {
                name,
                ty,
                array_len: None,
            })
        }
    }

    fn const_decl(&mut self) -> Result<ConstDecl, SailParseError> {
        self.expect_kw("let")?;
        let name = self.ident()?;
        self.expect(&Tok::Colon)?;
        let ty = self.ty()?;
        self.expect(&Tok::Assign)?;
        let init = self.expr()?;
        Ok(ConstDecl { name, ty, init })
    }

    fn function(&mut self) -> Result<Function, SailParseError> {
        self.expect_kw("function")?;
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                let pname = self.ident()?;
                self.expect(&Tok::Colon)?;
                let pty = self.ty()?;
                params.push((pname, pty));
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::Arrow)?;
        let ret = self.ty()?;
        self.expect(&Tok::Assign)?;
        let body = self.expr()?;
        Ok(Function {
            name,
            params,
            ret,
            body,
        })
    }

    // ----- expressions -----

    fn expr(&mut self) -> Result<Expr, SailParseError> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, SailParseError> {
        let mut lhs = self.unary()?;
        loop {
            let Some((prec, op, swap)) = self.peek().and_then(binop_of) else {
                return Ok(lhs);
            };
            if prec < min_prec {
                return Ok(lhs);
            }
            self.pos += 1;
            let rhs = self.binary(prec + 1)?;
            lhs = if swap {
                Expr::Binop(op, Box::new(rhs), Box::new(lhs))
            } else {
                Expr::Binop(op, Box::new(lhs), Box::new(rhs))
            };
        }
    }

    fn unary(&mut self) -> Result<Expr, SailParseError> {
        match self.peek() {
            Some(Tok::Bang) => {
                self.pos += 1;
                Ok(Expr::Unop(Unop::Not, Box::new(self.unary()?)))
            }
            Some(Tok::Tilde) => {
                self.pos += 1;
                Ok(Expr::Unop(Unop::BitNot, Box::new(self.unary()?)))
            }
            Some(Tok::Minus) => {
                self.pos += 1;
                Ok(Expr::Unop(Unop::Neg, Box::new(self.unary()?)))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, SailParseError> {
        let mut e = self.primary()?;
        while self.peek() == Some(&Tok::LBracket) {
            self.pos += 1;
            let first = self.expr()?;
            if self.peek() == Some(&Tok::DotDot) {
                self.pos += 1;
                let lo = self.int_lit()?;
                self.expect(&Tok::RBracket)?;
                let hi = match first {
                    Expr::LitInt(n) => n,
                    _ => return self.fail("slice bounds must be integer literals"),
                };
                if hi < lo || !(0..=127).contains(&hi) || !(0..=127).contains(&lo) {
                    return self.fail("invalid slice bounds");
                }
                e = Expr::Slice(Box::new(e), hi as u32, lo as u32);
            } else {
                self.expect(&Tok::RBracket)?;
                match e {
                    Expr::Var(name) => e = Expr::RegIdx(name, Box::new(first)),
                    _ => return self.fail("indexing is only supported on register arrays"),
                }
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, SailParseError> {
        match self.peek().cloned() {
            Some(Tok::Bits(b)) => {
                self.pos += 1;
                Ok(Expr::LitBits(b))
            }
            Some(Tok::Int(n)) => {
                self.pos += 1;
                Ok(Expr::LitInt(n))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                if self.peek() == Some(&Tok::RParen) {
                    self.pos += 1;
                    return Ok(Expr::Unit);
                }
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::LBrace) => self.block(),
            Some(Tok::Ident(id)) => match id.as_str() {
                "true" => {
                    self.pos += 1;
                    Ok(Expr::LitBool(true))
                }
                "false" => {
                    self.pos += 1;
                    Ok(Expr::LitBool(false))
                }
                "if" => self.if_expr(),
                "match" => self.match_expr(),
                kw if KEYWORDS.contains(&kw) => self.fail("unexpected keyword"),
                _ => {
                    self.pos += 1;
                    if self.peek() == Some(&Tok::LParen) {
                        self.pos += 1;
                        let mut args = Vec::new();
                        if self.peek() != Some(&Tok::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if self.peek() == Some(&Tok::Comma) {
                                    self.pos += 1;
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect(&Tok::RParen)?;
                        Ok(Expr::Call(id, args))
                    } else {
                        Ok(Expr::Var(id))
                    }
                }
            },
            _ => self.fail("expected expression"),
        }
    }

    fn if_expr(&mut self) -> Result<Expr, SailParseError> {
        self.expect_kw("if")?;
        let c = self.expr()?;
        self.expect_kw("then")?;
        let t = self.expr()?;
        let e = if self.peek_ident() == Some("else") {
            self.pos += 1;
            self.expr()?
        } else {
            Expr::Unit
        };
        Ok(Expr::If(Box::new(c), Box::new(t), Box::new(e)))
    }

    fn match_expr(&mut self) -> Result<Expr, SailParseError> {
        self.expect_kw("match")?;
        let scrutinee = self.expr()?;
        self.expect(&Tok::LBrace)?;
        let mut arms = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            let pat = match self.peek().cloned() {
                Some(Tok::Bits(b)) => {
                    self.pos += 1;
                    Pattern::Bits(b)
                }
                Some(Tok::Int(n)) => {
                    self.pos += 1;
                    Pattern::Int(n)
                }
                Some(Tok::Ident(id)) if id == "_" => {
                    self.pos += 1;
                    Pattern::Wildcard
                }
                _ => return self.fail("expected pattern (literal or `_`)"),
            };
            self.expect(&Tok::FatArrow)?;
            let body = self.expr()?;
            arms.push((pat, body));
            if self.peek() == Some(&Tok::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.expect(&Tok::RBrace)?;
        if arms.is_empty() {
            return self.fail("match must have at least one arm");
        }
        Ok(Expr::Match(Box::new(scrutinee), arms))
    }

    fn block(&mut self) -> Result<Expr, SailParseError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts: Vec<Stmt> = Vec::new();
        let mut value: Option<Box<Expr>> = None;
        loop {
            if self.peek() == Some(&Tok::RBrace) {
                self.pos += 1;
                return Ok(Expr::Block(stmts, value));
            }
            if value.is_some() {
                return self.fail("expected `}` after block value");
            }
            // let-binding?
            if self.peek_ident() == Some("let") {
                self.pos += 1;
                let name = self.ident()?;
                self.expect(&Tok::Colon)?;
                let ty = self.ty()?;
                self.expect(&Tok::Assign)?;
                let init = self.expr()?;
                stmts.push(Stmt::Let(name, ty, init));
                self.expect(&Tok::Semi)?;
                continue;
            }
            let e = self.expr()?;
            if self.peek() == Some(&Tok::Assign) {
                self.pos += 1;
                let lv = match e {
                    Expr::Var(name) => LValue::Reg(name),
                    Expr::RegIdx(name, idx) => LValue::RegIdx(name, idx),
                    _ => return self.fail("invalid assignment target"),
                };
                let rhs = self.expr()?;
                stmts.push(Stmt::Assign(lv, rhs));
                self.expect(&Tok::Semi)?;
                continue;
            }
            if self.peek() == Some(&Tok::Semi) {
                self.pos += 1;
                stmts.push(Stmt::Expr(e));
            } else {
                value = Some(Box::new(e));
            }
        }
    }
}

/// Returns (precedence, op, swap-operands) for a binary operator token.
fn binop_of(tok: &Tok) -> Option<(u8, Binop, bool)> {
    Some(match tok {
        Tok::PipePipe => (1, Binop::BoolOr, false),
        Tok::AmpAmp => (2, Binop::BoolAnd, false),
        Tok::EqEq => (3, Binop::Eq, false),
        Tok::NotEq => (3, Binop::Ne, false),
        Tok::Lt => (3, Binop::Lt, false),
        Tok::Le => (3, Binop::Le, false),
        Tok::Gt => (3, Binop::Lt, true),
        Tok::Ge => (3, Binop::Le, true),
        Tok::SLt => (3, Binop::SLt, false),
        Tok::SLe => (3, Binop::SLe, false),
        Tok::At => (4, Binop::Concat, false),
        Tok::Pipe => (5, Binop::BitOr, false),
        Tok::Caret => (6, Binop::BitXor, false),
        Tok::Amp => (7, Binop::BitAnd, false),
        Tok::Shl => (8, Binop::Shl, false),
        Tok::Shr => (8, Binop::Shr, false),
        Tok::AShr => (8, Binop::AShr, false),
        Tok::Plus => (9, Binop::Add, false),
        Tok::Minus => (9, Binop::Sub, false),
        Tok::Star => (10, Binop::Mul, false),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use islaris_bv::Bv;

    #[test]
    fn parses_register_declarations() {
        let m = parse_model(
            "register SP_EL2 : bits(64)\n\
             register PSTATE.EL : bits(2)\n\
             register X : vector(31, bits(64))",
        )
        .expect("parses");
        assert_eq!(m.registers.len(), 3);
        assert_eq!(m.registers[1].name, "PSTATE.EL");
        assert_eq!(m.registers[2].array_len, Some(31));
    }

    #[test]
    fn parses_function_with_block() {
        let m = parse_model(
            "function bump_pc() -> unit = {
               let pc : bits(64) = _PC;
               _PC = pc + 0x0000000000000004;
             }",
        )
        .expect("parses");
        let f = m.function("bump_pc").expect("defined");
        assert_eq!(f.ret, Ty::Unit);
        match &f.body {
            Expr::Block(stmts, value) => {
                assert_eq!(stmts.len(), 2);
                assert!(value.is_none());
                assert!(matches!(&stmts[1], Stmt::Assign(LValue::Reg(r), _) if r == "_PC"));
            }
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn precedence_binds_correctly() {
        // a + b * c == d parses as ((a + (b*c)) == d)
        let e = parse_expr("a + b * c == d").expect("parses");
        match e {
            Expr::Binop(Binop::Eq, lhs, _) => match *lhs {
                Expr::Binop(Binop::Add, _, rhs) => {
                    assert!(matches!(*rhs, Expr::Binop(Binop::Mul, _, _)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn greater_than_swaps_operands() {
        let e = parse_expr("a > b").expect("parses");
        match e {
            Expr::Binop(Binop::Lt, lhs, rhs) => {
                assert_eq!(*lhs, Expr::Var("b".into()));
                assert_eq!(*rhs, Expr::Var("a".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_slices_and_indexing() {
        let e = parse_expr("opcode[4 .. 0]").expect("parses");
        assert!(matches!(e, Expr::Slice(_, 4, 0)));
        let e = parse_expr("X[UInt(Rd)]").expect("parses");
        match e {
            Expr::RegIdx(name, idx) => {
                assert_eq!(name, "X");
                assert!(matches!(*idx, Expr::Call(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_match() {
        let e = parse_expr("match shift { 0b00 => x, 0b01 => y, _ => z }").expect("parses");
        match e {
            Expr::Match(_, arms) => {
                assert_eq!(arms.len(), 3);
                assert_eq!(arms[0].0, Pattern::Bits(Bv::new(2, 0)));
                assert_eq!(arms[2].0, Pattern::Wildcard);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_if_chains() {
        let e = parse_expr("if a == 0b1 then f(x) else if b then g() else ()").expect("parses");
        assert!(matches!(e, Expr::If(_, _, _)));
    }

    #[test]
    fn if_without_else_is_unit() {
        let e = parse_expr("if c then f()").expect("parses");
        match e {
            Expr::If(_, _, els) => assert_eq!(*els, Expr::Unit),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn block_value_is_final_expression() {
        let e = parse_expr("{ let a : int = 1; a }").expect("parses");
        match e {
            Expr::Block(stmts, Some(v)) => {
                assert_eq!(stmts.len(), 1);
                assert_eq!(*v, Expr::Var("a".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_reports_line() {
        let err = parse_model("register R :\nbogus").expect_err("fails");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_bad_slices() {
        assert!(parse_expr("x[0 .. 4]").is_err());
        assert!(parse_expr("f()[x .. 0]").is_err());
    }
}
