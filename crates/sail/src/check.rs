//! Static checking and name resolution for mini-Sail models.
//!
//! The checker validates scoping, arity, and bitvector widths, and rewrites
//! the AST so that every identifier is resolved: after checking,
//! [`Expr::Var`] always names a local, [`Expr::Global`] a register or
//! constant, and every call site matches a function or builtin signature.
//! Both the concrete interpreter and the symbolic executor run only
//! checked models, so they can treat sort errors as unreachable.

use std::collections::HashMap;
use std::fmt;

use crate::ast::{Binop, ConstDecl, Expr, Function, LValue, Model, Pattern, Stmt, Ty, Unop};

/// A checking error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// Which function (or top-level item) the error is in.
    pub context: String,
    /// Description.
    pub message: String,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in {}: {}", self.context, self.message)
    }
}

impl std::error::Error for CheckError {}

/// The builtin functions of mini-Sail.
///
/// * `ZeroExtend(e, N)` / `SignExtend(e, N)` — extend *to* `N` bits;
/// * `UInt(e)` / `SInt(e)` — bits to integer;
/// * `to_bits(N, e)` — integer to `bits(N)` (truncating two's complement);
/// * `read_mem(addr, N)` — read `N` bytes, little-endian, `bits(8·N)`;
/// * `write_mem(addr, N, v)` — write `N` bytes;
/// * `reverse_bits(e)` — bit reversal (Arm `rbit`);
/// * `exit()` — terminate the instruction (exception entry taken);
/// * `undefined_bits(N)` — an unconstrained value (symbolically: a fresh
///   variable; concretely: zero).
pub const BUILTINS: &[&str] = &[
    "ZeroExtend",
    "SignExtend",
    "UInt",
    "SInt",
    "to_bits",
    "read_mem",
    "write_mem",
    "reverse_bits",
    "exit",
    "undefined_bits",
];

/// Signature information collected from a model.
#[derive(Debug, Clone)]
pub struct Globals {
    /// Register name → (element type, array length if an array).
    pub registers: HashMap<String, (Ty, Option<u32>)>,
    /// Constant name → type.
    pub consts: HashMap<String, Ty>,
    /// Function name → (param types, return type).
    pub functions: HashMap<String, (Vec<Ty>, Ty)>,
}

/// A model that passed checking, with resolved names.
#[derive(Debug, Clone)]
pub struct CheckedModel {
    /// The rewritten model.
    pub model: Model,
    /// Collected signatures.
    pub globals: Globals,
}

/// Checks a model, resolving names and validating types.
pub fn check_model(model: &Model) -> Result<CheckedModel, CheckError> {
    let mut globals = Globals {
        registers: HashMap::new(),
        consts: HashMap::new(),
        functions: HashMap::new(),
    };
    for r in &model.registers {
        if globals
            .registers
            .insert(r.name.clone(), (r.ty, r.array_len))
            .is_some()
        {
            return Err(CheckError {
                context: "registers".into(),
                message: format!("duplicate register `{}`", r.name),
            });
        }
        if r.array_len.is_some() && !matches!(r.ty, Ty::Bits(_)) {
            return Err(CheckError {
                context: "registers".into(),
                message: format!("register array `{}` must hold bits", r.name),
            });
        }
    }
    for c in &model.consts {
        if globals.consts.contains_key(&c.name) || globals.registers.contains_key(&c.name) {
            return Err(CheckError {
                context: "constants".into(),
                message: format!("duplicate global `{}`", c.name),
            });
        }
        globals.consts.insert(c.name.clone(), c.ty);
    }
    for f in &model.functions {
        if BUILTINS.contains(&f.name.as_str()) {
            return Err(CheckError {
                context: f.name.clone(),
                message: "function name shadows a builtin".into(),
            });
        }
        if globals
            .functions
            .insert(
                f.name.clone(),
                (f.params.iter().map(|(_, t)| *t).collect(), f.ret),
            )
            .is_some()
        {
            return Err(CheckError {
                context: f.name.clone(),
                message: "duplicate function".into(),
            });
        }
    }

    let mut checked = Model::default();
    checked.registers = model.registers.clone();
    for c in &model.consts {
        let mut cx = Cx {
            globals: &globals,
            locals: HashMap::new(),
            context: c.name.clone(),
        };
        let (init, ty) = cx.check_expr(&c.init)?;
        if ty != c.ty {
            return Err(cx.error(format!("constant has type {ty}, declared {}", c.ty)));
        }
        checked.consts.push(ConstDecl {
            name: c.name.clone(),
            ty: c.ty,
            init,
        });
    }
    for f in &model.functions {
        let mut cx = Cx {
            globals: &globals,
            locals: f.params.iter().cloned().collect(),
            context: f.name.clone(),
        };
        let (body, ty) = cx.check_expr(&f.body)?;
        if ty != f.ret {
            return Err(cx.error(format!("body has type {ty}, declared return {}", f.ret)));
        }
        checked.functions.push(Function {
            name: f.name.clone(),
            params: f.params.clone(),
            ret: f.ret,
            body,
        });
    }
    Ok(CheckedModel {
        model: checked,
        globals,
    })
}

struct Cx<'g> {
    globals: &'g Globals,
    locals: HashMap<String, Ty>,
    context: String,
}

impl Cx<'_> {
    fn error(&self, message: impl Into<String>) -> CheckError {
        CheckError {
            context: self.context.clone(),
            message: message.into(),
        }
    }

    fn bits_width(&self, ty: Ty, what: &str) -> Result<u32, CheckError> {
        match ty {
            Ty::Bits(w) => Ok(w),
            other => Err(self.error(format!("{what} must be bits, found {other}"))),
        }
    }

    /// Checks an expression, returning the resolved expression and type.
    fn check_expr(&mut self, e: &Expr) -> Result<(Expr, Ty), CheckError> {
        match e {
            Expr::LitBits(b) => Ok((e.clone(), Ty::Bits(b.width()))),
            Expr::LitBool(_) => Ok((e.clone(), Ty::Bool)),
            Expr::LitInt(_) => Ok((e.clone(), Ty::Int)),
            Expr::Unit => Ok((e.clone(), Ty::Unit)),
            Expr::Var(name) => {
                if let Some(ty) = self.locals.get(name) {
                    return Ok((Expr::Var(name.clone()), *ty));
                }
                if let Some((ty, arr)) = self.globals.registers.get(name) {
                    if arr.is_some() {
                        return Err(self.error(format!("register array `{name}` must be indexed")));
                    }
                    return Ok((Expr::Global(name.clone()), *ty));
                }
                if let Some(ty) = self.globals.consts.get(name) {
                    return Ok((Expr::Global(name.clone()), *ty));
                }
                Err(self.error(format!("unknown identifier `{name}`")))
            }
            Expr::Global(_) => unreachable!("Global only appears after resolution"),
            Expr::RegIdx(name, idx) => {
                let Some((ty, Some(_len))) = self.globals.registers.get(name) else {
                    return Err(self.error(format!("`{name}` is not a register array")));
                };
                let elem_ty = *ty;
                let (idx, ity) = self.check_expr(idx)?;
                if ity != Ty::Int {
                    return Err(self.error("register index must be int"));
                }
                Ok((Expr::RegIdx(name.clone(), Box::new(idx)), elem_ty))
            }
            Expr::Slice(base, hi, lo) => {
                let (base, bty) = self.check_expr(base)?;
                let w = self.bits_width(bty, "slice operand")?;
                if *hi >= w {
                    return Err(self.error(format!("slice [{hi} .. {lo}] exceeds width {w}")));
                }
                Ok((Expr::Slice(Box::new(base), *hi, *lo), Ty::Bits(hi - lo + 1)))
            }
            Expr::Unop(op, a) => {
                let (a, ty) = self.check_expr(a)?;
                let rty = match op {
                    Unop::Not => {
                        if ty != Ty::Bool {
                            return Err(self.error("`!` needs bool"));
                        }
                        Ty::Bool
                    }
                    Unop::BitNot => Ty::Bits(self.bits_width(ty, "`~`")?),
                    Unop::Neg => {
                        if ty != Ty::Int {
                            return Err(self.error("unary `-` needs int"));
                        }
                        Ty::Int
                    }
                };
                Ok((Expr::Unop(*op, Box::new(a)), rty))
            }
            Expr::Binop(op, a, b) => {
                let (a, ta) = self.check_expr(a)?;
                let (b, tb) = self.check_expr(b)?;
                let rty = self.binop_type(*op, ta, tb)?;
                Ok((Expr::Binop(*op, Box::new(a), Box::new(b)), rty))
            }
            Expr::Call(name, args) => self.check_call(name, args),
            Expr::If(c, t, f) => {
                let (c, tc) = self.check_expr(c)?;
                if tc != Ty::Bool {
                    return Err(self.error("if condition must be bool"));
                }
                let (t, tt) = self.check_expr(t)?;
                let (f, tf) = self.check_expr(f)?;
                if tt != tf {
                    return Err(self.error(format!("if branches disagree: {tt} vs {tf}")));
                }
                Ok((Expr::If(Box::new(c), Box::new(t), Box::new(f)), tt))
            }
            Expr::Match(s, arms) => {
                let (s, ts) = self.check_expr(s)?;
                if !matches!(arms.last(), Some((Pattern::Wildcard, _))) {
                    return Err(self.error("match must end with a `_` arm"));
                }
                let mut checked_arms = Vec::with_capacity(arms.len());
                let mut arm_ty: Option<Ty> = None;
                for (pat, body) in arms {
                    match (pat, ts) {
                        (Pattern::Wildcard, _) => {}
                        (Pattern::Bits(pb), Ty::Bits(w)) if pb.width() == w => {}
                        (Pattern::Int(_), Ty::Int) => {}
                        (pat, ts) => {
                            return Err(self.error(format!(
                                "pattern {pat:?} does not match scrutinee type {ts}"
                            )))
                        }
                    }
                    let (body, tb) = self.check_expr(body)?;
                    match arm_ty {
                        None => arm_ty = Some(tb),
                        Some(t) if t == tb => {}
                        Some(t) => {
                            return Err(self.error(format!("match arms disagree: {t} vs {tb}")))
                        }
                    }
                    checked_arms.push((pat.clone(), body));
                }
                Ok((
                    Expr::Match(Box::new(s), checked_arms),
                    arm_ty.expect("at least one arm"),
                ))
            }
            Expr::Block(stmts, value) => {
                let saved_locals = self.locals.clone();
                let mut checked_stmts = Vec::with_capacity(stmts.len());
                for stmt in stmts {
                    match stmt {
                        Stmt::Let(name, ty, init) => {
                            let (init, ti) = self.check_expr(init)?;
                            if ti != *ty {
                                return Err(self.error(format!(
                                    "let `{name}`: initialiser has type {ti}, declared {ty}"
                                )));
                            }
                            self.locals.insert(name.clone(), *ty);
                            checked_stmts.push(Stmt::Let(name.clone(), *ty, init));
                        }
                        Stmt::Assign(lv, rhs) => {
                            let (lv, lty) = self.check_lvalue(lv)?;
                            let (rhs, rty) = self.check_expr(rhs)?;
                            if lty != rty {
                                return Err(
                                    self.error(format!("assignment type mismatch: {lty} vs {rty}"))
                                );
                            }
                            checked_stmts.push(Stmt::Assign(lv, rhs));
                        }
                        Stmt::Expr(e) => {
                            let (e, ty) = self.check_expr(e)?;
                            if ty != Ty::Unit {
                                return Err(self.error(format!(
                                    "expression statement must be unit, found {ty}"
                                )));
                            }
                            checked_stmts.push(Stmt::Expr(e));
                        }
                    }
                }
                let (value, vty) = match value {
                    None => (None, Ty::Unit),
                    Some(v) => {
                        let (v, ty) = self.check_expr(v)?;
                        (Some(Box::new(v)), ty)
                    }
                };
                self.locals = saved_locals;
                Ok((Expr::Block(checked_stmts, value), vty))
            }
        }
    }

    fn check_lvalue(&mut self, lv: &LValue) -> Result<(LValue, Ty), CheckError> {
        match lv {
            LValue::Reg(name) => match self.globals.registers.get(name) {
                Some((ty, None)) => Ok((LValue::Reg(name.clone()), *ty)),
                Some((_, Some(_))) => {
                    Err(self.error(format!("register array `{name}` must be indexed")))
                }
                None => Err(self.error(format!("unknown register `{name}`"))),
            },
            LValue::RegIdx(name, idx) => {
                let Some((ty, Some(_))) = self.globals.registers.get(name) else {
                    return Err(self.error(format!("`{name}` is not a register array")));
                };
                let elem = *ty;
                let (idx, ity) = self.check_expr(idx)?;
                if ity != Ty::Int {
                    return Err(self.error("register index must be int"));
                }
                Ok((LValue::RegIdx(name.clone(), Box::new(idx)), elem))
            }
        }
    }

    fn binop_type(&self, op: Binop, ta: Ty, tb: Ty) -> Result<Ty, CheckError> {
        use Binop::*;
        match op {
            BoolAnd | BoolOr => {
                if ta == Ty::Bool && tb == Ty::Bool {
                    Ok(Ty::Bool)
                } else {
                    Err(self.error("boolean connective needs bool operands"))
                }
            }
            Eq | Ne => {
                if ta == tb && ta != Ty::Unit {
                    Ok(Ty::Bool)
                } else {
                    Err(self.error(format!("`==`/`!=` operands disagree: {ta} vs {tb}")))
                }
            }
            Lt | Le => match (ta, tb) {
                (Ty::Bits(x), Ty::Bits(y)) if x == y => Ok(Ty::Bool),
                (Ty::Int, Ty::Int) => Ok(Ty::Bool),
                _ => Err(self.error(format!("comparison operands disagree: {ta} vs {tb}"))),
            },
            SLt | SLe => match (ta, tb) {
                (Ty::Bits(x), Ty::Bits(y)) if x == y => Ok(Ty::Bool),
                _ => Err(self.error("signed comparison needs equal-width bits")),
            },
            Add | Sub | Mul => match (ta, tb) {
                (Ty::Bits(x), Ty::Bits(y)) if x == y => Ok(Ty::Bits(x)),
                (Ty::Int, Ty::Int) => Ok(Ty::Int),
                _ => Err(self.error(format!("arithmetic operands disagree: {ta} vs {tb}"))),
            },
            BitAnd | BitOr | BitXor => match (ta, tb) {
                (Ty::Bits(x), Ty::Bits(y)) if x == y => Ok(Ty::Bits(x)),
                _ => Err(self.error("bitwise operator needs equal-width bits")),
            },
            Shl | Shr | AShr => match (ta, tb) {
                (Ty::Bits(x), Ty::Bits(y)) if x == y => Ok(Ty::Bits(x)),
                (Ty::Bits(x), Ty::Int) => Ok(Ty::Bits(x)),
                _ => Err(self.error("shift needs bits on the left, bits or int amount")),
            },
            Concat => match (ta, tb) {
                (Ty::Bits(x), Ty::Bits(y)) if x + y <= 128 => Ok(Ty::Bits(x + y)),
                (Ty::Bits(_), Ty::Bits(_)) => Err(self.error("concat exceeds 128 bits")),
                _ => Err(self.error("`@` needs bits operands")),
            },
        }
    }

    fn check_call(&mut self, name: &str, args: &[Expr]) -> Result<(Expr, Ty), CheckError> {
        // Builtins first.
        match name {
            "ZeroExtend" | "SignExtend" => {
                if args.len() != 2 {
                    return Err(self.error(format!("{name} expects 2 arguments")));
                }
                let (a, ta) = self.check_expr(&args[0])?;
                let w = self.bits_width(ta, name)?;
                let Expr::LitInt(n) = args[1] else {
                    return Err(self.error(format!("{name} target width must be a literal")));
                };
                if n < i128::from(w) || n > 128 {
                    return Err(self.error(format!(
                        "{name} target width {n} invalid for operand width {w}"
                    )));
                }
                let target = n as u32;
                Ok((
                    Expr::Call(name.to_owned(), vec![a, Expr::LitInt(n)]),
                    Ty::Bits(target),
                ))
            }
            "UInt" | "SInt" => {
                if args.len() != 1 {
                    return Err(self.error(format!("{name} expects 1 argument")));
                }
                let (a, ta) = self.check_expr(&args[0])?;
                self.bits_width(ta, name)?;
                Ok((Expr::Call(name.to_owned(), vec![a]), Ty::Int))
            }
            "to_bits" => {
                if args.len() != 2 {
                    return Err(self.error("to_bits expects 2 arguments"));
                }
                let Expr::LitInt(n) = args[0] else {
                    return Err(self.error("to_bits width must be a literal"));
                };
                if !(1..=128).contains(&n) {
                    return Err(self.error("to_bits width out of range"));
                }
                let (a, ta) = self.check_expr(&args[1])?;
                if ta != Ty::Int {
                    return Err(self.error("to_bits operand must be int"));
                }
                Ok((
                    Expr::Call(name.to_owned(), vec![Expr::LitInt(n), a]),
                    Ty::Bits(n as u32),
                ))
            }
            "read_mem" => {
                if args.len() != 2 {
                    return Err(self.error("read_mem expects 2 arguments"));
                }
                let (a, ta) = self.check_expr(&args[0])?;
                if ta != Ty::Bits(64) {
                    return Err(self.error("read_mem address must be bits(64)"));
                }
                let Expr::LitInt(n) = args[1] else {
                    return Err(self.error("read_mem size must be a literal"));
                };
                if !(1..=16).contains(&n) {
                    return Err(self.error("read_mem size out of range 1..=16"));
                }
                Ok((
                    Expr::Call(name.to_owned(), vec![a, Expr::LitInt(n)]),
                    Ty::Bits(8 * n as u32),
                ))
            }
            "write_mem" => {
                if args.len() != 3 {
                    return Err(self.error("write_mem expects 3 arguments"));
                }
                let (a, ta) = self.check_expr(&args[0])?;
                if ta != Ty::Bits(64) {
                    return Err(self.error("write_mem address must be bits(64)"));
                }
                let Expr::LitInt(n) = args[1] else {
                    return Err(self.error("write_mem size must be a literal"));
                };
                if !(1..=16).contains(&n) {
                    return Err(self.error("write_mem size out of range 1..=16"));
                }
                let (v, tv) = self.check_expr(&args[2])?;
                if tv != Ty::Bits(8 * n as u32) {
                    return Err(self.error(format!(
                        "write_mem value must be bits({}), found {tv}",
                        8 * n
                    )));
                }
                Ok((
                    Expr::Call(name.to_owned(), vec![a, Expr::LitInt(n), v]),
                    Ty::Unit,
                ))
            }
            "reverse_bits" => {
                if args.len() != 1 {
                    return Err(self.error("reverse_bits expects 1 argument"));
                }
                let (a, ta) = self.check_expr(&args[0])?;
                let w = self.bits_width(ta, name)?;
                Ok((Expr::Call(name.to_owned(), vec![a]), Ty::Bits(w)))
            }
            "exit" => {
                if !args.is_empty() {
                    return Err(self.error("exit expects no arguments"));
                }
                Ok((Expr::Call(name.to_owned(), Vec::new()), Ty::Unit))
            }
            "undefined_bits" => {
                if args.len() != 1 {
                    return Err(self.error("undefined_bits expects 1 argument"));
                }
                let Expr::LitInt(n) = args[0] else {
                    return Err(self.error("undefined_bits width must be a literal"));
                };
                if !(1..=128).contains(&n) {
                    return Err(self.error("undefined_bits width out of range"));
                }
                Ok((
                    Expr::Call(name.to_owned(), vec![Expr::LitInt(n)]),
                    Ty::Bits(n as u32),
                ))
            }
            _ => {
                let Some((param_tys, ret)) = self.globals.functions.get(name).cloned() else {
                    return Err(self.error(format!("unknown function `{name}`")));
                };
                if args.len() != param_tys.len() {
                    return Err(self.error(format!(
                        "`{name}` expects {} arguments, got {}",
                        param_tys.len(),
                        args.len()
                    )));
                }
                let mut checked = Vec::with_capacity(args.len());
                for (arg, expected) in args.iter().zip(&param_tys) {
                    let (a, ta) = self.check_expr(arg)?;
                    if ta != *expected {
                        return Err(self.error(format!(
                            "argument to `{name}` has type {ta}, expected {expected}"
                        )));
                    }
                    checked.push(a);
                }
                Ok((Expr::Call(name.to_owned(), checked), ret))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_model;

    fn check(src: &str) -> Result<CheckedModel, CheckError> {
        check_model(&parse_model(src).expect("parses"))
    }

    #[test]
    fn resolves_registers_to_globals() {
        let cm = check(
            "register _PC : bits(64)
             function bump() -> unit = { _PC = _PC + 0x0000000000000004; }",
        )
        .expect("checks");
        let f = cm.model.function("bump").expect("defined");
        match &f.body {
            Expr::Block(stmts, None) => match &stmts[0] {
                Stmt::Assign(LValue::Reg(r), rhs) => {
                    assert_eq!(r, "_PC");
                    assert!(
                        matches!(rhs, Expr::Binop(Binop::Add, a, _) if matches!(**a, Expr::Global(_)))
                    );
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn width_mismatch_rejected() {
        let err = check(
            "register R : bits(64)
             function f() -> unit = { R = 0xff; }",
        )
        .expect_err("fails");
        assert!(err.message.contains("mismatch"), "{err}");
    }

    #[test]
    fn unknown_identifier_rejected() {
        let err = check("function f() -> unit = { mystery = 0xff; }").expect_err("fails");
        assert!(err.message.contains("unknown register"), "{err}");
    }

    #[test]
    fn register_array_indexing() {
        let cm = check(
            "register X : vector(31, bits(64))
             function get(n : int) -> bits(64) = X[n]",
        )
        .expect("checks");
        assert!(cm.globals.registers.contains_key("X"));
        // Unindexed use of an array is an error.
        let err = check(
            "register X : vector(31, bits(64))
             function f() -> unit = { X = 0x0000000000000000; }",
        )
        .expect_err("fails");
        assert!(err.message.contains("indexed"), "{err}");
    }

    #[test]
    fn builtins_are_typed() {
        let cm = check(
            "function f(x : bits(8)) -> bits(64) = ZeroExtend(x, 64)
             function g(a : bits(64)) -> bits(32) = read_mem(a, 4)
             function h(a : bits(64), v : bits(16)) -> unit = write_mem(a, 2, v)
             function k(x : bits(8)) -> int = UInt(x)
             function m(n : int) -> bits(5) = to_bits(5, n)",
        );
        cm.expect("checks");
        // ZeroExtend cannot shrink.
        let err =
            check("function f(x : bits(64)) -> bits(8) = ZeroExtend(x, 8)").expect_err("fails");
        assert!(err.message.contains("invalid"), "{err}");
        // write_mem width must match size.
        let err = check("function f(a : bits(64), v : bits(8)) -> unit = write_mem(a, 2, v)")
            .expect_err("fails");
        assert!(err.message.contains("bits(16)"), "{err}");
    }

    #[test]
    fn match_requires_wildcard_and_agreement() {
        let err =
            check("function f(x : bits(2)) -> bits(8) = match x { 0b00 => 0x01, 0b01 => 0x02 }")
                .expect_err("fails");
        assert!(err.message.contains("`_`"), "{err}");
        let ok = check("function f(x : bits(2)) -> bits(8) = match x { 0b00 => 0x01, _ => 0x02 }");
        ok.expect("checks");
    }

    #[test]
    fn statement_expressions_must_be_unit() {
        let err = check("function f(x : bits(8)) -> unit = { x + x; }").expect_err("fails");
        assert!(err.message.contains("unit"), "{err}");
    }

    #[test]
    fn if_branch_types_must_agree() {
        let err =
            check("function f(c : bool) -> bits(8) = if c then 0x01 else 0b1").expect_err("fails");
        assert!(err.message.contains("disagree"), "{err}");
    }

    #[test]
    fn duplicate_definitions_rejected() {
        assert!(check("register R : bits(8)\nregister R : bits(8)").is_err());
        assert!(check(
            "function f() -> unit = ()
             function f() -> unit = ()"
        )
        .is_err());
        assert!(check("function exit() -> unit = ()").is_err());
    }

    #[test]
    fn locals_scope_to_blocks() {
        let err = check("function f() -> int = { { let a : int = 1; () }; a }");
        // `a` out of scope at the block value position.
        assert!(err.is_err());
    }
}
