//! Lexer for mini-Sail.

use std::fmt;

use islaris_bv::Bv;

/// A token with its source line (1-based) for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords resolved by the parser); may
    /// contain dots (`PSTATE.EL`).
    Ident(String),
    /// Bitvector literal.
    Bits(Bv),
    /// Decimal integer literal.
    Int(i128),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<_s`
    SLt,
    /// `<=_s`
    SLe,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `&`
    Amp,
    /// `&&`
    AmpAmp,
    /// `|`
    Pipe,
    /// `||`
    PipePipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `>>_a`
    AShr,
    /// `@`
    At,
    /// `!`
    Bang,
    /// `~`
    Tilde,
    /// `..`
    DotDot,
    /// `->`
    Arrow,
    /// `=>`
    FatArrow,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Bits(b) => write!(f, "{b}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Comma => write!(f, ","),
            Tok::Semi => write!(f, ";"),
            Tok::Colon => write!(f, ":"),
            Tok::Assign => write!(f, "="),
            Tok::EqEq => write!(f, "=="),
            Tok::NotEq => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::SLt => write!(f, "<_s"),
            Tok::SLe => write!(f, "<=_s"),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Amp => write!(f, "&"),
            Tok::AmpAmp => write!(f, "&&"),
            Tok::Pipe => write!(f, "|"),
            Tok::PipePipe => write!(f, "||"),
            Tok::Caret => write!(f, "^"),
            Tok::Shl => write!(f, "<<"),
            Tok::Shr => write!(f, ">>"),
            Tok::AShr => write!(f, ">>_a"),
            Tok::At => write!(f, "@"),
            Tok::Bang => write!(f, "!"),
            Tok::Tilde => write!(f, "~"),
            Tok::DotDot => write!(f, ".."),
            Tok::Arrow => write!(f, "->"),
            Tok::FatArrow => write!(f, "=>"),
        }
    }
}

/// A lexing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based source line.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenises mini-Sail source.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let push = |out: &mut Vec<Token>, kind: Tok, line: u32| out.push(Token { kind, line });

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                push(&mut out, Tok::LParen, line);
                i += 1;
            }
            b')' => {
                push(&mut out, Tok::RParen, line);
                i += 1;
            }
            b'{' => {
                push(&mut out, Tok::LBrace, line);
                i += 1;
            }
            b'}' => {
                push(&mut out, Tok::RBrace, line);
                i += 1;
            }
            b'[' => {
                push(&mut out, Tok::LBracket, line);
                i += 1;
            }
            b']' => {
                push(&mut out, Tok::RBracket, line);
                i += 1;
            }
            b',' => {
                push(&mut out, Tok::Comma, line);
                i += 1;
            }
            b';' => {
                push(&mut out, Tok::Semi, line);
                i += 1;
            }
            b':' => {
                push(&mut out, Tok::Colon, line);
                i += 1;
            }
            b'@' => {
                push(&mut out, Tok::At, line);
                i += 1;
            }
            b'~' => {
                push(&mut out, Tok::Tilde, line);
                i += 1;
            }
            b'^' => {
                push(&mut out, Tok::Caret, line);
                i += 1;
            }
            b'+' => {
                push(&mut out, Tok::Plus, line);
                i += 1;
            }
            b'*' => {
                push(&mut out, Tok::Star, line);
                i += 1;
            }
            b'-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    push(&mut out, Tok::Arrow, line);
                    i += 2;
                } else {
                    push(&mut out, Tok::Minus, line);
                    i += 1;
                }
            }
            b'=' => match bytes.get(i + 1) {
                Some(b'=') => {
                    push(&mut out, Tok::EqEq, line);
                    i += 2;
                }
                Some(b'>') => {
                    push(&mut out, Tok::FatArrow, line);
                    i += 2;
                }
                _ => {
                    push(&mut out, Tok::Assign, line);
                    i += 1;
                }
            },
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(&mut out, Tok::NotEq, line);
                    i += 2;
                } else {
                    push(&mut out, Tok::Bang, line);
                    i += 1;
                }
            }
            b'&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    push(&mut out, Tok::AmpAmp, line);
                    i += 2;
                } else {
                    push(&mut out, Tok::Amp, line);
                    i += 1;
                }
            }
            b'|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    push(&mut out, Tok::PipePipe, line);
                    i += 2;
                } else {
                    push(&mut out, Tok::Pipe, line);
                    i += 1;
                }
            }
            b'<' => match (bytes.get(i + 1), bytes.get(i + 2), bytes.get(i + 3)) {
                (Some(b'<'), _, _) => {
                    push(&mut out, Tok::Shl, line);
                    i += 2;
                }
                (Some(b'='), Some(b'_'), Some(b's')) => {
                    push(&mut out, Tok::SLe, line);
                    i += 4;
                }
                (Some(b'='), _, _) => {
                    push(&mut out, Tok::Le, line);
                    i += 2;
                }
                (Some(b'_'), Some(b's'), _) => {
                    push(&mut out, Tok::SLt, line);
                    i += 3;
                }
                _ => {
                    push(&mut out, Tok::Lt, line);
                    i += 1;
                }
            },
            b'>' => match (bytes.get(i + 1), bytes.get(i + 2), bytes.get(i + 3)) {
                (Some(b'>'), Some(b'_'), Some(b'a')) => {
                    push(&mut out, Tok::AShr, line);
                    i += 4;
                }
                (Some(b'>'), _, _) => {
                    push(&mut out, Tok::Shr, line);
                    i += 2;
                }
                (Some(b'='), _, _) => {
                    push(&mut out, Tok::Ge, line);
                    i += 2;
                }
                _ => {
                    push(&mut out, Tok::Gt, line);
                    i += 1;
                }
            },
            b'.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    push(&mut out, Tok::DotDot, line);
                    i += 2;
                } else {
                    return Err(LexError {
                        line,
                        message: "stray `.`".into(),
                    });
                }
            }
            b'0' if matches!(bytes.get(i + 1), Some(b'x') | Some(b'b')) => {
                let radix = if bytes[i + 1] == b'x' { 16 } else { 2 };
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && (bytes[j].is_ascii_hexdigit() || bytes[j] == b'_') {
                    j += 1;
                }
                let digits: String = src[start..j].chars().filter(|c| *c != '_').collect();
                if digits.is_empty() {
                    return Err(LexError {
                        line,
                        message: "empty bitvector literal".into(),
                    });
                }
                let width = digits.len() as u32 * if radix == 16 { 4 } else { 1 };
                if width > 128 {
                    return Err(LexError {
                        line,
                        message: format!("literal wider than 128 bits ({width})"),
                    });
                }
                let value = u128::from_str_radix(&digits, radix).map_err(|e| LexError {
                    line,
                    message: format!("bad literal: {e}"),
                })?;
                push(&mut out, Tok::Bits(Bv::new(width, value)), line);
                i = j;
            }
            b'0'..=b'9' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let value: i128 = src[start..j].parse().map_err(|e| LexError {
                    line,
                    message: format!("bad integer: {e}"),
                })?;
                push(&mut out, Tok::Int(value), line);
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] == b'.')
                {
                    // Don't swallow `..` range punctuation after a name.
                    if bytes[j] == b'.' && bytes.get(j + 1) == Some(&b'.') {
                        break;
                    }
                    j += 1;
                }
                push(&mut out, Tok::Ident(src[start..j].to_owned()), line);
                i = j;
            }
            other => {
                return Err(LexError {
                    line,
                    message: format!("unexpected character `{}`", other as char),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_literals() {
        assert_eq!(
            kinds("0x40 0b10 42"),
            vec![
                Tok::Bits(Bv::new(8, 0x40)),
                Tok::Bits(Bv::new(2, 0b10)),
                Tok::Int(42)
            ]
        );
        // Underscores group digits.
        assert_eq!(kinds("0x0000_0040"), vec![Tok::Bits(Bv::new(32, 0x40))]);
    }

    #[test]
    fn lexes_dotted_identifiers_but_not_ranges() {
        assert_eq!(
            kinds("PSTATE.EL x[7 .. 0]"),
            vec![
                Tok::Ident("PSTATE.EL".into()),
                Tok::Ident("x".into()),
                Tok::LBracket,
                Tok::Int(7),
                Tok::DotDot,
                Tok::Int(0),
                Tok::RBracket,
            ]
        );
        // A name directly followed by `..` stops before the dots.
        assert_eq!(kinds("x[hi .. 0]")[2], Tok::Ident("hi".into()),);
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds("== != <= < <_s <=_s << >> >>_a && || -> => .. @"),
            vec![
                Tok::EqEq,
                Tok::NotEq,
                Tok::Le,
                Tok::Lt,
                Tok::SLt,
                Tok::SLe,
                Tok::Shl,
                Tok::Shr,
                Tok::AShr,
                Tok::AmpAmp,
                Tok::PipePipe,
                Tok::Arrow,
                Tok::FatArrow,
                Tok::DotDot,
                Tok::At,
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let toks = lex("a // comment\nb").expect("lexes");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("$").is_err());
        assert!(lex("0x").is_err());
        assert!(lex(".").is_err());
    }

    #[test]
    fn wide_literal_rejected() {
        let long = format!("0x{}", "0".repeat(33));
        assert!(lex(&long).is_err());
    }
}
