//! Criterion benches for the pipeline stages in isolation (the paper's
//! Isla-vs-Coq time subdivision), plus solver ablations.

use criterion::{criterion_group, criterion_main, Criterion};
use islaris_bv::Bv;
use islaris_core::{check_certificate, Verifier};
use islaris_isla::{trace_opcode, IslaConfig, Opcode};
use islaris_models::ARM;
use islaris_smt::{entails, BvCmp, Expr, SolverConfig, Sort, Var};

/// Isla column: trace generation for the Fig. 3 opcode (constrained) and
/// unconstrained (5-way banked-SP split).
fn bench_isla(c: &mut Criterion) {
    let mut g = c.benchmark_group("isla");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("add_sp_constrained", |b| {
        let cfg = IslaConfig::new(ARM)
            .assume_reg("PSTATE.EL", Bv::new(2, 2))
            .assume_reg("PSTATE.SP", Bv::new(1, 1));
        b.iter(|| trace_opcode(&cfg, &Opcode::Concrete(0x910103ff)).unwrap());
    });
    g.bench_function("add_sp_unconstrained", |b| {
        let cfg = IslaConfig::new(ARM);
        b.iter(|| trace_opcode(&cfg, &Opcode::Concrete(0x910103ff)).unwrap());
    });
    g.finish();
}

/// Lithium/automation column: verification only (traces pre-generated).
fn bench_automation(c: &mut Criterion) {
    let mut g = c.benchmark_group("automation");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    let art = islaris_cases::memcpy_arm::build_case();
    g.bench_function("memcpy_arm_verify", |b| {
        b.iter(|| {
            let v = Verifier::new(art.prog_spec.clone(), art.protocol.clone());
            v.verify_all().unwrap()
        });
    });
    g.finish();
}

/// Qed column: certificate re-checking only.
fn bench_qed(c: &mut Criterion) {
    let mut g = c.benchmark_group("qed");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    let art = islaris_cases::memcpy_arm::build_case();
    let v = Verifier::new(art.prog_spec.clone(), art.protocol.clone());
    let report = v.verify_all().unwrap();
    g.bench_function("memcpy_arm_certificates", |b| {
        b.iter(|| {
            for block in &report.blocks {
                check_certificate(&block.cert).unwrap();
            }
        });
    });
    g.finish();
}

/// Solver ablation: a representative side condition with and without the
/// RUP-checked paranoid mode.
fn bench_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    let sorts = |v: Var| (v.0 < 8).then_some(Sort::BitVec(64));
    let (x, y, z) = (Expr::var(Var(0)), Expr::var(Var(1)), Expr::var(Var(2)));
    let facts = vec![
        Expr::cmp(BvCmp::Ult, x.clone(), y.clone()),
        Expr::cmp(BvCmp::Ult, y.clone(), z.clone()),
    ];
    let goal = Expr::cmp(BvCmp::Ult, x, z);
    g.bench_function("ult_transitivity_64", |b| {
        let cfg = SolverConfig::new();
        b.iter(|| entails(&facts, &goal, &sorts, &cfg));
    });
    g.bench_function("ult_transitivity_64_checked", |b| {
        let cfg = SolverConfig::paranoid();
        b.iter(|| entails(&facts, &goal, &sorts, &cfg));
    });
    g.finish();
}

criterion_group!(pipeline, bench_isla, bench_automation, bench_qed, bench_solver);
criterion_main!(pipeline);
