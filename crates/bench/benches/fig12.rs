//! Criterion benches: one group per Figure-12 row, measuring the full
//! pipeline (assemble → trace → verify → check certificate).

use criterion::{criterion_group, criterion_main, Criterion};

macro_rules! case_bench {
    ($fn_name:ident, $module:ident) => {
        fn $fn_name(c: &mut Criterion) {
            let mut g = c.benchmark_group(stringify!($module));
            g.sample_size(10);
            g.warm_up_time(std::time::Duration::from_millis(500));
            g.measurement_time(std::time::Duration::from_secs(3));
            g.bench_function("end_to_end", |b| {
                b.iter(|| islaris_cases::$module::run())
            });
            g.finish();
        }
    };
}

case_bench!(bench_memcpy_arm, memcpy_arm);
case_bench!(bench_memcpy_riscv, memcpy_riscv);
case_bench!(bench_hvc, hvc);
case_bench!(bench_pkvm, pkvm);
case_bench!(bench_unaligned, unaligned);
case_bench!(bench_uart, uart);
case_bench!(bench_rbit, rbit);
case_bench!(bench_binsearch_arm, binsearch_arm);
case_bench!(bench_binsearch_riscv, binsearch_riscv);

criterion_group!(
    fig12,
    bench_memcpy_arm,
    bench_memcpy_riscv,
    bench_hvc,
    bench_pkvm,
    bench_unaligned,
    bench_uart,
    bench_rbit,
    bench_binsearch_arm,
    bench_binsearch_riscv
);
criterion_main!(fig12);
