//! Benchmark harness regenerating the paper's evaluation (Figure 12).
//!
//! The `fig12` binary prints one row per case study with the size and
//! time columns of the paper's table. `fig12 --jobs N` runs the parallel
//! pipeline measurement (sequential baseline, then cold and warm parallel
//! runs over a shared trace cache) and `fig12 --bench` runs the
//! [`stage_benches`] micro-benchmarks: the two pipeline halves (trace
//! generation = the paper's "Isla" column; verification = the "Coq"
//! column's automation/side-condition/Qed subdivision) measured in
//! isolation with plain [`std::time::Instant`] — no external bench
//! framework.

use std::time::{Duration, Instant};

use islaris_bv::Bv;
use islaris_cases::{
    binsearch_arm, binsearch_riscv, hvc, memcpy_arm, memcpy_riscv, pkvm, rbit, uart, unaligned,
    CaseOutcome,
};
use islaris_core::{check_certificate, Verifier};
use islaris_isla::{trace_opcode, IslaConfig, Opcode};
use islaris_models::ARM;
use islaris_smt::{entails, BvCmp, Expr, SolverConfig, Sort, Var};

/// Runs every case study in the paper's Fig. 12 row order.
#[must_use]
pub fn all_cases() -> Vec<CaseOutcome> {
    vec![
        memcpy_arm::run(),
        memcpy_riscv::run(),
        hvc::run(),
        pkvm::run(),
        unaligned::run(),
        uart::run(),
        rbit::run(),
        binsearch_arm::run(),
        binsearch_riscv::run(),
    ]
}

/// Renders the regenerated Fig. 12 table.
#[must_use]
pub fn fig12_table(outcomes: &[CaseOutcome]) -> String {
    let mut out = String::new();
    out.push_str(&CaseOutcome::header());
    out.push('\n');
    for o in outcomes {
        out.push_str(&o.row());
        out.push('\n');
    }
    out
}

/// One micro-benchmark measurement.
#[derive(Debug, Clone)]
pub struct Sample {
    /// `group/name`, matching the old Criterion bench ids.
    pub name: &'static str,
    /// Median per-iteration time.
    pub median: Duration,
    /// Fastest iteration.
    pub min: Duration,
    /// Iterations measured.
    pub iters: usize,
}

impl Sample {
    /// One line of the `--bench` report.
    #[must_use]
    pub fn row(&self) -> String {
        format!(
            "{:<32} median {:>10.3?}  min {:>10.3?}  ({} iters)",
            self.name, self.median, self.min, self.iters
        )
    }
}

/// Times `f` for `iters` iterations (after one warm-up call) and reports
/// the median and minimum per-iteration time.
pub fn bench<T>(name: &'static str, iters: usize, mut f: impl FnMut() -> T) -> Sample {
    let iters = iters.max(1);
    std::hint::black_box(f());
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed());
    }
    times.sort_unstable();
    Sample {
        name,
        median: times[iters / 2],
        min: times[0],
        iters,
    }
}

/// The pipeline-stage micro-benchmarks (ex-Criterion `benches/pipeline.rs`):
/// trace generation constrained vs unconstrained, verification automation,
/// certificate re-checking, and the solver's plain vs RUP-checked paranoid
/// mode on a representative side condition.
#[must_use]
pub fn stage_benches(iters: usize) -> Vec<Sample> {
    let mut out = Vec::new();

    // Isla column: Fig. 3's `add sp, sp, #0x40`, with the EL/SP
    // constraints (linear trace) and without (5-way banked-SP split).
    let constrained = IslaConfig::new(ARM)
        .assume_reg("PSTATE.EL", Bv::new(2, 2))
        .assume_reg("PSTATE.SP", Bv::new(1, 1));
    out.push(bench("isla/add_sp_constrained", iters, || {
        trace_opcode(&constrained, &Opcode::Concrete(0x910103ff)).unwrap()
    }));
    let unconstrained = IslaConfig::new(ARM);
    out.push(bench("isla/add_sp_unconstrained", iters, || {
        trace_opcode(&unconstrained, &Opcode::Concrete(0x910103ff)).unwrap()
    }));

    // Automation column: verification only, traces pre-generated.
    let art = memcpy_arm::build_case();
    out.push(bench("automation/memcpy_arm_verify", iters, || {
        Verifier::new(art.prog_spec.clone(), art.protocol.clone())
            .verify_all()
            .unwrap()
    }));

    // Qed column: certificate re-checking only.
    let report = Verifier::new(art.prog_spec.clone(), art.protocol.clone())
        .verify_all()
        .unwrap();
    out.push(bench("qed/memcpy_arm_certificates", iters, || {
        for block in &report.blocks {
            check_certificate(&block.cert).unwrap();
        }
    }));

    // Solver ablation: Ult transitivity, plain vs paranoid (RUP-checked).
    let sorts = |v: Var| (v.0 < 8).then_some(Sort::BitVec(64));
    let (x, y, z) = (Expr::var(Var(0)), Expr::var(Var(1)), Expr::var(Var(2)));
    let facts = vec![
        Expr::cmp(BvCmp::Ult, x.clone(), y.clone()),
        Expr::cmp(BvCmp::Ult, y.clone(), z.clone()),
    ];
    let goal = Expr::cmp(BvCmp::Ult, x, z);
    let plain = SolverConfig::new();
    out.push(bench("solver/ult_transitivity_64", iters, || {
        entails(&facts, &goal, &sorts, &plain)
    }));
    let paranoid = SolverConfig::paranoid();
    out.push(bench("solver/ult_transitivity_64_checked", iters, || {
        entails(&facts, &goal, &sorts, &paranoid)
    }));

    out
}
