//! Benchmark harness regenerating the paper's evaluation (Figure 12).
//!
//! The `fig12` binary prints one row per case study with the size and
//! time columns of the paper's table. `fig12 --jobs N` runs the parallel
//! pipeline measurement (sequential baseline, then cold and warm parallel
//! runs over a shared trace cache) and `fig12 --bench` runs the
//! statistical benchmarks: every Fig. 12 case measured per pipeline half
//! ([`case_benches`]: `trace/<slug>` = the paper's "Isla" column,
//! `verify/<slug>` = automation + certificate re-check) plus the
//! [`stage_benches`] micro-benchmarks — warmup + N measured iterations,
//! min/median/p90/max and a MAD noise estimate, with plain
//! [`std::time::Instant`] and no external bench framework.
//!
//! `--bench --json PATH` exports the run as versioned machine-readable
//! JSON (schema [`BENCH_SCHEMA`]; see DESIGN.md §9), and
//! `--bench-compare OLD.json NEW.json` is the perf-regression gate over
//! two such exports ([`compare`]).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use islaris_bv::Bv;
use islaris_cases::{
    binsearch_arm, binsearch_riscv, hvc, memcpy_arm, memcpy_riscv, pkvm, rbit, uart, unaligned,
    CaseCtx, CaseOutcome, ALL_CASES,
};
use islaris_core::{check_certificate, check_certificate_cached, run_jobs, Verifier};
use islaris_isla::{trace_opcode, IslaConfig, Opcode};
use islaris_models::ARM;
use islaris_obs::{parse_json, validate_json, CertMetrics, Json, QueryTable, SolverMetrics};
use islaris_smt::{
    entails, entails_logged, BvCmp, Expr, QueryCache, SatConfig, SolverConfig, Sort, Var,
};

pub mod replay;
pub mod serve;

/// The versioned schema tag of the `--bench --json` export.
pub const BENCH_SCHEMA: &str = "islaris-bench/v1";

/// Runs every case study in the paper's Fig. 12 row order.
#[must_use]
pub fn all_cases() -> Vec<CaseOutcome> {
    vec![
        memcpy_arm::run(),
        memcpy_riscv::run(),
        hvc::run(),
        pkvm::run(),
        unaligned::run(),
        uart::run(),
        rbit::run(),
        binsearch_arm::run(),
        binsearch_riscv::run(),
    ]
}

/// Renders the regenerated Fig. 12 table.
#[must_use]
pub fn fig12_table(outcomes: &[CaseOutcome]) -> String {
    let mut out = String::new();
    out.push_str(&CaseOutcome::header());
    out.push('\n');
    for o in outcomes {
        out.push_str(&o.row());
        out.push('\n');
    }
    out
}

/// One statistical benchmark measurement, all times in nanoseconds.
///
/// Integer nanoseconds keep the JSON round-trip exact: every field is a
/// `u64` well below 2^53, the precision bound of the JSON number model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// `group/name` (e.g. `trace/memcpy_arm`, `solver/ult_transitivity_64`).
    pub name: String,
    /// Measured iterations (after warm-up).
    pub iters: u64,
    /// Warm-up iterations (not measured).
    pub warmup: u64,
    /// Fastest iteration.
    pub min_ns: u64,
    /// Median iteration (the only statistic the regression gate compares).
    pub median_ns: u64,
    /// 90th percentile, nearest-rank.
    pub p90_ns: u64,
    /// Slowest iteration.
    pub max_ns: u64,
    /// Median absolute deviation from the median — the noise estimate.
    pub mad_ns: u64,
}

fn fmt_ns(ns: u64) -> String {
    format!("{:.3?}", Duration::from_nanos(ns))
}

impl Sample {
    /// One line of the `--bench` report.
    #[must_use]
    pub fn row(&self) -> String {
        format!(
            "{:<32} median {:>10}  min {:>10}  p90 {:>10}  max {:>10}  mad {:>10}  ({} iters, {} warmup)",
            self.name,
            fmt_ns(self.median_ns),
            fmt_ns(self.min_ns),
            fmt_ns(self.p90_ns),
            fmt_ns(self.max_ns),
            fmt_ns(self.mad_ns),
            self.iters,
            self.warmup,
        )
    }
}

/// Order statistics over one run's per-iteration times:
/// `(min, median, p90, max, mad)`. The p90 is nearest-rank
/// (`ceil(0.9 n)`-th smallest); the MAD is the median absolute deviation
/// from the median.
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn summarize(times: &[u64]) -> (u64, u64, u64, u64, u64) {
    assert!(!times.is_empty(), "summarize: no measurements");
    let mut ts = times.to_vec();
    ts.sort_unstable();
    let n = ts.len();
    let median = ts[(n - 1) / 2];
    let p90 = ts[(9 * n).div_ceil(10) - 1];
    let mut devs: Vec<u64> = ts.iter().map(|&t| t.abs_diff(median)).collect();
    devs.sort_unstable();
    let mad = devs[(n - 1) / 2];
    (ts[0], median, p90, ts[n - 1], mad)
}

/// Times `f` for `iters` measured iterations after `warmup` unmeasured
/// ones and reports the order statistics.
pub fn bench<T>(
    name: impl Into<String>,
    warmup: usize,
    iters: usize,
    mut f: impl FnMut() -> T,
) -> Sample {
    let iters = iters.max(1);
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    let (min_ns, median_ns, p90_ns, max_ns, mad_ns) = summarize(&times);
    Sample {
        name: name.into(),
        iters: iters as u64,
        warmup: warmup as u64,
        min_ns,
        median_ns,
        p90_ns,
        max_ns,
        mad_ns,
    }
}

/// The per-case pipeline-half benchmarks: for every registry case,
/// `trace/<slug>` builds the artefacts from scratch (the trace-generation
/// half — the paper's "Isla" column) and `verify/<slug>` runs proof
/// automation plus certificate re-check over pre-built artefacts (the
/// verification half).
#[must_use]
pub fn case_benches(warmup: usize, iters: usize) -> Vec<Sample> {
    case_benches_opts(warmup, iters, false)
}

/// [`case_benches`] with the shared solver [`QueryCache`] toggled: with
/// `solver_cache` on, each `verify/<slug>` iteration runs against one
/// per-case cache shared across iterations (warm-cache steady state —
/// the `fig12 --bench --solver-cache on` A/B arm). Off is the default:
/// committed baselines measure the session win alone, with every solver
/// query recomputed.
#[must_use]
pub fn case_benches_opts(warmup: usize, iters: usize, solver_cache: bool) -> Vec<Sample> {
    case_benches_configured(warmup, iters, solver_cache, SatConfig::default())
}

/// [`case_benches_opts`] under an explicit solver feature configuration
/// (`fig12 --bench --sat-off FEATURE`): both pipeline halves run with
/// `sat`, so a feature's contribution to each half's median is directly
/// A/B-measurable. Certificate replay keeps the default configuration,
/// as everywhere.
#[must_use]
pub fn case_benches_configured(
    warmup: usize,
    iters: usize,
    solver_cache: bool,
    sat: SatConfig,
) -> Vec<Sample> {
    case_benches_jobs(warmup, iters, solver_cache, sat, 1)
}

/// [`case_benches_configured`] with intra-case parallelism: each
/// `verify/<slug>` iteration verifies blocks and replays certificates
/// over `jobs` scoped workers (`fig12 --bench --jobs N`). The verdicts
/// and counters are byte-identical across `jobs` values — only
/// wall-clock changes — so samples stay comparable to `jobs = 1`
/// baselines.
#[must_use]
pub fn case_benches_jobs(
    warmup: usize,
    iters: usize,
    solver_cache: bool,
    sat: SatConfig,
    jobs: usize,
) -> Vec<Sample> {
    let mut out = Vec::new();
    let ctx = CaseCtx::default().with_sat(sat);
    for def in ALL_CASES {
        out.push(bench(format!("trace/{}", def.slug), warmup, iters, || {
            (def.build)(&ctx)
        }));
        let art = (def.build)(&ctx);
        let qcache = solver_cache.then(|| Arc::new(QueryCache::new()));
        out.push(bench(format!("verify/{}", def.slug), warmup, iters, || {
            let mut verifier = Verifier::new(art.prog_spec.clone(), art.protocol.clone());
            verifier.qcache = qcache.clone();
            verifier.solver.sat = art.sat;
            verifier.jobs = jobs;
            let report = verifier.verify_all().unwrap();
            let replays = run_jobs(jobs, report.blocks.len(), |i| {
                let mut cm = CertMetrics::default();
                let mut qt = QueryTable::default();
                check_certificate_cached(
                    &report.blocks[i].cert,
                    &mut cm,
                    &mut qt,
                    qcache.as_deref(),
                )
                .unwrap();
            });
            for r in replays {
                r.unwrap_or_else(|p| panic!("{}", p.message));
            }
        }));
    }
    out
}

/// The pipeline-stage micro-benchmarks (ex-Criterion `benches/pipeline.rs`):
/// trace generation constrained vs unconstrained, verification automation,
/// certificate re-checking, and the solver's plain vs RUP-checked paranoid
/// mode on a representative side condition.
#[must_use]
pub fn stage_benches(warmup: usize, iters: usize) -> Vec<Sample> {
    stage_benches_configured(warmup, iters, SatConfig::default())
}

/// [`stage_benches`] under an explicit solver feature configuration: the
/// `solver/*` micro-benchmarks run with `sat`, so CDCL-feature ablations
/// show up in the per-stage medians too.
#[must_use]
pub fn stage_benches_configured(warmup: usize, iters: usize, sat: SatConfig) -> Vec<Sample> {
    let mut out = Vec::new();

    // Isla column: Fig. 3's `add sp, sp, #0x40`, with the EL/SP
    // constraints (linear trace) and without (5-way banked-SP split).
    let constrained = IslaConfig::new(ARM)
        .assume_reg("PSTATE.EL", Bv::new(2, 2))
        .assume_reg("PSTATE.SP", Bv::new(1, 1));
    out.push(bench("isla/add_sp_constrained", warmup, iters, || {
        trace_opcode(&constrained, &Opcode::Concrete(0x910103ff)).unwrap()
    }));
    let unconstrained = IslaConfig::new(ARM);
    out.push(bench("isla/add_sp_unconstrained", warmup, iters, || {
        trace_opcode(&unconstrained, &Opcode::Concrete(0x910103ff)).unwrap()
    }));

    // Automation column: verification only, traces pre-generated.
    let art = memcpy_arm::build_case();
    out.push(bench("automation/memcpy_arm_verify", warmup, iters, || {
        Verifier::new(art.prog_spec.clone(), art.protocol.clone())
            .verify_all()
            .unwrap()
    }));

    // Qed column: certificate re-checking only.
    let report = Verifier::new(art.prog_spec.clone(), art.protocol.clone())
        .verify_all()
        .unwrap();
    out.push(bench("qed/memcpy_arm_certificates", warmup, iters, || {
        for block in &report.blocks {
            check_certificate(&block.cert).unwrap();
        }
    }));

    // Solver ablation: Ult transitivity, plain vs paranoid (RUP-checked).
    let sorts = ult_sorts;
    let (facts, goal) = ult_transitivity_query();
    let plain = SolverConfig {
        sat,
        ..SolverConfig::new()
    };
    out.push(bench("solver/ult_transitivity_64", warmup, iters, || {
        entails(&facts, &goal, &sorts, &plain)
    }));
    let paranoid = SolverConfig {
        sat,
        ..SolverConfig::paranoid()
    };
    out.push(bench(
        "solver/ult_transitivity_64_checked",
        warmup,
        iters,
        || entails(&facts, &goal, &sorts, &paranoid),
    ));

    out
}

fn ult_sorts(v: Var) -> Option<Sort> {
    (v.0 < 8).then_some(Sort::BitVec(64))
}

/// The `solver/ult_transitivity_64` query: facts and goal.
fn ult_transitivity_query() -> (Vec<Expr>, Expr) {
    let (x, y, z) = (Expr::var(Var(0)), Expr::var(Var(1)), Expr::var(Var(2)));
    let facts = vec![
        Expr::cmp(BvCmp::Ult, x.clone(), y.clone()),
        Expr::cmp(BvCmp::Ult, y.clone(), z.clone()),
    ];
    (facts, Expr::cmp(BvCmp::Ult, x, z))
}

/// The solver micro-bench queries replayed once each with query logging
/// on: the attribution rows behind `fig12 --profile --hot-queries`, so a
/// `solver/ult_transitivity_64` regression in `--bench-compare` can be
/// matched to its query digest alongside the verification-half tables.
#[must_use]
pub fn solver_bench_query_table() -> QueryTable {
    let mut table = QueryTable::default();
    let (facts, goal) = ult_transitivity_query();
    for cfg in [SolverConfig::new(), SolverConfig::paranoid()] {
        let mut m = SolverMetrics::default();
        let _ = entails_logged(&facts, &goal, &ult_sorts, &cfg, &mut m, &mut table);
    }
    table
}

/// The full `--bench` suite: every case's two pipeline halves, then the
/// stage micro-benchmarks.
#[must_use]
pub fn all_benches(warmup: usize, iters: usize) -> Vec<Sample> {
    all_benches_opts(warmup, iters, false)
}

/// [`all_benches`] with the solver cache toggled for the `verify/*`
/// halves (see [`case_benches_opts`]).
#[must_use]
pub fn all_benches_opts(warmup: usize, iters: usize, solver_cache: bool) -> Vec<Sample> {
    all_benches_configured(warmup, iters, solver_cache, SatConfig::default())
}

/// [`all_benches_opts`] under an explicit solver feature configuration
/// (`fig12 --bench --sat-off FEATURE`): the per-feature A/B arm of the
/// EXPERIMENTS attribution table.
#[must_use]
pub fn all_benches_configured(
    warmup: usize,
    iters: usize,
    solver_cache: bool,
    sat: SatConfig,
) -> Vec<Sample> {
    all_benches_jobs(warmup, iters, solver_cache, sat, 1)
}

/// [`all_benches_configured`] with intra-case parallelism for the
/// `verify/*` halves (see [`case_benches_jobs`]); the stage
/// micro-benchmarks are single-threaded by construction and ignore
/// `jobs`.
#[must_use]
pub fn all_benches_jobs(
    warmup: usize,
    iters: usize,
    solver_cache: bool,
    sat: SatConfig,
    jobs: usize,
) -> Vec<Sample> {
    let mut out = case_benches_jobs(warmup, iters, solver_cache, sat, jobs);
    out.extend(stage_benches_configured(warmup, iters, sat));
    out
}

/// The environment block of a bench export: enough context to judge
/// whether two runs are comparable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEnv {
    /// Available hardware parallelism.
    pub nproc: u64,
    /// `release` or `debug` (of this harness build).
    pub opt_level: String,
    /// Current commit hash, read from `.git/HEAD` (no subprocess);
    /// `unknown` outside a checkout.
    pub git_rev: String,
    /// Measured iterations per sample.
    pub iters: u64,
    /// Warm-up iterations per sample.
    pub warmup: u64,
}

fn git_rev() -> String {
    let read = |p: &str| std::fs::read_to_string(p).ok();
    let Some(head) = read(".git/HEAD") else {
        return "unknown".into();
    };
    let head = head.trim();
    let Some(r) = head.strip_prefix("ref: ") else {
        return head.to_string();
    };
    if let Some(h) = read(&format!(".git/{r}")) {
        return h.trim().to_string();
    }
    if let Some(packed) = read(".git/packed-refs") {
        for line in packed.lines() {
            if let Some(hash) = line.strip_suffix(r) {
                return hash.trim().to_string();
            }
        }
    }
    "unknown".into()
}

impl BenchEnv {
    /// Captures the current environment for a run of `iters`/`warmup`.
    #[must_use]
    pub fn capture(warmup: usize, iters: usize) -> BenchEnv {
        BenchEnv {
            nproc: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
            opt_level: if cfg!(debug_assertions) {
                "debug".into()
            } else {
                "release".into()
            },
            git_rev: git_rev(),
            iters: iters as u64,
            warmup: warmup as u64,
        }
    }

    /// One human-readable line describing the environment.
    #[must_use]
    pub fn row(&self) -> String {
        format!(
            "env: nproc={} opt_level={} git_rev={} iters={} warmup={}",
            self.nproc, self.opt_level, self.git_rev, self.iters, self.warmup
        )
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialises a bench run as the versioned [`BENCH_SCHEMA`] JSON document
/// (DESIGN.md §9). The output always passes [`validate_json`] and
/// round-trips through [`parse_bench_json`].
#[must_use]
pub fn samples_to_json(env: &BenchEnv, samples: &[Sample]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"{}\",\"env\":{{\"nproc\":{},\"opt_level\":\"{}\",\"git_rev\":\"{}\",\
         \"iters\":{},\"warmup\":{}}},\"samples\":[",
        BENCH_SCHEMA,
        env.nproc,
        esc(&env.opt_level),
        esc(&env.git_rev),
        env.iters,
        env.warmup
    );
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"iters\":{},\"warmup\":{},\"min_ns\":{},\"median_ns\":{},\
             \"p90_ns\":{},\"max_ns\":{},\"mad_ns\":{}}}",
            esc(&s.name),
            s.iters,
            s.warmup,
            s.min_ns,
            s.median_ns,
            s.p90_ns,
            s.max_ns,
            s.mad_ns
        );
    }
    out.push_str("]}");
    debug_assert!(validate_json(&out).is_ok());
    out
}

fn field_u64(obj: &Json, key: &str, what: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{what}: missing or non-integer `{key}`"))
}

/// Parses a [`BENCH_SCHEMA`] document back into its environment and
/// samples.
///
/// # Errors
///
/// Returns a description of the first syntactic or schema problem.
pub fn parse_bench_json(text: &str) -> Result<(BenchEnv, Vec<Sample>), String> {
    let doc = parse_json(text).map_err(|(off, msg)| format!("byte {off}: {msg}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing `schema`")?;
    if schema != BENCH_SCHEMA {
        return Err(format!(
            "unsupported schema `{schema}` (want `{BENCH_SCHEMA}`)"
        ));
    }
    let env_obj = doc.get("env").ok_or("missing `env`")?;
    let env = BenchEnv {
        nproc: field_u64(env_obj, "nproc", "env")?,
        opt_level: env_obj
            .get("opt_level")
            .and_then(Json::as_str)
            .ok_or("env: missing `opt_level`")?
            .to_string(),
        git_rev: env_obj
            .get("git_rev")
            .and_then(Json::as_str)
            .ok_or("env: missing `git_rev`")?
            .to_string(),
        iters: field_u64(env_obj, "iters", "env")?,
        warmup: field_u64(env_obj, "warmup", "env")?,
    };
    let arr = doc
        .get("samples")
        .and_then(Json::as_array)
        .ok_or("missing `samples` array")?;
    let mut samples = Vec::with_capacity(arr.len());
    for (i, s) in arr.iter().enumerate() {
        let what = format!("samples[{i}]");
        samples.push(Sample {
            name: s
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{what}: missing `name`"))?
                .to_string(),
            iters: field_u64(s, "iters", &what)?,
            warmup: field_u64(s, "warmup", &what)?,
            min_ns: field_u64(s, "min_ns", &what)?,
            median_ns: field_u64(s, "median_ns", &what)?,
            p90_ns: field_u64(s, "p90_ns", &what)?,
            max_ns: field_u64(s, "max_ns", &what)?,
            mad_ns: field_u64(s, "mad_ns", &what)?,
        });
    }
    Ok((env, samples))
}

/// One row of the regression-gate diff: a benchmark present in both runs.
#[derive(Debug, Clone)]
pub struct CompareRow {
    /// Benchmark name.
    pub name: String,
    /// Baseline median, ns.
    pub old_median_ns: u64,
    /// Candidate median, ns.
    pub new_median_ns: u64,
    /// Median delta in percent (`None` when the baseline median is zero
    /// and no ratio exists).
    pub delta_pct: Option<f64>,
    /// True iff the delta exceeds the gate threshold.
    pub regressed: bool,
}

/// The regression-gate verdict over two bench exports.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Rows for benchmarks present in both runs, baseline order.
    pub rows: Vec<CompareRow>,
    /// Baseline benchmarks absent from the candidate (warning only).
    pub missing: Vec<String>,
    /// Candidate benchmarks absent from the baseline (warning only).
    pub added: Vec<String>,
    /// The gate threshold in percent.
    pub threshold_pct: f64,
}

impl CompareReport {
    /// Rows beyond the threshold — the gate fails iff this is nonzero.
    #[must_use]
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| r.regressed).count()
    }

    /// The stable diff table plus warnings and the verdict line.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<32} {:>12} {:>12} {:>8}",
            "benchmark", "old median", "new median", "delta"
        );
        for r in &self.rows {
            let delta = match r.delta_pct {
                Some(d) => format!("{d:+.1}%"),
                None => "-".into(),
            };
            let _ = writeln!(
                out,
                "{:<32} {:>12} {:>12} {:>8}{}",
                r.name,
                fmt_ns(r.old_median_ns),
                fmt_ns(r.new_median_ns),
                delta,
                if r.regressed { "  REGRESSION" } else { "" },
            );
        }
        for name in &self.missing {
            let _ = writeln!(out, "warning: `{name}` missing from the new run");
        }
        for name in &self.added {
            let _ = writeln!(out, "warning: `{name}` only in the new run");
        }
        let _ = writeln!(
            out,
            "{} regression(s) beyond +{:.0}% over {} compared benchmark(s)",
            self.regressions(),
            self.threshold_pct,
            self.rows.len(),
        );
        out
    }
}

/// The perf-regression gate: compares candidate medians against baseline
/// medians, flagging any benchmark whose median grew by more than
/// `threshold_pct` percent. min/p90/max/MAD are context, not gated —
/// medians are the stable statistic under scheduler noise. Missing or
/// added benchmarks are warnings, not failures, so the gate survives
/// adding a case study.
#[must_use]
pub fn compare(old: &[Sample], new: &[Sample], threshold_pct: f64) -> CompareReport {
    let new_by: BTreeMap<&str, &Sample> = new.iter().map(|s| (s.name.as_str(), s)).collect();
    let old_names: std::collections::BTreeSet<&str> = old.iter().map(|s| s.name.as_str()).collect();
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for o in old {
        match new_by.get(o.name.as_str()) {
            Some(n) => {
                let delta_pct = (o.median_ns > 0).then(|| {
                    100.0 * (n.median_ns as f64 - o.median_ns as f64) / o.median_ns as f64
                });
                rows.push(CompareRow {
                    name: o.name.clone(),
                    old_median_ns: o.median_ns,
                    new_median_ns: n.median_ns,
                    delta_pct,
                    regressed: delta_pct.is_some_and(|d| d > threshold_pct),
                });
            }
            None => missing.push(o.name.clone()),
        }
    }
    let added = new
        .iter()
        .filter(|s| !old_names.contains(s.name.as_str()))
        .map(|s| s.name.clone())
        .collect();
    CompareReport {
        rows,
        missing,
        added,
        threshold_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str, median_ns: u64) -> Sample {
        Sample {
            name: name.into(),
            iters: 3,
            warmup: 1,
            min_ns: median_ns.saturating_sub(1),
            median_ns,
            p90_ns: median_ns + 1,
            max_ns: median_ns + 2,
            mad_ns: 1,
        }
    }

    #[test]
    fn summarize_order_statistics() {
        // Odd count: median is the middle element, p90 nearest-rank.
        assert_eq!(summarize(&[5, 1, 3]), (1, 3, 5, 5, 2));
        // Single measurement: everything collapses to it.
        assert_eq!(summarize(&[7]), (7, 7, 7, 7, 0));
        // Ten elements: median = 5th smallest, p90 = 9th smallest.
        let ts: Vec<u64> = (1..=10).collect();
        assert_eq!(summarize(&ts), (1, 5, 9, 10, 2));
    }

    #[test]
    fn bench_json_roundtrip() {
        let env = BenchEnv {
            nproc: 8,
            opt_level: "release".into(),
            git_rev: "deadbeef".into(),
            iters: 3,
            warmup: 1,
        };
        let samples = vec![sample("trace/memcpy_arm", 1_234_567), sample("q\"uote", 10)];
        let text = samples_to_json(&env, &samples);
        validate_json(&text).expect("export must be valid JSON");
        let (env2, samples2) = parse_bench_json(&text).expect("export must parse");
        assert_eq!(env, env2);
        assert_eq!(samples, samples2);
    }

    #[test]
    fn parse_rejects_bad_documents() {
        assert!(parse_bench_json("not json").is_err());
        assert!(parse_bench_json("{}").is_err());
        let wrong = "{\"schema\":\"islaris-bench/v0\",\"env\":{},\"samples\":[]}";
        assert!(parse_bench_json(wrong)
            .unwrap_err()
            .contains("unsupported schema"));
    }

    #[test]
    fn self_compare_is_clean() {
        let run = vec![sample("a", 100), sample("b", 200)];
        let report = compare(&run, &run, 25.0);
        assert_eq!(report.regressions(), 0);
        assert!(report.missing.is_empty() && report.added.is_empty());
        assert!(report.render().contains("0 regression(s)"));
    }

    #[test]
    fn compare_gates_median_regressions_only() {
        let old = vec![sample("a", 100), sample("b", 200), sample("gone", 5)];
        let mut slow_a = sample("a", 130);
        slow_a.max_ns = 10_000; // max blow-ups alone must not trip the gate
        let new = vec![slow_a, sample("b", 210), sample("new", 7)];
        let report = compare(&old, &new, 25.0);
        assert_eq!(report.regressions(), 1);
        let a = &report.rows[0];
        assert!(a.regressed && (a.delta_pct.unwrap() - 30.0).abs() < 1e-9);
        assert!(!report.rows[1].regressed, "+5% is within a 25% threshold");
        assert_eq!(report.missing, vec!["gone".to_string()]);
        assert_eq!(report.added, vec!["new".to_string()]);
        let rendered = report.render();
        assert!(rendered.contains("REGRESSION"));
        assert!(rendered.contains("`gone` missing"));
        // Raising the threshold clears the gate deterministically.
        assert_eq!(compare(&old, &new, 50.0).regressions(), 0);
    }

    #[test]
    fn compare_handles_zero_baseline_median() {
        let old = vec![sample("z", 0)];
        let new = vec![sample("z", 50)];
        let report = compare(&old, &new, 25.0);
        assert_eq!(report.rows[0].delta_pct, None);
        assert_eq!(report.regressions(), 0);
        assert!(report.render().contains(" -"), "no ratio renders as `-`");
    }

    #[test]
    fn bench_produces_consistent_statistics() {
        let s = bench("unit/nop", 1, 5, || std::hint::black_box(1 + 1));
        assert_eq!((s.iters, s.warmup), (5, 1));
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.p90_ns && s.p90_ns <= s.max_ns);
    }
}
