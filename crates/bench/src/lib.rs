//! Benchmark harness regenerating the paper's evaluation (Figure 12).
//!
//! The `fig12` binary prints one row per case study with the size and
//! time columns of the paper's table; the Criterion benches under
//! `benches/` measure the two pipeline halves (trace generation =
//! the paper's "Isla" column; verification = the "Coq" column's
//! automation/side-condition/Qed subdivision) per case.

use islaris_cases::{
    binsearch_arm, binsearch_riscv, hvc, memcpy_arm, memcpy_riscv, pkvm, rbit, uart, unaligned,
    CaseOutcome,
};

/// Runs every case study in the paper's Fig. 12 row order.
#[must_use]
pub fn all_cases() -> Vec<CaseOutcome> {
    vec![
        memcpy_arm::run(),
        memcpy_riscv::run(),
        hvc::run(),
        pkvm::run(),
        unaligned::run(),
        uart::run(),
        rbit::run(),
        binsearch_arm::run(),
        binsearch_riscv::run(),
    ]
}

/// Renders the regenerated Fig. 12 table.
#[must_use]
pub fn fig12_table(outcomes: &[CaseOutcome]) -> String {
    let mut out = String::new();
    out.push_str(&CaseOutcome::header());
    out.push('\n');
    for o in outcomes {
        out.push_str(&o.row());
        out.push('\n');
    }
    out
}
