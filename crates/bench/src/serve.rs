//! Verification-as-a-service: the `fig12 --serve` daemon.
//!
//! A std-only TCP server speaking the in-tree HTTP/1.1 framing
//! ([`islaris_obs::http`]) and JSON ([`islaris_obs::json`]). Requests are
//! scheduled on the long-lived [`islaris_core::WorkerPool`] with bounded
//! backpressure (a saturated queue is an immediate `503 overloaded`) and
//! per-request deadlines (a deadline that lapses while the job is queued
//! is a `504 deadline-exceeded` — the expensive work is skipped).
//!
//! ## Wire protocol (DESIGN §12)
//!
//! * `POST /verify` — one job, JSON body, dispatched on `"kind"`:
//!   * `{"kind":"case","slug":S}` — run the named Fig. 12 case; replies
//!     with the stable verdict row, every rendered certificate, and the
//!     deterministic per-stage profile.
//!   * `{"kind":"trace","arch":"arm"|"riscv","opcode":"0x…"}` — trace one
//!     opcode; replies with the printed trace and its effort counters.
//!   * `{"kind":"check","arch":…,"opcode":…,"spec":SEXPR}` — prove a
//!     post-state spec about one opcode: the s-expression may use
//!     `(init R)` / `(final R)` for a register's initial / final value,
//!     resolved per enumerated path and checked by entailment.
//!   * any job may carry `"deadline_ms": N` (`0` = already expired — the
//!     deterministic way to exercise the `504`).
//! * `GET /health`, `GET /stats` — liveness and counters.
//! * `POST /shutdown` — graceful stop.
//!
//! Every error is typed: `{"error":KIND,"detail":…}` with a distinct
//! `KIND` per fault class (malformed framing, oversized/truncated body,
//! invalid JSON, unknown case, bad opcode, …), and the server keeps
//! serving after every one of them.
//!
//! ## Determinism
//!
//! Response bodies are byte-deterministic for a given request: wall-clock
//! time travels in the `X-Islaris-Wall-Ns` header (never the body), and
//! the per-case profile is stripped of its two documented
//! schedule-dependent rows (`cache`, `q.cache`) before rendering. A warm
//! restart over a persistent store therefore answers byte-identically to
//! a cold run — the replay harness asserts exactly that.
//!
//! ## Persistence
//!
//! With a store directory, both caches are disk-backed
//! ([`TraceCache::persistent`], [`QueryCache::persistent`]): restarts are
//! warm, and N server processes can share one store. The server is
//! outside the certificate TCB — whatever the caches replay, certificates
//! still go through the independent checker.

use std::io::{self, BufReader};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use islaris_cases::{find_case, run_case_cached, CaseCtx, ALL_CASES};
use islaris_core::{render_certificate, JobSlot, SubmitError, WorkerPool};
use islaris_isla::{analyze_path, enumerate_paths, IslaConfig, Opcode, PathView, TraceCache};
use islaris_itl::sexp::{expr_to_sexp, sexp_to_expr};
use islaris_itl::{parse_sexp, print_trace, Event, Sexp};
use islaris_models::{Arch, ARM, RISCV};
use islaris_obs::http::{read_request, write_response, HttpError, Request};
use islaris_obs::json::{obj, parse_json, Json};
use islaris_obs::store::u64_json;
use islaris_obs::{CacheMetrics, QueryTable, SolverMetrics, StoreMetrics};
use islaris_smt::{Expr, QueryCache, SolverConfig, Sort, Var};

/// Server configuration.
pub struct ServeConfig {
    /// Port to bind on `127.0.0.1` (`0` = ephemeral).
    pub port: u16,
    /// Pool workers (`0` = ask the OS).
    pub workers: usize,
    /// Bounded job-queue capacity; a full queue answers `503`.
    pub queue_cap: usize,
    /// Persistent store root (`traces/` and `queries/` subdirectories);
    /// `None` = in-memory caches only.
    pub store_dir: Option<PathBuf>,
    /// Default per-request deadline in ms (`0` = none).
    pub default_deadline_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            workers: 0,
            queue_cap: 64,
            store_dir: None,
            default_deadline_ms: 0,
        }
    }
}

struct ServerState {
    tcache: TraceCache,
    qcache: Arc<QueryCache>,
    pool: WorkerPool,
    stop: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
    default_deadline_ms: u64,
    port: u16,
}

/// A running server. Dropping the handle does *not* stop the server;
/// call [`Server::stop`] (or `POST /shutdown`) then [`Server::join`].
pub struct Server {
    state: Arc<ServerState>,
    accept: Option<std::thread::JoinHandle<()>>,
    port: u16,
}

impl Server {
    /// Binds `127.0.0.1:port` and starts accepting.
    ///
    /// # Errors
    ///
    /// Bind/listen failures, or I/O errors opening the store.
    pub fn start(cfg: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let port = listener.local_addr()?.port();
        let (tcache, qcache) = match &cfg.store_dir {
            Some(dir) => (
                TraceCache::persistent(&dir.join("traces"))?,
                Arc::new(QueryCache::persistent(&dir.join("queries"))?),
            ),
            None => (TraceCache::new(), Arc::new(QueryCache::new())),
        };
        let state = Arc::new(ServerState {
            tcache,
            qcache,
            pool: WorkerPool::new(cfg.workers, cfg.queue_cap),
            stop: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            default_deadline_ms: cfg.default_deadline_ms,
            port,
        });
        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("islaris-accept".into())
            .spawn(move || accept_loop(&listener, &accept_state))?;
        Ok(Server {
            state,
            accept: Some(accept),
            port,
        })
    }

    /// The bound port.
    #[must_use]
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Requests a graceful stop (idempotent) without waiting.
    pub fn stop(&self) {
        request_stop(&self.state);
    }

    /// Blocks until the accept loop exits (after [`Server::stop`] or a
    /// `POST /shutdown`).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn request_stop(state: &ServerState) {
    if !state.stop.swap(true, Ordering::AcqRel) {
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(("127.0.0.1", state.port));
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    for stream in listener.incoming() {
        if state.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_state = Arc::clone(state);
        let _ = std::thread::Builder::new()
            .name("islaris-conn".into())
            .spawn(move || handle_conn(stream, &conn_state));
    }
}

/// A typed error response: status code, machine-readable kind, detail.
struct ApiError {
    status: u16,
    kind: &'static str,
    detail: String,
}

impl ApiError {
    fn new(status: u16, kind: &'static str, detail: impl Into<String>) -> ApiError {
        ApiError {
            status,
            kind,
            detail: detail.into(),
        }
    }

    fn body(&self) -> String {
        obj(vec![
            ("error", Json::Str(self.kind.to_string())),
            ("detail", Json::Str(self.detail.clone())),
        ])
        .render()
    }
}

fn deadline_exceeded() -> ApiError {
    ApiError::new(
        504,
        "deadline-exceeded",
        "deadline lapsed before the job was scheduled",
    )
}

/// Maps a framing fault to its typed response. `None` = nothing to say
/// (clean close or transport error).
fn framing_error(e: &HttpError) -> Option<ApiError> {
    match e {
        HttpError::Closed | HttpError::Io(_) => None,
        HttpError::Malformed(d) => Some(ApiError::new(400, "malformed-request", d.clone())),
        HttpError::HeadTooLarge => Some(ApiError::new(
            431,
            "head-too-large",
            "request head exceeds the limit",
        )),
        HttpError::BodyTooLarge(n) => Some(ApiError::new(
            413,
            "body-too-large",
            format!("declared body of {n} bytes exceeds the limit"),
        )),
        HttpError::TruncatedBody { expected, got } => Some(ApiError::new(
            400,
            "truncated-body",
            format!("Content-Length promised {expected} bytes, received {got}"),
        )),
    }
}

fn handle_conn(stream: TcpStream, state: &Arc<ServerState>) {
    // A parked keep-alive connection must not pin a thread forever after
    // shutdown; the timeout only bounds idle waits, not request handling.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        if state.stop.load(Ordering::Acquire) {
            return;
        }
        match read_request(&mut reader) {
            Ok(req) => {
                state.requests.fetch_add(1, Ordering::Relaxed);
                let t0 = Instant::now();
                let (status, body, shutdown) = dispatch(state, &req);
                if status >= 400 {
                    state.errors.fetch_add(1, Ordering::Relaxed);
                }
                let wall = [("X-Islaris-Wall-Ns", format!("{}", t0.elapsed().as_nanos()))];
                if write_response(&mut writer, status, &wall, body.as_bytes()).is_err() {
                    return;
                }
                if shutdown {
                    request_stop(state);
                    return;
                }
                if req.wants_close() {
                    return;
                }
            }
            Err(e) => {
                // The byte stream is unsynchronized after a framing
                // fault: answer (when there is an answer) and close this
                // connection. The server itself keeps serving.
                if let Some(api) = framing_error(&e) {
                    state.errors.fetch_add(1, Ordering::Relaxed);
                    let _ = write_response(&mut writer, api.status, &[], api.body().as_bytes());
                }
                return;
            }
        }
    }
}

/// Routes one request. Returns `(status, body, shutdown-after-reply)`.
fn dispatch(state: &Arc<ServerState>, req: &Request) -> (u16, String, bool) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => (200, obj(vec![("ok", Json::Bool(true))]).render(), false),
        ("GET", "/stats") => (200, stats_body(state), false),
        ("POST", "/shutdown") => (
            200,
            obj(vec![
                ("ok", Json::Bool(true)),
                ("stopping", Json::Bool(true)),
            ])
            .render(),
            true,
        ),
        ("POST", "/verify") => match verify(state, &req.body) {
            Ok(body) => (200, body, false),
            Err(api) => (api.status, api.body(), false),
        },
        (_, "/health" | "/stats" | "/shutdown" | "/verify") => {
            let api = ApiError::new(
                405,
                "method-not-allowed",
                format!("{} not allowed on {}", req.method, req.path),
            );
            (api.status, api.body(), false)
        }
        (_, path) => {
            let api = ApiError::new(404, "unknown-path", format!("no such path `{path}`"));
            (api.status, api.body(), false)
        }
    }
}

fn stats_body(state: &Arc<ServerState>) -> String {
    let store = |m: Option<StoreMetrics>| match m {
        None => Json::Null,
        Some(m) => obj(vec![
            ("disk_hits", u64_json(m.disk_hits)),
            ("disk_misses", u64_json(m.disk_misses)),
            ("evictions", u64_json(m.evictions)),
            ("write_errors", u64_json(m.write_errors)),
        ]),
    };
    let tstats = state.tcache.stats();
    obj(vec![
        ("requests", u64_json(state.requests.load(Ordering::Relaxed))),
        ("errors", u64_json(state.errors.load(Ordering::Relaxed))),
        ("workers", u64_json(state.pool.workers() as u64)),
        ("queued", u64_json(state.pool.queued() as u64)),
        ("job_panics", u64_json(state.pool.panics() as u64)),
        (
            "trace_cache",
            obj(vec![
                ("hits", u64_json(tstats.hits)),
                ("misses", u64_json(tstats.misses)),
                ("unique", u64_json(state.tcache.unique_traces() as u64)),
                ("store", store(state.tcache.store_metrics())),
            ]),
        ),
        (
            "query_cache",
            obj(vec![
                ("entries", u64_json(state.qcache.len() as u64)),
                ("store", store(state.qcache.store_metrics())),
            ]),
        ),
    ])
    .render()
}

/// Parses and schedules one `/verify` job; blocks until its slot fills.
fn verify(state: &Arc<ServerState>, body: &[u8]) -> Result<String, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::new(400, "invalid-json", "body is not UTF-8"))?;
    let j = parse_json(text)
        .map_err(|(off, msg)| ApiError::new(400, "invalid-json", format!("byte {off}: {msg}")))?;
    let job = parse_job(&j)?;
    let deadline_ms = match j.get("deadline_ms") {
        None => state.default_deadline_ms,
        Some(v) => v.as_u64().ok_or_else(|| {
            ApiError::new(
                400,
                "bad-request",
                "deadline_ms must be a non-negative integer",
            )
        })?,
    };
    let has_deadline = j.get("deadline_ms").is_some() || state.default_deadline_ms > 0;
    let deadline = has_deadline.then(|| Instant::now() + Duration::from_millis(deadline_ms));

    let slot: JobSlot<Result<String, ApiError>> = JobSlot::new();
    let job_slot = slot.clone();
    let job_state = Arc::clone(state);
    let submitted = state.pool.try_submit(deadline, move |expired| {
        if expired {
            job_slot.fill(Err(deadline_exceeded()));
            return;
        }
        let result = catch_unwind(AssertUnwindSafe(|| run_job(&job_state, &job)));
        job_slot.fill(result.unwrap_or_else(|_| {
            Err(ApiError::new(
                500,
                "internal",
                "job panicked; worker recovered",
            ))
        }));
    });
    match submitted {
        Ok(()) => slot.wait(),
        Err(SubmitError::Saturated) => Err(ApiError::new(
            503,
            "overloaded",
            "work queue saturated; retry later",
        )),
        Err(SubmitError::ShuttingDown) => {
            Err(ApiError::new(503, "overloaded", "server is shutting down"))
        }
    }
}

/// A fully validated verification job (validation happens on the
/// connection thread so typed errors never consume a pool slot).
enum Job {
    Case {
        slug: String,
    },
    Trace {
        arch: &'static Arch,
        opcode: u32,
    },
    Check {
        arch: &'static Arch,
        opcode: u32,
        spec: Sexp,
    },
}

fn parse_arch(j: &Json) -> Result<&'static Arch, ApiError> {
    match j.get("arch").and_then(Json::as_str) {
        Some("arm") => Ok(&ARM),
        Some("riscv") => Ok(&RISCV),
        Some(other) => Err(ApiError::new(
            400,
            "bad-request",
            format!("unknown arch `{other}` (want `arm` or `riscv`)"),
        )),
        None => Err(ApiError::new(400, "bad-request", "missing `arch`")),
    }
}

fn parse_opcode(j: &Json) -> Result<u32, ApiError> {
    let Some(text) = j.get("opcode").and_then(Json::as_str) else {
        return Err(ApiError::new(400, "bad-request", "missing `opcode`"));
    };
    let digits = text.strip_prefix("0x").unwrap_or(text);
    if digits.len() != 8 {
        return Err(ApiError::new(
            400,
            "bad-opcode",
            format!("`{text}` is not 4 opcode bytes (want 8 hex digits)"),
        ));
    }
    u32::from_str_radix(digits, 16)
        .map_err(|_| ApiError::new(400, "bad-opcode", format!("`{text}` is not hexadecimal")))
}

fn parse_job(j: &Json) -> Result<Job, ApiError> {
    match j.get("kind").and_then(Json::as_str) {
        Some("case") => {
            let Some(slug) = j.get("slug").and_then(Json::as_str) else {
                return Err(ApiError::new(400, "bad-request", "missing `slug`"));
            };
            if find_case(slug).is_none() {
                let slugs: Vec<&str> = ALL_CASES.iter().map(|c| c.slug).collect();
                return Err(ApiError::new(
                    404,
                    "unknown-case",
                    format!("no case `{slug}`; known: {}", slugs.join(" ")),
                ));
            }
            Ok(Job::Case {
                slug: slug.to_string(),
            })
        }
        Some("trace") => Ok(Job::Trace {
            arch: parse_arch(j)?,
            opcode: parse_opcode(j)?,
        }),
        Some("check") => {
            let Some(spec_text) = j.get("spec").and_then(Json::as_str) else {
                return Err(ApiError::new(400, "bad-request", "missing `spec`"));
            };
            let spec = parse_sexp(spec_text).map_err(|e| {
                ApiError::new(400, "bad-request", format!("spec does not parse: {e}"))
            })?;
            Ok(Job::Check {
                arch: parse_arch(j)?,
                opcode: parse_opcode(j)?,
                spec,
            })
        }
        Some(other) => Err(ApiError::new(
            400,
            "bad-request",
            format!("unknown kind `{other}` (want case, trace, or check)"),
        )),
        None => Err(ApiError::new(400, "bad-request", "missing `kind`")),
    }
}

fn run_job(state: &ServerState, job: &Job) -> Result<String, ApiError> {
    match job {
        Job::Case { slug } => run_case_job(state, slug),
        Job::Trace { arch, opcode } => run_trace_job(state, arch, *opcode),
        Job::Check { arch, opcode, spec } => run_check_job(state, arch, *opcode, spec),
    }
}

/// Strips the two documented schedule-dependent profile rows (`cache`,
/// `q.cache`) so response bodies are byte-identical across cache states.
fn stripped_profile(profile_json: &str) -> Json {
    match parse_json(profile_json) {
        Ok(Json::Obj(fields)) => Json::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| k != "cache" && k != "q.cache")
                .collect(),
        ),
        _ => Json::Null,
    }
}

fn run_case_job(state: &ServerState, slug: &str) -> Result<String, ApiError> {
    let def = find_case(slug)
        .ok_or_else(|| ApiError::new(404, "unknown-case", format!("no case `{slug}`")))?;
    let ctx = CaseCtx::new(&state.tcache, 1);
    let art = (def.build)(&ctx);
    let (outcome, report) = run_case_cached(&art, Some(&state.qcache));
    let certs: Vec<Json> = report
        .blocks
        .iter()
        .map(|b| Json::Str(render_certificate(&b.cert)))
        .collect();
    Ok(obj(vec![
        ("kind", Json::Str("case".into())),
        ("slug", Json::Str(slug.to_string())),
        ("verdict", Json::Str("proved".into())),
        ("row", Json::Str(outcome.stable_row())),
        ("certs", Json::Arr(certs)),
        ("profile", stripped_profile(&outcome.profile.to_json(slug))),
    ])
    .render())
}

fn lookup_trace(
    state: &ServerState,
    arch: &'static Arch,
    opcode: u32,
) -> Result<Arc<islaris_isla::CachedTrace>, ApiError> {
    let cfg = IslaConfig::new(*arch);
    state
        .tcache
        .lookup(&cfg, &Opcode::Concrete(opcode))
        .map(|(entry, _)| entry)
        .map_err(|e| {
            ApiError::new(
                400,
                "bad-opcode",
                format!("opcode {opcode:#010x} does not trace: {e}"),
            )
        })
}

fn run_trace_job(
    state: &ServerState,
    arch: &'static Arch,
    opcode: u32,
) -> Result<String, ApiError> {
    let entry = lookup_trace(state, arch, opcode)?;
    // Only the deterministic counters go in the body (no wall time).
    let s = &entry.stats;
    Ok(obj(vec![
        ("kind", Json::Str("trace".into())),
        ("arch", Json::Str(arch.name.to_string())),
        ("opcode", Json::Str(format!("{opcode:#010x}"))),
        ("trace", Json::Str(print_trace(&entry.trace))),
        ("params", u64_json(entry.params.len() as u64)),
        (
            "stats",
            obj(vec![
                ("runs", u64_json(s.runs)),
                ("smt_queries", u64_json(s.smt_queries)),
                ("events", u64_json(s.events as u64)),
                ("branches_explored", u64_json(s.branches_explored)),
                ("branches_pruned", u64_json(s.branches_pruned)),
            ]),
        ),
    ])
    .render())
}

/// Resolves `(init R)` / `(final R)` atoms against one analyzed path.
fn resolve_spec(spec: &Sexp, events: &[Event], view: &PathView) -> Result<Sexp, ApiError> {
    let reg_expr = |which: &str, name: &str| -> Result<Expr, ApiError> {
        let init = view
            .reg_inits
            .iter()
            .find(|(r, _)| r.to_string() == name)
            .map(|(_, e)| e.clone());
        if which == "final" {
            for ev in events.iter().rev() {
                if let Event::WriteReg(r, v) = ev {
                    if r.to_string() == name {
                        return Ok(v.clone());
                    }
                }
            }
        }
        init.ok_or_else(|| {
            ApiError::new(
                400,
                "bad-request",
                format!("register `{name}` is not accessed on this path"),
            )
        })
    };
    match spec {
        Sexp::List(items) => {
            if let [Sexp::Atom(which), Sexp::Atom(name)] = items.as_slice() {
                if which == "init" || which == "final" {
                    return Ok(expr_to_sexp(&reg_expr(which, name)?));
                }
            }
            let resolved: Result<Vec<Sexp>, ApiError> = items
                .iter()
                .map(|s| resolve_spec(s, events, view))
                .collect();
            Ok(Sexp::List(resolved?))
        }
        Sexp::Atom(_) => Ok(spec.clone()),
    }
}

fn run_check_job(
    state: &ServerState,
    arch: &'static Arch,
    opcode: u32,
    spec: &Sexp,
) -> Result<String, ApiError> {
    let entry = lookup_trace(state, arch, opcode)?;
    let paths = enumerate_paths(&entry.trace);
    let cfg = SolverConfig::default();
    let mut m = SolverMetrics::default();
    let mut table = QueryTable::default();
    let mut cm = CacheMetrics::default();
    let mut failed = Vec::new();
    for (i, events) in paths.iter().enumerate() {
        let view = analyze_path(events, &entry.params);
        let goal_sexp = resolve_spec(spec, events, &view)?;
        let goal = sexp_to_expr(&goal_sexp).map_err(|e| {
            ApiError::new(
                400,
                "bad-request",
                format!("resolved spec is not a valid expression: {e}"),
            )
        })?;
        let sorts = |v: Var| -> Option<Sort> { view.sorts.get(&v).copied() };
        let (proved, _) = state.qcache.entails_logged(
            &view.constraints,
            &goal,
            &sorts,
            &cfg,
            &mut m,
            &mut table,
            &mut cm,
        );
        if !proved {
            failed.push(u64_json(i as u64));
        }
    }
    let verdict = if failed.is_empty() {
        "proved"
    } else {
        "refuted"
    };
    Ok(obj(vec![
        ("kind", Json::Str("check".into())),
        ("arch", Json::Str(arch.name.to_string())),
        ("opcode", Json::Str(format!("{opcode:#010x}"))),
        ("verdict", Json::Str(verdict.into())),
        ("paths", u64_json(paths.len() as u64)),
        ("failed", Json::Arr(failed)),
    ])
    .render())
}
