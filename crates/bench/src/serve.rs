//! Verification-as-a-service: the `fig12 --serve` daemon.
//!
//! A std-only TCP server speaking the in-tree HTTP/1.1 framing
//! ([`islaris_obs::http`]) and JSON ([`islaris_obs::json`]). Requests are
//! scheduled on the long-lived [`islaris_core::WorkerPool`] with bounded
//! backpressure (a saturated queue is an immediate `503 overloaded`) and
//! per-request deadlines (a deadline that lapses while the job is queued
//! is a `504 deadline-exceeded` — the expensive work is skipped).
//!
//! ## Wire protocol (DESIGN §12, §13)
//!
//! * `POST /verify` — one job, JSON body, dispatched on `"kind"`:
//!   * `{"kind":"case","slug":S}` — run the named Fig. 12 case; replies
//!     with the stable verdict row, every rendered certificate, and the
//!     deterministic per-stage profile.
//!   * `{"kind":"trace","arch":"arm"|"riscv","opcode":"0x…"}` — trace one
//!     opcode; replies with the printed trace and its effort counters.
//!   * `{"kind":"check","arch":…,"opcode":…,"spec":SEXPR}` — prove a
//!     post-state spec about one opcode: the s-expression may use
//!     `(init R)` / `(final R)` for a register's initial / final value,
//!     resolved per enumerated path and checked by entailment.
//!   * any job may carry `"deadline_ms": N` (`0` = already expired — the
//!     deterministic way to exercise the `504`).
//! * `GET /health`, `GET /stats` — liveness and counters.
//! * `GET /metrics` — Prometheus-style text exposition
//!   ([`islaris_obs::metrics`]): lifecycle-stage counters, per-error-kind
//!   counters for every kind in [`ERROR_KINDS`], responses by status,
//!   queue-depth / in-flight gauges, log-linear latency histograms, and
//!   cache + disk-store gauges.
//! * `GET /trace` — index of the bounded ring journal (the last N pool
//!   jobs); `GET /trace/<id>` — one request's spans as Chrome
//!   trace-event JSON ([`islaris_obs::trace`]).
//! * `POST /shutdown` — graceful stop.
//!
//! Every response carries an `X-Islaris-Trace-Id` header: the FNV-1a
//! digest of the request's sequence number, 16 lowercase hex digits.
//! With `--log PATH` the server appends one JSONL record per lifecycle
//! event (`request` / `enqueue` / `dequeue` / `execute` / `respond`,
//! plus `accept`, `server-start`, `server-stop`); wall-clock fields are
//! quarantined in the `*_wall_ns` namespace.
//!
//! Every error is typed: `{"error":KIND,"detail":…}` with a distinct
//! `KIND` per fault class ([`ERROR_KINDS`]), and the server keeps
//! serving after every one of them.
//!
//! ## Determinism
//!
//! Response bodies are byte-deterministic for a given request:
//! wall-clock time travels in the `X-Islaris-Wall-Ns` header, `/metrics`,
//! `/trace/<id>`, and the event log — never in a `/verify` body — and
//! the per-case profile is stripped of its two documented
//! schedule-dependent rows (`cache`, `q.cache`) before rendering. A warm
//! restart over a persistent store therefore answers byte-identically to
//! a cold run — the replay harness asserts exactly that.
//!
//! ## Persistence
//!
//! With a store directory, both caches are disk-backed
//! ([`TraceCache::persistent`], [`QueryCache::persistent`]): restarts are
//! warm, and N server processes can share one store. The server is
//! outside the certificate TCB — whatever the caches replay, certificates
//! still go through the independent checker.

use std::io::{self, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use islaris_cases::{find_case, run_case_jobs, CaseCtx, ALL_CASES};
use islaris_core::{render_certificate, JobSlot, SubmitError, WorkerPool};
use islaris_isla::{analyze_path, enumerate_paths, IslaConfig, Opcode, PathView, TraceCache};
use islaris_itl::sexp::{expr_to_sexp, sexp_to_expr};
use islaris_itl::{parse_sexp, print_trace, Event, Sexp};
use islaris_models::{Arch, ARM, RISCV};
use islaris_obs::http::{read_request, write_response, HttpError, Request};
use islaris_obs::json::{obj, parse_json, Json};
use islaris_obs::metrics::{Counter, CounterVec, Gauge, GaugeVec, Histogram, Registry};
use islaris_obs::store::u64_json;
use islaris_obs::trace::{chrome_trace_for, TraceJournal, TraceRecord};
use islaris_obs::{fnv1a, CacheMetrics, QueryTable, Recorder, SolverMetrics, StoreMetrics};
use islaris_smt::{Expr, QueryCache, SolverConfig, Sort, Var};

/// Every typed error kind the daemon can answer with — the exposition
/// pre-registers a counter per kind, so `/metrics` always shows all 13
/// (a kind that never fired renders as `0`).
pub const ERROR_KINDS: [&str; 13] = [
    "malformed-request",
    "head-too-large",
    "body-too-large",
    "truncated-body",
    "invalid-json",
    "bad-request",
    "unknown-case",
    "bad-opcode",
    "deadline-exceeded",
    "overloaded",
    "internal",
    "unknown-path",
    "method-not-allowed",
];

/// Request lifecycle stages instrumented in `/metrics` and the event log.
pub const STAGES: [&str; 6] = [
    "accept", "parse", "enqueue", "dequeue", "execute", "respond",
];

/// Server configuration.
pub struct ServeConfig {
    /// Port to bind on `127.0.0.1` (`0` = ephemeral).
    pub port: u16,
    /// Pool workers (`0` = ask the OS).
    pub workers: usize,
    /// Bounded job-queue capacity; a full queue answers `503`.
    pub queue_cap: usize,
    /// Persistent store root (`traces/` and `queries/` subdirectories);
    /// `None` = in-memory caches only.
    pub store_dir: Option<PathBuf>,
    /// Default per-request deadline in ms (`0` = none).
    pub default_deadline_ms: u64,
    /// Structured event log (JSONL, appended); `None` = no log.
    pub log_path: Option<PathBuf>,
    /// Trace-journal ring bound: the last N pool jobs stay inspectable
    /// via `GET /trace/<id>`.
    pub trace_journal: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            workers: 0,
            queue_cap: 64,
            store_dir: None,
            default_deadline_ms: 0,
            log_path: None,
            trace_journal: 256,
        }
    }
}

/// The daemon's metric handles, registered once at startup. Stage and
/// error counters are bumped on the serving path; scrape-time gauges
/// (queue depth, cache sizes, store counters) are refreshed by
/// [`metrics_body`] immediately before rendering.
struct Metrics {
    registry: Registry,
    requests: Arc<Counter>,
    responses: Arc<CounterVec>,
    errors: Arc<CounterVec>,
    stages: Arc<CounterVec>,
    queue_depth: Arc<Gauge>,
    in_flight: Arc<Gauge>,
    workers: Arc<Gauge>,
    job_panics: Arc<Gauge>,
    request_ns: Arc<Histogram>,
    queue_wait_ns: Arc<Histogram>,
    exec_ns: Arc<Histogram>,
    exec_case_ns: Arc<Histogram>,
    exec_trace_ns: Arc<Histogram>,
    exec_check_ns: Arc<Histogram>,
    blocks_parallel: Arc<Counter>,
    proof_trimmed: Arc<Counter>,
    interned_terms: Arc<Gauge>,
    intern_hits: Arc<Gauge>,
    journal_entries: Arc<Gauge>,
    journal_evicted: Arc<Gauge>,
    tcache_hits: Arc<Gauge>,
    tcache_misses: Arc<Gauge>,
    tcache_unique: Arc<Gauge>,
    qcache_entries: Arc<Gauge>,
    store_disk_hits: Arc<GaugeVec>,
    store_disk_misses: Arc<GaugeVec>,
    store_evictions: Arc<GaugeVec>,
    store_write_errors: Arc<GaugeVec>,
}

impl Metrics {
    fn new() -> Metrics {
        let mut r = Registry::new();
        let statuses = [
            "200", "400", "404", "405", "413", "431", "500", "503", "504",
        ];
        let stores = ["traces", "queries"];
        Metrics {
            requests: r.counter(
                "islaris_requests_total",
                "Requests successfully framed, all paths",
            ),
            responses: r.counter_vec(
                "islaris_responses_total",
                "Responses written, by HTTP status",
                "status",
                &statuses,
            ),
            errors: r.counter_vec(
                "islaris_errors_total",
                "Typed error responses, by machine-readable kind",
                "kind",
                &ERROR_KINDS,
            ),
            stages: r.counter_vec(
                "islaris_stage_total",
                "Request lifecycle events, by stage",
                "stage",
                &STAGES,
            ),
            queue_depth: r.gauge("islaris_queue_depth", "Jobs waiting in the bounded queue"),
            in_flight: r.gauge(
                "islaris_in_flight",
                "Jobs claimed by a worker, not yet done",
            ),
            workers: r.gauge("islaris_workers", "Resident pool workers"),
            job_panics: r.gauge(
                "islaris_job_panics",
                "Jobs whose closure panicked (isolated)",
            ),
            request_ns: r.histogram(
                "islaris_request_wall_ns",
                "Wall-clock per request, framing to response, ns",
            ),
            queue_wait_ns: r.histogram(
                "islaris_queue_wait_wall_ns",
                "Wall-clock a job waited in the queue, ns",
            ),
            exec_ns: r.histogram("islaris_exec_wall_ns", "Wall-clock a job body executed, ns"),
            // Per-kind execution histograms (one metric per request kind:
            // the registry is label-free for histograms by design, and
            // three fixed kinds do not warrant a labelled family).
            exec_case_ns: r.histogram(
                "islaris_exec_case_wall_ns",
                "Wall-clock a case job body executed, ns",
            ),
            exec_trace_ns: r.histogram(
                "islaris_exec_trace_wall_ns",
                "Wall-clock a trace job body executed, ns",
            ),
            exec_check_ns: r.histogram(
                "islaris_exec_check_wall_ns",
                "Wall-clock a check job body executed, ns",
            ),
            blocks_parallel: r.counter(
                "islaris_blocks_parallel_total",
                "Engine blocks scheduled as independent intra-case jobs",
            ),
            proof_trimmed: r.counter(
                "islaris_proof_trimmed_clauses_total",
                "Proof clauses dropped by backward dependency trimming",
            ),
            interned_terms: r.gauge(
                "islaris_interned_terms",
                "Terms interned in the hash-consed arena (process-wide)",
            ),
            intern_hits: r.gauge(
                "islaris_intern_hits",
                "Term constructions answered by an existing arena node",
            ),
            journal_entries: r.gauge(
                "islaris_trace_journal_entries",
                "Requests held in the bounded trace journal",
            ),
            journal_evicted: r.gauge(
                "islaris_trace_journal_evicted",
                "Journal records evicted by the ring bound",
            ),
            tcache_hits: r.gauge("islaris_trace_cache_hits", "Trace-cache lookup hits"),
            tcache_misses: r.gauge("islaris_trace_cache_misses", "Trace-cache lookup misses"),
            tcache_unique: r.gauge("islaris_trace_cache_unique", "Unique traces cached"),
            qcache_entries: r.gauge("islaris_query_cache_entries", "Query-cache entries"),
            store_disk_hits: r.gauge_vec(
                "islaris_store_disk_hits",
                "Persistent-store loads served from disk",
                "store",
                &stores,
            ),
            store_disk_misses: r.gauge_vec(
                "islaris_store_disk_misses",
                "Persistent-store lookups not on disk",
                "store",
                &stores,
            ),
            store_evictions: r.gauge_vec(
                "islaris_store_evictions",
                "Corrupt sealed files evicted at load (sound misses)",
                "store",
                &stores,
            ),
            store_write_errors: r.gauge_vec(
                "islaris_store_write_errors",
                "Persistent-store write failures (cache kept serving)",
                "store",
                &stores,
            ),
            registry: r,
        }
    }
}

/// The structured JSONL event log (`--serve … --log PATH`). One line
/// per lifecycle event, rendered with [`islaris_obs::json`] so every
/// line re-parses with `parse_json`. Wall-clock fields live in the
/// `*_wall_ns` namespace; everything else is deterministic for a given
/// request.
struct EventLog {
    file: Mutex<std::fs::File>,
    epoch: Instant,
}

impl EventLog {
    fn open(path: &Path) -> io::Result<EventLog> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(EventLog {
            file: Mutex::new(file),
            epoch: Instant::now(),
        })
    }

    fn event(&self, kind: &str, trace: Option<(u64, u64)>, fields: Vec<(&str, Json)>) {
        let mut all = vec![("kind", Json::Str(kind.to_string()))];
        if let Some((id, seq)) = trace {
            all.push(("trace", Json::Str(format!("{id:016x}"))));
            all.push(("seq", u64_json(seq)));
        }
        all.extend(fields);
        all.push((
            "ts_wall_ns",
            u64_json(u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)),
        ));
        let line = obj(all).render();
        let mut f = self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // A failed log write must never fail the request being served.
        let _ = writeln!(f, "{line}");
    }
}

struct ServerState {
    tcache: TraceCache,
    qcache: Arc<QueryCache>,
    pool: WorkerPool,
    stop: AtomicBool,
    metrics: Metrics,
    journal: TraceJournal,
    log: Option<EventLog>,
    /// Request sequence (1-based); the trace id is its FNV-1a digest.
    seq: AtomicU64,
    /// Connections accepted (event-log identity for `accept` records).
    conns: AtomicU64,
    default_deadline_ms: u64,
    port: u16,
}

impl ServerState {
    fn log_event(&self, kind: &str, trace: Option<(u64, u64)>, fields: Vec<(&str, Json)>) {
        if let Some(log) = &self.log {
            log.event(kind, trace, fields);
        }
    }
}

/// The deterministic trace id of request `seq`: FNV-1a over the
/// sequence number's big-endian bytes, echoed in `X-Islaris-Trace-Id`.
#[must_use]
pub fn trace_id_for_seq(seq: u64) -> u64 {
    fnv1a(&seq.to_be_bytes())
}

/// Per-request trace context: identity plus the span recorder that is
/// threaded through the worker pool.
struct ReqTrace {
    seq: u64,
    id: u64,
    recorder: Arc<Recorder>,
}

/// A running server. Dropping the handle does *not* stop the server;
/// call [`Server::stop`] (or `POST /shutdown`) then [`Server::join`].
pub struct Server {
    state: Arc<ServerState>,
    accept: Option<std::thread::JoinHandle<()>>,
    port: u16,
}

impl Server {
    /// Binds `127.0.0.1:port` and starts accepting.
    ///
    /// # Errors
    ///
    /// Bind/listen failures, or I/O errors opening the store or the
    /// event log.
    pub fn start(cfg: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let port = listener.local_addr()?.port();
        let (tcache, qcache) = match &cfg.store_dir {
            Some(dir) => (
                TraceCache::persistent(&dir.join("traces"))?,
                Arc::new(QueryCache::persistent(&dir.join("queries"))?),
            ),
            None => (TraceCache::new(), Arc::new(QueryCache::new())),
        };
        let log = match &cfg.log_path {
            Some(path) => Some(EventLog::open(path)?),
            None => None,
        };
        let state = Arc::new(ServerState {
            tcache,
            qcache,
            pool: WorkerPool::new(cfg.workers, cfg.queue_cap),
            stop: AtomicBool::new(false),
            metrics: Metrics::new(),
            journal: TraceJournal::new(cfg.trace_journal),
            log,
            seq: AtomicU64::new(0),
            conns: AtomicU64::new(0),
            default_deadline_ms: cfg.default_deadline_ms,
            port,
        });
        state.log_event(
            "server-start",
            None,
            vec![
                ("port", u64_json(u64::from(port))),
                ("workers", u64_json(state.pool.workers() as u64)),
            ],
        );
        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("islaris-accept".into())
            .spawn(move || accept_loop(&listener, &accept_state))?;
        Ok(Server {
            state,
            accept: Some(accept),
            port,
        })
    }

    /// The bound port.
    #[must_use]
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Requests a graceful stop (idempotent) without waiting.
    pub fn stop(&self) {
        request_stop(&self.state);
    }

    /// Blocks until the accept loop exits (after [`Server::stop`] or a
    /// `POST /shutdown`).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn request_stop(state: &ServerState) {
    if !state.stop.swap(true, Ordering::AcqRel) {
        state.log_event("server-stop", None, Vec::new());
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(("127.0.0.1", state.port));
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    for stream in listener.incoming() {
        if state.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        state.metrics.stages.inc("accept");
        let conn = state.conns.fetch_add(1, Ordering::Relaxed) + 1;
        state.log_event("accept", None, vec![("conn", u64_json(conn))]);
        let conn_state = Arc::clone(state);
        let _ = std::thread::Builder::new()
            .name("islaris-conn".into())
            .spawn(move || handle_conn(stream, &conn_state));
    }
}

/// A typed error response: status code, machine-readable kind, detail.
struct ApiError {
    status: u16,
    kind: &'static str,
    detail: String,
}

impl ApiError {
    fn new(status: u16, kind: &'static str, detail: impl Into<String>) -> ApiError {
        ApiError {
            status,
            kind,
            detail: detail.into(),
        }
    }

    fn body(&self) -> String {
        obj(vec![
            ("error", Json::Str(self.kind.to_string())),
            ("detail", Json::Str(self.detail.clone())),
        ])
        .render()
    }
}

fn deadline_exceeded() -> ApiError {
    ApiError::new(
        504,
        "deadline-exceeded",
        "deadline lapsed before the job was scheduled",
    )
}

/// Maps a framing fault to its typed response. `None` = nothing to say
/// (clean close or transport error).
fn framing_error(e: &HttpError) -> Option<ApiError> {
    match e {
        HttpError::Closed | HttpError::Io(_) => None,
        HttpError::Malformed(d) => Some(ApiError::new(400, "malformed-request", d.clone())),
        HttpError::HeadTooLarge => Some(ApiError::new(
            431,
            "head-too-large",
            "request head exceeds the limit",
        )),
        HttpError::BodyTooLarge(n) => Some(ApiError::new(
            413,
            "body-too-large",
            format!("declared body of {n} bytes exceeds the limit"),
        )),
        HttpError::TruncatedBody { expected, got } => Some(ApiError::new(
            400,
            "truncated-body",
            format!("Content-Length promised {expected} bytes, received {got}"),
        )),
    }
}

/// One routed response.
struct Reply {
    status: u16,
    body: String,
    shutdown: bool,
}

impl Reply {
    fn ok(body: String) -> Reply {
        Reply {
            status: 200,
            body,
            shutdown: false,
        }
    }
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn handle_conn(stream: TcpStream, state: &Arc<ServerState>) {
    // A parked keep-alive connection must not pin a thread forever after
    // shutdown; the timeout only bounds idle waits, not request handling.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        if state.stop.load(Ordering::Acquire) {
            return;
        }
        match read_request(&mut reader) {
            Ok(req) => {
                let t0 = Instant::now();
                state.metrics.requests.inc();
                state.metrics.stages.inc("parse");
                let seq = state.seq.fetch_add(1, Ordering::Relaxed) + 1;
                let rt = ReqTrace {
                    seq,
                    id: trace_id_for_seq(seq),
                    recorder: Arc::new(Recorder::new()),
                };
                state.log_event(
                    "request",
                    Some((rt.id, rt.seq)),
                    vec![
                        ("method", Json::Str(req.method.clone())),
                        ("path", Json::Str(req.path.clone())),
                        ("body_bytes", u64_json(req.body.len() as u64)),
                    ],
                );
                let (reply, err_kind) = match dispatch(state, &req, &rt) {
                    Ok(r) => (r, None),
                    Err(api) => (
                        Reply {
                            status: api.status,
                            body: api.body(),
                            shutdown: false,
                        },
                        Some(api.kind),
                    ),
                };
                if let Some(kind) = err_kind {
                    state.metrics.errors.inc(kind);
                }
                state.metrics.responses.inc(&reply.status.to_string());
                let wall_ns = elapsed_ns(t0);
                state.metrics.request_ns.observe(wall_ns);
                let headers = [
                    ("X-Islaris-Wall-Ns", format!("{wall_ns}")),
                    ("X-Islaris-Trace-Id", format!("{:016x}", rt.id)),
                ];
                if write_response(&mut writer, reply.status, &headers, reply.body.as_bytes())
                    .is_err()
                {
                    return;
                }
                state.metrics.stages.inc("respond");
                let mut fields = vec![("status", u64_json(u64::from(reply.status)))];
                if let Some(kind) = err_kind {
                    fields.push(("error", Json::Str(kind.to_string())));
                }
                fields.push(("dur_wall_ns", u64_json(wall_ns)));
                state.log_event("respond", Some((rt.id, rt.seq)), fields);
                if reply.shutdown {
                    request_stop(state);
                    return;
                }
                if req.wants_close() {
                    return;
                }
            }
            Err(e) => {
                // The byte stream is unsynchronized after a framing
                // fault: answer (when there is an answer) and close this
                // connection. The server itself keeps serving. Framing
                // faults never allocate a trace id or a journal slot —
                // there is no request to trace.
                if let Some(api) = framing_error(&e) {
                    state.metrics.errors.inc(api.kind);
                    state.metrics.responses.inc(&api.status.to_string());
                    state.log_event(
                        "respond",
                        None,
                        vec![
                            ("status", u64_json(u64::from(api.status))),
                            ("error", Json::Str(api.kind.to_string())),
                        ],
                    );
                    let _ = write_response(&mut writer, api.status, &[], api.body().as_bytes());
                }
                return;
            }
        }
    }
}

/// Routes one request.
fn dispatch(state: &Arc<ServerState>, req: &Request, rt: &ReqTrace) -> Result<Reply, ApiError> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => Ok(Reply::ok(obj(vec![("ok", Json::Bool(true))]).render())),
        ("GET", "/stats") => Ok(Reply::ok(stats_body(state))),
        ("GET", "/metrics") => Ok(Reply::ok(metrics_body(state))),
        ("GET", "/trace") => Ok(Reply::ok(state.journal.index_json().render())),
        ("GET", p) if p.starts_with("/trace/") => {
            trace_body(state, &p["/trace/".len()..]).map(Reply::ok)
        }
        ("POST", "/shutdown") => Ok(Reply {
            status: 200,
            body: obj(vec![
                ("ok", Json::Bool(true)),
                ("stopping", Json::Bool(true)),
            ])
            .render(),
            shutdown: true,
        }),
        ("POST", "/verify") => verify(state, &req.body, rt).map(Reply::ok),
        (_, "/health" | "/stats" | "/metrics" | "/shutdown" | "/verify" | "/trace") => {
            Err(ApiError::new(
                405,
                "method-not-allowed",
                format!("{} not allowed on {}", req.method, req.path),
            ))
        }
        (_, p) if p.starts_with("/trace/") => Err(ApiError::new(
            405,
            "method-not-allowed",
            format!("{} not allowed on {}", req.method, req.path),
        )),
        (_, path) => Err(ApiError::new(
            404,
            "unknown-path",
            format!("no such path `{path}`"),
        )),
    }
}

/// The `GET /trace/<id>` body: one journaled request as Chrome
/// trace-event JSON.
fn trace_body(state: &Arc<ServerState>, id_hex: &str) -> Result<String, ApiError> {
    let id = u64::from_str_radix(id_hex, 16).map_err(|_| {
        ApiError::new(
            400,
            "bad-request",
            format!("`{id_hex}` is not a hex trace id"),
        )
    })?;
    match state.journal.get(id) {
        Some(rec) => Ok(chrome_trace_for(&rec)),
        None => Err(ApiError::new(
            404,
            "unknown-path",
            format!(
                "no trace `{id_hex}` in the journal (bounded ring of the last {})",
                state.journal.capacity()
            ),
        )),
    }
}

fn stats_body(state: &Arc<ServerState>) -> String {
    let store = |m: Option<StoreMetrics>| match m {
        None => Json::Null,
        Some(m) => obj(vec![
            ("disk_hits", u64_json(m.disk_hits)),
            ("disk_misses", u64_json(m.disk_misses)),
            ("evictions", u64_json(m.evictions)),
            ("write_errors", u64_json(m.write_errors)),
        ]),
    };
    let tstats = state.tcache.stats();
    obj(vec![
        ("requests", u64_json(state.metrics.requests.get())),
        ("errors", u64_json(state.metrics.errors.total())),
        ("workers", u64_json(state.pool.workers() as u64)),
        ("queued", u64_json(state.pool.queued() as u64)),
        ("in_flight", u64_json(state.pool.in_flight() as u64)),
        ("job_panics", u64_json(state.pool.panics() as u64)),
        (
            "trace_journal",
            obj(vec![
                ("entries", u64_json(state.journal.len() as u64)),
                ("capacity", u64_json(state.journal.capacity() as u64)),
                ("evicted", u64_json(state.journal.evicted())),
            ]),
        ),
        (
            "trace_cache",
            obj(vec![
                ("hits", u64_json(tstats.hits)),
                ("misses", u64_json(tstats.misses)),
                ("unique", u64_json(state.tcache.unique_traces() as u64)),
                ("store", store(state.tcache.store_metrics())),
            ]),
        ),
        (
            "query_cache",
            obj(vec![
                ("entries", u64_json(state.qcache.len() as u64)),
                ("store", store(state.qcache.store_metrics())),
            ]),
        ),
        (
            "solver",
            obj(vec![
                (
                    "blocks_parallel",
                    u64_json(state.metrics.blocks_parallel.get()),
                ),
                (
                    "proof_trimmed_clauses",
                    u64_json(state.metrics.proof_trimmed.get()),
                ),
                ("interned_terms", u64_json(islaris_smt::interner_stats().0)),
                ("intern_hits", u64_json(islaris_smt::interner_stats().1)),
            ]),
        ),
    ])
    .render()
}

/// Refreshes scrape-time gauges from the live state, then renders the
/// registry's text exposition.
fn metrics_body(state: &Arc<ServerState>) -> String {
    let m = &state.metrics;
    m.queue_depth.set(state.pool.queued() as u64);
    m.in_flight.set(state.pool.in_flight() as u64);
    m.workers.set(state.pool.workers() as u64);
    m.job_panics.set(state.pool.panics() as u64);
    m.journal_entries.set(state.journal.len() as u64);
    m.journal_evicted.set(state.journal.evicted());
    let tstats = state.tcache.stats();
    m.tcache_hits.set(tstats.hits);
    m.tcache_misses.set(tstats.misses);
    m.tcache_unique.set(state.tcache.unique_traces() as u64);
    m.qcache_entries.set(state.qcache.len() as u64);
    let (interned, hits) = islaris_smt::interner_stats();
    m.interned_terms.set(interned);
    m.intern_hits.set(hits);
    for (name, sm) in [
        ("traces", state.tcache.store_metrics()),
        ("queries", state.qcache.store_metrics()),
    ] {
        let sm = sm.unwrap_or_default();
        m.store_disk_hits.set(name, sm.disk_hits);
        m.store_disk_misses.set(name, sm.disk_misses);
        m.store_evictions.set(name, sm.evictions);
        m.store_write_errors.set(name, sm.write_errors);
    }
    m.registry.render()
}

/// Parses and schedules one `/verify` job; blocks until its slot fills.
/// Only validated jobs reach the pool — and only pool jobs allocate a
/// trace-journal slot.
fn verify(state: &Arc<ServerState>, body: &[u8], rt: &ReqTrace) -> Result<String, ApiError> {
    let t_parse = Instant::now();
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::new(400, "invalid-json", "body is not UTF-8"))?;
    let j = parse_json(text)
        .map_err(|(off, msg)| ApiError::new(400, "invalid-json", format!("byte {off}: {msg}")))?;
    let job = parse_job(&j)?;
    rt.recorder
        .record_between("parse", "serve", t_parse, Instant::now());
    let deadline_ms = match j.get("deadline_ms") {
        None => state.default_deadline_ms,
        Some(v) => v.as_u64().ok_or_else(|| {
            ApiError::new(
                400,
                "bad-request",
                "deadline_ms must be a non-negative integer",
            )
        })?,
    };
    let has_deadline = j.get("deadline_ms").is_some() || state.default_deadline_ms > 0;
    let deadline = has_deadline.then(|| Instant::now() + Duration::from_millis(deadline_ms));

    let label = job.label();
    let slot: JobSlot<Result<String, ApiError>> = JobSlot::new();
    let job_slot = slot.clone();
    let job_state = Arc::clone(state);
    let recorder = Arc::clone(&rt.recorder);
    let (id, seq) = (rt.id, rt.seq);
    let job_label = label.clone();
    let enqueued_at = Instant::now();
    let submitted =
        state
            .pool
            .try_submit_traced(deadline, Some(Arc::clone(&rt.recorder)), move |expired| {
                job_state.metrics.stages.inc("dequeue");
                let queue_wait = elapsed_ns(enqueued_at);
                job_state.metrics.queue_wait_ns.observe(queue_wait);
                job_state.log_event(
                    "dequeue",
                    Some((id, seq)),
                    vec![
                        ("expired", Json::Bool(expired)),
                        ("queue_wait_wall_ns", u64_json(queue_wait)),
                    ],
                );
                let result = if expired {
                    Err(deadline_exceeded())
                } else {
                    job_state.metrics.stages.inc("execute");
                    let t_exec = Instant::now();
                    let r = catch_unwind(AssertUnwindSafe(|| run_job(&job_state, &job, deadline)))
                        .unwrap_or_else(|_| {
                            Err(ApiError::new(
                                500,
                                "internal",
                                "job panicked; worker recovered",
                            ))
                        });
                    let exec_ns = elapsed_ns(t_exec);
                    job_state.metrics.exec_ns.observe(exec_ns);
                    match job.kind() {
                        "case" => job_state.metrics.exec_case_ns.observe(exec_ns),
                        "trace" => job_state.metrics.exec_trace_ns.observe(exec_ns),
                        _ => job_state.metrics.exec_check_ns.observe(exec_ns),
                    }
                    recorder.record_between("exec", "pool", t_exec, Instant::now());
                    job_state.log_event(
                        "execute",
                        Some((id, seq)),
                        vec![
                            ("ok", Json::Bool(r.is_ok())),
                            ("exec_wall_ns", u64_json(exec_ns)),
                        ],
                    );
                    r
                };
                // Journal before filling the slot so a reader woken by the
                // answer always finds the complete record.
                let (status, profile) = match &result {
                    Ok(out) => (200, out.profile.clone()),
                    Err(api) => (api.status, None),
                };
                job_state.journal.push(TraceRecord {
                    trace_id: id,
                    seq,
                    label: job_label,
                    status,
                    spans: recorder.spans(),
                    profile,
                });
                job_slot.fill(result.map(|out| out.body));
            });
    match submitted {
        Ok(()) => {
            state.metrics.stages.inc("enqueue");
            state.log_event(
                "enqueue",
                Some((rt.id, rt.seq)),
                vec![("label", Json::Str(label))],
            );
            slot.wait()
        }
        Err(SubmitError::Saturated) => Err(ApiError::new(
            503,
            "overloaded",
            "work queue saturated; retry later",
        )),
        Err(SubmitError::ShuttingDown) => {
            Err(ApiError::new(503, "overloaded", "server is shutting down"))
        }
    }
}

/// A fully validated verification job (validation happens on the
/// connection thread so typed errors never consume a pool slot).
enum Job {
    Case {
        slug: String,
    },
    Trace {
        arch: &'static Arch,
        opcode: u32,
    },
    Check {
        arch: &'static Arch,
        opcode: u32,
        spec: Sexp,
    },
}

impl Job {
    /// The request kind ("case" / "trace" / "check") — keys the per-kind
    /// execution histograms.
    fn kind(&self) -> &'static str {
        match self {
            Job::Case { .. } => "case",
            Job::Trace { .. } => "trace",
            Job::Check { .. } => "check",
        }
    }

    /// The journal / event-log label.
    fn label(&self) -> String {
        match self {
            Job::Case { slug } => format!("case:{slug}"),
            Job::Trace { arch, opcode } => format!("trace:{}:{opcode:#010x}", arch.name),
            Job::Check { arch, opcode, .. } => format!("check:{}:{opcode:#010x}", arch.name),
        }
    }
}

/// A finished job: the response body plus, for case jobs, the
/// deterministic per-stage profile attached to the trace journal.
struct JobOutput {
    body: String,
    profile: Option<Json>,
}

fn parse_arch(j: &Json) -> Result<&'static Arch, ApiError> {
    match j.get("arch").and_then(Json::as_str) {
        Some("arm") => Ok(&ARM),
        Some("riscv") => Ok(&RISCV),
        Some(other) => Err(ApiError::new(
            400,
            "bad-request",
            format!("unknown arch `{other}` (want `arm` or `riscv`)"),
        )),
        None => Err(ApiError::new(400, "bad-request", "missing `arch`")),
    }
}

fn parse_opcode(j: &Json) -> Result<u32, ApiError> {
    let Some(text) = j.get("opcode").and_then(Json::as_str) else {
        return Err(ApiError::new(400, "bad-request", "missing `opcode`"));
    };
    let digits = text.strip_prefix("0x").unwrap_or(text);
    if digits.len() != 8 {
        return Err(ApiError::new(
            400,
            "bad-opcode",
            format!("`{text}` is not 4 opcode bytes (want 8 hex digits)"),
        ));
    }
    u32::from_str_radix(digits, 16)
        .map_err(|_| ApiError::new(400, "bad-opcode", format!("`{text}` is not hexadecimal")))
}

fn parse_job(j: &Json) -> Result<Job, ApiError> {
    match j.get("kind").and_then(Json::as_str) {
        Some("case") => {
            let Some(slug) = j.get("slug").and_then(Json::as_str) else {
                return Err(ApiError::new(400, "bad-request", "missing `slug`"));
            };
            if find_case(slug).is_none() {
                let slugs: Vec<&str> = ALL_CASES.iter().map(|c| c.slug).collect();
                return Err(ApiError::new(
                    404,
                    "unknown-case",
                    format!("no case `{slug}`; known: {}", slugs.join(" ")),
                ));
            }
            Ok(Job::Case {
                slug: slug.to_string(),
            })
        }
        Some("trace") => Ok(Job::Trace {
            arch: parse_arch(j)?,
            opcode: parse_opcode(j)?,
        }),
        Some("check") => {
            let Some(spec_text) = j.get("spec").and_then(Json::as_str) else {
                return Err(ApiError::new(400, "bad-request", "missing `spec`"));
            };
            let spec = parse_sexp(spec_text).map_err(|e| {
                ApiError::new(400, "bad-request", format!("spec does not parse: {e}"))
            })?;
            Ok(Job::Check {
                arch: parse_arch(j)?,
                opcode: parse_opcode(j)?,
                spec,
            })
        }
        Some(other) => Err(ApiError::new(
            400,
            "bad-request",
            format!("unknown kind `{other}` (want case, trace, or check)"),
        )),
        None => Err(ApiError::new(400, "bad-request", "missing `kind`")),
    }
}

fn run_job(
    state: &ServerState,
    job: &Job,
    deadline: Option<Instant>,
) -> Result<JobOutput, ApiError> {
    match job {
        Job::Case { slug } => run_case_job(state, slug, deadline),
        Job::Trace { arch, opcode } => run_trace_job(state, arch, *opcode),
        Job::Check { arch, opcode, spec } => run_check_job(state, arch, *opcode, spec),
    }
}

/// Strips the two documented schedule-dependent profile rows (`cache`,
/// `q.cache`) so response bodies are byte-identical across cache states.
fn stripped_profile(profile_json: &str) -> Json {
    match parse_json(profile_json) {
        Ok(Json::Obj(fields)) => Json::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| k != "cache" && k != "q.cache")
                .collect(),
        ),
        _ => Json::Null,
    }
}

fn run_case_job(
    state: &ServerState,
    slug: &str,
    deadline: Option<Instant>,
) -> Result<JobOutput, ApiError> {
    let def = find_case(slug)
        .ok_or_else(|| ApiError::new(404, "unknown-case", format!("no case `{slug}`")))?;
    // Intra-case parallelism: one request fans its per-instruction
    // tracing, engine blocks, and certificate replays out over as many
    // scoped worker threads as the pool has resident workers. The scoped
    // threads are independent of the pool (re-submitting to the pool
    // from inside a pool job could deadlock a full queue); results merge
    // in block order so the response body is byte-identical to jobs = 1.
    let jobs = state.pool.workers();
    let ctx = CaseCtx::new(&state.tcache, jobs);
    let art = (def.build)(&ctx);
    let (outcome, report) =
        run_case_jobs(&art, Some(&state.qcache), jobs, deadline).map_err(|_| {
            ApiError::new(
                504,
                "deadline-exceeded",
                "deadline lapsed mid-case between block jobs",
            )
        })?;
    state
        .metrics
        .blocks_parallel
        .add(outcome.profile.engine.blocks_parallel);
    state.metrics.proof_trimmed.add(
        outcome.profile.isla_smt.trimmed
            + outcome.profile.engine_smt.trimmed
            + outcome.profile.cert.solver.trimmed,
    );
    let certs: Vec<Json> = report
        .blocks
        .iter()
        .map(|b| Json::Str(render_certificate(&b.cert)))
        .collect();
    let profile = stripped_profile(&outcome.profile.to_json(slug));
    let body = obj(vec![
        ("kind", Json::Str("case".into())),
        ("slug", Json::Str(slug.to_string())),
        ("verdict", Json::Str("proved".into())),
        ("row", Json::Str(outcome.stable_row())),
        ("certs", Json::Arr(certs)),
        ("profile", profile.clone()),
    ])
    .render();
    Ok(JobOutput {
        body,
        profile: Some(profile),
    })
}

fn lookup_trace(
    state: &ServerState,
    arch: &'static Arch,
    opcode: u32,
) -> Result<Arc<islaris_isla::CachedTrace>, ApiError> {
    let cfg = IslaConfig::new(*arch);
    state
        .tcache
        .lookup(&cfg, &Opcode::Concrete(opcode))
        .map(|(entry, _)| entry)
        .map_err(|e| {
            ApiError::new(
                400,
                "bad-opcode",
                format!("opcode {opcode:#010x} does not trace: {e}"),
            )
        })
}

fn run_trace_job(
    state: &ServerState,
    arch: &'static Arch,
    opcode: u32,
) -> Result<JobOutput, ApiError> {
    let entry = lookup_trace(state, arch, opcode)?;
    // Only the deterministic counters go in the body (no wall time).
    let s = &entry.stats;
    let body = obj(vec![
        ("kind", Json::Str("trace".into())),
        ("arch", Json::Str(arch.name.to_string())),
        ("opcode", Json::Str(format!("{opcode:#010x}"))),
        ("trace", Json::Str(print_trace(&entry.trace))),
        ("params", u64_json(entry.params.len() as u64)),
        (
            "stats",
            obj(vec![
                ("runs", u64_json(s.runs)),
                ("smt_queries", u64_json(s.smt_queries)),
                ("events", u64_json(s.events as u64)),
                ("branches_explored", u64_json(s.branches_explored)),
                ("branches_pruned", u64_json(s.branches_pruned)),
            ]),
        ),
    ])
    .render();
    Ok(JobOutput {
        body,
        profile: None,
    })
}

/// Resolves `(init R)` / `(final R)` atoms against one analyzed path.
fn resolve_spec(spec: &Sexp, events: &[Event], view: &PathView) -> Result<Sexp, ApiError> {
    let reg_expr = |which: &str, name: &str| -> Result<Expr, ApiError> {
        let init = view
            .reg_inits
            .iter()
            .find(|(r, _)| r.to_string() == name)
            .map(|(_, e)| e.clone());
        if which == "final" {
            for ev in events.iter().rev() {
                if let Event::WriteReg(r, v) = ev {
                    if r.to_string() == name {
                        return Ok(v.clone());
                    }
                }
            }
        }
        init.ok_or_else(|| {
            ApiError::new(
                400,
                "bad-request",
                format!("register `{name}` is not accessed on this path"),
            )
        })
    };
    match spec {
        Sexp::List(items) => {
            if let [Sexp::Atom(which), Sexp::Atom(name)] = items.as_slice() {
                if which == "init" || which == "final" {
                    return Ok(expr_to_sexp(&reg_expr(which, name)?));
                }
            }
            let resolved: Result<Vec<Sexp>, ApiError> = items
                .iter()
                .map(|s| resolve_spec(s, events, view))
                .collect();
            Ok(Sexp::List(resolved?))
        }
        Sexp::Atom(_) => Ok(spec.clone()),
    }
}

fn run_check_job(
    state: &ServerState,
    arch: &'static Arch,
    opcode: u32,
    spec: &Sexp,
) -> Result<JobOutput, ApiError> {
    let entry = lookup_trace(state, arch, opcode)?;
    let paths = enumerate_paths(&entry.trace);
    let cfg = SolverConfig::default();
    let mut m = SolverMetrics::default();
    let mut table = QueryTable::default();
    let mut cm = CacheMetrics::default();
    let mut failed = Vec::new();
    for (i, events) in paths.iter().enumerate() {
        let view = analyze_path(events, &entry.params);
        let goal_sexp = resolve_spec(spec, events, &view)?;
        let goal = sexp_to_expr(&goal_sexp).map_err(|e| {
            ApiError::new(
                400,
                "bad-request",
                format!("resolved spec is not a valid expression: {e}"),
            )
        })?;
        let sorts = |v: Var| -> Option<Sort> { view.sorts.get(&v).copied() };
        let (proved, _) = state.qcache.entails_logged(
            &view.constraints,
            &goal,
            &sorts,
            &cfg,
            &mut m,
            &mut table,
            &mut cm,
        );
        if !proved {
            failed.push(u64_json(i as u64));
        }
    }
    let verdict = if failed.is_empty() {
        "proved"
    } else {
        "refuted"
    };
    let body = obj(vec![
        ("kind", Json::Str("check".into())),
        ("arch", Json::Str(arch.name.to_string())),
        ("opcode", Json::Str(format!("{opcode:#010x}"))),
        ("verdict", Json::Str(verdict.into())),
        ("paths", u64_json(paths.len() as u64)),
        ("failed", Json::Arr(failed)),
    ])
    .render();
    Ok(JobOutput {
        body,
        profile: None,
    })
}
