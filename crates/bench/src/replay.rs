//! Deterministic load-replay bench for the `--serve` daemon.
//!
//! `fig12 --replay REQS.json --addr HOST:PORT [--clients N]` fires a
//! recorded request list at a running server and reports
//!
//! * a **stable report** — per-request status codes and FNV-1a body
//!   digests, in request order — which is byte-identical across client
//!   counts and cache states (that is the determinism contract the
//!   server keeps, and the test suite asserts), and
//! * **latency telemetry** — throughput plus min/median/p90/max/MAD in
//!   `islaris-bench/v1` style (informational: wall-clock is the one
//!   thing that may vary run to run).
//!
//! Requests are partitioned deterministically: client `c` of `N` sends
//! exactly the requests whose index `i` satisfies `i % N == c`, in
//! index order, on one keep-alive connection. Reordering across clients
//! cannot leak into the report because results are keyed by index.
//!
//! `fig12 --gen-requests PATH [--count N]` writes a mixed request file
//! (`islaris-replay/v1`) cycling case / trace / check / error-path jobs
//! over the bundled Fig. 12 corpus — the input for the ci.sh smoke and
//! the committed bench baselines.

use std::collections::BTreeMap;
use std::io::{self, BufReader};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use islaris_cases::ALL_CASES;
use islaris_obs::fnv1a;
use islaris_obs::http::{read_response, write_request};
use islaris_obs::json::{obj, parse_json, Json};
use islaris_obs::metrics::{
    family_deltas, histogram_delta, parse_exposition, quantile_from_counts, sample_delta,
};
use islaris_obs::store::u64_json;

use crate::summarize;

/// Schema tag of a request file.
pub const REPLAY_SCHEMA: &str = "islaris-replay/v1";

/// One recorded request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayReq {
    /// Request method (`GET` / `POST`).
    pub method: String,
    /// Request path (`/verify`, `/stats`, …).
    pub path: String,
    /// Request body (empty for `GET`).
    pub body: String,
}

/// One replayed result, keyed by request index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayResult {
    /// Index into the request list.
    pub index: usize,
    /// HTTP status code.
    pub status: u16,
    /// FNV-1a digest of the response body.
    pub digest: u64,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Wall-clock latency in nanoseconds (telemetry only).
    pub wall_ns: u64,
    /// Response headers as received (telemetry only — the server's
    /// `X-Islaris-Wall-Ns` lives here; excluded from the stable report
    /// and the body dump, which must stay byte-comparable across runs).
    pub headers: Vec<(String, String)>,
}

/// The full outcome of one replay run.
pub struct ReplayOutcome {
    /// Results in request order (every index present exactly once).
    pub results: Vec<ReplayResult>,
    /// Total wall-clock of the run in nanoseconds.
    pub wall_ns: u64,
    /// Clients used.
    pub clients: usize,
}

/// Parses an `islaris-replay/v1` file.
///
/// # Errors
///
/// Describes the first schema violation.
pub fn parse_requests(text: &str) -> Result<Vec<ReplayReq>, String> {
    let j = parse_json(text).map_err(|(off, msg)| format!("byte {off}: {msg}"))?;
    if j.get("schema").and_then(Json::as_str) != Some(REPLAY_SCHEMA) {
        return Err(format!("not an `{REPLAY_SCHEMA}` file"));
    }
    let Some(reqs) = j.get("requests").and_then(Json::as_array) else {
        return Err("missing `requests` array".to_string());
    };
    let mut out = Vec::with_capacity(reqs.len());
    for (i, r) in reqs.iter().enumerate() {
        let field = |k: &str| -> Result<String, String> {
            r.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("request {i}: missing `{k}`"))
        };
        out.push(ReplayReq {
            method: field("method")?,
            path: field("path")?,
            body: r
                .get("body")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
        });
    }
    Ok(out)
}

/// Renders a request list as an `islaris-replay/v1` file.
#[must_use]
pub fn render_requests(reqs: &[ReplayReq]) -> String {
    let rows: Vec<Json> = reqs
        .iter()
        .map(|r| {
            obj(vec![
                ("method", Json::Str(r.method.clone())),
                ("path", Json::Str(r.path.clone())),
                ("body", Json::Str(r.body.clone())),
            ])
        })
        .collect();
    obj(vec![
        ("schema", Json::Str(REPLAY_SCHEMA.to_string())),
        ("requests", Json::Arr(rows)),
    ])
    .render()
}

/// A deterministic mixed request list over the bundled corpus: every
/// Fig. 12 case, trace and check jobs on known-good opcodes, health and
/// stats probes, and a sprinkling of typed-error probes (the error paths
/// must be deterministic too). `count` requests, cycling.
#[must_use]
pub fn gen_requests(count: usize) -> Vec<ReplayReq> {
    let post = |body: String| ReplayReq {
        method: "POST".to_string(),
        path: "/verify".to_string(),
        body,
    };
    let get = |path: &str| ReplayReq {
        method: "GET".to_string(),
        path: path.to_string(),
        body: String::new(),
    };
    let mut menu: Vec<ReplayReq> = Vec::new();
    for c in ALL_CASES {
        menu.push(post(format!(
            "{{\"kind\":\"case\",\"slug\":\"{}\"}}",
            c.slug
        )));
    }
    // `add sp, sp, #0x10` (arm) and `addi a0, a0, 1` (riscv): cheap,
    // always-traceable single instructions.
    menu.push(post(
        "{\"kind\":\"trace\",\"arch\":\"arm\",\"opcode\":\"0x910043ff\"}".to_string(),
    ));
    menu.push(post(
        "{\"kind\":\"trace\",\"arch\":\"riscv\",\"opcode\":\"0x00150513\"}".to_string(),
    ));
    menu.push(post(
        "{\"kind\":\"check\",\"arch\":\"riscv\",\"opcode\":\"0x00150513\",\
         \"spec\":\"(= (final x10) (bvadd (init x10) #x0000000000000001))\"}"
            .to_string(),
    ));
    menu.push(get("/health"));
    // Error paths: each exercises one typed error deterministically.
    menu.push(post(
        "{\"kind\":\"case\",\"slug\":\"no-such-case\"}".to_string(),
    ));
    menu.push(post("{not json".to_string()));
    menu.push(post(
        "{\"kind\":\"trace\",\"arch\":\"arm\",\"opcode\":\"0xzz\"}".to_string(),
    ));
    (0..count).map(|i| menu[i % menu.len()].clone()).collect()
}

/// Replays `reqs` against `addr` with `clients` concurrent connections.
///
/// # Errors
///
/// Connection failures or mid-stream transport errors (a typed error
/// *response* is a result, not an error).
pub fn replay(addr: &str, reqs: &[ReplayReq], clients: usize) -> io::Result<ReplayOutcome> {
    let clients = clients.max(1);
    let reqs: Arc<[ReplayReq]> = reqs.to_vec().into();
    let t0 = Instant::now();
    let mut handles = Vec::with_capacity(clients);
    for c in 0..clients {
        let reqs = Arc::clone(&reqs);
        let addr = addr.to_string();
        handles.push(std::thread::spawn(move || {
            client_loop(&addr, &reqs, c, clients)
        }));
    }
    let mut results: Vec<ReplayResult> = Vec::with_capacity(reqs.len());
    for h in handles {
        results.extend(
            h.join()
                .map_err(|_| io::Error::new(io::ErrorKind::Other, "replay client panicked"))??,
        );
    }
    let wall_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    results.sort_by_key(|r| r.index);
    Ok(ReplayOutcome {
        results,
        wall_ns,
        clients,
    })
}

fn client_loop(
    addr: &str,
    reqs: &[ReplayReq],
    client: usize,
    clients: usize,
) -> io::Result<Vec<ReplayResult>> {
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut out = Vec::new();
    for (i, req) in reqs
        .iter()
        .enumerate()
        .filter(|(i, _)| i % clients == client)
    {
        let t0 = Instant::now();
        write_request(
            &mut writer,
            &req.method,
            &req.path,
            &[],
            req.body.as_bytes(),
        )?;
        let resp = read_response(&mut reader)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        out.push(ReplayResult {
            index: i,
            status: resp.status,
            digest: fnv1a(&resp.body),
            wall_ns: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            body: resp.body,
            headers: resp.headers,
        });
    }
    Ok(out)
}

impl ReplayOutcome {
    /// The deterministic report: per-request `index status digest`
    /// lines, byte-identical across client counts and cache states.
    #[must_use]
    pub fn stable_report(&self) -> String {
        let mut s = String::new();
        for r in &self.results {
            s.push_str(&format!("{:>5} {} {:016x}\n", r.index, r.status, r.digest));
        }
        s
    }

    /// Latency telemetry in `islaris-bench/v1` spirit: throughput plus
    /// min/median/p90/max/MAD over per-request wall-clock. Informational.
    #[must_use]
    pub fn telemetry(&self) -> Json {
        let times: Vec<u64> = self.results.iter().map(|r| r.wall_ns).collect();
        let (min, median, p90, max, mad) = summarize(&times);
        let secs = self.wall_ns as f64 / 1e9;
        let rps = if secs > 0.0 {
            self.results.len() as f64 / secs
        } else {
            0.0
        };
        obj(vec![
            ("requests", u64_json(self.results.len() as u64)),
            ("clients", u64_json(self.clients as u64)),
            ("wall_ns", u64_json(self.wall_ns)),
            ("throughput_rps", Json::Num((rps * 100.0).round() / 100.0)),
            (
                "latency_ns",
                obj(vec![
                    ("min", u64_json(min)),
                    ("median", u64_json(median)),
                    ("p90", u64_json(p90)),
                    ("max", u64_json(max)),
                    ("mad", u64_json(mad)),
                ]),
            ),
        ])
    }
}

/// Scrapes `GET /metrics` from a running server and parses the text
/// exposition into `sample-name -> value`.
///
/// # Errors
///
/// Connection or framing failures, a non-200 answer, or an exposition
/// the parser rejects.
pub fn scrape_metrics(addr: &str) -> io::Result<BTreeMap<String, u64>> {
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    write_request(&mut writer, "GET", "/metrics", &[], b"")?;
    let resp = read_response(&mut reader)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
    if resp.status != 200 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("GET /metrics answered {}", resp.status),
        ));
    }
    let text = String::from_utf8(resp.body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "exposition is not UTF-8"))?;
    parse_exposition(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// The server-side delta between two `/metrics` scrapes bracketing a
/// replay: requests and responses-by-status, error kinds that fired,
/// and the request-latency histogram's quantiles over exactly the
/// bracketed interval. The p50/p90 here use the same nearest-rank rule
/// as [`summarize`], so they agree with the client-side telemetry up to
/// bucket resolution (`max` is the delta's `+Inf`-aware upper bound).
#[must_use]
pub fn metrics_delta_report(before: &BTreeMap<String, u64>, after: &BTreeMap<String, u64>) -> Json {
    let fam = |name: &str| -> Json {
        Json::Obj(
            family_deltas(before, after, name)
                .into_iter()
                .map(|(k, v)| (k, u64_json(v)))
                .collect(),
        )
    };
    let hist = histogram_delta(before, after, "islaris_request_wall_ns");
    let q = |num, den| match quantile_from_counts(&hist, num, den) {
        Some(v) => u64_json(v),
        None => Json::Null,
    };
    obj(vec![
        (
            "requests",
            u64_json(sample_delta(before, after, "islaris_requests_total")),
        ),
        ("responses", fam("islaris_responses_total")),
        ("errors", fam("islaris_errors_total")),
        (
            "request_wall_ns",
            obj(vec![
                ("count", u64_json(hist.iter().sum())),
                ("p50_le", q(1, 2)),
                ("p90_le", q(9, 10)),
                ("max_le", q(1, 1)),
            ]),
        ),
        // Per-request-kind execution medians (pool execute stage only,
        // queue wait excluded) from the per-kind histograms the daemon
        // keeps alongside the aggregate. A kind that did not run in the
        // bracketed interval reports null rather than 0 so "no traffic"
        // and "instant" stay distinguishable.
        (
            "p50_exec_ns",
            Json::Obj(
                [("case", "case"), ("trace", "trace"), ("check", "check")]
                    .into_iter()
                    .map(|(key, kind)| {
                        let h =
                            histogram_delta(before, after, &format!("islaris_exec_{kind}_wall_ns"));
                        let p50 = match quantile_from_counts(&h, 1, 2) {
                            Some(v) => u64_json(v),
                            None => Json::Null,
                        };
                        (key.to_string(), p50)
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_files_round_trip() {
        let reqs = gen_requests(17);
        let parsed = parse_requests(&render_requests(&reqs)).unwrap();
        assert_eq!(parsed, reqs);
    }

    #[test]
    fn gen_requests_cycles_the_menu() {
        let reqs = gen_requests(40);
        assert_eq!(reqs.len(), 40);
        // The menu is longer than ALL_CASES alone; the first request is
        // the first registry case.
        assert!(reqs[0].body.contains(ALL_CASES[0].slug));
        // Error probes are present in a 40-request mix.
        assert!(reqs.iter().any(|r| r.body.contains("no-such-case")));
        assert!(reqs.iter().any(|r| r.body == "{not json"));
    }

    #[test]
    fn metrics_delta_report_subtracts_scrapes() {
        let before = parse_exposition(
            "islaris_requests_total 10\n\
             islaris_responses_total{status=\"200\"} 8\n\
             islaris_errors_total{kind=\"invalid-json\"} 2\n\
             islaris_request_wall_ns_bucket{le=\"100\"} 10\n\
             islaris_request_wall_ns_bucket{le=\"+Inf\"} 10\n",
        )
        .unwrap();
        let after = parse_exposition(
            "islaris_requests_total 14\n\
             islaris_responses_total{status=\"200\"} 11\n\
             islaris_responses_total{status=\"404\"} 1\n\
             islaris_errors_total{kind=\"invalid-json\"} 2\n\
             islaris_errors_total{kind=\"unknown-case\"} 1\n\
             islaris_request_wall_ns_bucket{le=\"100\"} 13\n\
             islaris_request_wall_ns_bucket{le=\"500\"} 14\n\
             islaris_request_wall_ns_bucket{le=\"+Inf\"} 14\n\
             islaris_exec_case_wall_ns_bucket{le=\"1000\"} 2\n\
             islaris_exec_case_wall_ns_bucket{le=\"+Inf\"} 3\n\
             islaris_exec_trace_wall_ns_bucket{le=\"200\"} 1\n\
             islaris_exec_trace_wall_ns_bucket{le=\"+Inf\"} 1\n",
        )
        .unwrap();
        let d = metrics_delta_report(&before, &after);
        assert_eq!(d.get("requests").and_then(Json::as_u64), Some(4));
        let resp = d.get("responses").unwrap();
        assert_eq!(resp.get("200").and_then(Json::as_u64), Some(3));
        assert_eq!(resp.get("404").and_then(Json::as_u64), Some(1));
        let errs = d.get("errors").unwrap();
        assert_eq!(errs.get("invalid-json"), None, "zero delta skipped");
        assert_eq!(errs.get("unknown-case").and_then(Json::as_u64), Some(1));
        let h = d.get("request_wall_ns").unwrap();
        assert_eq!(h.get("count").and_then(Json::as_u64), Some(4));
        // 4 samples: ranks 2/4/4 -> buckets 100/500/500.
        assert_eq!(h.get("p50_le").and_then(Json::as_u64), Some(100));
        assert_eq!(h.get("p90_le").and_then(Json::as_u64), Some(500));
        assert_eq!(h.get("max_le").and_then(Json::as_u64), Some(500));
        // Per-kind exec medians: case has 3 samples (rank 2 -> le=1000),
        // trace has 1 (its only bucket), check saw no traffic -> null.
        let p50 = d.get("p50_exec_ns").unwrap();
        assert_eq!(p50.get("case").and_then(Json::as_u64), Some(1000));
        assert_eq!(p50.get("trace").and_then(Json::as_u64), Some(200));
        assert_eq!(p50.get("check"), Some(&Json::Null));
    }

    #[test]
    fn parse_requests_rejects_other_schemas() {
        assert!(parse_requests("{\"schema\":\"islaris-bench/v1\"}").is_err());
        assert!(parse_requests("{\"requests\":[]}").is_err());
        let min = "{\"schema\":\"islaris-replay/v1\",\"requests\":[]}";
        assert_eq!(parse_requests(min).unwrap(), Vec::new());
    }

    #[test]
    fn stable_report_is_sorted_by_index() {
        let outcome = ReplayOutcome {
            results: vec![
                ReplayResult {
                    index: 0,
                    status: 200,
                    digest: 7,
                    body: Vec::new(),
                    wall_ns: 10,
                    headers: Vec::new(),
                },
                ReplayResult {
                    index: 1,
                    status: 404,
                    digest: 9,
                    body: Vec::new(),
                    wall_ns: 20,
                    headers: Vec::new(),
                },
            ],
            wall_ns: 30,
            clients: 2,
        };
        let report = outcome.stable_report();
        assert_eq!(
            report,
            "    0 200 0000000000000007\n    1 404 0000000000000009\n"
        );
        let t = outcome.telemetry();
        assert_eq!(t.get("requests").and_then(Json::as_u64), Some(2));
        assert_eq!(
            t.get("latency_ns")
                .and_then(|l| l.get("min"))
                .and_then(Json::as_u64),
            Some(10)
        );
    }
}
