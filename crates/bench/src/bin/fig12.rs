//! Regenerates the paper's Figure 12 ("Example sizes and times").
//!
//! Modes:
//!
//! * no flags — the classic sequential table. Columns: asm =
//!   instructions; ITL = trace events; Spec = spec atoms; Proof =
//!   annotations + pure hints; Isla(s) = trace generation; Auto(s) =
//!   proof automation; Qed(s) = certificate re-check; SMT = solver
//!   queries during verification; Oblig = logged obligations.
//! * `--jobs N` — the parallel pipeline measurement: a sequential
//!   uncached baseline, then a cold and a warm parallel run over one
//!   shared trace cache, reporting per-case wall times, cache hit rates,
//!   and speedups. The stable (non-timing) columns are asserted
//!   byte-identical across all three runs.
//! * `--bench [ITERS]` — the pipeline-stage micro-benchmarks
//!   (plain-`Instant` replacement for the removed Criterion benches).

use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: fig12 [--jobs N] [--bench [ITERS]]");
    exit(2);
}

fn parallel(jobs: usize) {
    let run = islaris_cases::run_all_parallel(jobs);

    // Determinism check: the size/effort columns must not depend on the
    // worker count or the cache state.
    let baseline = run.sequential.stable_rows();
    for (label, report) in [("cold", &run.cold), ("warm", &run.warm)] {
        assert_eq!(
            baseline,
            report.stable_rows(),
            "{label} parallel table differs from the sequential baseline"
        );
    }

    println!("sequential baseline (uncached, 1 worker):");
    print!("{}", run.sequential.render());
    println!("\ncold parallel run ({jobs} workers, shared cache starts empty):");
    print!("{}", run.cold.render());
    println!("\nwarm parallel run ({jobs} workers, cache primed):");
    print!("{}", run.warm.render());

    let (cold_cache, warm_cache) = (run.cold.cache_totals(), run.warm.cache_totals());
    println!("\nstable rows: identical across all three runs");
    println!(
        "cache: {} unique traces; cold {}/{} hits ({:.0}%), warm {}/{} hits ({:.0}%)",
        run.unique_traces,
        cold_cache.hits,
        cold_cache.lookups(),
        100.0 * cold_cache.hit_rate(),
        warm_cache.hits,
        warm_cache.lookups(),
        100.0 * warm_cache.hit_rate(),
    );
    println!(
        "wall: sequential {:.3}s, cold {:.3}s ({:.2}x), warm {:.3}s ({:.2}x)",
        run.sequential.wall.as_secs_f64(),
        run.cold.wall.as_secs_f64(),
        run.speedup_cold(),
        run.warm.wall.as_secs_f64(),
        run.speedup_warm(),
    );
    println!(
        "trace stage: sequential {:.4}s, warm {:.4}s ({:.1}x with cache)",
        run.sequential.isla_total().as_secs_f64(),
        run.warm.isla_total().as_secs_f64(),
        run.trace_stage_speedup(),
    );
    if !(run.sequential.all_ok() && run.cold.all_ok() && run.warm.all_ok()) {
        eprintln!("some cases FAILED");
        exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => {
            let outcomes = islaris_bench::all_cases();
            println!("{}", islaris_bench::fig12_table(&outcomes));
        }
        Some("--jobs") => {
            let jobs = args
                .get(1)
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or_else(|| usage());
            parallel(jobs);
        }
        Some("--bench") => {
            let iters = args.get(1).map_or(Some(5), |s| s.parse::<usize>().ok());
            let Some(iters) = iters else { usage() };
            for sample in islaris_bench::stage_benches(iters) {
                println!("{}", sample.row());
            }
        }
        Some(_) => usage(),
    }
}
