//! Regenerates the paper's Figure 12 ("Example sizes and times").
//!
//! Modes:
//!
//! * no flags — the classic sequential table. Columns: asm =
//!   instructions; ITL = trace events; Spec = spec atoms; Proof =
//!   annotations + pure hints; Isla(s) = trace generation; Auto(s) =
//!   proof automation; Qed(s) = certificate re-check; SMT = solver
//!   queries during verification; Oblig = logged obligations.
//! * `--jobs N` — the parallel pipeline measurement: a sequential
//!   uncached baseline, then a cold and a warm parallel run over one
//!   shared trace cache, reporting per-case wall times, cache hit rates,
//!   and speedups. The stable (non-timing) columns are asserted
//!   byte-identical across all three runs.
//! * `--bench [ITERS]` — the pipeline-stage micro-benchmarks
//!   (plain-`Instant` replacement for the removed Criterion benches).
//! * `--profile [--jobs N] [--profile-out PATH]` — the observability
//!   export: runs all nine cases through a fresh shared cache with span
//!   recording on, prints the stable table plus the per-case per-stage
//!   *counter* profile (deterministic: byte-identical across worker
//!   counts and cache states), and emits the wall-clock spans as Chrome
//!   trace-event JSON (self-validated; written to PATH when given).
//! * `--difftest [--seed S] [--budget N] [--jobs N]` — the differential
//!   fuzzer: generates N opcodes from the decoder grammar (plus
//!   mutations of known-good encodings), checks every symbolic trace
//!   path against a concrete replay, and prints the deterministic
//!   coverage/metrics table. Exits nonzero on any divergence, printing
//!   each counterexample report. Output is byte-identical for a given
//!   (seed, budget) across reruns and `--jobs` values.

use std::process::exit;

use islaris_cases::{run_cases_with, CaseOutcome, ALL_CASES};
use islaris_isla::TraceCache;
use islaris_obs::{render_profiles, validate_json, Recorder};

fn usage() -> ! {
    eprintln!(
        "usage: fig12 [--jobs N] [--bench [ITERS]] [--profile [--jobs N] [--profile-out PATH]] \
         [--difftest [--seed S] [--budget N] [--jobs N]]"
    );
    exit(2);
}

fn parallel(jobs: usize) {
    let run = islaris_cases::run_all_parallel(jobs);

    // Determinism check: the size/effort columns must not depend on the
    // worker count or the cache state.
    let baseline = run.sequential.stable_rows();
    for (label, report) in [("cold", &run.cold), ("warm", &run.warm)] {
        assert_eq!(
            baseline,
            report.stable_rows(),
            "{label} parallel table differs from the sequential baseline"
        );
    }

    println!("sequential baseline (uncached, 1 worker):");
    print!("{}", run.sequential.render());
    println!("\ncold parallel run ({jobs} workers, shared cache starts empty):");
    print!("{}", run.cold.render());
    println!("\nwarm parallel run ({jobs} workers, cache primed):");
    print!("{}", run.warm.render());

    let (cold_cache, warm_cache) = (run.cold.cache_totals(), run.warm.cache_totals());
    println!("\nstable rows: identical across all three runs");
    println!(
        "cache: {} unique traces; cold {}/{} hits ({:.0}%), warm {}/{} hits ({:.0}%)",
        run.unique_traces,
        cold_cache.hits,
        cold_cache.lookups(),
        100.0 * cold_cache.hit_rate(),
        warm_cache.hits,
        warm_cache.lookups(),
        100.0 * warm_cache.hit_rate(),
    );
    println!(
        "wall: sequential {:.3}s, cold {:.3}s ({:.2}x), warm {:.3}s ({:.2}x)",
        run.sequential.wall.as_secs_f64(),
        run.cold.wall.as_secs_f64(),
        run.speedup_cold(),
        run.warm.wall.as_secs_f64(),
        run.speedup_warm(),
    );
    println!(
        "trace stage: sequential {:.4}s, warm {:.4}s ({:.1}x with cache)",
        run.sequential.isla_total().as_secs_f64(),
        run.warm.isla_total().as_secs_f64(),
        run.trace_stage_speedup(),
    );
    if !(run.sequential.all_ok() && run.cold.all_ok() && run.warm.all_ok()) {
        eprintln!("some cases FAILED");
        exit(1);
    }
}

fn profile(jobs: usize, out_path: Option<&str>) {
    let recorder = Recorder::new();
    let cache = TraceCache::new();
    let report = run_cases_with(ALL_CASES, jobs, Some(&cache), Some(&recorder));

    println!("{}", CaseOutcome::stable_header());
    for row in report.stable_rows() {
        println!("{row}");
    }
    println!("\nper-stage counters ({} workers; deterministic):", jobs);
    print!("{}", render_profiles(&report.profiles()));

    let trace = recorder.chrome_trace();
    if let Err((off, msg)) = validate_json(&trace) {
        eprintln!("emitted chrome trace is not valid JSON at byte {off}: {msg}");
        exit(1);
    }
    let spans = recorder.spans().len();
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &trace) {
                eprintln!("writing {path}: {e}");
                exit(1);
            }
            println!("\nchrome trace: {spans} spans, valid JSON, written to {path}");
        }
        None => {
            println!("\nchrome trace: {spans} spans, valid JSON (pass --profile-out PATH to write)")
        }
    }
    if !report.all_ok() {
        eprintln!("some cases FAILED");
        exit(1);
    }
}

fn difftest(cfg: &islaris_difftest::FuzzConfig) {
    let report = islaris_difftest::run_fuzz(cfg);
    print!("{}", report.render());
    if !report.divergences.is_empty() {
        for d in &report.divergences {
            eprint!("{}", d.render());
        }
        eprintln!("{} divergence(s) found", report.divergences.len());
        exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => {
            let outcomes = islaris_bench::all_cases();
            println!("{}", islaris_bench::fig12_table(&outcomes));
        }
        Some("--jobs") => {
            let jobs = args
                .get(1)
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or_else(|| usage());
            parallel(jobs);
        }
        Some("--bench") => {
            let iters = args.get(1).map_or(Some(5), |s| s.parse::<usize>().ok());
            let Some(iters) = iters else { usage() };
            for sample in islaris_bench::stage_benches(iters) {
                println!("{}", sample.row());
            }
        }
        Some("--profile") => {
            let mut jobs = 1;
            let mut out_path: Option<String> = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--jobs" => {
                        jobs = args
                            .get(i + 1)
                            .and_then(|s| s.parse::<usize>().ok())
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    "--profile-out" => {
                        out_path = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                        i += 2;
                    }
                    _ => usage(),
                }
            }
            profile(jobs, out_path.as_deref());
        }
        Some("--difftest") => {
            let mut cfg = islaris_difftest::FuzzConfig::default();
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--seed" => {
                        cfg.seed = args
                            .get(i + 1)
                            .and_then(|s| s.parse::<u64>().ok())
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    "--budget" => {
                        cfg.budget = args
                            .get(i + 1)
                            .and_then(|s| s.parse::<u64>().ok())
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    "--jobs" => {
                        cfg.jobs = args
                            .get(i + 1)
                            .and_then(|s| s.parse::<usize>().ok())
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    _ => usage(),
                }
            }
            difftest(&cfg);
        }
        Some(_) => usage(),
    }
}
