//! Regenerates the paper's Figure 12 ("Example sizes and times").
//!
//! Columns: asm = instructions; ITL = trace events; Spec = spec atoms;
//! Proof = annotations + pure hints; Isla(s) = trace generation;
//! Auto(s) = proof automation; Qed(s) = certificate re-check;
//! SMT = solver queries during verification; Oblig = logged obligations.

fn main() {
    let outcomes = islaris_bench::all_cases();
    println!("{}", islaris_bench::fig12_table(&outcomes));
}
