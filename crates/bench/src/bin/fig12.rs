//! Regenerates the paper's Figure 12 ("Example sizes and times").
//!
//! Modes:
//!
//! * no flags — the classic sequential table. Columns: asm =
//!   instructions; ITL = trace events; Spec = spec atoms; Proof =
//!   annotations + pure hints; Isla(s) = trace generation; Auto(s) =
//!   proof automation; Qed(s) = certificate re-check; SMT = solver
//!   queries during verification; Oblig = logged obligations.
//! * `--jobs N` — the parallel pipeline measurement: a sequential
//!   uncached baseline, then a cold and a warm parallel run over one
//!   shared trace cache, reporting per-case wall times, cache hit rates,
//!   and speedups. The stable (non-timing) columns are asserted
//!   byte-identical across all three runs.
//! * `--bench [ITERS] [--warmup W] [--json PATH] [--sat-off FEATURE]
//!   [--jobs N]` — the statistical benchmarks: every case's two pipeline
//!   halves (`trace/<slug>`, `verify/<slug>`) plus the stage
//!   micro-benchmarks, measured over W warm-up + ITERS iterations with
//!   min/median/p90/max/MAD, optionally exported as versioned
//!   `islaris-bench/v1` JSON. `--sat-off FEATURE` runs the whole suite
//!   with one solver feature disabled (the per-feature A/B arm);
//!   `--jobs N` verifies each case's blocks over N intra-case workers
//!   (verdicts unchanged, wall-clock only).
//! * `--sat-off FEATURE [--jobs N]` — the solver-feature ablation table:
//!   runs the registry with all features on and with FEATURE off,
//!   asserts the verdict rows byte-identical (heuristics may only change
//!   effort, never verdicts), and prints both wall times and per-stage
//!   counter profiles. Features: vsids, phase, restarts, reduce,
//!   minimize, fold.
//! * `--bench-compare OLD.json NEW.json [--threshold PCT]` — the
//!   perf-regression gate: diffs two `--json` exports by median and exits
//!   nonzero if any benchmark's median grew more than PCT percent
//!   (default 25).
//! * `--trace-proof SLUG` — builds one case with proof-search tracing on
//!   and prints the structured automation trace: one line per proof rule
//!   fired, obligation opened/discharged, and backtrack, tagged with the
//!   solver-query digest it triggered. Deterministic: byte-identical
//!   across reruns, worker counts, and cache states.
//! * `--profile [--jobs N] [--profile-out PATH] [--profile-json PATH]
//!   [--hot-queries K]` — the observability export: runs all nine cases
//!   through a fresh shared cache with span recording on, prints the
//!   stable table plus the per-case per-stage *counter* profile
//!   (deterministic: byte-identical across worker counts and cache
//!   states) and, with `--hot-queries K`, the top-K hottest solver
//!   queries per case and pipeline-wide; emits the wall-clock spans as
//!   Chrome trace-event JSON and the counter profiles as JSON (both
//!   self-validated; written when the PATHs are given).
//! * `--difftest [--seed S] [--budget N] [--jobs N]` — the differential
//!   fuzzer: generates N opcodes from the decoder grammar (plus
//!   mutations of known-good encodings), checks every symbolic trace
//!   path against a concrete replay, and prints the deterministic
//!   coverage/metrics table. Exits nonzero on any divergence, printing
//!   each counterexample report. Output is byte-identical for a given
//!   (seed, budget) across reruns and `--jobs` values.

use std::process::exit;
use std::sync::Arc;

use islaris_bench::replay::{
    gen_requests, metrics_delta_report, parse_requests, render_requests, replay, scrape_metrics,
};
use islaris_bench::serve::{ServeConfig, Server};
use islaris_bench::{compare, parse_bench_json, samples_to_json, BenchEnv};
use islaris_cases::{
    find_case, run_case_traced, run_cases_configured, run_cases_solver_cached, CaseCtx,
    CaseOutcome, ALL_CASES,
};
use islaris_isla::TraceCache;
use islaris_obs::json::parse_json;
use islaris_obs::{profiles_to_json, render_profiles, render_proof_trace, validate_json, Recorder};
use islaris_smt::{QueryCache, SatConfig};

fn usage() -> ! {
    eprintln!(
        "usage: fig12 [--jobs N] \
         [--sat-off FEATURE [--jobs N]] \
         [--bench [ITERS] [--warmup W] [--json PATH] [--solver-cache on|off] \
         [--sat-off FEATURE] [--jobs N]] \
         [--bench-compare OLD.json NEW.json [--threshold PCT]] [--trace-proof SLUG] \
         [--profile [--jobs N] [--profile-out PATH] [--profile-json PATH] [--hot-queries K] \
         [--solver-cache on|off]] \
         [--difftest [--seed S] [--budget N] [--jobs N]] \
         [--serve PORT [--store DIR] [--workers N] [--queue-cap N] [--deadline-ms N] \
         [--port-file PATH] [--log PATH] [--trace-journal N]] \
         [--replay REQS.json --addr HOST:PORT [--clients N] [--json PATH] [--dump DIR] \
         [--dump-headers DIR] [--metrics-delta]] \
         [--gen-requests PATH [--count N]] \
         [--check-log PATH] [--check-json PATH]"
    );
    exit(2);
}

/// Parses a `--solver-cache` operand (`on` / `off`).
fn parse_solver_cache(arg: Option<&String>) -> bool {
    match arg.map(String::as_str) {
        Some("on") => true,
        Some("off") => false,
        _ => usage(),
    }
}

/// Parses a `--sat-off` operand into the ablated configuration.
fn parse_sat_off(arg: Option<&String>) -> SatConfig {
    let Some(feature) = arg else { usage() };
    SatConfig::default().without(feature).unwrap_or_else(|| {
        eprintln!(
            "unknown solver feature `{feature}`; known features: {}",
            SatConfig::FEATURES.join(" ")
        );
        exit(2);
    })
}

/// The `--sat-off FEATURE` A/B run: the full registry under the default
/// configuration and under the ablated one, verdict rows asserted
/// byte-identical (heuristics may only change effort, never verdicts),
/// then both per-stage counter profiles for attribution.
fn sat_off(feature: &str, jobs: usize) {
    let ablated = parse_sat_off(Some(&feature.to_string()));
    let base_run = run_cases_configured(ALL_CASES, jobs, None, None, None, SatConfig::default());
    let alt_run = run_cases_configured(ALL_CASES, jobs, None, None, None, ablated);
    assert_eq!(
        base_run.stable_rows(),
        alt_run.stable_rows(),
        "verdict rows changed with `{feature}` off — a heuristic altered a verdict"
    );

    println!("all features on:");
    print!("{}", base_run.render());
    println!("\n`{feature}` off:");
    print!("{}", alt_run.render());
    println!("\nstable rows: identical across both configurations");
    println!(
        "wall: all-on {:.3}s, `{feature}` off {:.3}s",
        base_run.wall.as_secs_f64(),
        alt_run.wall.as_secs_f64(),
    );
    println!("\nper-stage counters, all features on:");
    print!("{}", render_profiles(&base_run.profiles()));
    println!("\nper-stage counters, `{feature}` off:");
    print!("{}", render_profiles(&alt_run.profiles()));
    if !(base_run.all_ok() && alt_run.all_ok()) {
        eprintln!("some cases FAILED");
        exit(1);
    }
}

fn parallel(jobs: usize) {
    let run = islaris_cases::run_all_parallel(jobs);

    // Determinism check: the size/effort columns must not depend on the
    // worker count or the cache state.
    let baseline = run.sequential.stable_rows();
    for (label, report) in [("cold", &run.cold), ("warm", &run.warm)] {
        assert_eq!(
            baseline,
            report.stable_rows(),
            "{label} parallel table differs from the sequential baseline"
        );
    }

    println!("sequential baseline (uncached, 1 worker):");
    print!("{}", run.sequential.render());
    println!("\ncold parallel run ({jobs} workers, shared cache starts empty):");
    print!("{}", run.cold.render());
    println!("\nwarm parallel run ({jobs} workers, cache primed):");
    print!("{}", run.warm.render());

    let (cold_cache, warm_cache) = (run.cold.cache_totals(), run.warm.cache_totals());
    println!("\nstable rows: identical across all three runs");
    println!(
        "cache: {} unique traces; cold {}/{} hits ({}), warm {}/{} hits ({})",
        run.unique_traces,
        cold_cache.hits,
        cold_cache.lookups(),
        cold_cache.hit_rate_str(),
        warm_cache.hits,
        warm_cache.lookups(),
        warm_cache.hit_rate_str(),
    );
    println!(
        "wall: sequential {:.3}s, cold {:.3}s ({:.2}x), warm {:.3}s ({:.2}x)",
        run.sequential.wall.as_secs_f64(),
        run.cold.wall.as_secs_f64(),
        run.speedup_cold(),
        run.warm.wall.as_secs_f64(),
        run.speedup_warm(),
    );
    println!(
        "trace stage: sequential {:.4}s, warm {:.4}s ({:.1}x with cache)",
        run.sequential.isla_total().as_secs_f64(),
        run.warm.isla_total().as_secs_f64(),
        run.trace_stage_speedup(),
    );
    if !(run.sequential.all_ok() && run.cold.all_ok() && run.warm.all_ok()) {
        eprintln!("some cases FAILED");
        exit(1);
    }
}

fn profile(
    jobs: usize,
    out_path: Option<&str>,
    json_path: Option<&str>,
    hot_queries: usize,
    solver_cache: bool,
) {
    let recorder = Recorder::new();
    let cache = TraceCache::new();
    let qcache = solver_cache.then(|| Arc::new(QueryCache::new()));
    let report = run_cases_solver_cached(
        ALL_CASES,
        jobs,
        Some(&cache),
        Some(&recorder),
        qcache.as_ref(),
    );

    println!("{}", CaseOutcome::stable_header());
    for row in report.stable_rows() {
        println!("{row}");
    }
    println!("\nper-stage counters ({} workers; deterministic):", jobs);
    print!("{}", render_profiles(&report.profiles()));
    if hot_queries > 0 {
        println!("\nsolver-query attribution (verification half; deterministic):");
        print!("{}", report.render_hot_queries(hot_queries));
        // The solver micro-benchmarks (`solver/*` in `--bench`) are not
        // part of the verification half; replay them logged so their
        // digests are attributable too (a `solver/ult_transitivity_64`
        // regression is diagnosable from this table).
        println!("\nsolver micro-bench attribution (solver/*; deterministic):");
        print!(
            "{}",
            islaris_bench::solver_bench_query_table().render_top("solver benches", hot_queries)
        );
    }
    if let Some(path) = json_path {
        let json = profiles_to_json(&report.profiles());
        if let Err((off, msg)) = validate_json(&json) {
            eprintln!("emitted profile JSON is invalid at byte {off}: {msg}");
            exit(1);
        }
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("writing {path}: {e}");
            exit(1);
        }
        println!("\nprofile json: valid JSON, written to {path}");
    }

    let trace = recorder.chrome_trace();
    if let Err((off, msg)) = validate_json(&trace) {
        eprintln!("emitted chrome trace is not valid JSON at byte {off}: {msg}");
        exit(1);
    }
    let spans = recorder.spans().len();
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &trace) {
                eprintln!("writing {path}: {e}");
                exit(1);
            }
            println!("\nchrome trace: {spans} spans, valid JSON, written to {path}");
        }
        None => {
            println!("\nchrome trace: {spans} spans, valid JSON (pass --profile-out PATH to write)")
        }
    }
    if !report.all_ok() {
        eprintln!("some cases FAILED");
        exit(1);
    }
}

fn bench_mode(
    warmup: usize,
    iters: usize,
    json_path: Option<&str>,
    solver_cache: bool,
    sat: SatConfig,
    jobs: usize,
) {
    let env = BenchEnv::capture(warmup, iters);
    println!("{}", env.row());
    let samples = islaris_bench::all_benches_jobs(warmup, iters, solver_cache, sat, jobs);
    for s in &samples {
        println!("{}", s.row());
    }
    if let Some(path) = json_path {
        let text = samples_to_json(&env, &samples);
        if let Err((off, msg)) = validate_json(&text) {
            eprintln!("emitted bench JSON is invalid at byte {off}: {msg}");
            exit(1);
        }
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("writing {path}: {e}");
            exit(1);
        }
        println!(
            "bench json: {} samples, valid JSON, written to {path}",
            samples.len()
        );
    }
}

fn bench_compare(old_path: &str, new_path: &str, threshold_pct: f64) {
    let load = |path: &str| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("reading {path}: {e}");
            exit(2);
        });
        parse_bench_json(&text).unwrap_or_else(|e| {
            eprintln!("parsing {path}: {e}");
            exit(2);
        })
    };
    let (old_env, old_samples) = load(old_path);
    let (new_env, new_samples) = load(new_path);
    println!("old {}", old_env.row());
    println!("new {}", new_env.row());
    let report = compare(&old_samples, &new_samples, threshold_pct);
    print!("{}", report.render());
    if report.regressions() > 0 {
        exit(1);
    }
}

fn trace_proof(slug: &str) {
    let Some(def) = find_case(slug) else {
        let slugs: Vec<&str> = ALL_CASES.iter().map(|c| c.slug).collect();
        eprintln!("unknown case `{slug}`; known slugs: {}", slugs.join(" "));
        exit(2);
    };
    let art = (def.build)(&CaseCtx::default());
    let (_, report) = run_case_traced(&art);
    for block in &report.blocks {
        println!(
            "block {:#x} spec `{}` ({} events):",
            block.addr,
            block.spec,
            block.ptrace.len()
        );
        print!("{}", render_proof_trace(&block.ptrace));
    }
}

fn difftest(cfg: &islaris_difftest::FuzzConfig) {
    let report = islaris_difftest::run_fuzz(cfg);
    print!("{}", report.render());
    if !report.divergences.is_empty() {
        for d in &report.divergences {
            eprint!("{}", d.render());
        }
        eprintln!("{} divergence(s) found", report.divergences.len());
        exit(1);
    }
}

fn serve(args: &[String]) {
    let mut cfg = ServeConfig::default();
    cfg.port = args
        .get(1)
        .and_then(|s| s.parse::<u16>().ok())
        .unwrap_or_else(|| usage());
    let mut port_file: Option<String> = None;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--store" => {
                cfg.store_dir = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()).into());
                i += 2;
            }
            "--workers" => {
                cfg.workers = args
                    .get(i + 1)
                    .and_then(|s| s.parse::<usize>().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--queue-cap" => {
                cfg.queue_cap = args
                    .get(i + 1)
                    .and_then(|s| s.parse::<usize>().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--deadline-ms" => {
                cfg.default_deadline_ms = args
                    .get(i + 1)
                    .and_then(|s| s.parse::<u64>().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--port-file" => {
                port_file = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--log" => {
                cfg.log_path = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()).into());
                i += 2;
            }
            "--trace-journal" => {
                cfg.trace_journal = args
                    .get(i + 1)
                    .and_then(|s| s.parse::<usize>().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            _ => usage(),
        }
    }
    let server = Server::start(&cfg).unwrap_or_else(|e| {
        eprintln!("serve: {e}");
        exit(1);
    });
    eprintln!("fig12 --serve listening on 127.0.0.1:{}", server.port());
    if let Some(path) = port_file {
        // Written last so a waiting client never sees the port before
        // the server accepts.
        if let Err(e) = std::fs::write(&path, format!("{}\n", server.port())) {
            eprintln!("writing {path}: {e}");
            exit(1);
        }
    }
    server.join();
    eprintln!("fig12 --serve stopped");
}

fn replay_mode(args: &[String]) {
    let Some(reqs_path) = args.get(1) else {
        usage()
    };
    let mut addr: Option<String> = None;
    let mut clients = 1;
    let mut json_path: Option<String> = None;
    let mut dump_dir: Option<String> = None;
    let mut dump_headers_dir: Option<String> = None;
    let mut metrics_delta = false;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                addr = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--metrics-delta" => {
                metrics_delta = true;
                i += 1;
            }
            "--clients" => {
                clients = args
                    .get(i + 1)
                    .and_then(|s| s.parse::<usize>().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--json" => {
                json_path = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--dump" => {
                dump_dir = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--dump-headers" => {
                dump_headers_dir = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            _ => usage(),
        }
    }
    let Some(addr) = addr else { usage() };
    let text = std::fs::read_to_string(reqs_path).unwrap_or_else(|e| {
        eprintln!("reading {reqs_path}: {e}");
        exit(2);
    });
    let reqs = parse_requests(&text).unwrap_or_else(|e| {
        eprintln!("parsing {reqs_path}: {e}");
        exit(2);
    });
    let before = metrics_delta.then(|| {
        scrape_metrics(&addr).unwrap_or_else(|e| {
            eprintln!("scraping {addr}/metrics before the replay: {e}");
            exit(1);
        })
    });
    let outcome = replay(&addr, &reqs, clients).unwrap_or_else(|e| {
        eprintln!("replay against {addr}: {e}");
        exit(1);
    });
    print!("{}", outcome.stable_report());
    let telemetry = outcome.telemetry().render();
    println!("{telemetry}");
    if let Some(before) = before {
        let after = scrape_metrics(&addr).unwrap_or_else(|e| {
            eprintln!("scraping {addr}/metrics after the replay: {e}");
            exit(1);
        });
        println!("{}", metrics_delta_report(&before, &after).render());
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, &telemetry) {
            eprintln!("writing {path}: {e}");
            exit(1);
        }
    }
    if let Some(dir) = dump_dir {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("creating {dir}: {e}");
            exit(1);
        }
        for r in &outcome.results {
            let path = format!("{dir}/{:04}.body", r.index);
            if let Err(e) = std::fs::write(&path, &r.body) {
                eprintln!("writing {path}: {e}");
                exit(1);
            }
        }
    }
    // Headers go to their own directory: they carry wall-clock values
    // (`X-Islaris-Wall-Ns`), so mixing them into the body dump would
    // break the byte-identical `diff -r` contract ci.sh relies on.
    if let Some(dir) = dump_headers_dir {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("creating {dir}: {e}");
            exit(1);
        }
        for r in &outcome.results {
            let path = format!("{dir}/{:04}.headers", r.index);
            let text: String = r
                .headers
                .iter()
                .map(|(k, v)| format!("{k}: {v}\n"))
                .collect();
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("writing {path}: {e}");
                exit(1);
            }
        }
    }
}

fn gen_requests_mode(args: &[String]) {
    let Some(path) = args.get(1) else { usage() };
    let mut count = 100;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--count" => {
                count = args
                    .get(i + 1)
                    .and_then(|s| s.parse::<usize>().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            _ => usage(),
        }
    }
    let text = render_requests(&gen_requests(count));
    if let Err((off, msg)) = validate_json(&text) {
        eprintln!("emitted request file is invalid at byte {off}: {msg}");
        exit(1);
    }
    if let Err(e) = std::fs::write(path, &text) {
        eprintln!("writing {path}: {e}");
        exit(1);
    }
    println!("wrote {count} requests to {path}");
}

/// Validates a `--log` JSONL file: every non-empty line must re-parse
/// with the in-tree JSON parser and carry a `kind` field.
fn check_log(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("reading {path}: {e}");
        exit(2);
    });
    let mut n = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let j = parse_json(line).unwrap_or_else(|(off, msg)| {
            eprintln!("{path}:{}: byte {off}: {msg}", i + 1);
            exit(1);
        });
        if j.get("kind").is_none() {
            eprintln!("{path}:{}: event has no `kind` field", i + 1);
            exit(1);
        }
        n += 1;
    }
    println!("{path}: {n} JSONL event(s), all parse");
}

/// Validates that a file is one well-formed JSON document (used by the
/// CI smoke on `GET /trace/<id>` bodies).
fn check_json(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("reading {path}: {e}");
        exit(2);
    });
    if let Err((off, msg)) = validate_json(&text) {
        eprintln!("{path}: invalid JSON at byte {off}: {msg}");
        exit(1);
    }
    println!("{path}: valid JSON");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => {
            let outcomes = islaris_bench::all_cases();
            println!("{}", islaris_bench::fig12_table(&outcomes));
        }
        Some("--jobs") => {
            let jobs = args
                .get(1)
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or_else(|| usage());
            parallel(jobs);
        }
        Some("--bench") => {
            let mut iters = 5;
            let mut warmup = 1;
            let mut json_path: Option<String> = None;
            let mut solver_cache = false;
            let mut sat = SatConfig::default();
            let mut jobs = 1;
            let mut i = 1;
            if let Some(v) = args.get(1).and_then(|s| s.parse::<usize>().ok()) {
                iters = v;
                i = 2;
            }
            while i < args.len() {
                match args[i].as_str() {
                    "--jobs" => {
                        jobs = args
                            .get(i + 1)
                            .and_then(|s| s.parse::<usize>().ok())
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    "--warmup" => {
                        warmup = args
                            .get(i + 1)
                            .and_then(|s| s.parse::<usize>().ok())
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    "--json" => {
                        json_path = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                        i += 2;
                    }
                    "--solver-cache" => {
                        solver_cache = parse_solver_cache(args.get(i + 1));
                        i += 2;
                    }
                    "--sat-off" => {
                        sat = parse_sat_off(args.get(i + 1));
                        i += 2;
                    }
                    _ => usage(),
                }
            }
            bench_mode(warmup, iters, json_path.as_deref(), solver_cache, sat, jobs);
        }
        Some("--sat-off") => {
            let Some(feature) = args.get(1) else { usage() };
            let mut jobs = 1;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--jobs" => {
                        jobs = args
                            .get(i + 1)
                            .and_then(|s| s.parse::<usize>().ok())
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    _ => usage(),
                }
            }
            sat_off(feature, jobs);
        }
        Some("--bench-compare") => {
            let (Some(old_path), Some(new_path)) = (args.get(1), args.get(2)) else {
                usage()
            };
            let mut threshold = 25.0;
            let mut i = 3;
            while i < args.len() {
                match args[i].as_str() {
                    "--threshold" => {
                        threshold = args
                            .get(i + 1)
                            .and_then(|s| s.parse::<f64>().ok())
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    _ => usage(),
                }
            }
            bench_compare(old_path, new_path, threshold);
        }
        Some("--trace-proof") => {
            let Some(slug) = args.get(1) else { usage() };
            if args.len() > 2 {
                usage();
            }
            trace_proof(slug);
        }
        Some("--profile") => {
            let mut jobs = 1;
            let mut out_path: Option<String> = None;
            let mut json_path: Option<String> = None;
            let mut hot_queries = 0;
            let mut solver_cache = true;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--jobs" => {
                        jobs = args
                            .get(i + 1)
                            .and_then(|s| s.parse::<usize>().ok())
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    "--profile-out" => {
                        out_path = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                        i += 2;
                    }
                    "--profile-json" => {
                        json_path = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                        i += 2;
                    }
                    "--hot-queries" => {
                        hot_queries = args
                            .get(i + 1)
                            .and_then(|s| s.parse::<usize>().ok())
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    "--solver-cache" => {
                        solver_cache = parse_solver_cache(args.get(i + 1));
                        i += 2;
                    }
                    _ => usage(),
                }
            }
            profile(
                jobs,
                out_path.as_deref(),
                json_path.as_deref(),
                hot_queries,
                solver_cache,
            );
        }
        Some("--difftest") => {
            let mut cfg = islaris_difftest::FuzzConfig::default();
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--seed" => {
                        cfg.seed = args
                            .get(i + 1)
                            .and_then(|s| s.parse::<u64>().ok())
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    "--budget" => {
                        cfg.budget = args
                            .get(i + 1)
                            .and_then(|s| s.parse::<u64>().ok())
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    "--jobs" => {
                        cfg.jobs = args
                            .get(i + 1)
                            .and_then(|s| s.parse::<usize>().ok())
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    _ => usage(),
                }
            }
            difftest(&cfg);
        }
        Some("--serve") => serve(&args),
        Some("--replay") => replay_mode(&args),
        Some("--gen-requests") => gen_requests_mode(&args),
        Some("--check-log") => {
            let Some(path) = args.get(1) else { usage() };
            check_log(path);
        }
        Some("--check-json") => {
            let Some(path) = args.get(1) else { usage() };
            check_json(path);
        }
        Some(_) => usage(),
    }
}
