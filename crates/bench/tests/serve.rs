//! Concurrent-client determinism of the `--serve` daemon.
//!
//! The determinism contract: for a given request list, per-request
//! response *bodies* are byte-identical regardless of how many clients
//! replay the list, in what interleaving, and what state the caches are
//! in. Wall-clock lives only in the `X-Islaris-Wall-Ns` header, and the
//! profile's schedule-dependent rows are stripped server-side.

use islaris_bench::replay::{gen_requests, replay, ReplayOutcome};
use islaris_bench::serve::{ServeConfig, Server};

fn replay_against(port: u16, clients: usize) -> ReplayOutcome {
    let reqs = gen_requests(26);
    replay(&format!("127.0.0.1:{port}"), &reqs, clients).expect("replay")
}

#[test]
fn one_four_and_eight_clients_see_identical_bodies() {
    let server = Server::start(&ServeConfig::default()).expect("server starts");
    let port = server.port();

    let baseline = replay_against(port, 1);
    assert_eq!(baseline.results.len(), 26);
    for r in &baseline.results {
        assert!(
            r.status == 200 || r.status == 400 || r.status == 404,
            "request {} unexpected status {}",
            r.index,
            r.status
        );
    }

    for clients in [4, 8] {
        let run = replay_against(port, clients);
        // The stable report (status + digest per index) is the cheap
        // comparison; the body check below makes the failure readable.
        assert_eq!(
            baseline.stable_report(),
            run.stable_report(),
            "{clients} clients diverge from the single-client baseline"
        );
        for (a, b) in baseline.results.iter().zip(&run.results) {
            assert_eq!(a.index, b.index);
            assert_eq!(
                a.body, b.body,
                "request {} body differs with {clients} clients",
                a.index
            );
        }
    }

    server.stop();
    server.join();
}

#[test]
fn cache_state_never_leaks_into_bodies() {
    // The same list replayed twice against one server: the second pass
    // runs fully warm (memory caches primed) yet must answer
    // byte-identically to the cold pass.
    let server = Server::start(&ServeConfig::default()).expect("server starts");
    let port = server.port();

    let cold = replay_against(port, 2);
    let warm = replay_against(port, 2);
    assert_eq!(cold.stable_report(), warm.stable_report());
    for (a, b) in cold.results.iter().zip(&warm.results) {
        assert_eq!(a.body, b.body, "request {} body changed when warm", a.index);
    }

    server.stop();
    server.join();
}
