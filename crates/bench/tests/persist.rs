//! Persistent-store behaviour of the `--serve` daemon, end to end:
//! warm restarts answer byte-identically, and on-disk corruption is a
//! sound miss — detected at load, evicted, recomputed — never a wrong
//! (or even different) answer.

use std::fs;
use std::io::BufReader;
use std::net::TcpStream;
use std::path::{Path, PathBuf};

use islaris_bench::replay::{gen_requests, replay, scrape_metrics, ReplayOutcome};
use islaris_bench::serve::{ServeConfig, Server};
use islaris_obs::http::{read_response, write_request};
use islaris_obs::json::{parse_json, Json};

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("islaris-serve-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn start(store: &Path) -> Server {
    Server::start(&ServeConfig {
        store_dir: Some(store.to_path_buf()),
        ..ServeConfig::default()
    })
    .expect("server starts")
}

fn run(port: u16) -> ReplayOutcome {
    let reqs = gen_requests(24);
    replay(&format!("127.0.0.1:{port}"), &reqs, 2).expect("replay")
}

/// Fetches `/stats` and returns the parsed tree.
fn stats(port: u16) -> Json {
    let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    write_request(&mut writer, "GET", "/stats", &[], b"").expect("send");
    let resp = read_response(&mut reader).expect("response");
    parse_json(&resp.body_str()).expect("stats parse")
}

fn counter(stats: &Json, cache: &str, field: &str) -> u64 {
    stats
        .get(cache)
        .and_then(|c| c.get("store"))
        .and_then(|s| s.get(field))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing {cache}.store.{field} in {}", stats.render()))
}

fn assert_identical(a: &ReplayOutcome, b: &ReplayOutcome, label: &str) {
    assert_eq!(a.stable_report(), b.stable_report(), "{label}");
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x.body, y.body, "{label}: request {} body differs", x.index);
    }
}

#[test]
fn warm_restart_answers_byte_identically_with_disk_hits() {
    let store = tmp_dir("warm");

    let cold_server = start(&store);
    let cold = run(cold_server.port());
    let s = stats(cold_server.port());
    assert_eq!(counter(&s, "trace_cache", "disk_hits"), 0, "cold run");
    assert!(
        counter(&s, "trace_cache", "disk_misses") > 0,
        "cold run populates"
    );
    // The scheduling gauges are part of /stats; idle after the replay,
    // both sit at zero.
    for gauge in ["queued", "in_flight"] {
        assert_eq!(
            s.get(gauge).and_then(Json::as_u64),
            Some(0),
            "missing or busy gauge `{gauge}` in {}",
            s.render()
        );
    }
    cold_server.stop();
    cold_server.join();

    // A fresh process over the same store must serve from disk and
    // answer byte-identically.
    let warm_server = start(&store);
    let warm = run(warm_server.port());
    assert_identical(&cold, &warm, "warm restart");
    let s = stats(warm_server.port());
    assert!(
        counter(&s, "trace_cache", "disk_hits") > 0,
        "restart is warm"
    );
    assert!(
        counter(&s, "query_cache", "disk_hits") > 0,
        "queries warm too"
    );
    assert_eq!(counter(&s, "trace_cache", "evictions"), 0);

    // The same disk-store counters are exposed as labelled gauges in
    // /metrics — and the warm restart moved them.
    let m = scrape_metrics(&format!("127.0.0.1:{}", warm_server.port())).expect("scrape");
    assert!(
        m["islaris_store_disk_hits{store=\"traces\"}"] > 0,
        "trace-store disk hits must show in /metrics"
    );
    assert!(
        m["islaris_store_disk_hits{store=\"queries\"}"] > 0,
        "query-store disk hits must show in /metrics"
    );
    assert_eq!(m["islaris_store_evictions{store=\"traces\"}"], 0);
    assert_eq!(m["islaris_queue_depth"], 0, "idle after the replay");
    assert_eq!(m["islaris_in_flight"], 0, "idle after the replay");
    assert!(
        m["islaris_request_wall_ns_count"] > 0,
        "latency histogram observed the replay"
    );
    warm_server.stop();
    warm_server.join();

    let _ = fs::remove_dir_all(&store);
}

/// Flips one payload byte in every store file matching `ext`.
fn corrupt_entries(dir: &Path, ext: &str) -> usize {
    let mut hit = 0;
    for f in fs::read_dir(dir).expect("store dir") {
        let path = f.expect("entry").path();
        if path.extension().is_some_and(|e| e == ext) {
            let mut bytes = fs::read(&path).expect("read entry");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            fs::write(&path, &bytes).expect("rewrite entry");
            hit += 1;
        }
    }
    hit
}

/// Truncates every store file matching `ext` to its first 10 bytes.
fn truncate_entries(dir: &Path, ext: &str) -> usize {
    let mut hit = 0;
    for f in fs::read_dir(dir).expect("store dir") {
        let path = f.expect("entry").path();
        if path.extension().is_some_and(|e| e == ext) {
            let bytes = fs::read(&path).expect("read entry");
            fs::write(&path, &bytes[..bytes.len().min(10)]).expect("truncate entry");
            hit += 1;
        }
    }
    hit
}

#[test]
fn corrupt_entries_are_evicted_recomputed_and_answers_do_not_change() {
    let store = tmp_dir("corrupt");

    let cold_server = start(&store);
    let cold = run(cold_server.port());
    cold_server.stop();
    cold_server.join();

    // Bit-flip every trace entry, truncate every query entry: both
    // defect classes must be caught by verify-on-load.
    let flipped = corrupt_entries(&store.join("traces"), "trace");
    let truncated = truncate_entries(&store.join("queries"), "query");
    assert!(flipped > 0 && truncated > 0, "store was populated");

    let server = start(&store);
    let replayed = run(server.port());
    assert_identical(&cold, &replayed, "corrupted store");
    let s = stats(server.port());
    assert!(
        counter(&s, "trace_cache", "evictions") > 0,
        "corrupt trace entries must be evicted: {}",
        s.render()
    );
    assert!(
        counter(&s, "query_cache", "evictions") > 0,
        "truncated query entries must be evicted: {}",
        s.render()
    );
    server.stop();
    server.join();

    // The recompute healed the store: one more restart is warm again.
    let healed = start(&store);
    let again = run(healed.port());
    assert_identical(&cold, &again, "healed store");
    let s = stats(healed.port());
    assert!(counter(&s, "trace_cache", "disk_hits") > 0, "store healed");
    assert_eq!(
        counter(&s, "trace_cache", "evictions"),
        0,
        "no defects left"
    );
    healed.stop();
    healed.join();

    let _ = fs::remove_dir_all(&store);
}
