//! Pins the agreement between the daemon's latency histograms
//! ([`islaris_obs::metrics::Histogram`]) and the bench harness's
//! nearest-rank order statistics ([`islaris_bench::summarize`]): both
//! use the rank `(num * n).div_ceil(den) - 1`, so on samples that sit
//! exactly on bucket bounds the histogram's p50/p90 equal summarize's
//! median/p90 *exactly*, and on arbitrary samples they equal the bucket
//! upper bound of the same ranked sample. The replay `--metrics-delta`
//! report leans on this: its quantiles and the client-side telemetry
//! describe the same distribution at bucket resolution.

use islaris_bench::summarize;
use islaris_obs::metrics::{bucket_le, quantile_from_counts, Histogram, BUCKETS};

/// The histogram's answer for one quantile over `samples`.
fn hist_quantile(samples: &[u64], num: u64, den: u64) -> u64 {
    let h = Histogram::default();
    for &s in samples {
        h.observe(s);
    }
    h.quantile(num, den).expect("non-empty histogram")
}

#[test]
fn on_bucket_bounds_histogram_quantiles_equal_summarize_exactly() {
    // Every sample is a bucket bound, so the bucket upper bound of the
    // ranked sample IS the ranked sample: exact agreement.
    let cases: [&[u64]; 4] = [
        &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
        &[10, 20, 30, 40, 50],
        &[100, 100, 200, 700, 700, 900, 3_000],
        &[5, 5_000, 5_000_000, 5_000_000_000],
    ];
    for samples in cases {
        let (_, median, p90, max, _) = summarize(samples);
        assert_eq!(hist_quantile(samples, 1, 2), median, "p50 on {samples:?}");
        assert_eq!(hist_quantile(samples, 9, 10), p90, "p90 on {samples:?}");
        assert_eq!(hist_quantile(samples, 1, 1), max, "max on {samples:?}");
    }
}

#[test]
fn off_bound_samples_agree_at_bucket_resolution() {
    // Arbitrary samples: the histogram answers the bucket upper bound
    // of the exact ranked sample summarize picks.
    let samples: &[u64] = &[17, 23, 23, 148, 1_033, 56_789, 999_999, 4_100_000];
    let (_, median, p90, _, _) = summarize(samples);
    assert_eq!(hist_quantile(samples, 1, 2), bucket_le(median).unwrap());
    assert_eq!(hist_quantile(samples, 9, 10), bucket_le(p90).unwrap());
}

#[test]
fn single_sample_all_quantiles_collapse_to_it() {
    let samples: &[u64] = &[400];
    let (min, median, p90, max, mad) = summarize(samples);
    assert_eq!((min, median, p90, max, mad), (400, 400, 400, 400, 0));
    assert_eq!(hist_quantile(samples, 1, 2), 400);
    assert_eq!(hist_quantile(samples, 9, 10), 400);
    assert_eq!(hist_quantile(samples, 1, 1), 400);
}

#[test]
fn all_equal_samples_have_degenerate_quantiles() {
    let samples: Vec<u64> = vec![7_000; 31];
    let (min, median, p90, max, mad) = summarize(&samples);
    assert_eq!(
        (min, median, p90, max, mad),
        (7_000, 7_000, 7_000, 7_000, 0)
    );
    assert_eq!(hist_quantile(&samples, 1, 2), 7_000);
    assert_eq!(hist_quantile(&samples, 9, 10), 7_000);
    assert_eq!(hist_quantile(&samples, 1, 1), 7_000);
}

#[test]
fn overflow_samples_answer_the_tracked_max() {
    // Beyond the last bound there is no bucket upper bound; the
    // histogram tracks the exact max and answers it for overflow ranks.
    let top = *BUCKETS.last().unwrap();
    let samples: &[u64] = &[10, top + 5];
    assert_eq!(hist_quantile(samples, 1, 1), top + 5);
    let (_, _, _, max, _) = summarize(samples);
    assert_eq!(max, top + 5);
}

#[test]
fn quantile_from_counts_matches_the_live_histogram() {
    // The replay delta path reconstructs bucket counts from scraped
    // expositions and runs `quantile_from_counts`; it must answer the
    // same as the live histogram (for in-range samples).
    let samples: &[u64] = &[30, 30, 90, 200, 200, 200, 6_000];
    let h = Histogram::default();
    for &s in samples {
        h.observe(s);
    }
    let counts = h.bucket_counts();
    for (num, den) in [(1, 2), (9, 10)] {
        assert_eq!(
            quantile_from_counts(&counts, num, den),
            h.quantile(num, den),
            "quantile {num}/{den}"
        );
    }
}
