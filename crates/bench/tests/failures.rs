//! Fault-injection suite for the `--serve` daemon.
//!
//! Every row injects one fault and asserts two things: the fault maps to
//! its *distinct typed* error response (status + machine-readable
//! `error` kind), and the server keeps serving afterwards — no panic, no
//! poisoned worker, the very next request succeeds.

use std::collections::BTreeMap;
use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};

use islaris_bench::replay::scrape_metrics;
use islaris_bench::serve::{ServeConfig, Server};
use islaris_obs::http::{read_response, write_request};
use islaris_obs::json::{parse_json, Json};
use islaris_obs::metrics::{family_deltas, sample_delta};

fn start() -> Server {
    Server::start(&ServeConfig::default()).expect("server starts")
}

/// One request over a fresh connection; returns `(status, body)`.
fn rpc(port: u16, method: &str, path: &str, body: &str) -> (u16, String) {
    let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    write_request(&mut writer, method, path, &[], body.as_bytes()).expect("send");
    let resp = read_response(&mut reader).expect("response");
    (
        resp.status,
        String::from_utf8_lossy(&resp.body).into_owned(),
    )
}

/// Sends raw bytes (closing the write side) and returns the raw reply.
fn raw(port: u16, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    stream.write_all(bytes).expect("send");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut reply = String::new();
    let _ = stream.read_to_string(&mut reply);
    reply
}

/// The machine-readable `error` kind of a typed error body.
fn error_kind(body: &str) -> String {
    parse_json(body)
        .ok()
        .and_then(|j| j.get("error").and_then(Json::as_str).map(str::to_string))
        .unwrap_or_else(|| panic!("not a typed error body: {body}"))
}

/// Asserts the server still answers after a fault.
fn assert_alive(port: u16) {
    let (status, body) = rpc(port, "GET", "/health", "");
    assert_eq!((status, body.contains("true")), (200, true));
}

/// One parsed `/metrics` scrape.
fn metrics(port: u16) -> BTreeMap<String, u64> {
    scrape_metrics(&format!("127.0.0.1:{port}")).expect("scrape /metrics")
}

/// The per-kind error-counter delta between two scrapes.
fn kind_delta(before: &BTreeMap<String, u64>, after: &BTreeMap<String, u64>, kind: &str) -> u64 {
    sample_delta(
        before,
        after,
        &format!("islaris_errors_total{{kind=\"{kind}\"}}"),
    )
}

#[test]
fn each_fault_gets_its_own_typed_error_and_the_server_survives() {
    let server = start();
    let port = server.port();

    // Table: (fault label, request, expected status, expected kind).
    let table: &[(&str, &str, &str, &str, u16, &str)] = &[
        (
            "invalid JSON body",
            "POST",
            "/verify",
            "{not json",
            400,
            "invalid-json",
        ),
        (
            "non-object JSON body",
            "POST",
            "/verify",
            "[1,2]",
            400,
            "bad-request",
        ),
        (
            "missing kind",
            "POST",
            "/verify",
            "{\"slug\":\"hvc\"}",
            400,
            "bad-request",
        ),
        (
            "unknown kind",
            "POST",
            "/verify",
            "{\"kind\":\"frobnicate\"}",
            400,
            "bad-request",
        ),
        (
            "unknown case slug",
            "POST",
            "/verify",
            "{\"kind\":\"case\",\"slug\":\"no-such-case\"}",
            404,
            "unknown-case",
        ),
        (
            "opcode too short",
            "POST",
            "/verify",
            "{\"kind\":\"trace\",\"arch\":\"arm\",\"opcode\":\"0x91\"}",
            400,
            "bad-opcode",
        ),
        (
            "opcode not hex",
            "POST",
            "/verify",
            "{\"kind\":\"trace\",\"arch\":\"arm\",\"opcode\":\"0xzzzzzzzz\"}",
            400,
            "bad-opcode",
        ),
        (
            "check spec over a register the path never touches",
            "POST",
            "/verify",
            "{\"kind\":\"check\",\"arch\":\"riscv\",\"opcode\":\"0x00150513\",\
             \"spec\":\"(= (final x9) #x0000000000000000)\"}",
            400,
            "bad-request",
        ),
        (
            "unknown arch",
            "POST",
            "/verify",
            "{\"kind\":\"trace\",\"arch\":\"mips\",\"opcode\":\"0x00000013\"}",
            400,
            "bad-request",
        ),
        (
            "spec does not parse",
            "POST",
            "/verify",
            "{\"kind\":\"check\",\"arch\":\"riscv\",\"opcode\":\"0x00000013\",\"spec\":\"(((\"}",
            400,
            "bad-request",
        ),
        (
            "expired deadline",
            "POST",
            "/verify",
            "{\"kind\":\"case\",\"slug\":\"hvc\",\"deadline_ms\":0}",
            504,
            "deadline-exceeded",
        ),
        (
            "negative deadline",
            "POST",
            "/verify",
            "{\"kind\":\"case\",\"slug\":\"hvc\",\"deadline_ms\":-1}",
            400,
            "bad-request",
        ),
        ("unknown path", "GET", "/nope", "", 404, "unknown-path"),
        (
            "wrong method on /verify",
            "GET",
            "/verify",
            "",
            405,
            "method-not-allowed",
        ),
        (
            "wrong method on /health",
            "DELETE",
            "/health",
            "",
            405,
            "method-not-allowed",
        ),
    ];
    for (label, method, path, body, want_status, want_kind) in table {
        let before = metrics(port);
        let (status, reply) = rpc(port, method, path, body);
        assert_eq!(status, *want_status, "{label}: body {reply}");
        assert_eq!(error_kind(&reply), *want_kind, "{label}");
        // Exactly this fault's counter moved, by exactly one.
        let after = metrics(port);
        assert_eq!(
            kind_delta(&before, &after, want_kind),
            1,
            "{label}: /metrics counter for `{want_kind}`"
        );
        assert_eq!(
            family_deltas(&before, &after, "islaris_errors_total"),
            vec![(want_kind.to_string(), 1)],
            "{label}: no other error kind may move"
        );
        assert_alive(port);
    }

    // The workers are not poisoned: a real job still succeeds.
    let (status, reply) = rpc(
        port,
        "POST",
        "/verify",
        "{\"kind\":\"trace\",\"arch\":\"riscv\",\"opcode\":\"0x00150513\"}",
    );
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains("\"kind\":\"trace\""));

    server.stop();
    server.join();
}

#[test]
fn framing_faults_are_typed_and_scoped_to_their_connection() {
    let server = start();
    let port = server.port();

    // Malformed request line.
    let before = metrics(port);
    let reply = raw(port, b"GARBAGE\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
    assert!(reply.contains("malformed-request"), "{reply}");
    assert_eq!(kind_delta(&before, &metrics(port), "malformed-request"), 1);
    assert_alive(port);

    // Lowercase method (not a valid token per our framing).
    let before = metrics(port);
    let reply = raw(port, b"get /health HTTP/1.1\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
    assert_eq!(kind_delta(&before, &metrics(port), "malformed-request"), 1);
    assert_alive(port);

    // Oversized head: one header row larger than the 16 KiB budget.
    let mut big = Vec::from(&b"GET /health HTTP/1.1\r\nx-pad: "[..]);
    big.extend(std::iter::repeat(b'a').take(20 * 1024));
    big.extend(b"\r\n\r\n");
    let before = metrics(port);
    let reply = raw(port, &big);
    assert!(reply.starts_with("HTTP/1.1 431"), "{reply}");
    assert!(reply.contains("head-too-large"), "{reply}");
    assert_eq!(kind_delta(&before, &metrics(port), "head-too-large"), 1);
    assert_alive(port);

    // Declared body over the 4 MiB budget (no need to send it).
    let before = metrics(port);
    let reply = raw(
        port,
        b"POST /verify HTTP/1.1\r\ncontent-length: 8388608\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
    assert!(reply.contains("body-too-large"), "{reply}");
    assert_eq!(kind_delta(&before, &metrics(port), "body-too-large"), 1);
    assert_alive(port);

    // Truncated body: promise 100 bytes, deliver 9, close.
    let before = metrics(port);
    let reply = raw(
        port,
        b"POST /verify HTTP/1.1\r\ncontent-length: 100\r\n\r\n{\"kind\":1",
    );
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
    assert!(reply.contains("truncated-body"), "{reply}");
    assert_eq!(kind_delta(&before, &metrics(port), "truncated-body"), 1);
    assert_alive(port);

    server.stop();
    server.join();
}

#[test]
fn faulted_requests_never_take_a_trace_journal_slot() {
    let server = start();
    let port = server.port();
    let journal_entries = |port: u16| -> Vec<Json> {
        let (status, body) = rpc(port, "GET", "/trace", "");
        assert_eq!(status, 200, "{body}");
        parse_json(&body)
            .expect("journal index parses")
            .get("entries")
            .and_then(Json::as_array)
            .map(<[Json]>::to_vec)
            .expect("journal index has entries")
    };
    assert!(journal_entries(port).is_empty());

    // Framing and validation faults: typed answers, no journal slots.
    let _ = raw(port, b"GARBAGE\r\n\r\n");
    let _ = rpc(port, "POST", "/verify", "{not json");
    let _ = rpc(
        port,
        "POST",
        "/verify",
        "{\"kind\":\"case\",\"slug\":\"no-such-case\"}",
    );
    let _ = rpc(port, "GET", "/nope", "");
    let _ = rpc(port, "GET", "/trace/not-hex-at-all", "");
    assert!(
        journal_entries(port).is_empty(),
        "faults must not journal — the journal records work, not noise"
    );

    // A pool job journals, and its trace serves as valid Chrome JSON
    // including the pool-recorded queue-wait span.
    let (status, _) = rpc(
        port,
        "POST",
        "/verify",
        "{\"kind\":\"trace\",\"arch\":\"riscv\",\"opcode\":\"0x00150513\"}",
    );
    assert_eq!(status, 200);
    let entries = journal_entries(port);
    assert_eq!(entries.len(), 1);
    let id = entries[0]
        .get("trace")
        .and_then(Json::as_str)
        .expect("index rows carry the trace id")
        .to_string();
    let (status, body) = rpc(port, "GET", &format!("/trace/{id}"), "");
    assert_eq!(status, 200, "{body}");
    islaris_obs::validate_json(&body).expect("chrome trace is valid JSON");
    assert!(body.contains("\"queue-wait\""), "{body}");
    assert!(body.contains("\"exec\""), "{body}");
    assert!(
        body.contains("\"label\":\"trace:rv64i:0x00150513\""),
        "{body}"
    );

    // An unknown (but well-formed) id is a typed 404.
    let (status, body) = rpc(port, "GET", "/trace/ffffffffffffffff", "");
    assert_eq!(status, 404, "{body}");
    assert_eq!(error_kind(&body), "unknown-path");

    server.stop();
    server.join();
}

/// Regression: the pool's deadline check used to fire only at dequeue,
/// so a deadline that lapsed *during* a long case ran the case to
/// completion anyway. Now the intra-case scheduler re-checks the
/// deadline between block jobs: a deadline that survives dequeue but
/// lapses mid-case must yield a 504 whose body names the mid-case
/// path, without skewing the pool's gauges — and the very next
/// full-size job must succeed.
#[test]
fn deadline_lapsing_mid_case_interrupts_between_block_jobs() {
    let server = start();
    let port = server.port();
    let before = metrics(port);

    // memcpy_riscv runs tens of milliseconds per block-set even in
    // release, so a 5ms deadline always lapses between its early block
    // jobs (never after the last one, which would let the case finish);
    // the retry loop only absorbs the (rare) run where the dequeue
    // itself took >5ms and the pre-existing dequeue check answered
    // first.
    let mut mid_case = false;
    for _ in 0..5 {
        let (status, body) = rpc(
            port,
            "POST",
            "/verify",
            "{\"kind\":\"case\",\"slug\":\"memcpy_riscv\",\"deadline_ms\":5}",
        );
        assert_eq!(status, 504, "body: {body}");
        assert_eq!(error_kind(&body), "deadline-exceeded");
        if body.contains("mid-case") {
            mid_case = true;
            break;
        }
    }
    assert!(mid_case, "deadline never lapsed between block jobs");

    // The interrupted job retired cleanly: nothing left in flight or
    // queued, no worker panicked, and the error was counted under its
    // kind like any dequeue-time expiry. The 504 is written from inside
    // the pool job, a moment before the worker decrements the in-flight
    // gauge, so quiescence is polled rather than asserted on the first
    // scrape.
    let mut after = metrics(port);
    for _ in 0..200 {
        if after["islaris_in_flight"] == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
        after = metrics(port);
    }
    assert_eq!(after["islaris_in_flight"], 0);
    assert_eq!(after["islaris_queue_depth"], 0);
    assert_eq!(after["islaris_job_panics"], before["islaris_job_panics"]);
    assert!(kind_delta(&before, &after, "deadline-exceeded") >= 1);

    // And the same slug verifies normally once the deadline pressure is
    // gone — the pool was not wedged by the mid-case abort.
    let (status, body) = rpc(
        port,
        "POST",
        "/verify",
        "{\"kind\":\"case\",\"slug\":\"hvc\"}",
    );
    assert_eq!(status, 200, "{body}");

    server.stop();
    server.join();
}

#[test]
fn saturation_answers_overloaded_and_recovers() {
    // One worker, one queue slot: a burst of concurrent case jobs must
    // answer every request with either a verdict or a typed 503 — and
    // the server must be fully healthy afterwards.
    let server = Server::start(&ServeConfig {
        workers: 1,
        queue_cap: 1,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let port = server.port();

    let handles: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                rpc(
                    port,
                    "POST",
                    "/verify",
                    "{\"kind\":\"case\",\"slug\":\"hvc\"}",
                )
            })
        })
        .collect();
    let mut oks = 0;
    for h in handles {
        let (status, body) = h.join().expect("client thread");
        match status {
            200 => {
                assert!(body.contains("\"verdict\":\"proved\""), "{body}");
                oks += 1;
            }
            503 => assert_eq!(error_kind(&body), "overloaded"),
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert!(oks >= 1, "at least one job must get through");
    assert_alive(port);

    // After the burst the queue drains and full-size jobs succeed again.
    let (status, _) = rpc(
        port,
        "POST",
        "/verify",
        "{\"kind\":\"case\",\"slug\":\"hvc\"}",
    );
    assert_eq!(status, 200);

    server.stop();
    server.join();
}
