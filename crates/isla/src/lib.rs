//! The Isla analogue: SMT-based symbolic execution of mini-Sail ISA models
//! producing Isla traces (the `Isla` box of Fig. 1 in the paper).
//!
//! Given an opcode (possibly with symbolic immediate fields) and
//! constraints on the machine state, [`trace_opcode`] symbolically
//! evaluates the model, pruning branches that are unreachable under the
//! constraints with the SMT solver, and emits a [`islaris_itl::Trace`]:
//! the instruction's register and memory accesses, with `Cases` trees for
//! residual branching and `AssumeReg`/`Assume` events recording the
//! constraints that were used (which become proof obligations during
//! verification).
//!
//! # Examples
//!
//! Reproduce the paper's Fig. 3: `add sp, sp, #0x40` at EL2 with SP=1
//! collapses to a linear trace over `SP_EL2`.
//!
//! ```
//! use islaris_bv::Bv;
//! use islaris_isla::{trace_opcode, IslaConfig, Opcode};
//! use islaris_models::ARM;
//!
//! let cfg = IslaConfig::new(ARM)
//!     .assume_reg("PSTATE.EL", Bv::new(2, 0b10))
//!     .assume_reg("PSTATE.SP", Bv::new(1, 0b1));
//! let r = trace_opcode(&cfg, &Opcode::Concrete(0x910103ff))?;
//! let text = islaris_itl::print_trace(&r.trace);
//! assert!(text.contains("(read-reg |SP_EL2| nil"));
//! assert!(text.contains("(write-reg |SP_EL2| nil"));
//! # Ok::<(), islaris_isla::IslaError>(())
//! ```

pub mod cache;
pub mod driver;
pub mod exec;
pub mod paths;
pub mod simplify;
pub mod store;
pub mod sym;

pub use cache::{CacheStats, CachedTrace, TraceCache};
pub use driver::{trace_opcode, trace_program, IslaStats, Opcode, ProgramTraces, TraceResult};
pub use exec::{ConstraintFn, IslaConfig, IslaError};
pub use paths::{analyze_path, enumerate_paths, PathView};
pub use simplify::simplify_trace;
pub use store::{TraceStore, TRACE_MAGIC};
pub use sym::{RegKey, SymVal};
