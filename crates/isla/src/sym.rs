//! Symbolic values and the per-run symbolic state.

use std::collections::{BTreeMap, HashMap};

use islaris_bv::Bv;
use islaris_itl::{Event, Reg};
use islaris_smt::{simplify_with, Expr, SolverMetrics, Sort, Var, VarGen};

/// A symbolic runtime value of the mini-Sail evaluator.
#[derive(Debug, Clone)]
pub enum SymVal {
    /// A bitvector-sorted expression with its width.
    Bits(Expr, u32),
    /// A boolean-sorted expression.
    Bool(Expr),
    /// A concrete integer (register indices must be concrete, as Isla
    /// specialises on the opcode).
    Int(i128),
    /// `()`.
    Unit,
}

impl SymVal {
    /// Extracts the expression and width of a bits value.
    ///
    /// # Panics
    ///
    /// Panics on other variants (unreachable for checked models).
    #[must_use]
    pub fn bits(&self) -> (Expr, u32) {
        match self {
            SymVal::Bits(e, w) => (e.clone(), *w),
            other => panic!("expected bits, found {other:?}"),
        }
    }

    /// Extracts the boolean expression.
    ///
    /// # Panics
    ///
    /// Panics on other variants.
    #[must_use]
    pub fn boolean(&self) -> Expr {
        match self {
            SymVal::Bool(e) => e.clone(),
            other => panic!("expected bool, found {other:?}"),
        }
    }

    /// Extracts the concrete integer.
    ///
    /// # Panics
    ///
    /// Panics on other variants.
    #[must_use]
    pub fn int(&self) -> i128 {
        match self {
            SymVal::Int(i) => *i,
            other => panic!("expected int, found {other:?}"),
        }
    }
}

/// Key of a model-level register cell.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegKey {
    /// A plain or field register, by model name (`SP_EL2`, `PSTATE.EL`).
    Plain(String),
    /// A register-array element.
    Array(String, usize),
}

impl RegKey {
    /// The ITL register for this cell, using the architecture's array
    /// element naming.
    #[must_use]
    pub fn to_itl(&self, arch: &islaris_models::Arch) -> Reg {
        match self {
            RegKey::Plain(name) => match name.split_once('.') {
                Some((base, field)) => Reg::field(base, field),
                None => Reg::new(name),
            },
            RegKey::Array(array, idx) => {
                let name = arch
                    .array_reg_name(array, *idx)
                    .unwrap_or_else(|| format!("{array}{idx}"));
                Reg::new(&name)
            }
        }
    }
}

/// The symbolic state of one instruction run.
#[derive(Debug)]
pub struct SymState {
    /// Emitted trace events, in order.
    pub events: Vec<Event>,
    /// Path condition conjuncts (branch decisions and register-constraint
    /// assumptions).
    pub path: Vec<Expr>,
    /// Fresh-variable generator.
    pub vars: VarGen,
    /// Sorts of all generated variables (for the solver).
    pub sorts: HashMap<Var, Sort>,
    /// Cached current value per register cell (reads after the first, and
    /// reads after writes, consult this instead of emitting events).
    pub reg_cache: BTreeMap<RegKey, (Expr, u32)>,
    /// Registers for which an `AssumeReg` was already emitted.
    pub assumed: BTreeMap<RegKey, ()>,
    /// Branch decisions consumed so far (depth in the fork tree).
    pub depth: usize,
    /// Number of SMT feasibility queries issued.
    pub smt_queries: u64,
    /// Two-sided symbolic branches signalled to the driver (forks).
    pub branches_explored: u64,
    /// Branch sides discarded by SMT feasibility pruning.
    pub branches_pruned: u64,
    /// Mini-Sail expression evaluations performed symbolically.
    pub model_steps: u64,
    /// Model function invocations (entry plus user-to-user calls).
    pub model_calls: u64,
    /// Solver effort of the feasibility queries issued by this run.
    pub solver: SolverMetrics,
}

impl SymState {
    /// Fresh state with the variable counter starting above `first_var`.
    #[must_use]
    pub fn new(first_var: u32) -> Self {
        SymState {
            events: Vec::new(),
            path: Vec::new(),
            vars: VarGen::starting_at(first_var),
            sorts: HashMap::new(),
            reg_cache: BTreeMap::new(),
            assumed: BTreeMap::new(),
            depth: 0,
            smt_queries: 0,
            branches_explored: 0,
            branches_pruned: 0,
            model_steps: 0,
            model_calls: 0,
            solver: SolverMetrics::default(),
        }
    }

    /// Allocates a fresh variable of the given sort (no event emitted).
    pub fn fresh(&mut self, sort: Sort) -> Var {
        let v = self.vars.fresh();
        self.sorts.insert(v, sort);
        v
    }

    /// Allocates a fresh variable and emits its `DeclareConst`.
    pub fn declare(&mut self, sort: Sort) -> Var {
        let v = self.fresh(sort);
        self.events.push(Event::DeclareConst(v, sort));
        v
    }

    /// A sort oracle over all variables seen so far (including spec
    /// parameters installed by the driver).
    #[must_use]
    pub fn sort_of(&self, v: Var) -> Option<Sort> {
        self.sorts.get(&v).copied()
    }

    /// Simplifies an expression with the width oracle from [`SymState::sorts`].
    #[must_use]
    pub fn simp(&self, e: &Expr) -> Expr {
        let ws = |v: Var| match self.sorts.get(&v) {
            Some(Sort::BitVec(w)) => Some(*w),
            _ => None,
        };
        simplify_with(e, &ws)
    }

    /// Emits a `DefineConst` naming `e`, returning the name as an
    /// expression — unless `e` is already atomic (literal or variable).
    pub fn name_value(&mut self, e: Expr, sort: Sort) -> Expr {
        use islaris_smt::ExprKind;
        match e.kind() {
            ExprKind::Val(_) | ExprKind::Var(_) => e,
            _ => {
                let v = self.fresh(sort);
                self.events.push(Event::DefineConst(v, e));
                Expr::var(v)
            }
        }
    }
}

/// Convenience: a constant bitvector expression.
#[must_use]
pub fn const_bits(b: Bv) -> Expr {
    Expr::bits(b)
}
