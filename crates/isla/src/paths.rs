//! Per-path views of a trace: the initial-state variables a differential
//! oracle must concretize to replay one path concretely.
//!
//! A [`Trace`] is a tree; every root-to-leaf walk is one control-flow path
//! of the instruction. [`enumerate_paths`] lists the paths in
//! deterministic depth-first order (the index is the *path id* used for
//! coverage bookkeeping), and [`analyze_path`] splits one path's events
//! into the pieces a solver query needs: the path constraints, the sort of
//! every variable, and the provenance of every declared variable — a
//! register's initial value, a memory read's result, or an
//! `undefined_bits` fresh value.

use std::collections::{BTreeSet, HashMap};

use islaris_itl::{Event, Reg, Trace};
use islaris_smt::{Expr, Sort, Var};

/// Enumerates every root-to-leaf path of the trace in depth-first order
/// (`Cases` branches visited left to right). The returned index of a path
/// is its stable *path id*: deterministic for a given trace, so coverage
/// sets keyed on it are byte-comparable across runs.
#[must_use]
pub fn enumerate_paths(t: &Trace) -> Vec<Vec<Event>> {
    let mut out = Vec::new();
    let mut prefix = Vec::new();
    walk(t, &mut prefix, &mut out);
    out
}

fn walk(t: &Trace, prefix: &mut Vec<Event>, out: &mut Vec<Vec<Event>>) {
    match t {
        Trace::Nil => out.push(prefix.clone()),
        Trace::Cons(ev, rest) => {
            prefix.push(ev.clone());
            walk(rest, prefix, out);
            prefix.pop();
        }
        Trace::Cases(ts) => {
            for t in ts {
                walk(t, prefix, out);
            }
        }
    }
}

/// The solver-facing view of one linear path.
///
/// The three variable provenances partition the path's `declare-const`s:
/// a declared variable either stands for a register's initial value
/// (appears in a `ReadReg`), a memory read's result (appears as a
/// `ReadMem` value), or an `undefined_bits` result (appears in neither).
/// That partition is what lets a differential oracle build a *total*
/// concrete initial state from a solver model.
#[derive(Debug, Default)]
pub struct PathView {
    /// Path constraints: `Assert`/`Assume` predicates plus one equation
    /// per `define-const` (so a model assigns defined names consistently).
    pub constraints: Vec<Expr>,
    /// Sort of every variable on the path (declared, defined, or
    /// parameter).
    pub sorts: HashMap<Var, Sort>,
    /// First read of each register, in event order: the register's
    /// initial value (a fresh variable, or a concrete assumption).
    pub reg_inits: Vec<(Reg, Expr)>,
    /// Memory reads in event order: `(address, bytes, value)`.
    pub mem_reads: Vec<(Expr, u32, Expr)>,
    /// Declared variables bound by neither a register read nor a memory
    /// read: `undefined_bits` results, in declaration order.
    pub undefined: Vec<Var>,
}

/// Analyzes one path (as returned by [`enumerate_paths`]) into a
/// [`PathView`]. `params` supplies the sorts of free parameter variables
/// (symbolic opcodes); pass `&[]` for concrete opcodes.
#[must_use]
pub fn analyze_path(events: &[Event], params: &[(Var, Sort)]) -> PathView {
    let mut view = PathView {
        sorts: params.iter().copied().collect(),
        ..PathView::default()
    };
    let mut declared: Vec<Var> = Vec::new();
    let mut bound: BTreeSet<Var> = BTreeSet::new();
    let mut seen_regs: BTreeSet<String> = BTreeSet::new();
    for ev in events {
        match ev {
            Event::DeclareConst(v, s) => {
                view.sorts.insert(*v, *s);
                declared.push(*v);
            }
            Event::DefineConst(v, e) => {
                let sorts = view.sorts.clone();
                if let Ok(s) = e.sort(&|v| sorts.get(&v).copied()) {
                    view.sorts.insert(*v, s);
                }
                view.constraints.push(Expr::eq(Expr::var(*v), e.clone()));
            }
            Event::Assert(e) | Event::Assume(e) => view.constraints.push(e.clone()),
            Event::ReadReg(r, e) => {
                if seen_regs.insert(r.to_string()) {
                    if let Some(v) = e.as_var() {
                        bound.insert(v);
                    }
                    view.reg_inits.push((r.clone(), e.clone()));
                }
            }
            Event::ReadMem { value, addr, bytes } => {
                if let Some(v) = value.as_var() {
                    bound.insert(v);
                }
                view.mem_reads.push((addr.clone(), *bytes, value.clone()));
            }
            Event::AssumeReg(_, _) | Event::WriteReg(_, _) | Event::WriteMem { .. } => {}
        }
    }
    view.undefined = declared
        .into_iter()
        .filter(|v| !bound.contains(v))
        .collect();
    view
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn rd(name: &str, v: u32) -> Event {
        Event::ReadReg(Reg::new(name), Expr::var(Var(v)))
    }

    #[test]
    fn enumeration_is_depth_first_and_stable() {
        // ev0 ; Cases[ (a ; Cases[c, d]), b ]  → paths: [ev0,a,c] [ev0,a,d] [ev0,b]
        let leaf = |e: Event| Trace::Cons(e, Arc::new(Trace::Nil));
        let inner = Trace::Cons(
            Event::Assert(Expr::bool(true)),
            Arc::new(Trace::Cases(vec![leaf(rd("C", 2)), leaf(rd("D", 3))])),
        );
        let t = Trace::Cons(
            Event::DeclareConst(Var(0), Sort::BitVec(64)),
            Arc::new(Trace::Cases(vec![inner, leaf(rd("B", 1))])),
        );
        let paths = enumerate_paths(&t);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].len(), 3);
        assert!(matches!(&paths[0][2], Event::ReadReg(r, _) if r.to_string() == "C"));
        assert!(matches!(&paths[1][2], Event::ReadReg(r, _) if r.to_string() == "D"));
        assert_eq!(paths[2].len(), 2);
        assert!(matches!(&paths[2][1], Event::ReadReg(r, _) if r.to_string() == "B"));
        // Enumeration is deterministic.
        let again = enumerate_paths(&t);
        assert_eq!(paths.len(), again.len());
    }

    #[test]
    fn analysis_partitions_declared_variables() {
        let events = vec![
            Event::DeclareConst(Var(0), Sort::BitVec(64)),
            Event::ReadReg(Reg::new("R1"), Expr::var(Var(0))),
            Event::DeclareConst(Var(1), Sort::BitVec(8)),
            Event::ReadMem {
                value: Expr::var(Var(1)),
                addr: Expr::var(Var(0)),
                bytes: 1,
            },
            Event::DeclareConst(Var(2), Sort::BitVec(64)), // undefined_bits
            Event::DefineConst(Var(3), Expr::add(Expr::var(Var(0)), Expr::bv(64, 4))),
            Event::Assert(Expr::eq(Expr::var(Var(3)), Expr::bv(64, 8))),
            Event::WriteReg(Reg::new("R2"), Expr::var(Var(3))),
        ];
        let view = analyze_path(&events, &[]);
        assert_eq!(view.reg_inits.len(), 1);
        assert_eq!(view.reg_inits[0].0.to_string(), "R1");
        assert_eq!(view.mem_reads.len(), 1);
        assert_eq!(view.mem_reads[0].1, 1);
        assert_eq!(view.undefined, vec![Var(2)]);
        // One define equation + one assert.
        assert_eq!(view.constraints.len(), 2);
        assert_eq!(view.sorts.get(&Var(3)), Some(&Sort::BitVec(64)));
    }

    #[test]
    fn repeated_reads_keep_only_the_first_initial() {
        // A second ReadReg of the same register (impossible for the
        // executor, but allowed by the format) must not add a second
        // initial.
        let events = vec![
            Event::DeclareConst(Var(0), Sort::BitVec(64)),
            rd("R0", 0),
            rd("R0", 0),
        ];
        let view = analyze_path(&events, &[]);
        assert_eq!(view.reg_inits.len(), 1);
    }
}
