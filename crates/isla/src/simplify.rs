//! Trace simplification: expression simplification, dead-definition
//! elimination, and deterministic renumbering — the trace-level
//! improvements to Isla listed at the end of §3 of the paper.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use islaris_itl::{Event, Trace};
use islaris_smt::{simplify_with, Expr, Sort, Var};

/// Simplifies a trace: simplify all expressions (with the widths of
/// declared variables), drop unused `declare-const`/`define-const`s, and
/// renumber the remaining variables in first-occurrence order.
#[must_use]
pub fn simplify_trace(t: &Trace, sorts: &HashMap<Var, Sort>) -> Trace {
    let ws = |v: Var| match sorts.get(&v) {
        Some(Sort::BitVec(w)) => Some(*w),
        _ => None,
    };
    let mut out = map_exprs(t, &|e| simplify_with(e, &ws));
    // Dead definition elimination to a fixpoint.
    loop {
        let mut used = BTreeSet::new();
        collect_uses(&out, &mut used);
        let before = count_defs(&out);
        out = drop_dead(&out, &used);
        if count_defs(&out) == before {
            break;
        }
    }
    renumber(&out)
}

fn map_exprs(t: &Trace, f: &dyn Fn(&Expr) -> Expr) -> Trace {
    match t {
        Trace::Nil => Trace::Nil,
        Trace::Cons(ev, rest) => {
            let ev = match ev {
                Event::ReadReg(r, v) => Event::ReadReg(r.clone(), f(v)),
                Event::WriteReg(r, v) => Event::WriteReg(r.clone(), f(v)),
                Event::AssumeReg(r, v) => Event::AssumeReg(r.clone(), f(v)),
                Event::ReadMem { value, addr, bytes } => Event::ReadMem {
                    value: f(value),
                    addr: f(addr),
                    bytes: *bytes,
                },
                Event::WriteMem { addr, value, bytes } => Event::WriteMem {
                    addr: f(addr),
                    value: f(value),
                    bytes: *bytes,
                },
                Event::Assume(e) => Event::Assume(f(e)),
                Event::Assert(e) => Event::Assert(f(e)),
                Event::DeclareConst(v, s) => Event::DeclareConst(*v, *s),
                Event::DefineConst(v, e) => Event::DefineConst(*v, f(e)),
            };
            Trace::Cons(ev, Arc::new(map_exprs(rest, f)))
        }
        Trace::Cases(ts) => Trace::Cases(ts.iter().map(|t| map_exprs(t, f)).collect()),
    }
}

/// Collects variables used anywhere other than their own binder.
fn collect_uses(t: &Trace, used: &mut BTreeSet<Var>) {
    match t {
        Trace::Nil => {}
        Trace::Cons(ev, rest) => {
            match ev {
                Event::ReadReg(_, v) | Event::WriteReg(_, v) | Event::AssumeReg(_, v) => {
                    v.free_vars_into(used);
                }
                Event::ReadMem { value, addr, .. } | Event::WriteMem { addr, value, .. } => {
                    value.free_vars_into(used);
                    addr.free_vars_into(used);
                }
                Event::Assume(e) | Event::Assert(e) => e.free_vars_into(used),
                Event::DeclareConst(_, _) => {}
                Event::DefineConst(_, e) => e.free_vars_into(used),
            }
            collect_uses(rest, used);
        }
        Trace::Cases(ts) => {
            for t in ts {
                collect_uses(t, used);
            }
        }
    }
}

fn count_defs(t: &Trace) -> usize {
    match t {
        Trace::Nil => 0,
        Trace::Cons(ev, rest) => {
            let here = usize::from(matches!(
                ev,
                Event::DeclareConst(_, _) | Event::DefineConst(_, _)
            ));
            here + count_defs(rest)
        }
        Trace::Cases(ts) => ts.iter().map(count_defs).sum(),
    }
}

fn drop_dead(t: &Trace, used: &BTreeSet<Var>) -> Trace {
    match t {
        Trace::Nil => Trace::Nil,
        Trace::Cons(ev, rest) => {
            let dead = match ev {
                Event::DeclareConst(v, _) | Event::DefineConst(v, _) => !used.contains(v),
                _ => false,
            };
            if dead {
                drop_dead(rest, used)
            } else {
                Trace::Cons(ev.clone(), Arc::new(drop_dead(rest, used)))
            }
        }
        Trace::Cases(ts) => Trace::Cases(ts.iter().map(|t| drop_dead(t, used)).collect()),
    }
}

/// Renumbers bound variables in first-occurrence (pre-order) order,
/// leaving free variables (spec parameters) untouched.
fn renumber(t: &Trace) -> Trace {
    // Collect bound variables in pre-order.
    let mut bound = Vec::new();
    collect_bound(t, &mut bound);
    let free_guard: BTreeSet<Var> = bound.iter().copied().collect();
    // Allocate new indices after the maximum free variable to avoid
    // collisions with parameters.
    let mut all_vars = BTreeSet::new();
    collect_all_vars(t, &mut all_vars);
    let max_free = all_vars
        .iter()
        .filter(|v| !free_guard.contains(v))
        .map(|v| v.0 + 1)
        .max()
        .unwrap_or(0);
    let map: HashMap<Var, Var> = bound
        .iter()
        .enumerate()
        .map(|(i, v)| (*v, Var(max_free + i as u32)))
        .collect();
    map_vars(t, &|v| map.get(&v).copied().unwrap_or(v))
}

fn collect_bound(t: &Trace, out: &mut Vec<Var>) {
    match t {
        Trace::Nil => {}
        Trace::Cons(ev, rest) => {
            if let Event::DeclareConst(v, _) | Event::DefineConst(v, _) = ev {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            collect_bound(rest, out);
        }
        Trace::Cases(ts) => {
            for t in ts {
                collect_bound(t, out);
            }
        }
    }
}

fn collect_all_vars(t: &Trace, out: &mut BTreeSet<Var>) {
    collect_uses(t, out);
    let mut bound = Vec::new();
    collect_bound(t, &mut bound);
    out.extend(bound);
}

fn map_vars(t: &Trace, f: &dyn Fn(Var) -> Var) -> Trace {
    let subst = |e: &Expr| e.subst(&|v| Some(Expr::var(f(v))));
    match t {
        Trace::Nil => Trace::Nil,
        Trace::Cons(ev, rest) => {
            let ev = match ev {
                Event::DeclareConst(v, s) => Event::DeclareConst(f(*v), *s),
                Event::DefineConst(v, e) => Event::DefineConst(f(*v), subst(e)),
                other => other.subst(&|v| Some(Expr::var(f(v)))),
            };
            Trace::Cons(ev, Arc::new(map_vars(rest, f)))
        }
        Trace::Cases(ts) => Trace::Cases(ts.iter().map(|t| map_vars(t, f)).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use islaris_itl::Reg;

    #[test]
    fn dead_definitions_are_dropped() {
        let t = Trace::linear([
            Event::DeclareConst(Var(0), Sort::BitVec(64)),
            Event::DefineConst(Var(1), Expr::add(Expr::var(Var(0)), Expr::bv(64, 1))),
            Event::DeclareConst(Var(2), Sort::BitVec(64)), // dead
            Event::DefineConst(Var(3), Expr::var(Var(2))), // dead after v2 dies? no: uses v2
            Event::WriteReg(Reg::new("R0"), Expr::var(Var(1))),
        ]);
        let simplified = simplify_trace(&t, &HashMap::new());
        // v3 is unused → dropped; then v2 unused → dropped.
        assert_eq!(simplified.event_count(), 3);
    }

    #[test]
    fn renumbering_is_deterministic_and_dense() {
        let t = Trace::linear([
            Event::DeclareConst(Var(17), Sort::BitVec(64)),
            Event::DefineConst(Var(99), Expr::add(Expr::var(Var(17)), Expr::bv(64, 4))),
            Event::WriteReg(Reg::new("_PC"), Expr::var(Var(99))),
        ]);
        let s = simplify_trace(&t, &HashMap::new());
        match &s {
            Trace::Cons(Event::DeclareConst(v, _), rest) => {
                assert_eq!(*v, Var(0));
                match &**rest {
                    Trace::Cons(Event::DefineConst(v2, _), _) => assert_eq!(*v2, Var(1)),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn free_parameters_survive() {
        // Var(5) is free (a spec parameter): must not be renamed or dropped.
        let t = Trace::linear([
            Event::DefineConst(Var(9), Expr::add(Expr::var(Var(5)), Expr::bv(64, 4))),
            Event::WriteReg(Reg::new("R0"), Expr::var(Var(9))),
        ]);
        let s = simplify_trace(&t, &HashMap::new());
        let mut used = BTreeSet::new();
        collect_uses(&s, &mut used);
        assert!(used.contains(&Var(5)), "parameter must stay free");
    }

    #[test]
    fn expressions_are_simplified() {
        let t = Trace::linear([Event::Assert(Expr::eq(
            Expr::add(Expr::bv(8, 1), Expr::bv(8, 1)),
            Expr::bv(8, 2),
        ))]);
        let s = simplify_trace(&t, &HashMap::new());
        match &s {
            Trace::Cons(Event::Assert(e), _) => assert_eq!(e.as_bool(), Some(true)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
