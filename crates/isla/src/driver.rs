//! The exploration driver: builds the full `Cases` tree for one opcode by
//! deterministic replay, and assembles instruction maps for programs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use islaris_itl::{Event, Trace};
use islaris_smt::{Expr, SolverMetrics, Sort, Var};

use crate::exec::{IslaConfig, IslaError, RunStatus, SymExec};
use crate::simplify::simplify_trace;

/// An opcode to trace: fully concrete, or partially symbolic (the paper's
/// pKVM relocation patching uses `movz`/`movk` with symbolic immediates).
pub enum Opcode {
    /// A concrete 32-bit opcode.
    Concrete(u32),
    /// A partially symbolic opcode expression (32 bits wide; typically a
    /// `concat` of literal fields and parameter variables), with the
    /// parameter variables and sorts. Parameters stay free in the trace.
    Symbolic {
        /// The 32-bit opcode expression.
        expr: Expr,
        /// Free parameters of the opcode (and of the resulting trace).
        params: Vec<(Var, Sort)>,
        /// Extra assumptions over the parameters, in force during
        /// feasibility pruning (e.g. constraining an immediate's range).
        assumptions: Vec<Expr>,
    },
}

impl Opcode {
    fn expr(&self) -> Expr {
        match self {
            Opcode::Concrete(op) => Expr::bv(32, u128::from(*op)),
            Opcode::Symbolic { expr, .. } => expr.clone(),
        }
    }

    fn params(&self) -> &[(Var, Sort)] {
        match self {
            Opcode::Concrete(_) => &[],
            Opcode::Symbolic { params, .. } => params,
        }
    }

    fn assumptions(&self) -> &[Expr] {
        match self {
            Opcode::Concrete(_) => &[],
            Opcode::Symbolic { assumptions, .. } => assumptions,
        }
    }
}

/// Statistics from tracing one opcode.
///
/// Every field except [`IslaStats::time`] is a deterministic function of
/// the `(opcode, config)` pair — the trace cache replays these verbatim on
/// hits, so aggregates are byte-identical across worker counts and cache
/// states. Only `time` is wall-clock and excluded from stable output.
#[derive(Debug, Clone, Default)]
pub struct IslaStats {
    /// Symbolic execution runs (paths explored, including replays).
    pub runs: u64,
    /// SMT feasibility queries issued.
    pub smt_queries: u64,
    /// Wall-clock time.
    pub time: Duration,
    /// Events in the final simplified trace.
    pub events: usize,
    /// Two-sided forks signalled to the driver.
    pub branches_explored: u64,
    /// Branch sides discarded by feasibility pruning.
    pub branches_pruned: u64,
    /// Mini-Sail expression evaluations performed symbolically.
    pub model_steps: u64,
    /// Model function invocations.
    pub model_calls: u64,
    /// Solver effort of the feasibility queries.
    pub solver: SolverMetrics,
}

impl IslaStats {
    /// Adds every counter (and the wall time) of `other` into `self`.
    pub fn absorb(&mut self, other: &IslaStats) {
        self.runs += other.runs;
        self.smt_queries += other.smt_queries;
        self.time += other.time;
        self.events += other.events;
        self.branches_explored += other.branches_explored;
        self.branches_pruned += other.branches_pruned;
        self.model_steps += other.model_steps;
        self.model_calls += other.model_calls;
        self.solver.absorb(&other.solver);
    }
}

/// A generated trace plus metadata.
pub struct TraceResult {
    /// The simplified trace.
    pub trace: Trace,
    /// Free parameter variables (for symbolic opcodes).
    pub params: Vec<(Var, Sort)>,
    /// Statistics.
    pub stats: IslaStats,
}

const MAX_PATHS: u64 = 512;

/// Symbolically executes one opcode under the configuration, producing its
/// Isla trace (the `Isla` box of Fig. 1).
pub fn trace_opcode(cfg: &IslaConfig, opcode: &Opcode) -> Result<TraceResult, IslaError> {
    let start = Instant::now();
    let params: Vec<(Var, Sort)> = opcode.params().to_vec();
    let first_var = params.iter().map(|(v, _)| v.0 + 1).max().unwrap_or(0);
    let mut stats = IslaStats::default();
    let mut forced: Vec<bool> = Vec::new();
    let raw = build(cfg, opcode, &params, first_var, &mut forced, 0, &mut stats)?;
    let sorts = collect_sorts(&raw, &params);
    let trace = simplify_trace(&raw, &sorts);
    stats.time = start.elapsed();
    stats.events = trace.event_count();
    Ok(TraceResult {
        trace,
        params,
        stats,
    })
}

fn collect_sorts(t: &Trace, params: &[(Var, Sort)]) -> std::collections::HashMap<Var, Sort> {
    let mut sorts: std::collections::HashMap<Var, Sort> = params.iter().copied().collect();
    collect_sorts_into(t, &mut sorts);
    sorts
}

fn collect_sorts_into(t: &Trace, out: &mut std::collections::HashMap<Var, Sort>) {
    match t {
        Trace::Nil => {}
        Trace::Cons(ev, rest) => {
            if let Event::DeclareConst(v, s) = ev {
                out.insert(*v, *s);
            }
            collect_sorts_into(rest, out);
        }
        Trace::Cases(ts) => {
            for t in ts {
                collect_sorts_into(t, out);
            }
        }
    }
}

/// Recursive tree construction by replay: one run per leaf plus one per
/// internal node of the `Cases` tree.
fn build(
    cfg: &IslaConfig,
    opcode: &Opcode,
    params: &[(Var, Sort)],
    first_var: u32,
    forced: &mut Vec<bool>,
    start: usize,
    stats: &mut IslaStats,
) -> Result<Trace, IslaError> {
    stats.runs += 1;
    if stats.runs > MAX_PATHS {
        return Err(IslaError::TooManyPaths);
    }
    let exec = SymExec::new(cfg, forced, opcode.assumptions(), first_var, params)?;
    let out = exec.run(opcode.expr())?;
    stats.smt_queries += out.smt_queries;
    stats.branches_explored += out.branches_explored;
    stats.branches_pruned += out.branches_pruned;
    stats.model_steps += out.model_steps;
    stats.model_calls += out.model_calls;
    stats.solver.absorb(&out.solver);
    match out.status {
        RunStatus::Completed => Ok(Trace::linear(out.events[start..].to_vec())),
        RunStatus::Dead => {
            // The path condition is unsatisfiable: mark the branch vacuous.
            Ok(Trace::linear(vec![Event::Assert(Expr::bool(false))]))
        }
        RunStatus::Pending(cond) => {
            let fork_at = out.events.len();
            forced.push(true);
            let t = build(cfg, opcode, params, first_var, forced, fork_at, stats)?;
            forced.pop();
            forced.push(false);
            let f = build(cfg, opcode, params, first_var, forced, fork_at, stats)?;
            forced.pop();
            let t = Trace::Cons(Event::Assert(cond.clone()), Arc::new(t));
            let f = Trace::Cons(Event::Assert(Expr::not(cond)), Arc::new(f));
            let shared = out.events[start..fork_at].to_vec();
            Ok(Trace::from_events(shared, Trace::Cases(vec![t, f])))
        }
    }
}

/// A program's instruction traces: the Coq-embedding analogue of the
/// Islaris frontend (one trace per opcode, installed at its address).
pub struct ProgramTraces {
    /// Address → trace.
    pub instrs: std::collections::BTreeMap<u64, Arc<Trace>>,
    /// Aggregated statistics.
    pub stats: IslaStats,
}

/// Traces every instruction of a program given as `(address, opcode)`
/// pairs, all under the same configuration.
pub fn trace_program(cfg: &IslaConfig, program: &[(u64, u32)]) -> Result<ProgramTraces, IslaError> {
    let mut instrs = std::collections::BTreeMap::new();
    let mut stats = IslaStats::default();
    for (addr, op) in program {
        let r = trace_opcode(cfg, &Opcode::Concrete(*op))?;
        stats.absorb(&r.stats);
        instrs.insert(*addr, Arc::new(r.trace));
    }
    Ok(ProgramTraces { instrs, stats })
}
