//! A persistent, content-addressed store for memoised symbolic traces.
//!
//! [`crate::TraceCache`] makes tracing a pure function of *(opcode,
//! architecture, configuration)* — this module gives that function a
//! disk-backed memo so the expensive analysis survives the process. The
//! address of an entry is the same rendered fingerprint the in-memory
//! cache uses ([`crate::cache::config_fingerprint`] ×
//! [`crate::cache::opcode_fingerprint`]); the file name is the FNV-1a
//! hash of that key, and the full key is stored *inside* the entry and
//! compared on load, so a hash collision degrades to a miss, never to a
//! wrong trace.
//!
//! Soundness does not rest on the disk: every entry is sealed with a
//! checksum header ([`islaris_obs::store`]) and re-verified on load —
//! bad magic, truncation, a flipped bit, an unparseable payload, or a
//! key mismatch all count as a **sound miss**: the corrupt file is
//! evicted and the trace recomputed from the ISA model. Even a
//! maliciously consistent entry can only change *performance*, not
//! *verdicts*: downstream proofs re-check everything and certificates
//! are replayed by the independent checker.
//!
//! Writes are atomic (`tmp` + `rename`), so N processes can share one
//! store directory; the worst race is two processes computing the same
//! trace and one overwriting the other's identical entry.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use islaris_itl::{parse_trace, print_trace};
use islaris_obs::json::{obj, parse_json, Json};
use islaris_obs::store::{
    open, seal, solver_metrics_from_json, solver_metrics_to_json, u64_json, write_atomic,
};
use islaris_obs::{fnv1a, StoreMetrics};
use islaris_smt::{Sort, Var};

use crate::cache::CachedTrace;
use crate::driver::IslaStats;

/// Magic line of a sealed trace entry.
pub const TRACE_MAGIC: &str = "islaris-store/v1 trace";

/// A directory of sealed trace entries, one file per cache key.
pub struct TraceStore {
    dir: PathBuf,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    evictions: AtomicU64,
    write_errors: AtomicU64,
}

impl TraceStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the directory.
    pub fn open(dir: &Path) -> io::Result<TraceStore> {
        fs::create_dir_all(dir)?;
        Ok(TraceStore {
            dir: dir.to_path_buf(),
            disk_hits: AtomicU64::new(0),
            disk_misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
        })
    }

    /// The on-disk file holding `key`'s entry.
    #[must_use]
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.trace", fnv1a(key.as_bytes())))
    }

    /// Loads and verifies the entry for `key`. Any defect — missing
    /// file, bad seal, unparseable payload, key mismatch — is a miss;
    /// defective files (except benign key collisions) are evicted.
    pub fn load(&self, key: &str) -> Option<Arc<CachedTrace>> {
        let path = self.path_for(key);
        let Ok(data) = fs::read_to_string(&path) else {
            self.disk_misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        match decode_entry(&data, key) {
            Decoded::Entry(entry) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::new(entry))
            }
            Decoded::OtherKey => {
                // A valid entry for a colliding key: not ours, not corrupt.
                self.disk_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Decoded::Corrupt => {
                let _ = fs::remove_file(&path);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.disk_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Seals and atomically writes `entry` under `key`. Write failures
    /// are counted, not propagated: persistence is an optimisation and
    /// must never fail a verification.
    pub fn save(&self, key: &str, entry: &CachedTrace) {
        let sealed = seal(TRACE_MAGIC, &encode_entry(key, entry));
        if write_atomic(&self.path_for(key), sealed.as_bytes()).is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Disk-side traffic counters.
    #[must_use]
    pub fn metrics(&self) -> StoreMetrics {
        StoreMetrics {
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.disk_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }
}

enum Decoded {
    Entry(CachedTrace),
    OtherKey,
    Corrupt,
}

fn encode_entry(key: &str, entry: &CachedTrace) -> String {
    let params = entry
        .params
        .iter()
        .map(|(v, s)| Json::Arr(vec![Json::Num(f64::from(v.0)), Json::Str(s.to_string())]))
        .collect();
    obj(vec![
        ("key", Json::Str(key.to_string())),
        ("params", Json::Arr(params)),
        ("stats", stats_to_json(&entry.stats)),
        ("trace", Json::Str(print_trace(&entry.trace))),
    ])
    .render()
}

fn decode_entry(data: &str, key: &str) -> Decoded {
    let Ok(payload) = open(TRACE_MAGIC, data) else {
        return Decoded::Corrupt;
    };
    let Ok(j) = parse_json(&payload) else {
        return Decoded::Corrupt;
    };
    match j.get("key").and_then(Json::as_str) {
        Some(stored) if stored == key => {}
        Some(_) => return Decoded::OtherKey,
        None => return Decoded::Corrupt,
    }
    let Some(entry) = entry_from_json(&j) else {
        return Decoded::Corrupt;
    };
    Decoded::Entry(entry)
}

fn entry_from_json(j: &Json) -> Option<CachedTrace> {
    let trace = parse_trace(j.get("trace")?.as_str()?).ok()?;
    let mut params = Vec::new();
    for p in j.get("params")?.as_array()? {
        let pair = p.as_array()?;
        let [v, s] = pair else { return None };
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let var = Var(v.as_u64()? as u32);
        params.push((var, parse_sort(s.as_str()?)?));
    }
    Some(CachedTrace {
        trace: Arc::new(trace),
        params,
        stats: stats_from_json(j.get("stats")?)?,
    })
}

/// Inverse of `Sort`'s `Display` (`Bool` / `(_ BitVec n)`).
fn parse_sort(s: &str) -> Option<Sort> {
    if s == "Bool" {
        return Some(Sort::Bool);
    }
    let n = s.strip_prefix("(_ BitVec ")?.strip_suffix(')')?;
    Some(Sort::BitVec(n.parse().ok()?))
}

fn stats_to_json(s: &IslaStats) -> Json {
    #[allow(clippy::cast_possible_truncation)]
    let time_ns = s.time.as_nanos() as u64;
    obj(vec![
        ("runs", u64_json(s.runs)),
        ("smt_queries", u64_json(s.smt_queries)),
        ("time_ns", u64_json(time_ns)),
        ("events", u64_json(s.events as u64)),
        ("branches_explored", u64_json(s.branches_explored)),
        ("branches_pruned", u64_json(s.branches_pruned)),
        ("model_steps", u64_json(s.model_steps)),
        ("model_calls", u64_json(s.model_calls)),
        ("solver", solver_metrics_to_json(&s.solver)),
    ])
}

fn stats_from_json(j: &Json) -> Option<IslaStats> {
    let field = |k: &str| j.get(k).and_then(Json::as_u64);
    Some(IslaStats {
        runs: field("runs")?,
        smt_queries: field("smt_queries")?,
        time: Duration::from_nanos(field("time_ns")?),
        events: usize::try_from(field("events")?).ok()?,
        branches_explored: field("branches_explored")?,
        branches_pruned: field("branches_pruned")?,
        model_steps: field("model_steps")?,
        model_calls: field("model_calls")?,
        solver: solver_metrics_from_json(j.get("solver")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{trace_opcode, Opcode};
    use crate::exec::IslaConfig;
    use islaris_models::ARM;

    const ADD_SP: u32 = 0x9101_03ff; // add sp, sp, #0x40

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("islaris-tstore-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sample() -> (String, CachedTrace) {
        let cfg = IslaConfig::new(ARM);
        let r = trace_opcode(&cfg, &Opcode::Concrete(ADD_SP)).unwrap();
        (
            "test-key".to_string(),
            CachedTrace {
                trace: Arc::new(r.trace),
                params: r.params,
                stats: r.stats,
            },
        )
    }

    #[test]
    fn save_then_load_round_trips_trace_params_and_stats() {
        let dir = tmp_dir("rt");
        let store = TraceStore::open(&dir).unwrap();
        let (key, entry) = sample();
        store.save(&key, &entry);
        let got = store.load(&key).expect("saved entry loads");
        assert_eq!(*got.trace, *entry.trace);
        assert_eq!(got.params, entry.params);
        assert_eq!(got.stats.runs, entry.stats.runs);
        assert_eq!(got.stats.smt_queries, entry.stats.smt_queries);
        assert_eq!(got.stats.time, entry.stats.time);
        assert_eq!(got.stats.solver, entry.stats.solver);
        let m = store.metrics();
        assert_eq!((m.disk_hits, m.disk_misses, m.evictions), (1, 0, 0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_is_evicted_as_a_sound_miss() {
        let dir = tmp_dir("trunc");
        let store = TraceStore::open(&dir).unwrap();
        let (key, entry) = sample();
        store.save(&key, &entry);
        let path = store.path_for(&key);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(store.load(&key).is_none(), "truncation must miss");
        assert!(!path.exists(), "corrupt entry must be evicted");
        let m = store.metrics();
        assert_eq!((m.disk_hits, m.evictions), (0, 1));
        // Recompute-and-save heals the store.
        store.save(&key, &entry);
        assert!(store.load(&key).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flipped_entry_is_evicted_as_a_sound_miss() {
        let dir = tmp_dir("flip");
        let store = TraceStore::open(&dir).unwrap();
        let (key, entry) = sample();
        store.save(&key, &entry);
        let path = store.path_for(&key);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() * 3 / 4;
        bytes[mid] ^= 0x20;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(&key).is_none(), "bit flip must miss");
        assert!(!path.exists(), "corrupt entry must be evicted");
        assert_eq!(store.metrics().evictions, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn colliding_key_misses_without_evicting_the_resident_entry() {
        let dir = tmp_dir("collide");
        let store = TraceStore::open(&dir).unwrap();
        let (key, entry) = sample();
        store.save(&key, &entry);
        let path = store.path_for(&key);
        // Simulate a colliding key by asking for a different key at the
        // same path: rewrite the file under the other key's name.
        let other = store.path_for("other-key");
        fs::rename(&path, &other).unwrap();
        assert!(store.load("other-key").is_none(), "key mismatch is a miss");
        assert!(other.exists(), "a valid foreign entry is not evicted");
        assert_eq!(store.metrics().evictions, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sort_rendering_round_trips() {
        for s in [Sort::Bool, Sort::BitVec(1), Sort::BitVec(64)] {
            assert_eq!(parse_sort(&s.to_string()), Some(s));
        }
        assert_eq!(parse_sort("(_ BitVec x)"), None);
        assert_eq!(parse_sort("Int"), None);
    }
}
