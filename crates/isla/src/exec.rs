//! The symbolic evaluator: mini-Sail over symbolic values.
//!
//! One *run* symbolically executes a single instruction along one path,
//! emitting ITL events. Branches on symbolic conditions are resolved by
//! forced decisions (supplied by the driver's tree exploration), by SMT
//! feasibility pruning (the paper's removal of "irrelevant complexity"),
//! or — when both sides are feasible and no decision is forced — by
//! signalling a fork to the driver.

use std::collections::HashMap;
use std::fmt;

use islaris_bv::Bv;
use islaris_itl::Event;
use islaris_sail::{Binop, CheckedModel, Expr as SExpr, LValue, Pattern, Stmt, Ty, Unop};
use islaris_smt::{
    maybe_sat_metered, BvBinop, BvCmp, BvUnop, Expr, SolverConfig, SolverMetrics, Sort, Var,
};

use crate::sym::{RegKey, SymState, SymVal};

/// Errors of the symbolic executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IslaError {
    /// A register-array index was symbolic (Isla specialises on concrete
    /// opcodes; indices must be determined).
    SymbolicIndex(String),
    /// `UInt`/`SInt` applied to a symbolic value used as an integer.
    SymbolicInt(String),
    /// Recursion/call depth exceeded.
    DepthExceeded(String),
    /// Fork explosion guard hit.
    TooManyPaths,
    /// Anything else (unknown function at runtime etc.; checker bugs).
    Internal(String),
}

impl fmt::Display for IslaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IslaError::SymbolicIndex(w) => write!(f, "symbolic register index in {w}"),
            IslaError::SymbolicInt(w) => write!(f, "symbolic integer value in {w}"),
            IslaError::DepthExceeded(w) => write!(f, "call depth exceeded in {w}"),
            IslaError::TooManyPaths => write!(f, "too many symbolic execution paths"),
            IslaError::Internal(w) => write!(f, "internal error: {w}"),
        }
    }
}

impl std::error::Error for IslaError {}

/// Control signals that unwind the evaluator.
pub enum Interrupt {
    /// `exit()` — the instruction terminated early.
    Exit,
    /// A two-sided symbolic branch at the exploration frontier.
    Fork(Expr),
    /// The current path's condition set is unsatisfiable.
    Dead,
    /// A hard error.
    Error(IslaError),
}

type R = Result<SymVal, Interrupt>;

/// A register-constraint assumption: given the fresh variable standing for
/// the register's value, produce the assumed predicate (e.g. the paper's
/// relaxed `SPSR_EL2 = a ∨ SPSR_EL2 = b` constraint for `eret`).
pub type ConstraintFn = Box<dyn Fn(&Expr) -> Expr + Send + Sync>;

/// Configuration for symbolic execution: the architecture plus the
/// constraints on the system state (the "default constraints" and
/// "instruction-specific constraints" of Fig. 1).
pub struct IslaConfig {
    /// Architecture (model, PC name, array naming).
    pub arch: islaris_models::Arch,
    /// Registers assumed to hold concrete values (keyed by ITL name, e.g.
    /// `PSTATE.EL`, `SP_EL2`, `R0`). Reads yield the value and record
    /// `AssumeReg`.
    pub reg_values: Vec<(String, Bv)>,
    /// Registers assumed to satisfy a predicate; reads yield a fresh
    /// variable and record `Assume`.
    pub reg_constraints: Vec<(String, ConstraintFn)>,
    /// Solver configuration for feasibility pruning.
    pub solver: SolverConfig,
}

impl IslaConfig {
    /// A configuration with no assumptions.
    #[must_use]
    pub fn new(arch: islaris_models::Arch) -> Self {
        IslaConfig {
            arch,
            reg_values: Vec::new(),
            reg_constraints: Vec::new(),
            solver: SolverConfig::new(),
        }
    }

    /// Adds a concrete register assumption.
    #[must_use]
    pub fn assume_reg(mut self, name: &str, value: Bv) -> Self {
        self.reg_values.push((name.to_owned(), value));
        self
    }

    /// Adds a predicate register assumption.
    #[must_use]
    pub fn constrain_reg(
        mut self,
        name: &str,
        constraint: impl Fn(&Expr) -> Expr + Send + Sync + 'static,
    ) -> Self {
        self.reg_constraints
            .push((name.to_owned(), Box::new(constraint)));
        self
    }
}

const MAX_CALL_DEPTH: u32 = 64;

/// Status of one run.
pub enum RunStatus {
    /// The instruction completed (normally or via `exit()`).
    Completed,
    /// A fork is required on the given condition.
    Pending(Expr),
    /// The path is infeasible.
    Dead,
}

/// Result of one run.
pub struct RunOut {
    /// Events emitted along this path (up to the fork, if pending).
    pub events: Vec<Event>,
    /// How the run ended.
    pub status: RunStatus,
    /// SMT feasibility queries issued.
    pub smt_queries: u64,
    /// Two-sided forks signalled to the driver.
    pub branches_explored: u64,
    /// Branch sides discarded by feasibility pruning.
    pub branches_pruned: u64,
    /// Mini-Sail expression evaluations.
    pub model_steps: u64,
    /// Model function invocations.
    pub model_calls: u64,
    /// Solver effort of the feasibility queries.
    pub solver: SolverMetrics,
    /// The variable counter after the run (for deterministic renumbering).
    pub next_var: u32,
}

/// One symbolic execution run of the model's entry function.
pub struct SymExec<'a> {
    cfg: &'a IslaConfig,
    cm: &'a CheckedModel,
    forced: &'a [bool],
    /// Extra assumptions already in force (spec parameters' constraints).
    pre_path: &'a [Expr],
    st: SymState,
    consts: HashMap<String, SymVal>,
}

impl<'a> SymExec<'a> {
    /// Creates a run. `first_var` must be above any parameter variables;
    /// `param_sorts` declares those parameters' sorts for the solver.
    pub fn new(
        cfg: &'a IslaConfig,
        forced: &'a [bool],
        pre_path: &'a [Expr],
        first_var: u32,
        param_sorts: &[(Var, Sort)],
    ) -> Result<Self, IslaError> {
        let cm = cfg.arch.model();
        let mut st = SymState::new(first_var);
        for (v, s) in param_sorts {
            st.sorts.insert(*v, *s);
        }
        let mut exec = SymExec {
            cfg,
            cm,
            forced,
            pre_path,
            st,
            consts: HashMap::new(),
        };
        // Global constants are closed literal expressions; evaluate once.
        for c in &cm.model.consts.clone() {
            let mut env = HashMap::new();
            let v = match exec.eval(&c.init, &mut env, 0) {
                Ok(v) => v,
                Err(Interrupt::Error(e)) => return Err(e),
                Err(_) => {
                    return Err(IslaError::Internal(format!(
                        "effectful constant initialiser `{}`",
                        c.name
                    )))
                }
            };
            exec.consts.insert(c.name.clone(), v);
        }
        Ok(exec)
    }

    /// Runs the entry function on the (possibly symbolic) opcode.
    pub fn run(mut self, opcode_expr: Expr) -> Result<RunOut, IslaError> {
        let entry = self.cfg.arch.entry;
        let Some(f) = self.cm.model.function(entry) else {
            return Err(IslaError::Internal(format!("no entry function `{entry}`")));
        };
        if f.params.len() != 1 {
            return Err(IslaError::Internal(
                "entry function must take the opcode".into(),
            ));
        }
        let mut env: HashMap<String, SymVal> = HashMap::new();
        env.insert(f.params[0].0.clone(), SymVal::Bits(opcode_expr, 32));
        self.st.model_calls += 1;
        let body = f.body.clone();
        let status = match self.eval(&body, &mut env, 0) {
            Ok(_) | Err(Interrupt::Exit) => RunStatus::Completed,
            Err(Interrupt::Fork(cond)) => RunStatus::Pending(cond),
            Err(Interrupt::Dead) => RunStatus::Dead,
            Err(Interrupt::Error(e)) => return Err(e),
        };
        Ok(RunOut {
            events: self.st.events,
            status,
            smt_queries: self.st.smt_queries,
            branches_explored: self.st.branches_explored,
            branches_pruned: self.st.branches_pruned,
            model_steps: self.st.model_steps,
            model_calls: self.st.model_calls,
            solver: self.st.solver,
            next_var: self.st.vars.peek(),
        })
    }

    // ----- branching -----

    /// Resolves a boolean condition to a concrete decision.
    fn decide(&mut self, cond: &Expr) -> Result<bool, Interrupt> {
        let c = self.st.simp(cond);
        if let Some(b) = c.as_bool() {
            return Ok(b);
        }
        if self.st.depth < self.forced.len() {
            let b = self.forced[self.st.depth];
            self.st.depth += 1;
            self.st.path.push(if b { c } else { Expr::not(c) });
            return Ok(b);
        }
        // Feasibility pruning via the SMT solver.
        let mut q: Vec<Expr> = self.pre_path.to_vec();
        q.extend(self.st.path.iter().cloned());
        q.push(c.clone());
        self.st.smt_queries += 2;
        let mut m = SolverMetrics::default();
        let (t_ok, f_ok) = {
            let sorts = |v: Var| self.st.sort_of(v);
            let t_ok = maybe_sat_metered(&q, &sorts, &self.cfg.solver, &mut m);
            *q.last_mut().expect("just pushed") = Expr::not(c.clone());
            let f_ok = maybe_sat_metered(&q, &sorts, &self.cfg.solver, &mut m);
            (t_ok, f_ok)
        };
        self.st.solver.absorb(&m);
        match (t_ok, f_ok) {
            (true, true) => {
                self.st.branches_explored += 1;
                Err(Interrupt::Fork(c))
            }
            (true, false) => {
                self.st.branches_pruned += 1;
                self.st.path.push(c);
                Ok(true)
            }
            (false, true) => {
                self.st.branches_pruned += 1;
                self.st.path.push(Expr::not(c));
                Ok(false)
            }
            (false, false) => {
                self.st.branches_pruned += 2;
                Err(Interrupt::Dead)
            }
        }
    }

    // ----- registers -----

    fn reg_width(&self, key: &RegKey) -> Result<u32, Interrupt> {
        let name = match key {
            RegKey::Plain(n) => n.as_str(),
            RegKey::Array(n, _) => n.as_str(),
        };
        match self.cm.globals.registers.get(name) {
            Some((Ty::Bits(w), _)) => Ok(*w),
            _ => Err(Interrupt::Error(IslaError::Internal(format!(
                "register `{name}` missing or non-bits"
            )))),
        }
    }

    fn read_reg(&mut self, key: RegKey) -> Result<SymVal, Interrupt> {
        if let Some((e, w)) = self.st.reg_cache.get(&key) {
            return Ok(SymVal::Bits(e.clone(), *w));
        }
        let w = self.reg_width(&key)?;
        let itl = key.to_itl(&self.cfg.arch);
        let name = itl.to_string();
        // Concrete assumption?
        if let Some((_, val)) = self.cfg.reg_values.iter().find(|(n, _)| *n == name) {
            let e = Expr::bits(*val);
            if !self.st.assumed.contains_key(&key) {
                self.st.assumed.insert(key.clone(), ());
                self.st
                    .events
                    .push(Event::AssumeReg(itl.clone(), e.clone()));
            }
            self.st.events.push(Event::ReadReg(itl, e.clone()));
            self.st.reg_cache.insert(key, (e.clone(), w));
            return Ok(SymVal::Bits(e, w));
        }
        // Fresh symbolic read.
        let v = self.st.declare(Sort::BitVec(w));
        let e = Expr::var(v);
        self.st.events.push(Event::ReadReg(itl, e.clone()));
        // Predicate assumption?
        if let Some((_, mk)) = self.cfg.reg_constraints.iter().find(|(n, _)| *n == name) {
            let pred = mk(&e);
            self.st.events.push(Event::Assume(pred.clone()));
            self.st.path.push(pred);
        }
        self.st.reg_cache.insert(key, (e.clone(), w));
        Ok(SymVal::Bits(e, w))
    }

    fn write_reg(&mut self, key: RegKey, value: SymVal) -> Result<(), Interrupt> {
        let (e, w) = value.bits();
        let e = self.st.simp(&e);
        let named = self.st.name_value(e, Sort::BitVec(w));
        let itl = key.to_itl(&self.cfg.arch);
        self.st.events.push(Event::WriteReg(itl, named.clone()));
        self.st.reg_cache.insert(key, (named, w));
        Ok(())
    }

    // ----- evaluation -----

    #[allow(clippy::too_many_lines)]
    fn eval(&mut self, e: &SExpr, env: &mut HashMap<String, SymVal>, depth: u32) -> R {
        self.st.model_steps += 1;
        match e {
            SExpr::LitBits(b) => Ok(SymVal::Bits(Expr::bits(*b), b.width())),
            SExpr::LitBool(b) => Ok(SymVal::Bool(Expr::bool(*b))),
            SExpr::LitInt(n) => Ok(SymVal::Int(*n)),
            SExpr::Unit => Ok(SymVal::Unit),
            SExpr::Var(name) => match env.get(name) {
                Some(v) => Ok(v.clone()),
                None => Err(Interrupt::Error(IslaError::Internal(format!(
                    "unbound local `{name}`"
                )))),
            },
            SExpr::Global(name) => {
                if let Some(v) = self.consts.get(name) {
                    return Ok(v.clone());
                }
                self.read_reg(RegKey::Plain(name.clone()))
            }
            SExpr::RegIdx(name, idx) => {
                let i = self.eval_index(idx, env, depth, name)?;
                self.read_reg(RegKey::Array(name.clone(), i))
            }
            SExpr::Slice(base, hi, lo) => {
                let (b, _w) = self.eval(base, env, depth)?.bits();
                let e = self.st.simp(&Expr::extract(*hi, *lo, b));
                Ok(SymVal::Bits(e, hi - lo + 1))
            }
            SExpr::Unop(op, a) => {
                let v = self.eval(a, env, depth)?;
                Ok(match op {
                    Unop::Not => SymVal::Bool(self.st.simp(&Expr::not(v.boolean()))),
                    Unop::BitNot => {
                        let (e, w) = v.bits();
                        SymVal::Bits(self.st.simp(&Expr::unop(BvUnop::Not, e)), w)
                    }
                    Unop::Neg => SymVal::Int(-v.int()),
                })
            }
            SExpr::Binop(op, a, b) => self.eval_binop(*op, a, b, env, depth),
            SExpr::Call(name, args) => self.eval_call(name, args, env, depth),
            SExpr::If(c, t, f) => {
                let cond = self.eval(c, env, depth)?.boolean();
                let cond = self.st.simp(&cond);
                // Effect-free branches with a symbolic condition become an
                // `ite` expression instead of forking — this is what keeps
                // flag computations (AddWithCarry's N/Z/C/V) linear, as in
                // real Isla traces.
                if cond.as_bool().is_none() && is_pure(t) && is_pure(f) {
                    let vt = self.eval(t, env, depth)?;
                    let vf = self.eval(f, env, depth)?;
                    match (vt, vf) {
                        (SymVal::Bits(a, w), SymVal::Bits(b, w2)) if w == w2 => {
                            return Ok(SymVal::Bits(self.st.simp(&Expr::ite(cond, a, b)), w));
                        }
                        (SymVal::Bool(a), SymVal::Bool(b)) => {
                            return Ok(SymVal::Bool(self.st.simp(&Expr::ite(cond, a, b))));
                        }
                        (SymVal::Unit, SymVal::Unit) => return Ok(SymVal::Unit),
                        _ => {} // fall through to a genuine fork
                    }
                }
                if self.decide(&cond)? {
                    self.eval(t, env, depth)
                } else {
                    self.eval(f, env, depth)
                }
            }
            SExpr::Match(s, arms) => {
                let scrutinee = self.eval(s, env, depth)?;
                for (pat, body) in arms {
                    let hit = match (pat, &scrutinee) {
                        (Pattern::Wildcard, _) => true,
                        (Pattern::Int(pi), SymVal::Int(vi)) => pi == vi,
                        (Pattern::Bits(pb), SymVal::Bits(e, w)) => {
                            debug_assert_eq!(pb.width(), *w);
                            let cond = Expr::eq(e.clone(), Expr::bits(*pb));
                            self.decide(&cond)?
                        }
                        _ => false,
                    };
                    if hit {
                        return self.eval(body, env, depth);
                    }
                }
                Err(Interrupt::Error(IslaError::Internal(
                    "non-exhaustive match".into(),
                )))
            }
            SExpr::Block(stmts, value) => {
                let mut shadowed: Vec<(String, Option<SymVal>)> = Vec::new();
                for stmt in stmts {
                    match stmt {
                        Stmt::Let(name, _ty, init) => {
                            // Locals carry the full (simplified) expression;
                            // `define-const` naming happens at event
                            // emission, exactly as in Fig. 3, where v61
                            // names the whole AddWithCarry computation.
                            let v = match self.eval(init, env, depth)? {
                                SymVal::Bits(e, w) => SymVal::Bits(self.st.simp(&e), w),
                                v => v,
                            };
                            shadowed.push((name.clone(), env.insert(name.clone(), v)));
                        }
                        Stmt::Assign(lv, rhs) => {
                            let v = self.eval(rhs, env, depth)?;
                            match lv {
                                LValue::Reg(name) => {
                                    self.write_reg(RegKey::Plain(name.clone()), v)?;
                                }
                                LValue::RegIdx(name, idx) => {
                                    let i = self.eval_index(idx, env, depth, name)?;
                                    self.write_reg(RegKey::Array(name.clone(), i), v)?;
                                }
                            }
                        }
                        Stmt::Expr(e) => {
                            let _ = self.eval(e, env, depth)?;
                        }
                    }
                }
                let result = match value {
                    None => SymVal::Unit,
                    Some(v) => self.eval(v, env, depth)?,
                };
                for (name, old) in shadowed.into_iter().rev() {
                    match old {
                        Some(v) => env.insert(name, v),
                        None => env.remove(&name),
                    };
                }
                Ok(result)
            }
        }
    }

    fn eval_index(
        &mut self,
        idx: &SExpr,
        env: &mut HashMap<String, SymVal>,
        depth: u32,
        what: &str,
    ) -> Result<usize, Interrupt> {
        match self.eval(idx, env, depth)? {
            SymVal::Int(i) if i >= 0 => Ok(i as usize),
            SymVal::Int(i) => Err(Interrupt::Error(IslaError::Internal(format!(
                "negative register index {i} for `{what}`"
            )))),
            _ => Err(Interrupt::Error(IslaError::SymbolicIndex(what.to_owned()))),
        }
    }

    fn eval_binop(
        &mut self,
        op: Binop,
        a: &SExpr,
        b: &SExpr,
        env: &mut HashMap<String, SymVal>,
        depth: u32,
    ) -> R {
        // Short-circuit boolean connectives via decide on the left side
        // only when needed to avoid spurious forks: keep them symbolic.
        let va = self.eval(a, env, depth)?;
        let vb = self.eval(b, env, depth)?;
        use Binop::*;
        Ok(match (op, va, vb) {
            (BoolAnd, SymVal::Bool(x), SymVal::Bool(y)) => {
                SymVal::Bool(self.st.simp(&Expr::and(x, y)))
            }
            (BoolOr, SymVal::Bool(x), SymVal::Bool(y)) => {
                SymVal::Bool(self.st.simp(&Expr::or(x, y)))
            }
            (Add, SymVal::Bits(x, w), SymVal::Bits(y, _)) => {
                SymVal::Bits(self.st.simp(&Expr::binop(BvBinop::Add, x, y)), w)
            }
            (Sub, SymVal::Bits(x, w), SymVal::Bits(y, _)) => {
                SymVal::Bits(self.st.simp(&Expr::binop(BvBinop::Sub, x, y)), w)
            }
            (Mul, SymVal::Bits(x, w), SymVal::Bits(y, _)) => {
                SymVal::Bits(self.st.simp(&Expr::binop(BvBinop::Mul, x, y)), w)
            }
            (Add, SymVal::Int(x), SymVal::Int(y)) => SymVal::Int(x + y),
            (Sub, SymVal::Int(x), SymVal::Int(y)) => SymVal::Int(x - y),
            (Mul, SymVal::Int(x), SymVal::Int(y)) => SymVal::Int(x * y),
            (BitAnd, SymVal::Bits(x, w), SymVal::Bits(y, _)) => {
                SymVal::Bits(self.st.simp(&Expr::binop(BvBinop::And, x, y)), w)
            }
            (BitOr, SymVal::Bits(x, w), SymVal::Bits(y, _)) => {
                SymVal::Bits(self.st.simp(&Expr::binop(BvBinop::Or, x, y)), w)
            }
            (BitXor, SymVal::Bits(x, w), SymVal::Bits(y, _)) => {
                SymVal::Bits(self.st.simp(&Expr::binop(BvBinop::Xor, x, y)), w)
            }
            (Shl, SymVal::Bits(x, w), amt) => {
                let amt = self.shift_amount(amt, w);
                SymVal::Bits(self.st.simp(&Expr::binop(BvBinop::Shl, x, amt)), w)
            }
            (Shr, SymVal::Bits(x, w), amt) => {
                let amt = self.shift_amount(amt, w);
                SymVal::Bits(self.st.simp(&Expr::binop(BvBinop::Lshr, x, amt)), w)
            }
            (AShr, SymVal::Bits(x, w), amt) => {
                let amt = self.shift_amount(amt, w);
                SymVal::Bits(self.st.simp(&Expr::binop(BvBinop::Ashr, x, amt)), w)
            }
            (Concat, SymVal::Bits(x, wx), SymVal::Bits(y, wy)) => {
                SymVal::Bits(self.st.simp(&Expr::concat(x, y)), wx + wy)
            }
            (Eq, va, vb) => SymVal::Bool(self.sym_eq(&va, &vb)),
            (Ne, va, vb) => SymVal::Bool(self.st.simp(&Expr::not(self.sym_eq(&va, &vb)))),
            (Lt, SymVal::Bits(x, _), SymVal::Bits(y, _)) => {
                SymVal::Bool(self.st.simp(&Expr::cmp(BvCmp::Ult, x, y)))
            }
            (Le, SymVal::Bits(x, _), SymVal::Bits(y, _)) => {
                SymVal::Bool(self.st.simp(&Expr::cmp(BvCmp::Ule, x, y)))
            }
            (SLt, SymVal::Bits(x, _), SymVal::Bits(y, _)) => {
                SymVal::Bool(self.st.simp(&Expr::cmp(BvCmp::Slt, x, y)))
            }
            (SLe, SymVal::Bits(x, _), SymVal::Bits(y, _)) => {
                SymVal::Bool(self.st.simp(&Expr::cmp(BvCmp::Sle, x, y)))
            }
            (Lt, SymVal::Int(x), SymVal::Int(y)) => SymVal::Bool(Expr::bool(x < y)),
            (Le, SymVal::Int(x), SymVal::Int(y)) => SymVal::Bool(Expr::bool(x <= y)),
            (op, a, b) => {
                return Err(Interrupt::Error(IslaError::Internal(format!(
                    "ill-typed binop {op:?} on {a:?}, {b:?}"
                ))))
            }
        })
    }

    fn sym_eq(&self, a: &SymVal, b: &SymVal) -> Expr {
        match (a, b) {
            (SymVal::Bits(x, _), SymVal::Bits(y, _)) => {
                self.st.simp(&Expr::eq(x.clone(), y.clone()))
            }
            (SymVal::Bool(x), SymVal::Bool(y)) => self.st.simp(&Expr::eq(x.clone(), y.clone())),
            (SymVal::Int(x), SymVal::Int(y)) => Expr::bool(x == y),
            _ => Expr::bool(false),
        }
    }

    fn shift_amount(&self, amt: SymVal, width: u32) -> Expr {
        match amt {
            SymVal::Bits(e, _) => e,
            SymVal::Int(n) => Expr::bits(Bv::new(width, n.clamp(0, 255) as u128)),
            other => panic!("bad shift amount {other:?}"),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn eval_call(
        &mut self,
        name: &str,
        args: &[SExpr],
        env: &mut HashMap<String, SymVal>,
        depth: u32,
    ) -> R {
        match name {
            "exit" => return Err(Interrupt::Exit),
            "ZeroExtend" => {
                let (e, w) = self.eval(&args[0], env, depth)?.bits();
                let SExpr::LitInt(n) = args[1] else {
                    unreachable!("checked")
                };
                let target = n as u32;
                return Ok(SymVal::Bits(
                    self.st.simp(&Expr::zero_extend(target - w, e)),
                    target,
                ));
            }
            "SignExtend" => {
                let (e, w) = self.eval(&args[0], env, depth)?.bits();
                let SExpr::LitInt(n) = args[1] else {
                    unreachable!("checked")
                };
                let target = n as u32;
                return Ok(SymVal::Bits(
                    self.st.simp(&Expr::sign_extend(target - w, e)),
                    target,
                ));
            }
            "UInt" => {
                let (e, _w) = self.eval(&args[0], env, depth)?.bits();
                let e = self.st.simp(&e);
                let Some(b) = e.as_bits() else {
                    return Err(Interrupt::Error(IslaError::SymbolicInt(format!(
                        "UInt({e})"
                    ))));
                };
                return Ok(SymVal::Int(b.to_u128() as i128));
            }
            "SInt" => {
                let (e, _w) = self.eval(&args[0], env, depth)?.bits();
                let e = self.st.simp(&e);
                let Some(b) = e.as_bits() else {
                    return Err(Interrupt::Error(IslaError::SymbolicInt(format!(
                        "SInt({e})"
                    ))));
                };
                return Ok(SymVal::Int(b.to_i128()));
            }
            "to_bits" => {
                let SExpr::LitInt(n) = args[0] else {
                    unreachable!("checked")
                };
                let v = self.eval(&args[1], env, depth)?.int();
                return Ok(SymVal::Bits(
                    Expr::bits(Bv::new(n as u32, v as u128)),
                    n as u32,
                ));
            }
            "reverse_bits" => {
                let (e, w) = self.eval(&args[0], env, depth)?.bits();
                return Ok(SymVal::Bits(self.st.simp(&Expr::unop(BvUnop::Rev, e)), w));
            }
            "undefined_bits" => {
                let SExpr::LitInt(n) = args[0] else {
                    unreachable!("checked")
                };
                let v = self.st.declare(Sort::BitVec(n as u32));
                return Ok(SymVal::Bits(Expr::var(v), n as u32));
            }
            "read_mem" => {
                let (addr, _) = self.eval(&args[0], env, depth)?.bits();
                let SExpr::LitInt(n) = args[1] else {
                    unreachable!("checked")
                };
                let bytes = n as u32;
                let addr = {
                    let a = self.st.simp(&addr);
                    self.st.name_value(a, Sort::BitVec(64))
                };
                let v = self.st.declare(Sort::BitVec(8 * bytes));
                self.st.events.push(Event::ReadMem {
                    value: Expr::var(v),
                    addr,
                    bytes,
                });
                return Ok(SymVal::Bits(Expr::var(v), 8 * bytes));
            }
            "write_mem" => {
                let (addr, _) = self.eval(&args[0], env, depth)?.bits();
                let SExpr::LitInt(n) = args[1] else {
                    unreachable!("checked")
                };
                let bytes = n as u32;
                let (value, vw) = self.eval(&args[2], env, depth)?.bits();
                debug_assert_eq!(vw, 8 * bytes);
                let addr = {
                    let a = self.st.simp(&addr);
                    self.st.name_value(a, Sort::BitVec(64))
                };
                let value = {
                    let v = self.st.simp(&value);
                    self.st.name_value(v, Sort::BitVec(8 * bytes))
                };
                self.st.events.push(Event::WriteMem { addr, value, bytes });
                return Ok(SymVal::Unit);
            }
            _ => {}
        }
        if depth >= MAX_CALL_DEPTH {
            return Err(Interrupt::Error(IslaError::DepthExceeded(name.to_owned())));
        }
        let Some(f) = self.cm.model.function(name) else {
            return Err(Interrupt::Error(IslaError::Internal(format!(
                "unknown function `{name}`"
            ))));
        };
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(a, env, depth)?);
        }
        let mut inner: HashMap<String, SymVal> = f
            .params
            .iter()
            .zip(vals)
            .map(|((p, _), v)| (p.clone(), v))
            .collect();
        self.st.model_calls += 1;
        let body = f.body.clone();
        self.eval(&body, &mut inner, depth + 1)
    }
}

/// Syntactic effect-freedom: no calls, assignments, or register-array
/// reads (plain register reads may emit trace events, so they also count
/// as effects here; the flag computations this targets are pure
/// arithmetic over locals).
fn is_pure(e: &SExpr) -> bool {
    match e {
        SExpr::LitBits(_) | SExpr::LitBool(_) | SExpr::LitInt(_) | SExpr::Unit | SExpr::Var(_) => {
            true
        }
        SExpr::Global(_) | SExpr::RegIdx(_, _) | SExpr::Call(_, _) | SExpr::Block(_, _) => false,
        SExpr::Slice(b, _, _) | SExpr::Unop(_, b) => is_pure(b),
        SExpr::Binop(_, a, b) => is_pure(a) && is_pure(b),
        SExpr::If(c, t, f) => is_pure(c) && is_pure(t) && is_pure(f),
        SExpr::Match(s, arms) => is_pure(s) && arms.iter().all(|(_, b)| is_pure(b)),
    }
}
