//! A shared, thread-safe memo table for symbolic traces.
//!
//! Tracing an opcode is the expensive half of the pipeline (symbolic
//! execution plus SMT feasibility pruning), yet it is a pure function of
//! the *(opcode, architecture, configuration constraints)* triple: the
//! same `ldrb`/`strb` pair recurs across memcpy-style loops, and the
//! `movz`/`movk` relocation family recurs across pKVM-style handlers. The
//! cache executes each distinct triple once and replays the simplified
//! trace — **including its statistics**, so aggregated per-case numbers
//! (runs, SMT queries, events) are identical whether a trace was computed
//! or replayed, and parallel pipelines report byte-identical tables.
//!
//! The key is a rendered fingerprint:
//!
//! * the opcode bytes (or, for partially symbolic opcodes, the printed
//!   opcode expression, parameter sorts, and assumption set);
//! * the ISA (architecture name);
//! * the configuration constraints: concrete register assumptions,
//!   predicate constraints (printed applied to a probe variable), and the
//!   solver configuration (its budget changes which branches prune).
//!
//! Concurrent requests for the same key are coalesced: the first claims
//! the slot and traces; the rest block on a condvar and count as hits, so
//! hit/miss totals are deterministic for a fixed workload regardless of
//! worker count or interleaving.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use islaris_itl::Trace;
use islaris_smt::{Expr, Sort, Var};

use crate::driver::{trace_opcode, IslaStats, Opcode};
use crate::exec::{IslaConfig, IslaError};
use crate::store::TraceStore;

/// A memoised trace: the simplified tree plus the metadata of the run
/// that produced it.
#[derive(Debug, Clone)]
pub struct CachedTrace {
    /// The simplified trace.
    pub trace: Arc<Trace>,
    /// Free parameter variables (for symbolic opcodes).
    pub params: Vec<(Var, Sort)>,
    /// Statistics of the original (cold) run. Replayed on hits so
    /// aggregate counts are independent of cache state.
    pub stats: IslaStats,
}

/// Hit/miss counters of a cache — the shared
/// [`islaris_obs::CacheMetrics`] record, re-exported under the name this
/// module has always used so existing struct literals keep working.
pub use islaris_obs::CacheMetrics as CacheStats;

enum Slot {
    /// Someone is tracing this key; wait on the condvar.
    Pending,
    /// Done.
    Ready(Arc<CachedTrace>),
}

/// The shared trace memo table. Cheap to share via `&` across a thread
/// scope or via `Arc` across owners. Optionally backed by a persistent
/// [`TraceStore`] ([`TraceCache::persistent`]): a key absent from memory
/// is looked up on disk before tracing, and cold traces are written back,
/// so restarts are warm and N processes can share one store directory.
#[derive(Default)]
pub struct TraceCache {
    map: Mutex<HashMap<String, Slot>>,
    cv: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    store: Option<TraceStore>,
}

/// Renders the configuration part of the cache key. Predicate
/// constraints are closures, so they are fingerprinted by printing their
/// predicate applied to a reserved probe variable.
#[must_use]
pub fn config_fingerprint(cfg: &IslaConfig) -> String {
    let probe = Expr::var(Var(u32::MAX));
    let mut out = String::new();
    let _ = write!(out, "arch={};", cfg.arch.name);
    for (name, val) in &cfg.reg_values {
        let _ = write!(out, "reg {name}={val};");
    }
    for (name, mk) in &cfg.reg_constraints {
        let _ = write!(out, "con {name}:{};", mk(&probe));
    }
    let _ = write!(
        out,
        "solver max_conflicts={} check_proofs={} sat={:?}",
        cfg.solver.max_conflicts, cfg.solver.check_proofs, cfg.solver.sat
    );
    out
}

/// Renders the opcode part of the cache key.
#[must_use]
pub fn opcode_fingerprint(opcode: &Opcode) -> String {
    match opcode {
        Opcode::Concrete(op) => format!("op={op:#010x}"),
        Opcode::Symbolic {
            expr,
            params,
            assumptions,
        } => {
            let mut out = String::new();
            let _ = write!(out, "sym={expr};params=");
            for (v, s) in params {
                let _ = write!(out, "v{}:{s},", v.0);
            }
            let _ = write!(out, ";assume=");
            for a in assumptions {
                let _ = write!(out, "{a},");
            }
            out
        }
    }
}

fn cache_key(cfg: &IslaConfig, opcode: &Opcode) -> String {
    format!(
        "{}\u{1}{}",
        config_fingerprint(cfg),
        opcode_fingerprint(opcode)
    )
}

/// Removes a Pending slot if tracing unwinds, so waiters are not stranded.
struct PendingGuard<'a> {
    cache: &'a TraceCache,
    key: &'a str,
    armed: bool,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.cache.lock().remove(self.key);
            self.cache.cv.notify_all();
        }
    }
}

impl TraceCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        TraceCache::default()
    }

    /// An empty in-memory cache backed by the persistent store at `dir`.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the store directory.
    pub fn persistent(dir: &std::path::Path) -> std::io::Result<Self> {
        Ok(TraceCache {
            store: Some(TraceStore::open(dir)?),
            ..TraceCache::default()
        })
    }

    /// Disk-side counters of the backing store, if any.
    #[must_use]
    pub fn store_metrics(&self) -> Option<islaris_obs::StoreMetrics> {
        self.store.as_ref().map(TraceStore::metrics)
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<String, Slot>> {
        // A panic while holding the map lock only happens between plain
        // HashMap operations, which cannot leave it inconsistent.
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks up (or computes) the trace for `(cfg, opcode)`. Returns the
    /// entry and whether this lookup was a hit.
    ///
    /// # Errors
    ///
    /// Propagates [`IslaError`] from tracing; failed keys are not cached,
    /// so a later retry re-traces.
    pub fn lookup(
        &self,
        cfg: &IslaConfig,
        opcode: &Opcode,
    ) -> Result<(Arc<CachedTrace>, bool), IslaError> {
        let key = cache_key(cfg, opcode);
        let mut map = self.lock();
        loop {
            match map.get(&key) {
                Some(Slot::Ready(entry)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((entry.clone(), true));
                }
                Some(Slot::Pending) => {
                    map = self
                        .cv
                        .wait(map)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                None => {
                    map.insert(key.clone(), Slot::Pending);
                    break;
                }
            }
        }
        drop(map);
        let mut guard = PendingGuard {
            cache: self,
            key: &key,
            armed: true,
        };
        // Not in memory: consult the persistent store before tracing. A
        // verified disk entry counts as a hit (the work was not redone);
        // any defect was already treated as a sound miss by the store.
        if let Some(entry) = self.store.as_ref().and_then(|s| s.load(&key)) {
            guard.armed = false;
            drop(guard);
            self.hits.fetch_add(1, Ordering::Relaxed);
            let mut map = self.lock();
            map.insert(key, Slot::Ready(entry.clone()));
            self.cv.notify_all();
            return Ok((entry, true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let result = trace_opcode(cfg, opcode);
        guard.armed = false;
        drop(guard);
        match result {
            Ok(r) => {
                let entry = Arc::new(CachedTrace {
                    trace: Arc::new(r.trace),
                    params: r.params,
                    stats: r.stats,
                });
                // Persist outside the map lock; waiters stay parked on
                // the Pending slot until the Ready insert below.
                if let Some(store) = &self.store {
                    store.save(&key, &entry);
                }
                let mut map = self.lock();
                map.insert(key, Slot::Ready(entry.clone()));
                self.cv.notify_all();
                Ok((entry, false))
            }
            Err(e) => {
                let mut map = self.lock();
                map.remove(&key);
                self.cv.notify_all();
                Err(e)
            }
        }
    }

    /// [`TraceCache::lookup`] without the hit flag.
    ///
    /// # Errors
    ///
    /// Propagates [`IslaError`] from tracing.
    pub fn trace_opcode(
        &self,
        cfg: &IslaConfig,
        opcode: &Opcode,
    ) -> Result<Arc<CachedTrace>, IslaError> {
        self.lookup(cfg, opcode).map(|(entry, _)| entry)
    }

    /// Current hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct memoised traces.
    ///
    /// # Panics
    ///
    /// Never; lock poisoning is absorbed.
    #[must_use]
    pub fn unique_traces(&self) -> usize {
        self.lock().len()
    }

    /// Resets the hit/miss counters (the memo table is kept). Used
    /// between measurement phases that share one warm cache.
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use islaris_models::ARM;

    const ADD_SP: u32 = 0x9101_03ff; // add sp, sp, #0x40

    fn cfg() -> IslaConfig {
        IslaConfig::new(ARM)
            .assume_reg("PSTATE.EL", islaris_bv::Bv::new(2, 0b10))
            .assume_reg("PSTATE.SP", islaris_bv::Bv::new(1, 0b1))
    }

    #[test]
    fn second_lookup_hits_and_replays_stats() {
        let cache = TraceCache::new();
        let (a, hit_a) = cache.lookup(&cfg(), &Opcode::Concrete(ADD_SP)).unwrap();
        let (b, hit_b) = cache.lookup(&cfg(), &Opcode::Concrete(ADD_SP)).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert_eq!(*a.trace, *b.trace);
        assert_eq!(a.stats.smt_queries, b.stats.smt_queries);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.unique_traces(), 1);
    }

    #[test]
    fn cached_trace_equals_fresh_trace() {
        let cache = TraceCache::new();
        let entry = cache
            .trace_opcode(&cfg(), &Opcode::Concrete(ADD_SP))
            .unwrap();
        let fresh = trace_opcode(&cfg(), &Opcode::Concrete(ADD_SP)).unwrap();
        assert_eq!(*entry.trace, fresh.trace);
        assert_eq!(entry.stats.runs, fresh.stats.runs);
        assert_eq!(entry.stats.smt_queries, fresh.stats.smt_queries);
        assert_eq!(entry.stats.events, fresh.stats.events);
    }

    #[test]
    fn different_configs_do_not_collide() {
        let cache = TraceCache::new();
        let unconstrained = IslaConfig::new(ARM);
        let t1 = cache
            .trace_opcode(&cfg(), &Opcode::Concrete(ADD_SP))
            .unwrap();
        let t2 = cache
            .trace_opcode(&unconstrained, &Opcode::Concrete(ADD_SP))
            .unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
        // The constrained trace is linear over SP_EL2; the unconstrained
        // one keeps the banked-SP Cases split, so they must differ.
        assert_ne!(*t1.trace, *t2.trace);
    }

    #[test]
    fn constraint_closures_are_fingerprinted_by_predicate() {
        let c1 = IslaConfig::new(ARM)
            .constrain_reg("SPSR_EL2", |e| Expr::eq(e.clone(), Expr::bv(64, 5)));
        let c2 = IslaConfig::new(ARM)
            .constrain_reg("SPSR_EL2", |e| Expr::eq(e.clone(), Expr::bv(64, 9)));
        assert_ne!(config_fingerprint(&c1), config_fingerprint(&c2));
        let c3 = IslaConfig::new(ARM)
            .constrain_reg("SPSR_EL2", |e| Expr::eq(e.clone(), Expr::bv(64, 5)));
        assert_eq!(config_fingerprint(&c1), config_fingerprint(&c3));
    }

    #[test]
    fn concurrent_lookups_coalesce() {
        let cache = TraceCache::new();
        let config = cfg();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    cache
                        .trace_opcode(&config, &Opcode::Concrete(ADD_SP))
                        .unwrap();
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "exactly one cold trace");
        assert_eq!(stats.hits, 3, "everyone else coalesces onto it");
        assert_eq!(cache.unique_traces(), 1);
    }

    #[test]
    fn persistent_cache_is_warm_after_a_restart() {
        let dir = std::env::temp_dir().join(format!("islaris-pcache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Cold process: miss, compute, persist.
        let cold = TraceCache::persistent(&dir).unwrap();
        let (a, hit_a) = cold.lookup(&cfg(), &Opcode::Concrete(ADD_SP)).unwrap();
        assert!(!hit_a);
        let m = cold.store_metrics().unwrap();
        assert_eq!((m.disk_hits, m.disk_misses), (0, 1));

        // "Restarted" process: same store, empty memory — disk hit, and
        // the entry (trace + replayed stats) is identical to the cold one.
        let warm = TraceCache::persistent(&dir).unwrap();
        let (b, hit_b) = warm.lookup(&cfg(), &Opcode::Concrete(ADD_SP)).unwrap();
        assert!(hit_b, "a warm restart must hit on disk");
        assert_eq!(*a.trace, *b.trace);
        assert_eq!(a.params, b.params);
        assert_eq!(a.stats.smt_queries, b.stats.smt_queries);
        assert_eq!(a.stats.solver, b.stats.solver);
        assert_eq!(warm.stats(), CacheStats { hits: 1, misses: 0 });
        let m = warm.store_metrics().unwrap();
        assert_eq!((m.disk_hits, m.disk_misses), (1, 0));

        // Second lookup in the warm process stays in memory.
        let (_, hit_c) = warm.lookup(&cfg(), &Opcode::Concrete(ADD_SP)).unwrap();
        assert!(hit_c);
        assert_eq!(warm.store_metrics().unwrap().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_store_entry_recomputes_and_heals() {
        let dir = std::env::temp_dir().join(format!("islaris-pcache-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cold = TraceCache::persistent(&dir).unwrap();
        let cold_entry = cold
            .trace_opcode(&cfg(), &Opcode::Concrete(ADD_SP))
            .unwrap();

        // Truncate the on-disk entry, then restart.
        let key = cache_key(&cfg(), &Opcode::Concrete(ADD_SP));
        let store = TraceStore::open(&dir).unwrap();
        let path = store.path_for(&key);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();

        let warm = TraceCache::persistent(&dir).unwrap();
        let (entry, hit) = warm.lookup(&cfg(), &Opcode::Concrete(ADD_SP)).unwrap();
        assert!(!hit, "a corrupt entry is a sound miss");
        assert_eq!(*entry.trace, *cold_entry.trace, "recompute matches cold");
        let m = warm.store_metrics().unwrap();
        assert_eq!(m.evictions, 1, "the corrupt file was evicted");
        // The recompute re-persisted a good entry.
        let healed = TraceStore::open(&dir).unwrap();
        assert!(healed.load(&key).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_traces_are_not_cached() {
        let cache = TraceCache::new();
        // A symbolic opcode with a symbolic register index cannot trace:
        // an unknown entry function is simulated by an opcode whose
        // assumptions are fine but whose tracing hits the path explosion
        // guard is hard to build cheaply, so instead use an undecodable
        // config: RISC-V model fed an Arm-only opcode still decodes (both
        // models are total), so force an error with a symbolic opcode
        // that leaves the register index symbolic.
        let sym = Opcode::Symbolic {
            expr: Expr::var(Var(0)),
            params: vec![(Var(0), Sort::BitVec(32))],
            assumptions: vec![],
        };
        let r = cache.lookup(&IslaConfig::new(ARM), &sym);
        if r.is_err() {
            assert_eq!(cache.unique_traces(), 0, "errors are not memoised");
            assert_eq!(cache.stats().misses, 1);
        }
    }
}
