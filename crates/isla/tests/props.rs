//! Property tests for `isla::simplify` (trace simplification), on the
//! in-tree `islaris-testkit` runner at the same case count as the SMT
//! property suite (64 cases per property; failures report a seed
//! replayable via `ISLARIS_PT_SEED`).
//!
//! The central property: [`simplify_trace`] must preserve a trace's
//! *observables* — the evaluated register/memory/assertion events, in
//! order, across `Cases` branches — under every concrete assignment of
//! the free (parameter) variables and every stream of values for the
//! declared symbolic constants. Simplification may rewrite expressions,
//! drop dead definitions, and renumber bound variables, but an observer
//! replaying the trace concretely must not be able to tell.

use std::collections::{BTreeSet, HashMap};

use islaris_bv::Bv;
use islaris_isla::simplify_trace;
use islaris_itl::{Event, Reg, Trace};
use islaris_smt::{eval, BvBinop, BvCmp, Expr, Sort, Value, Var};
use islaris_testkit::{forall, prop_eq, prop_true, Rng, TestResult};

const WIDTH: u32 = 8;
/// Free (parameter) variables `v0..v2`: never declared in the trace,
/// never renumbered by simplification.
const NUM_FREE: u32 = 3;
/// Bound variables start here (declared / defined inside the trace).
const FIRST_BOUND: u32 = 100;
const CASES: u32 = 64;

fn sorts_of(t: &Trace) -> HashMap<Var, Sort> {
    let mut sorts: HashMap<Var, Sort> = (0..NUM_FREE)
        .map(|i| (Var(i), Sort::BitVec(WIDTH)))
        .collect();
    collect_declares(t, &mut sorts);
    sorts
}

fn collect_declares(t: &Trace, out: &mut HashMap<Var, Sort>) {
    match t {
        Trace::Nil => {}
        Trace::Cons(ev, rest) => {
            if let Event::DeclareConst(v, s) = ev {
                out.insert(*v, *s);
            }
            collect_declares(rest, out);
        }
        Trace::Cases(ts) => {
            for t in ts {
                collect_declares(t, out);
            }
        }
    }
}

/// Random width-8 expression over the in-scope variables.
fn bv_expr(r: &mut Rng, scope: &[Var], depth: u32) -> Expr {
    if depth == 0 || r.index(3) == 0 {
        return if !scope.is_empty() && r.next_bool() {
            Expr::var(*r.choose(scope))
        } else {
            Expr::bv(WIDTH, u128::from(r.next_u8()))
        };
    }
    const OPS: [BvBinop; 6] = [
        BvBinop::Add,
        BvBinop::Sub,
        BvBinop::Mul,
        BvBinop::And,
        BvBinop::Or,
        BvBinop::Xor,
    ];
    let op = *r.choose(&OPS);
    let a = bv_expr(r, scope, depth - 1);
    let b = bv_expr(r, scope, depth - 1);
    Expr::binop(op, a, b)
}

fn bool_expr(r: &mut Rng, scope: &[Var]) -> Expr {
    let a = bv_expr(r, scope, 2);
    let b = bv_expr(r, scope, 2);
    match r.index(3) {
        0 => Expr::eq(a, b),
        1 => Expr::cmp(BvCmp::Ult, a, b),
        _ => Expr::cmp(BvCmp::Sle, a, b),
    }
}

/// One random linear segment of up to `len` events over (and extending)
/// `scope`. When `anchor` is set, the segment ends with a sink register
/// write using every variable it bound, so dead-definition elimination
/// provably keeps each one (which keeps the declare-value streams of the
/// original and simplified traces aligned).
fn segment(
    r: &mut Rng,
    scope: &mut Vec<Var>,
    next: &mut u32,
    len: usize,
    anchor: bool,
) -> Vec<Event> {
    let mut evs = Vec::new();
    let mut bound_here = Vec::new();
    for _ in 0..len {
        match r.index(5) {
            0 => {
                let v = Var(*next);
                *next += 1;
                evs.push(Event::DeclareConst(v, Sort::BitVec(WIDTH)));
                scope.push(v);
                bound_here.push(v);
            }
            1 => {
                let v = Var(*next);
                *next += 1;
                let e = bv_expr(r, scope, 2);
                evs.push(Event::DefineConst(v, e));
                scope.push(v);
                bound_here.push(v);
            }
            2 => {
                let reg = Reg::new(["R0", "R1", "SP"][r.index(3)]);
                evs.push(Event::WriteReg(reg, bv_expr(r, scope, 2)));
            }
            3 => evs.push(Event::Assert(bool_expr(r, scope))),
            _ => evs.push(Event::WriteMem {
                addr: bv_expr(r, scope, 1),
                value: bv_expr(r, scope, 1),
                bytes: 1,
            }),
        }
    }
    if anchor && !bound_here.is_empty() {
        let sink = bound_here
            .iter()
            .map(|v| Expr::var(*v))
            .reduce(|a, b| Expr::binop(BvBinop::Xor, a, b))
            .expect("non-empty");
        evs.push(Event::WriteReg(Reg::new("SINK"), sink));
    }
    evs
}

/// A random trace: a linear prefix, optionally ending in a two-way
/// `Cases` whose branches are linear segments.
fn trace(r: &mut Rng, anchor: bool) -> Trace {
    let mut scope: Vec<Var> = (0..NUM_FREE).map(Var).collect();
    let mut next = FIRST_BOUND;
    let prefix_len = 1 + r.index(5);
    let prefix = segment(r, &mut scope, &mut next, prefix_len, anchor);
    if r.next_bool() {
        let mut branches = Vec::new();
        for _ in 0..2 {
            let mut branch_scope = scope.clone();
            let len = 1 + r.index(3);
            let evs = segment(r, &mut branch_scope, &mut next, len, anchor);
            branches.push(Trace::linear(evs));
        }
        Trace::from_events(prefix, Trace::Cases(branches))
    } else {
        Trace::linear(prefix)
    }
}

/// Replays a trace concretely: free variables from `free_vals`, each
/// `DeclareConst` drawing the next value of a deterministic stream (in
/// pre-order — the order simplification preserves), `DefineConst`
/// evaluating its body. Every other event appends one observable line.
fn observables(t: &Trace, free_vals: &[u8; 3]) -> Result<Vec<String>, String> {
    let mut env: HashMap<Var, Value> = free_vals
        .iter()
        .enumerate()
        .map(|(i, v)| (Var(i as u32), Value::Bits(Bv::new(WIDTH, u128::from(*v)))))
        .collect();
    let mut stream = Rng::new(0x0b5e_4a11);
    let mut out = Vec::new();
    walk(t, &mut env, &mut stream, &mut out)?;
    Ok(out)
}

fn walk(
    t: &Trace,
    env: &mut HashMap<Var, Value>,
    stream: &mut Rng,
    out: &mut Vec<String>,
) -> Result<(), String> {
    let lookup = |env: &HashMap<Var, Value>, e: &Expr| -> Result<Value, String> {
        let env = |v: Var| env.get(&v).cloned();
        eval(e, &env).map_err(|err| format!("{err:?}"))
    };
    match t {
        Trace::Nil => Ok(()),
        Trace::Cons(ev, rest) => {
            match ev {
                Event::DeclareConst(v, Sort::BitVec(w)) => {
                    let val = Bv::new(*w, u128::from(stream.next_u8()));
                    env.insert(*v, Value::Bits(val));
                }
                Event::DeclareConst(v, Sort::Bool) => {
                    env.insert(*v, Value::Bool(stream.next_bool()));
                }
                Event::DefineConst(v, e) => {
                    let val = lookup(env, e)?;
                    env.insert(*v, val);
                }
                Event::ReadReg(r, e) | Event::WriteReg(r, e) | Event::AssumeReg(r, e) => {
                    out.push(format!("reg {} {:?}", r.name(), lookup(env, e)?));
                }
                Event::ReadMem { value, addr, bytes } | Event::WriteMem { addr, value, bytes } => {
                    out.push(format!(
                        "mem {:?} {:?} {bytes}",
                        lookup(env, addr)?,
                        lookup(env, value)?
                    ));
                }
                Event::Assume(e) | Event::Assert(e) => {
                    out.push(format!("assert {:?}", lookup(env, e)?));
                }
            }
            walk(rest, env, stream, out)
        }
        Trace::Cases(ts) => {
            for (i, branch) in ts.iter().enumerate() {
                out.push(format!("case {i}"));
                let mut branch_env = env.clone();
                walk(branch, &mut branch_env, stream, out)?;
            }
            Ok(())
        }
    }
}

fn collect_bound(t: &Trace, out: &mut Vec<Var>) {
    match t {
        Trace::Nil => {}
        Trace::Cons(ev, rest) => {
            if let Event::DeclareConst(v, _) | Event::DefineConst(v, _) = ev {
                out.push(*v);
            }
            collect_bound(rest, out);
        }
        Trace::Cases(ts) => {
            for t in ts {
                collect_bound(t, out);
            }
        }
    }
}

fn collect_uses(t: &Trace, out: &mut BTreeSet<Var>) {
    match t {
        Trace::Nil => {}
        Trace::Cons(ev, rest) => {
            match ev {
                Event::ReadReg(_, e) | Event::WriteReg(_, e) | Event::AssumeReg(_, e) => {
                    e.free_vars_into(out);
                }
                Event::ReadMem { value, addr, .. } | Event::WriteMem { addr, value, .. } => {
                    value.free_vars_into(out);
                    addr.free_vars_into(out);
                }
                Event::Assume(e) | Event::Assert(e) => e.free_vars_into(out),
                Event::DeclareConst(_, _) => {}
                Event::DefineConst(_, e) => e.free_vars_into(out),
            }
            collect_uses(rest, out);
        }
        Trace::Cases(ts) => {
            for t in ts {
                collect_uses(t, out);
            }
        }
    }
}

fn free_vals(r: &mut Rng) -> [u8; 3] {
    [r.next_u8(), r.next_u8(), r.next_u8()]
}

/// Simplification preserves every observable of a concrete replay.
#[test]
fn simplify_trace_preserves_observables() {
    forall(
        "simplify_trace_preserves_observables",
        CASES,
        |r| (trace(r, true), free_vals(r)),
        |(t, vals)| {
            let simplified = simplify_trace(t, &sorts_of(t));
            let before = observables(t, vals).expect("original replays");
            let after = observables(&simplified, vals).expect("simplified replays");
            prop_eq!(before, after);
            TestResult::Pass
        },
    );
}

/// Simplification is idempotent: a second pass is the identity.
#[test]
fn simplify_trace_is_idempotent() {
    forall(
        "simplify_trace_is_idempotent",
        CASES,
        |r| trace(r, false),
        |t| {
            let once = simplify_trace(t, &sorts_of(t));
            let twice = simplify_trace(&once, &sorts_of(&once));
            prop_eq!(once, twice);
            TestResult::Pass
        },
    );
}

/// After simplification no dead definition remains (the fixpoint really
/// reaches the fixpoint), the trace never grows, and the surviving bound
/// variables are renumbered densely in first-occurrence order.
#[test]
fn simplify_trace_eliminates_dead_definitions_and_renumbers_densely() {
    forall(
        "simplify_trace_eliminates_dead_definitions_and_renumbers_densely",
        CASES,
        |r| trace(r, false),
        |t| {
            let simplified = simplify_trace(t, &sorts_of(t));
            prop_true!(simplified.event_count() <= t.event_count());
            let mut bound = Vec::new();
            collect_bound(&simplified, &mut bound);
            let mut used = BTreeSet::new();
            collect_uses(&simplified, &mut used);
            for v in &bound {
                prop_true!(used.contains(v), format!("dead binder {v:?} survived"));
            }
            // First-occurrence renumbering: consecutive indices from the
            // first bound variable onward.
            let mut seen = Vec::new();
            for v in bound {
                if !seen.contains(&v) {
                    seen.push(v);
                }
            }
            for w in seen.windows(2) {
                prop_eq!(w[1].0, w[0].0 + 1, "bound renumbering is not dense");
            }
            TestResult::Pass
        },
    );
}
