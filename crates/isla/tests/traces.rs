//! End-to-end symbolic execution tests: the figures of the paper, plus
//! trace/interpreter agreement.

use std::sync::Arc;

use islaris_bv::Bv;
use islaris_isla::{trace_opcode, trace_program, IslaConfig, Opcode};
use islaris_itl::{print_trace, run, Event, Machine, PcName, Reg, Stop, Trace, ZeroIo};
use islaris_models::{ARM, RISCV};
use islaris_smt::{Expr, Sort, Var};

fn arm_el2_cfg() -> IslaConfig {
    IslaConfig::new(ARM)
        .assume_reg("PSTATE.EL", Bv::new(2, 0b10))
        .assume_reg("PSTATE.SP", Bv::new(1, 0b1))
        .assume_reg("SCTLR_EL2", Bv::zero(64))
}

/// Fig. 3: add sp, sp, #0x40 (opcode 0x910103ff) under EL=2, SP=1.
#[test]
fn fig3_add_sp_trace_shape() {
    let r = trace_opcode(&arm_el2_cfg(), &Opcode::Concrete(0x910103ff)).expect("traces");
    let text = print_trace(&r.trace);
    // Assumptions recorded.
    assert!(
        text.contains("(assume-reg |PSTATE| ((_ field |EL|)) #b10)"),
        "{text}"
    );
    assert!(
        text.contains("(assume-reg |PSTATE| ((_ field |SP|)) #b1)"),
        "{text}"
    );
    // The banked stack pointer collapsed to SP_EL2, read then written.
    assert!(text.contains("(read-reg |SP_EL2| nil"), "{text}");
    assert!(text.contains("(write-reg |SP_EL2| nil"), "{text}");
    // PC increment.
    assert!(text.contains("(read-reg |_PC| nil"), "{text}");
    assert!(text.contains("(write-reg |_PC| nil"), "{text}");
    // Linear: no residual cases.
    assert!(!text.contains("(cases"), "{text}");
    // The 0x40 immediate appears.
    assert!(text.contains("#x0000000000000040"), "{text}");
}

/// Without the EL/SP constraints the banked-SP selection forks: one case
/// for SP=0 and one per exception level (the five cases described in
/// §2.1 of the paper).
#[test]
fn unconstrained_add_sp_has_five_cases() {
    let cfg = IslaConfig::new(ARM);
    let r = trace_opcode(&cfg, &Opcode::Concrete(0x910103ff)).expect("traces");
    let text = print_trace(&r.trace);
    assert!(text.contains("(cases"), "expected case split: {text}");
    // All four banked stack pointers are reachable.
    for sp in ["SP_EL0", "SP_EL1", "SP_EL2", "SP_EL3"] {
        assert!(text.contains(sp), "missing {sp}: {text}");
    }
}

/// Fig. 6: beq (b.eq) has a Cases split on PSTATE.Z.
#[test]
fn fig6_beq_trace_shape() {
    // b.eq #-16: cond=0000, imm19 = -4.
    let imm19 = (-4i32 as u32) & 0x7ffff;
    let beq = 0x54000000u32 | (imm19 << 5);
    let r = trace_opcode(&arm_el2_cfg(), &Opcode::Concrete(beq)).expect("traces");
    let text = print_trace(&r.trace);
    assert!(
        text.contains("(read-reg |PSTATE| ((_ field |Z|))"),
        "{text}"
    );
    assert!(text.contains("(cases"), "{text}");
    // The backwards offset appears as a canonical subtraction
    // (bvadd pc 0xfff…f0 is rewritten to bvsub pc 0x10).
    assert!(
        text.contains("#xfffffffffffffff0") || text.contains("(bvsub v"),
        "backwards offset: {text}"
    );
    match &r.trace {
        t => {
            assert!(count_cases(t) == 1, "exactly one case split: {text}");
        }
    }
}

fn count_cases(t: &Trace) -> usize {
    match t {
        Trace::Nil => 0,
        Trace::Cons(_, rest) => count_cases(rest),
        Trace::Cases(ts) => 1 + ts.iter().map(count_cases).sum::<usize>(),
    }
}

/// The generated trace, executed by the ITL machine, agrees with the
/// concrete mini-Sail interpreter (a small translation validation).
#[test]
fn trace_execution_matches_model_semantics() {
    let r = trace_opcode(&arm_el2_cfg(), &Opcode::Concrete(0x910103ff)).expect("traces");
    let mut m = Machine::new();
    m.set_reg(Reg::field("PSTATE", "EL"), Bv::new(2, 2));
    m.set_reg(Reg::field("PSTATE", "SP"), Bv::new(1, 1));
    m.set_reg(Reg::new("SP_EL2"), Bv::new(64, 0x8_0000));
    m.set_reg(Reg::new("_PC"), Bv::new(64, 0x1000));
    m.set_instr(0x1000, Arc::new(r.trace));
    let out = run(&mut m, &PcName(Reg::new("_PC")), &mut ZeroIo, 4);
    assert_eq!(out.stop, Stop::End(0x1004));
    assert_eq!(
        m.reg(&Reg::new("SP_EL2")),
        Some(islaris_smt::Value::Bits(Bv::new(64, 0x8_0040)))
    );
}

/// Assumption mismatch at runtime reaches ⊥, per the ITL semantics.
#[test]
fn assumption_violation_fails_at_runtime() {
    let r = trace_opcode(&arm_el2_cfg(), &Opcode::Concrete(0x910103ff)).expect("traces");
    let mut m = Machine::new();
    m.set_reg(Reg::field("PSTATE", "EL"), Bv::new(2, 1)); // not the assumed EL2
    m.set_reg(Reg::field("PSTATE", "SP"), Bv::new(1, 1));
    m.set_reg(Reg::new("SP_EL2"), Bv::new(64, 0x8_0000));
    m.set_reg(Reg::new("_PC"), Bv::new(64, 0x1000));
    m.set_instr(0x1000, Arc::new(r.trace));
    let out = run(&mut m, &PcName(Reg::new("_PC")), &mut ZeroIo, 4);
    assert!(matches!(out.stop, Stop::Fail(_)));
}

/// memcpy's ldrb with symbolic base and index registers produces a
/// symbolic-address read-mem.
#[test]
fn ldrb_register_offset_symbolic_address() {
    // ldrb w4, [x1, x3]
    let r = trace_opcode(&arm_el2_cfg(), &Opcode::Concrete(0x38636824)).expect("traces");
    let text = print_trace(&r.trace);
    assert!(text.contains("(read-mem"), "{text}");
    assert!(text.contains("(read-reg |R1| nil"), "{text}");
    assert!(text.contains("(read-reg |R3| nil"), "{text}");
    assert!(text.contains("(write-reg |R4| nil"), "{text}");
}

/// Partially symbolic opcodes (pKVM relocation patching): movz with a
/// symbolic imm16 leaves the parameter free in the trace.
#[test]
fn symbolic_movz_immediate_is_parametric() {
    // movz x0, #imm16 : sf=1 opc=10 100101 hw=00 imm16 Rd=00000
    let imm = Var(0);
    let expr = Expr::concat(
        Expr::bv(11, 0b11010010100), // sf opc 100101 hw
        Expr::concat(Expr::var(imm), Expr::bv(5, 0)),
    );
    let opcode = Opcode::Symbolic {
        expr,
        params: vec![(imm, Sort::BitVec(16))],
        assumptions: vec![],
    };
    let r = trace_opcode(&arm_el2_cfg(), &opcode).expect("traces");
    let text = print_trace(&r.trace);
    assert_eq!(r.params, vec![(imm, Sort::BitVec(16))]);
    assert!(text.contains("v0"), "parameter appears in trace: {text}");
    assert!(text.contains("(write-reg |R0| nil"), "{text}");
    // No declare-const for the parameter: it stays free.
    assert!(!text.contains("(declare-const v0 "), "{text}");
}

/// Unaligned str under an alignment-enforcing config goes down the fault
/// path when the address is constrained to be misaligned.
#[test]
fn unaligned_store_takes_fault_path() {
    let cfg = IslaConfig::new(ARM)
        .assume_reg("PSTATE.EL", Bv::new(2, 0b10))
        .assume_reg("PSTATE.SP", Bv::new(1, 0b1))
        .assume_reg("PSTATE.N", Bv::new(1, 0))
        .assume_reg("PSTATE.Z", Bv::new(1, 0))
        .assume_reg("PSTATE.C", Bv::new(1, 0))
        .assume_reg("PSTATE.V", Bv::new(1, 0))
        .assume_reg("PSTATE.D", Bv::new(1, 0))
        .assume_reg("PSTATE.A", Bv::new(1, 0))
        .assume_reg("PSTATE.I", Bv::new(1, 0))
        .assume_reg("PSTATE.F", Bv::new(1, 0))
        .assume_reg("PSTATE.nRW", Bv::new(1, 0))
        .assume_reg("SCTLR_EL2", Bv::new(64, 0b10))
        .assume_reg("R1", Bv::new(64, 0x2001)); // misaligned base
                                                // str x0, [x1]
    let r = trace_opcode(&cfg, &Opcode::Concrete(0xF9000020)).expect("traces");
    let text = print_trace(&r.trace);
    // The fault path writes the syndrome and fault-address registers and
    // jumps via VBAR_EL2; no data write happens.
    assert!(text.contains("(write-reg |ESR_EL2| nil"), "{text}");
    assert!(text.contains("(write-reg |FAR_EL2| nil"), "{text}");
    assert!(text.contains("(read-reg |VBAR_EL2| nil"), "{text}");
    assert!(!text.contains("(write-mem"), "{text}");
}

/// Aligned str under the same config stores normally.
#[test]
fn aligned_store_stores() {
    let cfg = arm_el2_cfg().assume_reg("R1", Bv::new(64, 0x2000));
    let r = trace_opcode(&cfg, &Opcode::Concrete(0xF9000020)).expect("traces");
    let text = print_trace(&r.trace);
    assert!(text.contains("(write-mem"), "{text}");
    assert!(!text.contains("ESR_EL2"), "{text}");
}

/// RISC-V traces come out of the same machinery (§2.7: the tooling is
/// architecture-independent).
#[test]
fn riscv_addi_trace() {
    let cfg = IslaConfig::new(RISCV);
    // addi x1, x2, 42
    let addi = (42u32 << 20) | (2 << 15) | (1 << 7) | 0b0010011;
    let r = trace_opcode(&cfg, &Opcode::Concrete(addi)).expect("traces");
    let text = print_trace(&r.trace);
    assert!(text.contains("(read-reg |x2| nil"), "{text}");
    assert!(text.contains("(write-reg |x1| nil"), "{text}");
    assert!(text.contains("(read-reg |PC| nil"), "{text}");
}

/// Writes to x0 produce no register write beyond the PC.
#[test]
fn riscv_x0_writes_disappear() {
    let cfg = IslaConfig::new(RISCV);
    // addi x0, x1, 1
    let addi = (1u32 << 20) | (1 << 15) | 0b0010011;
    let r = trace_opcode(&cfg, &Opcode::Concrete(addi)).expect("traces");
    let text = print_trace(&r.trace);
    assert!(!text.contains("(write-reg |x0|"), "{text}");
}

/// trace_program builds an instruction map whose concrete execution
/// copies a byte (a two-instruction memcpy fragment).
#[test]
fn program_traces_execute() {
    // RISC-V: lb x3, 0(x1); sb x3, 0(x2); then fall off the program.
    let lb = (1u32 << 15) | (3 << 7) | 0b0000011;
    let sb = (3u32 << 20) | (2 << 15) | 0b0100011;
    let cfg = IslaConfig::new(RISCV);
    let pt = trace_program(&cfg, &[(0x1000, lb), (0x1004, sb)]).expect("traces");
    let mut m = Machine::new();
    m.instrs = pt.instrs;
    m.set_reg(Reg::new("PC"), Bv::new(64, 0x1000));
    m.set_reg(Reg::new("x1"), Bv::new(64, 0x2000));
    m.set_reg(Reg::new("x2"), Bv::new(64, 0x3000));
    m.set_reg(Reg::new("x3"), Bv::zero(64));
    m.store_bytes(0x2000, &[0x7f]);
    m.store_bytes(0x3000, &[0x00]);
    let out = run(&mut m, &PcName(Reg::new("PC")), &mut ZeroIo, 8);
    assert_eq!(out.stop, Stop::End(0x1008));
    assert_eq!(m.load_le(0x3000, 1), Some(Bv::new(8, 0x7f)));
}

/// The relaxed-constraint mechanism of the pKVM case study: constrain
/// SPSR_EL2 to one of two concrete values and trace eret; both return
/// targets must appear as cases (or resolved occurrences).
#[test]
fn eret_with_disjunctive_spsr_constraint() {
    let a = Bv::new(64, 0x3c5); // return to EL1 with SP_EL1 (0b0101), DAIF set
    let b = Bv::new(64, 0x3c9); // return to EL2 with SP_EL2 (0b1001)
    let cfg = IslaConfig::new(ARM)
        .assume_reg("PSTATE.EL", Bv::new(2, 0b10))
        .assume_reg("PSTATE.SP", Bv::new(1, 0b1))
        .assume_reg("HCR_EL2", Bv::new(64, 0x8000_0000))
        .constrain_reg("SPSR_EL2", move |e| {
            Expr::or(
                Expr::eq(e.clone(), Expr::bits(a)),
                Expr::eq(e.clone(), Expr::bits(b)),
            )
        });
    let r = trace_opcode(&cfg, &Opcode::Concrete(0xD69F03E0)).expect("traces");
    let text = print_trace(&r.trace);
    assert!(text.contains("(assume (or"), "constraint recorded: {text}");
    assert!(text.contains("(read-reg |ELR_EL2| nil"), "{text}");
    // PSTATE.EL is written along every surviving path.
    assert!(
        text.contains("(write-reg |PSTATE| ((_ field |EL|))"),
        "{text}"
    );
}

/// Event counts stay in a plausible range (Fig. 12 reports 169 events for
/// the eight-instruction Arm memcpy; single instructions are tens).
#[test]
fn event_counts_are_reasonable() {
    let r = trace_opcode(&arm_el2_cfg(), &Opcode::Concrete(0x910103ff)).expect("traces");
    let n = r.trace.event_count();
    assert!((6..=40).contains(&n), "add sp trace has {n} events");
    assert!(r.stats.events == n);
}

/// Undefined opcodes produce an empty-ish trace (decode exits), not an
/// error: they are simply outside the fragment.
#[test]
fn undefined_opcode_exits() {
    let r = trace_opcode(&arm_el2_cfg(), &Opcode::Concrete(0xFFFF_FFFF)).expect("traces");
    // No register writes at all.
    let text = print_trace(&r.trace);
    assert!(!text.contains("write-reg"), "{text}");
}

/// DefineConst events appear for named intermediates, as in Fig. 3.
#[test]
fn traces_contain_define_const() {
    let r = trace_opcode(&arm_el2_cfg(), &Opcode::Concrete(0x910103ff)).expect("traces");
    let mut found = false;
    fn walk(t: &Trace, found: &mut bool) {
        match t {
            Trace::Nil => {}
            Trace::Cons(Event::DefineConst(_, _), rest) => {
                *found = true;
                walk(rest, found);
            }
            Trace::Cons(_, rest) => walk(rest, found),
            Trace::Cases(ts) => ts.iter().for_each(|t| walk(t, found)),
        }
    }
    walk(&r.trace, &mut found);
    assert!(found, "expected define-const events");
}
