//! S-expression concrete syntax for Isla traces.
//!
//! This is the on-the-wire format of Figs. 3 and 6 in the paper:
//!
//! ```text
//! (trace
//!   (assume-reg |PSTATE| ((_ field |EL|)) #b10)
//!   (declare-const v38 (_ BitVec 64))
//!   (read-reg |SP_EL2| nil v38)
//!   (define-const v61 (bvadd ((_ extract 63 0) ((_ zero_extend 64) v38))
//!                            #x0000000000000040))
//!   (write-reg |SP_EL2| nil v61)
//!   (cases (trace (assert v37) …) (trace (assert (not v37)) …)))
//! ```
//!
//! Dialect notes (documented divergences from Isla's output): field reads
//! carry the field value directly rather than a `(_ struct …)` wrapper, and
//! memory events are `(read-mem value addr bytes)` / `(write-mem addr value
//! bytes)`.

use std::fmt;
use std::sync::Arc;

use islaris_smt::{BvBinop, BvCmp, BvUnop, Expr, ExprKind, Sort, Var};

use crate::event::{Event, Trace};
use crate::reg::Reg;

/// A parsed S-expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sexp {
    /// An atom: symbol, literal, or `|quoted|` name.
    Atom(String),
    /// A parenthesised list.
    List(Vec<Sexp>),
}

impl Sexp {
    /// Builds an atom from a string slice.
    #[must_use]
    pub fn atom(s: &str) -> Sexp {
        Sexp::Atom(s.to_owned())
    }

    /// Builds a list node.
    #[must_use]
    pub fn list(items: Vec<Sexp>) -> Sexp {
        Sexp::List(items)
    }

    /// The atom's text, or `None` for a list.
    #[must_use]
    pub fn as_atom(&self) -> Option<&str> {
        match self {
            Sexp::Atom(a) => Some(a),
            Sexp::List(_) => None,
        }
    }

    /// The list's items, or `None` for an atom.
    #[must_use]
    pub fn as_list(&self) -> Option<&[Sexp]> {
        match self {
            Sexp::List(l) => Some(l),
            Sexp::Atom(_) => None,
        }
    }
}

impl fmt::Display for Sexp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sexp::Atom(a) => write!(f, "{a}"),
            Sexp::List(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(offset: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        offset,
        message: message.into(),
    })
}

/// Tokenises and parses one S-expression from `input`.
pub fn parse_sexp(input: &str) -> Result<Sexp, ParseError> {
    let mut parser = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let sexp = parser.parse()?;
    parser.skip_ws();
    if parser.pos != parser.input.len() {
        return err(parser.pos, "trailing input after S-expression");
    }
    Ok(sexp)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.input.len() {
            match self.input[self.pos] {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                b';' => {
                    while self.pos < self.input.len() && self.input[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn parse(&mut self) -> Result<Sexp, ParseError> {
        self.skip_ws();
        if self.pos >= self.input.len() {
            return err(self.pos, "unexpected end of input");
        }
        match self.input[self.pos] {
            b'(' => {
                self.pos += 1;
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    if self.pos >= self.input.len() {
                        return err(self.pos, "unterminated list");
                    }
                    if self.input[self.pos] == b')' {
                        self.pos += 1;
                        return Ok(Sexp::List(items));
                    }
                    items.push(self.parse()?);
                }
            }
            b')' => err(self.pos, "unexpected `)`"),
            b'|' => {
                let start = self.pos;
                self.pos += 1;
                while self.pos < self.input.len() && self.input[self.pos] != b'|' {
                    self.pos += 1;
                }
                if self.pos >= self.input.len() {
                    return err(start, "unterminated `|` atom");
                }
                self.pos += 1;
                let text =
                    std::str::from_utf8(&self.input[start..self.pos]).map_err(|_| ParseError {
                        offset: start,
                        message: "invalid UTF-8".into(),
                    })?;
                Ok(Sexp::Atom(text.to_owned()))
            }
            _ => {
                let start = self.pos;
                while self.pos < self.input.len()
                    && !matches!(
                        self.input[self.pos],
                        b' ' | b'\t' | b'\n' | b'\r' | b'(' | b')'
                    )
                {
                    self.pos += 1;
                }
                let text =
                    std::str::from_utf8(&self.input[start..self.pos]).map_err(|_| ParseError {
                        offset: start,
                        message: "invalid UTF-8".into(),
                    })?;
                Ok(Sexp::Atom(text.to_owned()))
            }
        }
    }
}

// ----- printing -----

fn quote(name: &str) -> Sexp {
    Sexp::Atom(format!("|{name}|"))
}

fn reg_accessor(r: &Reg) -> Sexp {
    match r.field_name() {
        None => Sexp::atom("nil"),
        Some(f) => Sexp::list(vec![Sexp::list(vec![
            Sexp::atom("_"),
            Sexp::atom("field"),
            quote(f),
        ])]),
    }
}

/// Renders an expression as an S-expression (SMT-LIB concrete syntax).
#[must_use]
pub fn expr_to_sexp(e: &Expr) -> Sexp {
    match e.kind() {
        ExprKind::Val(v) => Sexp::Atom(v.to_string()),
        ExprKind::Var(v) => Sexp::Atom(v.to_string()),
        ExprKind::Not(a) => Sexp::list(vec![Sexp::atom("not"), expr_to_sexp(a)]),
        ExprKind::And(a, b) => {
            Sexp::list(vec![Sexp::atom("and"), expr_to_sexp(a), expr_to_sexp(b)])
        }
        ExprKind::Or(a, b) => Sexp::list(vec![Sexp::atom("or"), expr_to_sexp(a), expr_to_sexp(b)]),
        ExprKind::Eq(a, b) => Sexp::list(vec![Sexp::atom("="), expr_to_sexp(a), expr_to_sexp(b)]),
        ExprKind::Ite(c, t, f) => Sexp::list(vec![
            Sexp::atom("ite"),
            expr_to_sexp(c),
            expr_to_sexp(t),
            expr_to_sexp(f),
        ]),
        ExprKind::Unop(op, a) => Sexp::list(vec![
            Sexp::atom(match op {
                BvUnop::Not => "bvnot",
                BvUnop::Neg => "bvneg",
                BvUnop::Rev => "bvrev",
            }),
            expr_to_sexp(a),
        ]),
        ExprKind::Binop(op, a, b) => Sexp::list(vec![
            Sexp::atom(match op {
                BvBinop::Add => "bvadd",
                BvBinop::Sub => "bvsub",
                BvBinop::Mul => "bvmul",
                BvBinop::Udiv => "bvudiv",
                BvBinop::Urem => "bvurem",
                BvBinop::And => "bvand",
                BvBinop::Or => "bvor",
                BvBinop::Xor => "bvxor",
                BvBinop::Shl => "bvshl",
                BvBinop::Lshr => "bvlshr",
                BvBinop::Ashr => "bvashr",
            }),
            expr_to_sexp(a),
            expr_to_sexp(b),
        ]),
        ExprKind::Cmp(op, a, b) => Sexp::list(vec![
            Sexp::atom(match op {
                BvCmp::Ult => "bvult",
                BvCmp::Ule => "bvule",
                BvCmp::Slt => "bvslt",
                BvCmp::Sle => "bvsle",
            }),
            expr_to_sexp(a),
            expr_to_sexp(b),
        ]),
        ExprKind::Extract(hi, lo, a) => Sexp::list(vec![
            Sexp::list(vec![
                Sexp::atom("_"),
                Sexp::atom("extract"),
                Sexp::Atom(hi.to_string()),
                Sexp::Atom(lo.to_string()),
            ]),
            expr_to_sexp(a),
        ]),
        ExprKind::ZeroExtend(n, a) => Sexp::list(vec![
            Sexp::list(vec![
                Sexp::atom("_"),
                Sexp::atom("zero_extend"),
                Sexp::Atom(n.to_string()),
            ]),
            expr_to_sexp(a),
        ]),
        ExprKind::SignExtend(n, a) => Sexp::list(vec![
            Sexp::list(vec![
                Sexp::atom("_"),
                Sexp::atom("sign_extend"),
                Sexp::Atom(n.to_string()),
            ]),
            expr_to_sexp(a),
        ]),
        ExprKind::Concat(a, b) => {
            Sexp::list(vec![Sexp::atom("concat"), expr_to_sexp(a), expr_to_sexp(b)])
        }
    }
}

fn sort_to_sexp(s: Sort) -> Sexp {
    match s {
        Sort::Bool => Sexp::atom("Bool"),
        Sort::BitVec(n) => Sexp::list(vec![
            Sexp::atom("_"),
            Sexp::atom("BitVec"),
            Sexp::Atom(n.to_string()),
        ]),
    }
}

fn event_to_sexp(ev: &Event) -> Sexp {
    match ev {
        Event::ReadReg(r, v) => Sexp::list(vec![
            Sexp::atom("read-reg"),
            quote(r.name()),
            reg_accessor(r),
            expr_to_sexp(v),
        ]),
        Event::WriteReg(r, v) => Sexp::list(vec![
            Sexp::atom("write-reg"),
            quote(r.name()),
            reg_accessor(r),
            expr_to_sexp(v),
        ]),
        Event::AssumeReg(r, v) => Sexp::list(vec![
            Sexp::atom("assume-reg"),
            quote(r.name()),
            reg_accessor(r),
            expr_to_sexp(v),
        ]),
        Event::ReadMem { value, addr, bytes } => Sexp::list(vec![
            Sexp::atom("read-mem"),
            expr_to_sexp(value),
            expr_to_sexp(addr),
            Sexp::Atom(bytes.to_string()),
        ]),
        Event::WriteMem { addr, value, bytes } => Sexp::list(vec![
            Sexp::atom("write-mem"),
            expr_to_sexp(addr),
            expr_to_sexp(value),
            Sexp::Atom(bytes.to_string()),
        ]),
        Event::Assume(e) => Sexp::list(vec![Sexp::atom("assume"), expr_to_sexp(e)]),
        Event::Assert(e) => Sexp::list(vec![Sexp::atom("assert"), expr_to_sexp(e)]),
        Event::DeclareConst(x, t) => Sexp::list(vec![
            Sexp::atom("declare-const"),
            Sexp::Atom(x.to_string()),
            sort_to_sexp(*t),
        ]),
        Event::DefineConst(x, e) => Sexp::list(vec![
            Sexp::atom("define-const"),
            Sexp::Atom(x.to_string()),
            expr_to_sexp(e),
        ]),
    }
}

/// Renders a trace in Isla's `(trace …)` concrete syntax.
#[must_use]
pub fn trace_to_sexp(t: &Trace) -> Sexp {
    let mut items = vec![Sexp::atom("trace")];
    push_trace(t, &mut items);
    Sexp::List(items)
}

fn push_trace(t: &Trace, out: &mut Vec<Sexp>) {
    match t {
        Trace::Nil => {}
        Trace::Cons(ev, rest) => {
            out.push(event_to_sexp(ev));
            push_trace(rest, out);
        }
        Trace::Cases(branches) => {
            let mut cases = vec![Sexp::atom("cases")];
            cases.extend(branches.iter().map(trace_to_sexp));
            out.push(Sexp::List(cases));
        }
    }
}

/// Renders a trace as a string.
#[must_use]
pub fn print_trace(t: &Trace) -> String {
    trace_to_sexp(t).to_string()
}

// ----- parsing back -----

fn unquote(s: &str) -> &str {
    s.strip_prefix('|')
        .and_then(|x| x.strip_suffix('|'))
        .unwrap_or(s)
}

fn parse_reg(name: &Sexp, accessor: &Sexp, at: &str) -> Result<Reg, ParseError> {
    let n = name.as_atom().ok_or_else(|| ParseError {
        offset: 0,
        message: format!("{at}: register name"),
    })?;
    let n = unquote(n);
    match accessor {
        Sexp::Atom(a) if a == "nil" => Ok(Reg::new(n)),
        Sexp::List(items) if items.len() == 1 => {
            let inner = items[0].as_list().ok_or_else(|| ParseError {
                offset: 0,
                message: format!("{at}: accessor"),
            })?;
            match inner {
                [Sexp::Atom(u), Sexp::Atom(f), Sexp::Atom(fld)] if u == "_" && f == "field" => {
                    Ok(Reg::field(n, unquote(fld)))
                }
                _ => err(0, format!("{at}: unsupported accessor")),
            }
        }
        _ => err(0, format!("{at}: unsupported accessor")),
    }
}

/// Parses an expression from an S-expression.
pub fn sexp_to_expr(s: &Sexp) -> Result<Expr, ParseError> {
    match s {
        Sexp::Atom(a) => {
            if a == "true" {
                return Ok(Expr::bool(true));
            }
            if a == "false" {
                return Ok(Expr::bool(false));
            }
            if a.starts_with("#x") || a.starts_with("#b") {
                let bv = a.parse::<islaris_bv::Bv>().map_err(|e| ParseError {
                    offset: 0,
                    message: e.to_string(),
                })?;
                return Ok(Expr::bits(bv));
            }
            if let Some(num) = a.strip_prefix('v') {
                if let Ok(n) = num.parse::<u32>() {
                    return Ok(Expr::var(Var(n)));
                }
            }
            err(0, format!("unknown atom `{a}` in expression"))
        }
        Sexp::List(items) => {
            let head = items.first().ok_or_else(|| ParseError {
                offset: 0,
                message: "empty expression".into(),
            })?;
            match head {
                Sexp::Atom(op) => {
                    let args: Vec<Expr> = items[1..]
                        .iter()
                        .map(sexp_to_expr)
                        .collect::<Result<_, _>>()?;
                    parse_application(op, args)
                }
                Sexp::List(indexed) => {
                    // ((_ extract hi lo) e) and friends.
                    let strs: Vec<&str> = indexed.iter().filter_map(Sexp::as_atom).collect();
                    if items.len() != 2 {
                        return err(0, "indexed operator expects one argument");
                    }
                    let arg = sexp_to_expr(&items[1])?;
                    match strs.as_slice() {
                        ["_", "extract", hi, lo] => {
                            let hi: u32 = hi.parse().map_err(|_| ParseError {
                                offset: 0,
                                message: "bad extract index".into(),
                            })?;
                            let lo: u32 = lo.parse().map_err(|_| ParseError {
                                offset: 0,
                                message: "bad extract index".into(),
                            })?;
                            Ok(Expr::extract(hi, lo, arg))
                        }
                        ["_", "zero_extend", n] => {
                            let n: u32 = n.parse().map_err(|_| ParseError {
                                offset: 0,
                                message: "bad zero_extend".into(),
                            })?;
                            Ok(Expr::zero_extend(n, arg))
                        }
                        ["_", "sign_extend", n] => {
                            let n: u32 = n.parse().map_err(|_| ParseError {
                                offset: 0,
                                message: "bad sign_extend".into(),
                            })?;
                            Ok(Expr::sign_extend(n, arg))
                        }
                        _ => err(0, "unsupported indexed operator"),
                    }
                }
            }
        }
    }
}

fn parse_application(op: &str, mut args: Vec<Expr>) -> Result<Expr, ParseError> {
    let arity_err = |n: usize| ParseError {
        offset: 0,
        message: format!("operator `{op}` expects {n} arguments"),
    };
    let bin = |op2: BvBinop, mut args: Vec<Expr>| {
        if args.len() != 2 {
            return Err(arity_err(2));
        }
        let b = args.pop().expect("len checked");
        let a = args.pop().expect("len checked");
        Ok(Expr::binop(op2, a, b))
    };
    let cmp = |op2: BvCmp, mut args: Vec<Expr>| {
        if args.len() != 2 {
            return Err(arity_err(2));
        }
        let b = args.pop().expect("len checked");
        let a = args.pop().expect("len checked");
        Ok(Expr::cmp(op2, a, b))
    };
    match op {
        "not" => {
            if args.len() != 1 {
                return Err(arity_err(1));
            }
            Ok(Expr::not(args.pop().expect("len checked")))
        }
        "and" => Ok(Expr::and_all(args)),
        "or" => {
            let mut it = args.into_iter();
            let first = it.next().ok_or_else(|| arity_err(2))?;
            Ok(it.fold(first, Expr::or))
        }
        "=" => {
            if args.len() != 2 {
                return Err(arity_err(2));
            }
            let b = args.pop().expect("len checked");
            let a = args.pop().expect("len checked");
            Ok(Expr::eq(a, b))
        }
        "ite" => {
            if args.len() != 3 {
                return Err(arity_err(3));
            }
            let e = args.pop().expect("len checked");
            let t = args.pop().expect("len checked");
            let c = args.pop().expect("len checked");
            Ok(Expr::ite(c, t, e))
        }
        "concat" => {
            if args.len() != 2 {
                return Err(arity_err(2));
            }
            let b = args.pop().expect("len checked");
            let a = args.pop().expect("len checked");
            Ok(Expr::concat(a, b))
        }
        "bvnot" => {
            if args.len() != 1 {
                return Err(arity_err(1));
            }
            Ok(Expr::unop(BvUnop::Not, args.pop().expect("len checked")))
        }
        "bvneg" => {
            if args.len() != 1 {
                return Err(arity_err(1));
            }
            Ok(Expr::unop(BvUnop::Neg, args.pop().expect("len checked")))
        }
        "bvrev" => {
            if args.len() != 1 {
                return Err(arity_err(1));
            }
            Ok(Expr::unop(BvUnop::Rev, args.pop().expect("len checked")))
        }
        "bvadd" => bin(BvBinop::Add, args),
        "bvsub" => bin(BvBinop::Sub, args),
        "bvmul" => bin(BvBinop::Mul, args),
        "bvudiv" => bin(BvBinop::Udiv, args),
        "bvurem" => bin(BvBinop::Urem, args),
        "bvand" => bin(BvBinop::And, args),
        "bvor" => bin(BvBinop::Or, args),
        "bvxor" => bin(BvBinop::Xor, args),
        "bvshl" => bin(BvBinop::Shl, args),
        "bvlshr" => bin(BvBinop::Lshr, args),
        "bvashr" => bin(BvBinop::Ashr, args),
        "bvult" => cmp(BvCmp::Ult, args),
        "bvule" => cmp(BvCmp::Ule, args),
        "bvslt" => cmp(BvCmp::Slt, args),
        "bvsle" => cmp(BvCmp::Sle, args),
        _ => err(0, format!("unknown operator `{op}`")),
    }
}

fn sexp_to_sort(s: &Sexp) -> Result<Sort, ParseError> {
    match s {
        Sexp::Atom(a) if a == "Bool" => Ok(Sort::Bool),
        Sexp::List(items) => {
            let strs: Vec<&str> = items.iter().filter_map(Sexp::as_atom).collect();
            match strs.as_slice() {
                ["_", "BitVec", n] => {
                    let n: u32 = n.parse().map_err(|_| ParseError {
                        offset: 0,
                        message: "bad width".into(),
                    })?;
                    Ok(Sort::BitVec(n))
                }
                _ => err(0, "unknown sort"),
            }
        }
        _ => err(0, "unknown sort"),
    }
}

fn parse_var(s: &Sexp) -> Result<Var, ParseError> {
    let a = s.as_atom().ok_or_else(|| ParseError {
        offset: 0,
        message: "expected variable".into(),
    })?;
    a.strip_prefix('v')
        .and_then(|n| n.parse::<u32>().ok())
        .map(Var)
        .ok_or_else(|| ParseError {
            offset: 0,
            message: format!("bad variable `{a}`"),
        })
}

fn sexp_to_event(items: &[Sexp]) -> Result<Event, ParseError> {
    let head = items[0].as_atom().ok_or_else(|| ParseError {
        offset: 0,
        message: "event head".into(),
    })?;
    match head {
        "read-reg" | "write-reg" | "assume-reg" => {
            if items.len() != 4 {
                return err(0, format!("{head} expects 3 arguments"));
            }
            let reg = parse_reg(&items[1], &items[2], head)?;
            let v = sexp_to_expr(&items[3])?;
            Ok(match head {
                "read-reg" => Event::ReadReg(reg, v),
                "write-reg" => Event::WriteReg(reg, v),
                _ => Event::AssumeReg(reg, v),
            })
        }
        "read-mem" | "write-mem" => {
            if items.len() != 4 {
                return err(0, format!("{head} expects 3 arguments"));
            }
            let a = sexp_to_expr(&items[1])?;
            let b = sexp_to_expr(&items[2])?;
            let bytes: u32 = items[3]
                .as_atom()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| ParseError {
                    offset: 0,
                    message: "bad byte count".into(),
                })?;
            Ok(if head == "read-mem" {
                Event::ReadMem {
                    value: a,
                    addr: b,
                    bytes,
                }
            } else {
                Event::WriteMem {
                    addr: a,
                    value: b,
                    bytes,
                }
            })
        }
        "assume" => Ok(Event::Assume(sexp_to_expr(&items[1])?)),
        "assert" => Ok(Event::Assert(sexp_to_expr(&items[1])?)),
        "declare-const" => {
            if items.len() != 3 {
                return err(0, "declare-const expects 2 arguments");
            }
            Ok(Event::DeclareConst(
                parse_var(&items[1])?,
                sexp_to_sort(&items[2])?,
            ))
        }
        "define-const" => {
            if items.len() != 3 {
                return err(0, "define-const expects 2 arguments");
            }
            Ok(Event::DefineConst(
                parse_var(&items[1])?,
                sexp_to_expr(&items[2])?,
            ))
        }
        other => err(0, format!("unknown event `{other}`")),
    }
}

/// Parses a `(trace …)` S-expression into a [`Trace`].
pub fn sexp_to_trace(s: &Sexp) -> Result<Trace, ParseError> {
    let items = s.as_list().ok_or_else(|| ParseError {
        offset: 0,
        message: "expected (trace …)".into(),
    })?;
    if items.first().and_then(Sexp::as_atom) != Some("trace") {
        return err(0, "expected (trace …)");
    }
    build_trace(&items[1..])
}

fn build_trace(items: &[Sexp]) -> Result<Trace, ParseError> {
    match items.split_first() {
        None => Ok(Trace::Nil),
        Some((first, rest)) => {
            let list = first.as_list().ok_or_else(|| ParseError {
                offset: 0,
                message: "expected event".into(),
            })?;
            if list.first().and_then(Sexp::as_atom) == Some("cases") {
                if !rest.is_empty() {
                    return err(0, "cases must be the last trace element");
                }
                let branches: Vec<Trace> = list[1..]
                    .iter()
                    .map(sexp_to_trace)
                    .collect::<Result<_, _>>()?;
                return Ok(Trace::Cases(branches));
            }
            let ev = sexp_to_event(list)?;
            Ok(Trace::Cons(ev, Arc::new(build_trace(rest)?)))
        }
    }
}

/// Parses a trace from its string form.
pub fn parse_trace(input: &str) -> Result<Trace, ParseError> {
    sexp_to_trace(&parse_sexp(input)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The add sp, sp, 64 trace from Fig. 3 of the paper (our dialect).
    const FIG3: &str = "(trace
      (assume-reg |PSTATE| ((_ field |EL|)) #b10)
      (assume-reg |PSTATE| ((_ field |SP|)) #b1)
      (declare-const v38 (_ BitVec 64))
      (read-reg |SP_EL2| nil v38)
      (define-const v61 (bvadd ((_ extract 63 0) ((_ zero_extend 64) v38)) #x0000000000000040))
      (write-reg |SP_EL2| nil v61)
      (declare-const v62 (_ BitVec 64))
      (read-reg |_PC| nil v62)
      (define-const v63 (bvadd v62 #x0000000000000004))
      (write-reg |_PC| nil v63))";

    #[test]
    fn parses_fig3_trace() {
        let t = parse_trace(FIG3).expect("parses");
        assert_eq!(t.event_count(), 10);
        match &t {
            Trace::Cons(Event::AssumeReg(r, v), _) => {
                assert_eq!(*r, Reg::field("PSTATE", "EL"));
                assert_eq!(v.to_string(), "#b10");
            }
            other => panic!("unexpected head {other:?}"),
        }
    }

    #[test]
    fn print_parse_roundtrip() {
        let t = parse_trace(FIG3).expect("parses");
        let printed = print_trace(&t);
        let t2 = parse_trace(&printed).expect("round-trips");
        assert_eq!(t, t2);
    }

    #[test]
    fn parses_fig6_cases() {
        // The beq -16 trace of Fig. 6 (simplified).
        let input = "(trace
          (declare-const v27 (_ BitVec 1))
          (read-reg |PSTATE| ((_ field |Z|)) v27)
          (define-const v37 (= v27 #b1))
          (cases
            (trace (assert v37)
                   (declare-const v38 (_ BitVec 64))
                   (read-reg |_PC| nil v38)
                   (define-const v39 (bvadd v38 #xfffffffffffffff0))
                   (write-reg |_PC| nil v39))
            (trace (assert (not v37))
                   (declare-const v38 (_ BitVec 64))
                   (read-reg |_PC| nil v38)
                   (define-const v39 (bvadd v38 #x0000000000000004))
                   (write-reg |_PC| nil v39))))";
        let t = parse_trace(input).expect("parses");
        assert_eq!(t.event_count(), 3 + 5 + 5);
        let printed = print_trace(&t);
        assert_eq!(parse_trace(&printed).expect("round-trips"), t);
    }

    #[test]
    fn parses_memory_events() {
        let input =
            "(trace (declare-const v1 (_ BitVec 8)) (read-mem v1 #x0000000000001000 1) (write-mem #x0000000000002000 v1 1))";
        let t = parse_trace(input).expect("parses");
        assert_eq!(t.event_count(), 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_trace("(trace (flub x))").is_err());
        assert!(parse_trace("(nottrace)").is_err());
        assert!(parse_sexp("(unclosed").is_err());
        assert!(parse_sexp("a b").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let input = "(trace ; a comment\n (assume true))";
        assert_eq!(parse_trace(input).expect("parses").event_count(), 1);
    }

    #[test]
    fn expr_roundtrip_covers_operators() {
        let exprs = [
            "(bvadd v1 #x00ff)",
            "(ite (bvult v1 v2) v1 v2)",
            "((_ extract 7 0) v3)",
            "((_ sign_extend 8) v3)",
            "(concat v1 v2)",
            "(bvrev v9)",
            "(and (= v1 v2) (not (bvsle v1 v2)))",
        ];
        for src in exprs {
            let s = parse_sexp(src).expect("sexp parses");
            let e = sexp_to_expr(&s).expect("expr parses");
            let back = expr_to_sexp(&e).to_string();
            let e2 = sexp_to_expr(&parse_sexp(&back).expect("reparse")).expect("expr reparses");
            assert_eq!(e, e2, "{src}");
        }
    }
}
