//! Register names, possibly with a field accessor.
//!
//! The trace language addresses registers as `r ::= ρ | ρ.f` (Fig. 4):
//! either a whole register (`SP_EL2`) or a named field of a struct-valued
//! register (`PSTATE.EL`). Fields are independent state cells in the
//! machine state, exactly as in the paper's register map `R`.

use std::fmt;
use std::sync::Arc;

/// A register reference: a name plus an optional field.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg {
    name: Arc<str>,
    field: Option<Arc<str>>,
}

impl Reg {
    /// A whole register, e.g. `Reg::new("SP_EL2")`.
    #[must_use]
    pub fn new(name: &str) -> Reg {
        Reg {
            name: name.into(),
            field: None,
        }
    }

    /// A field of a struct register, e.g. `Reg::field("PSTATE", "EL")`.
    #[must_use]
    pub fn field(name: &str, field: &str) -> Reg {
        Reg {
            name: name.into(),
            field: Some(field.into()),
        }
    }

    /// The register name (without the field).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The field accessor, if any.
    #[must_use]
    pub fn field_name(&self) -> Option<&str> {
        self.field.as_deref()
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.field {
            None => write!(f, "{}", self.name),
            Some(fld) => write!(f, "{}.{}", self.name, fld),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_field() {
        assert_eq!(Reg::new("SP_EL2").to_string(), "SP_EL2");
        assert_eq!(Reg::field("PSTATE", "EL").to_string(), "PSTATE.EL");
    }

    #[test]
    fn equality_distinguishes_fields() {
        assert_ne!(Reg::field("PSTATE", "EL"), Reg::field("PSTATE", "SP"));
        assert_ne!(Reg::new("PSTATE"), Reg::field("PSTATE", "EL"));
        assert_eq!(Reg::new("X0"), Reg::new("X0"));
    }
}
