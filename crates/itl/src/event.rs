//! The Isla trace language (ITL): events `j` and traces `t` of Fig. 4.

use std::sync::Arc;

use islaris_smt::{Expr, Sort, Var};

use crate::reg::Reg;

/// A trace event `j` (Fig. 4 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `ReadReg(r, v)` — constrains `v` to the current value of `r`.
    ReadReg(Reg, Expr),
    /// `WriteReg(r, v)` — updates `r` to `v`.
    WriteReg(Reg, Expr),
    /// `ReadMem(v_d, v_a, n)` — reads `n` bytes at `v_a` into `v_d`.
    ReadMem {
        /// The value read.
        value: Expr,
        /// The address.
        addr: Expr,
        /// Number of bytes.
        bytes: u32,
    },
    /// `WriteMem(v_a, v_d, n)` — writes `n` bytes of `v_d` at `v_a`.
    WriteMem {
        /// The address.
        addr: Expr,
        /// The value written.
        value: Expr,
        /// Number of bytes.
        bytes: u32,
    },
    /// `AssumeReg(r, v)` — an Isla assumption about `r`; a proof
    /// obligation during verification (reaching ⊥ if violated).
    AssumeReg(Reg, Expr),
    /// `Assume(e)` — an Isla assumption; proof obligation.
    Assume(Expr),
    /// `Assert(e)` — proven by Isla's symbolic execution, an *assumption*
    /// for verification (branch conditions after `Cases`).
    Assert(Expr),
    /// `DeclareConst(x, τ)` — introduces a symbolic constant.
    DeclareConst(Var, Sort),
    /// `DefineConst(x, e)` — names the value of `e`.
    DefineConst(Var, Expr),
}

impl Event {
    /// Substitutes variables in the event's expressions.
    #[must_use]
    pub fn subst(&self, map: &dyn Fn(Var) -> Option<Expr>) -> Event {
        match self {
            Event::ReadReg(r, v) => Event::ReadReg(r.clone(), v.subst(map)),
            Event::WriteReg(r, v) => Event::WriteReg(r.clone(), v.subst(map)),
            Event::ReadMem { value, addr, bytes } => Event::ReadMem {
                value: value.subst(map),
                addr: addr.subst(map),
                bytes: *bytes,
            },
            Event::WriteMem { addr, value, bytes } => Event::WriteMem {
                addr: addr.subst(map),
                value: value.subst(map),
                bytes: *bytes,
            },
            Event::AssumeReg(r, v) => Event::AssumeReg(r.clone(), v.subst(map)),
            Event::Assume(e) => Event::Assume(e.subst(map)),
            Event::Assert(e) => Event::Assert(e.subst(map)),
            Event::DeclareConst(x, t) => Event::DeclareConst(*x, *t),
            Event::DefineConst(x, e) => Event::DefineConst(*x, e.subst(map)),
        }
    }
}

/// A trace `t ::= [] | j :: t | Cases(t₁, …, tₙ)` (Fig. 4).
///
/// Traces are trees: `Cases` expresses intra-instruction branching (§2.4),
/// with each subtrace starting with an `Assert` of its branch condition.
/// Tails are `Arc`-shared so suffixes can be reused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trace {
    /// The empty trace `[]`: instruction finished, fetch the next one.
    Nil,
    /// `j :: t`.
    Cons(Event, Arc<Trace>),
    /// `Cases(t₁, …, tₙ)`.
    Cases(Vec<Trace>),
}

impl Trace {
    /// Builds a linear trace from a sequence of events.
    #[must_use]
    pub fn linear<I: IntoIterator<Item = Event>>(events: I) -> Trace {
        Self::from_events(events, Trace::Nil)
    }

    /// Builds `events… :: tail`.
    #[must_use]
    pub fn from_events<I: IntoIterator<Item = Event>>(events: I, tail: Trace) -> Trace {
        let evs: Vec<Event> = events.into_iter().collect();
        evs.into_iter()
            .rev()
            .fold(tail, |acc, ev| Trace::Cons(ev, Arc::new(acc)))
    }

    /// Number of events in the trace, counting all `Cases` branches —
    /// the "ITL size" column of Fig. 12.
    #[must_use]
    pub fn event_count(&self) -> usize {
        match self {
            Trace::Nil => 0,
            Trace::Cons(_, t) => 1 + t.event_count(),
            Trace::Cases(ts) => ts.iter().map(Trace::event_count).sum(),
        }
    }

    /// Substitutes variables throughout the trace.
    #[must_use]
    pub fn subst(&self, map: &dyn Fn(Var) -> Option<Expr>) -> Trace {
        match self {
            Trace::Nil => Trace::Nil,
            Trace::Cons(ev, t) => Trace::Cons(ev.subst(map), Arc::new(t.subst(map))),
            Trace::Cases(ts) => Trace::Cases(ts.iter().map(|t| t.subst(map)).collect()),
        }
    }

    /// Substitutes a single variable by a value-expression (used by the
    /// operational rules `step-declare-const` / `step-define-const`).
    #[must_use]
    pub fn subst_var(&self, v: Var, e: &Expr) -> Trace {
        self.subst(&|w| (w == v).then(|| e.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use islaris_smt::Expr;

    fn rr(name: &str, var: u32) -> Event {
        Event::ReadReg(Reg::new(name), Expr::var(Var(var)))
    }

    #[test]
    fn linear_builds_cons_chain() {
        let t = Trace::linear([rr("X0", 0), rr("X1", 1)]);
        match &t {
            Trace::Cons(Event::ReadReg(r, _), rest) => {
                assert_eq!(r.name(), "X0");
                assert!(matches!(**rest, Trace::Cons(Event::ReadReg(_, _), _)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(t.event_count(), 2);
    }

    #[test]
    fn event_count_sums_cases() {
        let branch = |n| Trace::linear((0..n).map(|i| rr("X0", i)));
        let t = Trace::from_events([rr("PC", 9)], Trace::Cases(vec![branch(2), branch(3)]));
        assert_eq!(t.event_count(), 1 + 2 + 3);
    }

    #[test]
    fn subst_var_replaces_throughout() {
        let t = Trace::linear([
            Event::DefineConst(Var(1), Expr::add(Expr::var(Var(0)), Expr::bv(64, 4))),
            Event::WriteReg(Reg::new("PC"), Expr::var(Var(1))),
        ]);
        let t2 = t.subst_var(Var(0), &Expr::bv(64, 0x1000));
        match &t2 {
            Trace::Cons(Event::DefineConst(_, e), _) => {
                assert_eq!(
                    e.to_string(),
                    "(bvadd #x0000000000001000 #x0000000000000004)"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
