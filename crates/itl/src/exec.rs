//! Executable operational semantics of ITL (Fig. 10 of the paper).
//!
//! The paper's semantics is heavily non-deterministic: `DeclareConst` picks
//! an arbitrary value, later restricted by `ReadReg`/`Assert`; `Cases`
//! picks a subtrace, restricted by its leading `Assert`s. Executions that
//! violate a restriction terminate in ⊤ ("this execution need not be
//! considered"), while violated *assumptions* (`Assume`, `AssumeReg`) or
//! stuck configurations terminate in ⊥.
//!
//! This module resolves the non-determinism *by the constraints
//! themselves* (oracle-guided execution): a `ReadReg(r, x)` with `x` a not
//! yet bound variable binds `x := Σ[r]`; `Cases` branches are tried in
//! order and the unique branch whose `Assert`s hold is taken. This yields a
//! deterministic interpreter that realises exactly the executions the
//! verification cares about (the ones not ending in ⊤ early), and is the
//! execution side of the adequacy theorem (Theorem 1) and of translation
//! validation (§5).

use std::collections::HashMap;
#[cfg(test)]
use std::sync::Arc;

use islaris_bv::Bv;
use islaris_smt::{eval, EvalError, Expr, Value, Var};

use crate::event::{Event, Trace};
use crate::machine::{Label, Machine};
use crate::reg::Reg;

/// Environment responses for MMIO reads (the `R(a, v)` labels of §3 leave
/// the read value to the environment).
pub trait IoOracle {
    /// The value an MMIO read of `bytes` bytes at `addr` returns.
    fn read(&mut self, addr: u64, bytes: u32) -> Bv;
}

/// An oracle that answers every MMIO read with zero.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroIo;

impl IoOracle for ZeroIo {
    fn read(&mut self, _addr: u64, bytes: u32) -> Bv {
        Bv::zero(bytes * 8)
    }
}

/// An oracle replaying a scripted list of read values (for testing device
/// interactions such as the UART case study).
#[derive(Debug, Clone, Default)]
pub struct ScriptedIo {
    values: Vec<Bv>,
    next: usize,
}

impl ScriptedIo {
    /// Creates an oracle that replays `values` in order, then zeroes.
    #[must_use]
    pub fn new(values: Vec<Bv>) -> Self {
        ScriptedIo { values, next: 0 }
    }
}

impl IoOracle for ScriptedIo {
    fn read(&mut self, _addr: u64, bytes: u32) -> Bv {
        match self.values.get(self.next) {
            Some(v) => {
                self.next += 1;
                assert_eq!(v.width(), bytes * 8, "scripted IO width mismatch");
                *v
            }
            None => Bv::zero(bytes * 8),
        }
    }
}

/// Why an execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stop {
    /// ⊤ with an `E(a)` label: fetched from an unmapped instruction
    /// address — normal termination.
    End(u64),
    /// ⊥: a violated Isla assumption or a stuck configuration
    /// (`step-fail`). Verified programs never reach this.
    Fail(String),
    /// The step budget was exhausted (the program may diverge).
    OutOfFuel,
}

/// Result of running the machine: the stop reason plus the emitted labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Why execution stopped.
    pub stop: Stop,
    /// The visible trace `κs` (MMIO events; `End` is in `stop`).
    pub labels: Vec<Label>,
    /// Number of instructions executed.
    pub instructions: u64,
}

/// The register holding the program counter. The paper notes this is the
/// single model-specific element of the operational semantics.
#[derive(Debug, Clone)]
pub struct PcName(pub Reg);

/// Runs the ITL machine from `⟨[], Σ⟩` until ⊤, ⊥, or `max_instrs`.
pub fn run(
    machine: &mut Machine,
    pc: &PcName,
    io: &mut dyn IoOracle,
    max_instrs: u64,
) -> RunResult {
    let mut labels = Vec::new();
    let mut instructions = 0;
    loop {
        if instructions >= max_instrs {
            return RunResult {
                stop: Stop::OutOfFuel,
                labels,
                instructions,
            };
        }
        // step-nil / step-nil-end: fetch.
        let pc_val = match machine.reg(&pc.0) {
            Some(Value::Bits(b)) => b.to_u64(),
            other => {
                return RunResult {
                    stop: Stop::Fail(format!("PC register unreadable: {other:?}")),
                    labels,
                    instructions,
                }
            }
        };
        let Some(trace) = machine.instrs.get(&pc_val).cloned() else {
            labels.push(Label::End(pc_val));
            return RunResult {
                stop: Stop::End(pc_val),
                labels,
                instructions,
            };
        };
        instructions += 1;
        let mut bindings = Bindings::default();
        if let Err(fail) = exec_trace(&trace, machine, io, &mut labels, &mut bindings) {
            return RunResult {
                stop: Stop::Fail(fail),
                labels,
                instructions,
            };
        }
    }
}

/// Executes a single instruction trace against the machine (one
/// instruction of `run`). Exposed for translation validation.
pub fn exec_instr(
    trace: &Trace,
    machine: &mut Machine,
    io: &mut dyn IoOracle,
    labels: &mut Vec<Label>,
) -> Result<(), String> {
    let mut bindings = Bindings::default();
    exec_trace(trace, machine, io, labels, &mut bindings)
}

/// Lazily-resolved variable bindings: `DeclareConst` registers a variable,
/// later constraining events bind it.
#[derive(Debug, Clone, Default)]
struct Bindings {
    bound: HashMap<Var, Value>,
    declared: HashMap<Var, islaris_smt::Sort>,
}

impl Bindings {
    fn env(&self) -> impl Fn(Var) -> Option<Value> + '_ {
        |v| self.bound.get(&v).copied()
    }

    fn eval(&self, e: &Expr) -> Result<Value, EvalError> {
        eval(e, &self.env())
    }
}

fn exec_trace(
    trace: &Trace,
    machine: &mut Machine,
    io: &mut dyn IoOracle,
    labels: &mut Vec<Label>,
    b: &mut Bindings,
) -> Result<(), String> {
    let mut cur: &Trace = trace;
    loop {
        match cur {
            Trace::Nil => return Ok(()),
            Trace::Cases(branches) => {
                // step-cases + step-assert-*: take the branch whose leading
                // asserts hold. Branch asserts partition, so at most one
                // survives; ⊤-terminating branches are skipped.
                for br in branches {
                    match branch_viable(br, b) {
                        Viability::Viable => {
                            return exec_branch(br, machine, io, labels, b);
                        }
                        Viability::Pruned => continue,
                        Viability::Stuck(msg) => return Err(msg),
                    }
                }
                // All branches assert false: every execution ends in ⊤.
                return Ok(());
            }
            Trace::Cons(ev, rest) => match exec_event(ev, machine, io, labels, b)? {
                EventOutcome::Continue => cur = rest,
                EventOutcome::Top => return Ok(()),
            },
        }
    }
}

fn exec_branch(
    br: &Trace,
    machine: &mut Machine,
    io: &mut dyn IoOracle,
    labels: &mut Vec<Label>,
    b: &mut Bindings,
) -> Result<(), String> {
    exec_trace(br, machine, io, labels, b)
}

enum Viability {
    Viable,
    Pruned,
    Stuck(String),
}

/// Checks the leading `Assert`s of a branch (skipping definitions) without
/// committing any state.
fn branch_viable(br: &Trace, b: &Bindings) -> Viability {
    let mut scratch = b.clone();
    let mut cur = br;
    loop {
        match cur {
            Trace::Cons(Event::Assert(e), rest) => match scratch.eval(e) {
                Ok(Value::Bool(true)) => cur = rest,
                Ok(Value::Bool(false)) => return Viability::Pruned,
                Ok(Value::Bits(_)) => return Viability::Stuck("assert of bitvector".into()),
                Err(e) => return Viability::Stuck(format!("assert unevaluable: {e}")),
            },
            Trace::Cons(Event::DefineConst(x, e), rest) => match scratch.eval(e) {
                Ok(v) => {
                    scratch.bound.insert(*x, v);
                    cur = rest;
                }
                Err(_) => return Viability::Viable, // defer to real execution
            },
            Trace::Cons(Event::DeclareConst(x, t), rest) => {
                scratch.declared.insert(*x, *t);
                cur = rest;
            }
            _ => return Viability::Viable,
        }
    }
}

enum EventOutcome {
    Continue,
    /// ⊤ reached mid-trace (e.g. a failed `Assert` outside `Cases`).
    Top,
}

fn exec_event(
    ev: &Event,
    machine: &mut Machine,
    io: &mut dyn IoOracle,
    labels: &mut Vec<Label>,
    b: &mut Bindings,
) -> Result<EventOutcome, String> {
    match ev {
        Event::DeclareConst(x, t) => {
            b.declared.insert(*x, *t);
            Ok(EventOutcome::Continue)
        }
        Event::DefineConst(x, e) => {
            let v = b.eval(e).map_err(|e| format!("define-const: {e}"))?;
            b.bound.insert(*x, v);
            Ok(EventOutcome::Continue)
        }
        Event::ReadReg(r, v) => {
            // step-read-reg-eq / -neq, with oracle-guided binding.
            let Some(actual) = machine.reg(r) else {
                return Err(format!("read of unmapped register {r} (step-fail)"));
            };
            match v.as_var() {
                Some(x) if !b.bound.contains_key(&x) => {
                    b.bound.insert(x, actual);
                    Ok(EventOutcome::Continue)
                }
                _ => match b.eval(v) {
                    Ok(expected) if expected == actual => Ok(EventOutcome::Continue),
                    Ok(_) => Ok(EventOutcome::Top), // step-read-reg-neq
                    Err(e) => Err(format!("read-reg value unevaluable: {e}")),
                },
            }
        }
        Event::WriteReg(r, v) => {
            let val = b.eval(v).map_err(|e| format!("write-reg: {e}"))?;
            machine.regs.insert(r.clone(), val);
            Ok(EventOutcome::Continue)
        }
        Event::AssumeReg(r, v) => {
            // step-assume-reg-true; otherwise ⊥ (step-fail).
            let Some(actual) = machine.reg(r) else {
                return Err(format!("assume-reg of unmapped register {r}"));
            };
            let expected = b.eval(v).map_err(|e| format!("assume-reg: {e}"))?;
            if expected == actual {
                Ok(EventOutcome::Continue)
            } else {
                Err(format!(
                    "assumption violated: {r} = {actual:?}, Isla assumed {expected:?}"
                ))
            }
        }
        Event::Assume(e) => match b.eval(e) {
            Ok(Value::Bool(true)) => Ok(EventOutcome::Continue),
            Ok(Value::Bool(false)) => Err(format!("assumption violated: {e}")),
            Ok(Value::Bits(_)) => Err("assume of bitvector".into()),
            Err(err) => Err(format!("assume unevaluable: {err}")),
        },
        Event::Assert(e) => match b.eval(e) {
            Ok(Value::Bool(true)) => Ok(EventOutcome::Continue),
            Ok(Value::Bool(false)) => Ok(EventOutcome::Top), // step-assert-false
            Ok(Value::Bits(_)) => Err("assert of bitvector".into()),
            Err(err) => Err(format!("assert unevaluable: {err}")),
        },
        Event::ReadMem { value, addr, bytes } => {
            let a = eval_addr(addr, b)?;
            let n = *bytes as usize;
            if machine.is_mapped(a, n) {
                // step-read-mem-eq / -neq
                let actual = machine.load_le(a, n).expect("mapped");
                bind_or_compare(value, Value::Bits(actual), b)
            } else {
                // step-read-mem-event: MMIO.
                let v = io.read(a, *bytes);
                assert_eq!(v.width(), bytes * 8, "IO oracle width");
                labels.push(Label::Read { addr: a, value: v });
                bind_or_compare(value, Value::Bits(v), b)
            }
        }
        Event::WriteMem { addr, value, bytes } => {
            let a = eval_addr(addr, b)?;
            let n = *bytes as usize;
            let v = match b.eval(value).map_err(|e| format!("write-mem: {e}"))? {
                Value::Bits(bv) if bv.width() == bytes * 8 => bv,
                other => return Err(format!("write-mem value ill-sized: {other:?}")),
            };
            if machine.is_mapped(a, n) {
                machine.store_le(a, v);
            } else {
                labels.push(Label::Write { addr: a, value: v });
            }
            Ok(EventOutcome::Continue)
        }
    }
}

fn eval_addr(addr: &Expr, b: &Bindings) -> Result<u64, String> {
    match b
        .eval(addr)
        .map_err(|e| format!("address unevaluable: {e}"))?
    {
        Value::Bits(bv) if bv.width() == 64 => Ok(bv.to_u64()),
        other => Err(format!("address ill-sized: {other:?}")),
    }
}

fn bind_or_compare(v: &Expr, actual: Value, b: &mut Bindings) -> Result<EventOutcome, String> {
    match v.as_var() {
        Some(x) if !b.bound.contains_key(&x) => {
            b.bound.insert(x, actual);
            Ok(EventOutcome::Continue)
        }
        _ => match b.eval(v) {
            Ok(expected) if expected == actual => Ok(EventOutcome::Continue),
            Ok(_) => Ok(EventOutcome::Top),
            Err(e) => Err(format!("memory value unevaluable: {e}")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use islaris_smt::Sort;

    fn pc() -> PcName {
        PcName(Reg::new("_PC"))
    }

    /// The Fig. 3 trace: add sp, sp, 64 at EL2 with SP=1.
    fn add_sp_trace() -> Trace {
        crate::sexp::parse_trace(
            "(trace
              (assume-reg |PSTATE| ((_ field |EL|)) #b10)
              (assume-reg |PSTATE| ((_ field |SP|)) #b1)
              (declare-const v38 (_ BitVec 64))
              (read-reg |SP_EL2| nil v38)
              (define-const v61 (bvadd ((_ extract 63 0) ((_ zero_extend 64) v38)) #x0000000000000040))
              (write-reg |SP_EL2| nil v61)
              (declare-const v62 (_ BitVec 64))
              (read-reg |_PC| nil v62)
              (define-const v63 (bvadd v62 #x0000000000000004))
              (write-reg |_PC| nil v63))",
        )
        .expect("parses")
    }

    fn base_machine() -> Machine {
        let mut m = Machine::new();
        m.set_reg(Reg::field("PSTATE", "EL"), Bv::new(2, 2));
        m.set_reg(Reg::field("PSTATE", "SP"), Bv::new(1, 1));
        m.set_reg(Reg::new("SP_EL2"), Bv::new(64, 0x8_0000));
        m.set_reg(Reg::new("_PC"), Bv::new(64, 0x1000));
        m
    }

    #[test]
    fn add_sp_updates_stack_pointer_and_pc() {
        let mut m = base_machine();
        m.set_instr(0x1000, Arc::new(add_sp_trace()));
        let r = run(&mut m, &pc(), &mut ZeroIo, 10);
        assert_eq!(r.stop, Stop::End(0x1004));
        assert_eq!(r.instructions, 1);
        assert_eq!(
            m.reg(&Reg::new("SP_EL2")),
            Some(Value::Bits(Bv::new(64, 0x8_0040)))
        );
    }

    #[test]
    fn violated_assumption_reaches_bottom() {
        let mut m = base_machine();
        // Run at EL1 instead of the assumed EL2.
        m.set_reg(Reg::field("PSTATE", "EL"), Bv::new(2, 1));
        m.set_instr(0x1000, Arc::new(add_sp_trace()));
        let r = run(&mut m, &pc(), &mut ZeroIo, 10);
        assert!(matches!(r.stop, Stop::Fail(_)), "got {:?}", r.stop);
    }

    #[test]
    fn cases_takes_the_asserted_branch() {
        // The Fig. 6 beq -16 trace: with Z set, PC decreases by 16.
        let t = crate::sexp::parse_trace(
            "(trace
              (declare-const v27 (_ BitVec 1))
              (read-reg |PSTATE| ((_ field |Z|)) v27)
              (define-const v37 (= v27 #b1))
              (cases
                (trace (assert v37)
                       (declare-const v38 (_ BitVec 64))
                       (read-reg |_PC| nil v38)
                       (define-const v39 (bvadd v38 #xfffffffffffffff0))
                       (write-reg |_PC| nil v39))
                (trace (assert (not v37))
                       (declare-const v38 (_ BitVec 64))
                       (read-reg |_PC| nil v38)
                       (define-const v39 (bvadd v38 #x0000000000000004))
                       (write-reg |_PC| nil v39))))",
        )
        .expect("parses");
        for (z, expected_pc) in [(1u128, 0x0ff0u128), (0, 0x1004)] {
            let mut m = Machine::new();
            m.set_reg(Reg::field("PSTATE", "Z"), Bv::new(1, z));
            m.set_reg(Reg::new("_PC"), Bv::new(64, 0x1000));
            m.set_instr(0x1000, Arc::new(t.clone()));
            let r = run(&mut m, &pc(), &mut ZeroIo, 1);
            assert!(
                matches!(r.stop, Stop::End(_) | Stop::OutOfFuel),
                "{:?}",
                r.stop
            );
            assert_eq!(
                m.reg(&Reg::new("_PC")),
                Some(Value::Bits(Bv::new(64, expected_pc)))
            );
        }
    }

    #[test]
    fn mmio_read_and_write_emit_labels() {
        let t = Trace::linear([
            Event::DeclareConst(Var(0), Sort::BitVec(32)),
            Event::ReadMem {
                value: Expr::var(Var(0)),
                addr: Expr::bv(64, 0x9000),
                bytes: 4,
            },
            Event::WriteMem {
                addr: Expr::bv(64, 0x9004),
                value: Expr::var(Var(0)),
                bytes: 4,
            },
            Event::DeclareConst(Var(1), Sort::BitVec(64)),
            Event::ReadReg(Reg::new("_PC"), Expr::var(Var(1))),
            Event::WriteReg(
                Reg::new("_PC"),
                Expr::add(Expr::var(Var(1)), Expr::bv(64, 4)),
            ),
        ]);
        let mut m = Machine::new();
        m.set_reg(Reg::new("_PC"), Bv::new(64, 0x1000));
        m.set_instr(0x1000, Arc::new(t));
        let mut io = ScriptedIo::new(vec![Bv::new(32, 0x55)]);
        let r = run(&mut m, &pc(), &mut io, 2);
        assert_eq!(
            r.labels,
            vec![
                Label::Read {
                    addr: 0x9000,
                    value: Bv::new(32, 0x55)
                },
                Label::Write {
                    addr: 0x9004,
                    value: Bv::new(32, 0x55)
                },
                Label::End(0x1004),
            ]
        );
    }

    #[test]
    fn mapped_memory_reads_do_not_emit_labels() {
        let t = Trace::linear([
            Event::DeclareConst(Var(0), Sort::BitVec(8)),
            Event::ReadMem {
                value: Expr::var(Var(0)),
                addr: Expr::bv(64, 0x2000),
                bytes: 1,
            },
            Event::WriteMem {
                addr: Expr::bv(64, 0x2001),
                value: Expr::var(Var(0)),
                bytes: 1,
            },
            Event::DeclareConst(Var(1), Sort::BitVec(64)),
            Event::ReadReg(Reg::new("_PC"), Expr::var(Var(1))),
            Event::WriteReg(
                Reg::new("_PC"),
                Expr::add(Expr::var(Var(1)), Expr::bv(64, 4)),
            ),
        ]);
        let mut m = Machine::new();
        m.set_reg(Reg::new("_PC"), Bv::new(64, 0x1000));
        m.store_bytes(0x2000, &[0xab, 0x00]);
        m.set_instr(0x1000, Arc::new(t));
        let r = run(&mut m, &pc(), &mut ZeroIo, 2);
        assert_eq!(r.labels, vec![Label::End(0x1004)]);
        assert_eq!(m.load_le(0x2001, 1), Some(Bv::new(8, 0xab)));
    }

    #[test]
    fn out_of_fuel_on_loops() {
        // b .: an instruction that jumps to itself.
        let t = Trace::linear([
            Event::DeclareConst(Var(0), Sort::BitVec(64)),
            Event::ReadReg(Reg::new("_PC"), Expr::var(Var(0))),
            Event::WriteReg(Reg::new("_PC"), Expr::var(Var(0))),
        ]);
        let mut m = Machine::new();
        m.set_reg(Reg::new("_PC"), Bv::new(64, 0x1000));
        m.set_instr(0x1000, Arc::new(t));
        let r = run(&mut m, &pc(), &mut ZeroIo, 100);
        assert_eq!(r.stop, Stop::OutOfFuel);
        assert_eq!(r.instructions, 100);
    }
}
