//! Machine configurations for the ITL operational semantics (§3).
//!
//! A machine state `Σ = (R, I, M)` is a triple of finite partial maps: the
//! register map, the instruction map (addresses to traces), and the byte
//! memory. Addresses are 64-bit.

use std::collections::BTreeMap;
use std::sync::Arc;

use islaris_bv::Bv;
use islaris_smt::Value;

use crate::event::Trace;
use crate::reg::Reg;

/// Externally visible labels `κ ::= R(a, v) | W(a, v) | E(a)` (§3):
/// reads/writes to unmapped memory (memory-mapped IO) and termination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Label {
    /// MMIO read of `value` at `addr`.
    Read {
        /// Address read.
        addr: u64,
        /// Value read (supplied by the environment).
        value: Bv,
    },
    /// MMIO write of `value` at `addr`.
    Write {
        /// Address written.
        addr: u64,
        /// Value written.
        value: Bv,
    },
    /// Termination: fetch from an address with no instruction.
    End(u64),
}

/// The machine state `Σ = (R, I, M)`.
#[derive(Debug, Clone, Default)]
pub struct Machine {
    /// Register map `R : Reg ⇀ Val`.
    pub regs: BTreeMap<Reg, Value>,
    /// Instruction map `I : Addr ⇀ Trace`.
    pub instrs: BTreeMap<u64, Arc<Trace>>,
    /// Memory map `M : Addr ⇀ Byte`.
    pub mem: BTreeMap<u64, u8>,
}

impl Machine {
    /// An empty machine.
    #[must_use]
    pub fn new() -> Self {
        Machine::default()
    }

    /// Sets a register to a bitvector value.
    pub fn set_reg(&mut self, r: Reg, v: Bv) {
        self.regs.insert(r, Value::Bits(v));
    }

    /// Reads a register.
    #[must_use]
    pub fn reg(&self, r: &Reg) -> Option<Value> {
        self.regs.get(r).copied()
    }

    /// Installs an instruction trace at an address.
    pub fn set_instr(&mut self, addr: u64, t: Arc<Trace>) {
        self.instrs.insert(addr, t);
    }

    /// Writes bytes into memory starting at `addr`.
    pub fn store_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.mem.insert(addr + i as u64, *b);
        }
    }

    /// Reads `n` bytes if the whole range is mapped (`Σ[a..a+n] ≠ ⊥`).
    #[must_use]
    pub fn load_bytes(&self, addr: u64, n: usize) -> Option<Vec<u8>> {
        (0..n)
            .map(|i| self.mem.get(&(addr + i as u64)).copied())
            .collect()
    }

    /// True iff every byte of the range is mapped.
    #[must_use]
    pub fn is_mapped(&self, addr: u64, n: usize) -> bool {
        (0..n).all(|i| self.mem.contains_key(&(addr + i as u64)))
    }

    /// Reads a little-endian bitvector of `n` bytes, if mapped.
    #[must_use]
    pub fn load_le(&self, addr: u64, n: usize) -> Option<Bv> {
        self.load_bytes(addr, n).map(|bs| Bv::from_le_bytes(&bs))
    }

    /// Stores a bitvector little-endian (`enc(b)` of the paper).
    ///
    /// # Panics
    ///
    /// Panics if the value's width is not a multiple of 8.
    pub fn store_le(&mut self, addr: u64, value: Bv) {
        self.store_bytes(addr, &value.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_roundtrip() {
        let mut m = Machine::new();
        m.store_le(0x1000, Bv::new(32, 0xdead_beef));
        assert_eq!(m.load_le(0x1000, 4), Some(Bv::new(32, 0xdead_beef)));
        assert_eq!(m.load_le(0x1002, 2), Some(Bv::new(16, 0xdead)));
        assert!(m.load_le(0x0fff, 4).is_none(), "partially unmapped range");
        assert!(!m.is_mapped(0x1003, 2));
        assert!(m.is_mapped(0x1000, 4));
    }

    #[test]
    fn registers_store_values() {
        let mut m = Machine::new();
        m.set_reg(Reg::new("X0"), Bv::new(64, 7));
        m.set_reg(Reg::field("PSTATE", "EL"), Bv::new(2, 2));
        assert_eq!(m.reg(&Reg::new("X0")), Some(Value::Bits(Bv::new(64, 7))));
        assert_eq!(
            m.reg(&Reg::field("PSTATE", "EL")),
            Some(Value::Bits(Bv::new(2, 2)))
        );
        assert_eq!(m.reg(&Reg::new("X1")), None);
    }
}
