//! The Isla trace language (ITL): syntax, concrete S-expression format, and
//! operational semantics (§3 and Fig. 10 of the Islaris paper).
//!
//! Traces are the interface between the symbolic executor
//! (`islaris-isla`) and the separation logic (`islaris-core`): a trace
//! describes one instruction's register and memory accesses, constrained
//! by SMT formulas, with `Cases` trees for intra-instruction branching.
//!
//! # Examples
//!
//! Parse the paper's Fig. 3 trace and execute it:
//!
//! ```
//! # use std::sync::Arc;
//! use islaris_bv::Bv;
//! use islaris_itl::{parse_trace, run, Machine, PcName, Reg, Stop, ZeroIo};
//!
//! let t = parse_trace(
//!     "(trace (declare-const v0 (_ BitVec 64))
//!             (read-reg |_PC| nil v0)
//!             (write-reg |_PC| nil (bvadd v0 #x0000000000000004)))",
//! )?;
//! let mut m = Machine::new();
//! m.set_reg(Reg::new("_PC"), Bv::new(64, 0x1000));
//! m.set_instr(0x1000, Arc::new(t));
//! let r = run(&mut m, &PcName(Reg::new("_PC")), &mut ZeroIo, 10);
//! assert_eq!(r.stop, Stop::End(0x1004));
//! # Ok::<(), islaris_itl::ParseError>(())
//! ```

pub mod event;
pub mod exec;
pub mod machine;
pub mod reg;
pub mod sexp;

pub use event::{Event, Trace};
pub use exec::{exec_instr, run, IoOracle, PcName, RunResult, ScriptedIo, Stop, ZeroIo};
pub use machine::{Label, Machine};
pub use reg::Reg;
pub use sexp::{parse_sexp, parse_trace, print_trace, ParseError, Sexp};
