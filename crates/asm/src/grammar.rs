//! The decoders' instruction-class grammar, as mask/bits encoding
//! classes.
//!
//! Each table below mirrors the corresponding model's `decode` dispatch
//! *in decode order*: a class is `(mask, bits)` such that the decoder
//! routes an opcode to the class iff `opcode & mask == bits` and no
//! earlier class matched. That makes [`classify`] (first match wins)
//! agree with the model's routing, so a fuzzer keying coverage on class
//! names counts exactly the decoder's arms. The final `unallocated`
//! catch-all (`mask == 0`) is the decoder's `exit()` arm.
//!
//! Every class also carries one known-good `seed` encoding (a canonical
//! instruction of the class) as a starting point for mutation-based
//! generation.

/// One arm of a decoder dispatch: opcodes with `op & mask == bits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodingClass {
    /// Class name, unique per architecture table.
    pub name: &'static str,
    /// Fixed-bit positions.
    pub mask: u32,
    /// Required values of the fixed bits.
    pub bits: u32,
    /// A canonical known-good encoding in the class, for mutation.
    pub seed: u32,
}

impl EncodingClass {
    /// Does `op` have this class's fixed bits?
    #[must_use]
    pub fn matches(&self, op: u32) -> bool {
        op & self.mask == self.bits
    }

    /// Fills the class's free bits from `random`, keeping the fixed bits:
    /// a structure-aware sample that is guaranteed to reach this decoder
    /// arm unless an *earlier* arm shadows the result.
    #[must_use]
    pub fn sample(&self, random: u32) -> u32 {
        self.bits | (random & !self.mask)
    }
}

/// AArch64 fragment classes, in the `decode` order of `arm.sail`.
pub const ARM_CLASSES: &[EncodingClass] = &[
    EncodingClass {
        name: "nop",
        mask: 0xFFFF_FFFF,
        bits: 0xD503_201F,
        seed: 0xD503_201F,
    },
    EncodingClass {
        name: "eret",
        mask: 0xFFFF_FFFF,
        bits: 0xD69F_03E0,
        seed: 0xD69F_03E0,
    },
    EncodingClass {
        name: "rbit",
        mask: 0xFFFF_FC00,
        bits: 0xDAC0_0000,
        // rbit x0, x1
        seed: 0xDAC0_0020,
    },
    EncodingClass {
        name: "hvc",
        mask: 0xFFE0_001F,
        bits: 0xD400_0002,
        seed: 0xD400_0002,
    },
    EncodingClass {
        name: "msr_mrs",
        mask: 0xFFD0_0000,
        bits: 0xD510_0000,
        // msr vbar_el2, x0
        seed: 0xD51C_C000,
    },
    EncodingClass {
        name: "addsub_imm",
        mask: 0x1F80_0000,
        bits: 0x1100_0000,
        // add sp, sp, #0x40
        seed: 0x9101_03FF,
    },
    EncodingClass {
        name: "movewide",
        mask: 0x1F80_0000,
        bits: 0x1280_0000,
        // movz x0, #0, lsl #16
        seed: 0xD2A0_0000,
    },
    EncodingClass {
        name: "ubfm",
        mask: 0x1F80_0000,
        bits: 0x1300_0000,
        // lsr x0, x1, #4
        seed: 0xD344_FC20,
    },
    EncodingClass {
        name: "addsub_shiftreg",
        mask: 0x1F20_0000,
        bits: 0x0B00_0000,
        // cmp x2, x3
        seed: 0xEB03_005F,
    },
    EncodingClass {
        name: "logical_shiftreg",
        mask: 0x1F00_0000,
        bits: 0x0A00_0000,
        // mov x0, x1
        seed: 0xAA01_03E0,
    },
    EncodingClass {
        name: "load_store_uimm",
        mask: 0x3F00_0000,
        bits: 0x3900_0000,
        // str x0, [x1]
        seed: 0xF900_0020,
    },
    EncodingClass {
        name: "load_store_regoff",
        mask: 0x3F20_0C00,
        bits: 0x3820_0800,
        // ldrb w4, [x1, x3]
        seed: 0x3863_6824,
    },
    EncodingClass {
        name: "cbz",
        mask: 0x7E00_0000,
        bits: 0x3400_0000,
        // cbz x0, #0
        seed: 0xB400_0000,
    },
    EncodingClass {
        name: "bcond",
        mask: 0xFF00_0010,
        bits: 0x5400_0000,
        // b.ne #0
        seed: 0x5400_0001,
    },
    EncodingClass {
        name: "b_bl",
        mask: 0x7C00_0000,
        bits: 0x1400_0000,
        // b #0
        seed: 0x1400_0000,
    },
    EncodingClass {
        name: "br_blr_ret",
        mask: 0xFE00_0000,
        bits: 0xD600_0000,
        // ret
        seed: 0xD65F_03C0,
    },
    EncodingClass {
        name: "unallocated",
        mask: 0,
        bits: 0,
        seed: 0,
    },
];

/// RISC-V fragment classes, in the `decode` order of `riscv.sail` (all
/// keyed on the 7-bit major opcode).
pub const RISCV_CLASSES: &[EncodingClass] = &[
    EncodingClass {
        name: "lui",
        mask: 0x7F,
        bits: 0b011_0111,
        // lui x1, 0x1
        seed: 0x0000_10B7,
    },
    EncodingClass {
        name: "auipc",
        mask: 0x7F,
        bits: 0b001_0111,
        // auipc x1, 0
        seed: 0x0000_0097,
    },
    EncodingClass {
        name: "jal",
        mask: 0x7F,
        bits: 0b110_1111,
        // jal x0, 0
        seed: 0x0000_006F,
    },
    EncodingClass {
        name: "jalr",
        mask: 0x7F,
        bits: 0b110_0111,
        // ret (jalr x0, 0(x1))
        seed: 0x0000_8067,
    },
    EncodingClass {
        name: "branch",
        mask: 0x7F,
        bits: 0b110_0011,
        // beq x0, x0, 0
        seed: 0x0000_0063,
    },
    EncodingClass {
        name: "load",
        mask: 0x7F,
        bits: 0b000_0011,
        // lb x1, 0(x2)
        seed: 0x0001_0083,
    },
    EncodingClass {
        name: "store",
        mask: 0x7F,
        bits: 0b010_0011,
        // sb x1, 0(x2)
        seed: 0x0011_0023,
    },
    EncodingClass {
        name: "op_imm",
        mask: 0x7F,
        bits: 0b001_0011,
        // addi x1, x0, 1
        seed: 0x0010_0093,
    },
    EncodingClass {
        name: "op",
        mask: 0x7F,
        bits: 0b011_0011,
        // add x1, x2, x3
        seed: 0x0031_00B3,
    },
    EncodingClass {
        name: "op_imm_32",
        mask: 0x7F,
        bits: 0b001_1011,
        // addiw x1, x0, 1
        seed: 0x0010_009B,
    },
    EncodingClass {
        name: "op_32",
        mask: 0x7F,
        bits: 0b011_1011,
        // addw x1, x2, x3
        seed: 0x0031_00BB,
    },
    EncodingClass {
        name: "unallocated",
        mask: 0,
        bits: 0,
        seed: 0,
    },
];

/// First-match classification, mirroring the decoder's if/else chain.
/// The tables end with an always-matching `unallocated` catch-all, so
/// every opcode classifies.
#[must_use]
pub fn classify(classes: &[EncodingClass], op: u32) -> &'static str {
    classes
        .iter()
        .find(|c| c.matches(op))
        .map_or("unallocated", |c| c.name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seed_classifies_as_its_own_class() {
        for table in [ARM_CLASSES, RISCV_CLASSES] {
            for c in table {
                assert_eq!(
                    classify(table, c.seed),
                    c.name,
                    "seed {:#010x} shadowed by an earlier class",
                    c.seed
                );
            }
        }
    }

    #[test]
    fn samples_keep_the_fixed_bits() {
        for table in [ARM_CLASSES, RISCV_CLASSES] {
            for c in table {
                for r in [0u32, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x0123_4567] {
                    assert!(c.matches(c.sample(r)), "{} sample broke its mask", c.name);
                }
            }
        }
    }

    #[test]
    fn class_names_are_unique_and_catch_all_is_last() {
        for table in [ARM_CLASSES, RISCV_CLASSES] {
            let mut names: Vec<&str> = table.iter().map(|c| c.name).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), table.len());
            let last = table.last().expect("nonempty");
            assert_eq!((last.name, last.mask), ("unallocated", 0));
        }
    }

    #[test]
    fn classification_agrees_with_known_encodings() {
        use crate::aarch64::{self, SysReg, XReg};
        use crate::riscv::{self, Gpr};
        let arm = |op| classify(ARM_CLASSES, op);
        assert_eq!(arm(aarch64::nop()), "nop");
        assert_eq!(arm(aarch64::eret()), "eret");
        assert_eq!(arm(aarch64::ret(XReg(30))), "br_blr_ret");
        assert_eq!(arm(aarch64::msr(SysReg::ELR_EL2, XReg(3))), "msr_mrs");
        assert_eq!(arm(aarch64::mrs(XReg(3), SysReg::ESR_EL2)), "msr_mrs");
        assert_eq!(
            arm(aarch64::add_imm(XReg(1), XReg(2), 9).expect("encodes")),
            "addsub_imm"
        );
        assert_eq!(
            arm(aarch64::str_imm(XReg(0), XReg(1), 0).expect("encodes")),
            "load_store_uimm"
        );
        let rv = |op| classify(RISCV_CLASSES, op);
        assert_eq!(
            rv(riscv::addi(Gpr(1), Gpr(0), 1).expect("encodes")),
            "op_imm"
        );
        assert_eq!(rv(riscv::lui(Gpr(1), 1).expect("encodes")), "lui");
        assert_eq!(rv(riscv::ret()), "jalr");
        assert_eq!(rv(0), "unallocated");
        assert_eq!(arm(0), "unallocated");
    }
}
