//! Assemblers for the case-study binaries: AArch64 and RV64I encoders plus
//! a label-resolving program builder.
//!
//! The paper verifies *machine code* — opcodes in memory — produced by GCC,
//! Clang, and hand-written assembly. This crate produces the same opcodes
//! for the reproduced case studies; the round trip through the mini-Sail
//! models is exercised by `islaris-transval`.
//!
//! # Examples
//!
//! The paper's Fig. 7 Arm memcpy inner loop:
//!
//! ```
//! use islaris_asm::aarch64::{self as a64, XReg};
//! use islaris_asm::Asm;
//!
//! let (x0, x1, x2, x3, x4) = (XReg(0), XReg(1), XReg(2), XReg(3), XReg(4));
//! let mut asm = Asm::new(0x1_0000);
//! asm.label("L3");
//! asm.put(a64::ldrb_reg(x4, x1, x3));
//! asm.put(a64::strb_reg(x4, x0, x3));
//! asm.put_or(a64::add_imm(x3, x3, 1));
//! asm.put(a64::cmp_reg(x2, x3));
//! asm.branch_to("L3", |off| a64::b_cond(a64::Cond::Ne, off));
//! let prog = asm.finish()?;
//! assert_eq!(prog.len(), 5);
//! # Ok::<(), islaris_asm::AsmError>(())
//! ```

pub mod aarch64;
pub mod grammar;
pub mod ir;
pub mod riscv;

pub use grammar::{classify, EncodingClass, ARM_CLASSES, RISCV_CLASSES};
pub use ir::{cond_name, Asm, AsmError, Program};
