//! RV64I encoder for the case-study instruction subset.

use crate::ir::AsmError;

/// An RV64 integer register `x0`–`x31`. ABI aliases provided as consts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gpr(pub u8);

#[allow(missing_docs)]
impl Gpr {
    pub const ZERO: Gpr = Gpr(0);
    pub const RA: Gpr = Gpr(1);
    pub const SP: Gpr = Gpr(2);
    pub const T0: Gpr = Gpr(5);
    pub const T1: Gpr = Gpr(6);
    pub const T2: Gpr = Gpr(7);
    pub const A0: Gpr = Gpr(10);
    pub const A1: Gpr = Gpr(11);
    pub const A2: Gpr = Gpr(12);
    pub const A3: Gpr = Gpr(13);
    pub const A4: Gpr = Gpr(14);
    pub const A5: Gpr = Gpr(15);

    fn idx(self) -> u32 {
        assert!(self.0 <= 31, "register x{} out of range", self.0);
        u32::from(self.0)
    }
}

fn check_imm12(imm: i32, what: &'static str) -> Result<u32, AsmError> {
    if (-2048..=2047).contains(&imm) {
        Ok((imm as u32) & 0xfff)
    } else {
        Err(AsmError::ImmediateOutOfRange {
            what,
            value: i64::from(imm),
        })
    }
}

fn itype(
    imm: i32,
    rs1: Gpr,
    funct3: u32,
    rd: Gpr,
    opcode: u32,
    what: &'static str,
) -> Result<u32, AsmError> {
    Ok(check_imm12(imm, what)? << 20 | rs1.idx() << 15 | funct3 << 12 | rd.idx() << 7 | opcode)
}

fn rtype(funct7: u32, rs2: Gpr, rs1: Gpr, funct3: u32, rd: Gpr, opcode: u32) -> u32 {
    funct7 << 25 | rs2.idx() << 20 | rs1.idx() << 15 | funct3 << 12 | rd.idx() << 7 | opcode
}

fn stype(imm: i32, rs2: Gpr, rs1: Gpr, funct3: u32, what: &'static str) -> Result<u32, AsmError> {
    let imm = check_imm12(imm, what)?;
    Ok((imm >> 5) << 25
        | rs2.idx() << 20
        | rs1.idx() << 15
        | funct3 << 12
        | (imm & 0x1f) << 7
        | 0b0100011)
}

fn btype(
    offset: i64,
    rs2: Gpr,
    rs1: Gpr,
    funct3: u32,
    what: &'static str,
) -> Result<u32, AsmError> {
    if offset % 2 != 0 {
        return Err(AsmError::MisalignedOffset {
            what,
            value: offset,
        });
    }
    if !(-4096..=4094).contains(&offset) {
        return Err(AsmError::ImmediateOutOfRange {
            what,
            value: offset,
        });
    }
    let imm = offset as u32;
    Ok((imm >> 12 & 1) << 31
        | (imm >> 5 & 0x3f) << 25
        | rs2.idx() << 20
        | rs1.idx() << 15
        | funct3 << 12
        | (imm >> 1 & 0xf) << 8
        | (imm >> 11 & 1) << 7
        | 0b1100011)
}

/// `lui rd, imm20` (upper 20 bits).
pub fn lui(rd: Gpr, imm20: i32) -> Result<u32, AsmError> {
    if !(-(1 << 19)..(1 << 19)).contains(&imm20) {
        return Err(AsmError::ImmediateOutOfRange {
            what: "lui imm20",
            value: i64::from(imm20),
        });
    }
    Ok(((imm20 as u32) & 0xfffff) << 12 | rd.idx() << 7 | 0b0110111)
}

/// `auipc rd, imm20`.
pub fn auipc(rd: Gpr, imm20: i32) -> Result<u32, AsmError> {
    if !(-(1 << 19)..(1 << 19)).contains(&imm20) {
        return Err(AsmError::ImmediateOutOfRange {
            what: "auipc imm20",
            value: i64::from(imm20),
        });
    }
    Ok(((imm20 as u32) & 0xfffff) << 12 | rd.idx() << 7 | 0b0010111)
}

/// `jal rd, offset` (byte offset).
pub fn jal(rd: Gpr, offset: i64) -> Result<u32, AsmError> {
    if offset % 2 != 0 {
        return Err(AsmError::MisalignedOffset {
            what: "jal offset",
            value: offset,
        });
    }
    if !(-(1 << 20)..(1 << 20)).contains(&offset) {
        return Err(AsmError::ImmediateOutOfRange {
            what: "jal offset",
            value: offset,
        });
    }
    let imm = offset as u32;
    Ok((imm >> 20 & 1) << 31
        | (imm >> 1 & 0x3ff) << 21
        | (imm >> 11 & 1) << 20
        | (imm >> 12 & 0xff) << 12
        | rd.idx() << 7
        | 0b1101111)
}

/// `jalr rd, imm(rs1)`.
pub fn jalr(rd: Gpr, rs1: Gpr, imm: i32) -> Result<u32, AsmError> {
    itype(imm, rs1, 0b000, rd, 0b1100111, "jalr imm")
}

/// `ret` = `jalr x0, 0(x1)`.
#[must_use]
pub fn ret() -> u32 {
    jalr(Gpr::ZERO, Gpr::RA, 0).expect("zero immediate")
}

/// `beq rs1, rs2, offset`.
pub fn beq(rs1: Gpr, rs2: Gpr, offset: i64) -> Result<u32, AsmError> {
    btype(offset, rs2, rs1, 0b000, "beq offset")
}

/// `bne rs1, rs2, offset`.
pub fn bne(rs1: Gpr, rs2: Gpr, offset: i64) -> Result<u32, AsmError> {
    btype(offset, rs2, rs1, 0b001, "bne offset")
}

/// `blt rs1, rs2, offset` (signed).
pub fn blt(rs1: Gpr, rs2: Gpr, offset: i64) -> Result<u32, AsmError> {
    btype(offset, rs2, rs1, 0b100, "blt offset")
}

/// `bge rs1, rs2, offset` (signed).
pub fn bge(rs1: Gpr, rs2: Gpr, offset: i64) -> Result<u32, AsmError> {
    btype(offset, rs2, rs1, 0b101, "bge offset")
}

/// `bltu rs1, rs2, offset`.
pub fn bltu(rs1: Gpr, rs2: Gpr, offset: i64) -> Result<u32, AsmError> {
    btype(offset, rs2, rs1, 0b110, "bltu offset")
}

/// `bgeu rs1, rs2, offset`.
pub fn bgeu(rs1: Gpr, rs2: Gpr, offset: i64) -> Result<u32, AsmError> {
    btype(offset, rs2, rs1, 0b111, "bgeu offset")
}

/// `lb rd, imm(rs1)`.
pub fn lb(rd: Gpr, rs1: Gpr, imm: i32) -> Result<u32, AsmError> {
    itype(imm, rs1, 0b000, rd, 0b0000011, "lb imm")
}

/// `lbu rd, imm(rs1)`.
pub fn lbu(rd: Gpr, rs1: Gpr, imm: i32) -> Result<u32, AsmError> {
    itype(imm, rs1, 0b100, rd, 0b0000011, "lbu imm")
}

/// `ld rd, imm(rs1)`.
pub fn ld(rd: Gpr, rs1: Gpr, imm: i32) -> Result<u32, AsmError> {
    itype(imm, rs1, 0b011, rd, 0b0000011, "ld imm")
}

/// `lw rd, imm(rs1)`.
pub fn lw(rd: Gpr, rs1: Gpr, imm: i32) -> Result<u32, AsmError> {
    itype(imm, rs1, 0b010, rd, 0b0000011, "lw imm")
}

/// `sb rs2, imm(rs1)`.
pub fn sb(rs2: Gpr, rs1: Gpr, imm: i32) -> Result<u32, AsmError> {
    stype(imm, rs2, rs1, 0b000, "sb imm")
}

/// `sd rs2, imm(rs1)`.
pub fn sd(rs2: Gpr, rs1: Gpr, imm: i32) -> Result<u32, AsmError> {
    stype(imm, rs2, rs1, 0b011, "sd imm")
}

/// `sw rs2, imm(rs1)`.
pub fn sw(rs2: Gpr, rs1: Gpr, imm: i32) -> Result<u32, AsmError> {
    stype(imm, rs2, rs1, 0b010, "sw imm")
}

/// `addi rd, rs1, imm`.
pub fn addi(rd: Gpr, rs1: Gpr, imm: i32) -> Result<u32, AsmError> {
    itype(imm, rs1, 0b000, rd, 0b0010011, "addi imm")
}

/// `sltiu rd, rs1, imm`.
pub fn sltiu(rd: Gpr, rs1: Gpr, imm: i32) -> Result<u32, AsmError> {
    itype(imm, rs1, 0b011, rd, 0b0010011, "sltiu imm")
}

/// `andi rd, rs1, imm`.
pub fn andi(rd: Gpr, rs1: Gpr, imm: i32) -> Result<u32, AsmError> {
    itype(imm, rs1, 0b111, rd, 0b0010011, "andi imm")
}

/// `ori rd, rs1, imm`.
pub fn ori(rd: Gpr, rs1: Gpr, imm: i32) -> Result<u32, AsmError> {
    itype(imm, rs1, 0b110, rd, 0b0010011, "ori imm")
}

/// `xori rd, rs1, imm`.
pub fn xori(rd: Gpr, rs1: Gpr, imm: i32) -> Result<u32, AsmError> {
    itype(imm, rs1, 0b100, rd, 0b0010011, "xori imm")
}

/// `slli rd, rs1, shamt` (0–63).
pub fn slli(rd: Gpr, rs1: Gpr, shamt: u8) -> Result<u32, AsmError> {
    if shamt > 63 {
        return Err(AsmError::ImmediateOutOfRange {
            what: "slli shamt",
            value: i64::from(shamt),
        });
    }
    Ok(u32::from(shamt) << 20 | rs1.idx() << 15 | 0b001 << 12 | rd.idx() << 7 | 0b0010011)
}

/// `srli rd, rs1, shamt`.
pub fn srli(rd: Gpr, rs1: Gpr, shamt: u8) -> Result<u32, AsmError> {
    if shamt > 63 {
        return Err(AsmError::ImmediateOutOfRange {
            what: "srli shamt",
            value: i64::from(shamt),
        });
    }
    Ok(u32::from(shamt) << 20 | rs1.idx() << 15 | 0b101 << 12 | rd.idx() << 7 | 0b0010011)
}

/// `add rd, rs1, rs2`.
#[must_use]
pub fn add(rd: Gpr, rs1: Gpr, rs2: Gpr) -> u32 {
    rtype(0, rs2, rs1, 0b000, rd, 0b0110011)
}

/// `sub rd, rs1, rs2`.
#[must_use]
pub fn sub(rd: Gpr, rs1: Gpr, rs2: Gpr) -> u32 {
    rtype(0b0100000, rs2, rs1, 0b000, rd, 0b0110011)
}

/// `sltu rd, rs1, rs2`.
#[must_use]
pub fn sltu(rd: Gpr, rs1: Gpr, rs2: Gpr) -> u32 {
    rtype(0, rs2, rs1, 0b011, rd, 0b0110011)
}

/// `and rd, rs1, rs2`.
#[must_use]
pub fn and(rd: Gpr, rs1: Gpr, rs2: Gpr) -> u32 {
    rtype(0, rs2, rs1, 0b111, rd, 0b0110011)
}

/// `or rd, rs1, rs2`.
#[must_use]
pub fn or(rd: Gpr, rs1: Gpr, rs2: Gpr) -> u32 {
    rtype(0, rs2, rs1, 0b110, rd, 0b0110011)
}

/// `mv rd, rs` = `addi rd, rs, 0`.
#[must_use]
pub fn mv(rd: Gpr, rs: Gpr) -> u32 {
    addi(rd, rs, 0).expect("zero immediate")
}

/// `li rd, value` for values reachable with `lui`+`addi` (32-bit signed
/// range with sign-extension semantics).
pub fn li(rd: Gpr, value: i64) -> Result<Vec<u32>, AsmError> {
    if (-2048..=2047).contains(&value) {
        return Ok(vec![addi(rd, Gpr::ZERO, value as i32)?]);
    }
    if i64::from(value as i32) != value {
        return Err(AsmError::ImmediateOutOfRange {
            what: "li value",
            value,
        });
    }
    let value = value as i32;
    let lo = (value << 20) >> 20; // low 12, sign-extended
    let hi = (value - lo) >> 12;
    let mut out = vec![lui(rd, hi)?];
    if lo != 0 {
        out.push(addi(rd, rd, lo)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_encodings() {
        // addi x1, x0, 42 = 0x02A00093.
        assert_eq!(addi(Gpr(1), Gpr(0), 42).unwrap(), 0x02A0_0093);
        // ret = jalr x0, 0(x1) = 0x00008067.
        assert_eq!(ret(), 0x0000_8067);
        // add x3, x1, x2 = 0x002081B3.
        assert_eq!(add(Gpr(3), Gpr(1), Gpr(2)), 0x0020_81B3);
        // lb x3, 0(x1) = 0x00008183.
        assert_eq!(lb(Gpr(3), Gpr(1), 0).unwrap(), 0x0000_8183);
        // sb x3, 0(x2) = 0x00310023.
        assert_eq!(sb(Gpr(3), Gpr(2), 0).unwrap(), 0x0031_0023);
        // lui x1, 0xA0 = 0x000A00B7.
        assert_eq!(lui(Gpr(1), 0xA0).unwrap(), 0x000A_00B7);
    }

    #[test]
    fn branch_encodings() {
        // beq x10, x11, +8: known encoding 0x00B50463.
        assert_eq!(beq(Gpr(10), Gpr(11), 8).unwrap(), 0x00B5_0463);
        // bne backwards.
        let op = bne(Gpr(12), Gpr(0), -20).unwrap();
        assert_eq!(op & 0x7f, 0b1100011);
        assert_eq!((op >> 12) & 7, 0b001);
        assert!(beq(Gpr(0), Gpr(0), 3).is_err());
        assert!(beq(Gpr(0), Gpr(0), 5000).is_err());
    }

    #[test]
    fn jal_jalr_encode() {
        // jal x0, +16 — check opcode and rd.
        let op = jal(Gpr::ZERO, 16).unwrap();
        assert_eq!(op & 0x7f, 0b1101111);
        assert_eq!((op >> 7) & 0x1f, 0);
        assert!(jal(Gpr::ZERO, 1).is_err());
        let op = jalr(Gpr::RA, Gpr(5), 0).unwrap();
        assert_eq!(op & 0x7f, 0b1100111);
        assert_eq!((op >> 15) & 0x1f, 5);
    }

    #[test]
    fn li_composes() {
        assert_eq!(li(Gpr(1), 42).unwrap().len(), 1);
        assert_eq!(li(Gpr(1), 0x2000).unwrap().len(), 1); // lui only
        assert_eq!(li(Gpr(1), 0x2004).unwrap().len(), 2);
        assert!(li(Gpr(1), i64::MAX).is_err());
        // Negative low part borrows from the upper immediate.
        let ops = li(Gpr(1), 0x2fff).unwrap();
        assert_eq!(ops.len(), 2);
    }

    #[test]
    fn imm_bounds() {
        assert!(addi(Gpr(0), Gpr(0), 2047).is_ok());
        assert!(addi(Gpr(0), Gpr(0), 2048).is_err());
        assert!(addi(Gpr(0), Gpr(0), -2048).is_ok());
        assert!(addi(Gpr(0), Gpr(0), -2049).is_err());
        assert!(slli(Gpr(0), Gpr(0), 63).is_ok());
        assert!(slli(Gpr(0), Gpr(0), 64).is_err());
    }
}
