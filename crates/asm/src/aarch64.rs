//! AArch64 encoder for the case-study instruction subset.
//!
//! Encodings match the Arm ARM (and the mini-Sail model's decode): the
//! round-trip property "assemble, then run through the model" is tested in
//! `islaris-transval`.

use crate::ir::{cond_name, AsmError};

/// An AArch64 general-purpose register (`x0`–`x30`), the zero register
/// (`xzr` = 31 in operand position), or `sp` (also 31, in base/dest
/// position of `add`/`sub`/loads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XReg(pub u8);

impl XReg {
    /// The zero register.
    pub const XZR: XReg = XReg(31);
    /// The stack pointer (valid where the encoding reads 31 as SP).
    pub const SP: XReg = XReg(31);

    fn idx(self) -> u32 {
        assert!(self.0 <= 31, "register x{} out of range", self.0);
        u32::from(self.0)
    }
}

/// Condition codes for `b.cond`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Cond {
    Eq = 0,
    Ne = 1,
    Cs = 2,
    Cc = 3,
    Mi = 4,
    Pl = 5,
    Vs = 6,
    Vc = 7,
    Hi = 8,
    Ls = 9,
    Ge = 10,
    Lt = 11,
    Gt = 12,
    Le = 13,
    Al = 14,
}

/// Shift kinds for shifted-register operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shift {
    /// Logical shift left.
    Lsl = 0,
    /// Logical shift right.
    Lsr = 1,
    /// Arithmetic shift right.
    Asr = 2,
}

/// System registers known to the assembler (and the model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs, non_camel_case_types)]
pub enum SysReg {
    SCTLR_EL1,
    SCTLR_EL2,
    HCR_EL2,
    VBAR_EL1,
    VBAR_EL2,
    SPSR_EL1,
    SPSR_EL2,
    ELR_EL1,
    ELR_EL2,
    ESR_EL1,
    ESR_EL2,
    FAR_EL1,
    FAR_EL2,
    TPIDR_EL0,
    TPIDR_EL1,
    TPIDR_EL2,
    TPIDRRO_EL0,
    TTBR0_EL1,
    TTBR1_EL1,
    TTBR0_EL2,
    TCR_EL1,
    TCR_EL2,
    VTCR_EL2,
    VTTBR_EL2,
    MAIR_EL1,
    MAIR_EL2,
    AMAIR_EL1,
    AMAIR_EL2,
    CPACR_EL1,
    CPTR_EL2,
    HSTR_EL2,
    MDCR_EL2,
    MDSCR_EL1,
    CNTHCTL_EL2,
    CNTVOFF_EL2,
    VPIDR_EL2,
    VMPIDR_EL2,
    ACTLR_EL2,
    CONTEXTIDR_EL1,
    CSSELR_EL1,
    PAR_EL1,
    SP_EL0,
    SP_EL1,
}

impl SysReg {
    /// The 15-bit `(o0-2) @ op1 @ CRn @ CRm @ op2` key of the MSR/MRS
    /// encoding (bits 19:5), mirroring `SysRegRead` in the model.
    #[must_use]
    pub fn key(self) -> u32 {
        let (o0, op1, crn, crm, op2): (u32, u32, u32, u32, u32) = match self {
            SysReg::SCTLR_EL1 => (3, 0, 1, 0, 0),
            SysReg::SCTLR_EL2 => (3, 4, 1, 0, 0),
            SysReg::HCR_EL2 => (3, 4, 1, 1, 0),
            SysReg::VBAR_EL1 => (3, 0, 12, 0, 0),
            SysReg::VBAR_EL2 => (3, 4, 12, 0, 0),
            SysReg::SPSR_EL1 => (3, 0, 4, 0, 0),
            SysReg::SPSR_EL2 => (3, 4, 4, 0, 0),
            SysReg::ELR_EL1 => (3, 0, 4, 0, 1),
            SysReg::ELR_EL2 => (3, 4, 4, 0, 1),
            SysReg::ESR_EL1 => (3, 0, 5, 2, 0),
            SysReg::ESR_EL2 => (3, 4, 5, 2, 0),
            SysReg::FAR_EL1 => (3, 0, 6, 0, 0),
            SysReg::FAR_EL2 => (3, 4, 6, 0, 0),
            SysReg::TPIDR_EL0 => (3, 3, 13, 0, 2),
            SysReg::TPIDR_EL1 => (3, 0, 13, 0, 4),
            SysReg::TPIDR_EL2 => (3, 4, 13, 0, 2),
            SysReg::TPIDRRO_EL0 => (3, 3, 13, 0, 3),
            SysReg::TTBR0_EL1 => (3, 0, 2, 0, 0),
            SysReg::TTBR1_EL1 => (3, 0, 2, 0, 1),
            SysReg::TTBR0_EL2 => (3, 4, 2, 0, 0),
            SysReg::TCR_EL1 => (3, 0, 2, 0, 2),
            SysReg::TCR_EL2 => (3, 4, 2, 0, 2),
            SysReg::VTCR_EL2 => (3, 4, 2, 1, 2),
            SysReg::VTTBR_EL2 => (3, 4, 2, 1, 0),
            SysReg::MAIR_EL1 => (3, 0, 10, 2, 0),
            SysReg::MAIR_EL2 => (3, 4, 10, 2, 0),
            SysReg::AMAIR_EL1 => (3, 0, 10, 3, 0),
            SysReg::AMAIR_EL2 => (3, 4, 10, 3, 0),
            SysReg::CPACR_EL1 => (3, 0, 1, 0, 2),
            SysReg::CPTR_EL2 => (3, 4, 1, 1, 2),
            SysReg::HSTR_EL2 => (3, 4, 1, 1, 3),
            SysReg::MDCR_EL2 => (3, 4, 1, 1, 1),
            SysReg::MDSCR_EL1 => (2, 0, 0, 2, 2),
            SysReg::CNTHCTL_EL2 => (3, 4, 14, 1, 0),
            SysReg::CNTVOFF_EL2 => (3, 4, 14, 0, 3),
            SysReg::VPIDR_EL2 => (3, 4, 0, 0, 0),
            SysReg::VMPIDR_EL2 => (3, 4, 0, 0, 5),
            SysReg::ACTLR_EL2 => (3, 4, 1, 0, 1),
            SysReg::CONTEXTIDR_EL1 => (3, 0, 13, 0, 1),
            SysReg::CSSELR_EL1 => (3, 2, 0, 0, 0),
            SysReg::PAR_EL1 => (3, 0, 7, 4, 0),
            SysReg::SP_EL0 => (3, 0, 4, 1, 0),
            SysReg::SP_EL1 => (3, 4, 4, 1, 0),
        };
        ((o0 - 2) << 14) | (op1 << 11) | (crn << 7) | (crm << 3) | op2
    }

    /// All system registers (used by the pKVM case study's save/restore
    /// sweep and by coverage tests).
    pub const ALL: &'static [SysReg] = &[
        SysReg::SCTLR_EL1,
        SysReg::SCTLR_EL2,
        SysReg::HCR_EL2,
        SysReg::VBAR_EL1,
        SysReg::VBAR_EL2,
        SysReg::SPSR_EL1,
        SysReg::SPSR_EL2,
        SysReg::ELR_EL1,
        SysReg::ELR_EL2,
        SysReg::ESR_EL1,
        SysReg::ESR_EL2,
        SysReg::FAR_EL1,
        SysReg::FAR_EL2,
        SysReg::TPIDR_EL0,
        SysReg::TPIDR_EL1,
        SysReg::TPIDR_EL2,
        SysReg::TPIDRRO_EL0,
        SysReg::TTBR0_EL1,
        SysReg::TTBR1_EL1,
        SysReg::TTBR0_EL2,
        SysReg::TCR_EL1,
        SysReg::TCR_EL2,
        SysReg::VTCR_EL2,
        SysReg::VTTBR_EL2,
        SysReg::MAIR_EL1,
        SysReg::MAIR_EL2,
        SysReg::AMAIR_EL1,
        SysReg::AMAIR_EL2,
        SysReg::CPACR_EL1,
        SysReg::CPTR_EL2,
        SysReg::HSTR_EL2,
        SysReg::MDCR_EL2,
        SysReg::MDSCR_EL1,
        SysReg::CNTHCTL_EL2,
        SysReg::CNTVOFF_EL2,
        SysReg::VPIDR_EL2,
        SysReg::VMPIDR_EL2,
        SysReg::ACTLR_EL2,
        SysReg::CONTEXTIDR_EL1,
        SysReg::CSSELR_EL1,
        SysReg::PAR_EL1,
        SysReg::SP_EL0,
        SysReg::SP_EL1,
    ];

    /// The register's name as used in ITL traces.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SysReg::SCTLR_EL1 => "SCTLR_EL1",
            SysReg::SCTLR_EL2 => "SCTLR_EL2",
            SysReg::HCR_EL2 => "HCR_EL2",
            SysReg::VBAR_EL1 => "VBAR_EL1",
            SysReg::VBAR_EL2 => "VBAR_EL2",
            SysReg::SPSR_EL1 => "SPSR_EL1",
            SysReg::SPSR_EL2 => "SPSR_EL2",
            SysReg::ELR_EL1 => "ELR_EL1",
            SysReg::ELR_EL2 => "ELR_EL2",
            SysReg::ESR_EL1 => "ESR_EL1",
            SysReg::ESR_EL2 => "ESR_EL2",
            SysReg::FAR_EL1 => "FAR_EL1",
            SysReg::FAR_EL2 => "FAR_EL2",
            SysReg::TPIDR_EL0 => "TPIDR_EL0",
            SysReg::TPIDR_EL1 => "TPIDR_EL1",
            SysReg::TPIDR_EL2 => "TPIDR_EL2",
            SysReg::TPIDRRO_EL0 => "TPIDRRO_EL0",
            SysReg::TTBR0_EL1 => "TTBR0_EL1",
            SysReg::TTBR1_EL1 => "TTBR1_EL1",
            SysReg::TTBR0_EL2 => "TTBR0_EL2",
            SysReg::TCR_EL1 => "TCR_EL1",
            SysReg::TCR_EL2 => "TCR_EL2",
            SysReg::VTCR_EL2 => "VTCR_EL2",
            SysReg::VTTBR_EL2 => "VTTBR_EL2",
            SysReg::MAIR_EL1 => "MAIR_EL1",
            SysReg::MAIR_EL2 => "MAIR_EL2",
            SysReg::AMAIR_EL1 => "AMAIR_EL1",
            SysReg::AMAIR_EL2 => "AMAIR_EL2",
            SysReg::CPACR_EL1 => "CPACR_EL1",
            SysReg::CPTR_EL2 => "CPTR_EL2",
            SysReg::HSTR_EL2 => "HSTR_EL2",
            SysReg::MDCR_EL2 => "MDCR_EL2",
            SysReg::MDSCR_EL1 => "MDSCR_EL1",
            SysReg::CNTHCTL_EL2 => "CNTHCTL_EL2",
            SysReg::CNTVOFF_EL2 => "CNTVOFF_EL2",
            SysReg::VPIDR_EL2 => "VPIDR_EL2",
            SysReg::VMPIDR_EL2 => "VMPIDR_EL2",
            SysReg::ACTLR_EL2 => "ACTLR_EL2",
            SysReg::CONTEXTIDR_EL1 => "CONTEXTIDR_EL1",
            SysReg::CSSELR_EL1 => "CSSELR_EL1",
            SysReg::PAR_EL1 => "PAR_EL1",
            SysReg::SP_EL0 => "SP_EL0",
            SysReg::SP_EL1 => "SP_EL1",
        }
    }
}

fn check_imm12(imm: u32) -> Result<u32, AsmError> {
    if imm < (1 << 12) {
        Ok(imm)
    } else {
        Err(AsmError::ImmediateOutOfRange {
            what: "imm12",
            value: i64::from(imm),
        })
    }
}

fn check_branch_offset(bytes: i64, bits: u32, what: &'static str) -> Result<u32, AsmError> {
    if bytes % 4 != 0 {
        return Err(AsmError::MisalignedOffset { what, value: bytes });
    }
    let words = bytes / 4;
    let limit = 1i64 << (bits - 1);
    if words < -limit || words >= limit {
        return Err(AsmError::ImmediateOutOfRange { what, value: bytes });
    }
    Ok((words as u32) & ((1 << bits) - 1))
}

/// `add xd, xn, #imm` (64-bit, SP-capable when d or n is 31).
pub fn add_imm(d: XReg, n: XReg, imm: u32) -> Result<u32, AsmError> {
    Ok(0x9100_0000 | check_imm12(imm)? << 10 | n.idx() << 5 | d.idx())
}

/// `sub xd, xn, #imm`.
pub fn sub_imm(d: XReg, n: XReg, imm: u32) -> Result<u32, AsmError> {
    Ok(0xD100_0000 | check_imm12(imm)? << 10 | n.idx() << 5 | d.idx())
}

/// `subs xzr, xn, #imm` = `cmp xn, #imm`.
pub fn cmp_imm(n: XReg, imm: u32) -> Result<u32, AsmError> {
    Ok(0xF100_0000 | check_imm12(imm)? << 10 | n.idx() << 5 | 31)
}

/// `add xd, xn, xm` (shifted register, LSL #0).
#[must_use]
pub fn add_reg(d: XReg, n: XReg, m: XReg) -> u32 {
    0x8B00_0000 | m.idx() << 16 | n.idx() << 5 | d.idx()
}

/// `add xd, xn, xm, <shift> #amount`.
pub fn add_reg_shifted(
    d: XReg,
    n: XReg,
    m: XReg,
    shift: Shift,
    amount: u8,
) -> Result<u32, AsmError> {
    if amount > 63 {
        return Err(AsmError::ImmediateOutOfRange {
            what: "shift amount",
            value: i64::from(amount),
        });
    }
    Ok(0x8B00_0000
        | (shift as u32) << 22
        | m.idx() << 16
        | u32::from(amount) << 10
        | n.idx() << 5
        | d.idx())
}

/// `sub xd, xn, xm`.
#[must_use]
pub fn sub_reg(d: XReg, n: XReg, m: XReg) -> u32 {
    0xCB00_0000 | m.idx() << 16 | n.idx() << 5 | d.idx()
}

/// `subs xzr, xn, xm` = `cmp xn, xm`.
#[must_use]
pub fn cmp_reg(n: XReg, m: XReg) -> u32 {
    0xEB00_0000 | m.idx() << 16 | n.idx() << 5 | 31
}

/// `and xd, xn, xm`.
#[must_use]
pub fn and_reg(d: XReg, n: XReg, m: XReg) -> u32 {
    0x8A00_0000 | m.idx() << 16 | n.idx() << 5 | d.idx()
}

/// `orr xd, xzr, xm` = `mov xd, xm`.
#[must_use]
pub fn mov_reg(d: XReg, m: XReg) -> u32 {
    0xAA00_03E0 | m.idx() << 16 | d.idx()
}

/// `movz xd, #imm16, lsl #(hw*16)`.
pub fn movz(d: XReg, imm16: u16, hw: u8) -> Result<u32, AsmError> {
    if hw > 3 {
        return Err(AsmError::ImmediateOutOfRange {
            what: "movz hw",
            value: i64::from(hw),
        });
    }
    Ok(0xD280_0000 | u32::from(hw) << 21 | u32::from(imm16) << 5 | d.idx())
}

/// `movk xd, #imm16, lsl #(hw*16)`.
pub fn movk(d: XReg, imm16: u16, hw: u8) -> Result<u32, AsmError> {
    if hw > 3 {
        return Err(AsmError::ImmediateOutOfRange {
            what: "movk hw",
            value: i64::from(hw),
        });
    }
    Ok(0xF280_0000 | u32::from(hw) << 21 | u32::from(imm16) << 5 | d.idx())
}

/// `movn xd, #imm16, lsl #(hw*16)`.
pub fn movn(d: XReg, imm16: u16, hw: u8) -> Result<u32, AsmError> {
    if hw > 3 {
        return Err(AsmError::ImmediateOutOfRange {
            what: "movn hw",
            value: i64::from(hw),
        });
    }
    Ok(0x9280_0000 | u32::from(hw) << 21 | u32::from(imm16) << 5 | d.idx())
}

/// `mov xd, #value` as a movz/movk sequence (1–4 instructions).
#[must_use]
pub fn mov_imm64(d: XReg, value: u64) -> Vec<u32> {
    let mut out = Vec::new();
    let mut first = true;
    for hw in 0..4u8 {
        let part = ((value >> (16 * hw)) & 0xffff) as u16;
        if part != 0 {
            let op = if first {
                movz(d, part, hw).expect("hw in range")
            } else {
                movk(d, part, hw).expect("hw in range")
            };
            out.push(op);
            first = false;
        }
    }
    if out.is_empty() {
        out.push(movz(d, 0, 0).expect("hw in range"));
    }
    out
}

/// `lsr xd, xn, #shift` (UBFM alias).
pub fn lsr_imm(d: XReg, n: XReg, shift: u8) -> Result<u32, AsmError> {
    if shift > 63 {
        return Err(AsmError::ImmediateOutOfRange {
            what: "lsr shift",
            value: i64::from(shift),
        });
    }
    Ok(0xD340_FC00 | u32::from(shift) << 16 | n.idx() << 5 | d.idx())
}

/// `lsl xd, xn, #shift` (UBFM alias), `1 <= shift <= 63`.
pub fn lsl_imm(d: XReg, n: XReg, shift: u8) -> Result<u32, AsmError> {
    if shift == 0 || shift > 63 {
        return Err(AsmError::ImmediateOutOfRange {
            what: "lsl shift",
            value: i64::from(shift),
        });
    }
    let immr = (64 - u32::from(shift)) % 64;
    let imms = 63 - u32::from(shift);
    Ok(0xD340_0000 | immr << 16 | imms << 10 | n.idx() << 5 | d.idx())
}

/// `ldrb wt, [xn, xm]` (register offset, LSL #0).
#[must_use]
pub fn ldrb_reg(t: XReg, n: XReg, m: XReg) -> u32 {
    0x3860_6800 | m.idx() << 16 | n.idx() << 5 | t.idx()
}

/// `strb wt, [xn, xm]`.
#[must_use]
pub fn strb_reg(t: XReg, n: XReg, m: XReg) -> u32 {
    0x3820_6800 | m.idx() << 16 | n.idx() << 5 | t.idx()
}

/// `ldr xt, [xn, #imm]` (imm must be a multiple of 8, `< 32768`).
pub fn ldr_imm(t: XReg, n: XReg, imm: u32) -> Result<u32, AsmError> {
    if imm % 8 != 0 || imm / 8 >= (1 << 12) {
        return Err(AsmError::ImmediateOutOfRange {
            what: "ldr imm",
            value: i64::from(imm),
        });
    }
    Ok(0xF940_0000 | (imm / 8) << 10 | n.idx() << 5 | t.idx())
}

/// `str xt, [xn, #imm]`.
pub fn str_imm(t: XReg, n: XReg, imm: u32) -> Result<u32, AsmError> {
    if imm % 8 != 0 || imm / 8 >= (1 << 12) {
        return Err(AsmError::ImmediateOutOfRange {
            what: "str imm",
            value: i64::from(imm),
        });
    }
    Ok(0xF900_0000 | (imm / 8) << 10 | n.idx() << 5 | t.idx())
}

/// `ldr wt, [xn, #imm]` (32-bit; imm multiple of 4).
pub fn ldr32_imm(t: XReg, n: XReg, imm: u32) -> Result<u32, AsmError> {
    if imm % 4 != 0 || imm / 4 >= (1 << 12) {
        return Err(AsmError::ImmediateOutOfRange {
            what: "ldr32 imm",
            value: i64::from(imm),
        });
    }
    Ok(0xB940_0000 | (imm / 4) << 10 | n.idx() << 5 | t.idx())
}

/// `str wt, [xn, #imm]` (32-bit).
pub fn str32_imm(t: XReg, n: XReg, imm: u32) -> Result<u32, AsmError> {
    if imm % 4 != 0 || imm / 4 >= (1 << 12) {
        return Err(AsmError::ImmediateOutOfRange {
            what: "str32 imm",
            value: i64::from(imm),
        });
    }
    Ok(0xB900_0000 | (imm / 4) << 10 | n.idx() << 5 | t.idx())
}

/// `ldrb wt, [xn, #imm]`.
pub fn ldrb_imm(t: XReg, n: XReg, imm: u32) -> Result<u32, AsmError> {
    Ok(0x3940_0000 | check_imm12(imm)? << 10 | n.idx() << 5 | t.idx())
}

/// `strb wt, [xn, #imm]`.
pub fn strb_imm(t: XReg, n: XReg, imm: u32) -> Result<u32, AsmError> {
    Ok(0x3900_0000 | check_imm12(imm)? << 10 | n.idx() << 5 | t.idx())
}

/// `cbz xt, #offset` (byte offset from this instruction).
pub fn cbz(t: XReg, offset: i64) -> Result<u32, AsmError> {
    Ok(0xB400_0000 | check_branch_offset(offset, 19, "cbz offset")? << 5 | t.idx())
}

/// `cbnz xt, #offset`.
pub fn cbnz(t: XReg, offset: i64) -> Result<u32, AsmError> {
    Ok(0xB500_0000 | check_branch_offset(offset, 19, "cbnz offset")? << 5 | t.idx())
}

/// `b.cond #offset`.
pub fn b_cond(cond: Cond, offset: i64) -> Result<u32, AsmError> {
    Ok(0x5400_0000 | check_branch_offset(offset, 19, "b.cond offset")? << 5 | cond as u32)
}

/// `b #offset`.
pub fn b(offset: i64) -> Result<u32, AsmError> {
    Ok(0x1400_0000 | check_branch_offset(offset, 26, "b offset")?)
}

/// `bl #offset`.
pub fn bl(offset: i64) -> Result<u32, AsmError> {
    Ok(0x9400_0000 | check_branch_offset(offset, 26, "bl offset")?)
}

/// `br xn`.
#[must_use]
pub fn br(n: XReg) -> u32 {
    0xD61F_0000 | n.idx() << 5
}

/// `blr xn`.
#[must_use]
pub fn blr(n: XReg) -> u32 {
    0xD63F_0000 | n.idx() << 5
}

/// `ret` (via x30) or `ret xn`.
#[must_use]
pub fn ret(n: XReg) -> u32 {
    0xD65F_0000 | n.idx() << 5
}

/// `msr <sysreg>, xt`.
#[must_use]
pub fn msr(reg: SysReg, t: XReg) -> u32 {
    0xD510_0000 | reg.key() << 5 | t.idx()
}

/// `mrs xt, <sysreg>`.
#[must_use]
pub fn mrs(t: XReg, reg: SysReg) -> u32 {
    0xD530_0000 | reg.key() << 5 | t.idx()
}

/// `hvc #imm16`.
#[must_use]
pub fn hvc(imm16: u16) -> u32 {
    0xD400_0002 | u32::from(imm16) << 5
}

/// `eret`.
#[must_use]
pub fn eret() -> u32 {
    0xD69F_03E0
}

/// `rbit xd, xn`.
#[must_use]
pub fn rbit(d: XReg, n: XReg) -> u32 {
    0xDAC0_0000 | n.idx() << 5 | d.idx()
}

/// `nop`.
#[must_use]
pub fn nop() -> u32 {
    0xD503_201F
}

/// Renders a `b.cond` mnemonic for listings.
#[must_use]
pub fn cond_mnemonic(c: Cond) -> &'static str {
    cond_name(c as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_encodings() {
        // The paper's Fig. 3 opcode.
        assert_eq!(add_imm(XReg::SP, XReg::SP, 0x40).unwrap(), 0x9101_03FF);
        // hvc #0 (Fig. 9).
        assert_eq!(hvc(0), 0xD400_0002);
        assert_eq!(eret(), 0xD69F_03E0);
        assert_eq!(nop(), 0xD503_201F);
        // GNU as: ret = 0xD65F03C0.
        assert_eq!(ret(XReg(30)), 0xD65F_03C0);
        // cmp x2, x3 = 0xEB03005F.
        assert_eq!(cmp_reg(XReg(2), XReg(3)), 0xEB03_005F);
        // ldrb w4, [x1, x3] = 0x38636824.
        assert_eq!(ldrb_reg(XReg(4), XReg(1), XReg(3)), 0x3863_6824);
        // strb w4, [x0, x3] = 0x38236804.
        assert_eq!(strb_reg(XReg(4), XReg(0), XReg(3)), 0x3823_6804);
        // rbit x0, x1 = 0xDAC00020.
        assert_eq!(rbit(XReg(0), XReg(1)), 0xDAC0_0020);
        // mov x3, #0 = movz x3, #0 = 0xD2800003.
        assert_eq!(movz(XReg(3), 0, 0).unwrap(), 0xD280_0003);
    }

    #[test]
    fn branch_offsets_encode_and_reject() {
        // b . (self-loop) = 0x14000000.
        assert_eq!(b(0).unwrap(), 0x1400_0000);
        // bne .L3 backwards by 16 bytes.
        let op = b_cond(Cond::Ne, -16).unwrap();
        assert_eq!(op & 0xFF00_0000, 0x5400_0000);
        assert_eq!(op & 0xF, 1);
        assert!(b_cond(Cond::Eq, 2).is_err(), "misaligned");
        assert!(cbz(XReg(0), 1 << 30).is_err(), "out of range");
    }

    #[test]
    fn mov_imm64_composes() {
        assert_eq!(mov_imm64(XReg(0), 0), vec![movz(XReg(0), 0, 0).unwrap()]);
        assert_eq!(mov_imm64(XReg(0), 0xa0000).len(), 1); // single movz hw=1? 0xa0000 = 0xa << 16
        assert_eq!(mov_imm64(XReg(0), 0x1234_5678_9abc_def0).len(), 4);
    }

    #[test]
    fn sysreg_keys_are_unique() {
        let mut keys: Vec<u32> = SysReg::ALL.iter().map(|r| r.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), SysReg::ALL.len());
        // Spot checks against the model's constants.
        assert_eq!(SysReg::VBAR_EL2.key(), 0b110011000000000);
        assert_eq!(SysReg::HCR_EL2.key(), 0b110000010001000);
        assert_eq!(SysReg::SCTLR_EL1.key(), 0b100000010000000);
        assert_eq!(SysReg::MDSCR_EL1.key(), 0b000000000010010);
    }

    #[test]
    fn msr_mrs_encode() {
        // msr vbar_el2, x0 = 0xD51EC000? Check L and key placement.
        let op = msr(SysReg::VBAR_EL2, XReg(0));
        assert_eq!(op >> 22, 0b1101010100);
        assert_eq!((op >> 21) & 1, 0, "MSR writes");
        assert_eq!((op >> 20) & 1, 1);
        assert_eq!((op >> 5) & 0x7fff, SysReg::VBAR_EL2.key());
        let op = mrs(XReg(3), SysReg::ESR_EL2);
        assert_eq!((op >> 21) & 1, 1, "MRS reads");
        assert_eq!(op & 0x1f, 3);
    }

    #[test]
    fn imm12_bounds() {
        assert!(add_imm(XReg(0), XReg(0), 4095).is_ok());
        assert!(add_imm(XReg(0), XReg(0), 4096).is_err());
    }
}
