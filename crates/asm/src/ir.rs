//! Assembler infrastructure shared between the AArch64 and RV64 encoders:
//! errors, and a two-pass program builder with labels and `.org`.

use std::collections::HashMap;
use std::fmt;

/// Assembly errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// An immediate field does not fit its encoding.
    ImmediateOutOfRange {
        /// Which field.
        what: &'static str,
        /// The offending value.
        value: i64,
    },
    /// A branch offset is not instruction-aligned.
    MisalignedOffset {
        /// Which field.
        what: &'static str,
        /// The offending value.
        value: i64,
    },
    /// A referenced label was never defined.
    UnknownLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::ImmediateOutOfRange { what, value } => {
                write!(f, "{what} out of range: {value}")
            }
            AsmError::MisalignedOffset { what, value } => {
                write!(f, "{what} misaligned: {value}")
            }
            AsmError::UnknownLabel(l) => write!(f, "unknown label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl std::error::Error for AsmError {}

/// An assembled program: `(address, opcode)` pairs plus the label map.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The instructions in address order.
    pub instrs: Vec<(u64, u32)>,
    /// Label addresses.
    pub labels: HashMap<String, u64>,
}

impl Program {
    /// Address of a label.
    ///
    /// # Panics
    ///
    /// Panics if the label is unknown (builder guarantees presence for
    /// labels it resolved; this accessor is for test convenience).
    #[must_use]
    pub fn label(&self, name: &str) -> u64 {
        *self
            .labels
            .get(name)
            .unwrap_or_else(|| panic!("unknown label `{name}`"))
    }

    /// Number of instructions — the "asm" size column of Fig. 12.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True iff the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

type Fixup = Box<dyn FnOnce(i64) -> Result<u32, AsmError>>;

enum Item {
    Word(u64, u32),
    Patch {
        addr: u64,
        target: String,
        fixup: Fixup,
    },
}

/// A two-pass assembler: emit instructions and label references, then
/// [`Asm::finish`] resolves offsets.
///
/// # Examples
///
/// ```
/// use islaris_asm::{aarch64 as a64, Asm};
///
/// let mut asm = Asm::new(0x1000);
/// asm.label("loop");
/// asm.put(a64::nop());
/// asm.branch_to("loop", |off| a64::b(off)); // b loop
/// let prog = asm.finish()?;
/// assert_eq!(prog.len(), 2);
/// # Ok::<(), islaris_asm::AsmError>(())
/// ```
pub struct Asm {
    pc: u64,
    items: Vec<Item>,
    labels: HashMap<String, u64>,
    errors: Vec<AsmError>,
}

impl Asm {
    /// Starts assembling at `base`.
    #[must_use]
    pub fn new(base: u64) -> Self {
        Asm {
            pc: base,
            items: Vec::new(),
            labels: HashMap::new(),
            errors: Vec::new(),
        }
    }

    /// Current location counter.
    #[must_use]
    pub fn here(&self) -> u64 {
        self.pc
    }

    /// Moves the location counter (like `.org`; must not go backwards over
    /// emitted code — not checked, matching assembler behaviour loosely).
    pub fn org(&mut self, addr: u64) {
        self.pc = addr;
    }

    /// Defines a label at the current location.
    pub fn label(&mut self, name: &str) {
        if self.labels.insert(name.to_owned(), self.pc).is_some() {
            self.errors.push(AsmError::DuplicateLabel(name.to_owned()));
        }
    }

    /// Emits one instruction word.
    pub fn put(&mut self, opcode: u32) {
        self.items.push(Item::Word(self.pc, opcode));
        self.pc += 4;
    }

    /// Emits several instruction words.
    pub fn put_all<I: IntoIterator<Item = u32>>(&mut self, opcodes: I) {
        for op in opcodes {
            self.put(op);
        }
    }

    /// Emits a fallible encoding, deferring the error to [`Asm::finish`].
    pub fn put_or(&mut self, op: Result<u32, AsmError>) {
        match op {
            Ok(w) => self.put(w),
            Err(e) => {
                self.errors.push(e);
                self.pc += 4;
            }
        }
    }

    /// Emits a PC-relative instruction targeting `label`; `encode` is
    /// called with the byte offset (target − this instruction's address).
    pub fn branch_to(
        &mut self,
        label: &str,
        encode: impl FnOnce(i64) -> Result<u32, AsmError> + 'static,
    ) {
        self.items.push(Item::Patch {
            addr: self.pc,
            target: label.to_owned(),
            fixup: Box::new(encode),
        });
        self.pc += 4;
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns the first accumulated error (bad immediate, unknown or
    /// duplicate label, misaligned offset).
    pub fn finish(self) -> Result<Program, AsmError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        let mut instrs = Vec::with_capacity(self.items.len());
        for item in self.items {
            match item {
                Item::Word(addr, op) => instrs.push((addr, op)),
                Item::Patch {
                    addr,
                    target,
                    fixup,
                } => {
                    let Some(dest) = self.labels.get(&target) else {
                        return Err(AsmError::UnknownLabel(target));
                    };
                    let off = *dest as i64 - addr as i64;
                    instrs.push((addr, fixup(off)?));
                }
            }
        }
        instrs.sort_by_key(|(a, _)| *a);
        Ok(Program {
            instrs,
            labels: self.labels,
        })
    }
}

/// Condition-code mnemonic table (index = encoding).
#[must_use]
pub fn cond_name(code: u32) -> &'static str {
    match code {
        0 => "eq",
        1 => "ne",
        2 => "cs",
        3 => "cc",
        4 => "mi",
        5 => "pl",
        6 => "vs",
        7 => "vc",
        8 => "hi",
        9 => "ls",
        10 => "ge",
        11 => "lt",
        12 => "gt",
        13 => "le",
        _ => "al",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_forwards_and_backwards() {
        let mut asm = Asm::new(0x1000);
        asm.label("start");
        asm.put(0x1111_1111);
        asm.branch_to("end", |off| {
            assert_eq!(off, 8);
            Ok(0x2222_2222)
        });
        asm.branch_to("start", |off| {
            assert_eq!(off, -8);
            Ok(0x3333_3333)
        });
        asm.label("end");
        asm.put(0x4444_4444);
        let p = asm.finish().expect("assembles");
        assert_eq!(p.instrs.len(), 4);
        assert_eq!(p.label("start"), 0x1000);
        assert_eq!(p.label("end"), 0x100c);
    }

    #[test]
    fn org_places_code() {
        let mut asm = Asm::new(0x8_0000);
        asm.put(1);
        asm.org(0x9_0000);
        asm.label("enter_el1");
        asm.put(2);
        let p = asm.finish().expect("assembles");
        assert_eq!(p.instrs, vec![(0x8_0000, 1), (0x9_0000, 2)]);
        assert_eq!(p.label("enter_el1"), 0x9_0000);
    }

    #[test]
    fn unknown_and_duplicate_labels_error() {
        let mut asm = Asm::new(0);
        asm.branch_to("nowhere", |_| Ok(0));
        let err = asm.finish().expect_err("fails");
        assert!(matches!(err, AsmError::UnknownLabel(_)));

        let mut asm = Asm::new(0);
        asm.label("a");
        asm.label("a");
        assert!(matches!(asm.finish(), Err(AsmError::DuplicateLabel(_))));
    }

    #[test]
    fn deferred_errors_surface() {
        let mut asm = Asm::new(0);
        asm.put_or(Err(AsmError::ImmediateOutOfRange {
            what: "imm12",
            value: 9999,
        }));
        assert!(asm.finish().is_err());
    }
}
