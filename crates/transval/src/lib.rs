//! Translation validation of Isla traces against the direct mini-Sail
//! semantics (§5 of the paper, Theorem 2).
//!
//! The paper proves, in Coq, a simulation `m ∼ t` between the
//! Sail-generated monadic definitions and the Isla trace of each
//! instruction, giving end-to-end theorems that do not mention Isla or the
//! SMT solver. This reproduction replaces the Coq proof with *checked
//! simulation*: for an instruction and a machine state, run the mini-Sail
//! interpreter and the ITL trace interpreter side by side and compare the
//! resulting states. [`validate_instr`] checks one state; [`validate_program`]
//! sweeps a set of states (directed + randomized), which is the
//! bounded-refinement analogue of the paper's per-instruction `m ∼ t`
//! lemmas. As in the paper, the check exercises the `Assert`/`Assume`
//! split: states violating the trace's assumptions must fail on the ITL
//! side (⊥), not diverge silently.

use std::collections::BTreeMap;
use std::sync::Arc;

use islaris_bv::Bv;
use islaris_isla::{trace_opcode, IslaConfig, Opcode};
use islaris_itl::{exec_instr, Label, Machine, Reg, Trace, ZeroIo};
use islaris_models::Arch;
use islaris_sail::{CVal, Interp, MapMem, SailState};
use islaris_smt::Value;

/// A translation-validation failure.
#[derive(Debug, Clone)]
pub struct ValidationError {
    /// The opcode under test.
    pub opcode: u32,
    /// Description of the divergence.
    pub message: String,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "validation of opcode {:#010x} failed: {}",
            self.opcode, self.message
        )
    }
}

impl std::error::Error for ValidationError {}

fn err<T>(opcode: u32, message: impl Into<String>) -> Result<T, ValidationError> {
    Err(ValidationError {
        opcode,
        message: message.into(),
    })
}

/// Converts a mini-Sail register state into ITL machine registers, using
/// the architecture's register naming.
#[must_use]
pub fn state_to_machine_regs(arch: &Arch, st: &SailState) -> BTreeMap<Reg, Value> {
    let mut out = BTreeMap::new();
    for (name, v) in &st.regs {
        let reg = match name.split_once('.') {
            Some((base, field)) => Reg::field(base, field),
            None => Reg::new(name),
        };
        out.insert(reg, Value::Bits(*v));
    }
    for (array, vals) in &st.arrays {
        for (i, v) in vals.iter().enumerate() {
            if let Some(n) = arch.array_reg_name(array, i) {
                out.insert(Reg::new(&n), Value::Bits(*v));
            }
        }
    }
    out
}

/// Converts ITL machine registers back for comparison.
fn machine_regs_to_state(arch: &Arch, m: &Machine, template: &SailState) -> SailState {
    let mut st = template.clone();
    for (name, slot) in &mut st.regs {
        let reg = match name.split_once('.') {
            Some((base, field)) => Reg::field(base, field),
            None => Reg::new(name),
        };
        if let Some(Value::Bits(b)) = m.reg(&reg) {
            *slot = b;
        }
    }
    for (array, vals) in &mut st.arrays {
        for (i, slot) in vals.iter_mut().enumerate() {
            if let Some(n) = arch.array_reg_name(array, i) {
                if let Some(Value::Bits(b)) = m.reg(&Reg::new(&n)) {
                    *slot = b;
                }
            }
        }
    }
    st
}

/// Validates one opcode's trace against the model on one concrete state.
///
/// Both sides start from `state` and the byte memory `mem`; afterwards the
/// register states and the mapped memory must agree. `trace` must have
/// been generated for this opcode (the caller controls the configuration,
/// so assumption-violating states are its responsibility — they surface as
/// an ITL-side ⊥, reported as an error).
///
/// # Errors
///
/// Returns a [`ValidationError`] describing the first divergence.
pub fn validate_instr(
    arch: &Arch,
    opcode: u32,
    trace: &Trace,
    state: &SailState,
    mem: &BTreeMap<u64, u8>,
) -> Result<(), ValidationError> {
    // Side 1: direct mini-Sail interpretation.
    let cm = arch.model();
    let interp = Interp::new(cm).map_err(|e| ValidationError {
        opcode,
        message: e.to_string(),
    })?;
    let mut sail_state = state.clone();
    let mut sail_mem = MapMem { bytes: mem.clone() };
    interp
        .call(
            arch.entry,
            &[CVal::Bits(Bv::new(32, u128::from(opcode)))],
            &mut sail_state,
            &mut sail_mem,
        )
        .map_err(|e| ValidationError {
            opcode,
            message: format!("model: {e}"),
        })?;

    // Side 2: the ITL trace on the same state.
    let mut machine = Machine::new();
    machine.regs = state_to_machine_regs(arch, state);
    for (a, b) in mem {
        machine.mem.insert(*a, *b);
    }
    let mut labels: Vec<Label> = Vec::new();
    exec_instr(trace, &mut machine, &mut ZeroIo, &mut labels).map_err(|e| ValidationError {
        opcode,
        message: format!("trace: {e}"),
    })?;

    // Compare registers.
    let got = machine_regs_to_state(arch, &machine, state);
    for (name, expected) in &sail_state.regs {
        let actual = got.regs.get(name);
        if actual != Some(expected) {
            return err(
                opcode,
                format!("register {name}: model {expected:?}, trace {actual:?}"),
            );
        }
    }
    for (array, expected) in &sail_state.arrays {
        let actual = got.arrays.get(array);
        if actual != Some(expected) {
            return err(opcode, format!("register array {array} diverged"));
        }
    }
    // Compare the initially-mapped memory.
    for addr in mem.keys() {
        let model_byte = sail_mem.bytes.get(addr).copied().unwrap_or(0);
        let trace_byte = machine.mem.get(addr).copied().unwrap_or(0);
        if model_byte != trace_byte {
            return err(
                opcode,
                format!("memory {addr:#x}: model {model_byte:#04x}, trace {trace_byte:#04x}"),
            );
        }
    }
    Ok(())
}

/// A simple deterministic PRNG (xorshift64*), so validation sweeps are
/// reproducible.
#[derive(Debug, Clone)]
pub struct XorShift(pub u64);

impl XorShift {
    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Options for a validation sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Number of randomized states per opcode.
    pub random_states: u32,
    /// PRNG seed.
    pub seed: u64,
    /// Base address of the scratch memory window given to both sides.
    pub mem_base: u64,
    /// Size of the scratch window.
    pub mem_len: u64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            random_states: 8,
            seed: 0x1234_5678,
            mem_base: 0x2000,
            mem_len: 64,
        }
    }
}

/// Validates every instruction of a program (the paper validates every
/// instruction of the RISC-V memcpy binary) over randomized states whose
/// address-forming registers are pointed into a scratch window.
///
/// `assume_regs` are the registers fixed by the Isla configuration; the
/// states are generated to satisfy them, mirroring the paper's use of
/// `Assume` during refinement proofs.
///
/// # Errors
///
/// Returns the first divergence found.
pub fn validate_program(
    arch: &Arch,
    cfg: &IslaConfig,
    program: &[(u64, u32)],
    opts: &SweepOptions,
) -> Result<u64, ValidationError> {
    let mut rng = XorShift(opts.seed);
    let mut checks = 0;
    for (_, opcode) in program {
        let tr = trace_opcode(cfg, &Opcode::Concrete(*opcode)).map_err(|e| ValidationError {
            opcode: *opcode,
            message: e.to_string(),
        })?;
        let trace = Arc::new(tr.trace);
        for _ in 0..opts.random_states {
            let (state, mem) = random_state(arch, cfg, &mut rng, opts);
            validate_instr(arch, *opcode, &trace, &state, &mem)?;
            checks += 1;
        }
    }
    Ok(checks)
}

/// Generates a random state satisfying the configuration's register
/// assumptions, with pointer-like registers aimed at the scratch window.
#[must_use]
pub fn random_state(
    arch: &Arch,
    cfg: &IslaConfig,
    rng: &mut XorShift,
    opts: &SweepOptions,
) -> (SailState, BTreeMap<u64, u8>) {
    let cm = arch.model();
    let mut st = SailState::zeroed(cm);
    // Randomise registers: alternate raw values and window pointers.
    for (i, v) in st.regs.values_mut().enumerate() {
        if v.width() == 64 {
            *v = Bv::new(64, u128::from(rng.next_u64()));
            if i % 2 == 0 {
                *v = Bv::new(
                    64,
                    u128::from(opts.mem_base + rng.next_u64() % opts.mem_len),
                );
            }
        } else {
            *v = Bv::new(v.width(), u128::from(rng.next_u64()));
        }
    }
    for vals in st.arrays.values_mut() {
        for (i, v) in vals.iter_mut().enumerate() {
            *v = if i % 2 == 0 {
                Bv::new(
                    64,
                    u128::from(opts.mem_base + rng.next_u64() % (opts.mem_len / 2)),
                )
            } else {
                Bv::new(64, u128::from(rng.next_u64() % 1024))
            };
        }
    }
    // Apply the configuration's assumed register values.
    for (name, val) in &cfg.reg_values {
        apply_assumption(arch, &mut st, name, *val);
    }
    // PC inside the window-independent code area.
    st.regs.insert(arch.pc.to_owned(), Bv::new(64, 0x1000));
    let mut mem = BTreeMap::new();
    for a in 0..opts.mem_len {
        mem.insert(opts.mem_base + a, (rng.next_u64() & 0xff) as u8);
    }
    (st, mem)
}

fn apply_assumption(arch: &Arch, st: &mut SailState, itl_name: &str, val: Bv) {
    // Array element names (R3, x7) map back into the arrays.
    for (array, prefix) in arch.arrays {
        if let Some(idx) = itl_name.strip_prefix(prefix) {
            if let Ok(i) = idx.parse::<usize>() {
                if let Some(vals) = st.arrays.get_mut(*array) {
                    if i < vals.len() {
                        vals[i] = val;
                        return;
                    }
                }
            }
        }
    }
    st.regs.insert(itl_name.to_owned(), val);
}

#[cfg(test)]
mod tests {
    use super::*;
    use islaris_models::{ARM, RISCV};

    fn arm_cfg() -> IslaConfig {
        IslaConfig::new(ARM)
            .assume_reg("PSTATE.EL", Bv::new(2, 0b10))
            .assume_reg("PSTATE.SP", Bv::new(1, 0b1))
            .assume_reg("PSTATE.nRW", Bv::new(1, 0))
            .assume_reg("SCTLR_EL2", Bv::zero(64))
    }

    #[test]
    fn arm_add_sp_validates() {
        let cfg = arm_cfg();
        let checks = validate_program(
            &ARM,
            &cfg,
            &[(0x1000, 0x910103ff)],
            &SweepOptions::default(),
        )
        .expect("validates");
        assert_eq!(checks, 8);
    }

    #[test]
    fn mutated_trace_fails_validation() {
        let cfg = arm_cfg();
        let r = trace_opcode(&cfg, &Opcode::Concrete(0x910103ff)).expect("traces");
        // Mutate: +0x41 instead of +0x40 by reprinting and editing the text.
        let text =
            islaris_itl::print_trace(&r.trace).replace("#x0000000000000040", "#x0000000000000041");
        let bad = islaris_itl::parse_trace(&text).expect("parses");
        let mut rng = XorShift(7);
        let opts = SweepOptions::default();
        let (state, mem) = random_state(&ARM, &cfg, &mut rng, &opts);
        let err = validate_instr(&ARM, 0x910103ff, &bad, &state, &mem).expect_err("diverges");
        assert!(err.message.contains("SP_EL2"), "{err}");
    }

    #[test]
    fn riscv_basic_ops_validate() {
        let cfg = IslaConfig::new(RISCV);
        let program = [
            (0x1000u64, 0x02A0_0093u32), // addi x1, x0, 42
            (0x1004, 0x0020_81B3),       // add x3, x1, x2
            (0x1008, 0x0000_8183),       // lb x3, 0(x1)
            (0x100c, 0x0031_0023),       // sb x3, 0(x2)
            (0x1010, 0x0000_8067),       // ret
        ];
        let checks =
            validate_program(&RISCV, &cfg, &program, &SweepOptions::default()).expect("validates");
        assert_eq!(checks, 40);
    }

    #[test]
    fn riscv_branches_validate_on_both_sides() {
        let cfg = IslaConfig::new(RISCV);
        // beq x1, x2, +8 — randomized states exercise both branches.
        let beq = 0x00B5_0463u32 & !(0x1f << 15) & !(0x1f << 20) | (1 << 15) | (2 << 20);
        let opts = SweepOptions {
            random_states: 16,
            ..SweepOptions::default()
        };
        validate_program(&RISCV, &cfg, &[(0x1000, beq)], &opts).expect("validates");
    }

    #[test]
    fn assumption_violating_state_is_reported() {
        // Trace generated under EL2; validate against an EL1 state.
        let cfg = arm_cfg();
        let r = trace_opcode(&cfg, &Opcode::Concrete(0x910103ff)).expect("traces");
        let mut rng = XorShift(3);
        let opts = SweepOptions::default();
        let (mut state, mem) = random_state(&ARM, &cfg, &mut rng, &opts);
        state.regs.insert("PSTATE.EL".into(), Bv::new(2, 0b01));
        let err = validate_instr(&ARM, 0x910103ff, &Arc::new(r.trace), &state, &mem)
            .expect_err("trace side hits ⊥");
        assert!(err.message.contains("assumption"), "{err}");
    }
}
