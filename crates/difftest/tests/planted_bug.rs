//! The oracle's end-to-end soundness check: plant a real semantic bug in
//! a copy of the Arm model, run the fuzzer with a fixed seed and budget,
//! and require that the bug is caught with a replayable counterexample.
//!
//! The planted bug flips the carry-flag computation in `AddWithCarry64`
//! (`PSTATE.C = if ZeroExtend(result, 128) == usum then 0b0 else 0b1` —
//! the then/else arms are swapped), the kind of off-by-one-polarity
//! mistake ISA models actually acquire. The *symbolic* side keeps the
//! shipped model, so every flag-setting add/sub instruction diverges at
//! its `PSTATE.C` write.

use islaris_asm::ARM_CLASSES;
use islaris_difftest::{run_fuzz_on, FuzzConfig, Target};
use islaris_models::{ARM, ARM_SAIL};
use islaris_sail::{check_model, parse_model};

const GOOD: &str = "ZeroExtend(result, 128) == usum then 0b0 else 0b1";
const BAD: &str = "ZeroExtend(result, 128) == usum then 0b1 else 0b0";

#[test]
fn planted_carry_bug_is_caught_within_budget() {
    let patched_src = ARM_SAIL.replace(GOOD, BAD);
    assert_ne!(patched_src, ARM_SAIL, "patch site must exist in arm.sail");
    let model = parse_model(&patched_src).expect("patched model parses");
    let concrete = check_model(&model).expect("patched model checks");

    let targets = vec![Target {
        arch: ARM,
        concrete: &concrete,
        classes: ARM_CLASSES,
        corpus: islaris_cases::corpus::arm(),
    }];
    let cfg = FuzzConfig {
        seed: 1,
        budget: 40,
        jobs: 1,
    };
    let report = run_fuzz_on(&targets, &cfg);

    assert!(
        report.metrics.divergences > 0,
        "planted carry bug not found within budget {}:\n{}",
        cfg.budget,
        report.render()
    );
    assert_eq!(report.metrics.divergences, report.divergences.len() as u64);

    // The counterexample points at the planted bug, and its report has the
    // stable shape CI greps for.
    let d = &report.divergences[0];
    assert_eq!(d.arch, "armv8-a");
    assert!(
        d.detail.contains("PSTATE.C"),
        "first mismatch should be the carry flag: {}",
        d.detail
    );
    let rendered = d.render();
    assert!(rendered.starts_with("divergence[armv8-a] opcode=0x"));
    assert!(rendered.contains(" seed=1\n"));
    assert!(rendered.contains("  first mismatch: write-reg #"));
    assert!(rendered.contains("  reproduce: fig12 --difftest --seed 1 --budget <budget>\n"));

    // The catch replays: same seed and budget find the same divergences,
    // regardless of the job count.
    let again = run_fuzz_on(&targets, &FuzzConfig { jobs: 3, ..cfg });
    assert_eq!(report.render(), again.render());
    assert_eq!(report.divergences, again.divergences);
}

#[test]
fn unpatched_model_stays_divergence_free_under_same_budget() {
    let targets = vec![Target {
        arch: ARM,
        concrete: ARM.model(),
        classes: ARM_CLASSES,
        corpus: islaris_cases::corpus::arm(),
    }];
    let report = run_fuzz_on(
        &targets,
        &FuzzConfig {
            seed: 1,
            budget: 40,
            jobs: 1,
        },
    );
    assert_eq!(report.metrics.divergences, 0, "{}", report.render());
}
