//! Differential testing: concrete oracle and model-guided trace replay
//! fuzzer.
//!
//! Islaris' trustworthy core is the pair (mini-Sail model, symbolic
//! executor): certificates only mean something if the symbolic traces
//! mean what the model says. This crate cross-checks that pair against
//! an *independent* concrete execution path that shares none of the
//! symbolic machinery:
//!
//! ```text
//!   opcode ──▶ isla::trace_opcode ──▶ symbolic trace (all paths)
//!                                          │ per path:
//!                                          │  solver model of the
//!                                          │  path constraints
//!                                          ▼
//!   concretized initial state ──▶ sail::Interp::replay ──▶ journal
//!                                          │
//!                                          ▼
//!                 event-by-event comparison (reg writes, mem
//!                 reads/writes, final PC) ──▶ Divergence reports
//! ```
//!
//! The [`Oracle`] performs one such check; the fuzzer ([`run_fuzz`])
//! drives it with deterministically generated opcodes from the decoder
//! grammar and mutation of known-good encodings, tracking coverage as
//! (instruction class × path id) pairs. Everything replays from a
//! printed seed: no wall clock, no OS randomness, and output
//! byte-identical across `--jobs` values.
//!
//! The oracle is *outside* the certificate TCB — a divergence does not
//! invalidate any particular certificate, it flags semantic drift
//! between model and executor that the proof pipeline builds on.

pub mod fuzz;
pub mod oracle;
pub mod report;

pub use fuzz::{
    canonical_config, run_fuzz, run_fuzz_on, shipped_targets, FuzzConfig, FuzzReport, Target,
};
pub use oracle::{Oracle, OracleOutcome, REPLAY_STEP_BUDGET};
pub use report::Divergence;
