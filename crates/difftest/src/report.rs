//! Human-readable counterexample reports.
//!
//! The report format is stable (CI asserts on it): one header line with
//! the replay coordinates, one line per concretized initial register, one
//! `first mismatch:` line, and one `reproduce:` line carrying the fuzzer
//! seed.

use islaris_bv::Bv;

/// One divergence between the symbolic trace and the concrete replay.
///
/// The report is already minimized: the initial-register list contains
/// only the registers the instruction actually read on the diverging path
/// (the trace's first-read set), and the mismatch names the first event
/// at which the two executions disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Architecture name (`armv8-a`, `rv64i`).
    pub arch: &'static str,
    /// The opcode under test.
    pub opcode: u32,
    /// Decoder class of the opcode.
    pub class: &'static str,
    /// Path id (depth-first index into the trace's `Cases` tree).
    pub path: usize,
    /// Fuzzer seed that produced the opcode (replay coordinate).
    pub seed: u64,
    /// Concretized initial registers of the diverging path, in trace
    /// first-read order.
    pub inits: Vec<(String, Bv)>,
    /// The first disagreement, e.g.
    /// `write-reg #2: symbolic PSTATE.C=0b1 concrete PSTATE.C=0b0`.
    pub detail: String,
}

impl Divergence {
    /// Renders the stable multi-line report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = format!(
            "divergence[{}] opcode={:#010x} class={} path={} seed={}\n",
            self.arch, self.opcode, self.class, self.path, self.seed
        );
        for (name, value) in &self.inits {
            s.push_str(&format!("  initial {name} = {value}\n"));
        }
        s.push_str(&format!("  first mismatch: {}\n", self.detail));
        s.push_str(&format!(
            "  reproduce: fig12 --difftest --seed {} --budget <budget>\n",
            self.seed
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_stable() {
        let d = Divergence {
            arch: "armv8-a",
            opcode: 0xEB03_005F,
            class: "addsub_shiftreg",
            path: 1,
            seed: 7,
            inits: vec![("R2".into(), Bv::new(64, 5))],
            detail: "write-reg #3: symbolic PSTATE.C=0b1 concrete PSTATE.C=0b0".into(),
        };
        let r = d.render();
        assert_eq!(
            r,
            "divergence[armv8-a] opcode=0xeb03005f class=addsub_shiftreg path=1 seed=7\n  \
             initial R2 = #x0000000000000005\n  \
             first mismatch: write-reg #3: symbolic PSTATE.C=0b1 concrete PSTATE.C=0b0\n  \
             reproduce: fig12 --difftest --seed 7 --budget <budget>\n"
        );
    }
}
