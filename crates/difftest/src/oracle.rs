//! The differential oracle: symbolic trace vs concrete interpreter.
//!
//! For one opcode, the oracle walks every root-to-leaf path of the
//! symbolic trace, asks the solver for a checked model of the path
//! constraints (pinning `undefined_bits` variables to zero, matching the
//! concrete interpreter's choice), concretizes the path's initial
//! register and memory valuation from that model, replays the opcode
//! through [`Interp::replay`] from exactly that initial state, and
//! compares event-by-event: register writes in order, memory reads and
//! writes in order, and the final PC. Any disagreement becomes a
//! [`Divergence`] report.
//!
//! The oracle sits *outside* the certificate TCB — it is a test of the
//! semantic core (model, symbolic executor, solver, interpreter), not a
//! proof about it.

use std::collections::VecDeque;

use islaris_bv::Bv;
use islaris_isla::{analyze_path, enumerate_paths, PathView, TraceResult};
use islaris_itl::{Event, Reg};
use islaris_models::Arch;
use islaris_sail::{CVal, CheckedModel, Interp, InterpError, SailMem, SailState};
use islaris_smt::{
    check_sat, eval_bits, EvalError, Expr, Model, SmtResult, SolverConfig, Sort, Value, Var,
};

use crate::report::Divergence;

/// Step bound for one concrete replay: far above any shipped
/// instruction's cost (hundreds of steps), small enough that a buggy
/// model's runaway loop terminates promptly and deterministically.
pub const REPLAY_STEP_BUDGET: u64 = 200_000;

/// Per-opcode oracle counters, merged into
/// [`islaris_obs::DiffMetrics`] by the fuzzer.
#[derive(Debug, Default)]
pub struct OracleOutcome {
    /// Root-to-leaf paths enumerated.
    pub paths: u64,
    /// Paths whose constraints were unsatisfiable (vacuous: includes the
    /// driver's pruned dead branches).
    pub vacuous: u64,
    /// Paths the solver could not decide.
    pub unknown: u64,
    /// Satisfying models sampled.
    pub models_sampled: u64,
    /// Concrete replays performed.
    pub replays: u64,
    /// Path ids that were replayed (for class × path coverage).
    pub path_ids: Vec<usize>,
    /// Divergence reports, in path order.
    pub divergences: Vec<Divergence>,
}

/// A differential oracle for one architecture.
///
/// The *symbolic* side always runs the shipped model (through
/// `isla::trace_opcode`, performed by the caller); the *concrete* side
/// runs whatever [`CheckedModel`] this oracle was built over — passing a
/// deliberately patched model is how the planted-bug test demonstrates
/// the oracle catches real semantic drift.
pub struct Oracle<'m> {
    arch: Arch,
    cm: &'m CheckedModel,
    interp: Interp<'m>,
    solver: SolverConfig,
}

impl<'m> Oracle<'m> {
    /// Builds an oracle replaying concretely against `concrete`.
    ///
    /// # Errors
    ///
    /// Fails if the model's constant initialisers fail to evaluate.
    pub fn new(arch: Arch, concrete: &'m CheckedModel) -> Result<Self, InterpError> {
        Ok(Oracle {
            arch,
            cm: concrete,
            interp: Interp::new(concrete)?,
            solver: SolverConfig::new(),
        })
    }

    /// An oracle over the architecture's shipped model.
    ///
    /// # Panics
    ///
    /// Panics if the bundled model fails to initialise (cannot happen for
    /// shipped models).
    #[must_use]
    pub fn shipped(arch: Arch) -> Oracle<'static> {
        Oracle::new(arch, arch.model()).expect("shipped model initialises")
    }

    /// Checks every path of `result` (the symbolic trace of `opcode`)
    /// against a concrete replay. `class` and `seed` are replay
    /// coordinates recorded in divergence reports.
    #[must_use]
    pub fn check_opcode(
        &self,
        opcode: u32,
        result: &TraceResult,
        class: &'static str,
        seed: u64,
    ) -> OracleOutcome {
        let mut out = OracleOutcome::default();
        for (pid, events) in enumerate_paths(&result.trace).iter().enumerate() {
            out.paths += 1;
            let view = analyze_path(events, &result.params);
            let mut constraints = view.constraints.clone();
            // Pin undefined_bits variables to the interpreter's concrete
            // choice (zero) so both sides agree by construction.
            for v in &view.undefined {
                match view.sorts.get(v) {
                    Some(Sort::BitVec(w)) => {
                        constraints.push(Expr::eq(Expr::var(*v), Expr::bv(*w, 0)));
                    }
                    Some(Sort::Bool) => {
                        constraints.push(Expr::eq(Expr::var(*v), Expr::bool(false)));
                    }
                    None => {}
                }
            }
            let sorts = view.sorts.clone();
            let model = match check_sat(&constraints, &|v| sorts.get(&v).copied(), &self.solver) {
                SmtResult::Unsat => {
                    out.vacuous += 1;
                    continue;
                }
                SmtResult::Unknown(_) => {
                    out.unknown += 1;
                    continue;
                }
                SmtResult::Sat(m) => m,
            };
            out.models_sampled += 1;
            out.replays += 1;
            out.path_ids.push(pid);
            if let Some((inits, detail)) = self.replay_path(opcode, events, &view, &model) {
                out.divergences.push(Divergence {
                    arch: self.arch.name,
                    opcode,
                    class,
                    path: pid,
                    seed,
                    inits,
                    detail,
                });
            }
        }
        out
    }

    /// Replays one path concretely; `Some((inits, detail))` on the first
    /// disagreement, `None` on full agreement.
    fn replay_path(
        &self,
        opcode: u32,
        events: &[Event],
        view: &PathView,
        model: &Model,
    ) -> Option<(Vec<(String, Bv)>, String)> {
        let sorts = &view.sorts;
        let env = |v: Var| -> Option<Value> { sorts.get(&v).map(|s| model.get_or_default(v, *s)) };
        let ev = |e: &Expr| -> Result<Bv, EvalError> { eval_bits(e, &env) };
        let mut inits: Vec<(String, Bv)> = Vec::new();
        let diverge = |inits: &[(String, Bv)], detail: String| Some((inits.to_vec(), detail));

        // Concretized initial state.
        let mut state = SailState::zeroed(self.cm);
        for (reg, e) in &view.reg_inits {
            let value = match ev(e) {
                Ok(v) => v,
                Err(e) => return diverge(&inits, format!("oracle evaluation error: {e}")),
            };
            inits.push((reg.to_string(), value));
            if let Err(msg) = set_reg(&self.arch, &mut state, reg, value) {
                return diverge(&inits, msg);
            }
        }

        // Expected event streams under the model.
        let mut expected_reads: VecDeque<(u64, u32, Bv)> = VecDeque::new();
        for (addr, bytes, value) in &view.mem_reads {
            match (ev(addr), ev(value)) {
                (Ok(a), Ok(v)) => expected_reads.push_back((a.to_u64(), *bytes, v)),
                (Err(e), _) | (_, Err(e)) => {
                    return diverge(&inits, format!("oracle evaluation error: {e}"))
                }
            }
        }
        let mut expect_wreg: Vec<(String, Bv)> = Vec::new();
        let mut expect_wmem: Vec<(u64, u32, Bv)> = Vec::new();
        for event in events {
            match event {
                Event::WriteReg(r, e) => match ev(e) {
                    Ok(v) => expect_wreg.push((r.to_string(), v)),
                    Err(e) => return diverge(&inits, format!("oracle evaluation error: {e}")),
                },
                Event::WriteMem { addr, value, bytes } => match (ev(addr), ev(value)) {
                    (Ok(a), Ok(v)) => expect_wmem.push((a.to_u64(), *bytes, v)),
                    (Err(e), _) | (_, Err(e)) => {
                        return diverge(&inits, format!("oracle evaluation error: {e}"))
                    }
                },
                _ => {}
            }
        }

        // Concrete replay.
        let mut mem = ReplayMem {
            expected: expected_reads,
            writes: Vec::new(),
            mismatch: None,
        };
        let replay = match self.interp.replay(
            self.arch.entry,
            &[CVal::Bits(Bv::new(32, u128::from(opcode)))],
            &mut state,
            &mut mem,
            REPLAY_STEP_BUDGET,
        ) {
            Ok(r) => r,
            Err(e) => return diverge(&inits, format!("concrete interpreter error: {e}")),
        };

        // Register writes, event by event.
        let concrete_wreg: Vec<(String, Bv)> = replay
            .writes
            .iter()
            .map(|w| {
                let name = match w.index {
                    Some(i) => self
                        .arch
                        .array_reg_name(&w.name, i)
                        .unwrap_or_else(|| format!("{}{}", w.name, i)),
                    None => w.name.clone(),
                };
                (name, w.value)
            })
            .collect();
        for i in 0..expect_wreg.len().max(concrete_wreg.len()) {
            match (expect_wreg.get(i), concrete_wreg.get(i)) {
                (Some((sn, sv)), Some((cn, cv))) => {
                    if sn != cn || sv != cv {
                        return diverge(
                            &inits,
                            format!("write-reg #{i}: symbolic {sn}={sv} concrete {cn}={cv}"),
                        );
                    }
                }
                (Some((sn, sv)), None) => {
                    return diverge(
                        &inits,
                        format!("write-reg #{i}: symbolic {sn}={sv} but concrete run stopped"),
                    );
                }
                (None, Some((cn, cv))) => {
                    return diverge(
                        &inits,
                        format!("write-reg #{i}: concrete {cn}={cv} beyond symbolic trace"),
                    );
                }
                (None, None) => unreachable!(),
            }
        }

        // Memory reads: order, address, and size all consumed exactly.
        if let Some(m) = mem.mismatch {
            return diverge(&inits, m);
        }
        if !mem.expected.is_empty() {
            return diverge(
                &inits,
                format!(
                    "read-mem: {} symbolic read(s) never performed concretely",
                    mem.expected.len()
                ),
            );
        }

        // Memory writes, event by event.
        for i in 0..expect_wmem.len().max(mem.writes.len()) {
            match (expect_wmem.get(i), mem.writes.get(i)) {
                (Some(s), Some(c)) => {
                    if s != c {
                        return diverge(
                            &inits,
                            format!(
                                "write-mem #{i}: symbolic ({:#x},{},{}) concrete ({:#x},{},{})",
                                s.0, s.1, s.2, c.0, c.1, c.2
                            ),
                        );
                    }
                }
                (Some(s), None) => {
                    return diverge(
                        &inits,
                        format!(
                            "write-mem #{i}: symbolic ({:#x},{},{}) but concrete run stopped",
                            s.0, s.1, s.2
                        ),
                    );
                }
                (None, Some(c)) => {
                    return diverge(
                        &inits,
                        format!(
                            "write-mem #{i}: concrete ({:#x},{},{}) beyond symbolic trace",
                            c.0, c.1, c.2
                        ),
                    );
                }
                (None, None) => unreachable!(),
            }
        }

        // Final PC (already covered by the write comparison whenever the
        // trace writes the PC, but checked directly so a path that never
        // updates the PC still cross-checks the architectural state).
        if let Some((_, expected_pc)) = expect_wreg.iter().rev().find(|(n, _)| n == self.arch.pc) {
            match state.regs.get(self.arch.pc) {
                Some(pc) if pc == expected_pc => {}
                got => {
                    return diverge(
                        &inits,
                        format!(
                            "final PC: symbolic {expected_pc} concrete {}",
                            got.map_or("<missing>".to_owned(), ToString::to_string)
                        ),
                    );
                }
            }
        }
        None
    }
}

/// Installs an ITL-named register value into the interpreter state:
/// `NAME.FIELD` and plain names are flat `regs` keys; `R3`/`x7`-style
/// names resolve through the architecture's array naming.
fn set_reg(arch: &Arch, state: &mut SailState, reg: &Reg, value: Bv) -> Result<(), String> {
    let name = reg.to_string();
    if reg.field_name().is_none() {
        for (array, prefix) in arch.arrays {
            if let Some(rest) = name.strip_prefix(prefix) {
                if !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()) {
                    let idx: usize = rest
                        .parse()
                        .map_err(|_| format!("bad array index in register {name}"))?;
                    let slot = state
                        .arrays
                        .get_mut(*array)
                        .and_then(|a| a.get_mut(idx))
                        .ok_or_else(|| format!("register {name} outside array {array}"))?;
                    *slot = value;
                    return Ok(());
                }
            }
        }
    }
    state.regs.insert(name, value);
    Ok(())
}

/// Replay memory: serves the symbolic trace's reads in order and records
/// every access for the event-by-event comparison.
struct ReplayMem {
    expected: VecDeque<(u64, u32, Bv)>,
    writes: Vec<(u64, u32, Bv)>,
    mismatch: Option<String>,
}

impl SailMem for ReplayMem {
    fn read(&mut self, addr: u64, n: u32) -> Bv {
        match self.expected.pop_front() {
            Some((a, b, v)) if a == addr && b == n => v,
            Some((a, b, _)) => {
                if self.mismatch.is_none() {
                    self.mismatch = Some(format!(
                        "read-mem: symbolic ({a:#x},{b}) concrete ({addr:#x},{n})"
                    ));
                }
                Bv::zero(8 * n)
            }
            None => {
                if self.mismatch.is_none() {
                    self.mismatch = Some(format!(
                        "read-mem: concrete read ({addr:#x},{n}) beyond symbolic trace"
                    ));
                }
                Bv::zero(8 * n)
            }
        }
    }

    fn write(&mut self, addr: u64, n: u32, value: Bv) {
        self.writes.push((addr, n, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use islaris_isla::{trace_opcode, IslaConfig, Opcode};
    use islaris_models::{ARM, RISCV};

    fn arm_cfg() -> IslaConfig {
        IslaConfig::new(ARM)
            .assume_reg("PSTATE.EL", Bv::new(2, 0b10))
            .assume_reg("PSTATE.SP", Bv::new(1, 0b1))
    }

    #[test]
    fn add_sp_agrees() {
        let oracle = Oracle::shipped(ARM);
        let r = trace_opcode(&arm_cfg(), &Opcode::Concrete(0x9101_03FF)).expect("traces");
        let out = oracle.check_opcode(0x9101_03FF, &r, "addsub_imm", 0);
        assert!(out.divergences.is_empty(), "{:?}", out.divergences);
        assert_eq!(out.replays, 1);
        assert_eq!(out.path_ids, vec![0]);
    }

    #[test]
    fn branchy_flags_cover_both_paths() {
        // b.ne with unconstrained PSTATE flags: both sides of the branch
        // replay, each from a model satisfying its branch condition.
        let oracle = Oracle::shipped(ARM);
        let r = trace_opcode(&arm_cfg(), &Opcode::Concrete(0x5400_0041)).expect("traces");
        let out = oracle.check_opcode(0x5400_0041, &r, "bcond", 0);
        assert!(out.divergences.is_empty(), "{:?}", out.divergences);
        assert!(out.replays >= 2, "both branch arms replayed: {out:?}");
    }

    #[test]
    fn riscv_store_memory_events_agree() {
        // sb x1, 0(x2): unconstrained x1/x2 are concretized from the
        // model and the write-mem event is compared byte-for-byte.
        let oracle = Oracle::shipped(RISCV);
        let op = 0x0011_0023;
        let r = trace_opcode(&IslaConfig::new(RISCV), &Opcode::Concrete(op)).expect("traces");
        let out = oracle.check_opcode(op, &r, "store", 0);
        assert!(out.divergences.is_empty(), "{:?}", out.divergences);
        assert_eq!(out.replays, 1);
    }

    #[test]
    fn set_reg_resolves_arrays_fields_and_plain_names() {
        let cm = ARM.model();
        let mut st = SailState::zeroed(cm);
        set_reg(&ARM, &mut st, &Reg::new("R3"), Bv::new(64, 7)).expect("array");
        assert_eq!(st.arrays["X"][3], Bv::new(64, 7));
        set_reg(&ARM, &mut st, &Reg::field("PSTATE", "EL"), Bv::new(2, 1)).expect("field");
        assert_eq!(st.regs["PSTATE.EL"], Bv::new(2, 1));
        set_reg(&ARM, &mut st, &Reg::new("SP_EL2"), Bv::new(64, 64)).expect("plain");
        assert_eq!(st.regs["SP_EL2"], Bv::new(64, 64));
        assert!(set_reg(&ARM, &mut st, &Reg::new("R99"), Bv::new(64, 0)).is_err());
    }
}
