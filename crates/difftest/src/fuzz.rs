//! The model-guided trace replay fuzzer.
//!
//! Generation is *structure-aware*: opcodes come from the decoders'
//! instruction-class grammar ([`islaris_asm::grammar`]) — class seeds
//! first, then a deterministic rotation of (a) grammar samples filling a
//! class's free bits, (b) single-bit flips of class seeds, and (c) byte
//! flips of known-good case-study encodings. Every generated opcode is
//! traced symbolically and all of its paths are checked by the
//! [`Oracle`](crate::Oracle).
//!
//! Everything is deterministic from the printed seed: randomness is
//! testkit's SplitMix64 (no wall clock, no OS entropy), the opcode list
//! is generated up front independent of the job count, and parallel
//! results are merged in chunk index order — so reports are byte-identical
//! across reruns and `--jobs` values.

use std::collections::{BTreeMap, BTreeSet};

use islaris_asm::{classify, EncodingClass, ARM_CLASSES, RISCV_CLASSES};
use islaris_bv::Bv;
use islaris_isla::{trace_opcode, IslaConfig, Opcode};
use islaris_models::{Arch, ARM, RISCV};
use islaris_obs::DiffMetrics;
use islaris_sail::CheckedModel;
use islaris_testkit::Rng;

use crate::oracle::Oracle;
use crate::report::Divergence;

/// One architecture under differential test.
pub struct Target<'m> {
    /// The architecture (drives the symbolic side and name mapping).
    pub arch: Arch,
    /// The model the *concrete* side replays — the shipped model in
    /// normal runs, a deliberately patched one in planted-bug tests.
    pub concrete: &'m CheckedModel,
    /// The decoder grammar used for generation and coverage keys.
    pub classes: &'static [EncodingClass],
    /// Known-good encodings used as mutation bases.
    pub corpus: Vec<u32>,
}

/// The two shipped targets: Arm and RISC-V, each replaying against its
/// own shipped model (the zero-divergence configuration).
#[must_use]
pub fn shipped_targets() -> Vec<Target<'static>> {
    vec![
        Target {
            arch: ARM,
            concrete: ARM.model(),
            classes: ARM_CLASSES,
            corpus: islaris_cases::corpus::arm(),
        },
        Target {
            arch: RISCV,
            concrete: RISCV.model(),
            classes: RISCV_CLASSES,
            corpus: islaris_cases::corpus::riscv(),
        },
    ]
}

/// Fuzzer parameters. `jobs` affects wall-clock only, never output.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// SplitMix64 seed; printed in every report for replay.
    pub seed: u64,
    /// Total opcode budget, split evenly across targets.
    pub budget: u64,
    /// Worker threads (clamped to at least 1).
    pub jobs: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 1,
            budget: 500,
            jobs: 1,
        }
    }
}

/// The fuzzer's deterministic summary: counters, class × path coverage,
/// and every divergence found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzReport {
    /// The seed the run used (replay coordinate).
    pub seed: u64,
    /// The opcode budget the run used.
    pub budget: u64,
    /// Pipeline counters, merged across targets and jobs.
    pub metrics: DiffMetrics,
    /// Coverage: `arch/class` → set of replayed path ids.
    pub coverage: BTreeMap<String, BTreeSet<usize>>,
    /// All divergences, in deterministic generation order.
    pub divergences: Vec<Divergence>,
}

impl FuzzReport {
    /// Renders the stable summary table (byte-identical across reruns
    /// and `--jobs` values; CI asserts on it).
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = format!("difftest seed={} budget={}\n", self.seed, self.budget);
        s.push_str(&self.metrics.render());
        s.push('\n');
        let pairs: usize = self.coverage.values().map(BTreeSet::len).sum();
        s.push_str(&format!(
            "coverage classes={} pairs={}\n",
            self.coverage.len(),
            pairs
        ));
        for (key, paths) in &self.coverage {
            let ids: Vec<String> = paths.iter().map(ToString::to_string).collect();
            s.push_str(&format!("  {key} = {}\n", ids.join(",")));
        }
        s
    }
}

/// The architecture's canonical symbolic configuration (the same one the
/// case studies trace under).
#[must_use]
pub fn canonical_config(arch: Arch) -> IslaConfig {
    let cfg = IslaConfig::new(arch);
    if arch.name == ARM.name {
        cfg.assume_reg("PSTATE.EL", Bv::new(2, 0b10))
            .assume_reg("PSTATE.SP", Bv::new(1, 0b1))
    } else {
        cfg
    }
}

/// Runs the fuzzer over the shipped targets.
#[must_use]
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    run_fuzz_on(&shipped_targets(), cfg)
}

/// Runs the fuzzer over explicit targets (the planted-bug test passes an
/// Arm target whose concrete model has been patched).
///
/// # Panics
///
/// Panics only if a worker thread panics.
#[must_use]
pub fn run_fuzz_on(targets: &[Target<'_>], cfg: &FuzzConfig) -> FuzzReport {
    // Phase 1: generate the full opcode list up front, deterministically
    // and independently of the job count.
    let mut items: Vec<(usize, u32, &'static str)> = Vec::new();
    let per_target = if targets.is_empty() {
        0
    } else {
        cfg.budget / targets.len() as u64
    };
    let remainder = cfg.budget - per_target * targets.len() as u64;
    for (ti, target) in targets.iter().enumerate() {
        let quota = per_target + if ti == 0 { remainder } else { 0 };
        let mut rng = Rng::new(cfg.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(ti as u64 + 1));
        for i in 0..quota {
            let op = generate(target, &mut rng, i);
            items.push((ti, op, classify(target.classes, op)));
        }
    }

    // Phase 2: check every item; chunked across jobs, merged in chunk
    // index order so the result is independent of scheduling.
    let jobs = cfg.jobs.max(1).min(items.len().max(1));
    let chunk = items.len().div_ceil(jobs);
    let outcomes: Vec<Vec<TargetOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk.max(1))
            .map(|slice| scope.spawn(|| run_chunk(targets, slice, cfg.seed)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });

    // Phase 3: merge.
    let mut report = FuzzReport {
        seed: cfg.seed,
        budget: cfg.budget,
        metrics: DiffMetrics::default(),
        coverage: BTreeMap::new(),
        divergences: Vec::new(),
    };
    for outcome in outcomes.into_iter().flatten() {
        report.metrics.absorb(&outcome.metrics);
        for (key, ids) in outcome.coverage {
            report.coverage.entry(key).or_default().extend(ids);
        }
        report.divergences.extend(outcome.divergences);
    }
    report
}

struct TargetOutcome {
    metrics: DiffMetrics,
    coverage: BTreeMap<String, BTreeSet<usize>>,
    divergences: Vec<Divergence>,
}

fn run_chunk(
    targets: &[Target<'_>],
    items: &[(usize, u32, &'static str)],
    seed: u64,
) -> Vec<TargetOutcome> {
    // Per-thread oracles and configs (Interp and IslaConfig are not Sync).
    let oracles: Vec<Oracle<'_>> = targets
        .iter()
        .map(|t| Oracle::new(t.arch, t.concrete).expect("target model initialises"))
        .collect();
    let configs: Vec<IslaConfig> = targets.iter().map(|t| canonical_config(t.arch)).collect();
    let mut out = Vec::new();
    for &(ti, opcode, class) in items {
        let mut metrics = DiffMetrics {
            opcodes: 1,
            ..Default::default()
        };
        let mut coverage = BTreeMap::new();
        let mut divergences = Vec::new();
        match trace_opcode(&configs[ti], &Opcode::Concrete(opcode)) {
            Err(_) => metrics.trace_errors = 1,
            Ok(result) => {
                let o = oracles[ti].check_opcode(opcode, &result, class, seed);
                metrics.paths = o.paths;
                metrics.vacuous = o.vacuous;
                metrics.unknown = o.unknown;
                metrics.models_sampled = o.models_sampled;
                metrics.replays = o.replays;
                metrics.divergences = o.divergences.len() as u64;
                if !o.path_ids.is_empty() {
                    let key = format!("{}/{}", targets[ti].arch.name, class);
                    coverage.insert(key, o.path_ids.into_iter().collect());
                }
                divergences = o.divergences;
            }
        }
        out.push(TargetOutcome {
            metrics,
            coverage,
            divergences,
        });
    }
    out
}

/// Deterministic opcode generation: class seeds first (guaranteed
/// coverage floor), then rotate grammar samples / seed bit-flips /
/// corpus byte-flips.
fn generate(target: &Target<'_>, rng: &mut Rng, i: u64) -> u32 {
    let classes = target.classes;
    let n = classes.len() as u64;
    if i < n {
        return classes[usize::try_from(i).expect("small")].seed;
    }
    match i % 3 {
        0 => {
            let c = classes[rng.index(classes.len())];
            c.sample(rng.next_u32())
        }
        1 => {
            let c = classes[rng.index(classes.len())];
            c.seed ^ (1 << rng.range_u32(0, 31))
        }
        _ => {
            if target.corpus.is_empty() {
                let c = classes[rng.index(classes.len())];
                c.sample(rng.next_u32())
            } else {
                let base = target.corpus[rng.index(target.corpus.len())];
                base ^ (u32::from(rng.next_u8()) << (8 * rng.range_u32(0, 3)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FuzzConfig {
        FuzzConfig {
            seed: 1,
            budget: 8,
            jobs: 1,
        }
    }

    #[test]
    fn generation_is_deterministic_and_job_independent() {
        let targets = shipped_targets();
        let a = run_fuzz_on(&targets, &tiny());
        let b = run_fuzz_on(&targets, &FuzzConfig { jobs: 3, ..tiny() });
        assert_eq!(a.render(), b.render());
        assert_eq!(a.divergences, b.divergences);
    }

    #[test]
    fn class_seeds_come_first() {
        let targets = shipped_targets();
        let t = &targets[0];
        let mut rng = Rng::new(1);
        for (i, c) in t.classes.iter().enumerate() {
            assert_eq!(generate(t, &mut rng, i as u64), c.seed);
        }
    }

    #[test]
    fn budget_splits_across_targets_with_remainder_to_first() {
        let targets = shipped_targets();
        let r = run_fuzz_on(
            &targets,
            &FuzzConfig {
                seed: 3,
                budget: 5,
                jobs: 2,
            },
        );
        assert_eq!(r.metrics.opcodes, 5);
        // Both architectures get opcodes: 3 to Arm, 2 to RISC-V.
        assert!(r.coverage.keys().any(|k| k.starts_with("armv8-a/")));
        assert!(r.coverage.keys().any(|k| k.starts_with("rv64i/")));
    }
}
