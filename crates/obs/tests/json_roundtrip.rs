//! Property tests for the JSON layer the daemon's wire protocol rides on.
//!
//! Two contracts:
//!
//! * **Round-trip**: `parse_json(&t.render()) == Ok(t)` for every tree
//!   whose numbers respect the module's precision contract (we generate
//!   integers below 2^53 and exact binary fractions).
//! * **Agreement**: [`validate_json`] accepts exactly the inputs
//!   [`parse_json`] accepts — the validator is a cheap pre-check, never
//!   a different grammar.

use islaris_obs::json::{obj, parse_json, Json};
use islaris_obs::validate_json;
use islaris_testkit::{forall, Rng, TestResult};

/// A random string exercising every escape class: control bytes,
/// quotes, backslashes, multibyte unicode, plain ASCII.
fn gen_string(rng: &mut Rng) -> String {
    let menu = [
        "a",
        "Z",
        "0",
        " ",
        "\"",
        "\\",
        "/",
        "\n",
        "\t",
        "\r",
        "\u{8}",
        "\u{c}",
        "\u{1}",
        "\u{1f}",
        "é",
        "λ",
        "中",
        "🦀",
        "\u{7f}",
        "x10",
        "(init R0)",
    ];
    let len = rng.index(12);
    (0..len).map(|_| *rng.choose(&menu)).collect()
}

/// A random number inside the exact-round-trip envelope: integers up to
/// 2^53 (positive and negative) and exact binary fractions.
fn gen_num(rng: &mut Rng) -> f64 {
    let magnitude = match rng.index(4) {
        0 => f64::from(rng.next_u8()),
        1 => (rng.next_u64() % (1 << 53)) as f64,
        2 => f64::from(rng.next_u32()) + 0.5,
        _ => f64::from(rng.next_u32()) / 4.0,
    };
    if rng.next_bool() {
        -magnitude
    } else {
        magnitude
    }
}

fn gen_tree(rng: &mut Rng, depth: usize) -> Json {
    let leaf_only = depth == 0;
    match rng.index(if leaf_only { 4 } else { 6 }) {
        0 => Json::Null,
        1 => Json::Bool(rng.next_bool()),
        2 => Json::Num(gen_num(rng)),
        3 => Json::Str(gen_string(rng)),
        4 => {
            let n = rng.index(4);
            Json::Arr((0..n).map(|_| gen_tree(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.index(4);
            Json::Obj(
                (0..n)
                    .map(|i| {
                        (
                            format!("k{i}_{}", gen_string(rng)),
                            gen_tree(rng, depth - 1),
                        )
                    })
                    .collect(),
            )
        }
    }
}

#[test]
fn random_trees_survive_render_then_parse() {
    forall(
        "json-render-parse-roundtrip",
        400,
        |rng| gen_tree(rng, 3),
        |tree| {
            let text = tree.render();
            match parse_json(&text) {
                Ok(back) if &back == tree => TestResult::Pass,
                Ok(back) => TestResult::Fail(format!("reparsed differently: {back:?} from {text}")),
                Err((off, msg)) => TestResult::Fail(format!(
                    "render produced invalid JSON at {off}: {msg} in {text}"
                )),
            }
        },
    );
}

#[test]
fn validate_accepts_every_rendered_tree() {
    forall(
        "json-validate-accepts-rendered",
        400,
        |rng| gen_tree(rng, 3),
        |tree| {
            let text = tree.render();
            match validate_json(&text) {
                Ok(()) => TestResult::Pass,
                Err((off, msg)) => {
                    TestResult::Fail(format!("validator rejected rendered tree at {off}: {msg}"))
                }
            }
        },
    );
}

/// Random near-JSON byte soup: fragments of valid syntax glued together,
/// so both accept and reject outcomes occur with useful frequency.
fn gen_soup(rng: &mut Rng) -> String {
    let menu = [
        "{",
        "}",
        "[",
        "]",
        ",",
        ":",
        "\"k\"",
        "\"\"",
        "null",
        "true",
        "false",
        "0",
        "-1",
        "3.5",
        "1e3",
        " ",
        "\t",
        "\u{1}",
        "\\",
        "\"unterminated",
        "00",
        "+1",
        "nul",
        "\"\\q\"",
        "\"\\u12\"",
        "\"\\u0041\"",
    ];
    let len = rng.index(8) + 1;
    (0..len).map(|_| *rng.choose(&menu)).collect()
}

#[test]
fn validate_agrees_with_parse_on_arbitrary_input() {
    forall("json-validate-parse-agree", 1500, gen_soup, |text| {
        let v = validate_json(text);
        let p = parse_json(text);
        match (v.is_ok(), p.is_ok()) {
            (true, true) | (false, false) => TestResult::Pass,
            (true, false) => TestResult::Fail(format!(
                "validator accepts, parser rejects ({:?}): {text:?}",
                p.err()
            )),
            (false, true) => TestResult::Fail(format!(
                "parser accepts, validator rejects ({:?}): {text:?}",
                v.err()
            )),
        }
    });
}

#[test]
fn obj_builder_round_trips() {
    let t = obj(vec![
        ("kind", Json::Str("case".into())),
        ("n", Json::Num(42.0)),
        ("nested", obj(vec![("ok", Json::Bool(true))])),
    ]);
    assert_eq!(parse_json(&t.render()), Ok(t));
}
