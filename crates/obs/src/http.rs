//! Minimal HTTP/1.1 framing for the verification service — the wire
//! sibling of the in-tree JSON layer ([`crate::json`]): std-only,
//! recursive-descent-simple, and strict about what it accepts.
//!
//! This is *framing only*: request/response lines, headers, and
//! `Content-Length` bodies. No chunked encoding, no continuation lines,
//! no transfer negotiation — the verification protocol (DESIGN §12)
//! needs none of them, and every rejected shape is a typed
//! [`HttpError`] the server maps to a distinct error response. Both
//! sides of the conversation live here so the server, the replay
//! client, and the fault-injection tests share one parser.

use std::io::{BufRead, Write};

/// Maximum accepted size of a request/status line plus headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted `Content-Length`.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A typed framing failure. Every variant maps to a distinct error
/// response in the server (DESIGN §12), so fault-injection tests can
/// assert that malformed inputs are told apart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed the connection before sending a single byte —
    /// the clean end of a keep-alive session, not a fault.
    Closed,
    /// The request/status line or a header violated the grammar.
    Malformed(String),
    /// The head (line + headers) exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// `Content-Length` exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
    /// The peer promised `expected` body bytes but the stream ended
    /// after `got`.
    TruncatedBody {
        /// Bytes promised by `Content-Length`.
        expected: usize,
        /// Bytes actually received.
        got: usize,
    },
    /// An I/O error outside the grammar.
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Malformed(m) => write!(f, "malformed HTTP: {m}"),
            HttpError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            HttpError::BodyTooLarge(n) => {
                write!(f, "declared body of {n} bytes exceeds {MAX_BODY_BYTES}")
            }
            HttpError::TruncatedBody { expected, got } => {
                write!(
                    f,
                    "body truncated: Content-Length {expected}, received {got}"
                )
            }
            HttpError::Io(m) => write!(f, "i/o: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// A parsed request: method, path, headers (in arrival order), body.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Request {
    /// The method token (`GET`, `POST`, …), uppercased by the sender.
    pub method: String,
    /// The request target, verbatim.
    pub path: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// True iff the peer asked to close the connection after this
    /// exchange.
    #[must_use]
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A parsed response: status code, headers, body.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// First header with the given (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    #[must_use]
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// The standard reason phrase for the status codes the service emits.
#[must_use]
pub fn status_reason(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Reads one line terminated by `\r\n` (a bare `\n` is tolerated; the
/// terminator is stripped), charging its length against `budget`.
fn read_line(
    r: &mut impl BufRead,
    budget: &mut usize,
    first: bool,
) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if first && line.is_empty() {
                    return Ok(None); // clean EOF before any byte
                }
                return Err(HttpError::Malformed("unexpected EOF in head".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let s = String::from_utf8(line)
                        .map_err(|_| HttpError::Malformed("non-UTF-8 head".into()))?;
                    return Ok(Some(s));
                }
                line.push(byte[0]);
                *budget = budget.checked_sub(1).ok_or(HttpError::HeadTooLarge)?;
            }
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
    }
}

/// Parses headers plus an optional `Content-Length` body (shared between
/// requests and responses).
fn read_head_and_body(
    r: &mut impl BufRead,
    budget: &mut usize,
) -> Result<(Vec<(String, String)>, Vec<u8>), HttpError> {
    let mut headers = Vec::new();
    loop {
        let line = read_line(r, budget, false)?.unwrap_or_default();
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without ':': `{line}`")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("bad header name `{name}`")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    let length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length `{v}`")))?,
    };
    if length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge(length));
    }
    let mut body = vec![0u8; length];
    let mut got = 0;
    while got < length {
        match r.read(&mut body[got..]) {
            Ok(0) => {
                return Err(HttpError::TruncatedBody {
                    expected: length,
                    got,
                })
            }
            Ok(n) => got += n,
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
    }
    Ok((headers, body))
}

/// Reads one HTTP/1.1 request. Returns [`HttpError::Closed`] on a clean
/// EOF before the first byte (the peer ended a keep-alive session).
///
/// # Errors
///
/// Any framing violation as a typed [`HttpError`].
pub fn read_request(r: &mut impl BufRead) -> Result<Request, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let line = read_line(r, &mut budget, true)?.ok_or(HttpError::Closed)?;
    let mut parts = line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => return Err(HttpError::Malformed(format!("bad request line `{line}`"))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!("bad version `{version}`")));
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Malformed(format!("bad method `{method}`")));
    }
    let (headers, body) = read_head_and_body(r, &mut budget)?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    })
}

/// Reads one HTTP/1.1 response.
///
/// # Errors
///
/// Any framing violation as a typed [`HttpError`].
pub fn read_response(r: &mut impl BufRead) -> Result<Response, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let line = read_line(r, &mut budget, true)?.ok_or(HttpError::Closed)?;
    let mut parts = line.splitn(3, ' ');
    let status = match (parts.next(), parts.next()) {
        (Some(v), Some(code)) if v.starts_with("HTTP/1.") => code
            .parse::<u16>()
            .map_err(|_| HttpError::Malformed(format!("bad status `{line}`")))?,
        _ => return Err(HttpError::Malformed(format!("bad status line `{line}`"))),
    };
    let (headers, body) = read_head_and_body(r, &mut budget)?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// Writes one request with a `Content-Length` body.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_request(
    w: &mut impl Write,
    method: &str,
    path: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        w,
        "{method} {path} HTTP/1.1\r\nContent-Length: {}\r\n",
        body.len()
    )?;
    for (k, v) in extra_headers {
        write!(w, "{k}: {v}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// Writes one response with a `Content-Length` body.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Length: {}\r\nContent-Type: application/json\r\n",
        status_reason(status),
        body.len()
    )?;
    for (k, v) in extra_headers {
        write!(w, "{k}: {v}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.to_vec()))
    }

    #[test]
    fn round_trips_a_request() {
        let mut buf = Vec::new();
        write_request(
            &mut buf,
            "POST",
            "/verify",
            &[("x-test", "1".into())],
            b"{\"case\":\"hvc\"}",
        )
        .unwrap();
        let req = parse(&buf).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/verify");
        assert_eq!(req.header("X-Test"), Some("1"));
        assert_eq!(req.body, b"{\"case\":\"hvc\"}");
        assert!(!req.wants_close());
    }

    #[test]
    fn round_trips_a_response() {
        let mut buf = Vec::new();
        write_response(&mut buf, 404, &[], b"{\"error\":\"unknown-case\"}").unwrap();
        let resp = read_response(&mut Cursor::new(buf)).unwrap();
        assert_eq!(resp.status, 404);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.body_str(), "{\"error\":\"unknown-case\"}");
    }

    #[test]
    fn typed_errors_for_each_fault() {
        assert_eq!(parse(b""), Err(HttpError::Closed));
        assert!(matches!(
            parse(b"BLARG\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/2\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        let oversized = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(
            parse(oversized.as_bytes()),
            Err(HttpError::BodyTooLarge(MAX_BODY_BYTES + 1))
        );
        assert_eq!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::TruncatedBody {
                expected: 10,
                got: 3
            })
        );
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(format!("pad: {}\r\n", "x".repeat(MAX_HEAD_BYTES)).as_bytes());
        raw.extend_from_slice(b"\r\n");
        assert_eq!(parse(&raw), Err(HttpError::HeadTooLarge));
    }
}
