//! A minimal JSON *parser* (the sibling of `validate_json`, which only
//! accepts/rejects): builds a [`Json`] tree for the telemetry files the
//! workspace itself writes — `BENCH.json` benchmark snapshots and the
//! counter-profile export. Std-only, recursive descent, no number
//! cleverness beyond `f64` (every number we write fits `f64` exactly:
//! counters are small and durations are nanosecond integers well under
//! 2^53).

/// A parsed JSON value. Object keys keep their textual order (the
/// telemetry writers emit deterministic key order, and keeping it makes
/// re-rendering stable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (see module docs for the precision contract).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in textual key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (exact for |n| < 2^53).
    #[must_use]
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders the tree back to JSON text. The inverse of [`parse_json`]:
    /// `parse_json(&t.render()) == Ok(t)` for every tree whose numbers
    /// are finite (the only values [`parse_json`] can produce — a
    /// hand-built non-finite number renders as `null`). Deterministic:
    /// object keys keep their stored order, no whitespace is emitted,
    /// and strings escape exactly `"`/`\`/control characters.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => render_number(*n, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// One JSON object field, for building trees by hand.
#[must_use]
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[allow(clippy::cast_possible_truncation)]
fn render_number(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null");
        return;
    }
    // Integers in the exact range render without a fraction; everything
    // else uses Rust's shortest-round-trip `Display`, which `parse_json`
    // reads back to the same `f64`.
    if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one complete JSON value (with only whitespace around it).
///
/// # Errors
///
/// Returns `(byte offset, message)` for the first violation — the same
/// error shape as [`crate::validate_json`].
pub fn parse_json(s: &str) -> Result<Json, (usize, String)> {
    let b = s.as_bytes();
    let mut i = 0;
    skip_ws(b, &mut i);
    let v = value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err((i, "trailing content after JSON value".into()));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<Json, (usize, String)> {
    match b.get(*i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i).map(Json::Str),
        Some(b't') => lit(b, i, "true", Json::Bool(true)),
        Some(b'f') => lit(b, i, "false", Json::Bool(false)),
        Some(b'n') => lit(b, i, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        Some(c) => Err((*i, format!("unexpected byte {:?}", *c as char))),
        None => Err((*i, "unexpected end of input".into())),
    }
}

fn object(b: &[u8], i: &mut usize) -> Result<Json, (usize, String)> {
    *i += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, i);
        let k = string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err((*i, "expected ':' in object".into()));
        }
        *i += 1;
        skip_ws(b, i);
        let v = value(b, i)?;
        fields.push((k, v));
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err((*i, "expected ',' or '}' in object".into())),
        }
    }
}

fn array(b: &[u8], i: &mut usize) -> Result<Json, (usize, String)> {
    *i += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(b, i);
        items.push(value(b, i)?);
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err((*i, "expected ',' or ']' in array".into())),
        }
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<String, (usize, String)> {
    if b.get(*i) != Some(&b'"') {
        return Err((*i, "expected string".into()));
    }
    *i += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(out);
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*i + 1..*i + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or((*i, "bad \\u escape".to_string()))?;
                        // Surrogates render as the replacement character:
                        // the in-tree writers never emit them.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *i += 4;
                    }
                    _ => return Err((*i, "bad escape".into())),
                }
                *i += 1;
            }
            0x00..=0x1f => return Err((*i, "raw control character in string".into())),
            _ => {
                // Copy the full UTF-8 sequence starting here.
                let start = *i;
                *i += 1;
                while *i < b.len() && (b[*i] & 0xc0) == 0x80 {
                    *i += 1;
                }
                match std::str::from_utf8(&b[start..*i]) {
                    Ok(s) => out.push_str(s),
                    Err(_) => return Err((start, "invalid UTF-8 in string".into())),
                }
            }
        }
    }
    Err((*i, "unterminated string".into()))
}

fn number(b: &[u8], i: &mut usize) -> Result<Json, (usize, String)> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let digits = |b: &[u8], i: &mut usize| {
        let s = *i;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
        *i > s
    };
    if !digits(b, i) {
        return Err((start, "malformed number".into()));
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if !digits(b, i) {
            return Err((start, "malformed number".into()));
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        if !digits(b, i) {
            return Err((start, "malformed number".into()));
        }
    }
    let text = std::str::from_utf8(&b[start..*i]).map_err(|_| (start, "bad number".to_string()))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| (start, "malformed number".into()))
}

fn lit(b: &[u8], i: &mut usize, text: &str, v: Json) -> Result<Json, (usize, String)> {
    if b[*i..].starts_with(text.as_bytes()) {
        *i += text.len();
        Ok(v)
    } else {
        Err((*i, format!("expected `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json("true").unwrap(), Json::Bool(true));
        assert_eq!(parse_json("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(parse_json("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        assert_eq!(parse_json("\"\\u00e9\"").unwrap(), Json::Str("é".into()));
    }

    #[test]
    fn parses_structures_and_accessors() {
        let v = parse_json(r#"{"samples":[{"name":"x","median_ns":120}],"n":3}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        let samples = v.get("samples").and_then(Json::as_array).unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].get("name").and_then(Json::as_str), Some("x"));
        assert_eq!(
            samples[0].get("median_ns").and_then(Json::as_f64),
            Some(120.0)
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parser_and_validator_agree() {
        for (input, ok) in [
            ("{}", true),
            ("[1, [2, [3]]]", true),
            ("{\"a\":1} x", false),
            ("[1,]", false),
            ("\"\\q\"", false),
            ("", false),
        ] {
            assert_eq!(parse_json(input).is_ok(), ok, "parse {input:?}");
            assert_eq!(
                crate::validate_json(input).is_ok(),
                ok,
                "validate {input:?}"
            );
        }
    }

    #[test]
    fn non_integer_as_u64_is_none() {
        assert_eq!(parse_json("1.5").unwrap().as_u64(), None);
        assert_eq!(parse_json("-1").unwrap().as_u64(), None);
        assert_eq!(parse_json("7").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn render_round_trips_hand_built_trees() {
        let t = obj(vec![
            ("s", Json::Str("a\"b\\c\n\u{1}é".into())),
            ("n", Json::Num(-2.5)),
            ("i", Json::Num(1234567.0)),
            (
                "a",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Obj(vec![])]),
            ),
        ]);
        let text = t.render();
        assert!(crate::validate_json(&text).is_ok(), "{text}");
        assert_eq!(parse_json(&text).unwrap(), t);
        // Rendering is deterministic and whitespace-free.
        assert_eq!(parse_json(&text).unwrap().render(), text);
    }

    #[test]
    fn render_escapes_control_characters() {
        let text = Json::Str("\u{0}\u{1f}\t".into()).render();
        assert_eq!(text, "\"\\u0000\\u001f\\t\"");
        assert_eq!(
            parse_json(&text).unwrap(),
            Json::Str("\u{0}\u{1f}\t".into())
        );
    }
}
