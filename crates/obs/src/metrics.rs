//! An in-tree, std-only metrics layer for the verification service:
//! monotonic [`Counter`]s, [`Gauge`]s, and log-linear latency
//! [`Histogram`]s over integer nanoseconds, collected in a [`Registry`]
//! that renders a Prometheus-style text exposition (`GET /metrics`).
//!
//! ## Quantile contract
//!
//! Histogram quantiles use the **same nearest-rank rule** as
//! `bench::summarize` (`p = sorted[(num * n).div_ceil(den) - 1]`; for
//! `num/den = 1/2` this is exactly `sorted[(n - 1) / 2]`, the summarize
//! median). A histogram answers with the *upper bound of the bucket*
//! holding that rank, so on samples that sit exactly on bucket bounds
//! the two agree to the byte, and on arbitrary samples they agree at
//! bucket resolution ([`bucket_le`] of the exact answer). The bucket
//! layout is log-linear base 10: bounds `m * 10^d` for `m in 1..=9`,
//! twelve decades (1 ns up to 1000 s), plus a `+Inf` overflow bucket —
//! at most 11% relative rounding anywhere in the range.
//!
//! ## Exposition format
//!
//! The classic text format, restricted to what we emit: `# HELP` /
//! `# TYPE` comment lines, then `name value` or `name{label="v"} value`
//! samples with non-negative integer values. Histograms render the
//! conventional cumulative `_bucket{le="..."}` series (zero-count
//! buckets are skipped; `+Inf`, `_sum` and `_count` always appear).
//! [`parse_exposition`] reads the same dialect back — the replay bench
//! scrapes `/metrics` before and after a run and reports the delta.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Histogram bucket upper bounds (inclusive), log-linear base 10:
/// `1..=9` scaled by every decade from `10^0` to `10^11`, closed with
/// `10^12` (1000 s). Values above the last bound land in `+Inf`.
pub const BUCKETS: [u64; 109] = build_buckets();

const fn build_buckets() -> [u64; 109] {
    let mut out = [0u64; 109];
    let mut i = 0;
    let mut scale: u64 = 1;
    let mut decade = 0;
    while decade < 12 {
        let mut m: u64 = 1;
        while m <= 9 {
            out[i] = m * scale;
            i += 1;
            m += 1;
        }
        scale *= 10;
        decade += 1;
    }
    out[i] = scale;
    out
}

/// Index of the bucket holding `v`: the first bound `>= v`, or
/// `BUCKETS.len()` for the `+Inf` overflow bucket.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    BUCKETS.partition_point(|&b| b < v)
}

/// The inclusive upper bound of the bucket holding `v` (`None` = the
/// `+Inf` overflow bucket). This is the resolution at which histogram
/// quantiles agree with exact nearest-rank quantiles.
#[must_use]
pub fn bucket_le(v: u64) -> Option<u64> {
    BUCKETS.get(bucket_index(v)).copied()
}

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a non-negative value that may go up or down. The service
/// sets scrape-time gauges (queue depth, cache sizes, store counters)
/// immediately before rendering.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log-linear latency histogram over integer nanoseconds (bucket
/// layout in [`BUCKETS`]). Tracks exact `count`, `sum`, and `max`
/// alongside the bucket counts.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>, // BUCKETS.len() + 1 (+Inf last)
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..=BUCKETS.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (`BUCKETS.len() + 1` entries, `+Inf` last).
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Nearest-rank quantile `num/den` at bucket resolution (see module
    /// docs for the agreement contract with `bench::summarize`). The
    /// overflow bucket answers with the exact tracked maximum. `None`
    /// when empty.
    #[must_use]
    pub fn quantile(&self, num: u64, den: u64) -> Option<u64> {
        match quantile_from_counts(&self.bucket_counts(), num, den)? {
            u64::MAX => Some(self.max()),
            bound => Some(bound),
        }
    }
}

/// Nearest-rank quantile `num/den` over per-bucket counts (own counts,
/// not cumulative; `BUCKETS.len() + 1` entries). Returns the bucket's
/// upper bound, or `u64::MAX` for the overflow bucket. `None` when the
/// counts sum to zero. The rank rule is `bench::summarize`'s:
/// zero-based index `(num * n).div_ceil(den) - 1`.
#[must_use]
pub fn quantile_from_counts(counts: &[u64], num: u64, den: u64) -> Option<u64> {
    let n: u64 = counts.iter().sum();
    if n == 0 || den == 0 {
        return None;
    }
    let rank = (num * n).div_ceil(den).clamp(1, n) - 1;
    let mut cum = 0u64;
    for (i, c) in counts.iter().enumerate() {
        cum += c;
        if cum > rank {
            return Some(BUCKETS.get(i).copied().unwrap_or(u64::MAX));
        }
    }
    None
}

/// A family of counters over one label: `name{label="value"}`. The
/// value set is fixed at registration, so the exposition always shows
/// every member (a kind that never fired renders as `0` — the absence
/// of a counter is not a signal anyone should have to interpret).
#[derive(Debug)]
pub struct CounterVec {
    label: &'static str,
    members: Vec<(String, Counter)>,
}

impl CounterVec {
    /// The counter for `value` (`None` for unregistered values).
    #[must_use]
    pub fn get(&self, value: &str) -> Option<&Counter> {
        self.members
            .iter()
            .find(|(v, _)| v == value)
            .map(|(_, c)| c)
    }

    /// Increments the counter for `value`; unregistered values are
    /// ignored (never a panic on the serving path).
    pub fn inc(&self, value: &str) {
        if let Some(c) = self.get(value) {
            c.inc();
        }
    }

    /// The sum over every member of the family.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.members.iter().map(|(_, c)| c.get()).sum()
    }
}

/// A family of gauges over one label (scrape-time store metrics).
#[derive(Debug)]
pub struct GaugeVec {
    label: &'static str,
    members: Vec<(String, Gauge)>,
}

impl GaugeVec {
    /// Sets the gauge for `value`; unregistered values are ignored.
    pub fn set(&self, value: &str, v: u64) {
        if let Some((_, g)) = self.members.iter().find(|(m, _)| m == value) {
            g.set(v);
        }
    }

    /// The gauge value for `value` (`None` for unregistered values).
    #[must_use]
    pub fn get(&self, value: &str) -> Option<u64> {
        self.members
            .iter()
            .find(|(m, _)| m == value)
            .map(|(_, g)| g.get())
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    CounterVec(Arc<CounterVec>),
    GaugeVec(Arc<GaugeVec>),
}

struct Entry {
    name: &'static str,
    help: &'static str,
    metric: Metric,
}

/// A registry of named metrics, rendered in registration order. Built
/// once at server start; the handles returned by the `register_*`
/// methods are the only way to move a metric.
#[derive(Default)]
pub struct Registry {
    entries: Vec<Entry>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    fn push(&mut self, name: &'static str, help: &'static str, metric: Metric) {
        debug_assert!(
            self.entries.iter().all(|e| e.name != name),
            "duplicate metric `{name}`"
        );
        self.entries.push(Entry { name, help, metric });
    }

    /// Registers a counter.
    pub fn counter(&mut self, name: &'static str, help: &'static str) -> Arc<Counter> {
        let c = Arc::new(Counter::default());
        self.push(name, help, Metric::Counter(Arc::clone(&c)));
        c
    }

    /// Registers a gauge.
    pub fn gauge(&mut self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::default());
        self.push(name, help, Metric::Gauge(Arc::clone(&g)));
        g
    }

    /// Registers a histogram.
    pub fn histogram(&mut self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        let h = Arc::new(Histogram::default());
        self.push(name, help, Metric::Histogram(Arc::clone(&h)));
        h
    }

    /// Registers a counter family over a fixed label-value set.
    pub fn counter_vec(
        &mut self,
        name: &'static str,
        help: &'static str,
        label: &'static str,
        values: &[&str],
    ) -> Arc<CounterVec> {
        let v = Arc::new(CounterVec {
            label,
            members: values
                .iter()
                .map(|v| ((*v).to_string(), Counter::default()))
                .collect(),
        });
        self.push(name, help, Metric::CounterVec(Arc::clone(&v)));
        v
    }

    /// Registers a gauge family over a fixed label-value set.
    pub fn gauge_vec(
        &mut self,
        name: &'static str,
        help: &'static str,
        label: &'static str,
        values: &[&str],
    ) -> Arc<GaugeVec> {
        let v = Arc::new(GaugeVec {
            label,
            members: values
                .iter()
                .map(|v| ((*v).to_string(), Gauge::default()))
                .collect(),
        });
        self.push(name, help, Metric::GaugeVec(Arc::clone(&v)));
        v
    }

    /// Renders the text exposition.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        for e in &self.entries {
            let kind = match e.metric {
                Metric::Counter(_) | Metric::CounterVec(_) => "counter",
                Metric::Gauge(_) | Metric::GaugeVec(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            s.push_str(&format!("# HELP {} {}\n", e.name, e.help));
            s.push_str(&format!("# TYPE {} {kind}\n", e.name));
            match &e.metric {
                Metric::Counter(c) => s.push_str(&format!("{} {}\n", e.name, c.get())),
                Metric::Gauge(g) => s.push_str(&format!("{} {}\n", e.name, g.get())),
                Metric::CounterVec(v) => {
                    for (value, c) in &v.members {
                        s.push_str(&format!(
                            "{}{{{}=\"{}\"}} {}\n",
                            e.name,
                            v.label,
                            value,
                            c.get()
                        ));
                    }
                }
                Metric::GaugeVec(v) => {
                    for (value, g) in &v.members {
                        s.push_str(&format!(
                            "{}{{{}=\"{}\"}} {}\n",
                            e.name,
                            v.label,
                            value,
                            g.get()
                        ));
                    }
                }
                Metric::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cum = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        cum += c;
                        if *c == 0 || i == BUCKETS.len() {
                            continue; // +Inf rendered below, always
                        }
                        s.push_str(&format!(
                            "{}_bucket{{le=\"{}\"}} {cum}\n",
                            e.name, BUCKETS[i]
                        ));
                    }
                    s.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {cum}\n", e.name));
                    s.push_str(&format!("{}_sum {}\n", e.name, h.sum()));
                    s.push_str(&format!("{}_count {}\n", e.name, h.count()));
                }
            }
        }
        s
    }
}

/// Parses a text exposition back into `full-sample-name -> value`
/// (names keep their `{label="v"}` part verbatim).
///
/// # Errors
///
/// Describes the first malformed line.
pub fn parse_exposition(text: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut out = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, value)) = line.rsplit_once(' ') else {
            return Err(format!("line {}: no value in `{line}`", lineno + 1));
        };
        let value: u64 = value
            .parse()
            .map_err(|_| format!("line {}: `{value}` is not a u64", lineno + 1))?;
        if out.insert(name.to_string(), value).is_some() {
            return Err(format!("line {}: duplicate sample `{name}`", lineno + 1));
        }
    }
    Ok(out)
}

/// The delta `after - before` of one plain counter/gauge sample
/// (missing samples count as 0; saturating, a scrape is never negative
/// evidence).
#[must_use]
pub fn sample_delta(
    before: &BTreeMap<String, u64>,
    after: &BTreeMap<String, u64>,
    name: &str,
) -> u64 {
    after
        .get(name)
        .copied()
        .unwrap_or(0)
        .saturating_sub(before.get(name).copied().unwrap_or(0))
}

/// All label values and deltas of the family `name{label="..."}`,
/// sorted by label value, zero deltas skipped.
#[must_use]
pub fn family_deltas(
    before: &BTreeMap<String, u64>,
    after: &BTreeMap<String, u64>,
    name: &str,
) -> Vec<(String, u64)> {
    let prefix = format!("{name}{{");
    let mut out = Vec::new();
    for (k, v) in after.range(prefix.clone()..) {
        if !k.starts_with(&prefix) {
            break;
        }
        let label_value = k
            .split_once("=\"")
            .and_then(|(_, rest)| rest.split_once('"'))
            .map_or_else(|| k.clone(), |(v, _)| v.to_string());
        let d = v.saturating_sub(before.get(k).copied().unwrap_or(0));
        if d > 0 {
            out.push((label_value, d));
        }
    }
    out.sort();
    out
}

/// Reconstructs per-bucket **own** counts (`BUCKETS.len() + 1` entries)
/// of histogram `name` from one exposition map. Skipped (zero-count)
/// buckets are restored; the `+Inf` slot is the overflow count.
#[must_use]
pub fn histogram_counts(map: &BTreeMap<String, u64>, name: &str) -> Vec<u64> {
    let mut cum: Vec<(usize, u64)> = Vec::new(); // (bucket index, cumulative)
    let prefix = format!("{name}_bucket{{le=\"");
    for (k, v) in map {
        if let Some(rest) = k.strip_prefix(&prefix) {
            let Some(le) = rest.strip_suffix("\"}") else {
                continue;
            };
            let idx = if le == "+Inf" {
                BUCKETS.len()
            } else {
                match le.parse::<u64>() {
                    Ok(bound) => bucket_index(bound),
                    Err(_) => continue,
                }
            };
            cum.push((idx, *v));
        }
    }
    cum.sort_unstable();
    let mut out = vec![0u64; BUCKETS.len() + 1];
    let mut prev = 0u64;
    for (idx, c) in cum {
        out[idx] = c.saturating_sub(prev);
        prev = c;
    }
    out
}

/// The per-bucket own-count delta of histogram `name` between two
/// scrapes (element-wise, saturating).
#[must_use]
pub fn histogram_delta(
    before: &BTreeMap<String, u64>,
    after: &BTreeMap<String, u64>,
    name: &str,
) -> Vec<u64> {
    let b = histogram_counts(before, name);
    let a = histogram_counts(after, name);
    a.iter()
        .zip(&b)
        .map(|(x, y)| x.saturating_sub(*y))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_strictly_increasing_and_log_linear() {
        assert!(BUCKETS.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(BUCKETS[0], 1);
        assert_eq!(BUCKETS[8], 9);
        assert_eq!(BUCKETS[9], 10);
        assert_eq!(*BUCKETS.last().unwrap(), 1_000_000_000_000);
    }

    #[test]
    fn bucket_index_is_first_bound_at_or_above() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(10), 9);
        assert_eq!(bucket_index(11), 10);
        assert_eq!(bucket_index(1_000_000_000_000), BUCKETS.len() - 1);
        assert_eq!(bucket_index(1_000_000_000_001), BUCKETS.len());
        assert_eq!(bucket_le(1_000_000_000_001), None);
    }

    #[test]
    fn histogram_tracks_count_sum_max() {
        let h = Histogram::default();
        for v in [5, 70, 70, 900] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1045);
        assert_eq!(h.max(), 900);
        assert_eq!(h.quantile(1, 2), Some(70));
    }

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let mut reg = Registry::new();
        let c = reg.counter("t_requests_total", "requests");
        let g = reg.gauge("t_depth", "queue depth");
        let v = reg.counter_vec("t_errors_total", "errors", "kind", &["a", "b"]);
        let h = reg.histogram("t_wall_ns", "latency");
        c.add(3);
        g.set(7);
        v.inc("b");
        h.observe(42);
        h.observe(42);
        h.observe(5_000_000_000_000); // overflow bucket
        let text = reg.render();
        let map = parse_exposition(&text).unwrap();
        assert_eq!(map["t_requests_total"], 3);
        assert_eq!(map["t_depth"], 7);
        assert_eq!(map["t_errors_total{kind=\"a\"}"], 0);
        assert_eq!(map["t_errors_total{kind=\"b\"}"], 1);
        assert_eq!(map["t_wall_ns_bucket{le=\"50\"}"], 2);
        assert_eq!(map["t_wall_ns_bucket{le=\"+Inf\"}"], 3);
        assert_eq!(map["t_wall_ns_count"], 3);
        assert_eq!(map["t_wall_ns_sum"], 5_000_000_000_084);
        // Reconstructed own counts place both 42s at the le=50 bucket
        // and the huge value in +Inf.
        let counts = histogram_counts(&map, "t_wall_ns");
        assert_eq!(counts[bucket_index(42)], 2);
        assert_eq!(counts[BUCKETS.len()], 1);
        assert_eq!(counts.iter().sum::<u64>(), 3);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_exposition("name notanumber").is_err());
        assert!(parse_exposition("lonely").is_err());
        assert!(parse_exposition("a 1\na 2").is_err());
        assert!(parse_exposition("# just a comment\n").unwrap().is_empty());
    }

    #[test]
    fn deltas_subtract_scrapes() {
        let before = parse_exposition("a_total 3\nerr{kind=\"x\"} 1\n").unwrap();
        let after = parse_exposition("a_total 10\nerr{kind=\"x\"} 1\nerr{kind=\"y\"} 4\n").unwrap();
        assert_eq!(sample_delta(&before, &after, "a_total"), 7);
        assert_eq!(sample_delta(&before, &after, "missing"), 0);
        assert_eq!(
            family_deltas(&before, &after, "err"),
            vec![("y".to_string(), 4)]
        );
    }

    #[test]
    fn quantiles_use_the_summarize_rank_rule() {
        // n = 4 samples, all on exact bucket bounds. summarize's median
        // index is (4-1)/2 = 1; ours is (1*4).div_ceil(2)-1 = 1. p90
        // index is (9*4).div_ceil(10)-1 = 3 for both.
        let mut counts = vec![0u64; BUCKETS.len() + 1];
        for v in [10u64, 20, 30, 40] {
            counts[bucket_index(v)] += 1;
        }
        assert_eq!(quantile_from_counts(&counts, 1, 2), Some(20));
        assert_eq!(quantile_from_counts(&counts, 9, 10), Some(40));
        assert_eq!(quantile_from_counts(&[0; 110], 1, 2), None);
    }
}
