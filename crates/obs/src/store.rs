//! Checksummed, atomically-written on-disk entries for the persistent
//! caches.
//!
//! Both persistent stores (symbolic traces in `islaris-isla`, SMT query
//! results in `islaris-smt`) share one sealing discipline so that
//! *verify-on-load* is a single, auditable policy:
//!
//! ```text
//! <magic line>            e.g. "islaris-store/v1 trace"
//! sum <16 hex digits>     FNV-1a over the payload bytes
//! len <decimal>           payload length in bytes
//! <payload>               one self-describing document
//! ```
//!
//! [`open`] re-derives the checksum and length before a caller ever
//! parses the payload; any mismatch — wrong magic, truncation, a flipped
//! bit — is a [`StoreError`], which callers treat as a **sound miss**:
//! the entry is evicted and the answer recomputed from scratch. Nothing
//! read from disk is ever trusted without passing this gate *and* the
//! caller's own semantic checks (key equality, payload parse).
//!
//! Writes go through [`write_atomic`]: the sealed bytes land in a
//! process-unique `*.tmp` sibling first and are `rename`d into place, so
//! concurrent processes sharing a store directory never observe a
//! half-written entry — they see the old entry or the new one.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::json::{obj, Json};
use crate::{fnv1a, QueryStats, SolverMetrics};

/// Why an on-disk entry was rejected. Every variant is handled the same
/// way by callers (evict + recompute); the distinctions exist for tests
/// and diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The first line was not the expected magic string.
    BadMagic,
    /// The `sum`/`len` header lines were missing or unparseable.
    BadHeader,
    /// The payload hashed to a different value than the header claims.
    BadChecksum,
    /// The payload was shorter or longer than the header claims
    /// (truncated or garbage-appended entry).
    BadLength,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadMagic => write!(f, "bad magic line"),
            StoreError::BadHeader => write!(f, "bad store header"),
            StoreError::BadChecksum => write!(f, "checksum mismatch"),
            StoreError::BadLength => write!(f, "length mismatch"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Seals `payload` under `magic` into the bytes written to disk.
#[must_use]
pub fn seal(magic: &str, payload: &str) -> String {
    format!(
        "{magic}\nsum {:016x}\nlen {}\n{payload}",
        fnv1a(payload.as_bytes()),
        payload.len()
    )
}

/// Verifies a sealed entry and returns its payload.
///
/// # Errors
///
/// [`StoreError`] when the magic, header, checksum, or length do not
/// check out. Callers must treat any error as a sound cache miss.
pub fn open(magic: &str, data: &str) -> Result<String, StoreError> {
    let rest = data.strip_prefix(magic).ok_or(StoreError::BadMagic)?;
    let rest = rest.strip_prefix('\n').ok_or(StoreError::BadMagic)?;
    let (sum_line, rest) = rest.split_once('\n').ok_or(StoreError::BadHeader)?;
    let (len_line, payload) = rest.split_once('\n').ok_or(StoreError::BadHeader)?;
    let sum = sum_line
        .strip_prefix("sum ")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or(StoreError::BadHeader)?;
    let len: usize = len_line
        .strip_prefix("len ")
        .and_then(|d| d.parse().ok())
        .ok_or(StoreError::BadHeader)?;
    if payload.len() != len {
        return Err(StoreError::BadLength);
    }
    if fnv1a(payload.as_bytes()) != sum {
        return Err(StoreError::BadChecksum);
    }
    Ok(payload.to_string())
}

/// Writes `bytes` to `path` atomically: a process-unique temporary
/// sibling is written, flushed, and renamed into place. Readers of a
/// shared store directory see either the previous entry or this one,
/// never a prefix.
///
/// # Errors
///
/// Any underlying I/O error; the temporary file is removed on failure.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path.file_name().and_then(|n| n.to_str()).ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "store path has no file name")
    })?;
    let tmp = path.with_file_name(format!("{file_name}.tmp-{}", std::process::id()));
    let write = fs::write(&tmp, bytes);
    match write.and_then(|()| fs::rename(&tmp, path)) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// A `u64` counter as a JSON number (exact below 2^53, which every
/// metric in practice is).
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn u64_json(n: u64) -> Json {
    Json::Num(n as f64)
}

/// [`SolverMetrics`] as a JSON object. Decoding reads by field name, so
/// appending fields keeps old readers working; entries missing a field
/// decode as corrupt and are recomputed.
#[must_use]
pub fn solver_metrics_to_json(m: &SolverMetrics) -> Json {
    obj(vec![
        ("queries", u64_json(m.queries)),
        ("sat", u64_json(m.sat)),
        ("unsat", u64_json(m.unsat)),
        ("unknown", u64_json(m.unknown)),
        ("model_verifies", u64_json(m.model_verifies)),
        ("cnf_vars", u64_json(m.cnf_vars)),
        ("cnf_clauses", u64_json(m.cnf_clauses)),
        ("propagations", u64_json(m.propagations)),
        ("decisions", u64_json(m.decisions)),
        ("conflicts", u64_json(m.conflicts)),
        ("restarts", u64_json(m.restarts)),
        ("reduced", u64_json(m.reduced)),
        ("minimized", u64_json(m.minimized)),
        ("folded", u64_json(m.folded)),
        ("trimmed", u64_json(m.trimmed)),
    ])
}

/// Inverse of [`solver_metrics_to_json`]; `None` on any missing or
/// mistyped field.
#[must_use]
pub fn solver_metrics_from_json(j: &Json) -> Option<SolverMetrics> {
    let field = |k: &str| j.get(k).and_then(Json::as_u64);
    Some(SolverMetrics {
        queries: field("queries")?,
        sat: field("sat")?,
        unsat: field("unsat")?,
        unknown: field("unknown")?,
        model_verifies: field("model_verifies")?,
        cnf_vars: field("cnf_vars")?,
        cnf_clauses: field("cnf_clauses")?,
        propagations: field("propagations")?,
        decisions: field("decisions")?,
        conflicts: field("conflicts")?,
        restarts: field("restarts")?,
        reduced: field("reduced")?,
        minimized: field("minimized")?,
        folded: field("folded")?,
        trimmed: field("trimmed")?,
    })
}

/// [`QueryStats`] as a JSON object (same schema discipline as
/// [`solver_metrics_to_json`]).
#[must_use]
pub fn query_stats_to_json(q: &QueryStats) -> Json {
    obj(vec![
        ("count", u64_json(q.count)),
        ("cnf_clauses", u64_json(q.cnf_clauses)),
        ("propagations", u64_json(q.propagations)),
        ("decisions", u64_json(q.decisions)),
        ("conflicts", u64_json(q.conflicts)),
        ("hits", u64_json(q.hits)),
    ])
}

/// Inverse of [`query_stats_to_json`].
#[must_use]
pub fn query_stats_from_json(j: &Json) -> Option<QueryStats> {
    let field = |k: &str| j.get(k).and_then(Json::as_u64);
    Some(QueryStats {
        count: field("count")?,
        cnf_clauses: field("cnf_clauses")?,
        propagations: field("propagations")?,
        decisions: field("decisions")?,
        conflicts: field("conflicts")?,
        hits: field("hits")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &str = "islaris-store/v1 test";

    #[test]
    fn seal_open_round_trips() {
        let sealed = seal(MAGIC, "{\"answer\":42}");
        assert_eq!(open(MAGIC, &sealed).unwrap(), "{\"answer\":42}");
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let sealed = seal(MAGIC, "x");
        assert_eq!(
            open("islaris-store/v1 other", &sealed),
            Err(StoreError::BadMagic)
        );
    }

    #[test]
    fn truncation_is_rejected() {
        let sealed = seal(MAGIC, "a longer payload with some body to it");
        let cut = &sealed[..sealed.len() - 5];
        assert_eq!(open(MAGIC, cut), Err(StoreError::BadLength));
    }

    #[test]
    fn bit_flip_is_rejected() {
        let sealed = seal(MAGIC, "a longer payload with some body to it");
        let mut bytes = sealed.into_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // keeps the length, breaks the sum
        let flipped = String::from_utf8(bytes).unwrap();
        assert_eq!(open(MAGIC, &flipped), Err(StoreError::BadChecksum));
    }

    #[test]
    fn missing_header_lines_are_rejected() {
        assert_eq!(open(MAGIC, MAGIC), Err(StoreError::BadMagic));
        assert_eq!(
            open(MAGIC, &format!("{MAGIC}\nsum zz\nlen 1\nx")),
            Err(StoreError::BadHeader)
        );
        assert_eq!(
            open(MAGIC, &format!("{MAGIC}\nlen 1\nsum 0\nx")),
            Err(StoreError::BadHeader)
        );
    }

    #[test]
    fn metric_codecs_round_trip() {
        let m = SolverMetrics {
            queries: 1,
            sat: 2,
            unsat: 3,
            unknown: 4,
            model_verifies: 5,
            cnf_vars: 6,
            cnf_clauses: 7,
            propagations: 8,
            decisions: 9,
            conflicts: 10,
            restarts: 11,
            reduced: 12,
            minimized: 13,
            folded: 14,
            trimmed: 15,
        };
        assert_eq!(
            solver_metrics_from_json(&solver_metrics_to_json(&m)),
            Some(m)
        );
        let q = QueryStats {
            count: 21,
            cnf_clauses: 22,
            propagations: 23,
            decisions: 24,
            conflicts: 25,
            hits: 26,
        };
        assert_eq!(query_stats_from_json(&query_stats_to_json(&q)), Some(q));
        assert_eq!(solver_metrics_from_json(&Json::Null), None);
        assert_eq!(
            query_stats_from_json(&obj(vec![("count", u64_json(1))])),
            None
        );
    }

    #[test]
    fn write_atomic_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("islaris-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("entry");
        write_atomic(&path, b"one").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
        write_atomic(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "no temp files left behind");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
