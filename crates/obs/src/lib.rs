//! Observability for the Islaris pipeline: typed counters, wall-clock
//! spans, and a Chrome trace-event exporter — all std-only.
//!
//! The design splits measurements into two disjoint kinds:
//!
//! * **Counters** are plain `u64` fields in small `Copy` structs
//!   ([`SolverMetrics`], [`IslaMetrics`], …) threaded by value through the
//!   code that does the work. They are *deterministic*: the same inputs
//!   produce the same counts whatever the thread count or cache state, so
//!   the rendered [`CaseProfile`] table is byte-comparable across runs
//!   (the same discipline as the Fig. 12 "stable rows").
//! * **Spans** are wall-clock intervals recorded into a [`Recorder`]
//!   behind an `Option<&Recorder>`: when profiling is off the option is
//!   `None` and the instrumentation is a branch on a `None` — no
//!   allocation, no atomics, no lock. Spans are inherently
//!   non-deterministic and are exported separately as Chrome trace-event
//!   JSON ([`Recorder::chrome_trace`]), never mixed into the counter
//!   table.

use std::sync::Mutex;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// SMT solver counters: one record per logical solver "client" (the
/// symbolic executor, the engine, the certificate checker each keep their
/// own), absorbed upward into the per-case profile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverMetrics {
    /// `check_sat` calls (an `entails` call is one query).
    pub queries: u64,
    /// Queries answered `Sat`.
    pub sat: u64,
    /// Queries answered `Unsat`.
    pub unsat: u64,
    /// Queries answered `Unknown` (budget or unsupported fragment).
    pub unknown: u64,
    /// Models verified by evaluation before being reported.
    pub model_verifies: u64,
    /// Total CNF variables produced by bit-blasting.
    pub cnf_vars: u64,
    /// Total CNF clauses produced by bit-blasting.
    pub cnf_clauses: u64,
    /// Unit propagations performed by the SAT solver.
    pub propagations: u64,
    /// Decisions taken by the SAT solver.
    pub decisions: u64,
    /// Conflicts hit by the SAT solver.
    pub conflicts: u64,
}

impl SolverMetrics {
    /// Adds another record into this one, field by field.
    pub fn absorb(&mut self, o: &SolverMetrics) {
        self.queries += o.queries;
        self.sat += o.sat;
        self.unsat += o.unsat;
        self.unknown += o.unknown;
        self.model_verifies += o.model_verifies;
        self.cnf_vars += o.cnf_vars;
        self.cnf_clauses += o.cnf_clauses;
        self.propagations += o.propagations;
        self.decisions += o.decisions;
        self.conflicts += o.conflicts;
    }

    fn render(&self) -> String {
        format!(
            "queries={} sat={} unsat={} unknown={} model_verifies={} \
             cnf_vars={} cnf_clauses={} propagations={} decisions={} conflicts={}",
            self.queries,
            self.sat,
            self.unsat,
            self.unknown,
            self.model_verifies,
            self.cnf_vars,
            self.cnf_clauses,
            self.propagations,
            self.decisions,
            self.conflicts
        )
    }
}

/// Trace-cache counters (the former `isla::cache::CacheStats`, unified
/// here so every stage shares one metrics vocabulary).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheMetrics {
    /// Lookups that found (or waited for) an existing entry.
    pub hits: u64,
    /// Lookups that had to compute the entry.
    pub misses: u64,
}

impl CacheMetrics {
    /// Total lookups.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in [0, 1]; 0 when there were no lookups.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Adds another record into this one.
    pub fn absorb(&mut self, o: &CacheMetrics) {
        self.hits += o.hits;
        self.misses += o.misses;
    }
}

/// Mini-Sail interpretation counters: expression-evaluation steps and
/// model-function firings. Kept by both the concrete interpreter
/// (`sail::interp`) and the symbolic one (`isla::exec`, which interprets
/// the same model AST symbolically).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SailMetrics {
    /// Expression-evaluation steps.
    pub steps: u64,
    /// Model-function calls (rule firings).
    pub calls: u64,
}

impl SailMetrics {
    /// Adds another record into this one.
    pub fn absorb(&mut self, o: &SailMetrics) {
        self.steps += o.steps;
        self.calls += o.calls;
    }
}

/// Symbolic-execution counters (per opcode, aggregated per case).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IslaMetrics {
    /// Symbolic runs (1 + one per replayed fork).
    pub runs: u64,
    /// Forks where both arms were feasible.
    pub branches_explored: u64,
    /// Branch arms pruned as infeasible.
    pub branches_pruned: u64,
    /// Feasibility queries sent to the solver.
    pub smt_queries: u64,
    /// Events in the final simplified trace.
    pub events: u64,
}

impl IslaMetrics {
    /// Adds another record into this one.
    pub fn absorb(&mut self, o: &IslaMetrics) {
        self.runs += o.runs;
        self.branches_explored += o.branches_explored;
        self.branches_pruned += o.branches_pruned;
        self.smt_queries += o.smt_queries;
        self.events += o.events;
    }
}

/// Proof-automation counters (per block, aggregated per case).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Trace events processed.
    pub events: u64,
    /// Instructions stepped through.
    pub instructions: u64,
    /// Bitvector side conditions sent to the solver.
    pub smt_queries: u64,
    /// LIA side conditions sent to Fourier–Motzkin.
    pub lia_queries: u64,
    /// Obligations discharged (logged into the certificate).
    pub obligations: u64,
    /// Vacuous/refuted branches cut off (the non-backtracking engine's
    /// analogue of a search backtrack).
    pub vacuous_branches: u64,
}

impl EngineMetrics {
    /// Adds another record into this one.
    pub fn absorb(&mut self, o: &EngineMetrics) {
        self.events += o.events;
        self.instructions += o.instructions;
        self.smt_queries += o.smt_queries;
        self.lia_queries += o.lia_queries;
        self.obligations += o.obligations;
        self.vacuous_branches += o.vacuous_branches;
    }
}

/// Certificate-replay counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CertMetrics {
    /// Obligations replayed.
    pub replayed: u64,
    /// … of which bitvector entailments.
    pub bv: u64,
    /// … of which LIA entailments.
    pub lia: u64,
    /// Paranoid-solver activity during replay.
    pub solver: SolverMetrics,
}

impl CertMetrics {
    /// Adds another record into this one.
    pub fn absorb(&mut self, o: &CertMetrics) {
        self.replayed += o.replayed;
        self.bv += o.bv;
        self.lia += o.lia;
        self.solver.absorb(&o.solver);
    }
}

/// Differential-testing counters: one record per fuzzing run (or per
/// opcode, absorbed upward). Every field is a deterministic function of
/// `(seed, budget, models)` — no wall-clock, no OS randomness — so the
/// rendered table is byte-identical across reruns and worker counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiffMetrics {
    /// Opcodes generated and traced.
    pub opcodes: u64,
    /// Opcodes the symbolic executor could not trace (counted, skipped).
    pub trace_errors: u64,
    /// Root-to-leaf trace paths enumerated.
    pub paths: u64,
    /// Paths whose constraint set was unsatisfiable (vacuous branches).
    pub vacuous: u64,
    /// Paths the solver could not decide (skipped, counted).
    pub unknown: u64,
    /// Satisfying models sampled from path constraints.
    pub models_sampled: u64,
    /// Concrete replays run against sampled models.
    pub replays: u64,
    /// Replays that diverged from the symbolic trace.
    pub divergences: u64,
}

impl DiffMetrics {
    /// Adds another record into this one.
    pub fn absorb(&mut self, o: &DiffMetrics) {
        self.opcodes += o.opcodes;
        self.trace_errors += o.trace_errors;
        self.paths += o.paths;
        self.vacuous += o.vacuous;
        self.unknown += o.unknown;
        self.models_sampled += o.models_sampled;
        self.replays += o.replays;
        self.divergences += o.divergences;
    }

    /// Renders the record as the `k=v` line used by `fig12 --difftest`
    /// (same vocabulary as the profile table stages).
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "opcodes={} trace_errors={} paths={} vacuous={} unknown={} \
             models_sampled={} replays={} divergences={}",
            self.opcodes,
            self.trace_errors,
            self.paths,
            self.vacuous,
            self.unknown,
            self.models_sampled,
            self.replays,
            self.divergences
        )
    }
}

/// The per-case, per-stage counter profile: everything `fig12 --profile`
/// prints for one Fig. 12 row. All fields are deterministic counters —
/// no wall-clock — so the rendering is byte-identical across `--jobs N`,
/// sequential, and warm-cache runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaseProfile {
    /// Mini-Sail model interpretation (symbolic, inside Isla).
    pub sail: SailMetrics,
    /// Symbolic execution.
    pub isla: IslaMetrics,
    /// Solver activity during symbolic execution (branch pruning).
    pub isla_smt: SolverMetrics,
    /// Proof automation.
    pub engine: EngineMetrics,
    /// Solver activity during proof automation.
    pub engine_smt: SolverMetrics,
    /// Certificate replay.
    pub cert: CertMetrics,
    /// Trace-cache traffic while building the case.
    pub cache: CacheMetrics,
}

impl CaseProfile {
    /// Renders this profile as the per-stage block of the profile table.
    /// Every pipeline stage appears on its own `  <stage>:` line (the CI
    /// smoke greps for each stage name).
    #[must_use]
    pub fn render(&self, case: &str) -> String {
        let mut s = String::new();
        s.push_str(&format!("case {case}\n"));
        s.push_str(&format!(
            "  sail    : steps={} calls={}\n",
            self.sail.steps, self.sail.calls
        ));
        s.push_str(&format!(
            "  isla    : runs={} branches_explored={} branches_pruned={} smt_queries={} events={}\n",
            self.isla.runs,
            self.isla.branches_explored,
            self.isla.branches_pruned,
            self.isla.smt_queries,
            self.isla.events
        ));
        s.push_str(&format!("  isla.smt: {}\n", self.isla_smt.render()));
        s.push_str(&format!(
            "  engine  : events={} instructions={} smt_queries={} lia_queries={} obligations={} \
             vacuous_branches={}\n",
            self.engine.events,
            self.engine.instructions,
            self.engine.smt_queries,
            self.engine.lia_queries,
            self.engine.obligations,
            self.engine.vacuous_branches
        ));
        s.push_str(&format!("  eng.smt : {}\n", self.engine_smt.render()));
        s.push_str(&format!(
            "  cert    : replayed={} bv={} lia={}\n",
            self.cert.replayed, self.cert.bv, self.cert.lia
        ));
        s.push_str(&format!("  cert.smt: {}\n", self.cert.solver.render()));
        s.push_str(&format!(
            "  cache   : hits={} misses={}\n",
            self.cache.hits, self.cache.misses
        ));
        s
    }
}

/// Renders the whole profile table (one [`CaseProfile::render`] block per
/// case, in the given order).
#[must_use]
pub fn render_profiles(cases: &[(String, CaseProfile)]) -> String {
    let mut s = String::new();
    for (name, p) in cases {
        s.push_str(&p.render(name));
    }
    s
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// One closed wall-clock span, timestamped in microseconds relative to
/// the owning recorder's epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. `"verify:hvc"`).
    pub name: String,
    /// Category (e.g. `"pipeline"`, `"case"`).
    pub cat: &'static str,
    /// Start offset from the recorder epoch, µs.
    pub ts_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// Logical thread id (0 = main, n = `islaris-worker-n`).
    pub tid: u32,
}

/// Anything that can accept closed spans. [`Recorder`] is the only
/// implementation in-tree; the trait exists so call sites stay decoupled
/// from the storage policy.
pub trait SpanSink: Sync {
    /// Records one closed span.
    fn record(&self, span: SpanRecord);
}

/// Collects spans from any thread. Cheap to share (`&Recorder` is `Sync`);
/// when profiling is off, callers hold `None` and pay only an `Option`
/// branch — this type is never constructed.
#[derive(Debug)]
pub struct Recorder {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A recorder whose epoch is "now".
    #[must_use]
    pub fn new() -> Self {
        Recorder {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// The recorder's epoch (spans are timestamped relative to it).
    #[must_use]
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Opens a span now; it closes (and is recorded) when the guard drops.
    /// The logical thread id is derived from the current thread's name
    /// (`islaris-worker-n` → `n`, anything else → 0).
    #[must_use]
    pub fn span(&self, name: impl Into<String>, cat: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            rec: self,
            name: name.into(),
            cat,
            start: Instant::now(),
            tid: current_tid(),
        }
    }

    /// Records a span from explicit instants (both must be at or after
    /// the epoch).
    pub fn record_between(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        start: Instant,
        end: Instant,
    ) {
        let ts_us = us_between(self.epoch, start);
        let dur_us = us_between(start, end);
        self.record(SpanRecord {
            name: name.into(),
            cat,
            ts_us,
            dur_us,
            tid: current_tid(),
        });
    }

    /// All spans recorded so far, sorted by (start, tid, name) so the
    /// ordering does not depend on lock-acquisition order.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut v = self
            .spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        v.sort_by(|a, b| {
            (a.ts_us, a.tid, &a.name, a.dur_us).cmp(&(b.ts_us, b.tid, &b.name, b.dur_us))
        });
        v
    }

    /// Exports every span as Chrome trace-event JSON (`chrome://tracing`
    /// / Perfetto "JSON Array with metadata" format, complete `X` events).
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        let spans = self.spans();
        let mut s = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, sp) in spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{}}}",
                escape_json(&sp.name),
                escape_json(sp.cat),
                sp.ts_us,
                sp.dur_us,
                sp.tid
            ));
        }
        s.push_str("]}");
        s
    }
}

impl SpanSink for Recorder {
    fn record(&self, span: SpanRecord) {
        self.spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(span);
    }
}

/// RAII guard from [`Recorder::span`]: records the span on drop.
pub struct SpanGuard<'a> {
    rec: &'a Recorder,
    name: String,
    cat: &'static str,
    start: Instant,
    tid: u32,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let ts_us = us_between(self.rec.epoch, self.start);
        let dur_us = us_between(self.start, Instant::now());
        self.rec.record(SpanRecord {
            name: std::mem::take(&mut self.name),
            cat: self.cat,
            ts_us,
            dur_us,
            tid: self.tid,
        });
    }
}

fn us_between(earlier: Instant, later: Instant) -> u64 {
    later
        .checked_duration_since(earlier)
        .map_or(0, |d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
}

fn current_tid() -> u32 {
    std::thread::current()
        .name()
        .and_then(|n| n.strip_prefix("islaris-worker-"))
        .and_then(|n| n.parse().ok())
        .unwrap_or(0)
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// JSON validation (for the CI profile smoke)
// ---------------------------------------------------------------------------

/// Validates that `s` is one complete JSON value (object, array, string,
/// number, `true`/`false`/`null`) with nothing but whitespace after it.
/// A recursive-descent scanner, not a parser: it builds no tree, it only
/// accepts or rejects — enough for the CI smoke to assert the emitted
/// Chrome trace is well-formed without external tooling.
///
/// # Errors
///
/// Returns `(byte offset, message)` for the first violation.
pub fn validate_json(s: &str) -> Result<(), (usize, String)> {
    let b = s.as_bytes();
    let mut i = 0;
    skip_ws(b, &mut i);
    json_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err((i, "trailing content after JSON value".into()));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn json_value(b: &[u8], i: &mut usize) -> Result<(), (usize, String)> {
    match b.get(*i) {
        Some(b'{') => json_object(b, i),
        Some(b'[') => json_array(b, i),
        Some(b'"') => json_string(b, i),
        Some(b't') => json_lit(b, i, "true"),
        Some(b'f') => json_lit(b, i, "false"),
        Some(b'n') => json_lit(b, i, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => json_number(b, i),
        Some(c) => Err((*i, format!("unexpected byte {:?}", *c as char))),
        None => Err((*i, "unexpected end of input".into())),
    }
}

fn json_object(b: &[u8], i: &mut usize) -> Result<(), (usize, String)> {
    *i += 1; // '{'
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        json_string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err((*i, "expected ':' in object".into()));
        }
        *i += 1;
        skip_ws(b, i);
        json_value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err((*i, "expected ',' or '}' in object".into())),
        }
    }
}

fn json_array(b: &[u8], i: &mut usize) -> Result<(), (usize, String)> {
    *i += 1; // '['
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        json_value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err((*i, "expected ',' or ']' in array".into())),
        }
    }
}

fn json_string(b: &[u8], i: &mut usize) -> Result<(), (usize, String)> {
    if b.get(*i) != Some(&b'"') {
        return Err((*i, "expected string".into()));
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        for k in 1..=4 {
                            if !b.get(*i + k).is_some_and(u8::is_ascii_hexdigit) {
                                return Err((*i, "bad \\u escape".into()));
                            }
                        }
                        *i += 5;
                    }
                    _ => return Err((*i, "bad escape".into())),
                }
            }
            0x00..=0x1f => return Err((*i, "raw control character in string".into())),
            _ => *i += 1,
        }
    }
    Err((*i, "unterminated string".into()))
}

fn json_number(b: &[u8], i: &mut usize) -> Result<(), (usize, String)> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let digits = |b: &[u8], i: &mut usize| {
        let s = *i;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
        *i > s
    };
    if !digits(b, i) {
        return Err((start, "malformed number".into()));
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if !digits(b, i) {
            return Err((start, "malformed number".into()));
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        if !digits(b, i) {
            return Err((start, "malformed number".into()));
        }
    }
    Ok(())
}

fn json_lit(b: &[u8], i: &mut usize, lit: &str) -> Result<(), (usize, String)> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err((*i, format!("expected `{lit}`")))
    }
}

// ---------------------------------------------------------------------------
// Hashing (certificate digests)
// ---------------------------------------------------------------------------

/// FNV-1a over a byte string: the in-tree stable hash used for
/// certificate order digests (nothing cryptographic — tamper *evidence*,
/// not tamper *proofing*; the semantic re-check is the real gate).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_metrics_absorb_sums_fields() {
        let mut a = SolverMetrics {
            queries: 1,
            sat: 1,
            propagations: 10,
            ..Default::default()
        };
        let b = SolverMetrics {
            queries: 2,
            unsat: 1,
            decisions: 4,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.queries, 3);
        assert_eq!(a.sat, 1);
        assert_eq!(a.unsat, 1);
        assert_eq!(a.propagations, 10);
        assert_eq!(a.decisions, 4);
    }

    #[test]
    fn cache_metrics_rates() {
        let c = CacheMetrics { hits: 3, misses: 1 };
        assert_eq!(c.lookups(), 4);
        assert!((c.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheMetrics::default().hit_rate(), 0.0);
    }

    #[test]
    fn diff_metrics_absorb_and_render() {
        let mut a = DiffMetrics {
            opcodes: 2,
            paths: 5,
            divergences: 1,
            ..Default::default()
        };
        let b = DiffMetrics {
            opcodes: 3,
            models_sampled: 4,
            replays: 4,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.opcodes, 5);
        assert_eq!(a.paths, 5);
        assert_eq!(a.models_sampled, 4);
        assert_eq!(a.divergences, 1);
        let r = a.render();
        for key in [
            "opcodes=",
            "trace_errors=",
            "paths=",
            "vacuous=",
            "unknown=",
            "models_sampled=",
            "replays=",
            "divergences=",
        ] {
            assert!(r.contains(key), "missing {key} in {r}");
        }
    }

    #[test]
    fn profile_render_mentions_every_stage() {
        let r = CaseProfile::default().render("hvc");
        for stage in [
            "sail", "isla", "isla.smt", "engine", "eng.smt", "cert", "cache",
        ] {
            assert!(r.contains(stage), "missing stage {stage} in {r}");
        }
        assert!(r.starts_with("case hvc\n"));
    }

    #[test]
    fn recorder_collects_and_exports_spans() {
        let rec = Recorder::new();
        {
            let _g = rec.span("outer", "test");
            let _h = rec.span("inner", "test");
        }
        let t0 = Instant::now();
        rec.record_between("explicit", "test", t0, t0);
        let spans = rec.spans();
        assert_eq!(spans.len(), 3);
        let json = rec.chrome_trace();
        validate_json(&json).expect("chrome trace is valid JSON");
        assert!(json.contains("\"name\":\"outer\""));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn span_names_are_escaped() {
        let rec = Recorder::new();
        drop(rec.span("we\"ird\\name\n", "test"));
        let json = rec.chrome_trace();
        validate_json(&json).expect("escaped trace is valid JSON");
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        for ok in [
            "{}",
            "[]",
            "  {\"a\": [1, 2.5, -3e4, \"x\\u00ff\", true, false, null]}  ",
            "\"lone string\"",
            "-0.5",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok}: {e:?}"));
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1} trailing",
            "\"unterminated",
            "01e",
            "nul",
            "{'single': 1}",
        ] {
            assert!(validate_json(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn fnv1a_matches_reference_vector() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn worker_thread_names_map_to_tids() {
        let rec = std::sync::Arc::new(Recorder::new());
        let r2 = rec.clone();
        std::thread::Builder::new()
            .name("islaris-worker-7".into())
            .spawn(move || drop(r2.span("in-worker", "test")))
            .expect("spawn")
            .join()
            .expect("join");
        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].tid, 7);
    }
}
