//! Observability for the Islaris pipeline: typed counters, wall-clock
//! spans, and a Chrome trace-event exporter — all std-only.
//!
//! The design splits measurements into two disjoint kinds:
//!
//! * **Counters** are plain `u64` fields in small `Copy` structs
//!   ([`SolverMetrics`], [`IslaMetrics`], …) threaded by value through the
//!   code that does the work. They are *deterministic*: the same inputs
//!   produce the same counts whatever the thread count or cache state, so
//!   the rendered [`CaseProfile`] table is byte-comparable across runs
//!   (the same discipline as the Fig. 12 "stable rows").
//! * **Spans** are wall-clock intervals recorded into a [`Recorder`]
//!   behind an `Option<&Recorder>`: when profiling is off the option is
//!   `None` and the instrumentation is a branch on a `None` — no
//!   allocation, no atomics, no lock. Spans are inherently
//!   non-deterministic and are exported separately as Chrome trace-event
//!   JSON ([`Recorder::chrome_trace`]), never mixed into the counter
//!   table.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

pub mod http;
pub mod json;
pub mod metrics;
pub mod store;
pub mod trace;

pub use json::{parse_json, Json};

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// SMT solver counters: one record per logical solver "client" (the
/// symbolic executor, the engine, the certificate checker each keep their
/// own), absorbed upward into the per-case profile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverMetrics {
    /// `check_sat` calls (an `entails` call is one query).
    pub queries: u64,
    /// Queries answered `Sat`.
    pub sat: u64,
    /// Queries answered `Unsat`.
    pub unsat: u64,
    /// Queries answered `Unknown` (budget or unsupported fragment).
    pub unknown: u64,
    /// Models verified by evaluation before being reported.
    pub model_verifies: u64,
    /// Total CNF variables produced by bit-blasting.
    pub cnf_vars: u64,
    /// Total CNF clauses produced by bit-blasting.
    pub cnf_clauses: u64,
    /// Unit propagations performed by the SAT solver.
    pub propagations: u64,
    /// Decisions taken by the SAT solver.
    pub decisions: u64,
    /// Conflicts hit by the SAT solver.
    pub conflicts: u64,
    /// Restarts performed by the SAT solver (Luby sequence).
    pub restarts: u64,
    /// Learned clauses deleted by database reduction.
    pub reduced: u64,
    /// Literals removed by conflict-clause minimization.
    pub minimized: u64,
    /// Terms folded away before CNF: cross-fact constant propagation,
    /// gate-level constant short-circuits, and structural-hash hits.
    pub folded: u64,
    /// Proof clauses dropped by backward dependency trimming before the
    /// RUP checker replays a refutation.
    pub trimmed: u64,
}

impl SolverMetrics {
    /// Adds another record into this one, field by field.
    pub fn absorb(&mut self, o: &SolverMetrics) {
        self.queries += o.queries;
        self.sat += o.sat;
        self.unsat += o.unsat;
        self.unknown += o.unknown;
        self.model_verifies += o.model_verifies;
        self.cnf_vars += o.cnf_vars;
        self.cnf_clauses += o.cnf_clauses;
        self.propagations += o.propagations;
        self.decisions += o.decisions;
        self.conflicts += o.conflicts;
        self.restarts += o.restarts;
        self.reduced += o.reduced;
        self.minimized += o.minimized;
        self.folded += o.folded;
        self.trimmed += o.trimmed;
    }

    fn render(&self) -> String {
        format!(
            "queries={} sat={} unsat={} unknown={} model_verifies={} \
             cnf_vars={} cnf_clauses={} propagations={} decisions={} conflicts={} \
             restarts={} reduced={} minimized={} folded={} trimmed={}",
            self.queries,
            self.sat,
            self.unsat,
            self.unknown,
            self.model_verifies,
            self.cnf_vars,
            self.cnf_clauses,
            self.propagations,
            self.decisions,
            self.conflicts,
            self.restarts,
            self.reduced,
            self.minimized,
            self.folded,
            self.trimmed
        )
    }
}

/// Trace-cache counters (the former `isla::cache::CacheStats`, unified
/// here so every stage shares one metrics vocabulary).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheMetrics {
    /// Lookups that found (or waited for) an existing entry.
    pub hits: u64,
    /// Lookups that had to compute the entry.
    pub misses: u64,
}

impl CacheMetrics {
    /// Total lookups.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in [0, 1]; 0 when there were no lookups.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Adds another record into this one.
    pub fn absorb(&mut self, o: &CacheMetrics) {
        self.hits += o.hits;
        self.misses += o.misses;
    }

    /// The hit rate as display text: `-` when there were no lookups
    /// (never `NaN`), otherwise a percentage like `75%`.
    #[must_use]
    pub fn hit_rate_str(&self) -> String {
        percent(self.hits, self.lookups())
    }
}

/// Counters for a *persistent* (on-disk) cache store, kept separate from
/// the in-memory [`CacheMetrics`]: a process only consults the disk on
/// an in-memory miss, so `disk_hits + disk_misses` equals the memory
/// layer's miss count for stores that are always attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreMetrics {
    /// In-memory misses answered by a verified on-disk entry.
    pub disk_hits: u64,
    /// In-memory misses the disk could not answer (absent entry).
    pub disk_misses: u64,
    /// On-disk entries rejected by verify-on-load (bad checksum, bad
    /// parse, key mismatch) and deleted. Every eviction is also a
    /// `disk_misses` — a corrupt entry is a sound miss, never an answer.
    pub evictions: u64,
    /// Entry writes that failed (permissions, disk full). Write failures
    /// only lose warmth, never answers.
    pub write_errors: u64,
}

impl StoreMetrics {
    /// Adds another record into this one.
    pub fn absorb(&mut self, o: &StoreMetrics) {
        self.disk_hits += o.disk_hits;
        self.disk_misses += o.disk_misses;
        self.evictions += o.evictions;
        self.write_errors += o.write_errors;
    }

    /// Renders the counters as the deterministic `k=v` row style shared
    /// by every metrics struct.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "disk_hits={} disk_misses={} evictions={} write_errors={}",
            self.disk_hits, self.disk_misses, self.evictions, self.write_errors
        )
    }
}

/// Renders `num/den` as a percentage (`75%`), or `-` when the
/// denominator is zero — the shared zero-denominator guard for every
/// ratio the telemetry prints (a `NaN` in a report is always a bug).
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn percent(num: u64, den: u64) -> String {
    if den == 0 {
        "-".into()
    } else {
        format!("{:.0}%", 100.0 * num as f64 / den as f64)
    }
}

/// Mini-Sail interpretation counters: expression-evaluation steps and
/// model-function firings. Kept by both the concrete interpreter
/// (`sail::interp`) and the symbolic one (`isla::exec`, which interprets
/// the same model AST symbolically).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SailMetrics {
    /// Expression-evaluation steps.
    pub steps: u64,
    /// Model-function calls (rule firings).
    pub calls: u64,
}

impl SailMetrics {
    /// Adds another record into this one.
    pub fn absorb(&mut self, o: &SailMetrics) {
        self.steps += o.steps;
        self.calls += o.calls;
    }
}

/// Symbolic-execution counters (per opcode, aggregated per case).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IslaMetrics {
    /// Symbolic runs (1 + one per replayed fork).
    pub runs: u64,
    /// Forks where both arms were feasible.
    pub branches_explored: u64,
    /// Branch arms pruned as infeasible.
    pub branches_pruned: u64,
    /// Feasibility queries sent to the solver.
    pub smt_queries: u64,
    /// Events in the final simplified trace.
    pub events: u64,
}

impl IslaMetrics {
    /// Adds another record into this one.
    pub fn absorb(&mut self, o: &IslaMetrics) {
        self.runs += o.runs;
        self.branches_explored += o.branches_explored;
        self.branches_pruned += o.branches_pruned;
        self.smt_queries += o.smt_queries;
        self.events += o.events;
    }
}

/// Proof-automation counters (per block, aggregated per case).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Trace events processed.
    pub events: u64,
    /// Instructions stepped through.
    pub instructions: u64,
    /// Bitvector side conditions sent to the solver.
    pub smt_queries: u64,
    /// LIA side conditions sent to Fourier–Motzkin.
    pub lia_queries: u64,
    /// Obligations discharged (logged into the certificate).
    pub obligations: u64,
    /// Vacuous/refuted branches cut off (the non-backtracking engine's
    /// analogue of a search backtrack).
    pub vacuous_branches: u64,
    /// Blocks scheduled as independent intra-case verification jobs.
    /// Deterministic: counts jobs *scheduled*, not workers used, so it is
    /// byte-identical across `--jobs` settings.
    pub blocks_parallel: u64,
}

impl EngineMetrics {
    /// Adds another record into this one.
    pub fn absorb(&mut self, o: &EngineMetrics) {
        self.events += o.events;
        self.instructions += o.instructions;
        self.smt_queries += o.smt_queries;
        self.lia_queries += o.lia_queries;
        self.obligations += o.obligations;
        self.vacuous_branches += o.vacuous_branches;
        self.blocks_parallel += o.blocks_parallel;
    }
}

/// Certificate-replay counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CertMetrics {
    /// Obligations replayed.
    pub replayed: u64,
    /// … of which bitvector entailments.
    pub bv: u64,
    /// … of which LIA entailments.
    pub lia: u64,
    /// Paranoid-solver activity during replay.
    pub solver: SolverMetrics,
    /// Query-result cache traffic during replay (zero when replay runs
    /// uncached).
    pub qcache: CacheMetrics,
}

impl CertMetrics {
    /// Adds another record into this one.
    pub fn absorb(&mut self, o: &CertMetrics) {
        self.replayed += o.replayed;
        self.bv += o.bv;
        self.lia += o.lia;
        self.solver.absorb(&o.solver);
        self.qcache.absorb(&o.qcache);
    }
}

/// Incremental SMT session counters (one `smt::session::Session` per
/// engine block; see DESIGN §10). Deterministic: the session is always on
/// and blocks verify sequentially within a case, so these render
/// byte-identically across worker counts and cache modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionMetrics {
    /// Distinct facts Tseitin-encoded into the retained clause database
    /// (each fact is encoded exactly once per session).
    pub facts_encoded: u64,
    /// Clauses in the retained database when the session was snapshotted —
    /// definitional clauses plus clauses learned across assumption solves.
    /// Summed over sessions by [`SessionMetrics::absorb`].
    pub clauses_retained: u64,
    /// Queries answered by an incremental assumption solve.
    pub assumption_solves: u64,
    /// Queries re-run on a fresh solver (proof-checking configurations,
    /// where an assumption solve cannot produce an RUP refutation).
    pub fallback_solves: u64,
}

impl SessionMetrics {
    /// Adds another record into this one.
    pub fn absorb(&mut self, o: &SessionMetrics) {
        self.facts_encoded += o.facts_encoded;
        self.clauses_retained += o.clauses_retained;
        self.assumption_solves += o.assumption_solves;
        self.fallback_solves += o.fallback_solves;
    }
}

/// Differential-testing counters: one record per fuzzing run (or per
/// opcode, absorbed upward). Every field is a deterministic function of
/// `(seed, budget, models)` — no wall-clock, no OS randomness — so the
/// rendered table is byte-identical across reruns and worker counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiffMetrics {
    /// Opcodes generated and traced.
    pub opcodes: u64,
    /// Opcodes the symbolic executor could not trace (counted, skipped).
    pub trace_errors: u64,
    /// Root-to-leaf trace paths enumerated.
    pub paths: u64,
    /// Paths whose constraint set was unsatisfiable (vacuous branches).
    pub vacuous: u64,
    /// Paths the solver could not decide (skipped, counted).
    pub unknown: u64,
    /// Satisfying models sampled from path constraints.
    pub models_sampled: u64,
    /// Concrete replays run against sampled models.
    pub replays: u64,
    /// Replays that diverged from the symbolic trace.
    pub divergences: u64,
}

impl DiffMetrics {
    /// Adds another record into this one.
    pub fn absorb(&mut self, o: &DiffMetrics) {
        self.opcodes += o.opcodes;
        self.trace_errors += o.trace_errors;
        self.paths += o.paths;
        self.vacuous += o.vacuous;
        self.unknown += o.unknown;
        self.models_sampled += o.models_sampled;
        self.replays += o.replays;
        self.divergences += o.divergences;
    }

    /// Renders the record as the `k=v` line used by `fig12 --difftest`
    /// (same vocabulary as the profile table stages).
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "opcodes={} trace_errors={} paths={} vacuous={} unknown={} \
             models_sampled={} replays={} divergences={}",
            self.opcodes,
            self.trace_errors,
            self.paths,
            self.vacuous,
            self.unknown,
            self.models_sampled,
            self.replays,
            self.divergences
        )
    }
}

/// The per-case, per-stage counter profile: everything `fig12 --profile`
/// prints for one Fig. 12 row. All fields are deterministic counters —
/// no wall-clock — so the rendering is byte-identical across `--jobs N`,
/// sequential, and warm-cache runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaseProfile {
    /// Mini-Sail model interpretation (symbolic, inside Isla).
    pub sail: SailMetrics,
    /// Symbolic execution.
    pub isla: IslaMetrics,
    /// Solver activity during symbolic execution (branch pruning).
    pub isla_smt: SolverMetrics,
    /// Proof automation.
    pub engine: EngineMetrics,
    /// Solver activity during proof automation.
    pub engine_smt: SolverMetrics,
    /// Incremental SMT sessions backing the proof automation.
    pub session: SessionMetrics,
    /// Certificate replay.
    pub cert: CertMetrics,
    /// Trace-cache traffic while building the case.
    pub cache: CacheMetrics,
    /// Solver query-result cache traffic (engine side conditions plus
    /// certificate replay). Unlike every other stage, hit/miss counts
    /// depend on which worker reached a shared query first — the row is
    /// documented as schedule-dependent and excluded from byte-identity
    /// checks, like `cache`.
    pub qcache: CacheMetrics,
}

impl CaseProfile {
    /// Renders this profile as the per-stage block of the profile table.
    /// Every pipeline stage appears on its own `  <stage>:` line (the CI
    /// smoke greps for each stage name).
    #[must_use]
    pub fn render(&self, case: &str) -> String {
        let mut s = String::new();
        s.push_str(&format!("case {case}\n"));
        s.push_str(&format!(
            "  sail    : steps={} calls={}\n",
            self.sail.steps, self.sail.calls
        ));
        s.push_str(&format!(
            "  isla    : runs={} branches_explored={} branches_pruned={} smt_queries={} events={}\n",
            self.isla.runs,
            self.isla.branches_explored,
            self.isla.branches_pruned,
            self.isla.smt_queries,
            self.isla.events
        ));
        s.push_str(&format!("  isla.smt: {}\n", self.isla_smt.render()));
        s.push_str(&format!(
            "  engine  : events={} instructions={} smt_queries={} lia_queries={} obligations={} \
             vacuous_branches={} blocks_parallel={}\n",
            self.engine.events,
            self.engine.instructions,
            self.engine.smt_queries,
            self.engine.lia_queries,
            self.engine.obligations,
            self.engine.vacuous_branches,
            self.engine.blocks_parallel
        ));
        s.push_str(&format!("  eng.smt : {}\n", self.engine_smt.render()));
        s.push_str(&format!(
            "  sess    : facts_encoded={} clauses_retained={} assumption_solves={} \
             fallback_solves={}\n",
            self.session.facts_encoded,
            self.session.clauses_retained,
            self.session.assumption_solves,
            self.session.fallback_solves
        ));
        s.push_str(&format!(
            "  cert    : replayed={} bv={} lia={}\n",
            self.cert.replayed, self.cert.bv, self.cert.lia
        ));
        s.push_str(&format!("  cert.smt: {}\n", self.cert.solver.render()));
        s.push_str(&format!(
            "  cache   : hits={} misses={}\n",
            self.cache.hits, self.cache.misses
        ));
        s.push_str(&format!(
            "  q.cache : hits={} misses={}\n",
            self.qcache.hits, self.qcache.misses
        ));
        s
    }

    /// The same profile as one JSON object. Stage names and counter keys
    /// are exactly the ones [`CaseProfile::render`] prints (one shared
    /// vocabulary with `BENCH.json` — see DESIGN §9), so text and JSON
    /// exports can be cross-checked field by field.
    #[must_use]
    pub fn to_json(&self, case: &str) -> String {
        let kv = |pairs: &[(&str, u64)]| {
            let body: Vec<String> = pairs.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
            format!("{{{}}}", body.join(","))
        };
        let solver = |m: &SolverMetrics| {
            kv(&[
                ("queries", m.queries),
                ("sat", m.sat),
                ("unsat", m.unsat),
                ("unknown", m.unknown),
                ("model_verifies", m.model_verifies),
                ("cnf_vars", m.cnf_vars),
                ("cnf_clauses", m.cnf_clauses),
                ("propagations", m.propagations),
                ("decisions", m.decisions),
                ("conflicts", m.conflicts),
                ("restarts", m.restarts),
                ("reduced", m.reduced),
                ("minimized", m.minimized),
                ("folded", m.folded),
                ("trimmed", m.trimmed),
            ])
        };
        format!(
            "{{\"case\":\"{}\",\"sail\":{},\"isla\":{},\"isla.smt\":{},\"engine\":{},\
             \"eng.smt\":{},\"sess\":{},\"cert\":{},\"cert.smt\":{},\"cache\":{},\
             \"q.cache\":{}}}",
            escape_json(case),
            kv(&[("steps", self.sail.steps), ("calls", self.sail.calls)]),
            kv(&[
                ("runs", self.isla.runs),
                ("branches_explored", self.isla.branches_explored),
                ("branches_pruned", self.isla.branches_pruned),
                ("smt_queries", self.isla.smt_queries),
                ("events", self.isla.events),
            ]),
            solver(&self.isla_smt),
            kv(&[
                ("events", self.engine.events),
                ("instructions", self.engine.instructions),
                ("smt_queries", self.engine.smt_queries),
                ("lia_queries", self.engine.lia_queries),
                ("obligations", self.engine.obligations),
                ("vacuous_branches", self.engine.vacuous_branches),
                ("blocks_parallel", self.engine.blocks_parallel),
            ]),
            solver(&self.engine_smt),
            kv(&[
                ("facts_encoded", self.session.facts_encoded),
                ("clauses_retained", self.session.clauses_retained),
                ("assumption_solves", self.session.assumption_solves),
                ("fallback_solves", self.session.fallback_solves),
            ]),
            kv(&[
                ("replayed", self.cert.replayed),
                ("bv", self.cert.bv),
                ("lia", self.cert.lia),
            ]),
            solver(&self.cert.solver),
            kv(&[("hits", self.cache.hits), ("misses", self.cache.misses)]),
            kv(&[("hits", self.qcache.hits), ("misses", self.qcache.misses)]),
        )
    }
}

/// Renders the whole profile table as one JSON array (the machine-readable
/// sibling of [`render_profiles`]).
#[must_use]
pub fn profiles_to_json(cases: &[(String, CaseProfile)]) -> String {
    let items: Vec<String> = cases.iter().map(|(name, p)| p.to_json(name)).collect();
    format!("[{}]", items.join(","))
}

/// Renders the whole profile table (one [`CaseProfile::render`] block per
/// case, in the given order).
#[must_use]
pub fn render_profiles(cases: &[(String, CaseProfile)]) -> String {
    let mut s = String::new();
    for (name, p) in cases {
        s.push_str(&p.render(name));
    }
    s
}

// ---------------------------------------------------------------------------
// Solver-query attribution
// ---------------------------------------------------------------------------

/// Deterministic per-query solver effort, aggregated under the query's
/// FNV-1a digest in a [`QueryTable`]. Wall-clock time is deliberately
/// absent: attribution tables must be byte-identical across worker
/// counts and reruns (time lives in the span layer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Times a query with this digest was issued.
    pub count: u64,
    /// CNF clauses produced by bit-blasting, cumulative.
    pub cnf_clauses: u64,
    /// Unit propagations, cumulative.
    pub propagations: u64,
    /// Decisions, cumulative.
    pub decisions: u64,
    /// Conflicts, cumulative.
    pub conflicts: u64,
    /// Occurrences answered from the shared query-result cache. The cache
    /// replays the original run's effort counters, so every other column
    /// is schedule-independent; this one depends on which worker reached
    /// a shared query first and is the hot-query table's one documented
    /// schedule-dependent column (excluded from [`QueryStats::effort`]).
    pub hits: u64,
}

impl QueryStats {
    /// Adds another record into this one.
    pub fn absorb(&mut self, o: &QueryStats) {
        self.count += o.count;
        self.cnf_clauses += o.cnf_clauses;
        self.propagations += o.propagations;
        self.decisions += o.decisions;
        self.conflicts += o.conflicts;
        self.hits += o.hits;
    }

    /// The deterministic hotness key: queries are ranked by SAT-search
    /// effort first (conflicts, then propagations and decisions), CNF
    /// size next, repetition count last.
    #[must_use]
    pub fn effort(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.conflicts,
            self.propagations,
            self.decisions,
            self.cnf_clauses,
            self.count,
        )
    }
}

/// Aggregation table: solver-query digest → cumulative [`QueryStats`].
/// A `BTreeMap` keyed by digest, so iteration (and therefore rendering)
/// never depends on insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryTable {
    /// digest → aggregated per-query effort.
    pub entries: BTreeMap<u64, QueryStats>,
}

impl QueryTable {
    /// Records one query occurrence under `digest`.
    pub fn record(&mut self, digest: u64, stats: QueryStats) {
        self.entries.entry(digest).or_default().absorb(&stats);
    }

    /// Merges another table into this one.
    pub fn absorb(&mut self, o: &QueryTable) {
        for (d, s) in &o.entries {
            self.entries.entry(*d).or_default().absorb(s);
        }
    }

    /// Distinct query digests seen.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no query was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `k` hottest queries, ranked by [`QueryStats::effort`]
    /// descending with the digest as the final (ascending) tiebreak —
    /// a total order, so the result is deterministic.
    #[must_use]
    pub fn top(&self, k: usize) -> Vec<(u64, QueryStats)> {
        let mut all: Vec<(u64, QueryStats)> = self.entries.iter().map(|(d, s)| (*d, *s)).collect();
        all.sort_by(|a, b| b.1.effort().cmp(&a.1.effort()).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    /// Renders the top-`k` table under a `hot queries (<scope>, …)`
    /// header. Counters only — byte-identical across runs.
    #[must_use]
    pub fn render_top(&self, scope: &str, k: usize) -> String {
        let top = self.top(k);
        let mut s = format!(
            "hot queries ({scope}, top {} of {} by solver effort):\n",
            top.len(),
            self.len()
        );
        for (digest, q) in top {
            s.push_str(&format!(
                "  #x{digest:016x} count={} clauses={} props={} decs={} conflicts={} hits={}\n",
                q.count, q.cnf_clauses, q.propagations, q.decisions, q.conflicts, q.hits
            ));
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Proof-search trace
// ---------------------------------------------------------------------------

/// What one proof-search trace event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofStep {
    /// A proof rule fired (one trace event or context query handled).
    Rule,
    /// A side-condition obligation was opened.
    Open,
    /// The open obligation was discharged (and logged to the certificate).
    Discharge,
    /// The open obligation failed to prove (the engine reports an error,
    /// or — for `prove_mixed` — falls back to the next theory).
    Fail,
    /// A branch was abandoned (vacuous assert — the non-backtracking
    /// engine's analogue of a search backtrack).
    Backtrack,
}

impl ProofStep {
    /// Fixed-width tag used in the rendering.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            ProofStep::Rule => "rule",
            ProofStep::Open => "open",
            ProofStep::Discharge => "discharge",
            ProofStep::Fail => "fail",
            ProofStep::Backtrack => "backtrack",
        }
    }
}

/// One structured proof-search trace event. Every field is a
/// deterministic function of the verification input — no clocks, no
/// addresses — so a rendered trace is byte-identical across reruns,
/// worker counts, and cache states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofEvent {
    /// What happened.
    pub step: ProofStep,
    /// Human-readable detail: the rule name and its subject, or the
    /// obligation's theory and goal.
    pub label: String,
    /// FNV-1a digest of the solver query this event triggered, when it
    /// triggered one (`Open`/`Discharge`/`Fail` of solver-backed
    /// obligations) — the join key into the [`QueryTable`].
    pub digest: Option<u64>,
}

impl ProofEvent {
    /// An event without a query digest.
    #[must_use]
    pub fn new(step: ProofStep, label: impl Into<String>) -> ProofEvent {
        ProofEvent {
            step,
            label: label.into(),
            digest: None,
        }
    }

    /// An event carrying the digest of the solver query it triggered.
    #[must_use]
    pub fn with_digest(step: ProofStep, label: impl Into<String>, digest: u64) -> ProofEvent {
        ProofEvent {
            step,
            label: label.into(),
            digest: Some(digest),
        }
    }
}

/// Renders a proof-search trace, one event per line:
/// `<seq> <tag> <label> [#x<digest>]`. Deterministic by construction.
#[must_use]
pub fn render_proof_trace(events: &[ProofEvent]) -> String {
    let mut s = String::new();
    for (i, ev) in events.iter().enumerate() {
        s.push_str(&format!("{i:>5} {:<9} {}", ev.step.tag(), ev.label));
        if let Some(d) = ev.digest {
            s.push_str(&format!(" #x{d:016x}"));
        }
        s.push('\n');
    }
    s
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// One closed wall-clock span, timestamped in microseconds relative to
/// the owning recorder's epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. `"verify:hvc"`).
    pub name: String,
    /// Category (e.g. `"pipeline"`, `"case"`).
    pub cat: &'static str,
    /// Start offset from the recorder epoch, µs.
    pub ts_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// Logical thread id (0 = main, n = `islaris-worker-n`).
    pub tid: u32,
}

/// Anything that can accept closed spans. [`Recorder`] is the only
/// implementation in-tree; the trait exists so call sites stay decoupled
/// from the storage policy.
pub trait SpanSink: Sync {
    /// Records one closed span.
    fn record(&self, span: SpanRecord);
}

/// Collects spans from any thread. Cheap to share (`&Recorder` is `Sync`);
/// when profiling is off, callers hold `None` and pay only an `Option`
/// branch — this type is never constructed.
#[derive(Debug)]
pub struct Recorder {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A recorder whose epoch is "now".
    #[must_use]
    pub fn new() -> Self {
        Recorder {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// The recorder's epoch (spans are timestamped relative to it).
    #[must_use]
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Opens a span now; it closes (and is recorded) when the guard drops.
    /// The logical thread id is derived from the current thread's name
    /// (`islaris-worker-n` → `n`, anything else → 0).
    #[must_use]
    pub fn span(&self, name: impl Into<String>, cat: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            rec: self,
            name: name.into(),
            cat,
            start: Instant::now(),
            tid: current_tid(),
        }
    }

    /// Records a span from explicit instants (both must be at or after
    /// the epoch).
    pub fn record_between(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        start: Instant,
        end: Instant,
    ) {
        let ts_us = us_between(self.epoch, start);
        let dur_us = us_between(start, end);
        self.record(SpanRecord {
            name: name.into(),
            cat,
            ts_us,
            dur_us,
            tid: current_tid(),
        });
    }

    /// All spans recorded so far, sorted by (start, tid, name) so the
    /// ordering does not depend on lock-acquisition order.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut v = self
            .spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        v.sort_by(|a, b| {
            (a.ts_us, a.tid, &a.name, a.dur_us).cmp(&(b.ts_us, b.tid, &b.name, b.dur_us))
        });
        v
    }

    /// Exports every span as Chrome trace-event JSON (`chrome://tracing`
    /// / Perfetto "JSON Array with metadata" format, complete `X` events).
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":{}}}",
            chrome_trace_events(&self.spans())
        )
    }
}

/// Renders spans as a Chrome trace-event JSON *array* (complete `X`
/// events, pid 1) — the shared core of [`Recorder::chrome_trace`] and
/// the per-request export in [`trace`].
#[must_use]
pub fn chrome_trace_events(spans: &[SpanRecord]) -> String {
    let mut s = String::from("[");
    for (i, sp) in spans.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{}}}",
            escape_json(&sp.name),
            escape_json(sp.cat),
            sp.ts_us,
            sp.dur_us,
            sp.tid
        ));
    }
    s.push(']');
    s
}

impl SpanSink for Recorder {
    fn record(&self, span: SpanRecord) {
        self.spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(span);
    }
}

/// RAII guard from [`Recorder::span`]: records the span on drop.
pub struct SpanGuard<'a> {
    rec: &'a Recorder,
    name: String,
    cat: &'static str,
    start: Instant,
    tid: u32,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let ts_us = us_between(self.rec.epoch, self.start);
        let dur_us = us_between(self.start, Instant::now());
        self.rec.record(SpanRecord {
            name: std::mem::take(&mut self.name),
            cat: self.cat,
            ts_us,
            dur_us,
            tid: self.tid,
        });
    }
}

fn us_between(earlier: Instant, later: Instant) -> u64 {
    later
        .checked_duration_since(earlier)
        .map_or(0, |d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
}

fn current_tid() -> u32 {
    std::thread::current()
        .name()
        .and_then(|n| {
            // Batch-scheduler helpers and resident pool workers both get
            // a stable logical id; anything else (main, connection
            // threads) is tid 0.
            n.strip_prefix("islaris-worker-")
                .or_else(|| n.strip_prefix("islaris-pool-"))
        })
        .and_then(|n| n.parse().ok())
        .unwrap_or(0)
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// JSON validation (for the CI profile smoke)
// ---------------------------------------------------------------------------

/// Validates that `s` is one complete JSON value (object, array, string,
/// number, `true`/`false`/`null`) with nothing but whitespace after it.
/// A recursive-descent scanner, not a parser: it builds no tree, it only
/// accepts or rejects — enough for the CI smoke to assert the emitted
/// Chrome trace is well-formed without external tooling.
///
/// # Errors
///
/// Returns `(byte offset, message)` for the first violation.
pub fn validate_json(s: &str) -> Result<(), (usize, String)> {
    let b = s.as_bytes();
    let mut i = 0;
    skip_ws(b, &mut i);
    json_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err((i, "trailing content after JSON value".into()));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn json_value(b: &[u8], i: &mut usize) -> Result<(), (usize, String)> {
    match b.get(*i) {
        Some(b'{') => json_object(b, i),
        Some(b'[') => json_array(b, i),
        Some(b'"') => json_string(b, i),
        Some(b't') => json_lit(b, i, "true"),
        Some(b'f') => json_lit(b, i, "false"),
        Some(b'n') => json_lit(b, i, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => json_number(b, i),
        Some(c) => Err((*i, format!("unexpected byte {:?}", *c as char))),
        None => Err((*i, "unexpected end of input".into())),
    }
}

fn json_object(b: &[u8], i: &mut usize) -> Result<(), (usize, String)> {
    *i += 1; // '{'
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        json_string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err((*i, "expected ':' in object".into()));
        }
        *i += 1;
        skip_ws(b, i);
        json_value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err((*i, "expected ',' or '}' in object".into())),
        }
    }
}

fn json_array(b: &[u8], i: &mut usize) -> Result<(), (usize, String)> {
    *i += 1; // '['
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        json_value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err((*i, "expected ',' or ']' in array".into())),
        }
    }
}

fn json_string(b: &[u8], i: &mut usize) -> Result<(), (usize, String)> {
    if b.get(*i) != Some(&b'"') {
        return Err((*i, "expected string".into()));
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        for k in 1..=4 {
                            if !b.get(*i + k).is_some_and(u8::is_ascii_hexdigit) {
                                return Err((*i, "bad \\u escape".into()));
                            }
                        }
                        *i += 5;
                    }
                    _ => return Err((*i, "bad escape".into())),
                }
            }
            0x00..=0x1f => return Err((*i, "raw control character in string".into())),
            _ => *i += 1,
        }
    }
    Err((*i, "unterminated string".into()))
}

fn json_number(b: &[u8], i: &mut usize) -> Result<(), (usize, String)> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let digits = |b: &[u8], i: &mut usize| {
        let s = *i;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
        *i > s
    };
    if !digits(b, i) {
        return Err((start, "malformed number".into()));
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if !digits(b, i) {
            return Err((start, "malformed number".into()));
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        if !digits(b, i) {
            return Err((start, "malformed number".into()));
        }
    }
    Ok(())
}

fn json_lit(b: &[u8], i: &mut usize, lit: &str) -> Result<(), (usize, String)> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err((*i, format!("expected `{lit}`")))
    }
}

// ---------------------------------------------------------------------------
// Hashing (certificate digests)
// ---------------------------------------------------------------------------

/// FNV-1a over a byte string: the in-tree stable hash used for
/// certificate order digests (nothing cryptographic — tamper *evidence*,
/// not tamper *proofing*; the semantic re-check is the real gate).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_metrics_absorb_sums_fields() {
        let mut a = SolverMetrics {
            queries: 1,
            sat: 1,
            propagations: 10,
            ..Default::default()
        };
        let b = SolverMetrics {
            queries: 2,
            unsat: 1,
            decisions: 4,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.queries, 3);
        assert_eq!(a.sat, 1);
        assert_eq!(a.unsat, 1);
        assert_eq!(a.propagations, 10);
        assert_eq!(a.decisions, 4);
    }

    #[test]
    fn cache_metrics_rates() {
        let c = CacheMetrics { hits: 3, misses: 1 };
        assert_eq!(c.lookups(), 4);
        assert!((c.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheMetrics::default().hit_rate(), 0.0);
    }

    #[test]
    fn diff_metrics_absorb_and_render() {
        let mut a = DiffMetrics {
            opcodes: 2,
            paths: 5,
            divergences: 1,
            ..Default::default()
        };
        let b = DiffMetrics {
            opcodes: 3,
            models_sampled: 4,
            replays: 4,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.opcodes, 5);
        assert_eq!(a.paths, 5);
        assert_eq!(a.models_sampled, 4);
        assert_eq!(a.divergences, 1);
        let r = a.render();
        for key in [
            "opcodes=",
            "trace_errors=",
            "paths=",
            "vacuous=",
            "unknown=",
            "models_sampled=",
            "replays=",
            "divergences=",
        ] {
            assert!(r.contains(key), "missing {key} in {r}");
        }
    }

    #[test]
    fn profile_render_mentions_every_stage() {
        let r = CaseProfile::default().render("hvc");
        for stage in [
            "sail", "isla", "isla.smt", "engine", "eng.smt", "cert", "cache",
        ] {
            assert!(r.contains(stage), "missing stage {stage} in {r}");
        }
        assert!(r.starts_with("case hvc\n"));
    }

    #[test]
    fn recorder_collects_and_exports_spans() {
        let rec = Recorder::new();
        {
            let _g = rec.span("outer", "test");
            let _h = rec.span("inner", "test");
        }
        let t0 = Instant::now();
        rec.record_between("explicit", "test", t0, t0);
        let spans = rec.spans();
        assert_eq!(spans.len(), 3);
        let json = rec.chrome_trace();
        validate_json(&json).expect("chrome trace is valid JSON");
        assert!(json.contains("\"name\":\"outer\""));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn span_names_are_escaped() {
        let rec = Recorder::new();
        drop(rec.span("we\"ird\\name\n", "test"));
        let json = rec.chrome_trace();
        validate_json(&json).expect("escaped trace is valid JSON");
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        for ok in [
            "{}",
            "[]",
            "  {\"a\": [1, 2.5, -3e4, \"x\\u00ff\", true, false, null]}  ",
            "\"lone string\"",
            "-0.5",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok}: {e:?}"));
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1} trailing",
            "\"unterminated",
            "01e",
            "nul",
            "{'single': 1}",
        ] {
            assert!(validate_json(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn fnv1a_matches_reference_vector() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn ratios_survive_zero_denominators() {
        // The hardening contract: a ratio with nothing underneath renders
        // `-`, never `NaN` or a division panic.
        assert_eq!(percent(0, 0), "-");
        assert_eq!(percent(5, 0), "-");
        assert_eq!(percent(3, 4), "75%");
        assert_eq!(percent(0, 7), "0%");
        assert_eq!(CacheMetrics::default().hit_rate_str(), "-");
        assert_eq!(CacheMetrics { hits: 1, misses: 3 }.hit_rate_str(), "25%");
        assert!(!CacheMetrics::default().hit_rate().is_nan());
    }

    #[test]
    fn query_table_ranks_and_renders_deterministically() {
        let mut t = QueryTable::default();
        t.record(
            0xb,
            QueryStats {
                count: 1,
                conflicts: 9,
                ..Default::default()
            },
        );
        t.record(
            0xa,
            QueryStats {
                count: 1,
                conflicts: 2,
                propagations: 100,
                ..Default::default()
            },
        );
        // Same digest again: aggregates, not duplicates.
        t.record(
            0xa,
            QueryStats {
                count: 1,
                conflicts: 8,
                ..Default::default()
            },
        );
        assert_eq!(t.len(), 2);
        let top = t.top(10);
        assert_eq!(top[0].0, 0xa, "10 conflicts outrank 9");
        assert_eq!(top[0].1.count, 2);
        assert_eq!(top[1].0, 0xb);
        // Insertion in the other order renders the same bytes.
        let mut t2 = QueryTable::default();
        for (d, s) in t.entries.iter().rev() {
            t2.record(*d, *s);
        }
        assert_eq!(t.render_top("case", 2), t2.render_top("case", 2));
        assert!(t
            .render_top("case", 1)
            .starts_with("hot queries (case, top 1 of 2"));
        // Ties break on the digest, ascending.
        let mut tie = QueryTable::default();
        tie.record(
            0x2,
            QueryStats {
                count: 1,
                ..Default::default()
            },
        );
        tie.record(
            0x1,
            QueryStats {
                count: 1,
                ..Default::default()
            },
        );
        assert_eq!(tie.top(2)[0].0, 0x1);
    }

    #[test]
    fn query_table_absorb_merges() {
        let mut a = QueryTable::default();
        a.record(
            1,
            QueryStats {
                count: 1,
                cnf_clauses: 10,
                ..Default::default()
            },
        );
        let mut b = QueryTable::default();
        b.record(
            1,
            QueryStats {
                count: 2,
                cnf_clauses: 20,
                ..Default::default()
            },
        );
        b.record(
            2,
            QueryStats {
                count: 1,
                ..Default::default()
            },
        );
        a.absorb(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.entries[&1].count, 3);
        assert_eq!(a.entries[&1].cnf_clauses, 30);
    }

    #[test]
    fn proof_trace_renders_one_line_per_event() {
        let events = vec![
            ProofEvent::new(ProofStep::Rule, "hoare-read-reg R0"),
            ProofEvent::with_digest(ProofStep::Discharge, "bv (= v0 #x05)", 0xdead),
            ProofEvent::new(ProofStep::Backtrack, "vacuous assert"),
        ];
        let r = render_proof_trace(&events);
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("rule"));
        assert!(lines[1].contains("#x000000000000dead"));
        assert!(lines[2].contains("backtrack"));
        assert!(lines[0].starts_with("    0 "));
    }

    #[test]
    fn profile_json_agrees_with_text_rendering() {
        // Build a profile with distinct values everywhere so a swapped
        // field cannot cancel out.
        let mut p = CaseProfile::default();
        p.sail = SailMetrics { steps: 1, calls: 2 };
        p.isla = IslaMetrics {
            runs: 3,
            branches_explored: 4,
            branches_pruned: 5,
            smt_queries: 6,
            events: 7,
        };
        p.isla_smt.queries = 8;
        p.isla_smt.conflicts = 9;
        p.engine.events = 10;
        p.engine.obligations = 11;
        p.engine_smt.propagations = 12;
        p.cert.replayed = 13;
        p.cert.solver.decisions = 14;
        p.cache = CacheMetrics {
            hits: 15,
            misses: 16,
        };

        let text = p.render("hvc (Arm)");
        let json = p.to_json("hvc (Arm)");
        validate_json(&json).expect("profile JSON is valid");
        let parsed = parse_json(&json).expect("profile JSON parses");
        assert_eq!(parsed.get("case").and_then(Json::as_str), Some("hvc (Arm)"));

        // Every `k=v` pair the text rendering prints must appear in the
        // JSON under its stage, with the same value.
        for line in text.lines().skip(1) {
            let (stage, counters) = line.trim_start().split_once(':').expect("stage line");
            let stage_obj = parsed
                .get(stage.trim())
                .unwrap_or_else(|| panic!("stage `{}` missing from JSON", stage.trim()));
            for kv in counters.split_whitespace() {
                let (k, v) = kv.split_once('=').expect("k=v");
                let v: u64 = v.parse().expect("numeric counter");
                assert_eq!(
                    stage_obj.get(k).and_then(Json::as_u64),
                    Some(v),
                    "stage `{}` counter `{k}`",
                    stage.trim()
                );
            }
        }
        // And the array form is valid JSON too.
        let arr = profiles_to_json(&[("a".into(), p), ("b".into(), CaseProfile::default())]);
        validate_json(&arr).expect("profile array is valid JSON");
        assert_eq!(parse_json(&arr).unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn json_validator_rejects_every_truncation() {
        // Satellite hardening: any strict prefix of a valid document must
        // be rejected (catches scanner states that accept early EOF).
        let doc = r#"{"a":[1,2.5,{"b":"xÿ\n"},[true,false,null]],"c":-3e4}"#;
        validate_json(doc).expect("full document is valid");
        for cut in 1..doc.len() {
            if !doc.is_char_boundary(cut) {
                continue;
            }
            assert!(
                validate_json(&doc[..cut]).is_err(),
                "truncation at byte {cut} accepted: {:?}",
                &doc[..cut]
            );
        }
    }

    #[test]
    fn json_validator_escape_edge_cases() {
        for ok in [
            "\" \"",
            r#""\\\"\/\b\f\n\r\t""#,
            r#"["deep",[[[[[[[["nest"]]]]]]]]]"#,
            "[[],[],{}]",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok}: {e:?}"));
        }
        for bad in [
            r#""\u00g0""#,
            r#""\u00f""#,
            r#""\x41""#,
            "\"raw\ttab\"",
            "[[1]",
            "{\"a\":1",
        ] {
            assert!(validate_json(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn worker_thread_names_map_to_tids() {
        let rec = std::sync::Arc::new(Recorder::new());
        let r2 = rec.clone();
        std::thread::Builder::new()
            .name("islaris-worker-7".into())
            .spawn(move || drop(r2.span("in-worker", "test")))
            .expect("spawn")
            .join()
            .expect("join");
        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].tid, 7);
    }
}
