//! Per-request tracing for the verification service: a bounded ring
//! journal of the last N handled jobs, each holding the request's
//! wall-clock span records (parse, queue-wait, exec) and — for case
//! jobs — the deterministic per-stage counter profile.
//!
//! The export format is the same Chrome trace-event JSON the `--profile`
//! mode emits ([`crate::Recorder::chrome_trace`]): `GET /trace/<id>`
//! answers one request's spans as complete `X` events, with the trace
//! id, job label, response status, and profile carried in `otherData`
//! (the documented metadata slot of the "JSON Object Format"). Requests
//! that never become pool jobs — malformed framing, validation errors —
//! **never allocate a journal slot**; the journal records work, not
//! noise, and the fault suite pins that.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::{obj, Json};
use crate::{chrome_trace_events, SpanRecord};

/// One journaled request: identity, outcome, and its span records.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Trace id (sequence-FNV; rendered as 16 lowercase hex digits).
    pub trace_id: u64,
    /// Request sequence number (1-based, assignment order).
    pub seq: u64,
    /// Job label, e.g. `case:hvc` or `trace:arm:0x910043ff`.
    pub label: String,
    /// Response status the job produced.
    pub status: u16,
    /// Wall-clock spans, timestamped relative to the request's own epoch.
    pub spans: Vec<SpanRecord>,
    /// The deterministic per-stage counter profile (case jobs only).
    pub profile: Option<Json>,
}

/// A bounded ring of the last `cap` [`TraceRecord`]s. Pushing beyond
/// capacity evicts the oldest record and counts the eviction.
#[derive(Debug)]
pub struct TraceJournal {
    cap: usize,
    ring: Mutex<VecDeque<TraceRecord>>,
    evicted: AtomicU64,
}

impl TraceJournal {
    /// A journal holding at most `cap` records (`cap == 0` keeps one).
    #[must_use]
    pub fn new(cap: usize) -> TraceJournal {
        let cap = cap.max(1);
        TraceJournal {
            cap,
            ring: Mutex::new(VecDeque::with_capacity(cap)),
            evicted: AtomicU64::new(0),
        }
    }

    /// The bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Appends a record, evicting the oldest at capacity.
    pub fn push(&self, rec: TraceRecord) {
        let mut ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if ring.len() == self.cap {
            ring.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(rec);
    }

    /// Looks up a record by trace id (newest wins on the astronomically
    /// unlikely collision).
    #[must_use]
    pub fn get(&self, trace_id: u64) -> Option<TraceRecord> {
        self.ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .rev()
            .find(|r| r.trace_id == trace_id)
            .cloned()
    }

    /// Records currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// `true` when no record has been journaled yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted by the ring bound so far.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// An index of the journal, oldest first: one summary object per
    /// record (`trace`, `seq`, `label`, `status`) — the body of
    /// `GET /trace`.
    #[must_use]
    pub fn index_json(&self) -> Json {
        let ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let entries: Vec<Json> = ring
            .iter()
            .map(|r| {
                obj(vec![
                    ("trace", Json::Str(format!("{:016x}", r.trace_id))),
                    ("seq", Json::Num(r.seq as f64)),
                    ("label", Json::Str(r.label.clone())),
                    ("status", Json::Num(f64::from(r.status))),
                ])
            })
            .collect();
        obj(vec![
            ("capacity", Json::Num(self.cap as f64)),
            ("evicted", Json::Num(self.evicted() as f64)),
            ("entries", Json::Arr(entries)),
        ])
    }
}

/// Renders one journaled request as Chrome trace-event JSON ("JSON
/// Object Format"): the span records as complete `X` events (the same
/// shape as [`crate::Recorder::chrome_trace`]) plus `otherData` with
/// the trace identity and, when present, the per-stage profile.
#[must_use]
pub fn chrome_trace_for(rec: &TraceRecord) -> String {
    let mut other = vec![
        ("trace_id", Json::Str(format!("{:016x}", rec.trace_id))),
        ("seq", Json::Num(rec.seq as f64)),
        ("label", Json::Str(rec.label.clone())),
        ("status", Json::Num(f64::from(rec.status))),
    ];
    if let Some(p) = &rec.profile {
        other.push(("profile", p.clone()));
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"otherData\":{},\"traceEvents\":{}}}",
        obj(other).render(),
        chrome_trace_events(&rec.spans)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_json;

    fn rec(id: u64, seq: u64) -> TraceRecord {
        TraceRecord {
            trace_id: id,
            seq,
            label: format!("case:c{seq}"),
            status: 200,
            spans: vec![SpanRecord {
                name: "exec".into(),
                cat: "pool",
                ts_us: 3,
                dur_us: 14,
                tid: 1,
            }],
            profile: Some(obj(vec![("sail", Json::Num(2.0))])),
        }
    }

    #[test]
    fn ring_bound_evicts_oldest_and_counts() {
        let j = TraceJournal::new(2);
        j.push(rec(1, 1));
        j.push(rec(2, 2));
        j.push(rec(3, 3));
        assert_eq!(j.len(), 2);
        assert_eq!(j.evicted(), 1);
        assert!(j.get(1).is_none(), "oldest evicted");
        assert_eq!(j.get(3).unwrap().seq, 3);
        let idx = j.index_json().render();
        assert!(idx.contains("\"evicted\":1"), "{idx}");
        assert!(idx.contains("0000000000000002"), "{idx}");
    }

    #[test]
    fn chrome_export_is_valid_json_with_identity_and_profile() {
        let r = rec(0xdead_beef, 7);
        let out = chrome_trace_for(&r);
        validate_json(&out).expect("valid chrome trace");
        assert!(out.contains("\"trace_id\":\"00000000deadbeef\""), "{out}");
        assert!(out.contains("\"ph\":\"X\""), "{out}");
        assert!(out.contains("\"profile\":{\"sail\":2}"), "{out}");
        assert!(out.contains("\"label\":\"case:c7\""), "{out}");
    }
}
