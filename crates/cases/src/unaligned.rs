//! The unaligned-access case study (§6: "Unaligned access faults").
//!
//! A misaligned `str` under an Armv8-A configuration with SCTLR_EL2.A = 1:
//! the verification proves the exception is taken to the correct vector
//! slot with the PC, PSTATE, syndrome, and fault-address registers updated
//! — entirely through the model's exception-entry path.

use std::collections::BTreeMap;
use std::sync::Arc;

use islaris_asm::aarch64::{self as a64, XReg};
use islaris_asm::{Asm, Program};
use islaris_bv::Bv;
use islaris_core::{build, Atom, BlockAnn, NoIo, Param, ProgramSpec, SpecDef, SpecTable};
use islaris_isla::IslaConfig;
use islaris_itl::Reg;
use islaris_models::ARM;
use islaris_smt::{Expr, Sort, Var};

use crate::report::{run_case, trace_program_map_with, CaseArtifacts, CaseCtx, CaseOutcome};

/// Address of the faulting store.
pub const BASE: u64 = 0x4_0000;
/// The installed vector base.
pub const VBAR: u64 = 0xA_0000;
/// Synchronous exception from the current EL with SP_ELx: vector + 0x200.
pub const HANDLER: u64 = VBAR + 0x200;

/// Assembles the single faulting instruction: `str x0, [x1]`.
///
/// # Panics
///
/// Panics only on encoder bugs.
#[must_use]
pub fn program() -> Program {
    let mut asm = Asm::new(BASE);
    asm.put_or(a64::str_imm(XReg(0), XReg(1), 0));
    asm.finish().expect("assembles")
}

const A: Var = Var(0); // the (misaligned) address
const X0: Var = Var(1);
const G1: Var = Var(2);
const G2: Var = Var(3);
const G3: Var = Var(4);
const G4: Var = Var(5);
const H0: Var = Var(6);
const HS: Var = Var(8);

fn pstate_concrete() -> Vec<Atom> {
    // The Isla configuration fixes PSTATE; the spec owns the matching
    // points-to assertions (the assume-reg obligations of Fig. 5).
    let mut v = vec![
        build::field("PSTATE", "EL", Expr::bv(2, 0b10)),
        build::field("PSTATE", "SP", Expr::bv(1, 1)),
        build::field("PSTATE", "nRW", Expr::bv(1, 0)),
    ];
    for f in ["N", "Z", "C", "V", "D", "A", "I", "F"] {
        v.push(build::field("PSTATE", f, Expr::bv(1, 0)));
    }
    v
}

/// The Isla configuration: alignment checking on, concrete PSTATE.
#[must_use]
pub fn config() -> IslaConfig {
    let mut cfg = IslaConfig::new(ARM)
        .assume_reg("PSTATE.EL", Bv::new(2, 0b10))
        .assume_reg("PSTATE.SP", Bv::new(1, 1))
        .assume_reg("PSTATE.nRW", Bv::new(1, 0))
        .assume_reg("SCTLR_EL2", Bv::new(64, 0b10))
        .assume_reg("VBAR_EL2", Bv::new(64, VBAR as u128));
    for f in ["N", "Z", "C", "V", "D", "A", "I", "F"] {
        cfg = cfg.assume_reg(&format!("PSTATE.{f}"), Bv::new(1, 0));
    }
    cfg
}

/// Builds the spec table.
#[must_use]
pub fn specs() -> SpecTable {
    let mut t = SpecTable::new();
    let mut pre = vec![
        build::reg_var("R0", X0),
        build::reg_var("R1", A),
        // The address is misaligned for an 8-byte store.
        Atom::Pure(Expr::not(Expr::eq(
            Expr::extract(2, 0, Expr::var(A)),
            Expr::bv(3, 0),
        ))),
        build::reg("SCTLR_EL2", Expr::bv(64, 0b10)),
        build::reg("VBAR_EL2", Expr::bv(64, VBAR as u128)),
        build::reg_var("SPSR_EL2", G1),
        build::reg_var("ELR_EL2", G2),
        build::reg_var("ESR_EL2", G3),
        build::reg_var("FAR_EL2", G4),
    ];
    pre.extend(pstate_concrete());
    t.add(SpecDef {
        name: "fault_pre".into(),
        params: vec![
            Param::Bv(A, Sort::BitVec(64)),
            Param::Bv(X0, Sort::BitVec(64)),
            Param::Bv(G1, Sort::BitVec(64)),
            Param::Bv(G2, Sort::BitVec(64)),
            Param::Bv(G3, Sort::BitVec(64)),
            Param::Bv(G4, Sort::BitVec(64)),
        ],
        atoms: pre,
    });
    // At the handler: syndrome/fault-address/return registers set, EL2h
    // with interrupts masked, PSTATE saved into SPSR_EL2.
    let post = vec![
        build::reg_var("R0", H0),
        // R1 still holds the faulting address; binding A here ties the
        // FAR check below to it.
        build::reg_var("R1", A),
        // ESR: data abort, same EL, alignment fault (EC=0x25, IL, DFSC=0x21).
        build::reg("ESR_EL2", Expr::bv(64, 0x9600_0021)),
        Atom::Reg(Reg::new("FAR_EL2"), Expr::var(A)),
        build::reg("ELR_EL2", Expr::bv(64, BASE as u128)),
        // SPSR captures the pre-fault PSTATE: EL2 (bits 3:2 = 10), SP = 1.
        build::reg("SPSR_EL2", Expr::bv(64, 0b1001)),
        build::field("PSTATE", "EL", Expr::bv(2, 0b10)),
        build::field("PSTATE", "SP", Expr::bv(1, 1)),
        build::field("PSTATE", "D", Expr::bv(1, 1)),
        build::field("PSTATE", "A", Expr::bv(1, 1)),
        build::field("PSTATE", "I", Expr::bv(1, 1)),
        build::field("PSTATE", "F", Expr::bv(1, 1)),
        build::reg_var("SCTLR_EL2", HS),
    ];
    t.add(SpecDef {
        name: "handler".into(),
        params: vec![
            Param::Bv(A, Sort::BitVec(64)),
            Param::Bv(H0, Sort::BitVec(64)),
            Param::Bv(HS, Sort::BitVec(64)),
        ],
        atoms: post,
    });
    t
}

/// Builds the full case study.
#[must_use]
pub fn build_case() -> CaseArtifacts {
    build_case_with(&CaseCtx::default())
}

/// [`build_case`] under an explicit build context (shared trace cache,
/// per-instruction worker count).
#[must_use]
pub fn build_case_with(ctx: &CaseCtx) -> CaseArtifacts {
    let program = program();
    let mut cfg = config();
    cfg.solver.sat = ctx.sat;
    let (instrs, isla_stats, cache) = trace_program_map_with(ctx, &cfg, &program);
    let mut blocks = BTreeMap::new();
    blocks.insert(
        BASE,
        BlockAnn {
            spec: "fault_pre".into(),
            verify: true,
        },
    );
    blocks.insert(
        HANDLER,
        BlockAnn {
            spec: "handler".into(),
            verify: false,
        },
    );
    let prog_spec = ProgramSpec {
        pc: Reg::new(ARM.pc),
        instrs,
        blocks,
        specs: specs(),
    };
    CaseArtifacts {
        name: "unaligned",
        isa: "Arm",
        program,
        prog_spec,
        protocol: Arc::new(NoIo),
        isla_stats,
        cache,
        sat: ctx.sat,
    }
}

/// Verifies the case.
#[must_use]
pub fn run() -> CaseOutcome {
    run_case(&build_case()).0
}
