//! The rbit case study (§6: "C inline assembly").
//!
//! A compiled C function whose body is an inline `rbit`. The trace's value
//! for the result is Isla's bit-reversal term; the specification instead
//! states the *intuitive* bit-by-bit characterisation — 64 pure equations
//! `y[i] = x[63−i]` — so the side-condition solver carries the proof,
//! reproducing the paper's observation that this case is tiny in code but
//! heavy in bitvector side conditions (its Fig. 12 row spends 73s in the
//! solver).

use std::collections::BTreeMap;
use std::sync::Arc;

use islaris_asm::aarch64::{self as a64, XReg};
use islaris_asm::{Asm, Program};
use islaris_core::{build, Arg, Atom, BlockAnn, NoIo, Param, ProgramSpec, SpecDef, SpecTable};
use islaris_isla::IslaConfig;
use islaris_itl::Reg;
use islaris_models::ARM;
use islaris_smt::{Expr, Sort, Var};

use crate::report::{run_case, trace_program_map_with, CaseArtifacts, CaseCtx, CaseOutcome};

/// Code base address.
pub const BASE: u64 = 0x3_0000;

/// Assembles `rbit x0, x0; ret`.
///
/// # Panics
///
/// Panics only on encoder bugs.
#[must_use]
pub fn program() -> Program {
    let mut asm = Asm::new(BASE);
    asm.label("rbit_fn");
    asm.put(a64::rbit(XReg(0), XReg(0)));
    asm.put(a64::ret(XReg(30)));
    asm.finish().expect("rbit assembles")
}

const X: Var = Var(0);
const R: Var = Var(1);
const Y: Var = Var(2);
const Q30: Var = Var(3);

/// Builds the spec table. The postcondition relates the result to the
/// argument bit by bit.
#[must_use]
pub fn specs() -> SpecTable {
    let mut t = SpecTable::new();
    t.add(SpecDef {
        name: "rbit_pre".into(),
        params: vec![
            Param::Bv(X, Sort::BitVec(64)),
            Param::Bv(R, Sort::BitVec(64)),
        ],
        atoms: vec![
            build::reg_var("R0", X),
            build::reg_var("R30", R),
            build::code_spec(Expr::var(R), "rbit_post", vec![Arg::Bv(Expr::var(X))]),
        ],
    });
    let mut post = vec![build::reg_var("R0", Y), build::reg_var("R30", Q30)];
    for i in 0..64u32 {
        post.push(Atom::Pure(Expr::eq(
            Expr::extract(i, i, Expr::var(Y)),
            Expr::extract(63 - i, 63 - i, Expr::var(X)),
        )));
    }
    t.add(SpecDef {
        name: "rbit_post".into(),
        params: vec![
            Param::Bv(X, Sort::BitVec(64)),
            Param::Bv(Y, Sort::BitVec(64)),
            Param::Bv(Q30, Sort::BitVec(64)),
        ],
        atoms: post,
    });
    t
}

/// Builds the full case study.
#[must_use]
pub fn build_case() -> CaseArtifacts {
    build_case_with(&CaseCtx::default())
}

/// [`build_case`] under an explicit build context (shared trace cache,
/// per-instruction worker count).
#[must_use]
pub fn build_case_with(ctx: &CaseCtx) -> CaseArtifacts {
    let program = program();
    let mut cfg = IslaConfig::new(ARM);
    cfg.solver.sat = ctx.sat;
    let (instrs, isla_stats, cache) = trace_program_map_with(ctx, &cfg, &program);
    let mut blocks = BTreeMap::new();
    blocks.insert(
        BASE,
        BlockAnn {
            spec: "rbit_pre".into(),
            verify: true,
        },
    );
    let prog_spec = ProgramSpec {
        pc: Reg::new(ARM.pc),
        instrs,
        blocks,
        specs: specs(),
    };
    CaseArtifacts {
        name: "rbit",
        isa: "Arm",
        program,
        prog_spec,
        protocol: Arc::new(NoIo),
        isla_stats,
        cache,
        sat: ctx.sat,
    }
}

/// Verifies the case.
#[must_use]
pub fn run() -> CaseOutcome {
    run_case(&build_case()).0
}
