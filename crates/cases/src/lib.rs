//! The Islaris case studies (§2 and §6 of the paper), as a library used by
//! the examples, integration tests, and the Fig. 12 benchmark harness.

pub mod binsearch_arm;
pub mod binsearch_riscv;
pub mod corpus;
pub mod hvc;
pub mod memcpy_arm;
pub mod memcpy_riscv;
pub mod pipeline;
pub mod pkvm;
pub mod rbit;
pub mod report;
pub mod uart;
pub mod unaligned;

pub use pipeline::{
    find_case, run_all_parallel, run_all_sequential, run_cases, run_cases_configured,
    run_cases_solver_cached, run_cases_with, CaseDef, CaseRow, ParallelRun, PipelineReport,
    ALL_CASES,
};
pub use report::{
    run_case, run_case_cached, run_case_jobs, run_case_traced, trace_program_map,
    trace_program_map_with, CaseArtifacts, CaseCtx, CaseOutcome,
};
