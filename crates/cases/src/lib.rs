//! The Islaris case studies (§2 and §6 of the paper), as a library used by
//! the examples, integration tests, and the Fig. 12 benchmark harness.

pub mod binsearch_arm;
pub mod binsearch_riscv;
pub mod hvc;
pub mod memcpy_arm;
pub mod rbit;
pub mod uart;
pub mod unaligned;
pub mod memcpy_riscv;
pub mod pkvm;
pub mod report;

pub use report::{run_case, trace_program_map, CaseArtifacts, CaseOutcome};
