//! The binary-search case study, RISC-V version (§2.7, §6).
//!
//! Same structure as the Arm version through `jalr`-based indirect calls;
//! per §2.7 the specs differ only in calling convention and the RISC-V
//! return-address alignment side condition.
//!
//! Convention: `a0` = base, `a1` = n, `a2` = key, `a3` = cmp. The
//! comparator reads the element from `t0` (x5) and the key from `a2`,
//! returns 0/1 in `t1` (x6), preserves everything else, returns via `ra`.
//! The saved caller return address lives in `t3` (x28).

use std::collections::BTreeMap;
use std::sync::Arc;

use islaris_asm::riscv::{self as rv, Gpr};
use islaris_asm::{Asm, Program};
use islaris_core::{
    build, Arg, Atom, BlockAnn, NoIo, Param, ProgramSpec, SeqExpr, SeqVar, SpecDef, SpecTable,
};
use islaris_isla::IslaConfig;
use islaris_itl::Reg;
use islaris_models::RISCV;
use islaris_smt::{BvBinop, BvCmp, Expr, Sort, Var};

use crate::report::{run_case, trace_program_map_with, CaseArtifacts, CaseCtx, CaseOutcome};

/// Code base address.
pub const BASE: u64 = 0x7_0000;
/// Address of the bundled comparator.
pub const CMP_IMPL: u64 = 0x7_1000;

/// Assembles the binary search and the comparator.
///
/// # Panics
///
/// Panics only on encoder bugs.
#[must_use]
pub fn program() -> Program {
    let (a0, a2, a3) = (Gpr::A0, Gpr::A2, Gpr::A3);
    let (lo, hi, mid, ptr) = (Gpr(14), Gpr(15), Gpr(16), Gpr(17)); // a4,a5,a6,a7
    let (t0, t1, t3) = (Gpr(5), Gpr(6), Gpr(28));
    let mut asm = Asm::new(BASE);
    asm.label("binsearch");
    asm.put(rv::mv(t3, Gpr::RA)); //                 save ra
    asm.put_or(rv::addi(lo, Gpr::ZERO, 0)); //       lo = 0
    asm.put(rv::mv(hi, Gpr::A1)); //                 hi = n
    asm.label("loop");
    asm.branch_to("done", move |off| rv::beq(lo, hi, off));
    asm.put(rv::sub(mid, hi, lo)); //                mid = hi - lo
    asm.put_or(rv::srli(mid, mid, 1)); //            mid >>= 1
    asm.put(rv::add(mid, lo, mid)); //               mid += lo
    asm.put_or(rv::slli(ptr, mid, 3)); //            ptr = mid * 8
    asm.put(rv::add(ptr, a0, ptr)); //               ptr += base
    asm.put_or(rv::ld(t0, ptr, 0)); //               elem = *ptr
    asm.put_or(rv::jalr(Gpr::RA, a3, 0)); //         t1 = cmp(elem, key)
    asm.label("ret_pt");
    asm.branch_to("lo_branch", move |off| rv::beq(t1, Gpr::ZERO, off));
    asm.put(rv::mv(hi, mid)); //                     hi = mid
    asm.branch_to("loop", |off| rv::jal(Gpr::ZERO, off));
    asm.label("lo_branch");
    asm.put_or(rv::addi(lo, mid, 1)); //             lo = mid + 1
    asm.branch_to("loop", |off| rv::jal(Gpr::ZERO, off));
    asm.label("done");
    asm.put(rv::mv(Gpr::RA, t3)); //                 restore ra
    asm.put(rv::mv(a0, lo)); //                      result = lo
    asm.put(rv::ret());
    // --- the comparator: t1 = (t0 <u a2) ? 0 : 1 ---
    asm.org(CMP_IMPL);
    asm.label("cmp_impl");
    asm.put(rv::sltu(t1, t0, a2)); //                t1 = elem < key
    asm.put_or(rv::xori(t1, t1, 1)); //              invert
    asm.put(rv::ret());
    asm.finish().expect("binsearch assembles")
}

const BASE_V: Var = Var(0);
const N: Var = Var(1);
const KEY: Var = Var(2);
const F: Var = Var(3);
const LO: Var = Var(4);
const HI: Var = Var(5);
const MID: Var = Var(6);
const R: Var = Var(7);
const RES: Var = Var(8);
const E: Var = Var(9);
const RA: Var = Var(10);
const J16: Var = Var(11);
const J17: Var = Var(12);
const J5: Var = Var(13);
const J6: Var = Var(14);
const JRA: Var = Var(15);
const Q0: Var = Var(20);
const Q14: Var = Var(21);
const Q15: Var = Var(22);
const Q16: Var = Var(23);
const Q17: Var = Var(24);
const Q5: Var = Var(25);
const Q6: Var = Var(26);
const Q28: Var = Var(27);
const QRA: Var = Var(28);
const B: SeqVar = SeqVar(0);

fn bv64(v: Var) -> Param {
    Param::Bv(v, Sort::BitVec(64))
}

fn aligned(v: Var) -> Atom {
    Atom::Pure(Expr::eq(
        Expr::binop(BvBinop::And, Expr::var(v), Expr::bv(64, 1)),
        Expr::bv(64, 0),
    ))
}

fn size_facts() -> Vec<Atom> {
    vec![
        Atom::Pure(Expr::cmp(BvCmp::Ult, Expr::var(N), Expr::bv(64, 1 << 48))),
        build::no_wrap_add(
            Expr::var(BASE_V),
            Expr::binop(BvBinop::Shl, Expr::var(N), Expr::bv(64, 3)),
        ),
        Atom::LenEq(Expr::var(N), B),
        aligned(R),
        aligned(F),
    ]
}

fn post_args() -> Vec<Arg> {
    vec![
        Arg::Bv(Expr::var(BASE_V)),
        Arg::Bv(Expr::var(N)),
        Arg::Seq(SeqExpr::Var(B)),
    ]
}

fn array_atom() -> Atom {
    Atom::MemArray {
        addr: Expr::var(BASE_V),
        seq: SeqExpr::Var(B),
        elem_bytes: 8,
    }
}

/// Builds the spec table.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn specs() -> SpecTable {
    let mut t = SpecTable::new();
    let mut pre = vec![
        build::reg_var("x10", BASE_V),
        build::reg_var("x11", N),
        build::reg_var("x12", KEY),
        build::reg_var("x13", F),
        build::reg_var("x1", R),
        build::reg_var("x14", Q14),
        build::reg_var("x15", Q15),
        build::reg_var("x16", J16),
        build::reg_var("x17", J17),
        build::reg_var("x5", J5),
        build::reg_var("x6", J6),
        build::reg_var("x28", Q28),
        build::code_spec(Expr::var(F), "cmp_spec", vec![]),
        build::code_spec(Expr::var(R), "bs_post", post_args()),
        array_atom(),
    ];
    pre.extend(size_facts());
    t.add(SpecDef {
        name: "bs_pre".into(),
        params: vec![
            bv64(BASE_V),
            bv64(N),
            bv64(KEY),
            bv64(F),
            bv64(R),
            bv64(Q14),
            bv64(Q15),
            bv64(J16),
            bv64(J17),
            bv64(J5),
            bv64(J6),
            bv64(Q28),
            Param::Seq(B),
        ],
        atoms: pre,
    });

    let mut inv = vec![
        build::reg_var("x10", BASE_V),
        build::reg_var("x12", KEY),
        build::reg_var("x13", F),
        build::reg_var("x14", LO),
        build::reg_var("x15", HI),
        build::reg_var("x28", R),
        build::reg_var("x16", J16),
        build::reg_var("x17", J17),
        build::reg_var("x5", J5),
        build::reg_var("x6", J6),
        build::reg_var("x1", JRA),
        build::code_spec(Expr::var(F), "cmp_spec", vec![]),
        build::code_spec(Expr::var(R), "bs_post", post_args()),
        array_atom(),
        Atom::Pure(Expr::cmp(BvCmp::Ule, Expr::var(LO), Expr::var(HI))),
        Atom::Pure(Expr::cmp(BvCmp::Ule, Expr::var(HI), Expr::var(N))),
    ];
    inv.extend(size_facts());
    t.add(SpecDef {
        name: "bs_inv".into(),
        params: vec![
            bv64(BASE_V),
            bv64(KEY),
            bv64(F),
            bv64(LO),
            bv64(HI),
            bv64(R),
            bv64(J16),
            bv64(J17),
            bv64(J5),
            bv64(J6),
            bv64(JRA),
            bv64(N),
            Param::Seq(B),
        ],
        atoms: inv,
    });

    let mut cmp = vec![
        build::reg_var("x5", E),
        build::reg_var("x12", KEY),
        build::reg_var("x1", RA),
        build::reg_var("x10", BASE_V),
        build::reg_var("x13", F),
        build::reg_var("x14", LO),
        build::reg_var("x15", HI),
        build::reg_var("x16", MID),
        build::reg_var("x17", J17),
        build::reg_var("x6", J6),
        build::reg_var("x28", R),
        build::code_spec(Expr::var(F), "cmp_spec", vec![]),
        build::code_spec(Expr::var(R), "bs_post", post_args()),
        array_atom(),
        Atom::Pure(Expr::cmp(BvCmp::Ule, Expr::var(LO), Expr::var(MID))),
        Atom::Pure(Expr::cmp(BvCmp::Ult, Expr::var(MID), Expr::var(HI))),
        Atom::Pure(Expr::cmp(BvCmp::Ule, Expr::var(HI), Expr::var(N))),
        build::code_spec(Expr::var(RA), "after_cmp", vec![]),
        // The callee returns through `ra & ~1`; alignment makes that `ra`.
        aligned(RA),
    ];
    cmp.extend(size_facts());
    t.add(SpecDef {
        name: "cmp_spec".into(),
        params: vec![
            bv64(E),
            bv64(KEY),
            bv64(RA),
            bv64(BASE_V),
            bv64(F),
            bv64(LO),
            bv64(HI),
            bv64(MID),
            bv64(J17),
            bv64(J6),
            bv64(R),
            bv64(N),
            Param::Seq(B),
        ],
        atoms: cmp,
    });

    let mut after = vec![
        build::reg_var("x10", BASE_V),
        build::reg_var("x12", KEY),
        build::reg_var("x13", F),
        build::reg_var("x14", LO),
        build::reg_var("x15", HI),
        build::reg_var("x16", MID),
        build::reg_var("x17", J17),
        build::reg_var("x5", J5),
        build::reg_var("x6", RES),
        build::reg_var("x28", R),
        build::reg_var("x1", JRA),
        build::code_spec(Expr::var(F), "cmp_spec", vec![]),
        build::code_spec(Expr::var(R), "bs_post", post_args()),
        array_atom(),
        Atom::Pure(Expr::cmp(BvCmp::Ult, Expr::var(RES), Expr::bv(64, 2))),
        Atom::Pure(Expr::cmp(BvCmp::Ule, Expr::var(LO), Expr::var(MID))),
        Atom::Pure(Expr::cmp(BvCmp::Ult, Expr::var(MID), Expr::var(HI))),
        Atom::Pure(Expr::cmp(BvCmp::Ule, Expr::var(HI), Expr::var(N))),
    ];
    after.extend(size_facts());
    t.add(SpecDef {
        name: "after_cmp".into(),
        params: vec![
            bv64(BASE_V),
            bv64(KEY),
            bv64(F),
            bv64(LO),
            bv64(HI),
            bv64(MID),
            bv64(J17),
            bv64(J5),
            bv64(RES),
            bv64(R),
            bv64(JRA),
            bv64(N),
            Param::Seq(B),
        ],
        atoms: after,
    });

    let post = vec![
        build::reg_var("x10", Q0),
        Atom::Pure(Expr::cmp(BvCmp::Ule, Expr::var(Q0), Expr::var(N))),
        Atom::MemArray {
            addr: Expr::var(BASE_V),
            seq: SeqExpr::Var(B),
            elem_bytes: 8,
        },
        build::reg_var("x14", Q14),
        build::reg_var("x15", Q15),
        build::reg_var("x16", Q16),
        build::reg_var("x17", Q17),
        build::reg_var("x5", Q5),
        build::reg_var("x6", Q6),
        build::reg_var("x28", Q28),
        build::reg_var("x1", QRA),
    ];
    t.add(SpecDef {
        name: "bs_post".into(),
        params: vec![
            bv64(BASE_V),
            bv64(N),
            Param::Seq(B),
            bv64(Q0),
            bv64(Q14),
            bv64(Q15),
            bv64(Q16),
            bv64(Q17),
            bv64(Q5),
            bv64(Q6),
            bv64(Q28),
            bv64(QRA),
        ],
        atoms: post,
    });
    t
}

/// Builds the full case study.
#[must_use]
pub fn build_case() -> CaseArtifacts {
    build_case_with(&CaseCtx::default())
}

/// [`build_case`] under an explicit build context (shared trace cache,
/// per-instruction worker count).
#[must_use]
pub fn build_case_with(ctx: &CaseCtx) -> CaseArtifacts {
    let program = program();
    let mut cfg = IslaConfig::new(RISCV);
    cfg.solver.sat = ctx.sat;
    let (instrs, isla_stats, cache) = trace_program_map_with(ctx, &cfg, &program);
    let mut blocks = BTreeMap::new();
    blocks.insert(
        program.label("binsearch"),
        BlockAnn {
            spec: "bs_pre".into(),
            verify: true,
        },
    );
    blocks.insert(
        program.label("loop"),
        BlockAnn {
            spec: "bs_inv".into(),
            verify: true,
        },
    );
    blocks.insert(
        program.label("ret_pt"),
        BlockAnn {
            spec: "after_cmp".into(),
            verify: true,
        },
    );
    blocks.insert(
        program.label("cmp_impl"),
        BlockAnn {
            spec: "cmp_spec".into(),
            verify: true,
        },
    );
    let prog_spec = ProgramSpec {
        pc: Reg::new(RISCV.pc),
        instrs,
        blocks,
        specs: specs(),
    };
    CaseArtifacts {
        name: "bin.search",
        isa: "RV",
        program,
        prog_spec,
        protocol: Arc::new(NoIo),
        isla_stats,
        cache,
        sat: ctx.sat,
    }
}

/// Verifies the case.
#[must_use]
pub fn run() -> CaseOutcome {
    run_case(&build_case()).0
}
