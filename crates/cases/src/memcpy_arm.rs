//! The memcpy case study, Arm version (§2.5 and Fig. 7/8 of the paper).
//!
//! The GCC-compiled shape of Fig. 7 column 2, with the Fig. 8 spec: for all
//! `d`, `s`, `n`, `Bs`, `Bd` with `|Bs| = |Bd| = n`, after the call the
//! destination holds `Bs` and control returned to `x30`. The loop invariant
//! at `.L3` is the paper's: the first `m` bytes have been copied.

use std::collections::BTreeMap;
use std::sync::Arc;

use islaris_asm::aarch64::{self as a64, XReg};
use islaris_asm::{Asm, Program};
use islaris_core::{
    build, Arg, Atom, BlockAnn, NoIo, Param, ProgramSpec, SeqExpr, SeqVar, SpecDef, SpecTable,
};
use islaris_isla::IslaConfig;
use islaris_itl::Reg;
use islaris_models::ARM;
use islaris_smt::{BvCmp, Expr, Sort, Var};

use crate::report::{run_case, trace_program_map_with, CaseArtifacts, CaseCtx, CaseOutcome};

/// Code base address.
pub const BASE: u64 = 0x1_0000;

/// Assembles the Fig. 7 Arm memcpy.
///
/// # Panics
///
/// Panics only on encoder bugs (fixed program).
#[must_use]
pub fn program() -> Program {
    let (x0, x1, x2, x3, x4) = (XReg(0), XReg(1), XReg(2), XReg(3), XReg(4));
    let mut asm = Asm::new(BASE);
    asm.label("memcpy");
    asm.branch_to("L1", move |off| a64::cbz(x2, off)); // cbz x2, .L1
    asm.put_or(a64::movz(x3, 0, 0)); //                   mov x3, 0
    asm.label("L3");
    asm.put(a64::ldrb_reg(x4, x1, x3)); //                ldrb w4, [x1, x3]
    asm.put(a64::strb_reg(x4, x0, x3)); //                strb w4, [x0, x3]
    asm.put_or(a64::add_imm(x3, x3, 1)); //               add x3, x3, 1
    asm.put(a64::cmp_reg(x2, x3)); //                     cmp x2, x3
    asm.branch_to("L3", |off| a64::b_cond(a64::Cond::Ne, off)); // bne .L3
    asm.label("L1");
    asm.put(a64::ret(XReg(30))); //                       ret
    asm.finish().expect("memcpy assembles")
}

// Ghost variable layout for the specs.
const D: Var = Var(0);
const S: Var = Var(1);
const N: Var = Var(2);
const R: Var = Var(3);
const M: Var = Var(4);
const J3: Var = Var(5);
const J4: Var = Var(6);
const FN: Var = Var(7);
const FZ: Var = Var(8);
const FC: Var = Var(9);
const FV: Var = Var(10);
const Q0: Var = Var(11);
const Q1: Var = Var(12);
const Q2: Var = Var(13);
const Q3: Var = Var(14);
const Q4: Var = Var(15);
const Q5: Var = Var(16);
const QN: Var = Var(17);
const QZ: Var = Var(18);
const QC: Var = Var(19);
const QV: Var = Var(20);
const BS: SeqVar = SeqVar(0);
const BD: SeqVar = SeqVar(1);
const PBS: SeqVar = SeqVar(2);

fn bv64(v: Var) -> Param {
    Param::Bv(v, Sort::BitVec(64))
}

fn flag(v: Var) -> Param {
    Param::Bv(v, Sort::BitVec(1))
}

/// The flag-register collection `reg_col(CNVZ_regs)` of Fig. 8, flattened.
fn cnvz(n: Var, z: Var, c: Var, v: Var) -> Vec<Atom> {
    vec![
        build::field("PSTATE", "N", Expr::var(n)),
        build::field("PSTATE", "Z", Expr::var(z)),
        build::field("PSTATE", "C", Expr::var(c)),
        build::field("PSTATE", "V", Expr::var(v)),
    ]
}

fn post_args() -> Vec<Arg> {
    vec![
        Arg::Bv(Expr::var(S)),
        Arg::Bv(Expr::var(D)),
        Arg::Bv(Expr::var(N)),
        Arg::Seq(SeqExpr::Var(BS)),
    ]
}

/// Builds the spec table: `memcpy_pre` (Fig. 8 precondition, annotated at
/// the entry), `memcpy_inv` (the `.L3` loop invariant), and `memcpy_post`
/// (Fig. 8 postcondition, carried via `r @@ memcpy_post(…)`).
#[must_use]
pub fn specs() -> SpecTable {
    let mut t = SpecTable::new();
    // Precondition (Fig. 8 lines 1–8).
    let mut pre = vec![
        build::reg_var("R0", D),
        build::reg_var("R1", S),
        build::reg_var("R2", N),
        build::reg_var("R3", J3),
        build::reg_var("R4", J4),
        build::reg_var("R30", R),
    ];
    pre.extend(cnvz(FN, FZ, FC, FV));
    pre.extend([
        Atom::LenEq(Expr::var(N), BS),
        Atom::LenEq(Expr::var(N), BD),
        build::no_wrap_add(Expr::var(S), Expr::var(N)),
        build::no_wrap_add(Expr::var(D), Expr::var(N)),
        build::byte_array(Expr::var(S), SeqExpr::Var(BS)),
        build::byte_array(Expr::var(D), SeqExpr::Var(BD)),
        build::code_spec(Expr::var(R), "memcpy_post", post_args()),
    ]);
    t.add(SpecDef {
        name: "memcpy_pre".into(),
        params: vec![
            bv64(D),
            bv64(S),
            bv64(N),
            bv64(R),
            bv64(J3),
            bv64(J4),
            flag(FN),
            flag(FZ),
            flag(FC),
            flag(FV),
            Param::Seq(BS),
            Param::Seq(BD),
        ],
        atoms: pre,
    });
    // Loop invariant at .L3: m bytes copied.
    let mut inv = vec![
        build::reg_var("R0", D),
        build::reg_var("R1", S),
        build::reg_var("R2", N),
        build::reg_var("R3", M),
        build::reg_var("R4", J4),
        build::reg_var("R30", R),
    ];
    inv.extend(cnvz(FN, FZ, FC, FV));
    inv.extend([
        Atom::Pure(Expr::cmp(BvCmp::Ult, Expr::var(M), Expr::var(N))),
        Atom::LenEq(Expr::var(N), BS),
        Atom::LenEq(Expr::var(N), BD),
        build::no_wrap_add(Expr::var(S), Expr::var(N)),
        build::no_wrap_add(Expr::var(D), Expr::var(N)),
        build::byte_array(Expr::var(S), SeqExpr::Var(BS)),
        build::byte_array(
            Expr::var(D),
            SeqExpr::Var(BS)
                .take(Expr::var(M))
                .app(SeqExpr::Var(BD).drop(Expr::var(M))),
        ),
        build::code_spec(Expr::var(R), "memcpy_post", post_args()),
    ]);
    t.add(SpecDef {
        name: "memcpy_inv".into(),
        params: vec![
            bv64(D),
            bv64(S),
            bv64(N),
            bv64(M),
            bv64(R),
            bv64(J4),
            flag(FN),
            flag(FZ),
            flag(FC),
            flag(FV),
            Param::Seq(BS),
            Param::Seq(BD),
        ],
        atoms: inv,
    });
    // Postcondition (Fig. 8 lines 5–8): destination holds Bs; register
    // ownership returned with arbitrary values.
    let mut post = vec![
        build::reg_var("R0", Q0),
        build::reg_var("R1", Q1),
        build::reg_var("R2", Q2),
        build::reg_var("R3", Q3),
        build::reg_var("R4", Q4),
        build::reg_var("R30", Q5),
    ];
    post.extend(cnvz(QN, QZ, QC, QV));
    post.extend([
        Atom::MemArray {
            addr: Expr::var(S),
            seq: SeqExpr::Var(PBS),
            elem_bytes: 1,
        },
        Atom::MemArray {
            addr: Expr::var(D),
            seq: SeqExpr::Var(PBS),
            elem_bytes: 1,
        },
        Atom::LenEq(Expr::var(N), PBS),
    ]);
    t.add(SpecDef {
        name: "memcpy_post".into(),
        params: vec![
            bv64(S),
            bv64(D),
            bv64(N),
            Param::Seq(PBS),
            bv64(Q0),
            bv64(Q1),
            bv64(Q2),
            bv64(Q3),
            bv64(Q4),
            bv64(Q5),
            flag(QN),
            flag(QZ),
            flag(QC),
            flag(QV),
        ],
        atoms: post,
    });
    t
}

/// Builds the full case study: program, traces, annotations.
#[must_use]
pub fn build_case() -> CaseArtifacts {
    build_case_with(&CaseCtx::default())
}

/// [`build_case`] under an explicit build context (shared trace cache,
/// per-instruction worker count).
#[must_use]
pub fn build_case_with(ctx: &CaseCtx) -> CaseArtifacts {
    let program = program();
    let mut cfg = IslaConfig::new(ARM);
    cfg.solver.sat = ctx.sat;
    let (instrs, isla_stats, cache) = trace_program_map_with(ctx, &cfg, &program);
    let mut blocks = BTreeMap::new();
    blocks.insert(
        program.label("memcpy"),
        BlockAnn {
            spec: "memcpy_pre".into(),
            verify: true,
        },
    );
    blocks.insert(
        program.label("L3"),
        BlockAnn {
            spec: "memcpy_inv".into(),
            verify: true,
        },
    );
    let prog_spec = ProgramSpec {
        pc: Reg::new(ARM.pc),
        instrs,
        blocks,
        specs: specs(),
    };
    CaseArtifacts {
        name: "memcpy",
        isa: "Arm",
        program,
        prog_spec,
        protocol: Arc::new(NoIo),
        isla_stats,
        cache,
        sat: ctx.sat,
    }
}

/// Verifies the case and returns the Fig. 12 measurements.
#[must_use]
pub fn run() -> CaseOutcome {
    let art = build_case();
    run_case(&art).0
}
