//! Known-good opcode corpora for the differential fuzzer.
//!
//! Every opcode that appears in a shipped case-study program, per
//! architecture, deduplicated and sorted. These encodings are known to
//! trace and verify end-to-end, which makes them high-value mutation
//! bases: a single flipped bit usually lands in a neighbouring (still
//! decodable) instruction rather than in `unallocated` space.

use islaris_asm::Program;

fn opcodes(programs: &[Program]) -> Vec<u32> {
    let mut ops: Vec<u32> = programs
        .iter()
        .flat_map(|p| p.instrs.iter().map(|&(_, op)| op))
        .collect();
    ops.sort_unstable();
    ops.dedup();
    ops
}

/// All distinct AArch64 opcodes across the Arm case studies.
#[must_use]
pub fn arm() -> Vec<u32> {
    opcodes(&[
        crate::memcpy_arm::program(),
        crate::binsearch_arm::program(),
        crate::hvc::program(),
        crate::pkvm::program(),
        crate::rbit::program(),
        crate::uart::program(),
        crate::unaligned::program(),
    ])
}

/// All distinct RV64I opcodes across the RISC-V case studies.
#[must_use]
pub fn riscv() -> Vec<u32> {
    opcodes(&[
        crate::memcpy_riscv::program(),
        crate::binsearch_riscv::program(),
    ])
}

#[cfg(test)]
mod tests {
    use islaris_asm::{classify, ARM_CLASSES, RISCV_CLASSES};

    #[test]
    fn corpora_are_nonempty_sorted_and_decodable() {
        for (ops, classes) in [(super::arm(), ARM_CLASSES), (super::riscv(), RISCV_CLASSES)] {
            assert!(ops.len() >= 10, "corpus suspiciously small: {}", ops.len());
            assert!(ops.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
            for op in ops {
                assert_ne!(
                    classify(classes, op),
                    "unallocated",
                    "case-study opcode {op:#010x} fell outside the decoder grammar"
                );
            }
        }
    }
}
