//! The parallel verification pipeline over the bundled case studies.
//!
//! [`ALL_CASES`] is the registry in the paper's Fig. 12 row order;
//! [`run_cases`] fans the cases out over a work queue with per-case panic
//! isolation; [`run_all_parallel`] is the full measurement: a sequential
//! uncached baseline, then a cold and a warm parallel run sharing one
//! [`TraceCache`], reporting per-case wall time, cache hit rate, and
//! speedup vs the baseline.
//!
//! Determinism contract: the *stable* table rows ([`PipelineReport::stable_rows`])
//! are byte-identical across worker counts and cache states — the results
//! come back in registry order, and cache hits replay the original run's
//! trace-generation statistics.

use std::sync::Arc;
use std::time::{Duration, Instant};

use islaris_core::{run_jobs_profiled, JobPanic};
use islaris_isla::{CacheStats, TraceCache};
use islaris_obs::{CaseProfile, QueryTable, Recorder};
use islaris_smt::{QueryCache, SatConfig};

use crate::report::{run_case_cached, CaseArtifacts, CaseCtx, CaseOutcome};
use crate::{
    binsearch_arm, binsearch_riscv, hvc, memcpy_arm, memcpy_riscv, pkvm, rbit, uart, unaligned,
};

/// One registered case study: its Fig. 12 name, a unique CLI slug, and
/// its builder.
#[derive(Clone, Copy)]
pub struct CaseDef {
    /// Registry name (matches `CaseArtifacts::name`).
    pub name: &'static str,
    /// Unique command-line handle (`fig12 --trace-proof <slug>` and the
    /// per-case bench sample names `trace/<slug>` / `verify/<slug>`).
    /// Unlike `name`, slugs disambiguate the per-ISA variants.
    pub slug: &'static str,
    /// Builds the artefacts under a build context.
    pub build: fn(&CaseCtx) -> CaseArtifacts,
}

/// Every bundled case study, in the paper's Fig. 12 row order.
pub const ALL_CASES: &[CaseDef] = &[
    CaseDef {
        name: "memcpy",
        slug: "memcpy_arm",
        build: memcpy_arm::build_case_with,
    },
    CaseDef {
        name: "memcpy",
        slug: "memcpy_riscv",
        build: memcpy_riscv::build_case_with,
    },
    CaseDef {
        name: "hvc",
        slug: "hvc",
        build: hvc::build_case_with,
    },
    CaseDef {
        name: "pKVM",
        slug: "pkvm",
        build: pkvm::build_case_with,
    },
    CaseDef {
        name: "unaligned",
        slug: "unaligned",
        build: unaligned::build_case_with,
    },
    CaseDef {
        name: "UART",
        slug: "uart",
        build: uart::build_case_with,
    },
    CaseDef {
        name: "rbit",
        slug: "rbit",
        build: rbit::build_case_with,
    },
    CaseDef {
        name: "bin.search",
        slug: "binsearch_arm",
        build: binsearch_arm::build_case_with,
    },
    CaseDef {
        name: "bin.search",
        slug: "binsearch_riscv",
        build: binsearch_riscv::build_case_with,
    },
];

/// Looks up a case by its unique slug.
#[must_use]
pub fn find_case(slug: &str) -> Option<&'static CaseDef> {
    ALL_CASES.iter().find(|c| c.slug == slug)
}

/// One verified case plus its end-to-end wall time (build + verify +
/// certificate re-check).
#[derive(Debug, Clone)]
pub struct CaseRow {
    /// The Fig. 12 measurements.
    pub outcome: CaseOutcome,
    /// End-to-end wall time for this case on its worker.
    pub wall: Duration,
}

/// The result of one pipeline run over a case list.
#[derive(Debug)]
pub struct PipelineReport {
    /// Worker count the run was scheduled with.
    pub jobs: usize,
    /// Registry names, in run order (also the row order below).
    pub names: Vec<&'static str>,
    /// Per-case results, in registry order; a panicking case fails only
    /// its own row.
    pub rows: Vec<Result<CaseRow, JobPanic>>,
    /// Total wall time of the run.
    pub wall: Duration,
}

impl PipelineReport {
    /// The deterministic table rows (no wall-clock columns): byte-identical
    /// across worker counts and cache states. A failed case renders as a
    /// deterministic `FAILED` row carrying its panic message.
    #[must_use]
    pub fn stable_rows(&self) -> Vec<String> {
        self.rows
            .iter()
            .zip(&self.names)
            .map(|(r, name)| match r {
                Ok(row) => row.outcome.stable_row(),
                Err(p) => format!("{name}: FAILED: {}", p.message),
            })
            .collect()
    }

    /// Sums the per-case cache counters over the successful rows.
    #[must_use]
    pub fn cache_totals(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for row in self.rows.iter().flatten() {
            total.hits += row.outcome.cache.hits;
            total.misses += row.outcome.cache.misses;
        }
        total
    }

    /// True iff every case verified.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.rows.iter().all(Result::is_ok)
    }

    /// The per-case counter profiles in registry order, keyed
    /// `name (ISA)` (names alone are ambiguous: memcpy and bin.search
    /// each appear once per ISA). Failed cases contribute no profile.
    /// Like [`PipelineReport::stable_rows`], the rendered profiles are
    /// byte-identical across worker counts and cache states.
    #[must_use]
    pub fn profiles(&self) -> Vec<(String, CaseProfile)> {
        self.rows
            .iter()
            .flatten()
            .map(|row| {
                (
                    format!("{} ({})", row.outcome.name, row.outcome.isa),
                    row.outcome.profile,
                )
            })
            .collect()
    }

    /// The per-case solver-query attribution tables in registry order,
    /// keyed `name (ISA)` like [`PipelineReport::profiles`]. Failed cases
    /// contribute no table. Byte-identical across worker counts and cache
    /// states (the tables cover the verification half only; DESIGN §9).
    #[must_use]
    pub fn query_tables(&self) -> Vec<(String, &QueryTable)> {
        self.rows
            .iter()
            .flatten()
            .map(|row| {
                (
                    format!("{} ({})", row.outcome.name, row.outcome.isa),
                    &row.outcome.queries,
                )
            })
            .collect()
    }

    /// The pipeline-wide attribution table: every per-case table merged,
    /// so recurring queries across cases accumulate their effort.
    #[must_use]
    pub fn query_totals(&self) -> QueryTable {
        let mut total = QueryTable::default();
        for row in self.rows.iter().flatten() {
            total.absorb(&row.outcome.queries);
        }
        total
    }

    /// Renders the per-case and pipeline-wide top-`k` hottest-query
    /// tables (`fig12 --profile --hot-queries K`). Deterministic:
    /// byte-identical across worker counts and cache states.
    #[must_use]
    pub fn render_hot_queries(&self, k: usize) -> String {
        let mut out = String::new();
        for (scope, table) in self.query_tables() {
            out.push_str(&table.render_top(&scope, k));
        }
        out.push_str(&self.query_totals().render_top("pipeline", k));
        out
    }

    /// Total trace-generation (Isla-stage) wall time over the successful
    /// rows — the stage the shared cache eliminates on warm runs.
    #[must_use]
    pub fn isla_total(&self) -> Duration {
        self.rows
            .iter()
            .flatten()
            .map(|r| r.outcome.isla_time)
            .sum()
    }

    /// Renders the full table (stable columns + per-case wall time).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&CaseOutcome::stable_header());
        out.push_str(&format!(" {:>8} {:>5} {:>5}\n", "Wall(s)", "hit", "miss"));
        for (r, name) in self.rows.iter().zip(&self.names) {
            match r {
                Ok(row) => out.push_str(&format!(
                    "{} {:>8.3} {:>5} {:>5}\n",
                    row.outcome.stable_row(),
                    row.wall.as_secs_f64(),
                    row.outcome.cache.hits,
                    row.outcome.cache.misses,
                )),
                Err(p) => out.push_str(&format!("{name}: FAILED: {}\n", p.message)),
            }
        }
        out
    }
}

/// Runs `cases` on up to `jobs` workers (per-case panic isolation,
/// deterministic registry-order join), building each through `cache` when
/// given. Case builds use a sequential inner context: parallelism is at
/// the case level here, instruction-level fan-out is
/// [`crate::report::trace_program_map_with`]'s job.
#[must_use]
pub fn run_cases(cases: &[CaseDef], jobs: usize, cache: Option<&TraceCache>) -> PipelineReport {
    run_cases_with(cases, jobs, cache, None)
}

/// [`run_cases`] with optional wall-clock span recording. When a
/// [`Recorder`] is supplied, each case contributes `build:<name>` and
/// `verify:<name>` spans (category `case`) on top of the scheduler's
/// per-job queue-wait and execution spans; with `None` no clock is read
/// beyond the existing wall-time columns.
#[must_use]
pub fn run_cases_with(
    cases: &[CaseDef],
    jobs: usize,
    cache: Option<&TraceCache>,
    recorder: Option<&Recorder>,
) -> PipelineReport {
    run_cases_solver_cached(cases, jobs, cache, recorder, None)
}

/// [`run_cases_with`] plus an optional shared solver [`QueryCache`]: the
/// cases' from-scratch solver queries (side provers, certificate replay)
/// are memoised across cases and worker threads. Verdict rows, stable
/// rows, and every profile counter except the `q.cache` traffic row (and
/// the hot-query `hits` column) are byte-identical with and without the
/// cache.
#[must_use]
pub fn run_cases_solver_cached(
    cases: &[CaseDef],
    jobs: usize,
    cache: Option<&TraceCache>,
    recorder: Option<&Recorder>,
    qcache: Option<&Arc<QueryCache>>,
) -> PipelineReport {
    run_cases_configured(cases, jobs, cache, recorder, qcache, SatConfig::default())
}

/// [`run_cases_solver_cached`] under an explicit solver feature
/// configuration (`fig12 --sat-off FEATURE`): every solver the cases
/// touch — trace generation, proof automation, side provers — runs with
/// `sat`; certificate replay keeps the default configuration as an
/// independent check. Verdicts and certificates are identical for every
/// configuration; only effort counters and wall time may differ.
#[must_use]
pub fn run_cases_configured(
    cases: &[CaseDef],
    jobs: usize,
    cache: Option<&TraceCache>,
    recorder: Option<&Recorder>,
    qcache: Option<&Arc<QueryCache>>,
    sat: SatConfig,
) -> PipelineReport {
    let ctx = CaseCtx {
        cache,
        jobs: 1,
        sat,
    };
    let start = Instant::now();
    let rows = run_jobs_profiled(
        jobs,
        cases.len(),
        |i| {
            let t0 = Instant::now();
            let art = {
                let _span =
                    recorder.map(|rec| rec.span(format!("build:{}", cases[i].name), "case"));
                (cases[i].build)(&ctx)
            };
            let (outcome, _) = {
                let _span =
                    recorder.map(|rec| rec.span(format!("verify:{}", cases[i].name), "case"));
                run_case_cached(&art, qcache)
            };
            CaseRow {
                outcome,
                wall: t0.elapsed(),
            }
        },
        recorder,
    );
    PipelineReport {
        jobs,
        names: cases.iter().map(|c| c.name).collect(),
        rows,
        wall: start.elapsed(),
    }
}

/// The sequential, uncached baseline over [`ALL_CASES`].
#[must_use]
pub fn run_all_sequential() -> PipelineReport {
    run_cases(ALL_CASES, 1, None)
}

/// The full parallel measurement: baseline, then a cold and a warm
/// parallel run over one shared cache.
#[derive(Debug)]
pub struct ParallelRun {
    /// Sequential uncached baseline.
    pub sequential: PipelineReport,
    /// First parallel run: the shared cache starts empty.
    pub cold: PipelineReport,
    /// Second parallel run over the now-populated cache (the steady-state
    /// service model of the roadmap).
    pub warm: PipelineReport,
    /// Distinct (config, opcode) keys the shared cache ended up with.
    pub unique_traces: usize,
    /// Global cache counters over both cached runs.
    pub cache: CacheStats,
}

impl ParallelRun {
    /// Baseline wall time over the cold parallel run's.
    #[must_use]
    pub fn speedup_cold(&self) -> f64 {
        self.sequential.wall.as_secs_f64() / self.cold.wall.as_secs_f64().max(1e-9)
    }

    /// Baseline wall time over the warm run's (cache fully primed).
    #[must_use]
    pub fn speedup_warm(&self) -> f64 {
        self.sequential.wall.as_secs_f64() / self.warm.wall.as_secs_f64().max(1e-9)
    }

    /// Trace-generation stage speedup: baseline Isla-stage time over the
    /// warm run's. This is the cache's contribution in isolation — on a
    /// single-core host the whole-pipeline wall speedup is bounded by the
    /// (small) Isla share of total time, but the stage itself collapses
    /// to hash lookups.
    #[must_use]
    pub fn trace_stage_speedup(&self) -> f64 {
        self.sequential.isla_total().as_secs_f64() / self.warm.isla_total().as_secs_f64().max(1e-9)
    }
}

/// Runs [`ALL_CASES`] sequentially (uncached baseline), then twice in
/// parallel on `jobs` workers over one shared [`TraceCache`] (cold, then
/// warm), and reports per-case wall times, cache hit rates, and speedups.
#[must_use]
pub fn run_all_parallel(jobs: usize) -> ParallelRun {
    let sequential = run_all_sequential();
    let cache = TraceCache::new();
    let cold = run_cases(ALL_CASES, jobs, Some(&cache));
    let warm = run_cases(ALL_CASES, jobs, Some(&cache));
    ParallelRun {
        sequential,
        cold,
        warm,
        unique_traces: cache.unique_traces(),
        cache: cache.stats(),
    }
}
