//! Case-study artefacts and the Fig. 12 measurement harness.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use islaris_asm::Program;
use islaris_core::{
    check_certificate_cached, run_jobs, run_jobs_ok, ProgramSpec, Protocol, Report, Verifier,
    VerifyError, DEADLINE_EXCEEDED,
};
use islaris_isla::{
    trace_opcode, CacheStats, CachedTrace, IslaConfig, IslaError, IslaStats, Opcode, TraceCache,
};
use islaris_itl::Trace;
use islaris_obs::{
    CacheMetrics, CaseProfile, CertMetrics, EngineMetrics, IslaMetrics, QueryTable, SailMetrics,
    SessionMetrics,
};
use islaris_smt::{QueryCache, SatConfig};

/// How a case study is built: an optional shared trace cache, a worker
/// count for per-instruction trace-generation fan-out, and the solver
/// feature configuration both pipeline halves run under.
///
/// The default (`CaseCtx::default()`) is the legacy shape: no cache, one
/// worker, all solver features on — identical to calling [`trace_opcode`]
/// per instruction.
#[derive(Default, Clone, Copy)]
pub struct CaseCtx<'a> {
    /// Shared trace memo table; `None` traces everything cold.
    pub cache: Option<&'a TraceCache>,
    /// Workers for per-instruction fan-out (`0` = ask the OS, `1` =
    /// inline).
    pub jobs: usize,
    /// CDCL/preprocessing feature flags for every solver the case touches
    /// (trace generation and verification; `fig12 --sat-off FEATURE`).
    /// Certificate replay is excluded: the checker always runs the
    /// default configuration, as an independent trusted base.
    pub sat: SatConfig,
}

impl<'a> CaseCtx<'a> {
    /// A context using `cache` with `jobs` workers.
    #[must_use]
    pub fn new(cache: &'a TraceCache, jobs: usize) -> Self {
        CaseCtx {
            cache: Some(cache),
            jobs,
            sat: SatConfig::default(),
        }
    }

    /// The same context with the given solver feature configuration.
    #[must_use]
    pub fn with_sat(mut self, sat: SatConfig) -> Self {
        self.sat = sat;
        self
    }

    /// Traces one opcode through the cache if present. Returns the entry
    /// plus whether it was a cache hit (always `false` uncached).
    ///
    /// # Errors
    ///
    /// Propagates [`IslaError`] from tracing.
    pub fn trace(
        &self,
        cfg: &IslaConfig,
        opcode: &Opcode,
    ) -> Result<(Arc<CachedTrace>, bool), IslaError> {
        match self.cache {
            Some(cache) => cache.lookup(cfg, opcode),
            None => {
                let r = trace_opcode(cfg, opcode)?;
                Ok((
                    Arc::new(CachedTrace {
                        trace: Arc::new(r.trace),
                        params: r.params,
                        stats: r.stats,
                    }),
                    false,
                ))
            }
        }
    }
}

/// Everything built for one case study, before verification.
pub struct CaseArtifacts {
    /// Case name (the "Test" column of Fig. 12).
    pub name: &'static str,
    /// ISA ("Arm" / "RV").
    pub isa: &'static str,
    /// The assembled machine code.
    pub program: Program,
    /// The program spec: traces, annotations, named specs.
    pub prog_spec: ProgramSpec,
    /// MMIO protocol.
    pub protocol: Arc<dyn Protocol>,
    /// Trace-generation statistics.
    pub isla_stats: IslaStats,
    /// Cache hits/misses observed while building this case's traces
    /// (zero when built without a cache).
    pub cache: CacheStats,
    /// Solver feature configuration the verification half runs under
    /// (stamped from [`CaseCtx::sat`] by the builder).
    pub sat: SatConfig,
}

/// Measurements for one Fig. 12 row.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Case name.
    pub name: &'static str,
    /// ISA.
    pub isa: &'static str,
    /// Instructions (Fig. 12 "asm" size).
    pub asm_instrs: usize,
    /// Total trace events (Fig. 12 "ITL" size).
    pub itl_events: usize,
    /// Spec size: atoms over all named specs (Fig. 12 "Spec").
    pub spec_atoms: usize,
    /// Proof size: annotation count + pure hint atoms (Fig. 12 "Proof").
    pub proof_hints: usize,
    /// Trace generation time (Fig. 12 "Isla").
    pub isla_time: Duration,
    /// SMT queries during trace generation.
    pub isla_smt: u64,
    /// Verification (automation) time — the paper's Lithium column.
    pub verify_time: Duration,
    /// SMT queries during verification — the side-condition effort.
    pub verify_smt: u64,
    /// LIA queries during verification.
    pub lia_queries: u64,
    /// Obligations in the certificates.
    pub obligations: usize,
    /// Certificate re-check time — the paper's Qed column.
    pub cert_time: Duration,
    /// Trace-cache hits/misses while building this case.
    pub cache: CacheStats,
    /// The per-stage deterministic counter profile (`fig12 --profile`).
    pub profile: CaseProfile,
    /// Per-query solver attribution over the verification half (proof
    /// automation + certificate replay) — the `--hot-queries` input.
    /// Trace-generation queries are deliberately not attributed: cache
    /// hits replay *counters*, not per-query tables, and the attribution
    /// must stay byte-identical across cache states (DESIGN §9).
    pub queries: QueryTable,
}

impl CaseOutcome {
    /// One row of the regenerated Fig. 12 table.
    #[must_use]
    pub fn row(&self) -> String {
        format!(
            "{} {:>9.3} {:>9.3} {:>9.3}",
            self.stable_row(),
            self.isla_time.as_secs_f64(),
            self.verify_time.as_secs_f64(),
            self.cert_time.as_secs_f64(),
        )
    }

    /// The table header matching [`CaseOutcome::row`].
    #[must_use]
    pub fn header() -> String {
        format!(
            "{} {:>9} {:>9} {:>9}",
            Self::stable_header(),
            "Isla(s)",
            "Auto(s)",
            "Qed(s)"
        )
    }

    /// The deterministic part of the row: sizes and solver-effort counts
    /// only, no wall-clock columns. Byte-identical across runs, worker
    /// counts, and cache states — this is what the determinism tests and
    /// `fig12 --jobs` compare.
    #[must_use]
    pub fn stable_row(&self) -> String {
        format!(
            "{:<11} {:<4} {:>4} {:>6} {:>5} {:>6} {:>6} {:>6} {:>6}",
            self.name,
            self.isa,
            self.asm_instrs,
            self.itl_events,
            self.spec_atoms,
            self.proof_hints,
            self.isla_smt,
            self.verify_smt,
            self.obligations,
        )
    }

    /// The table header matching [`CaseOutcome::stable_row`].
    #[must_use]
    pub fn stable_header() -> String {
        format!(
            "{:<11} {:<4} {:>4} {:>6} {:>5} {:>6} {:>6} {:>6} {:>6}",
            "Test", "ISA", "asm", "ITL", "Spec", "Proof", "IslaQ", "SMT", "Oblig"
        )
    }
}

/// Builds the instruction map for a program under one Isla configuration
/// (sequential, uncached — the legacy entry point).
///
/// # Panics
///
/// Panics if trace generation fails (bundled case studies must trace).
#[must_use]
pub fn trace_program_map(
    cfg: &IslaConfig,
    program: &Program,
) -> (BTreeMap<u64, Arc<Trace>>, IslaStats) {
    let (map, stats, _) = trace_program_map_with(&CaseCtx::default(), cfg, program);
    (map, stats)
}

/// Builds the instruction map for a program, optionally through a shared
/// [`TraceCache`] and fanned out across `ctx.jobs` workers. Statistics
/// are aggregated in address order, and cache hits replay the original
/// run's statistics, so the returned [`IslaStats`] counters are identical
/// to a cold sequential build regardless of cache state or worker count
/// (wall-clock `time` excepted).
///
/// # Panics
///
/// Panics if trace generation fails (bundled case studies must trace).
#[must_use]
pub fn trace_program_map_with(
    ctx: &CaseCtx,
    cfg: &IslaConfig,
    program: &Program,
) -> (BTreeMap<u64, Arc<Trace>>, IslaStats, CacheStats) {
    let start = Instant::now();
    let traced = run_jobs_ok(ctx.jobs.max(1), program.instrs.len(), |i| {
        let (addr, op) = program.instrs[i];
        let r = ctx
            .trace(cfg, &Opcode::Concrete(op))
            .unwrap_or_else(|e| panic!("tracing {op:#010x} at {addr:#x}: {e}"));
        (addr, r)
    })
    .unwrap_or_else(|p| std::panic::panic_any(p.message));
    let mut map = BTreeMap::new();
    let mut stats = IslaStats::default();
    let mut cache = CacheStats::default();
    for (addr, (entry, hit)) in traced {
        stats.absorb(&entry.stats);
        if hit {
            cache.hits += 1;
        } else {
            cache.misses += 1;
        }
        map.insert(addr, entry.trace.clone());
    }
    stats.time = start.elapsed();
    (map, stats, cache)
}

/// Verifies a case study and collects the Fig. 12 measurements.
///
/// # Panics
///
/// Panics if verification or certificate checking fails — the bundled case
/// studies are expected to verify (tests rely on this).
#[must_use]
pub fn run_case(art: &CaseArtifacts) -> (CaseOutcome, Report) {
    run_case_opts(art, false, None)
}

/// [`run_case`] with an optional shared solver [`QueryCache`]: the
/// engine's side provers and the certificate replay answer repeated
/// queries (across blocks, cases and threads) from the cache. Verdicts,
/// certificates, and every profile counter except the cache-traffic
/// rows themselves are identical to the uncached run — hits replay the
/// original computation's effort deltas (DESIGN §10).
///
/// # Panics
///
/// Panics if verification or certificate checking fails.
#[must_use]
pub fn run_case_cached(
    art: &CaseArtifacts,
    qcache: Option<&Arc<QueryCache>>,
) -> (CaseOutcome, Report) {
    run_case_opts(art, false, qcache)
}

/// [`run_case`] with proof-search tracing enabled: every
/// [`islaris_core::BlockReport`] in the returned [`Report`] carries its
/// structured trace (`fig12 --trace-proof`). Counters and outcome are
/// identical to the untraced run.
///
/// # Panics
///
/// Panics if verification or certificate checking fails.
#[must_use]
pub fn run_case_traced(art: &CaseArtifacts) -> (CaseOutcome, Report) {
    run_case_opts(art, true, None)
}

fn run_case_opts(
    art: &CaseArtifacts,
    trace: bool,
    qcache: Option<&Arc<QueryCache>>,
) -> (CaseOutcome, Report) {
    run_case_opts_jobs(art, trace, qcache, 1, None)
        .unwrap_or_else(|e| panic!("case `{}`: {e}", art.name))
}

/// [`run_case_cached`] with intra-case parallelism and an optional
/// deadline: the engine's blocks and the per-block certificate replays
/// are scheduled as independent jobs on up to `jobs` workers, with
/// results merged in block order — outcome, certificates and every
/// deterministic profile counter are byte-identical to `jobs == 1`.
/// This is the daemon's single-request scaling path (a `POST /verify`
/// finally uses all `--workers`).
///
/// # Errors
///
/// Returns a [`DEADLINE_EXCEEDED`] failure if `deadline` lapsed between
/// jobs (the daemon maps it to `504`).
///
/// # Panics
///
/// Panics if verification or certificate checking genuinely fails — the
/// bundled case studies are expected to verify.
pub fn run_case_jobs(
    art: &CaseArtifacts,
    qcache: Option<&Arc<QueryCache>>,
    jobs: usize,
    deadline: Option<Instant>,
) -> Result<(CaseOutcome, Report), VerifyError> {
    run_case_opts_jobs(art, false, qcache, jobs, deadline)
}

fn run_case_opts_jobs(
    art: &CaseArtifacts,
    trace: bool,
    qcache: Option<&Arc<QueryCache>>,
    jobs: usize,
    deadline: Option<Instant>,
) -> Result<(CaseOutcome, Report), VerifyError> {
    let mut verifier = Verifier::new(art.prog_spec.clone(), art.protocol.clone());
    verifier.trace = trace;
    verifier.qcache = qcache.cloned();
    verifier.solver.sat = art.sat;
    verifier.jobs = jobs;
    verifier.deadline = deadline;
    let t0 = Instant::now();
    let report = match verifier.verify_all() {
        Ok(r) => r,
        Err(e) if e.message == DEADLINE_EXCEEDED => return Err(e),
        Err(e) => panic!("case `{}`: {e}", art.name),
    };
    let verify_time = t0.elapsed();

    let t1 = Instant::now();
    // Per-block certificate replays are independent; schedule them like
    // the engine blocks and merge counters in block order so profiles
    // stay byte-identical across worker counts.
    let replays = run_jobs(jobs, report.blocks.len(), |i| {
        let block = &report.blocks[i];
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(VerifyError {
                block: block.addr,
                message: DEADLINE_EXCEEDED.into(),
            });
        }
        let mut cm = CertMetrics::default();
        let mut qt = QueryTable::default();
        qt.absorb(&block.stats.queries);
        check_certificate_cached(&block.cert, &mut cm, &mut qt, qcache.map(Arc::as_ref))
            .unwrap_or_else(|e| panic!("case `{}`: {e}", art.name));
        Ok((cm, qt))
    });
    let mut cert_metrics = CertMetrics::default();
    let mut queries = QueryTable::default();
    for r in replays {
        match r {
            Ok(Ok((cm, qt))) => {
                cert_metrics.absorb(&cm);
                queries.absorb(&qt);
            }
            Ok(Err(e)) => return Err(e),
            Err(p) => std::panic::panic_any(p.message),
        }
    }
    let cert_time = t1.elapsed();

    let spec_atoms: usize = art
        .prog_spec
        .specs
        .defs()
        .iter()
        .map(|d| d.atoms.len())
        .sum();
    // "Proof" effort analogue: annotations (invariants and exit points)
    // plus pure hint atoms (no-wrap facts, bound facts) across the specs.
    let proof_hints = art.prog_spec.blocks.len()
        + art
            .prog_spec
            .specs
            .defs()
            .iter()
            .flat_map(|d| d.atoms.iter())
            .filter(|a| {
                matches!(
                    a,
                    islaris_core::Atom::Pure(_) | islaris_core::Atom::LenEq(_, _)
                )
            })
            .count();
    let mut engine = EngineMetrics::default();
    let mut engine_smt = islaris_obs::SolverMetrics::default();
    let mut session = SessionMetrics::default();
    let mut query_cache = CacheMetrics::default();
    for b in &report.blocks {
        engine.absorb(&EngineMetrics {
            events: b.stats.events,
            instructions: b.stats.instructions,
            smt_queries: b.stats.smt_queries,
            lia_queries: b.stats.lia_queries,
            obligations: b.stats.obligations,
            vacuous_branches: b.stats.vacuous_branches,
            blocks_parallel: 0,
        });
        engine_smt.absorb(&b.stats.solver);
        session.absorb(&b.stats.session);
        query_cache.absorb(&b.stats.qcache);
    }
    // Blocks scheduled as independent verification jobs: every block goes
    // through the intra-case scheduler (inline when jobs <= 1), so this
    // counts scheduled jobs, not workers, and stays deterministic.
    engine.blocks_parallel = report.blocks.len() as u64;
    // Total shared-cache traffic for this case: the engine's side provers
    // plus the certificate replay.
    query_cache.absorb(&cert_metrics.qcache);
    let profile = CaseProfile {
        sail: SailMetrics {
            steps: art.isla_stats.model_steps,
            calls: art.isla_stats.model_calls,
        },
        isla: IslaMetrics {
            runs: art.isla_stats.runs,
            branches_explored: art.isla_stats.branches_explored,
            branches_pruned: art.isla_stats.branches_pruned,
            smt_queries: art.isla_stats.smt_queries,
            events: art.isla_stats.events as u64,
        },
        isla_smt: art.isla_stats.solver,
        engine,
        engine_smt,
        session,
        cert: cert_metrics,
        cache: art.cache,
        qcache: query_cache,
    };
    let outcome = CaseOutcome {
        name: art.name,
        isa: art.isa,
        asm_instrs: art.program.len(),
        itl_events: art.prog_spec.instrs.values().map(|t| t.event_count()).sum(),
        spec_atoms,
        proof_hints,
        isla_time: art.isla_stats.time,
        isla_smt: art.isla_stats.smt_queries,
        verify_time,
        verify_smt: report.smt_queries(),
        lia_queries: report.blocks.iter().map(|b| b.stats.lia_queries).sum(),
        obligations: report.obligations(),
        cert_time,
        cache: art.cache,
        profile,
        queries,
    };
    Ok((outcome, report))
}
