//! The pKVM exception-handler case study (§6: "Relocation-parametric
//! real-world code").
//!
//! A re-creation of the structure of pKVM's EL2 hypercall dispatch:
//!
//! * dispatch on the exception class in `ESR_EL2` and on the hypercall id
//!   in `x0`: unknown ids and non-HVC exceptions branch to the host
//!   handler, which (as in the paper) is *assumed* correct;
//! * `HVC_SOFT_RESTART` installs a caller-provided vector base and return
//!   address and `eret`s back **to EL2** (by rewriting `SPSR_EL2`);
//! * `HVC_RESET_VECTORS` restores the default vectors at a *relocation
//!   offset determined at runtime*: four `movz`/`movk` instructions whose
//!   16-bit immediates are patched at initialisation. The traces for these
//!   are generated with **symbolic immediates** (Isla's partially symbolic
//!   opcodes), so the verification covers every offset value;
//! * a system-register save/restore sweep supplies the paper's
//!   many-system-registers traffic;
//! * the final shared `eret` runs under the paper's *relaxed constraint*:
//!   `SPSR_EL2 ∈ {caller value, EL2h value}`, resolved per path by the
//!   separation-logic context.

use std::collections::BTreeMap;
use std::sync::Arc;

use islaris_asm::aarch64::{self as a64, SysReg, XReg};
use islaris_asm::{Asm, Program};
use islaris_bv::Bv;
use islaris_core::run_jobs_ok;
use islaris_core::{build, BlockAnn, NoIo, Param, ProgramSpec, SpecDef, SpecTable};
use islaris_isla::{CacheStats, IslaConfig, IslaStats, Opcode};
use islaris_itl::Reg;
use islaris_models::ARM;
use islaris_smt::{Expr, Sort, Var};

use crate::report::{run_case, CaseArtifacts, CaseCtx, CaseOutcome};

/// The handler entry (the vector's lower-EL synchronous slot).
pub const HANDLER: u64 = 0xA_0400;
/// The assumed-correct host handler (exit point).
pub const HOST: u64 = 0xB_0000;
/// SPSR value written by HVC_SOFT_RESTART: EL2h, DAIF masked.
pub const SPSR_EL2H: u64 = 0x3c9;
/// SPSR of the EL1 caller: EL1h, DAIF masked.
pub const SPSR_EL1H: u64 = 0x3c5;

/// EL1 registers swept by the save/restore sequence.
pub const SWEEP: &[SysReg] = &[
    SysReg::SCTLR_EL1,
    SysReg::TTBR0_EL1,
    SysReg::TTBR1_EL1,
    SysReg::TCR_EL1,
    SysReg::MAIR_EL1,
    SysReg::CPACR_EL1,
    SysReg::TPIDR_EL1,
    SysReg::TPIDR_EL0,
    SysReg::ESR_EL1,
    SysReg::FAR_EL1,
    SysReg::VBAR_EL1,
    SysReg::CONTEXTIDR_EL1,
];

/// Assembles the handler. The four relocation-patched instructions carry
/// placeholder immediates (the real traces are symbolic).
///
/// # Panics
///
/// Panics only on encoder bugs.
#[must_use]
pub fn program() -> Program {
    let (x0, x1, x2, x3) = (XReg(0), XReg(1), XReg(2), XReg(3));
    let (x10, x11, x12, x13) = (XReg(10), XReg(11), XReg(12), XReg(13));
    let mut asm = Asm::new(HANDLER);
    asm.label("el2_sync");
    // Dispatch on ESR_EL2.EC and the hypercall id.
    asm.put(a64::mrs(x10, SysReg::ESR_EL2));
    asm.put_or(a64::lsr_imm(x11, x10, 26)); //      EC
    asm.put_or(a64::cmp_imm(x11, 0x16)); //         HVC?
    asm.branch_to("host_exit", |off| a64::b_cond(a64::Cond::Ne, off));
    asm.put_or(a64::cmp_imm(x0, 1)); //             HVC_SOFT_RESTART?
    asm.branch_to("soft_restart", |off| a64::b_cond(a64::Cond::Eq, off));
    asm.put_or(a64::cmp_imm(x0, 2)); //             HVC_RESET_VECTORS?
    asm.branch_to("reset_vectors", |off| a64::b_cond(a64::Cond::Eq, off));
    asm.branch_to("host_exit", a64::b); //          other ids → host
    asm.label("soft_restart");
    asm.put(a64::msr(SysReg::VBAR_EL2, x2)); //     install caller's vectors
    asm.put(a64::msr(SysReg::ELR_EL2, x1)); //      return to caller's pc …
    asm.put_or(a64::movz(x12, SPSR_EL2H as u16, 0));
    asm.put(a64::msr(SysReg::SPSR_EL2, x12)); //    … at EL2
    asm.branch_to("common_exit", a64::b);
    asm.label("reset_vectors");
    // Relocation-patched: x3 = __hyp_vector_base (symbolic immediates).
    asm.put_or(a64::movz(x3, 0, 0));
    asm.put_or(a64::movk(x3, 0, 1));
    asm.put_or(a64::movk(x3, 0, 2));
    asm.put_or(a64::movk(x3, 0, 3));
    asm.put(a64::msr(SysReg::VBAR_EL2, x3));
    asm.branch_to("common_exit", a64::b);
    asm.label("common_exit");
    // Host EL1 system-register restore sweep.
    for reg in SWEEP {
        asm.put(a64::mrs(x13, *reg));
        asm.put(a64::msr(*reg, x13));
    }
    asm.put(a64::eret());
    asm.org(HOST);
    asm.label("host_exit");
    asm.branch_to("host_exit", a64::b); // assumed host handler
    asm.finish().expect("pkvm assembles")
}

// Relocation immediates (shared between traces and specs).
const IMM0: Var = Var(90);
const IMM1: Var = Var(91);
const IMM2: Var = Var(92);
const IMM3: Var = Var(93);

// Spec ghosts.
const ID: Var = Var(0);
const ARG1: Var = Var(1);
const ARG2: Var = Var(2);
const ELRG: Var = Var(3);
const VB: Var = Var(4);
const ESR: Var = Var(5);
const J3: Var = Var(6);
const J10: Var = Var(7);
const J11: Var = Var(8);
const J12: Var = Var(9);
const J13: Var = Var(10);
const FN: Var = Var(11);
const FZ: Var = Var(12);
const FC: Var = Var(13);
const FV: Var = Var(14);
const H0: Var = Var(30);
const HVB: Var = Var(31);
const HELR: Var = Var(32);
const HSPSR: Var = Var(33);

/// The relocated vector base: `imm3 @ imm2 @ imm1 @ imm0`.
#[must_use]
pub fn reloc_base() -> Expr {
    Expr::concat(
        Expr::var(IMM3),
        Expr::concat(
            Expr::var(IMM2),
            Expr::concat(Expr::var(IMM1), Expr::var(IMM0)),
        ),
    )
}

fn bv64(v: Var) -> Param {
    Param::Bv(v, Sort::BitVec(64))
}

fn sweep_ghost(i: usize) -> Var {
    Var(40 + i as u32)
}

/// Builds the spec table.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn specs() -> SpecTable {
    let mut t = SpecTable::new();
    let mut params = vec![
        bv64(ID),
        bv64(ARG1),
        bv64(ARG2),
        bv64(ELRG),
        bv64(VB),
        bv64(ESR),
        bv64(J3),
        bv64(J10),
        bv64(J11),
        bv64(J12),
        bv64(J13),
        Param::Bv(FN, Sort::BitVec(1)),
        Param::Bv(FZ, Sort::BitVec(1)),
        Param::Bv(FC, Sort::BitVec(1)),
        Param::Bv(FV, Sort::BitVec(1)),
        Param::Bv(IMM0, Sort::BitVec(16)),
        Param::Bv(IMM1, Sort::BitVec(16)),
        Param::Bv(IMM2, Sort::BitVec(16)),
        Param::Bv(IMM3, Sort::BitVec(16)),
    ];
    for i in 0..SWEEP.len() {
        params.push(bv64(sweep_ghost(i)));
    }
    let mut pre = vec![
        build::reg_var("R0", ID),
        build::reg_var("R1", ARG1),
        build::reg_var("R2", ARG2),
        build::reg_var("R3", J3),
        build::reg_var("R10", J10),
        build::reg_var("R11", J11),
        build::reg_var("R12", J12),
        build::reg_var("R13", J13),
        build::field("PSTATE", "N", Expr::var(FN)),
        build::field("PSTATE", "Z", Expr::var(FZ)),
        build::field("PSTATE", "C", Expr::var(FC)),
        build::field("PSTATE", "V", Expr::var(FV)),
        build::field("PSTATE", "EL", Expr::bv(2, 0b10)),
        build::field("PSTATE", "SP", Expr::bv(1, 1)),
        build::field("PSTATE", "nRW", Expr::bv(1, 0)),
        build::field("PSTATE", "D", Expr::bv(1, 1)),
        build::field("PSTATE", "A", Expr::bv(1, 1)),
        build::field("PSTATE", "I", Expr::bv(1, 1)),
        build::field("PSTATE", "F", Expr::bv(1, 1)),
        build::reg_var("ESR_EL2", ESR),
        build::reg_var("VBAR_EL2", VB),
        build::reg_var("ELR_EL2", ELRG),
        // The EL1 caller's saved state and the EL2 configuration.
        build::reg("SPSR_EL2", Expr::bv(64, SPSR_EL1H as u128)),
        build::reg("HCR_EL2", Expr::bv(64, 0x8000_0000)),
        // Continuations: the soft-restart target (EL2) and the caller (EL1).
        build::code_spec(Expr::var(ARG1), "restart_target", vec![]),
        build::code_spec(Expr::var(ELRG), "caller_resume", vec![]),
    ];
    for (i, reg) in SWEEP.iter().enumerate() {
        pre.push(build::reg_var(reg.name(), sweep_ghost(i)));
    }
    t.add(SpecDef {
        name: "pkvm_entry".into(),
        params: params.clone(),
        atoms: pre,
    });

    // HVC_SOFT_RESTART lands here: back at EL2, with the caller-supplied
    // vector base installed.
    t.add(SpecDef {
        name: "restart_target".into(),
        params: vec![bv64(H0), bv64(HVB)],
        atoms: vec![
            build::reg_var("R0", H0),
            build::reg_var("VBAR_EL2", HVB),
            build::field("PSTATE", "EL", Expr::bv(2, 0b10)),
            build::field("PSTATE", "SP", Expr::bv(1, 1)),
        ],
    });

    // HVC_RESET_VECTORS returns to the EL1 caller with the *relocated*
    // default vector base installed — for every offset value.
    t.add(SpecDef {
        name: "caller_resume".into(),
        params: vec![
            Param::Bv(IMM0, Sort::BitVec(16)),
            Param::Bv(IMM1, Sort::BitVec(16)),
            Param::Bv(IMM2, Sort::BitVec(16)),
            Param::Bv(IMM3, Sort::BitVec(16)),
            bv64(H0),
        ],
        atoms: vec![
            build::reg_var("R0", H0),
            build::reg("VBAR_EL2", reloc_base()),
            build::field("PSTATE", "EL", Expr::bv(2, 0b01)),
        ],
    });

    // The assumed host handler: any context reaching it is fine (the
    // paper assumes this sub-handler correct).
    t.add(SpecDef {
        name: "host_spec".into(),
        params: vec![bv64(H0), bv64(HELR), bv64(HSPSR)],
        atoms: vec![
            build::reg_var("R0", H0),
            build::reg_var("ELR_EL2", HELR),
            build::reg_var("SPSR_EL2", HSPSR),
        ],
    });
    t
}

/// Generates the traces: instruction-specific configurations for the
/// relocation-patched `movz`/`movk` (symbolic immediates) and the shared
/// `eret` (the relaxed SPSR constraint).
///
/// # Panics
///
/// Panics if trace generation fails.
#[must_use]
pub fn traces(program: &Program) -> (BTreeMap<u64, Arc<islaris_itl::Trace>>, IslaStats) {
    let (map, stats, _) = traces_with(&CaseCtx::default(), program);
    (map, stats)
}

/// [`traces`] under an explicit build context (shared trace cache,
/// per-instruction worker count).
///
/// # Panics
///
/// Panics if trace generation fails.
#[must_use]
pub fn traces_with(
    ctx: &CaseCtx,
    program: &Program,
) -> (
    BTreeMap<u64, Arc<islaris_itl::Trace>>,
    IslaStats,
    CacheStats,
) {
    let mut base_cfg = IslaConfig::new(ARM)
        .assume_reg("PSTATE.EL", Bv::new(2, 0b10))
        .assume_reg("PSTATE.SP", Bv::new(1, 1))
        .assume_reg("PSTATE.nRW", Bv::new(1, 0))
        .assume_reg("SCTLR_EL2", Bv::zero(64));
    base_cfg.solver.sat = ctx.sat;
    let mut eret_cfg = IslaConfig::new(ARM)
        .assume_reg("PSTATE.EL", Bv::new(2, 0b10))
        .assume_reg("PSTATE.SP", Bv::new(1, 1))
        .assume_reg("PSTATE.nRW", Bv::new(1, 0))
        .assume_reg("HCR_EL2", Bv::new(64, 0x8000_0000))
        .constrain_reg("SPSR_EL2", |e| {
            Expr::or(
                Expr::eq(e.clone(), Expr::bv(64, SPSR_EL1H as u128)),
                Expr::eq(e.clone(), Expr::bv(64, SPSR_EL2H as u128)),
            )
        });
    eret_cfg.solver.sat = ctx.sat;

    // The four patched instructions, with symbolic imm16 fields.
    // movz/movk layout: sf(1) opc(2) 100101 hw(2) imm16 Rd(5); Rd = x3.
    let patched: Vec<(u64, Expr)> = {
        let movz_high =
            |opc: u32, hw: u32| Expr::bv(11, u128::from(0b1_00_100101_00 | (opc & 0b11) << 8 | hw));
        // Bits 31..21 for movz (opc=10) and movk (opc=11), hw = 0..3.
        let mk = |opc: u32, hw: u32, imm: Var| {
            Expr::concat(
                movz_high(opc, hw),
                Expr::concat(Expr::var(imm), Expr::bv(5, 3)), // Rd = x3
            )
        };
        let base = program.label("reset_vectors");
        vec![
            (base, mk(0b10, 0, IMM0)),
            (base + 4, mk(0b11, 1, IMM1)),
            (base + 8, mk(0b11, 2, IMM2)),
            (base + 12, mk(0b11, 3, IMM3)),
        ]
    };
    let patched_addrs: Vec<u64> = patched.iter().map(|(a, _)| *a).collect();
    let eret_addr = program
        .instrs
        .iter()
        .find(|(_, op)| *op == a64::eret())
        .map(|(a, _)| *a)
        .expect("an eret in the handler");

    let start = std::time::Instant::now();
    let traced = run_jobs_ok(ctx.jobs.max(1), program.instrs.len(), |i| {
        let (addr, op) = program.instrs[i];
        let (cfg, opcode) = if let Some((_, expr)) = patched.iter().find(|(a, _)| *a == addr) {
            let imm = match patched_addrs.iter().position(|a| *a == addr) {
                Some(0) => IMM0,
                Some(1) => IMM1,
                Some(2) => IMM2,
                _ => IMM3,
            };
            (
                &base_cfg,
                Opcode::Symbolic {
                    expr: expr.clone(),
                    params: vec![(imm, Sort::BitVec(16))],
                    assumptions: vec![],
                },
            )
        } else if addr == eret_addr {
            (&eret_cfg, Opcode::Concrete(op))
        } else {
            (&base_cfg, Opcode::Concrete(op))
        };
        let r = ctx
            .trace(cfg, &opcode)
            .unwrap_or_else(|e| panic!("tracing {op:#010x} at {addr:#x}: {e}"));
        (addr, r)
    })
    .unwrap_or_else(|p| std::panic::panic_any(p.message));
    let mut map = BTreeMap::new();
    let mut stats = IslaStats::default();
    let mut cache = CacheStats::default();
    for (addr, (entry, hit)) in traced {
        stats.absorb(&entry.stats);
        if hit {
            cache.hits += 1;
        } else {
            cache.misses += 1;
        }
        map.insert(addr, entry.trace.clone());
    }
    stats.time = start.elapsed();
    (map, stats, cache)
}

/// Builds the full case study.
#[must_use]
pub fn build_case() -> CaseArtifacts {
    build_case_with(&CaseCtx::default())
}

/// [`build_case`] under an explicit build context (shared trace cache,
/// per-instruction worker count).
#[must_use]
pub fn build_case_with(ctx: &CaseCtx) -> CaseArtifacts {
    let program = program();
    let (instrs, isla_stats, cache) = traces_with(ctx, &program);
    let mut blocks = BTreeMap::new();
    blocks.insert(
        HANDLER,
        BlockAnn {
            spec: "pkvm_entry".into(),
            verify: true,
        },
    );
    blocks.insert(
        HOST,
        BlockAnn {
            spec: "host_spec".into(),
            verify: false,
        },
    );
    let prog_spec = ProgramSpec {
        pc: Reg::new(ARM.pc),
        instrs,
        blocks,
        specs: specs(),
    };
    CaseArtifacts {
        name: "pKVM",
        isa: "Arm",
        program,
        prog_spec,
        protocol: Arc::new(NoIo),
        isla_stats,
        cache,
        sat: ctx.sat,
    }
}

/// Verifies the case.
#[must_use]
pub fn run() -> CaseOutcome {
    run_case(&build_case()).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patched_addresses_follow_the_label() {
        let p = program();
        let (map, _) = traces(&p);
        // The four instructions at reset_vectors have parametric traces
        // (they mention the immediate variables 90..94).
        let base = p.label("reset_vectors");
        for i in 0..4u64 {
            let text = islaris_itl::print_trace(&map[&(base + 4 * i)]);
            assert!(text.contains(&format!("v{}", 90 + i)), "{text}");
        }
    }
}
