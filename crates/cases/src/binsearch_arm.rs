//! The binary-search case study, Arm version (§6: "Higher-order
//! reasoning").
//!
//! Binary search over a `u64` array, parametric over a comparison function
//! reached through a function pointer (`blr x3`) — the function-pointer
//! spec is an `a @@ P` assertion plus a calling convention, exactly as in
//! the paper. The verified property: the search only accesses in-bounds
//! elements, calls the comparator per its contract, leaves the array
//! intact, and returns an index `≤ n` to the caller. A concrete comparator
//! (unsigned `<`) is verified against the same contract, closing the
//! higher-order loop.
//!
//! Calling convention (hand-written code, custom contract): the comparator
//! receives the element in `x8` and the key in `x2`, returns 0/1 in `x9`,
//! preserves `x0–x7` and `x10`, and returns through `x30`.

use std::collections::BTreeMap;
use std::sync::Arc;

use islaris_asm::aarch64::{self as a64, Shift, XReg};
use islaris_asm::{Asm, Program};
use islaris_bv::Bv;
use islaris_core::{
    build, Arg, Atom, BlockAnn, NoIo, Param, ProgramSpec, SeqExpr, SeqVar, SpecDef, SpecTable,
};
use islaris_isla::IslaConfig;
use islaris_itl::Reg;
use islaris_models::ARM;
use islaris_smt::{BvBinop, BvCmp, Expr, Sort, Var};

use crate::report::{run_case, trace_program_map_with, CaseArtifacts, CaseCtx, CaseOutcome};

/// Code base address.
pub const BASE: u64 = 0x6_0000;
/// Address of the bundled comparator implementation.
pub const CMP_IMPL: u64 = 0x6_1000;

/// Assembles the binary search and the comparator.
///
/// # Panics
///
/// Panics only on encoder bugs.
#[must_use]
pub fn program() -> Program {
    let (x0, x2, x3) = (XReg(0), XReg(2), XReg(3));
    let (x4, x5, x6, x7, x8, x9, x10) = (
        XReg(4),
        XReg(5),
        XReg(6),
        XReg(7),
        XReg(8),
        XReg(9),
        XReg(10),
    );
    let mut asm = Asm::new(BASE);
    // x0 = base, x1 = n, x2 = key, x3 = cmp.
    asm.label("binsearch");
    asm.put(a64::mov_reg(x10, XReg(30))); //        save return address
    asm.put_or(a64::movz(x4, 0, 0)); //             lo = 0
    asm.put(a64::mov_reg(x5, XReg(1))); //          hi = n
    asm.label("loop");
    asm.put(a64::cmp_reg(x4, x5)); //               lo == hi?
    asm.branch_to("done", |off| a64::b_cond(a64::Cond::Eq, off));
    asm.put(a64::sub_reg(x6, x5, x4)); //           x6 = hi - lo
    asm.put_or(a64::lsr_imm(x6, x6, 1)); //         x6 >>= 1
    asm.put(a64::add_reg(x6, x4, x6)); //           mid = lo + (hi-lo)/2
    asm.put_or(a64::add_reg_shifted(x7, x0, x6, Shift::Lsl, 3)); // &base[mid]
    asm.put_or(a64::ldr_imm(x8, x7, 0)); //         elem = base[mid]
    asm.put(a64::blr(x3)); //                       x9 = cmp(elem, key)
    asm.label("ret_pt");
    asm.branch_to("lo_branch", move |off| a64::cbz(x9, off));
    asm.put(a64::mov_reg(x5, x6)); //               hi = mid
    asm.branch_to("loop", a64::b);
    asm.label("lo_branch");
    asm.put_or(a64::add_imm(x4, x6, 1)); //         lo = mid + 1
    asm.branch_to("loop", a64::b);
    asm.label("done");
    asm.put(a64::mov_reg(XReg(30), x10)); //        restore return address
    asm.put(a64::mov_reg(x0, x4)); //               result = lo
    asm.put(a64::ret(XReg(30)));
    // --- the comparator: x9 = (x8 <u x2) ? 0 : 1 ---
    asm.org(CMP_IMPL);
    asm.label("cmp_impl");
    asm.put_or(a64::movz(x9, 0, 0));
    asm.put(a64::cmp_reg(x8, x2));
    asm.branch_to("cmp_end", |off| a64::b_cond(a64::Cond::Cc, off)); // x8 <u x2
    asm.put_or(a64::movz(x9, 1, 0));
    asm.label("cmp_end");
    asm.put(a64::ret(XReg(30)));
    asm.finish().expect("binsearch assembles")
}

const BASE_V: Var = Var(0);
const N: Var = Var(1);
const KEY: Var = Var(2);
const F: Var = Var(3);
const LO: Var = Var(4);
const HI: Var = Var(5);
const MID: Var = Var(6);
const R: Var = Var(7);
const RES: Var = Var(8);
const E: Var = Var(9);
const RA: Var = Var(10);
// scratch / wildcard ghosts
const J6: Var = Var(11);
const J7: Var = Var(12);
const J8: Var = Var(13);
const J9: Var = Var(14);
const J30: Var = Var(15);
const FN: Var = Var(16);
const FZ: Var = Var(17);
const FC: Var = Var(18);
const FV: Var = Var(19);
const Q0: Var = Var(20);
const Q4: Var = Var(21);
const Q5: Var = Var(22);
const Q6: Var = Var(23);
const Q7: Var = Var(24);
const Q8: Var = Var(25);
const Q9: Var = Var(26);
const Q10: Var = Var(27);
const Q30: Var = Var(28);
const B: SeqVar = SeqVar(0);

fn bv64(v: Var) -> Param {
    Param::Bv(v, Sort::BitVec(64))
}

fn flag(v: Var) -> Param {
    Param::Bv(v, Sort::BitVec(1))
}

fn flags(n: Var, z: Var, c: Var, v: Var) -> Vec<Atom> {
    vec![
        build::field("PSTATE", "N", Expr::var(n)),
        build::field("PSTATE", "Z", Expr::var(z)),
        build::field("PSTATE", "C", Expr::var(c)),
        build::field("PSTATE", "V", Expr::var(v)),
    ]
}

/// Ownership of the configuration registers the sized loads consult.
fn config_atoms() -> Vec<Atom> {
    vec![
        build::field("PSTATE", "EL", Expr::bv(2, 0b10)),
        build::field("PSTATE", "SP", Expr::bv(1, 1)),
        build::reg("SCTLR_EL2", Expr::bv(64, 0)),
    ]
}

/// Size facts: `n` small enough that `base + 8·n` cannot wrap (the
/// "valid ranges of memory addresses" conditions the paper omits for
/// presentation).
fn size_facts() -> Vec<Atom> {
    vec![
        Atom::Pure(Expr::cmp(BvCmp::Ult, Expr::var(N), Expr::bv(64, 1 << 48))),
        build::no_wrap_add(
            Expr::var(BASE_V),
            Expr::binop(BvBinop::Shl, Expr::var(N), Expr::bv(64, 3)),
        ),
        Atom::LenEq(Expr::var(N), B),
    ]
}

fn post_args() -> Vec<Arg> {
    vec![
        Arg::Bv(Expr::var(BASE_V)),
        Arg::Bv(Expr::var(N)),
        Arg::Seq(SeqExpr::Var(B)),
    ]
}

fn array_atom() -> Atom {
    Atom::MemArray {
        addr: Expr::var(BASE_V),
        seq: SeqExpr::Var(B),
        elem_bytes: 8,
    }
}

/// Builds the spec table.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn specs() -> SpecTable {
    let mut t = SpecTable::new();

    // Entry: AAPCS-style x0..x3 arguments, comparator spec for x3, return
    // spec for x30.
    let mut pre = vec![
        build::reg_var("R0", BASE_V),
        build::reg_var("R1", N),
        build::reg_var("R2", KEY),
        build::reg_var("R3", F),
        build::reg_var("R30", R),
        build::reg_var("R4", Q4),
        build::reg_var("R5", Q5),
        build::reg_var("R6", J6),
        build::reg_var("R7", J7),
        build::reg_var("R8", J8),
        build::reg_var("R9", J9),
        build::reg_var("R10", Q10),
        build::code_spec(Expr::var(F), "cmp_spec", vec![]),
        build::code_spec(Expr::var(R), "bs_post", post_args()),
        array_atom(),
    ];
    pre.extend(flags(FN, FZ, FC, FV));
    pre.extend(config_atoms());
    pre.extend(size_facts());
    t.add(SpecDef {
        name: "bs_pre".into(),
        params: vec![
            bv64(BASE_V),
            bv64(N),
            bv64(KEY),
            bv64(F),
            bv64(R),
            bv64(Q4),
            bv64(Q5),
            bv64(J6),
            bv64(J7),
            bv64(J8),
            bv64(J9),
            bv64(Q10),
            flag(FN),
            flag(FZ),
            flag(FC),
            flag(FV),
            Param::Seq(B),
        ],
        atoms: pre,
    });

    // Loop invariant: lo ≤ hi ≤ n.
    let mut inv = vec![
        build::reg_var("R0", BASE_V),
        build::reg_var("R2", KEY),
        build::reg_var("R3", F),
        build::reg_var("R4", LO),
        build::reg_var("R5", HI),
        build::reg_var("R10", R),
        build::reg_var("R6", J6),
        build::reg_var("R7", J7),
        build::reg_var("R8", J8),
        build::reg_var("R9", J9),
        build::reg_var("R30", J30),
        build::code_spec(Expr::var(F), "cmp_spec", vec![]),
        build::code_spec(Expr::var(R), "bs_post", post_args()),
        array_atom(),
        Atom::Pure(Expr::cmp(BvCmp::Ule, Expr::var(LO), Expr::var(HI))),
        Atom::Pure(Expr::cmp(BvCmp::Ule, Expr::var(HI), Expr::var(N))),
    ];
    inv.extend(flags(FN, FZ, FC, FV));
    inv.extend(config_atoms());
    inv.extend(size_facts());
    t.add(SpecDef {
        name: "bs_inv".into(),
        params: vec![
            bv64(BASE_V),
            bv64(KEY),
            bv64(F),
            bv64(LO),
            bv64(HI),
            bv64(R),
            bv64(J6),
            bv64(J7),
            bv64(J8),
            bv64(J9),
            bv64(J30),
            bv64(N),
            flag(FN),
            flag(FZ),
            flag(FC),
            flag(FV),
            Param::Seq(B),
        ],
        atoms: inv,
    });

    // The comparator contract (`x3 @@ cmp_spec`): element in x8, key in
    // x2, callee-preserved loop state, continuation at x30 (which, at the
    // call site, is the annotated `ret_pt`).
    let mut cmp = vec![
        build::reg_var("R8", E),
        build::reg_var("R2", KEY),
        build::reg_var("R30", RA),
        build::reg_var("R0", BASE_V),
        build::reg_var("R3", F),
        build::reg_var("R4", LO),
        build::reg_var("R5", HI),
        build::reg_var("R6", MID),
        build::reg_var("R7", J7),
        build::reg_var("R9", J9),
        build::reg_var("R10", R),
        build::code_spec(Expr::var(F), "cmp_spec", vec![]),
        build::code_spec(Expr::var(R), "bs_post", post_args()),
        array_atom(),
        // The loop-state facts the continuation needs (carried like a
        // closure environment).
        Atom::Pure(Expr::cmp(BvCmp::Ule, Expr::var(LO), Expr::var(MID))),
        Atom::Pure(Expr::cmp(BvCmp::Ult, Expr::var(MID), Expr::var(HI))),
        Atom::Pure(Expr::cmp(BvCmp::Ule, Expr::var(HI), Expr::var(N))),
        build::code_spec(Expr::var(RA), "after_cmp", vec![]),
    ];
    cmp.extend(flags(FN, FZ, FC, FV));
    cmp.extend(config_atoms());
    cmp.extend(size_facts());
    t.add(SpecDef {
        name: "cmp_spec".into(),
        params: vec![
            bv64(E),
            bv64(KEY),
            bv64(RA),
            bv64(BASE_V),
            bv64(F),
            bv64(LO),
            bv64(HI),
            bv64(MID),
            bv64(J7),
            bv64(J9),
            bv64(R),
            bv64(N),
            flag(FN),
            flag(FZ),
            flag(FC),
            flag(FV),
            Param::Seq(B),
        ],
        atoms: cmp,
    });

    // The continuation after the comparator returns (annotated at
    // `ret_pt`): result in x9 is 0 or 1, loop state intact.
    let mut after = vec![
        build::reg_var("R0", BASE_V),
        build::reg_var("R2", KEY),
        build::reg_var("R3", F),
        build::reg_var("R4", LO),
        build::reg_var("R5", HI),
        build::reg_var("R6", MID),
        build::reg_var("R7", J7),
        build::reg_var("R8", J8),
        build::reg_var("R9", RES),
        build::reg_var("R10", R),
        build::reg_var("R30", J30),
        build::code_spec(Expr::var(F), "cmp_spec", vec![]),
        build::code_spec(Expr::var(R), "bs_post", post_args()),
        array_atom(),
        Atom::Pure(Expr::cmp(BvCmp::Ult, Expr::var(RES), Expr::bv(64, 2))),
        Atom::Pure(Expr::cmp(BvCmp::Ule, Expr::var(LO), Expr::var(MID))),
        Atom::Pure(Expr::cmp(BvCmp::Ult, Expr::var(MID), Expr::var(HI))),
        Atom::Pure(Expr::cmp(BvCmp::Ule, Expr::var(HI), Expr::var(N))),
    ];
    after.extend(flags(FN, FZ, FC, FV));
    after.extend(config_atoms());
    after.extend(size_facts());
    t.add(SpecDef {
        name: "after_cmp".into(),
        params: vec![
            bv64(BASE_V),
            bv64(KEY),
            bv64(F),
            bv64(LO),
            bv64(HI),
            bv64(MID),
            bv64(J7),
            bv64(J8),
            bv64(RES),
            bv64(R),
            bv64(J30),
            bv64(N),
            flag(FN),
            flag(FZ),
            flag(FC),
            flag(FV),
            Param::Seq(B),
        ],
        atoms: after,
    });

    // Postcondition: an index ≤ n in x0, array intact, everything else
    // returned.
    let post = vec![
        build::reg_var("R0", Q0),
        Atom::Pure(Expr::cmp(BvCmp::Ule, Expr::var(Q0), Expr::var(N))),
        Atom::MemArray {
            addr: Expr::var(BASE_V),
            seq: SeqExpr::Var(B),
            elem_bytes: 8,
        },
        build::reg_var("R4", Q4),
        build::reg_var("R5", Q5),
        build::reg_var("R6", Q6),
        build::reg_var("R7", Q7),
        build::reg_var("R8", Q8),
        build::reg_var("R9", Q9),
        build::reg_var("R10", Q10),
        build::reg_var("R30", Q30),
    ];
    t.add(SpecDef {
        name: "bs_post".into(),
        params: vec![
            bv64(BASE_V),
            bv64(N),
            Param::Seq(B),
            bv64(Q0),
            bv64(Q4),
            bv64(Q5),
            bv64(Q6),
            bv64(Q7),
            bv64(Q8),
            bv64(Q9),
            bv64(Q10),
            bv64(Q30),
        ],
        atoms: post,
    });
    t
}

/// Builds the full case study (the comparator is verified against
/// `cmp_spec` as its own block).
#[must_use]
pub fn build_case() -> CaseArtifacts {
    build_case_with(&CaseCtx::default())
}

/// [`build_case`] under an explicit build context (shared trace cache,
/// per-instruction worker count).
#[must_use]
pub fn build_case_with(ctx: &CaseCtx) -> CaseArtifacts {
    let program = program();
    let mut cfg = IslaConfig::new(ARM)
        .assume_reg("PSTATE.EL", Bv::new(2, 0b10))
        .assume_reg("PSTATE.SP", Bv::new(1, 1))
        .assume_reg("SCTLR_EL2", Bv::zero(64));
    cfg.solver.sat = ctx.sat;
    let (instrs, isla_stats, cache) = trace_program_map_with(ctx, &cfg, &program);
    let mut blocks = BTreeMap::new();
    blocks.insert(
        program.label("binsearch"),
        BlockAnn {
            spec: "bs_pre".into(),
            verify: true,
        },
    );
    blocks.insert(
        program.label("loop"),
        BlockAnn {
            spec: "bs_inv".into(),
            verify: true,
        },
    );
    blocks.insert(
        program.label("ret_pt"),
        BlockAnn {
            spec: "after_cmp".into(),
            verify: true,
        },
    );
    blocks.insert(
        program.label("cmp_impl"),
        BlockAnn {
            spec: "cmp_spec".into(),
            verify: true,
        },
    );
    let prog_spec = ProgramSpec {
        pc: Reg::new(ARM.pc),
        instrs,
        blocks,
        specs: specs(),
    };
    CaseArtifacts {
        name: "bin.search",
        isa: "Arm",
        program,
        prog_spec,
        protocol: Arc::new(NoIo),
        isla_stats,
        cache,
        sat: ctx.sat,
    }
}

/// Verifies the case.
#[must_use]
pub fn run() -> CaseOutcome {
    run_case(&build_case()).0
}
