//! The memcpy case study, RISC-V version (§2.7 and Fig. 7 column 3).
//!
//! The Clang-compiled shape: pointer-bumping rather than indexed. The loop
//! invariant expresses the copied prefix through the *remaining* count
//! (`m = n − a2`), so every parameter is inferable from registers — the
//! binding-order discipline of the Lithium-style automation.

use std::collections::BTreeMap;
use std::sync::Arc;

use islaris_asm::riscv::{self as rv, Gpr};
use islaris_asm::{Asm, Program};
use islaris_core::{
    build, Arg, Atom, BlockAnn, NoIo, Param, ProgramSpec, SeqExpr, SeqVar, SpecDef, SpecTable,
};
use islaris_isla::IslaConfig;
use islaris_itl::Reg;
use islaris_models::RISCV;
use islaris_smt::{BvCmp, Expr, Sort, Var};

use crate::report::{run_case, trace_program_map_with, CaseArtifacts, CaseCtx, CaseOutcome};

/// Code base address.
pub const BASE: u64 = 0x2_0000;

/// Assembles the Fig. 7 RISC-V memcpy.
///
/// # Panics
///
/// Panics only on encoder bugs (fixed program).
#[must_use]
pub fn program() -> Program {
    let (a0, a1, a2, a3) = (Gpr::A0, Gpr::A1, Gpr::A2, Gpr::A3);
    let mut asm = Asm::new(BASE);
    asm.label("memcpy");
    asm.branch_to("L2", move |off| rv::beq(a2, Gpr::ZERO, off)); // beqz a2, .L2
    asm.label("L1");
    asm.put_or(rv::lb(a3, a1, 0)); //   lb a3, 0(a1)
    asm.put_or(rv::sb(a3, a0, 0)); //   sb a3, 0(a0)
    asm.put_or(rv::addi(a2, a2, -1)); // addi a2, a2, -1
    asm.put_or(rv::addi(a0, a0, 1)); //  addi a0, a0, 1
    asm.put_or(rv::addi(a1, a1, 1)); //  addi a1, a1, 1
    asm.branch_to("L1", move |off| rv::bne(a2, Gpr::ZERO, off)); // bnez a2, .L1
    asm.label("L2");
    asm.put(rv::ret()); //               ret
    asm.finish().expect("memcpy assembles")
}

const D: Var = Var(0);
const S: Var = Var(1);
const N: Var = Var(2);
const R: Var = Var(3);
const J3: Var = Var(4);
const P0: Var = Var(5);
const P1: Var = Var(6);
const P2: Var = Var(7);
const Q0: Var = Var(11);
const Q1: Var = Var(12);
const Q2: Var = Var(13);
const Q3: Var = Var(14);
const Q5: Var = Var(16);
const BS: SeqVar = SeqVar(0);
const BD: SeqVar = SeqVar(1);
const PBS: SeqVar = SeqVar(2);
const PBD: SeqVar = SeqVar(3);

fn bv64(v: Var) -> Param {
    Param::Bv(v, Sort::BitVec(64))
}

fn post_args() -> Vec<Arg> {
    vec![
        Arg::Bv(Expr::var(S)),
        Arg::Bv(Expr::var(D)),
        Arg::Bv(Expr::var(N)),
        Arg::Seq(SeqExpr::Var(BS)),
        Arg::Seq(SeqExpr::Var(BD)),
    ]
}

/// The return address is 2-byte aligned (the paper notes this required
/// alignment for RISC-V return addresses): makes `jalr`'s `r & ~1` equal
/// to `r`.
fn ra_aligned(r: Var) -> Atom {
    Atom::Pure(Expr::eq(
        Expr::binop(islaris_smt::BvBinop::And, Expr::var(r), Expr::bv(64, 1)),
        Expr::bv(64, 0),
    ))
}

/// Copied-prefix length at the loop head: `n − a2`.
fn copied(n: Var, a2: Var) -> Expr {
    Expr::sub(Expr::var(n), Expr::var(a2))
}

/// Builds the spec table.
#[must_use]
pub fn specs() -> SpecTable {
    let mut t = SpecTable::new();
    t.add(SpecDef {
        name: "memcpy_pre".into(),
        params: vec![
            bv64(D),
            bv64(S),
            bv64(N),
            bv64(R),
            bv64(J3),
            Param::Seq(BS),
            Param::Seq(BD),
        ],
        atoms: vec![
            build::reg_var("x10", D),
            build::reg_var("x11", S),
            build::reg_var("x12", N),
            build::reg_var("x13", J3),
            build::reg_var("x1", R),
            ra_aligned(R),
            Atom::LenEq(Expr::var(N), BS),
            Atom::LenEq(Expr::var(N), BD),
            build::no_wrap_add(Expr::var(S), Expr::var(N)),
            build::no_wrap_add(Expr::var(D), Expr::var(N)),
            build::byte_array(Expr::var(S), SeqExpr::Var(BS)),
            build::byte_array(Expr::var(D), SeqExpr::Var(BD)),
            build::code_spec(Expr::var(R), "memcpy_post", post_args()),
        ],
    });
    // Invariant at .L1: registers first (bind the current values), then
    // the code spec (binds d, s, n, Bs, Bd), then the relations.
    t.add(SpecDef {
        name: "memcpy_inv".into(),
        params: vec![
            bv64(P0),
            bv64(P1),
            bv64(P2),
            bv64(R),
            bv64(J3),
            bv64(S),
            bv64(D),
            bv64(N),
            Param::Seq(BS),
            Param::Seq(BD),
        ],
        atoms: vec![
            build::reg_var("x10", P0),
            build::reg_var("x11", P1),
            build::reg_var("x12", P2),
            build::reg_var("x13", J3),
            build::reg_var("x1", R),
            build::code_spec(Expr::var(R), "memcpy_post", post_args()),
            ra_aligned(R),
            Atom::Pure(Expr::cmp(BvCmp::Ule, Expr::bv(64, 1), Expr::var(P2))),
            Atom::Pure(Expr::cmp(BvCmp::Ule, Expr::var(P2), Expr::var(N))),
            Atom::Pure(Expr::eq(
                Expr::var(P0),
                Expr::add(Expr::var(D), copied(N, P2)),
            )),
            Atom::Pure(Expr::eq(
                Expr::var(P1),
                Expr::add(Expr::var(S), copied(N, P2)),
            )),
            Atom::LenEq(Expr::var(N), BS),
            Atom::LenEq(Expr::var(N), BD),
            build::no_wrap_add(Expr::var(S), Expr::var(N)),
            build::no_wrap_add(Expr::var(D), Expr::var(N)),
            build::byte_array(Expr::var(S), SeqExpr::Var(BS)),
            build::byte_array(
                Expr::var(D),
                SeqExpr::Var(BS)
                    .take(copied(N, P2))
                    .app(SeqExpr::Var(BD).drop(copied(N, P2))),
            ),
        ],
    });
    t.add(SpecDef {
        name: "memcpy_post".into(),
        params: vec![
            bv64(S),
            bv64(D),
            bv64(N),
            Param::Seq(PBS),
            Param::Seq(PBD),
            bv64(Q0),
            bv64(Q1),
            bv64(Q2),
            bv64(Q3),
            bv64(Q5),
        ],
        atoms: vec![
            build::reg_var("x10", Q0),
            build::reg_var("x11", Q1),
            build::reg_var("x12", Q2),
            build::reg_var("x13", Q3),
            build::reg_var("x1", Q5),
            Atom::MemArray {
                addr: Expr::var(S),
                seq: SeqExpr::Var(PBS),
                elem_bytes: 1,
            },
            Atom::MemArray {
                addr: Expr::var(D),
                seq: SeqExpr::Var(PBS),
                elem_bytes: 1,
            },
            Atom::LenEq(Expr::var(N), PBS),
        ],
    });
    t
}

/// Builds the full case study.
#[must_use]
pub fn build_case() -> CaseArtifacts {
    build_case_with(&CaseCtx::default())
}

/// [`build_case`] under an explicit build context (shared trace cache,
/// per-instruction worker count).
#[must_use]
pub fn build_case_with(ctx: &CaseCtx) -> CaseArtifacts {
    let program = program();
    let mut cfg = IslaConfig::new(RISCV);
    cfg.solver.sat = ctx.sat;
    let (instrs, isla_stats, cache) = trace_program_map_with(ctx, &cfg, &program);
    let mut blocks = BTreeMap::new();
    blocks.insert(
        program.label("memcpy"),
        BlockAnn {
            spec: "memcpy_pre".into(),
            verify: true,
        },
    );
    blocks.insert(
        program.label("L1"),
        BlockAnn {
            spec: "memcpy_inv".into(),
            verify: true,
        },
    );
    let prog_spec = ProgramSpec {
        pc: Reg::new(RISCV.pc),
        instrs,
        blocks,
        specs: specs(),
    };
    CaseArtifacts {
        name: "memcpy",
        isa: "RV",
        program,
        prog_spec,
        protocol: Arc::new(NoIo),
        isla_stats,
        cache,
        sat: ctx.sat,
    }
}

/// Verifies the case and returns the Fig. 12 measurements.
#[must_use]
pub fn run() -> CaseOutcome {
    run_case(&build_case()).0
}
