//! The hvc case study (§2.6 and Fig. 9 of the paper).
//!
//! Hand-written assembly that installs an exception vector table at EL2,
//! configures and drops to EL1, performs a hypervisor call handled at the
//! vector's lower-EL synchronous slot, and returns. The verified property
//! is the paper's: upon reaching the hang at `enter_el1 + 8`, `x0 = 42`.
//!
//! The Isla configuration leaves PSTATE unconstrained (the program changes
//! exception level at runtime), so the traces carry the full EL case
//! splits, pruned during verification by the concrete context — exactly
//! why this case's ITL size is large relative to its 13 instructions in
//! Fig. 12.

use std::collections::BTreeMap;
use std::sync::Arc;

use islaris_asm::aarch64::{self as a64, SysReg, XReg};
use islaris_asm::{Asm, Program};
use islaris_core::{build, BlockAnn, NoIo, Param, ProgramSpec, SpecDef, SpecTable};
use islaris_isla::IslaConfig;
use islaris_itl::Reg;
use islaris_models::ARM;
use islaris_smt::{Expr, Sort, Var};

use crate::report::{run_case, trace_program_map_with, CaseArtifacts, CaseCtx, CaseOutcome};

/// `_start` (initialisation at EL2), per Fig. 9's `.org 0x80000`.
pub const START: u64 = 0x8_0000;
/// `enter_el1`.
pub const ENTER_EL1: u64 = 0x9_0000;
/// The exception vector table base.
pub const VECTOR: u64 = 0xA_0000;
/// Synchronous, lower EL, AArch64: vector + 0x400.
pub const HVC_SLOT: u64 = VECTOR + 0x400;
/// The hang (`b .`) whose spec is `x0 = 42`.
pub const HANG: u64 = ENTER_EL1 + 8;

/// Assembles the Fig. 9 program.
///
/// # Panics
///
/// Panics only on encoder bugs.
#[must_use]
pub fn program() -> Program {
    let x0 = XReg(0);
    let mut asm = Asm::new(START);
    // *** initialisation at EL2 ***
    asm.put_all(a64::mov_imm64(x0, VECTOR)); //     mov x0, 0xa0000
    asm.put(a64::msr(SysReg::VBAR_EL2, x0)); //     msr vbar_el2, x0
    asm.put_all(a64::mov_imm64(x0, 0x8000_0000)); // hypervisor config: aarch64 at EL1
    asm.put(a64::msr(SysReg::HCR_EL2, x0)); //      msr hcr_el2, x0
    asm.put_all(a64::mov_imm64(x0, 0x3c4)); //      EL1 config (SP_EL0, no interrupts)
    asm.put(a64::msr(SysReg::SPSR_EL2, x0)); //     msr spsr_el2, x0
    asm.put_all(a64::mov_imm64(x0, ENTER_EL1)); //  EL1 start address
    asm.put(a64::msr(SysReg::ELR_EL2, x0)); //      msr elr_el2, x0
    asm.put(a64::eret()); //                        "exception return"
                          // *** calling the vector from EL1 ***
    asm.org(ENTER_EL1);
    asm.put_or(a64::movz(x0, 0, 0)); //             zero x0
    asm.put(a64::hvc(0)); //                        hypervisor call
    asm.label("hang");
    asm.branch_to("hang", a64::b); //               b . (hang forever)
                                   // *** the exception vector table (lower-EL synchronous slot) ***
    asm.org(HVC_SLOT);
    asm.put_or(a64::movz(x0, 42, 0)); //            mov x0, 42
    asm.put(a64::eret()); //                        return from exception
    asm.finish().expect("hvc program assembles")
}

const X0: Var = Var(0);
const GV: Var = Var(1);
const GH: Var = Var(2);
const GS: Var = Var(3);
const GE: Var = Var(4);
const GESR: Var = Var(5);
const GFAR: Var = Var(6);
const FN: Var = Var(7);
const FZ: Var = Var(8);
const FC: Var = Var(9);
const FV: Var = Var(10);
const H0: Var = Var(11);

/// Builds the spec table: the entry precondition owns the system state;
/// the hang exit point requires `x0 = 42`.
#[must_use]
pub fn specs() -> SpecTable {
    let mut t = SpecTable::new();
    let mut pre = vec![
        build::reg_var("R0", X0),
        build::reg_var("VBAR_EL2", GV),
        build::reg_var("HCR_EL2", GH),
        build::reg_var("SPSR_EL2", GS),
        build::reg_var("ELR_EL2", GE),
        build::reg_var("ESR_EL2", GESR),
        build::reg_var("FAR_EL2", GFAR),
        // Initial machine configuration: EL2h, AArch64.
        build::field("PSTATE", "EL", Expr::bv(2, 0b10)),
        build::field("PSTATE", "SP", Expr::bv(1, 1)),
        build::field("PSTATE", "nRW", Expr::bv(1, 0)),
        build::field("PSTATE", "D", Expr::bv(1, 1)),
        build::field("PSTATE", "A", Expr::bv(1, 1)),
        build::field("PSTATE", "I", Expr::bv(1, 1)),
        build::field("PSTATE", "F", Expr::bv(1, 1)),
        build::field("PSTATE", "N", Expr::var(FN)),
        build::field("PSTATE", "Z", Expr::var(FZ)),
        build::field("PSTATE", "C", Expr::var(FC)),
        build::field("PSTATE", "V", Expr::var(FV)),
    ];
    pre.shrink_to_fit();
    t.add(SpecDef {
        name: "hvc_entry".into(),
        params: vec![
            Param::Bv(X0, Sort::BitVec(64)),
            Param::Bv(GV, Sort::BitVec(64)),
            Param::Bv(GH, Sort::BitVec(64)),
            Param::Bv(GS, Sort::BitVec(64)),
            Param::Bv(GE, Sort::BitVec(64)),
            Param::Bv(GESR, Sort::BitVec(64)),
            Param::Bv(GFAR, Sort::BitVec(64)),
            Param::Bv(FN, Sort::BitVec(1)),
            Param::Bv(FZ, Sort::BitVec(1)),
            Param::Bv(FC, Sort::BitVec(1)),
            Param::Bv(FV, Sort::BitVec(1)),
        ],
        atoms: pre,
    });
    // The paper's claim: on reaching the hang, x0 = 42. (The hang also
    // still runs at EL1 with the vector installed.)
    t.add(SpecDef {
        name: "hang_spec".into(),
        params: vec![Param::Bv(H0, Sort::BitVec(64))],
        atoms: vec![
            build::reg("R0", Expr::bv(64, 42)),
            build::field("PSTATE", "EL", Expr::bv(2, 0b01)),
            build::reg("VBAR_EL2", Expr::bv(64, VECTOR as u128)),
        ],
    });
    t
}

/// Builds the full case study. The single verified block runs from
/// `_start` through the eret, the EL1 code, the hypervisor call, the
/// handler, and the final exception return — 13 instructions, no
/// intermediate annotations.
#[must_use]
pub fn build_case() -> CaseArtifacts {
    build_case_with(&CaseCtx::default())
}

/// [`build_case`] under an explicit build context (shared trace cache,
/// per-instruction worker count).
#[must_use]
pub fn build_case_with(ctx: &CaseCtx) -> CaseArtifacts {
    let program = program();
    // Unconstrained configuration: the program changes EL at runtime.
    let mut cfg = IslaConfig::new(ARM);
    cfg.solver.sat = ctx.sat;
    let (instrs, isla_stats, cache) = trace_program_map_with(ctx, &cfg, &program);
    let mut blocks = BTreeMap::new();
    blocks.insert(
        START,
        BlockAnn {
            spec: "hvc_entry".into(),
            verify: true,
        },
    );
    blocks.insert(
        HANG,
        BlockAnn {
            spec: "hang_spec".into(),
            verify: false,
        },
    );
    let prog_spec = ProgramSpec {
        pc: Reg::new(ARM.pc),
        instrs,
        blocks,
        specs: specs(),
    };
    CaseArtifacts {
        name: "hvc",
        isa: "Arm",
        program,
        prog_spec,
        protocol: Arc::new(NoIo),
        isla_stats,
        cache,
        sat: ctx.sat,
    }
}

/// Verifies the case.
#[must_use]
pub fn run() -> CaseOutcome {
    run_case(&build_case()).0
}
