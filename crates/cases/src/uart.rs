//! The UART case study (§6: "Interaction with MMIO").
//!
//! The compiled shape of the paper's `uart1_putc`: poll the line status
//! register until the TX-empty bit is set, then write the character to the
//! IO register. The specification is the paper's `srec`/`scons` protocol
//! (encoded as the [`islaris_core::UartProtocol`] automaton): any number
//! of busy reads, then one ready read, then exactly one write of `c`.

use std::collections::BTreeMap;
use std::sync::Arc;

use islaris_asm::aarch64::{self as a64, XReg};
use islaris_asm::{Asm, Program};
use islaris_bv::Bv;
use islaris_core::{
    build, Arg, Atom, BlockAnn, Param, ProgramSpec, SpecDef, SpecTable, UartProtocol,
};
use islaris_isla::IslaConfig;
use islaris_itl::Reg;
use islaris_models::ARM;
use islaris_smt::{Expr, Sort, Var};

use crate::report::{run_case, trace_program_map_with, CaseArtifacts, CaseCtx, CaseOutcome};

/// Code base address.
pub const BASE: u64 = 0x5_0000;
/// Line status register (device address).
pub const LSR: u64 = 0x9_0050;
/// IO (transmit) register.
pub const IO: u64 = 0x9_0040;

/// Assembles the polling loop.
///
/// # Panics
///
/// Panics only on encoder bugs.
#[must_use]
pub fn program() -> Program {
    let (x0, x1, x2, x3, x4) = (XReg(0), XReg(1), XReg(2), XReg(3), XReg(4));
    let mut asm = Asm::new(BASE);
    asm.label("uart_putc");
    asm.put_all(a64::mov_imm64(x1, LSR)); //   x1 = &LSR
    asm.put_or(a64::movz(x3, 1, 0)); //        x3 = 1 (bit mask)
    asm.label("poll");
    asm.put_or(a64::ldr32_imm(x2, x1, 0)); //  w2 = *LSR
    asm.put_or(a64::lsr_imm(x2, x2, 5)); //    x2 >>= 5
    asm.put(a64::and_reg(x2, x2, x3)); //      x2 &= 1  (LSR_TX_EMPTY)
    asm.branch_to("poll", move |off| a64::cbz(x2, off)); // busy → poll
    asm.put_all(a64::mov_imm64(x4, IO)); //    x4 = &IO
    asm.put_or(a64::str32_imm(x0, x4, 0)); //  *IO = (u32) c
    asm.put(a64::ret(XReg(30)));
    asm.finish().expect("uart assembles")
}

const C: Var = Var(0);
const R: Var = Var(1);
const J1: Var = Var(2);
const J2: Var = Var(3);
const J3: Var = Var(4);
const J4: Var = Var(5);
const Q0: Var = Var(6);
const Q1: Var = Var(7);
const Q2: Var = Var(8);
const Q3: Var = Var(9);
const Q4: Var = Var(10);
const Q5: Var = Var(11);

fn mmio_atoms() -> Vec<Atom> {
    vec![
        Atom::Mmio {
            addr: LSR,
            bytes: 4,
        },
        Atom::Mmio { addr: IO, bytes: 4 },
        // The sized accesses check alignment against the configuration.
        build::field("PSTATE", "EL", Expr::bv(2, 0b10)),
        build::field("PSTATE", "SP", Expr::bv(1, 1)),
        build::reg("SCTLR_EL2", Expr::bv(64, 0)),
    ]
}

/// Builds the spec table.
#[must_use]
pub fn specs() -> SpecTable {
    let mut t = SpecTable::new();
    let mut pre = vec![
        build::reg_var("R0", C),
        build::reg_var("R1", J1),
        build::reg_var("R2", J2),
        build::reg_var("R3", J3),
        build::reg_var("R4", J4),
        build::reg_var("R30", R),
        Atom::Io(0),
        build::code_spec(Expr::var(R), "uart_post", vec![Arg::Bv(Expr::var(C))]),
    ];
    pre.extend(mmio_atoms());
    t.add(SpecDef {
        name: "uart_pre".into(),
        params: vec![
            Param::Bv(C, Sort::BitVec(64)),
            Param::Bv(R, Sort::BitVec(64)),
            Param::Bv(J1, Sort::BitVec(64)),
            Param::Bv(J2, Sort::BitVec(64)),
            Param::Bv(J3, Sort::BitVec(64)),
            Param::Bv(J4, Sort::BitVec(64)),
        ],
        atoms: pre,
    });
    // Loop invariant at `poll`: still in the polling protocol state, with
    // the device pointer and mask materialised.
    let mut inv = vec![
        build::reg_var("R0", C),
        build::reg("R1", Expr::bv(64, LSR as u128)),
        build::reg_var("R2", J2),
        build::reg("R3", Expr::bv(64, 1)),
        build::reg_var("R4", J4),
        build::reg_var("R30", R),
        Atom::Io(0),
        build::code_spec(Expr::var(R), "uart_post", vec![Arg::Bv(Expr::var(C))]),
    ];
    inv.extend(mmio_atoms());
    t.add(SpecDef {
        name: "uart_inv".into(),
        params: vec![
            Param::Bv(C, Sort::BitVec(64)),
            Param::Bv(R, Sort::BitVec(64)),
            Param::Bv(J2, Sort::BitVec(64)),
            Param::Bv(J4, Sort::BitVec(64)),
        ],
        atoms: inv,
    });
    // Postcondition: protocol completed (state 2), ownership returned.
    let mut post = vec![
        build::reg_var("R0", Q0),
        build::reg_var("R1", Q1),
        build::reg_var("R2", Q2),
        build::reg_var("R3", Q3),
        build::reg_var("R4", Q4),
        build::reg_var("R30", Q5),
        Atom::Io(2),
    ];
    post.extend(mmio_atoms());
    t.add(SpecDef {
        name: "uart_post".into(),
        params: vec![
            Param::Bv(C, Sort::BitVec(64)),
            Param::Bv(Q0, Sort::BitVec(64)),
            Param::Bv(Q1, Sort::BitVec(64)),
            Param::Bv(Q2, Sort::BitVec(64)),
            Param::Bv(Q3, Sort::BitVec(64)),
            Param::Bv(Q4, Sort::BitVec(64)),
            Param::Bv(Q5, Sort::BitVec(64)),
        ],
        atoms: post,
    });
    t
}

/// The protocol: the paper's
/// `srec(R. ∃b. scons(R(LSR,b), b[5] ? scons(W(IO,c), s) : R))` with `c`
/// the low 32 bits of the argument ghost.
#[must_use]
pub fn protocol() -> UartProtocol {
    UartProtocol {
        lsr: LSR,
        io: IO,
        c: Expr::extract(31, 0, Expr::var(C)),
    }
}

/// The Isla configuration (EL2, no alignment checking).
#[must_use]
pub fn config() -> IslaConfig {
    IslaConfig::new(ARM)
        .assume_reg("PSTATE.EL", Bv::new(2, 0b10))
        .assume_reg("PSTATE.SP", Bv::new(1, 1))
        .assume_reg("SCTLR_EL2", Bv::zero(64))
}

/// Builds the full case study.
#[must_use]
pub fn build_case() -> CaseArtifacts {
    build_case_with(&CaseCtx::default())
}

/// [`build_case`] under an explicit build context (shared trace cache,
/// per-instruction worker count).
#[must_use]
pub fn build_case_with(ctx: &CaseCtx) -> CaseArtifacts {
    let program = program();
    let mut cfg = config();
    cfg.solver.sat = ctx.sat;
    let (instrs, isla_stats, cache) = trace_program_map_with(ctx, &cfg, &program);
    let mut blocks = BTreeMap::new();
    blocks.insert(
        program.label("uart_putc"),
        BlockAnn {
            spec: "uart_pre".into(),
            verify: true,
        },
    );
    blocks.insert(
        program.label("poll"),
        BlockAnn {
            spec: "uart_inv".into(),
            verify: true,
        },
    );
    let prog_spec = ProgramSpec {
        pc: Reg::new(ARM.pc),
        instrs,
        blocks,
        specs: specs(),
    };
    CaseArtifacts {
        name: "UART",
        isa: "Arm",
        program,
        prog_spec,
        protocol: Arc::new(protocol()),
        isla_stats,
        cache,
        sat: ctx.sat,
    }
}

/// Verifies the case.
#[must_use]
pub fn run() -> CaseOutcome {
    run_case(&build_case()).0
}
