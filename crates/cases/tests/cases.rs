//! Case-study verification tests.

use islaris_cases::memcpy_arm;

#[test]
fn memcpy_arm_verifies() {
    let outcome = memcpy_arm::run();
    assert_eq!(outcome.asm_instrs, 8, "Fig. 12 row: 8 instructions");
    assert!(outcome.itl_events > 30, "events: {}", outcome.itl_events);
    assert!(outcome.obligations > 10);
}

#[test]
fn memcpy_riscv_verifies() {
    let outcome = islaris_cases::memcpy_riscv::run();
    assert_eq!(outcome.asm_instrs, 8, "Fig. 12 row: 8 instructions");
    assert!(outcome.obligations > 10);
}

#[test]
fn rbit_verifies() {
    let outcome = islaris_cases::rbit::run();
    assert_eq!(outcome.asm_instrs, 2);
    // All 64 per-bit goals are recorded as obligations, but the
    // extract-over-bvrev rewrite discharges them before CNF, so the
    // SAT solver sees (almost) none of them.
    assert!(outcome.obligations >= 64, "got {}", outcome.obligations);
    assert!(
        outcome.verify_smt < 64,
        "bit equations should fold away before the solver: {}",
        outcome.verify_smt
    );
}

#[test]
fn unaligned_fault_verifies() {
    let outcome = islaris_cases::unaligned::run();
    assert_eq!(outcome.asm_instrs, 1, "single faulting store");
    assert!(
        outcome.itl_events > 15,
        "exception entry is event-heavy: {}",
        outcome.itl_events
    );
}

#[test]
fn hvc_verifies() {
    let outcome = islaris_cases::hvc::run();
    // Fig. 12 reports 13; our rendering of Fig. 9 assembles to 14
    // (mov-immediate splitting differs slightly).
    assert_eq!(outcome.asm_instrs, 14);
    // ITL size large relative to asm (system-register traffic), as in Fig. 12.
    assert!(outcome.itl_events > 100, "events: {}", outcome.itl_events);
}

#[test]
fn uart_verifies() {
    let outcome = islaris_cases::uart::run();
    assert!(outcome.asm_instrs >= 9, "got {}", outcome.asm_instrs);
}

#[test]
fn binsearch_arm_verifies() {
    let outcome = islaris_cases::binsearch_arm::run();
    assert!(outcome.asm_instrs >= 20, "got {}", outcome.asm_instrs);
    assert!(outcome.obligations > 30);
}

#[test]
fn binsearch_riscv_verifies() {
    let outcome = islaris_cases::binsearch_riscv::run();
    assert!(outcome.asm_instrs >= 20, "got {}", outcome.asm_instrs);
}

#[test]
fn pkvm_verifies() {
    let outcome = islaris_cases::pkvm::run();
    assert!(outcome.asm_instrs >= 40, "got {}", outcome.asm_instrs);
    assert!(outcome.itl_events > 200, "events: {}", outcome.itl_events);
}
