//! Timing probe for the checked-solve pipeline on the 64-bit ult
//! transitivity query: solve / trim (hinted vs search) / hinted check /
//! search check, printed for eyeballing where the time goes. Ignored by
//! default — run with `cargo test --release -p islaris-smt --test
//! trim_probe -- --ignored --nocapture`. The EXPERIMENTS.md PR 10
//! numbers come from here.
use std::time::Instant;

use islaris_smt::cnf::Blaster;
use islaris_smt::sat::{check_rup_proof, trim_proof, SatOutcome};
use islaris_smt::{BvCmp, Expr, Sort, Var};

#[test]
#[ignore]
fn trim_split() {
    let x = Expr::var(Var(0));
    let y = Expr::var(Var(1));
    let z = Expr::var(Var(2));
    let sorts = |_: Var| Some(Sort::BitVec(64));
    let mut b = Blaster::new();
    b.assert_expr(&Expr::cmp(BvCmp::Ult, x.clone(), y.clone()), &sorts)
        .unwrap();
    b.assert_expr(&Expr::cmp(BvCmp::Ult, y.clone(), z.clone()), &sorts)
        .unwrap();
    b.assert_expr(&Expr::not(Expr::cmp(BvCmp::Ult, x, z)), &sorts)
        .unwrap();
    let t0 = Instant::now();
    let out = b.solve();
    let t_solve = t0.elapsed();
    let SatOutcome::Unsat(proof) = out else {
        panic!("expected unsat")
    };
    let nv = b.sat_num_vars();
    let db = b.sat_original_clauses();
    eprintln!(
        "solve {t_solve:?}; proof clauses {} total lits {}",
        proof.clauses.len(),
        proof.clauses.iter().map(Vec::len).sum::<usize>()
    );
    eprintln!(
        "hinted={} hint entries total {} max {}",
        proof.is_hinted(),
        proof.hints.iter().map(Vec::len).sum::<usize>(),
        proof.hints.iter().map(Vec::len).max().unwrap_or(0)
    );
    let t1 = Instant::now();
    let trimmed = trim_proof(nv, db, &proof).unwrap();
    let t_trim = t1.elapsed();
    let t1b = Instant::now();
    let trimmed_unhinted = trim_proof(nv, db, &proof.strip_hints()).unwrap();
    let t_trim_unhinted = t1b.elapsed();
    assert_eq!(trimmed_unhinted.clauses.len(), trimmed.clauses.len());
    eprintln!("trim hinted {t_trim:?} vs unhinted {t_trim_unhinted:?}");
    let t2 = Instant::now();
    assert!(check_rup_proof(nv, db, &trimmed));
    let t_hinted = t2.elapsed();
    let t3 = Instant::now();
    assert!(check_rup_proof(nv, db, &trimmed.strip_hints()));
    let t_search = t3.elapsed();
    let t4 = Instant::now();
    assert!(check_rup_proof(nv, db, &proof));
    let t_full = t4.elapsed();
    eprintln!(
        "trimmed to {} clauses; trim {t_trim:?} hinted-check {t_hinted:?} \
         search-check-trimmed {t_search:?} full-check-untrimmed {t_full:?}",
        trimmed.clauses.len()
    );
}
