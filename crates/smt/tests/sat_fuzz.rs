//! Differential CNF fuzzing for the CDCL core.
//!
//! Random CNF formulas plus random assumption sequences are solved twice:
//! once with a `SatConfig` under test (all features on, and each feature
//! individually switched off) and once with the all-features-off reference
//! solver (chronological-ish, no restarts, no reduction). Verdicts must be
//! identical. Every `Sat` model is verified by evaluating the clause set;
//! every `Unsat` is re-proved on a fresh proof-logging solver and the RUP
//! refutation checked with [`check_rup_proof`]. Assumption cores must be
//! subsets of the assumptions and themselves unsatisfiable.
//!
//! 256 cases per property by default (the in-tree runner honours
//! `ISLARIS_PT_CASES`); failures print a seed replayable via
//! `ISLARIS_PT_SEED`.

use islaris_smt::sat::{
    check_rup_proof, trim_proof, AssumptionOutcome, Lit, RupProof, SatConfig, SatOutcome, SatSolver,
};
use islaris_testkit::{forall, Rng, TestResult};

const CASES: u32 = 256;

/// A generated instance: a clause set plus a sequence of assumption
/// queries to replay incrementally.
#[derive(Debug, Clone)]
struct Instance {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
    /// Assumption sets, replayed in order on one solver pair.
    queries: Vec<Vec<Lit>>,
}

fn gen_lit(r: &mut Rng, num_vars: u32) -> Lit {
    Lit::with_sign(r.range_u32(0, num_vars - 1), r.next_bool())
}

fn gen_instance(r: &mut Rng) -> Instance {
    let num_vars = r.range_u32(3, 12);
    // Clause/variable ratio spanning easy-sat through over-constrained:
    // unsatisfiable instances need enough clauses to conflict.
    let num_clauses = r.range_u32(num_vars, num_vars * 5) as usize;
    let clauses = (0..num_clauses)
        .map(|_| {
            let len = r.range_u32(1, 4) as usize;
            // Duplicate literals are deliberately possible: add_clause and
            // the RUP checker must both tolerate them.
            (0..len).map(|_| gen_lit(r, num_vars)).collect()
        })
        .collect();
    let queries = (0..r.range_u32(1, 4))
        .map(|_| {
            (0..r.range_u32(0, 3))
                .map(|_| gen_lit(r, num_vars))
                .collect()
        })
        .collect();
    Instance {
        num_vars,
        clauses,
        queries,
    }
}

fn build(cfg: SatConfig, inst: &Instance) -> SatSolver {
    let mut s = SatSolver::with_config(cfg);
    for _ in 0..inst.num_vars {
        s.new_var();
    }
    for c in &inst.clauses {
        s.add_clause(c.clone());
    }
    s
}

fn model_satisfies(clauses: &[Vec<Lit>], model: &[bool]) -> bool {
    clauses
        .iter()
        .all(|c| c.iter().any(|l| model[l.var() as usize] == l.is_pos()))
}

/// Re-proves unsatisfiability of `clauses` (+ `units`) on a fresh
/// proof-logging reference solver and checks the RUP refutation — then
/// puts the trimmed replay through its paces ([`checked_trimmed_replay`]).
fn checked_unsat(num_vars: u32, clauses: &[Vec<Lit>], units: &[Lit]) -> Result<(), String> {
    let mut s = SatSolver::with_config(SatConfig::all_off());
    for _ in 0..num_vars {
        s.new_var();
    }
    let mut all: Vec<Vec<Lit>> = clauses.to_vec();
    all.extend(units.iter().map(|&l| vec![l]));
    for c in &all {
        s.add_clause(c.clone());
    }
    match s.solve() {
        SatOutcome::Sat(_) => Err("re-proving solver found the instance satisfiable".into()),
        SatOutcome::Unsat(proof) => {
            if check_rup_proof(num_vars, &all, &proof) {
                checked_trimmed_replay(num_vars, &all, &proof)
            } else {
                Err("RUP refutation failed the proof checker".into())
            }
        }
    }
}

/// The trimmed-replay contract on one checker-accepted refutation:
///
/// (a) the trimmed proof carries hints, never grows, and re-checks via
///     the hinted fast path;
/// (b) stripping the hints still re-checks via full occurrence-list
///     search (hints are an accelerator, not part of the proof);
/// (c) tampering is caught: a proof truncated before its empty clause
///     is rejected outright, corrupting every hint on a valid proof
///     degrades to search (never flips the verdict), and mutating a
///     proof clause yields the same verdict hinted and unhinted — so
///     wrong hints can never manufacture an acceptance.
fn checked_trimmed_replay(
    num_vars: u32,
    clauses: &[Vec<Lit>],
    proof: &RupProof,
) -> Result<(), String> {
    let trimmed =
        trim_proof(num_vars, clauses, proof).ok_or("a checker-accepted proof must trim")?;
    if !trimmed.is_hinted() {
        return Err("trimming must attach antecedent hints".into());
    }
    // Trimming must not depend on the input proof's own hints: the
    // search-based derivation (exercised by stripping them) has to land
    // on an equally valid trimmed proof.
    let searched = trim_proof(num_vars, clauses, &proof.strip_hints())
        .ok_or("a checker-accepted proof must trim without input hints")?;
    if !check_rup_proof(num_vars, clauses, &searched) {
        return Err("search-trimmed proof rejected".into());
    }
    if trimmed.clauses.len() > proof.clauses.len() {
        return Err("trimming grew the proof".into());
    }
    if !check_rup_proof(num_vars, clauses, &trimmed) {
        return Err("trimmed+hinted proof rejected".into());
    }
    if !check_rup_proof(num_vars, clauses, &trimmed.strip_hints()) {
        return Err("trimmed proof with hints stripped rejected".into());
    }
    let mut headless = trimmed.clone();
    headless.clauses.pop();
    headless.hints.pop();
    if check_rup_proof(num_vars, clauses, &headless) {
        return Err("tampered (truncated) trimmed proof accepted".into());
    }
    let mut bad_hints = trimmed.clone();
    for h in &mut bad_hints.hints {
        *h = vec![0];
    }
    if !check_rup_proof(num_vars, clauses, &bad_hints) {
        return Err("corrupt hints flipped a valid proof's verdict".into());
    }
    if let Some(i) = trimmed.clauses.iter().position(|c| !c.is_empty()) {
        let mut flipped = trimmed.clone();
        flipped.clauses[i][0] = flipped.clauses[i][0].negate();
        let hinted = check_rup_proof(num_vars, clauses, &flipped);
        let searched = check_rup_proof(num_vars, clauses, &flipped.strip_hints());
        if hinted != searched {
            return Err("hints changed the verdict on a mutated proof".into());
        }
    }
    Ok(())
}

/// Differential run of one instance under `cfg` vs the all-off reference.
fn run_differential(cfg: SatConfig, inst: &Instance) -> Result<(), String> {
    // Plain solve: verdicts equal; Sat models evaluated; Unsat RUP-checked.
    let mut test = build(cfg, inst);
    let mut reference = build(SatConfig::all_off(), inst);
    let t = test.solve();
    let r = reference.solve();
    match (&t, &r) {
        (SatOutcome::Sat(mt), SatOutcome::Sat(mr)) => {
            if !model_satisfies(&inst.clauses, mt) {
                return Err(format!("{cfg:?}: test model fails a clause"));
            }
            if !model_satisfies(&inst.clauses, mr) {
                return Err("reference model fails a clause".into());
            }
        }
        (SatOutcome::Unsat(pt), SatOutcome::Unsat(pr)) => {
            // Both solvers log proofs by default; both must check, and
            // both must survive the trimmed replay + tamper battery. A
            // fresh solve's proof carries learn-time hints, and those
            // hints must be good enough that the hinted check accepts
            // the proof even with the search fallback disabled (the
            // stripped variant exercises pure search instead).
            for (who, p) in [("test", pt), ("reference", pr)] {
                if !p.is_hinted() {
                    return Err(format!("{cfg:?}: {who} proof left the solver unhinted"));
                }
                if !check_rup_proof(inst.num_vars, test.original_clauses(), p) {
                    return Err(format!("{cfg:?}: {who} RUP proof rejected"));
                }
                if !check_rup_proof(inst.num_vars, test.original_clauses(), &p.strip_hints()) {
                    return Err(format!("{cfg:?}: {who} proof rejected without hints"));
                }
                checked_trimmed_replay(inst.num_vars, test.original_clauses(), p)
                    .map_err(|e| format!("{cfg:?}: {who}: {e}"))?;
            }
        }
        _ => {
            return Err(format!(
                "{cfg:?}: verdict mismatch: test={} reference={}",
                verdict(&t),
                verdict(&r)
            ))
        }
    }

    // Assumption sequence on one incremental solver pair: the clause
    // database (including learned clauses) persists across queries.
    let mut test = build(cfg, inst);
    let mut reference = build(SatConfig::all_off(), inst);
    for assumptions in &inst.queries {
        let t = test
            .solve_with_assumptions(assumptions, u64::MAX)
            .expect("unlimited solve completes");
        let r = reference
            .solve_with_assumptions(assumptions, u64::MAX)
            .expect("unlimited solve completes");
        match (&t, &r) {
            (AssumptionOutcome::Sat(mt), AssumptionOutcome::Sat(mr)) => {
                for (who, m) in [("test", mt), ("reference", mr)] {
                    if !model_satisfies(&inst.clauses, m) {
                        return Err(format!("{cfg:?}: {who} assumption model fails a clause"));
                    }
                    if !assumptions
                        .iter()
                        .all(|a| m[a.var() as usize] == a.is_pos())
                    {
                        return Err(format!("{cfg:?}: {who} model violates an assumption"));
                    }
                }
            }
            (AssumptionOutcome::Unsat(ct), AssumptionOutcome::Unsat(cr)) => {
                for (who, core) in [("test", ct), ("reference", cr)] {
                    if !core.iter().all(|l| assumptions.contains(l)) {
                        return Err(format!(
                            "{cfg:?}: {who} final conflict is not a subset of the assumptions"
                        ));
                    }
                    // The core already suffices: original clauses + core
                    // units must be unsatisfiable, with a checked proof.
                    checked_unsat(inst.num_vars, &inst.clauses, core)
                        .map_err(|e| format!("{cfg:?}: {who} core: {e}"))?;
                }
            }
            _ => {
                return Err(format!(
                    "{cfg:?}: assumption verdict mismatch under {assumptions:?}"
                ))
            }
        }
    }
    Ok(())
}

fn verdict(o: &SatOutcome) -> &'static str {
    match o {
        SatOutcome::Sat(_) => "sat",
        SatOutcome::Unsat(_) => "unsat",
    }
}

/// All features on vs the all-off reference.
#[test]
fn fuzz_all_features_on_matches_reference() {
    forall(
        "fuzz_all_features_on_matches_reference",
        CASES,
        gen_instance,
        |inst| match run_differential(SatConfig::all_on(), inst) {
            Ok(()) => TestResult::Pass,
            Err(e) => TestResult::Fail(e),
        },
    );
}

/// Each feature individually off (isolating the remaining set) vs the
/// reference — pinpoints which heuristic breaks when one does.
#[test]
fn fuzz_each_single_feature_off_matches_reference() {
    forall(
        "fuzz_each_single_feature_off_matches_reference",
        CASES,
        gen_instance,
        |inst| {
            for feature in SatConfig::FEATURES {
                let cfg = SatConfig::all_on()
                    .without(feature)
                    .expect("FEATURES entries are valid");
                if let Err(e) = run_differential(cfg, inst) {
                    return TestResult::Fail(format!("feature off: {feature}: {e}"));
                }
            }
            TestResult::Pass
        },
    );
}
