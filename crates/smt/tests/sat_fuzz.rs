//! Differential CNF fuzzing for the CDCL core.
//!
//! Random CNF formulas plus random assumption sequences are solved twice:
//! once with a `SatConfig` under test (all features on, and each feature
//! individually switched off) and once with the all-features-off reference
//! solver (chronological-ish, no restarts, no reduction). Verdicts must be
//! identical. Every `Sat` model is verified by evaluating the clause set;
//! every `Unsat` is re-proved on a fresh proof-logging solver and the RUP
//! refutation checked with [`check_rup_proof`]. Assumption cores must be
//! subsets of the assumptions and themselves unsatisfiable.
//!
//! 256 cases per property by default (the in-tree runner honours
//! `ISLARIS_PT_CASES`); failures print a seed replayable via
//! `ISLARIS_PT_SEED`.

use islaris_smt::sat::{check_rup_proof, AssumptionOutcome, Lit, SatConfig, SatOutcome, SatSolver};
use islaris_testkit::{forall, Rng, TestResult};

const CASES: u32 = 256;

/// A generated instance: a clause set plus a sequence of assumption
/// queries to replay incrementally.
#[derive(Debug, Clone)]
struct Instance {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
    /// Assumption sets, replayed in order on one solver pair.
    queries: Vec<Vec<Lit>>,
}

fn gen_lit(r: &mut Rng, num_vars: u32) -> Lit {
    Lit::with_sign(r.range_u32(0, num_vars - 1), r.next_bool())
}

fn gen_instance(r: &mut Rng) -> Instance {
    let num_vars = r.range_u32(3, 12);
    // Clause/variable ratio spanning easy-sat through over-constrained:
    // unsatisfiable instances need enough clauses to conflict.
    let num_clauses = r.range_u32(num_vars, num_vars * 5) as usize;
    let clauses = (0..num_clauses)
        .map(|_| {
            let len = r.range_u32(1, 4) as usize;
            // Duplicate literals are deliberately possible: add_clause and
            // the RUP checker must both tolerate them.
            (0..len).map(|_| gen_lit(r, num_vars)).collect()
        })
        .collect();
    let queries = (0..r.range_u32(1, 4))
        .map(|_| {
            (0..r.range_u32(0, 3))
                .map(|_| gen_lit(r, num_vars))
                .collect()
        })
        .collect();
    Instance {
        num_vars,
        clauses,
        queries,
    }
}

fn build(cfg: SatConfig, inst: &Instance) -> SatSolver {
    let mut s = SatSolver::with_config(cfg);
    for _ in 0..inst.num_vars {
        s.new_var();
    }
    for c in &inst.clauses {
        s.add_clause(c.clone());
    }
    s
}

fn model_satisfies(clauses: &[Vec<Lit>], model: &[bool]) -> bool {
    clauses
        .iter()
        .all(|c| c.iter().any(|l| model[l.var() as usize] == l.is_pos()))
}

/// Re-proves unsatisfiability of `clauses` (+ `units`) on a fresh
/// proof-logging reference solver and checks the RUP refutation.
fn checked_unsat(num_vars: u32, clauses: &[Vec<Lit>], units: &[Lit]) -> Result<(), String> {
    let mut s = SatSolver::with_config(SatConfig::all_off());
    for _ in 0..num_vars {
        s.new_var();
    }
    let mut all: Vec<Vec<Lit>> = clauses.to_vec();
    all.extend(units.iter().map(|&l| vec![l]));
    for c in &all {
        s.add_clause(c.clone());
    }
    match s.solve() {
        SatOutcome::Sat(_) => Err("re-proving solver found the instance satisfiable".into()),
        SatOutcome::Unsat(proof) => {
            if check_rup_proof(num_vars, &all, &proof) {
                Ok(())
            } else {
                Err("RUP refutation failed the proof checker".into())
            }
        }
    }
}

/// Differential run of one instance under `cfg` vs the all-off reference.
fn run_differential(cfg: SatConfig, inst: &Instance) -> Result<(), String> {
    // Plain solve: verdicts equal; Sat models evaluated; Unsat RUP-checked.
    let mut test = build(cfg, inst);
    let mut reference = build(SatConfig::all_off(), inst);
    let t = test.solve();
    let r = reference.solve();
    match (&t, &r) {
        (SatOutcome::Sat(mt), SatOutcome::Sat(mr)) => {
            if !model_satisfies(&inst.clauses, mt) {
                return Err(format!("{cfg:?}: test model fails a clause"));
            }
            if !model_satisfies(&inst.clauses, mr) {
                return Err("reference model fails a clause".into());
            }
        }
        (SatOutcome::Unsat(pt), SatOutcome::Unsat(pr)) => {
            // Both solvers log proofs by default; both must check.
            for (who, p) in [("test", pt), ("reference", pr)] {
                if !check_rup_proof(inst.num_vars, test.original_clauses(), p) {
                    return Err(format!("{cfg:?}: {who} RUP proof rejected"));
                }
            }
        }
        _ => {
            return Err(format!(
                "{cfg:?}: verdict mismatch: test={} reference={}",
                verdict(&t),
                verdict(&r)
            ))
        }
    }

    // Assumption sequence on one incremental solver pair: the clause
    // database (including learned clauses) persists across queries.
    let mut test = build(cfg, inst);
    let mut reference = build(SatConfig::all_off(), inst);
    for assumptions in &inst.queries {
        let t = test
            .solve_with_assumptions(assumptions, u64::MAX)
            .expect("unlimited solve completes");
        let r = reference
            .solve_with_assumptions(assumptions, u64::MAX)
            .expect("unlimited solve completes");
        match (&t, &r) {
            (AssumptionOutcome::Sat(mt), AssumptionOutcome::Sat(mr)) => {
                for (who, m) in [("test", mt), ("reference", mr)] {
                    if !model_satisfies(&inst.clauses, m) {
                        return Err(format!("{cfg:?}: {who} assumption model fails a clause"));
                    }
                    if !assumptions
                        .iter()
                        .all(|a| m[a.var() as usize] == a.is_pos())
                    {
                        return Err(format!("{cfg:?}: {who} model violates an assumption"));
                    }
                }
            }
            (AssumptionOutcome::Unsat(ct), AssumptionOutcome::Unsat(cr)) => {
                for (who, core) in [("test", ct), ("reference", cr)] {
                    if !core.iter().all(|l| assumptions.contains(l)) {
                        return Err(format!(
                            "{cfg:?}: {who} final conflict is not a subset of the assumptions"
                        ));
                    }
                    // The core already suffices: original clauses + core
                    // units must be unsatisfiable, with a checked proof.
                    checked_unsat(inst.num_vars, &inst.clauses, core)
                        .map_err(|e| format!("{cfg:?}: {who} core: {e}"))?;
                }
            }
            _ => {
                return Err(format!(
                    "{cfg:?}: assumption verdict mismatch under {assumptions:?}"
                ))
            }
        }
    }
    Ok(())
}

fn verdict(o: &SatOutcome) -> &'static str {
    match o {
        SatOutcome::Sat(_) => "sat",
        SatOutcome::Unsat(_) => "unsat",
    }
}

/// All features on vs the all-off reference.
#[test]
fn fuzz_all_features_on_matches_reference() {
    forall(
        "fuzz_all_features_on_matches_reference",
        CASES,
        gen_instance,
        |inst| match run_differential(SatConfig::all_on(), inst) {
            Ok(()) => TestResult::Pass,
            Err(e) => TestResult::Fail(e),
        },
    );
}

/// Each feature individually off (isolating the remaining set) vs the
/// reference — pinpoints which heuristic breaks when one does.
#[test]
fn fuzz_each_single_feature_off_matches_reference() {
    forall(
        "fuzz_each_single_feature_off_matches_reference",
        CASES,
        gen_instance,
        |inst| {
            for feature in SatConfig::FEATURES {
                let cfg = SatConfig::all_on()
                    .without(feature)
                    .expect("FEATURES entries are valid");
                if let Err(e) = run_differential(cfg, inst) {
                    return TestResult::Fail(format!("feature off: {feature}: {e}"));
                }
            }
            TestResult::Pass
        },
    );
}
