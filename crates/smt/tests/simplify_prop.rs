//! Property tests for the word-level rewrite rules: every rule-shaped
//! term must evaluate identically before and after simplification under
//! ≥64 random models, and the pass must be idempotent. Each rewrite rule
//! the Blaster's preprocessing relies on gets its own targeted shape
//! generator; a final generic property covers arbitrary terms.
//!
//! Runs on the in-tree `islaris-testkit` runner; failures report a seed
//! replayable via `ISLARIS_PT_SEED`.

use islaris_bv::Bv;
use islaris_smt::{eval, propagate_constants, simplify_with, BvBinop, BvUnop, Expr, Value, Var};
use islaris_testkit::{forall, Rng, TestResult};

const CASES: u32 = 64;
const MODELS: u32 = 64;

const WIDTHS: [u32; 5] = [4, 8, 13, 32, 64];

/// One test input: a term over `Var(0..n)` with per-variable widths, plus
/// a seed for drawing the random models (kept in the input so failures
/// replay byte-identically).
#[derive(Debug, Clone)]
struct Case {
    expr: Expr,
    widths: Vec<u32>,
    model_seed: u64,
}

fn random_bv(r: &mut Rng, w: u32) -> Bv {
    let mask = if w >= 128 {
        u128::MAX
    } else {
        (1u128 << w) - 1
    };
    Bv::new(w, r.next_u128() & mask)
}

/// `simplify_with(e)` ≡ `e` under `MODELS` random models, and a second
/// pass is a fixed point.
fn check(case: &Case) -> TestResult {
    let widths = case.widths.clone();
    let ws = |v: Var| widths.get(v.0 as usize).copied();
    let simplified = simplify_with(&case.expr, &ws);
    let again = simplify_with(&simplified, &ws);
    if again != simplified {
        return TestResult::Fail(format!(
            "not idempotent: {} then {} then {}",
            case.expr, simplified, again
        ));
    }
    let mut r = Rng::new(case.model_seed);
    for _ in 0..MODELS {
        let model: Vec<Bv> = widths.iter().map(|&w| random_bv(&mut r, w)).collect();
        let env = |v: Var| model.get(v.0 as usize).map(|b| Value::Bits(b.clone()));
        let before = eval(&case.expr, &env);
        let after = eval(&simplified, &env);
        if before != after {
            return TestResult::Fail(format!(
                "{} simplifies to {} but {before:?} != {after:?} under {model:?}",
                case.expr, simplified
            ));
        }
    }
    TestResult::Pass
}

fn prop(name: &str, gen: impl Fn(&mut Rng) -> Case) {
    forall(name, CASES, gen, check);
}

fn x() -> Expr {
    Expr::var(Var(0))
}

fn y() -> Expr {
    Expr::var(Var(1))
}

/// extract mirrors through `bvrev` (the `rbit` proof shape).
#[test]
fn rule_extract_over_rev() {
    prop("rule_extract_over_rev", |r| {
        let w = *r.choose(&WIDTHS);
        let lo = r.range_u32(0, w - 1);
        let hi = r.range_u32(lo, w - 1);
        Case {
            expr: Expr::extract(hi, lo, Expr::unop(BvUnop::Rev, x())),
            widths: vec![w],
            model_seed: r.next_u64(),
        }
    });
}

/// Any-range extract distributes over the bitwise operations.
#[test]
fn rule_extract_distributes_over_bitwise() {
    prop("rule_extract_distributes_over_bitwise", |r| {
        let w = *r.choose(&WIDTHS);
        let lo = r.range_u32(0, w - 1);
        let hi = r.range_u32(lo, w - 1);
        let ops = [BvBinop::And, BvBinop::Or, BvBinop::Xor];
        let inner = if r.next_bool() {
            Expr::binop(*r.choose(&ops), x(), y())
        } else {
            Expr::unop(BvUnop::Not, x())
        };
        Case {
            expr: Expr::extract(hi, lo, inner),
            widths: vec![w, w],
            model_seed: r.next_u64(),
        }
    });
}

/// Low-range extract distributes over the modular ring operations.
#[test]
fn rule_extract_distributes_over_ring() {
    prop("rule_extract_distributes_over_ring", |r| {
        let w = *r.choose(&WIDTHS);
        let hi = r.range_u32(0, w - 2);
        let ops = [BvBinop::Add, BvBinop::Sub, BvBinop::Mul];
        Case {
            expr: Expr::extract(hi, 0, Expr::binop(*r.choose(&ops), x(), y())),
            widths: vec![w, w],
            model_seed: r.next_u64(),
        }
    });
}

/// Adjacent extracts of one term recombine into a single extract.
#[test]
fn rule_concat_of_adjacent_extracts() {
    prop("rule_concat_of_adjacent_extracts", |r| {
        let w = *r.choose(&WIDTHS);
        let lo = r.range_u32(0, w - 2);
        let mid = r.range_u32(lo, w - 2);
        let hi = r.range_u32(mid + 1, w - 1);
        Case {
            expr: Expr::concat(Expr::extract(hi, mid + 1, x()), Expr::extract(mid, lo, x())),
            widths: vec![w],
            model_seed: r.next_u64(),
        }
    });
}

/// The rotate idiom `(x << c) | (x >> (w−c))` collapses to a concat of
/// extracted fields.
#[test]
fn rule_rotate_idiom_recombines() {
    prop("rule_rotate_idiom_recombines", |r| {
        let w = *r.choose(&WIDTHS);
        let c = r.range_u32(1, w - 1);
        let shl = Expr::binop(BvBinop::Shl, x(), Expr::bv(w, u128::from(c)));
        let lshr = Expr::binop(BvBinop::Lshr, x(), Expr::bv(w, u128::from(w - c)));
        let expr = if r.next_bool() {
            Expr::or(shl, lshr)
        } else {
            Expr::or(lshr, shl)
        };
        Case {
            expr,
            widths: vec![w],
            model_seed: r.next_u64(),
        }
    });
}

/// Disjoint halves recombine: `(concat h 0…0) | (zero_extend n l)`.
#[test]
fn rule_disjoint_or_recombines() {
    prop("rule_disjoint_or_recombines", |r| {
        let w = *r.choose(&WIDTHS);
        let split = r.range_u32(1, w - 1);
        // h: top w−split bits of x; l: bottom split bits of y.
        let h = Expr::extract(w - 1, split, x());
        let l = Expr::extract(split - 1, 0, y());
        let cc = Expr::concat(h, Expr::bv(split, 0));
        let ze = Expr::zero_extend(w - split, l);
        let expr = if r.next_bool() {
            Expr::or(cc, ze)
        } else {
            Expr::or(ze, cc)
        };
        Case {
            expr,
            widths: vec![w, w],
            model_seed: r.next_u64(),
        }
    });
}

/// Masking a constant logical right shift with the shifted all-ones mask
/// is a no-op (the UBFM expansion of `lsr`).
#[test]
fn rule_lshr_mask_noop() {
    prop("rule_lshr_mask_noop", |r| {
        let w = *r.choose(&WIDTHS);
        let c = r.range_u32(0, w - 1);
        let shifted = Expr::binop(BvBinop::Lshr, x(), Expr::bv(w, u128::from(c)));
        let mask = Expr::bits(Bv::ones(w).lshr(&Bv::new(w, u128::from(c))));
        let expr = if r.next_bool() {
            Expr::binop(BvBinop::And, shifted, mask)
        } else {
            Expr::binop(BvBinop::And, mask, shifted)
        };
        Case {
            expr,
            widths: vec![w],
            model_seed: r.next_u64(),
        }
    });
}

/// `(x + ~y) + 1 → x − y` (the AddWithCarry subtraction shape) and
/// constant-chain re-association `(x + c1) + c2`.
#[test]
fn rule_add_shapes() {
    prop("rule_add_shapes", |r| {
        let w = *r.choose(&WIDTHS);
        let expr = if r.next_bool() {
            Expr::binop(
                BvBinop::Add,
                Expr::binop(BvBinop::Add, x(), Expr::unop(BvUnop::Not, y())),
                Expr::bv(w, 1),
            )
        } else {
            let c1 = random_bv(r, w);
            let c2 = random_bv(r, w);
            Expr::binop(
                BvBinop::Add,
                Expr::binop(BvBinop::Add, x(), Expr::bits(c1)),
                Expr::bits(c2),
            )
        };
        Case {
            expr,
            widths: vec![w, w],
            model_seed: r.next_u64(),
        }
    });
}

/// Logical overshift flushes to zero.
#[test]
fn rule_overshift_is_zero() {
    prop("rule_overshift_is_zero", |r| {
        let w = *r.choose(&WIDTHS);
        let k = r.range_u32(w, w + 7);
        let op = if r.next_bool() {
            BvBinop::Shl
        } else {
            BvBinop::Lshr
        };
        Case {
            expr: Expr::binop(op, x(), Expr::bv(w, u128::from(k))),
            widths: vec![w],
            model_seed: r.next_u64(),
        }
    });
}

/// Generic closure: arbitrary random terms are preserved and the pass is
/// idempotent (subsumes any rule interaction the targeted shapes miss).
#[test]
fn simplify_preserves_random_terms() {
    fn term(r: &mut Rng, w: u32, depth: u32) -> Expr {
        if depth == 0 || r.index(4) == 0 {
            return if r.next_bool() {
                // Both variables have the same width in this property, so
                // either fits anywhere.
                if r.next_bool() {
                    x()
                } else {
                    y()
                }
            } else {
                let mask = if w >= 128 {
                    u128::MAX
                } else {
                    (1u128 << w) - 1
                };
                Expr::bv(w, u128::from(r.next_u64()) & mask)
            };
        }
        match r.index(6) {
            0 => {
                const OPS: [BvBinop; 8] = [
                    BvBinop::Add,
                    BvBinop::Sub,
                    BvBinop::Mul,
                    BvBinop::And,
                    BvBinop::Or,
                    BvBinop::Xor,
                    BvBinop::Shl,
                    BvBinop::Lshr,
                ];
                Expr::binop(
                    *r.choose(&OPS),
                    term(r, w, depth - 1),
                    term(r, w, depth - 1),
                )
            }
            1 => {
                const OPS: [BvUnop; 3] = [BvUnop::Not, BvUnop::Neg, BvUnop::Rev];
                Expr::unop(*r.choose(&OPS), term(r, w, depth - 1))
            }
            2 => {
                let lo = r.range_u32(0, w - 1);
                let hi = r.range_u32(lo, w - 1);
                let inner = term(r, w, depth - 1);
                // Keep the width fixed: re-extend the extracted field.
                Expr::zero_extend(w - (hi - lo + 1), Expr::extract(hi, lo, inner))
            }
            3 => {
                let split = r.range_u32(1, w - 1);
                Expr::concat(
                    Expr::extract(w - 1, split, term(r, w, depth - 1)),
                    Expr::extract(split - 1, 0, term(r, w, depth - 1)),
                )
            }
            _ => term(r, w, depth - 1),
        }
    }
    prop("simplify_preserves_random_terms", |r| {
        let w = *r.choose(&WIDTHS);
        Case {
            expr: term(r, w, 3),
            widths: vec![w, w],
            model_seed: r.next_u64(),
        }
    });
}

/// `propagate_constants` preserves the conjunction of the fact set under
/// random models and is idempotent.
#[test]
fn propagate_constants_preserves_and_is_idempotent() {
    forall(
        "propagate_constants_preserves_and_is_idempotent",
        CASES,
        |r| {
            let w = *r.choose(&WIDTHS);
            let c = random_bv(r, w);
            let mut facts = Vec::new();
            // One definition (in either orientation) plus facts using it.
            let def = if r.next_bool() {
                Expr::eq(x(), Expr::bits(c.clone()))
            } else {
                Expr::eq(Expr::bits(c.clone()), x())
            };
            facts.push(def);
            for _ in 0..r.range_u32(1, 4) {
                let lhs = if r.next_bool() {
                    Expr::binop(BvBinop::Add, x(), y())
                } else {
                    Expr::binop(BvBinop::Xor, x(), Expr::bits(random_bv(r, w)))
                };
                facts.push(Expr::eq(lhs, y()));
            }
            (w, facts, r.next_u64())
        },
        |(w, facts, model_seed)| {
            let widths = vec![*w, *w];
            let ws = |v: Var| widths.get(v.0 as usize).copied();
            let (propagated, _folds) = propagate_constants(facts, &ws);
            let (again, refolds) = propagate_constants(&propagated, &ws);
            if again != propagated || refolds != 0 {
                return TestResult::Fail(format!(
                    "not idempotent: {propagated:?} then {again:?} ({refolds} refolds)"
                ));
            }
            let mut r = Rng::new(*model_seed);
            for _ in 0..MODELS {
                let model: Vec<Bv> = widths.iter().map(|&w| random_bv(&mut r, w)).collect();
                let env = |v: Var| model.get(v.0 as usize).map(|b| Value::Bits(b.clone()));
                let conj = |fs: &[Expr]| {
                    fs.iter()
                        .map(|f| eval(f, &env))
                        .collect::<Result<Vec<_>, _>>()
                        .map(|vs| vs.iter().all(|v| *v == Value::Bool(true)))
                };
                if conj(facts) != conj(&propagated) {
                    return TestResult::Fail(format!(
                        "conjunction changed under {model:?}: {facts:?} vs {propagated:?}"
                    ));
                }
            }
            TestResult::Pass
        },
    );
}
