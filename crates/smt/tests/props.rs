//! Property tests for the SMT stack: random expressions are evaluated,
//! simplified, and bit-blasted, and all three semantics must agree.
//! Runs on the in-tree `islaris-testkit` runner (64 cases per property,
//! as under proptest's `with_cases(64)` config here); failures report a
//! seed replayable via `ISLARIS_PT_SEED`.

use islaris_bv::Bv;
use islaris_smt::cnf::Blaster;
use islaris_smt::sat::SatOutcome;
use islaris_smt::{
    check_sat, entails, eval_bool, simplify_with, BvBinop, BvCmp, BvUnop, Expr, SmtResult,
    SolverConfig, Sort, Value, Var,
};
use islaris_testkit::{forall, prop_eq, prop_true, Rng, TestResult};

const WIDTH: u32 = 8;
const NUM_VARS: u32 = 3;
const CASES: u32 = 64;

fn sorts(v: Var) -> Option<Sort> {
    (v.0 < NUM_VARS).then_some(Sort::BitVec(WIDTH))
}

fn widths(v: Var) -> Option<u32> {
    (v.0 < NUM_VARS).then_some(WIDTH)
}

/// Random bitvector expressions of width 8 over 3 variables; `depth`
/// bounds recursion like the proptest `prop_recursive(3, …)` config.
fn bv_expr(r: &mut Rng, depth: u32) -> Expr {
    if depth == 0 || r.index(4) == 0 {
        return if r.next_bool() {
            Expr::var(Var(r.range_u32(0, NUM_VARS - 1)))
        } else {
            Expr::bv(WIDTH, u128::from(r.next_u8()))
        };
    }
    match r.index(3) {
        0 => {
            const OPS: [BvBinop; 9] = [
                BvBinop::Add,
                BvBinop::Sub,
                BvBinop::Mul,
                BvBinop::And,
                BvBinop::Or,
                BvBinop::Xor,
                BvBinop::Shl,
                BvBinop::Lshr,
                BvBinop::Ashr,
            ];
            let op = *r.choose(&OPS);
            let a = bv_expr(r, depth - 1);
            let b = bv_expr(r, depth - 1);
            Expr::binop(op, a, b)
        }
        1 => {
            const OPS: [BvUnop; 3] = [BvUnop::Not, BvUnop::Neg, BvUnop::Rev];
            let op = *r.choose(&OPS);
            let a = bv_expr(r, depth - 1);
            Expr::unop(op, a)
        }
        _ => {
            let a = bv_expr(r, depth - 1);
            let (x, y) = (r.range_u32(0, WIDTH - 1), r.range_u32(0, WIDTH - 1));
            let (hi, lo) = (x.max(y), x.min(y));
            Expr::extract(
                WIDTH - 1,
                0,
                Expr::zero_extend(WIDTH - (hi - lo + 1), Expr::extract(hi, lo, a)),
            )
        }
    }
}

fn bool_atom(r: &mut Rng) -> Expr {
    match r.index(4) {
        0 => {
            const OPS: [BvCmp; 4] = [BvCmp::Ult, BvCmp::Ule, BvCmp::Slt, BvCmp::Sle];
            let op = *r.choose(&OPS);
            let a = bv_expr(r, 3);
            let b = bv_expr(r, 3);
            Expr::cmp(op, a, b)
        }
        1 => {
            let a = bv_expr(r, 3);
            let b = bv_expr(r, 3);
            Expr::eq(a, b)
        }
        2 => Expr::bool(true),
        _ => Expr::bool(false),
    }
}

/// Random boolean expressions over the bitvector fragment.
fn bool_expr_at(r: &mut Rng, depth: u32) -> Expr {
    if depth == 0 || r.index(4) == 0 {
        return bool_atom(r);
    }
    match r.index(3) {
        0 => {
            let a = bool_expr_at(r, depth - 1);
            let b = bool_expr_at(r, depth - 1);
            Expr::and(a, b)
        }
        1 => {
            let a = bool_expr_at(r, depth - 1);
            let b = bool_expr_at(r, depth - 1);
            Expr::or(a, b)
        }
        _ => Expr::not(bool_expr_at(r, depth - 1)),
    }
}

fn bool_expr(r: &mut Rng) -> Expr {
    bool_expr_at(r, 2)
}

fn vals(r: &mut Rng) -> [u8; 3] {
    [r.next_u8(), r.next_u8(), r.next_u8()]
}

fn env_from(vals: &[u8; 3]) -> impl Fn(Var) -> Option<Value> + '_ {
    move |v: Var| {
        (v.0 < NUM_VARS).then(|| Value::Bits(Bv::new(WIDTH, u128::from(vals[v.0 as usize]))))
    }
}

/// simplify preserves evaluation under every environment.
#[test]
fn simplify_preserves_semantics() {
    forall(
        "simplify_preserves_semantics",
        CASES,
        |r| (bool_expr(r), vals(r)),
        |(e, vals)| {
            let env = env_from(vals);
            let simplified = simplify_with(e, &widths);
            let lhs = eval_bool(e, &env).expect("well-sorted");
            let rhs = eval_bool(&simplified, &env).expect("well-sorted");
            prop_eq!(lhs, rhs, format!("e = {e}, simplified = {simplified}"));
            TestResult::Pass
        },
    );
}

/// simplify is idempotent: a second pass is the identity, so the
/// rewriter really reaches a normal form instead of oscillating.
#[test]
fn simplify_is_idempotent() {
    forall("simplify_is_idempotent", CASES, bool_expr, |e| {
        let once = simplify_with(e, &widths);
        let twice = simplify_with(&once, &widths);
        prop_eq!(
            once,
            twice,
            format!("e = {e}, once = {once}, twice = {twice}")
        );
        TestResult::Pass
    });
}

/// If evaluation under a concrete environment says true, the formula is
/// satisfiable, and check_sat's model satisfies it.
#[test]
fn check_sat_agrees_with_witness() {
    forall(
        "check_sat_agrees_with_witness",
        CASES,
        |r| (bool_expr(r), vals(r)),
        |(e, vals)| {
            let env = env_from(vals);
            let truth = eval_bool(e, &env).expect("well-sorted");
            if truth {
                match check_sat(&[e.clone()], &sorts, &SolverConfig::paranoid()) {
                    SmtResult::Sat(m) => {
                        let menv = |v: Var| m.get(v).or_else(|| env(v));
                        prop_eq!(eval_bool(e, &menv), Ok(true));
                    }
                    SmtResult::Unsat => {
                        return TestResult::Fail(format!("witnessed formula reported unsat: {e}"))
                    }
                    SmtResult::Unknown(_) => {} // budget; acceptable
                }
            }
            TestResult::Pass
        },
    );
}

/// Unsat answers are confirmed by exhaustive enumeration (width 8,
/// 3 vars → 2^24 too big; restrict to formulas with ≤ 2 vars by fixing v2=0).
#[test]
fn unsat_answers_have_no_witness() {
    forall("unsat_answers_have_no_witness", CASES, bool_expr, |e| {
        // Bind v2 := 0 to shrink the space, then enumerate v0, v1.
        let e0 = e.subst_var(Var(2), &Expr::bv(WIDTH, 0));
        if check_sat(&[e0.clone()], &sorts, &SolverConfig::paranoid()).is_unsat() {
            for a in 0u16..256 {
                for b in 0u16..256 {
                    let vals = [a as u8, b as u8, 0u8];
                    let env = env_from(&vals);
                    prop_eq!(
                        eval_bool(&e0, &env),
                        Ok(false),
                        format!("unsat formula has witness {vals:?}: {e0}")
                    );
                }
            }
        }
        TestResult::Pass
    });
}

/// Bit-blasting agrees with evaluation: e ∧ (vars = concrete) is sat
/// iff e evaluates to true.
#[test]
fn blasting_agrees_with_eval() {
    forall(
        "blasting_agrees_with_eval",
        CASES,
        |r| (bool_expr(r), vals(r)),
        |(e, vals)| {
            let env = env_from(vals);
            let truth = eval_bool(e, &env).expect("well-sorted");
            let mut bl = Blaster::new();
            bl.assert_expr(e, &sorts).expect("encodable fragment");
            for i in 0..NUM_VARS {
                let pin = Expr::eq(
                    Expr::var(Var(i)),
                    Expr::bv(WIDTH, u128::from(vals[i as usize])),
                );
                bl.assert_expr(&pin, &sorts).expect("encodable");
            }
            let outcome = bl.solve();
            match (truth, outcome) {
                (true, SatOutcome::Sat(_)) | (false, SatOutcome::Unsat(_)) => TestResult::Pass,
                (t, o) => TestResult::Fail(format!(
                    "eval = {t}, sat = {:?} for {e}",
                    matches!(o, SatOutcome::Sat(_))
                )),
            }
        },
    );
}

/// entails is consistent: facts always entail themselves and true.
#[test]
fn entails_reflexive() {
    forall("entails_reflexive", CASES, bool_expr, |e| {
        let cfg = SolverConfig::new();
        prop_true!(entails(&[e.clone()], e, &sorts, &cfg));
        prop_true!(entails(&[e.clone()], &Expr::bool(true), &sorts, &cfg));
        TestResult::Pass
    });
}
