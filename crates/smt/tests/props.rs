//! Property tests for the SMT stack: random expressions are evaluated,
//! simplified, and bit-blasted, and all three semantics must agree.

use islaris_bv::Bv;
use islaris_smt::cnf::Blaster;
use islaris_smt::sat::SatOutcome;
use islaris_smt::{
    check_sat, entails, eval_bool, simplify_with, BvBinop, BvCmp, BvUnop, Expr, SmtResult,
    SolverConfig, Sort, Value, Var,
};
use proptest::prelude::*;

const WIDTH: u32 = 8;
const NUM_VARS: u32 = 3;

fn sorts(v: Var) -> Option<Sort> {
    (v.0 < NUM_VARS).then_some(Sort::BitVec(WIDTH))
}

fn widths(v: Var) -> Option<u32> {
    (v.0 < NUM_VARS).then_some(WIDTH)
}

/// Random bitvector expressions of width 8 over 3 variables.
fn bv_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0u32..NUM_VARS).prop_map(|i| Expr::var(Var(i))),
        any::<u8>().prop_map(|b| Expr::bv(WIDTH, u128::from(b))),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just(BvBinop::Add), Just(BvBinop::Sub), Just(BvBinop::Mul),
                Just(BvBinop::And), Just(BvBinop::Or), Just(BvBinop::Xor),
                Just(BvBinop::Shl), Just(BvBinop::Lshr), Just(BvBinop::Ashr),
            ])
                .prop_map(|(a, b, op)| Expr::binop(op, a, b)),
            (inner.clone(), prop_oneof![Just(BvUnop::Not), Just(BvUnop::Neg), Just(BvUnop::Rev)])
                .prop_map(|(a, op)| Expr::unop(op, a)),
            (inner.clone(), 0u32..WIDTH, 0u32..WIDTH).prop_map(|(a, x, y)| {
                let (hi, lo) = (x.max(y), x.min(y));
                Expr::extract(WIDTH - 1, 0, Expr::zero_extend(WIDTH - (hi - lo + 1), Expr::extract(hi, lo, a)))
            }),
            inner,
        ]
    })
}

/// Random boolean expressions over the bitvector fragment.
fn bool_expr() -> impl Strategy<Value = Expr> {
    let atom = prop_oneof![
        (bv_expr(), bv_expr(), prop_oneof![
            Just(BvCmp::Ult), Just(BvCmp::Ule), Just(BvCmp::Slt), Just(BvCmp::Sle),
        ])
            .prop_map(|(a, b, op)| Expr::cmp(op, a, b)),
        (bv_expr(), bv_expr()).prop_map(|(a, b)| Expr::eq(a, b)),
        Just(Expr::bool(true)),
        Just(Expr::bool(false)),
    ];
    atom.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::or(a, b)),
            inner.clone().prop_map(Expr::not),
            inner,
        ]
    })
}

fn env_from(vals: &[u8; 3]) -> impl Fn(Var) -> Option<Value> + '_ {
    move |v: Var| {
        (v.0 < NUM_VARS).then(|| Value::Bits(Bv::new(WIDTH, u128::from(vals[v.0 as usize]))))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// simplify preserves evaluation under every environment.
    #[test]
    fn simplify_preserves_semantics(e in bool_expr(), vals in any::<[u8; 3]>()) {
        let env = env_from(&vals);
        let simplified = simplify_with(&e, &widths);
        let lhs = eval_bool(&e, &env).expect("well-sorted");
        let rhs = eval_bool(&simplified, &env).expect("well-sorted");
        prop_assert_eq!(lhs, rhs, "e = {}, simplified = {}", e, simplified);
    }

    /// If evaluation under a concrete environment says true, the formula is
    /// satisfiable, and check_sat's model satisfies it.
    #[test]
    fn check_sat_agrees_with_witness(e in bool_expr(), vals in any::<[u8; 3]>()) {
        let env = env_from(&vals);
        let truth = eval_bool(&e, &env).expect("well-sorted");
        if truth {
            match check_sat(&[e.clone()], &sorts, &SolverConfig::paranoid()) {
                SmtResult::Sat(m) => {
                    let menv = |v: Var| m.get(v).or_else(|| env(v));
                    prop_assert_eq!(eval_bool(&e, &menv), Ok(true));
                }
                SmtResult::Unsat => prop_assert!(false, "witnessed formula reported unsat: {}", e),
                SmtResult::Unknown(_) => {} // budget; acceptable
            }
        }
    }

    /// Unsat answers are confirmed by exhaustive enumeration (width 8,
    /// 3 vars → 2^24 too big; restrict to formulas with ≤ 2 vars by fixing v2=0).
    #[test]
    fn unsat_answers_have_no_witness(e in bool_expr()) {
        // Bind v2 := 0 to shrink the space, then enumerate v0, v1.
        let e0 = e.subst_var(Var(2), &Expr::bv(WIDTH, 0));
        if check_sat(&[e0.clone()], &sorts, &SolverConfig::paranoid()).is_unsat() {
            for a in 0u16..256 {
                for b in 0u16..256 {
                    let vals = [a as u8, b as u8, 0u8];
                    let env = env_from(&vals);
                    prop_assert_eq!(
                        eval_bool(&e0, &env),
                        Ok(false),
                        "unsat formula has witness {:?}: {}", vals, e0
                    );
                }
            }
        }
    }

    /// Bit-blasting agrees with evaluation: e ∧ (vars = concrete) is sat
    /// iff e evaluates to true.
    #[test]
    fn blasting_agrees_with_eval(e in bool_expr(), vals in any::<[u8; 3]>()) {
        let env = env_from(&vals);
        let truth = eval_bool(&e, &env).expect("well-sorted");
        let mut bl = Blaster::new();
        bl.assert_expr(&e, &sorts).expect("encodable fragment");
        for i in 0..NUM_VARS {
            let pin = Expr::eq(Expr::var(Var(i)), Expr::bv(WIDTH, u128::from(vals[i as usize])));
            bl.assert_expr(&pin, &sorts).expect("encodable");
        }
        let outcome = bl.solve();
        match (truth, outcome) {
            (true, SatOutcome::Sat(_)) | (false, SatOutcome::Unsat(_)) => {}
            (t, o) => prop_assert!(false, "eval = {}, sat = {:?} for {}", t, matches!(o, SatOutcome::Sat(_)), e),
        }
    }

    /// entails is consistent: facts always entail themselves and true.
    #[test]
    fn entails_reflexive(e in bool_expr()) {
        let cfg = SolverConfig::new();
        prop_assert!(entails(&[e.clone()], &e, &sorts, &cfg));
        prop_assert!(entails(&[e], &Expr::bool(true), &sorts, &cfg));
    }
}
