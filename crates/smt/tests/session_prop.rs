//! Property tests for incremental sessions and the query cache: on
//! random query sequences over random sorts, assumption-based session
//! answers (and cached answers) must be identical to from-scratch
//! `check_sat`/`entails`, including after interleaved fact pushes.
//! 64 cases per property on the in-tree `islaris-testkit` runner;
//! failures report a seed replayable via `ISLARIS_PT_SEED`.

use islaris_smt::{
    check_sat_metered, entails_metered, eval_bool, BvBinop, BvCmp, BvUnop, CacheMetrics, Expr,
    QueryCache, QueryTable, Session, SmtResult, SolverConfig, SolverMetrics, Sort, Var,
};
use islaris_testkit::{forall, Rng, TestResult};

const NUM_VARS: u32 = 3;
const CASES: u32 = 64;

/// A per-case shape: a random width per variable (the "random sorts" of
/// the property), drawn from a few representative bitvector widths.
#[derive(Debug, Clone, Copy)]
struct Shape {
    widths: [u32; NUM_VARS as usize],
}

impl Shape {
    fn gen(r: &mut Rng) -> Shape {
        const WIDTHS: [u32; 4] = [1, 4, 8, 13];
        Shape {
            widths: [*r.choose(&WIDTHS), *r.choose(&WIDTHS), *r.choose(&WIDTHS)],
        }
    }

    fn sorts(&self) -> impl Fn(Var) -> Option<Sort> + '_ {
        move |v: Var| (v.0 < NUM_VARS).then(|| Sort::BitVec(self.widths[v.0 as usize]))
    }
}

/// Random bitvector expressions of a fixed width. Variables of other
/// widths are adapted by extract/zero-extend so every subterm stays
/// well-sorted even though the per-variable sorts are random.
fn bv_expr(r: &mut Rng, shape: &Shape, width: u32, depth: u32) -> Expr {
    if depth == 0 || r.index(4) == 0 {
        if r.next_bool() {
            let v = Var(r.range_u32(0, NUM_VARS - 1));
            let w = shape.widths[v.0 as usize];
            let e = Expr::var(v);
            return if w == width {
                e
            } else if w > width {
                Expr::extract(width - 1, 0, e)
            } else {
                Expr::zero_extend(width - w, e)
            };
        }
        let mask = if width >= 128 {
            u128::MAX
        } else {
            (1u128 << width) - 1
        };
        return Expr::bv(width, u128::from(r.next_u8()) & mask);
    }
    match r.index(2) {
        0 => {
            const OPS: [BvBinop; 7] = [
                BvBinop::Add,
                BvBinop::Sub,
                BvBinop::Mul,
                BvBinop::And,
                BvBinop::Or,
                BvBinop::Xor,
                BvBinop::Shl,
            ];
            let op = *r.choose(&OPS);
            let a = bv_expr(r, shape, width, depth - 1);
            let b = bv_expr(r, shape, width, depth - 1);
            Expr::binop(op, a, b)
        }
        _ => {
            const OPS: [BvUnop; 2] = [BvUnop::Not, BvUnop::Neg];
            let op = *r.choose(&OPS);
            Expr::unop(op, bv_expr(r, shape, width, depth - 1))
        }
    }
}

fn bool_atom(r: &mut Rng, shape: &Shape) -> Expr {
    let width = shape.widths[r.index(NUM_VARS as usize)];
    match r.index(4) {
        0 => {
            const OPS: [BvCmp; 4] = [BvCmp::Ult, BvCmp::Ule, BvCmp::Slt, BvCmp::Sle];
            let op = *r.choose(&OPS);
            let a = bv_expr(r, shape, width, 2);
            let b = bv_expr(r, shape, width, 2);
            Expr::cmp(op, a, b)
        }
        1 | 2 => {
            let a = bv_expr(r, shape, width, 2);
            let b = bv_expr(r, shape, width, 2);
            Expr::eq(a, b)
        }
        _ => Expr::bool(r.next_bool()),
    }
}

fn bool_expr(r: &mut Rng, shape: &Shape) -> Expr {
    match r.index(4) {
        0 => Expr::and(bool_atom(r, shape), bool_atom(r, shape)),
        1 => Expr::or(bool_atom(r, shape), bool_atom(r, shape)),
        2 => Expr::not(bool_atom(r, shape)),
        _ => bool_atom(r, shape),
    }
}

/// One step of a query sequence.
#[derive(Debug, Clone)]
enum Op {
    /// Push a fact into the persistent fact set.
    Push(Expr),
    /// Ask whether the current facts entail a goal.
    Entails(Expr),
    /// Check satisfiability of the current facts plus one extra literal.
    CheckSat(Expr),
}

fn script(r: &mut Rng, shape: &Shape) -> Vec<Op> {
    let len = r.range_u32(4, 10);
    (0..len)
        .map(|_| match r.index(3) {
            0 => Op::Push(bool_expr(r, shape)),
            1 => Op::Entails(bool_expr(r, shape)),
            _ => Op::CheckSat(bool_expr(r, shape)),
        })
        .collect()
}

/// Verdict-level equality: models may legitimately differ between the
/// incremental and scratch solvers (both are independently verified by
/// evaluation), so `Sat` compares as a variant; `Unknown` messages must
/// match exactly per the session's answer contract.
fn same_verdict(a: &SmtResult, b: &SmtResult) -> Result<(), String> {
    match (a, b) {
        (SmtResult::Sat(_), SmtResult::Sat(_)) | (SmtResult::Unsat, SmtResult::Unsat) => Ok(()),
        (SmtResult::Unknown(x), SmtResult::Unknown(y)) if x == y => Ok(()),
        _ => Err(format!("session answered {a:?}, scratch answered {b:?}")),
    }
}

fn run_script(cfg: &SolverConfig, ops: &[Op], shape: &Shape) -> Result<(), String> {
    let sorts = shape.sorts();
    let mut session = Session::new(cfg.clone());
    let mut facts: Vec<Expr> = Vec::new();
    for op in ops {
        match op {
            Op::Push(f) => facts.push(f.clone()),
            Op::Entails(goal) => {
                let mut ms = SolverMetrics::default();
                let mut mf = SolverMetrics::default();
                let inc = session.entails_metered(&facts, goal, &sorts, &mut ms);
                let scratch = entails_metered(&facts, goal, &sorts, cfg, &mut mf);
                if inc != scratch {
                    return Err(format!(
                        "entails mismatch: session={inc} scratch={scratch} facts={facts:?} goal={goal}"
                    ));
                }
            }
            Op::CheckSat(extra) => {
                let mut q = facts.clone();
                q.push(extra.clone());
                let mut ms = SolverMetrics::default();
                let mut mf = SolverMetrics::default();
                let inc = session.check_sat_metered(&q, &sorts, &mut ms);
                let scratch = check_sat_metered(&q, &sorts, cfg, &mut mf);
                same_verdict(&inc, &scratch).map_err(|e| format!("{e} on {q:?}"))?;
                if let SmtResult::Sat(model) = &inc {
                    let env = |v: Var| sorts(v).map(|s| model.get_or_default(v, s));
                    for a in &q {
                        if eval_bool(a, &env) != Ok(true) {
                            return Err(format!("session model fails {a}"));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Session answers ≡ scratch answers on random interleaved sequences,
/// under the default configuration.
#[test]
fn session_matches_scratch_on_random_sequences() {
    forall(
        "session_matches_scratch_on_random_sequences",
        CASES,
        |r| {
            let shape = Shape::gen(r);
            let ops = script(r, &shape);
            (shape, ops)
        },
        |(shape, ops)| match run_script(&SolverConfig::new(), ops, shape) {
            Ok(()) => TestResult::Pass,
            Err(e) => TestResult::Fail(e),
        },
    );
}

/// Same property under the paranoid configuration, which exercises the
/// proof-checking fallback path on every incremental `Unsat`.
#[test]
fn paranoid_session_matches_scratch_on_random_sequences() {
    forall(
        "paranoid_session_matches_scratch_on_random_sequences",
        CASES,
        |r| {
            let shape = Shape::gen(r);
            let ops = script(r, &shape);
            (shape, ops)
        },
        |(shape, ops)| match run_script(&SolverConfig::paranoid(), ops, shape) {
            Ok(()) => TestResult::Pass,
            Err(e) => TestResult::Fail(e),
        },
    );
}

/// The shared cache is invisible to verdicts: replaying a random query
/// sequence through a `QueryCache` (with repeats, so hits occur) gives
/// the same answers as the scratch solver.
#[test]
fn query_cache_matches_scratch_on_random_sequences() {
    forall(
        "query_cache_matches_scratch_on_random_sequences",
        CASES,
        |r| {
            let shape = Shape::gen(r);
            let qs: Vec<Vec<Expr>> = (0..r.range_u32(2, 5))
                .map(|_| {
                    (0..r.range_u32(1, 3))
                        .map(|_| bool_expr(r, &shape))
                        .collect()
                })
                .collect();
            (shape, qs)
        },
        |(shape, qs)| {
            let sorts = shape.sorts();
            let cfg = SolverConfig::new();
            let cache = QueryCache::new();
            let mut cm = CacheMetrics::default();
            // Two passes: the second is all hits and must still agree.
            for _ in 0..2 {
                for q in qs {
                    let mut m = SolverMetrics::default();
                    let mut t = QueryTable::default();
                    let (cached, _) =
                        cache.check_sat_logged(q, &sorts, &cfg, &mut m, &mut t, &mut cm);
                    let scratch = check_sat_metered(q, &sorts, &cfg, &mut SolverMetrics::default());
                    if let Err(e) = same_verdict(&cached, &scratch) {
                        return TestResult::Fail(format!("{e} on {q:?}"));
                    }
                }
            }
            if cm.hits == 0 {
                return TestResult::Fail("second pass produced no cache hits".into());
            }
            TestResult::Pass
        },
    );
}
